# Convenience wrapper; everything is plain dune underneath.

.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# The PR gate: full build, every test suite, and a smoke-mode profile
# run that exercises the telemetry pipeline end to end.
check: build test
	dune exec bench/main.exe -- --smoke profile

bench:
	dune exec bench/main.exe

clean:
	dune clean
	rm -f BENCH_profile.json
