# Convenience wrapper; everything is plain dune underneath.

.PHONY: all build test check bench regen-golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# The PR gate: full build, every test suite, and a smoke-mode profile run
# of BOTH router algorithms at the strictest inter-stage checking level;
# it exercises the telemetry pipeline end to end and fails on an illegal
# routing, a checker violation, or empty telemetry.
check: build test
	dune exec bench/main.exe -- --smoke --route-alg=both --check=full profile

bench:
	dune exec bench/main.exe

# Refresh the routed-result regression corpus in test/golden/ after an
# intentional router change (the golden diff test will tell you when).
regen-golden: build
	NANOMAP_REGEN_GOLDEN=$(CURDIR)/test/golden dune exec test/test_router.exe -- test golden

clean:
	dune clean
	rm -f BENCH_profile.json
