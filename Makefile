# Convenience wrapper; everything is plain dune underneath.

.PHONY: all build test check bench bench-mappers sat-smoke fuzz fuzz-smoke serve-smoke chaos-smoke explore-smoke map-designs-aig regen-golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# The PR gate: full build, every test suite, and a smoke-mode profile run
# of BOTH router algorithms at the strictest inter-stage checking level;
# it exercises the telemetry pipeline end to end and fails on an illegal
# routing, a checker violation, or empty telemetry.
check: build test
	dune exec bench/main.exe -- --smoke --route-alg=both --check=full profile

bench:
	dune exec bench/main.exe

# FlowMap-vs-AIG mapper comparison (smoke sizes): prints the tables and
# splices the mapper_comparison section into BENCH_profile.json.
bench-mappers: build
	dune exec bench/main.exe -- --smoke mapper-comparison

# Exact-placement smoke: the pinned-seed defect-tolerance survival sweep
# (SA vs the embedded CDCL solver). Gated internally — a SAT placement
# that fails Check.Full, an Unsat certificate exhaustive enumeration
# disproves, a solver give-up, or an SA/SAT race whose winner differs
# between one and four workers all exit nonzero. SAT_JOBS feeds --jobs;
# CI runs 1 and 4, expecting identical tables either way.
SAT_JOBS ?= 1
sat-smoke: build
	dune exec bench/main.exe -- --smoke --jobs=$(SAT_JOBS) defect-tolerance

# Differential fuzzing: random designs through the whole flow, four
# evaluation levels cross-checked per cycle (rtl-sim, lut-network,
# fabric-emulator, bitstream-replay). Failures shrink to minimal
# reproducers under test/corpus/, which dune runtest replays forever.
# Override e.g. FUZZ_SEED=7 FUZZ_COUNT=500 to steer a long campaign.
# FUZZ_JOBS sets the worker-domain count (0 = auto); campaign output is
# byte-identical for every value, only the wall clock changes.
# FUZZ_MAPPER selects the technology mapper the fuzzed flow uses
# (tt = FlowMap over the gate netlist, aig = priority cuts over the AIG);
# the CI matrix runs the same campaigns under both.
FUZZ_SEED ?= 1
FUZZ_COUNT ?= 200
FUZZ_JOBS ?= 0
FUZZ_MAPPER ?= tt
fuzz: build
	dune exec bin/nanomap_cli.exe -- fuzz --seed $(FUZZ_SEED) --count $(FUZZ_COUNT) --jobs $(FUZZ_JOBS) --mapper $(FUZZ_MAPPER) --corpus $(CURDIR)/test/corpus

# CI gate: a fixed-seed campaign sized to stay well under a minute,
# sweeping the folding regimes and larger designs than the default.
# Run with FUZZ_JOBS=1 and FUZZ_JOBS=4 in the CI matrix: identical
# verdicts, ~the wall-clock ratio is the parallel speedup.
fuzz-smoke: build
	dune exec bin/nanomap_cli.exe -- fuzz --seed 42 --count 2000 --cycles 60 --jobs $(FUZZ_JOBS) --mapper $(FUZZ_MAPPER)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 43 --count 1200 --folding none --jobs $(FUZZ_JOBS) --mapper $(FUZZ_MAPPER)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 44 --count 1200 --folding 2 --jobs $(FUZZ_JOBS) --mapper $(FUZZ_MAPPER)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 45 --count 600 --steps 48 --max-regs 6 --max-width 8 --jobs $(FUZZ_JOBS) --mapper $(FUZZ_MAPPER)

# Compile-as-a-service smoke: start a daemon on a unix socket, drive it
# with 200 generated jobs of which half repeat an earlier design, and
# fail unless the cache served every repeat (hit rate >= 0.5), the
# daemon acknowledged the shutdown, exited 0, and removed its socket.
# SERVE_JOBS sets the daemon's worker-domain count; CI runs 1 and 4 —
# the artifacts are identical either way, only the wall clock moves.
SERVE_JOBS ?= 1
serve-smoke: build
	rm -f .serve-smoke.sock
	dune exec bin/nanomap_cli.exe -- serve --socket .serve-smoke.sock --jobs $(SERVE_JOBS) & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -S .serve-smoke.sock ] && break; sleep 0.1; done; \
	[ -S .serve-smoke.sock ] || { kill $$pid 2>/dev/null; echo "daemon never bound its socket"; exit 1; }; \
	dune exec bin/nanomap_cli.exe -- submit --socket .serve-smoke.sock \
	  --gen 200 --dup 0.5 --min-hit-rate 0.5 --shutdown; \
	status=$$?; \
	wait $$pid || { echo "daemon exited nonzero"; status=1; }; \
	[ ! -e .serve-smoke.sock ] || { echo "socket file left behind"; status=1; }; \
	exit $$status

# Service-level chaos gate: a live daemon (bounded queue, default
# deadline, disk cache) under garbage frames, abrupt disconnects,
# hopeless deadlines, impossible designs and a 200-job overload burst.
# Fails unless every fault surfaces as its typed serve/* rejection, the
# required fraction of well-formed jobs completes (after overload
# retries), the post-chaos compile is byte-identical to the pre-chaos
# one, the disk cache verifies clean, and the daemon drains out on
# SIGTERM (exit 0, socket removed).
chaos-smoke: build
	rm -rf .chaos-smoke.sock .chaos-smoke-cache
	dune exec bin/nanomap_cli.exe -- serve --socket .chaos-smoke.sock \
	  --cache-dir .chaos-smoke-cache --max-queue 8 --deadline-ms 60000 \
	  --jobs $(SERVE_JOBS) & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -S .chaos-smoke.sock ] && break; sleep 0.1; done; \
	[ -S .chaos-smoke.sock ] || { kill $$pid 2>/dev/null; echo "daemon never bound its socket"; exit 1; }; \
	dune exec bin/nanomap_cli.exe -- chaos --socket .chaos-smoke.sock \
	  --total 200 --seed 42 --min-complete 0.95; \
	status=$$?; \
	dune exec bin/nanomap_cli.exe -- cache-check --cache-dir .chaos-smoke-cache || status=1; \
	kill -TERM $$pid 2>/dev/null; \
	wait $$pid || { echo "daemon did not drain cleanly on SIGTERM"; status=1; }; \
	[ ! -e .chaos-smoke.sock ] || { echo "socket file left behind"; status=1; }; \
	rm -rf .chaos-smoke-cache; \
	exit $$status

# Design-space exploration smoke gate: the pinned 2x2x2 mini-grid over
# two small designs, serial and then on EXPLORE_JOBS workers. Fails
# unless the Pareto frontier is non-empty and internally consistent (no
# frontier point dominates another; every feasible off-frontier point is
# dominated) and the serial/parallel JSON fingerprints are
# byte-identical. Splices the `explore` section into BENCH_explore.json.
EXPLORE_JOBS ?= 4
explore-smoke: build
	dune exec bench/main.exe -- --smoke --jobs=$(EXPLORE_JOBS) explore

# Every shipped VHDL design through the physical flow with the AIG mapper
# at the strictest checking level (includes the AIG-vs-gate spot check).
map-designs-aig: build
	for d in designs/*.vhd; do \
	  dune exec bin/nanomap_cli.exe -- map --vhdl $$d --mapper aig --check full || exit 1; \
	done

# Refresh the regression corpora in test/golden/ after an intentional
# router or explorer change (the golden diff tests will tell you when):
# the routed-result corpus and the explore smoke-grid report.
regen-golden: build
	NANOMAP_REGEN_GOLDEN=$(CURDIR)/test/golden dune exec test/test_router.exe -- test golden
	NANOMAP_REGEN_GOLDEN=$(CURDIR)/test/golden dune exec test/test_explore.exe -- test sweep

clean:
	dune clean
	rm -f BENCH_profile.json
