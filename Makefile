# Convenience wrapper; everything is plain dune underneath.

.PHONY: all build test check bench fuzz fuzz-smoke regen-golden clean

all: build

build:
	dune build @all

test:
	dune runtest

# The PR gate: full build, every test suite, and a smoke-mode profile run
# of BOTH router algorithms at the strictest inter-stage checking level;
# it exercises the telemetry pipeline end to end and fails on an illegal
# routing, a checker violation, or empty telemetry.
check: build test
	dune exec bench/main.exe -- --smoke --route-alg=both --check=full profile

bench:
	dune exec bench/main.exe

# Differential fuzzing: random designs through the whole flow, four
# evaluation levels cross-checked per cycle (rtl-sim, lut-network,
# fabric-emulator, bitstream-replay). Failures shrink to minimal
# reproducers under test/corpus/, which dune runtest replays forever.
# Override e.g. FUZZ_SEED=7 FUZZ_COUNT=500 to steer a long campaign.
# FUZZ_JOBS sets the worker-domain count (0 = auto); campaign output is
# byte-identical for every value, only the wall clock changes.
FUZZ_SEED ?= 1
FUZZ_COUNT ?= 200
FUZZ_JOBS ?= 0
fuzz: build
	dune exec bin/nanomap_cli.exe -- fuzz --seed $(FUZZ_SEED) --count $(FUZZ_COUNT) --jobs $(FUZZ_JOBS) --corpus $(CURDIR)/test/corpus

# CI gate: a fixed-seed campaign sized to stay well under a minute,
# sweeping the folding regimes and larger designs than the default.
# Run with FUZZ_JOBS=1 and FUZZ_JOBS=4 in the CI matrix: identical
# verdicts, ~the wall-clock ratio is the parallel speedup.
fuzz-smoke: build
	dune exec bin/nanomap_cli.exe -- fuzz --seed 42 --count 2000 --cycles 60 --jobs $(FUZZ_JOBS)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 43 --count 1200 --folding none --jobs $(FUZZ_JOBS)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 44 --count 1200 --folding 2 --jobs $(FUZZ_JOBS)
	dune exec bin/nanomap_cli.exe -- fuzz --seed 45 --count 600 --steps 48 --max-regs 6 --max-width 8 --jobs $(FUZZ_JOBS)

# Refresh the routed-result regression corpus in test/golden/ after an
# intentional router change (the golden diff test will tell you when).
regen-golden: build
	NANOMAP_REGEN_GOLDEN=$(CURDIR)/test/golden dune exec test/test_router.exe -- test golden

clean:
	dune clean
	rm -f BENCH_profile.json
