examples/fir_tradeoff.ml: List Nanomap_arch Nanomap_circuits Nanomap_core Nanomap_util Printf
