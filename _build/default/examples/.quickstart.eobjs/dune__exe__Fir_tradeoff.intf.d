examples/fir_tradeoff.mli:
