examples/motivational.ml: Array Hashtbl List Nanomap_arch Nanomap_circuits Nanomap_core Nanomap_rtl Nanomap_techmap Nanomap_util Printf
