examples/motivational.mli:
