examples/pipeline_stages.ml: Array Nanomap_arch Nanomap_circuits Nanomap_core Printf
