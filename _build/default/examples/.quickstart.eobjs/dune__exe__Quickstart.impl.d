examples/quickstart.ml: Bytes List Nanomap_arch Nanomap_bitstream Nanomap_core Nanomap_flow Nanomap_rtl Printf
