examples/quickstart.mli:
