(* Design-space exploration on the FIR filter: the Section 2.2 area-delay
   tradeoff. Sweeping the folding level trades LEs against clock cycles;
   the NRAM budget (k) cuts off the deep-folding end of the curve.

     dune exec examples/fir_tradeoff.exe *)

module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Circuits = Nanomap_circuits.Circuits
module Ascii_table = Nanomap_util.Ascii_table

let () =
  let b = Circuits.fir () in
  let p = Mapper.prepare b.Circuits.design in
  Printf.printf "FIR: %d LUTs, depth %d, %d flip-flops, %d plane(s)\n\n"
    p.Mapper.total_luts p.Mapper.depth_max p.Mapper.total_ffs p.Mapper.num_planes;
  let arch = Arch.unbounded_k in
  let t =
    Ascii_table.create
      [ "Folding level"; "Stages"; "#LEs"; "Delay (ns)"; "AT product"; "k needed" ]
  in
  let best = ref None in
  List.iter
    (fun (lvl, plan) ->
      let at = float_of_int plan.Mapper.les *. plan.Mapper.delay_ns in
      (match !best with
       | Some (_, best_at) when best_at <= at -> ()
       | _ -> best := Some (lvl, at));
      Ascii_table.add_row t
        [ string_of_int lvl;
          string_of_int plan.Mapper.stages;
          string_of_int plan.Mapper.les;
          Printf.sprintf "%.2f" plan.Mapper.delay_ns;
          Printf.sprintf "%.0f" at;
          string_of_int plan.Mapper.configs_used ])
    (Mapper.sweep p ~arch);
  let nf = Mapper.no_folding p ~arch in
  Ascii_table.add_separator t;
  Ascii_table.add_row t
    [ "no folding"; "1"; string_of_int nf.Mapper.les;
      Printf.sprintf "%.2f" nf.Mapper.delay_ns;
      Printf.sprintf "%.0f" (float_of_int nf.Mapper.les *. nf.Mapper.delay_ns);
      string_of_int nf.Mapper.configs_used ];
  Ascii_table.print t;
  (match !best with
   | Some (lvl, at) ->
     Printf.printf "\nbest AT product: folding level %d (AT = %.0f)\n" lvl at
   | None -> ());
  (* What a 16-set NRAM changes: folding cannot go deeper than the number
     of stored configurations allows (Eq. 3). *)
  let k16 = Mapper.at_min p ~arch:Arch.default in
  Printf.printf
    "with k = 16 configuration sets: level %d, %d LEs, %.2f ns (%d configs)\n"
    k16.Mapper.level k16.Mapper.les k16.Mapper.delay_ns k16.Mapper.configs_used
