(* The paper's Section 3 motivational example, reproduced on our substrate:
   the 4-bit controller-datapath of Fig. 1 is folded under an area
   constraint, and the per-folding-cycle resource usage is shown like
   Fig. 1(c). The example finishes with a functional equivalence check
   between the original RTL and the mapped LUT network.

     dune exec examples/motivational.exe *)

module Rtl = Nanomap_rtl.Rtl
module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Fold = Nanomap_core.Fold
module Circuits = Nanomap_circuits.Circuits
module Lut_network = Nanomap_techmap.Lut_network
module Stats = Nanomap_util.Stats
module Rng = Nanomap_util.Rng

let () =
  let b = Circuits.ex1_small () in
  let design = b.Circuits.design in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare design in
  Printf.printf "ex1 at 4 bits: %d LUTs, logic depth %d, %d flip-flops\n"
    p.Mapper.total_luts p.Mapper.depth_max p.Mapper.total_ffs;
  Printf.printf "(the paper's version: 50 LUTs, depth 9, 14 flip-flops)\n\n";
  (* Delay minimization under an area constraint, as in Section 3. *)
  let budget = (p.Mapper.total_luts * 2 / 3) + 1 in
  let stages0 = Fold.min_stages ~lut_max:p.Mapper.lut_max ~available_le:budget in
  let level0 = Fold.level_for_stages ~depth_max:p.Mapper.depth_max ~stages:stages0 in
  Printf.printf "area constraint: %d LEs\n" budget;
  Printf.printf "Eq. 1: minimum #folding stages = ceil(%d / %d) = %d\n"
    p.Mapper.lut_max budget stages0;
  Printf.printf "Eq. 2: initial folding level   = ceil(%d / %d) = %d\n"
    p.Mapper.depth_max stages0 level0;
  let plan = Mapper.delay_min ~area:budget p ~arch in
  Printf.printf "after the refinement loop: level %d, %d folding stages\n\n"
    plan.Mapper.level plan.Mapper.stages;
  (* Fig. 1(c): LE usage per folding cycle. *)
  Printf.printf "per-folding-cycle usage (cf. Fig. 1(c)'s 12/32/12):\n";
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let luts = Sched.lut_count_per_stage pl.Mapper.problem pl.Mapper.schedule in
      let ffs = Sched.ff_bits_per_stage pl.Mapper.problem pl.Mapper.schedule in
      for j = 1 to plan.Mapper.stages do
        Printf.printf "  folding cycle %d: %2d LUTs, %2d stored bits -> %2d LEs\n" j
          luts.(j) ffs.(j)
          (max luts.(j) (Stats.ceil_div ffs.(j) arch.Arch.ffs_per_le))
      done)
    plan.Mapper.planes;
  Printf.printf "LE requirement: %d (constraint %d)\n\n" plan.Mapper.les budget;
  (* Functional check: drive the RTL simulator and the mapped LUT network
     side by side for a few hundred cycles. *)
  let pl = plan.Mapper.planes.(0) in
  let network = pl.Mapper.network in
  let sim = Rtl.sim_create design in
  let state = Hashtbl.create 8 in
  List.iter
    (fun (s : Rtl.signal) -> Hashtbl.replace state s.Rtl.id 0)
    (Rtl.registers design);
  let rng = Rng.create 7 in
  let cycles = 300 in
  let mismatches = ref 0 in
  for _ = 1 to cycles do
    let in1 = Rng.int rng 16 and go = Rng.int rng 2 in
    let rtl_outs = Rtl.sim_cycle sim [ ("in1", in1); ("go", go) ] in
    let inputs_by_name =
      List.map (fun (s : Rtl.signal) -> (s.Rtl.id, s.Rtl.name)) (Rtl.inputs design)
    in
    let origin_value = function
      | Lut_network.Register_bit (r, bit) ->
        Hashtbl.find state r land (1 lsl bit) <> 0
      | Lut_network.Pi_bit (s, bit) ->
        let v = if List.assoc s inputs_by_name = "in1" then in1 else go in
        v land (1 lsl bit) <> 0
      | Lut_network.Const_bit v -> v
      | Lut_network.Wire_bit _ -> false
    in
    let values = Lut_network.eval network origin_value in
    let outs = Lut_network.outputs network in
    (* compare the primary output *)
    let rtl_result = List.assoc "result" rtl_outs in
    for bit = 0 to 3 do
      let node = List.assoc (Lut_network.Po_target (Printf.sprintf "result.%d" bit)) outs in
      let expected = rtl_result land (1 lsl bit) <> 0 in
      if values.(node) <> expected then incr mismatches
    done;
    (* clock the mirrored registers *)
    List.iter
      (fun (s : Rtl.signal) ->
        let v = ref 0 in
        for bit = 0 to s.Rtl.width - 1 do
          match List.assoc_opt (Lut_network.Reg_target (s.Rtl.id, bit)) outs with
          | Some node -> if values.(node) then v := !v lor (1 lsl bit)
          | None -> ()
        done;
        Hashtbl.replace state s.Rtl.id !v)
      (Rtl.registers design)
  done;
  Printf.printf "functional check: %d cycles, %d mismatches between RTL and mapping\n"
    cycles !mismatches;
  if !mismatches > 0 then exit 1
