(* The Section 4.1 "multiple planes are not allowed to share resources"
   scenario (Eq. 4): a pipelined circuit whose stages must stay resident
   simultaneously because every plane processes a different data item each
   clock. Folding then happens within each plane only, and the total area
   is the SUM over planes rather than the max.

     dune exec examples/pipeline_stages.exe *)

module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Fold = Nanomap_core.Fold
module Circuits = Nanomap_circuits.Circuits

let () =
  let b = Circuits.ex2 () in
  let p = Mapper.prepare b.Circuits.design in
  let arch = Arch.unbounded_k in
  Printf.printf "ex2: %d planes, %d LUTs total, max plane depth %d\n\n"
    p.Mapper.num_planes p.Mapper.total_luts p.Mapper.depth_max;
  (* Eq. 4: the folding level a given area budget implies when planes keep
     separate resources. *)
  let budget = p.Mapper.total_luts / 3 in
  let level =
    Fold.level_pipelined ~depth_max:p.Mapper.depth_max ~available_le:budget
      ~total_luts:p.Mapper.total_luts
  in
  Printf.printf "area budget %d LEs -> Eq. 4 folding level = %d\n\n" budget level;
  let plan = Mapper.plan_level ~pipelined:true p ~arch ~level in
  (* Per-plane LE needs from the schedule. *)
  let per_plane =
    Array.map
      (fun (pl : Mapper.plane_plan) ->
        Sched.les_needed pl.Mapper.problem ~arch pl.Mapper.schedule)
      plan.Mapper.planes
  in
  Array.iteri
    (fun i les -> Printf.printf "  plane %d: %4d LEs over %d folding stages\n"
        (i + 1) les plan.Mapper.stages)
    per_plane;
  let shared = Array.fold_left max 1 per_plane in
  let pipelined = plan.Mapper.les in
  Printf.printf "\nresource-shared execution (planes run one after another): %d LEs\n"
    shared;
  Printf.printf "pipelined execution (planes resident simultaneously):    %d LEs\n"
    pipelined;
  Printf.printf "sharing saves %.0f%% of the fabric at the cost of 1/%d throughput\n"
    (100. *. (1. -. (float_of_int shared /. float_of_int pipelined)))
    p.Mapper.num_planes;
  (* Throughput view: pipelined mode accepts a new input every plane cycle;
     shared mode every num_planes plane cycles. *)
  let plane_cycle =
    Arch.plane_cycle_ns arch ~level:plan.Mapper.level ~stages:plan.Mapper.stages
  in
  Printf.printf
    "\nthroughput: pipelined %.1f Msamples/s vs shared %.1f Msamples/s\n"
    (1000. /. plane_cycle)
    (1000. /. (plane_cycle *. float_of_int p.Mapper.num_planes))
