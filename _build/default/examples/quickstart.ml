(* Quickstart: build a small RTL design with the public API, run the whole
   NanoMap flow on it, and look at what temporal folding bought us.

     dune exec examples/quickstart.exe *)

module Rtl = Nanomap_rtl.Rtl
module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Flow = Nanomap_flow.Flow

(* A multiply-accumulate unit: acc <- acc + a*b, with a clear control. *)
let mac_design () =
  let d = Rtl.create "mac" in
  let a = Rtl.add_input d "a" 8 in
  let b = Rtl.add_input d "b" 8 in
  let clear = Rtl.add_input d "clear" 1 in
  let acc = Rtl.add_register d ~name:"acc" ~width:16 () in
  let product = Rtl.add_op d ~name:"mult" ~width:16 (Rtl.Mult (a, b)) in
  let sum = Rtl.add_op d ~name:"add" ~width:16 (Rtl.Add (acc, product)) in
  let zero = Rtl.add_const d ~width:16 0 in
  let next = Rtl.add_op d ~name:"mux" ~width:16 (Rtl.Mux (clear, sum, zero)) in
  Rtl.connect_register d acc ~d:next;
  Rtl.mark_output d "acc" next;
  d

let () =
  let design = mac_design () in
  (* Sanity-check the design behaviourally first. *)
  let sim = Rtl.sim_create design in
  ignore (Rtl.sim_cycle sim [ ("a", 3); ("b", 5); ("clear", 0) ]);
  let outs = Rtl.sim_cycle sim [ ("a", 10); ("b", 10); ("clear", 0) ] in
  Printf.printf "simulation: acc after 3*5 then +10*10 = %d (expect 115)\n\n"
    (List.assoc "acc" outs);
  (* The traditional-FPGA baseline: everything spatial. *)
  let baseline =
    Flow.run
      ~options:{ Flow.default_options with Flow.objective = Flow.No_folding }
      ~arch:Arch.unbounded_k design
  in
  Printf.printf "no folding:    %4d LEs, %6.2f ns\n" baseline.Flow.area_les
    baseline.Flow.delay_model_ns;
  (* NanoMap's AT-product optimization with cycle-by-cycle reconfiguration. *)
  let folded = Flow.run ~arch:Arch.default design in
  Printf.printf "AT-optimized:  %4d LEs, %6.2f ns  (folding level %d, %d stages)\n"
    folded.Flow.area_les folded.Flow.delay_model_ns folded.Flow.plan.Mapper.level
    folded.Flow.plan.Mapper.stages;
  let at plan_les delay = float_of_int plan_les *. delay in
  Printf.printf "area-time product improvement: %.1fX\n"
    (at baseline.Flow.area_les baseline.Flow.delay_model_ns
    /. at folded.Flow.area_les folded.Flow.delay_model_ns);
  (match folded.Flow.delay_routed_ns with
   | Some d -> Printf.printf "post-route circuit delay: %.2f ns\n" d
   | None -> ());
  (match folded.Flow.bitstream with
   | Some bs ->
     Printf.printf "configuration bitmap: %d bytes for %d configurations\n"
       (Bytes.length bs.Nanomap_bitstream.Bitstream.bytes)
       bs.Nanomap_bitstream.Bitstream.configs
   | None -> ())
