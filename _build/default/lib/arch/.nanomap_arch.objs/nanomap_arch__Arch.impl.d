lib/arch/arch.ml: Nanomap_util
