lib/arch/arch.mli:
