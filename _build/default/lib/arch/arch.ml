type t = {
  lut_inputs : int;
  luts_per_le : int;
  ffs_per_le : int;
  les_per_mb : int;
  mbs_per_smb : int;
  smb_input_pins : int;
  mb_input_ports : int;
  num_reconf : int option;
  t_lut : float;
  t_local : float;
  t_intra_mb : float;
  t_reconf : float;
  t_setup : float;
  t_direct : float;
  t_len1 : float;
  t_len4 : float;
  t_global : float;
  smb_area : float;
  e_lut_eval : float;
  e_reconf : float;
  e_wire : float;
  p_leak_le : float;
}

(* Delay calibration: the paper reports ex1 (depth 24) at 12.90 ns with no
   folding, i.e. ~0.5375 ns per LUT level including local routing, and a
   160 ps NRAM reconfiguration. The split between LUT and local wire is our
   choice; only the sum is anchored. *)
let default =
  { lut_inputs = 4;
    luts_per_le = 1;
    ffs_per_le = 2;
    les_per_mb = 4;
    mbs_per_smb = 4;
    smb_input_pins = 40;
    mb_input_ports = 14;
    num_reconf = Some 16;
    t_lut = 0.32;
    t_local = 0.2175;
    t_intra_mb = 0.10;
    t_reconf = 0.16;
    t_setup = 0.0;
    t_direct = 0.25;
    t_len1 = 0.35;
    t_len4 = 0.55;
    t_global = 0.90;
    smb_area = 5400.0;
    e_lut_eval = 0.012;
    e_reconf = 0.020;
    e_wire = 0.008;
    p_leak_le = 0.06 }

let unbounded_k = { default with num_reconf = None }

let with_num_reconf t num_reconf = { t with num_reconf }

let les_per_smb t = t.les_per_mb * t.mbs_per_smb

let les_to_smbs t les = Nanomap_util.Stats.ceil_div (max les 1) (les_per_smb t)

let area_um2 t les = float_of_int (les_to_smbs t les) *. t.smb_area

let folding_cycle_ns t ~level =
  (float_of_int level *. (t.t_lut +. t.t_local)) +. t.t_reconf +. t.t_setup

let plane_cycle_ns t ~level ~stages =
  if stages <= 1 then
    (* no folding within the plane: no run-time reconfiguration *)
    (float_of_int level *. (t.t_lut +. t.t_local)) +. t.t_setup
  else float_of_int stages *. folding_cycle_ns t ~level

let circuit_delay_ns t ~level ~stages ~num_planes =
  float_of_int num_planes *. plane_cycle_ns t ~level ~stages

let energy_per_computation_pj t ~luts_evaluated ~les ~stages ~num_planes
    ~wire_segments ~delay_ns =
  let dynamic = float_of_int luts_evaluated *. t.e_lut_eval in
  (* every folding cycle after the first reconfigures the active LEs *)
  let reconf_events = max 0 (stages - 1) * num_planes * les in
  let reconf = float_of_int reconf_events *. t.e_reconf in
  let wires = float_of_int wire_segments *. t.e_wire in
  (* leakage: uW * ns = fJ; /1000 to pJ *)
  let leak = float_of_int les *. t.p_leak_le *. delay_ns /. 1000.0 in
  dynamic +. reconf +. wires +. leak

let validate t =
  let pos name v = if v <= 0 then invalid_arg ("Arch: " ^ name ^ " must be positive") in
  pos "lut_inputs" t.lut_inputs;
  pos "luts_per_le" t.luts_per_le;
  pos "ffs_per_le" t.ffs_per_le;
  pos "les_per_mb" t.les_per_mb;
  pos "mbs_per_smb" t.mbs_per_smb;
  if t.smb_input_pins < t.lut_inputs then
    invalid_arg "Arch: smb_input_pins must cover one LUT's inputs";
  if t.mb_input_ports < t.lut_inputs then
    invalid_arg "Arch: mb_input_ports must cover one LUT's inputs";
  (match t.num_reconf with Some k -> pos "num_reconf" k | None -> ());
  let posf name v =
    if v < 0.0 then invalid_arg ("Arch: " ^ name ^ " must be non-negative")
  in
  posf "t_lut" t.t_lut;
  posf "t_local" t.t_local;
  posf "t_reconf" t.t_reconf;
  posf "t_setup" t.t_setup;
  posf "smb_area" t.smb_area
