lib/bitstream/bitstream.ml: Array Buffer Bytes Char Hashtbl Int64 List Nanomap_arch Nanomap_cluster Nanomap_core Nanomap_logic Nanomap_route Nanomap_techmap Option
