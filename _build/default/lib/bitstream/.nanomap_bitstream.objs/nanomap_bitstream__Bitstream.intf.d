lib/bitstream/bitstream.mli: Bytes Nanomap_arch Nanomap_cluster Nanomap_core Nanomap_route
