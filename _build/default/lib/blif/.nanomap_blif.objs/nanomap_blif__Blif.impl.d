lib/blif/blif.ml: Array Buffer Fun Hashtbl List Nanomap_logic Printf String
