lib/blif/blif.mli: Nanomap_logic
