lib/blif/blif_rtl.ml: Array Blif Hashtbl List Nanomap_logic Nanomap_rtl Option String
