lib/blif/blif_rtl.mli: Blif Nanomap_rtl
