module Rtl = Nanomap_rtl.Rtl
module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist

let design_of_model (model : Blif.model) =
  let lowered = Blif.lower model in
  let nl = lowered.Blif.netlist in
  let design = Rtl.create model.Blif.name in
  (* latches first: registers whose data inputs we connect at the end *)
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (l : Blif.latch) ->
      let r =
        Rtl.add_register design ~init:(if l.Blif.init then 1 else 0)
          ~name:l.Blif.data_out ~width:1 ()
      in
      Hashtbl.replace regs l.Blif.data_out r)
    lowered.Blif.latch_list;
  (* map every gate-netlist node to an RTL signal *)
  let signal_of = Array.make (Gate_netlist.size nl) (-1) in
  Gate_netlist.iter
    (fun id (node : Gate_netlist.node) ->
      let rtl_id =
        match node.Gate_netlist.kind with
        | Gate.Input ->
          let name = Option.value node.Gate_netlist.name ~default:"in" in
          (match Hashtbl.find_opt regs name with
           | Some r -> r
           | None -> Rtl.add_input design name 1)
        | Gate.Const b -> Rtl.add_const design ~width:1 (if b then 1 else 0)
        | kind ->
          let tt = Gate.truth_table kind in
          let args =
            Array.to_list (Array.map (fun f -> signal_of.(f)) node.Gate_netlist.fanins)
          in
          Rtl.add_op design ?name:node.Gate_netlist.name ~width:1
            (Rtl.Table (tt, args))
      in
      signal_of.(id) <- rtl_id)
    nl;
  (* outputs: model POs and latch data inputs *)
  List.iter
    (fun (name, gid) ->
      match String.length name >= 7 && String.sub name 0 7 = "$latch." with
      | true ->
        let reg_name = String.sub name 7 (String.length name - 7) in
        let r = Hashtbl.find regs reg_name in
        Rtl.connect_register design r ~d:signal_of.(gid)
      | false -> Rtl.mark_output design name signal_of.(gid))
    (Gate_netlist.outputs nl);
  Rtl.validate design;
  design

let design_of_file path = design_of_model (Blif.parse_file path)
