(** Bridge from parsed BLIF models to the RTL IR the flow consumes.

    Every combinational gate becomes a 1-bit {!Nanomap_rtl.Rtl.Table}
    operator (so a gate-level input has no datapath modules — exactly the
    c5315 situation in the paper), and every latch becomes a register. *)

val design_of_model : Blif.model -> Nanomap_rtl.Rtl.t
(** Raises [Failure] on combinational cycles or undefined signals. *)

val design_of_file : string -> Nanomap_rtl.Rtl.t
(** Parse + convert. Raises {!Blif.Parse_error} or [Failure]. *)
