lib/circuits/circuits.ml: Array Int64 List Nanomap_logic Nanomap_rtl Option Printf String
