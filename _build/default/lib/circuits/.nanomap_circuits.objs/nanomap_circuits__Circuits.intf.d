lib/circuits/circuits.mli: Nanomap_rtl
