module Rtl = Nanomap_rtl.Rtl
module Truth_table = Nanomap_logic.Truth_table

type benchmark = {
  name : string;
  design : Rtl.t;
  description : string;
}

let tt3 bits = Truth_table.of_bits ~arity:3 (Int64.of_int bits)

(* ------------------------------------------------------------------ ex1 *)

(* Fig. 1: a controller (two state flip-flops, four controller LUTs) and a
   datapath (three registers, a ripple-carry adder, a parallel multiplier),
   single plane with feedback. *)
let ex1_width w name =
  let d = Rtl.create name in
  let in1 = Rtl.add_input d "in1" w in
  let go = Rtl.add_input d "go" 1 in
  let s0 = Rtl.add_register d ~name:"s0" ~width:1 () in
  let s1 = Rtl.add_register d ~name:"s1" ~width:1 () in
  let reg1 = Rtl.add_register d ~name:"reg1" ~width:w () in
  let reg2 = Rtl.add_register d ~name:"reg2" ~width:w () in
  let reg3 = Rtl.add_register d ~name:"reg3" ~width:w () in
  let lut1 = Rtl.add_op d ~name:"lut1" ~width:1 (Rtl.Table (tt3 0b10110100, [ s0; s1; go ])) in
  let lut2 = Rtl.add_op d ~name:"lut2" ~width:1 (Rtl.Table (tt3 0b01101001, [ s0; s1; go ])) in
  let lut3 = Rtl.add_op d ~name:"lut3" ~width:1 (Rtl.Table (tt3 0b11001010, [ s0; s1; go ])) in
  let lut4 = Rtl.add_op d ~name:"lut4" ~width:1 (Rtl.Table (tt3 0b00111100, [ s0; s1; go ])) in
  let add = Rtl.add_op d ~name:"adder" ~width:w (Rtl.Add (reg1, reg2)) in
  let prod = Rtl.add_op d ~name:"mult" ~width:(2 * w) (Rtl.Mult (reg1, reg3)) in
  let prod_lo = Rtl.add_op d ~width:w (Rtl.Slice (prod, 0)) in
  let prod_hi = Rtl.add_op d ~width:w (Rtl.Slice (prod, w)) in
  Rtl.connect_register d s0 ~d:lut1;
  Rtl.connect_register d s1 ~d:lut2;
  Rtl.connect_register d reg1
    ~d:(Rtl.add_op d ~name:"mux1" ~width:w (Rtl.Mux (lut3, add, in1)));
  Rtl.connect_register d reg2
    ~d:(Rtl.add_op d ~name:"mux2" ~width:w (Rtl.Mux (lut4, reg2, prod_lo)));
  Rtl.connect_register d reg3
    ~d:(Rtl.add_op d ~name:"mux3" ~width:w (Rtl.Mux (lut4, reg3, prod_hi)));
  Rtl.mark_output d "result" add;
  d

let ex1 ?(width = 16) () =
  { name = "ex1";
    design = ex1_width width "ex1";
    description = "Fig.1 controller-datapath (FSM + adder + multiplier), 16-bit" }

let ex1_small () =
  { name = "ex1-4bit";
    design = ex1_width 4 "ex1-4bit";
    description = "Fig.1 motivational example at 4-bit width" }

(* ------------------------------------------------------------------ FIR *)

(* Direct-form FIR: registered delay line, constant coefficients (constant
   multiplies fold into shift-add trees), combinational MAC to the output.
   Single plane: the delay line is a direct register-to-register chain. *)
let fir ?(taps = 8) ?(width = 14) () =
  let d = Rtl.create "FIR" in
  let x = Rtl.add_input d "x" width in
  let coeffs = [| 3; 11; 25; 31; 31; 25; 11; 3; 7; 19; 29; 13 |] in
  if taps < 2 || taps > Array.length coeffs then invalid_arg "Circuits.fir: taps";
  let delay =
    Array.make taps x |> Array.mapi (fun i _ ->
        Rtl.add_register d ~name:(Printf.sprintf "tap%d" i) ~width ())
  in
  Array.iteri
    (fun i r -> Rtl.connect_register d r ~d:(if i = 0 then x else delay.(i - 1)))
    delay;
  let cw = 5 in
  let products =
    Array.to_list delay
    |> List.mapi (fun i tap ->
           let c = Rtl.add_const d ~width:cw coeffs.(i) in
           let p =
             Rtl.add_op d ~name:(Printf.sprintf "mul%d" i) ~width:(width + cw)
               (Rtl.Mult (tap, c))
           in
           p)
  in
  (* Balanced adder tree at full precision. *)
  let rec tree = function
    | [] -> invalid_arg "fir"
    | [ p ] -> p
    | ps ->
      let rec pair = function
        | [] -> []
        | [ p ] -> [ p ]
        | p :: q :: rest ->
          Rtl.add_op d ~name:"acc" ~width:(width + cw) (Rtl.Add (p, q)) :: pair rest
      in
      tree (pair ps)
  in
  let y = tree products in
  Rtl.mark_output d "y" y;
  { name = "FIR";
    design = d;
    description = "direct-form FIR filter, 8 taps, constant coefficients" }

(* ------------------------------------------------------------------ ex2 *)

(* Three-stage feed-forward pipelined controller-datapath (three planes):
   multiply, add/sub + compare, final multiply-accumulate. *)
let ex2 ?(width = 12) () =
  let w = width in
  let d = Rtl.create "ex2" in
  let in1 = Rtl.add_input d "in1" w in
  let in2 = Rtl.add_input d "in2" w in
  (* stage 1 input registers *)
  let ra = Rtl.add_register d ~name:"ra" ~width:w () in
  let rb = Rtl.add_register d ~name:"rb" ~width:w () in
  Rtl.connect_register d ra ~d:in1;
  Rtl.connect_register d rb ~d:in2;
  (* plane 1: product and sum *)
  let p1 = Rtl.add_op d ~name:"mul_ab" ~width:(2 * w) (Rtl.Mult (ra, rb)) in
  let p1_lo = Rtl.add_op d ~width:w (Rtl.Slice (p1, 0)) in
  let p1_hi = Rtl.add_op d ~width:w (Rtl.Slice (p1, w)) in
  let s1 = Rtl.add_op d ~name:"add_ab" ~width:w (Rtl.Add (ra, rb)) in
  let r_lo = Rtl.add_register d ~name:"r_lo" ~width:w () in
  let r_hi = Rtl.add_register d ~name:"r_hi" ~width:w () in
  let r_s1 = Rtl.add_register d ~name:"r_s1" ~width:w () in
  Rtl.connect_register d r_lo ~d:p1_lo;
  Rtl.connect_register d r_hi ~d:p1_hi;
  Rtl.connect_register d r_s1 ~d:s1;
  (* plane 2: add/sub and comparison steering *)
  let sum2 = Rtl.add_op d ~name:"add2" ~width:w (Rtl.Add (r_lo, r_s1)) in
  let diff2 = Rtl.add_op d ~name:"sub2" ~width:w (Rtl.Sub (r_hi, r_s1)) in
  let less = Rtl.add_op d ~name:"cmp2" ~width:1 (Rtl.Lt (r_lo, r_hi)) in
  let pick = Rtl.add_op d ~name:"mux2" ~width:w (Rtl.Mux (less, sum2, diff2)) in
  let r_pick = Rtl.add_register d ~name:"r_pick" ~width:w () in
  let r_sum2 = Rtl.add_register d ~name:"r_sum2" ~width:w () in
  Rtl.connect_register d r_pick ~d:pick;
  Rtl.connect_register d r_sum2 ~d:sum2;
  (* plane 3: final product and blend *)
  let p3 = Rtl.add_op d ~name:"mul3" ~width:(2 * w) (Rtl.Mult (r_pick, r_sum2)) in
  let p3_lo = Rtl.add_op d ~width:w (Rtl.Slice (p3, 0)) in
  let out = Rtl.add_op d ~name:"xor3" ~width:w (Rtl.Bit_xor (p3_lo, r_pick)) in
  Rtl.mark_output d "out" out;
  { name = "ex2";
    design = d;
    description = "three-stage pipelined controller-datapath (3 planes)" }

(* ---------------------------------------------------------------- c5315 *)

(* Stand-in for the ISCAS'85 c5315 9-bit ALU: purely combinational, two ALU
   slices plus compare/parity glue. Gate-level in spirit: no registers. *)
let c5315 ?(width = 9) () =
  let w = width in
  let d = Rtl.create "c5315" in
  let a = Rtl.add_input d "a" w in
  let b = Rtl.add_input d "b" w in
  let c = Rtl.add_input d "c" w in
  let e = Rtl.add_input d "e" w in
  let op = Rtl.add_input d "op" 1 in
  let slice name x y =
    let add = Rtl.add_op d ~name:(name ^ "_add") ~width:w (Rtl.Add (x, y)) in
    let sub = Rtl.add_op d ~name:(name ^ "_sub") ~width:w (Rtl.Sub (x, y)) in
    let band = Rtl.add_op d ~name:(name ^ "_and") ~width:w (Rtl.Bit_and (x, y)) in
    let bor = Rtl.add_op d ~name:(name ^ "_or") ~width:w (Rtl.Bit_or (x, y)) in
    let bxor = Rtl.add_op d ~name:(name ^ "_xor") ~width:w (Rtl.Bit_xor (x, y)) in
    let arith = Rtl.add_op d ~name:(name ^ "_m1") ~width:w (Rtl.Mux (op, add, sub)) in
    let logic = Rtl.add_op d ~name:(name ^ "_m2") ~width:w (Rtl.Mux (op, band, bor)) in
    let mixed = Rtl.add_op d ~name:(name ^ "_m3") ~width:w (Rtl.Mux (op, logic, bxor)) in
    let out = Rtl.add_op d ~name:(name ^ "_m4") ~width:w (Rtl.Mux (op, arith, mixed)) in
    (out, arith, mixed)
  in
  let out1, ar1, mx1 = slice "s1" a b in
  let out2, ar2, mx2 = slice "s2" c e in
  let cross = Rtl.add_op d ~name:"cross_add" ~width:w (Rtl.Add (ar1, ar2)) in
  let prod = Rtl.add_op d ~name:"cross_mul" ~width:(2 * w) (Rtl.Mult (mx1, mx2)) in
  let prod_lo = Rtl.add_op d ~width:w (Rtl.Slice (prod, 0)) in
  let eq = Rtl.add_op d ~name:"eq" ~width:1 (Rtl.Eq (out1, out2)) in
  let lt = Rtl.add_op d ~name:"lt" ~width:1 (Rtl.Lt (out1, out2)) in
  let blend = Rtl.add_op d ~name:"blend" ~width:w (Rtl.Bit_xor (cross, prod_lo)) in
  Rtl.mark_output d "out1" out1;
  Rtl.mark_output d "out2" out2;
  Rtl.mark_output d "blend" blend;
  Rtl.mark_output d "eq" eq;
  Rtl.mark_output d "lt" lt;
  { name = "c5315";
    design = d;
    description = "combinational 9-bit dual-slice ALU (ISCAS'85 c5315 stand-in)" }

(* --------------------------------------------------------------- Biquad *)

(* Direct-form-I biquad IIR section with constant coefficients; the output
   feedback into the y delay line keeps everything in one plane. *)
let biquad ?(width = 16) () =
  let w = width in
  let cw = 5 in
  let d = Rtl.create "Biquad" in
  let x = Rtl.add_input d "x" w in
  let x1 = Rtl.add_register d ~name:"x1" ~width:w () in
  let x2 = Rtl.add_register d ~name:"x2" ~width:w () in
  let y1 = Rtl.add_register d ~name:"y1" ~width:w () in
  let y2 = Rtl.add_register d ~name:"y2" ~width:w () in
  Rtl.connect_register d x1 ~d:x;
  Rtl.connect_register d x2 ~d:x1;
  let cmul name tap coeff =
    let c = Rtl.add_const d ~width:cw coeff in
    let p = Rtl.add_op d ~name ~width:(w + cw) (Rtl.Mult (tap, c)) in
    Rtl.add_op d ~width:w (Rtl.Slice (p, cw - 1))
  in
  let b0 = cmul "b0x" x 27 in
  let b1 = cmul "b1x" x1 21 in
  let b2 = cmul "b2x" x2 13 in
  let a1 = cmul "a1y" y1 19 in
  let a2 = cmul "a2y" y2 9 in
  let s1 = Rtl.add_op d ~name:"acc1" ~width:w (Rtl.Add (b0, b1)) in
  let s2 = Rtl.add_op d ~name:"acc2" ~width:w (Rtl.Add (s1, b2)) in
  let s3 = Rtl.add_op d ~name:"fb1" ~width:w (Rtl.Sub (s2, a1)) in
  let y = Rtl.add_op d ~name:"fb2" ~width:w (Rtl.Sub (s3, a2)) in
  Rtl.connect_register d y1 ~d:y;
  Rtl.connect_register d y2 ~d:y1;
  Rtl.mark_output d "y" y;
  { name = "Biquad";
    design = d;
    description = "direct-form-I biquad IIR filter section, 16-bit" }

(* --------------------------------------------------------------- Paulin *)

(* The differential-equation solver datapath (Paulin & Knight's classic
   HLS benchmark), two-stage pipelined: multiplies, then adds/subtracts. *)
let paulin ?(width = 12) () =
  let w = width in
  let d = Rtl.create "Paulin" in
  let x_in = Rtl.add_input d "x" w in
  let y_in = Rtl.add_input d "y" w in
  let u_in = Rtl.add_input d "u" w in
  let dx_in = Rtl.add_input d "dx" w in
  (* stage-1 input registers *)
  let xr = Rtl.add_register d ~name:"xr" ~width:w () in
  let yr = Rtl.add_register d ~name:"yr" ~width:w () in
  let ur = Rtl.add_register d ~name:"ur" ~width:w () in
  let dxr = Rtl.add_register d ~name:"dxr" ~width:w () in
  Rtl.connect_register d xr ~d:x_in;
  Rtl.connect_register d yr ~d:y_in;
  Rtl.connect_register d ur ~d:u_in;
  Rtl.connect_register d dxr ~d:dx_in;
  (* plane 1: the three products of the diffeq update *)
  let mul name a b =
    let p = Rtl.add_op d ~name ~width:(2 * w) (Rtl.Mult (a, b)) in
    Rtl.add_op d ~width:w (Rtl.Slice (p, w / 2))
  in
  let xu = mul "mul_xu" xr ur in
  let ydx = mul "mul_ydx" yr dxr in
  let udx = mul "mul_udx" ur dxr in
  let p_xu = Rtl.add_register d ~name:"p_xu" ~width:w () in
  let p_ydx = Rtl.add_register d ~name:"p_ydx" ~width:w () in
  let p_udx = Rtl.add_register d ~name:"p_udx" ~width:w () in
  let x2 = Rtl.add_register d ~name:"x2" ~width:w () in
  let y2 = Rtl.add_register d ~name:"y2" ~width:w () in
  let u2 = Rtl.add_register d ~name:"u2" ~width:w () in
  let dx2 = Rtl.add_register d ~name:"dx2" ~width:w () in
  Rtl.connect_register d p_xu ~d:xu;
  Rtl.connect_register d p_ydx ~d:ydx;
  Rtl.connect_register d p_udx ~d:udx;
  Rtl.connect_register d x2 ~d:xr;
  Rtl.connect_register d y2 ~d:yr;
  Rtl.connect_register d u2 ~d:ur;
  Rtl.connect_register d dx2 ~d:dxr;
  (* plane 2: u' = u - 3*x*u*dx - 3*y*dx approximated at fixed point as
     u - 3*p_xu - 3*p_ydx; y' = y + u*dx; x' = x + dx *)
  let times3 name s =
    let doubled = Rtl.add_op d ~width:w (Rtl.Concat (Rtl.add_const d ~width:1 0, Rtl.add_op d ~width:(w - 1) (Rtl.Slice (s, 0)))) in
    Rtl.add_op d ~name ~width:w (Rtl.Add (s, doubled))
  in
  let t1 = times3 "t3_xu" p_xu in
  let t2 = times3 "t3_ydx" p_ydx in
  let u_a = Rtl.add_op d ~name:"sub_u1" ~width:w (Rtl.Sub (u2, t1)) in
  let u_next = Rtl.add_op d ~name:"sub_u2" ~width:w (Rtl.Sub (u_a, t2)) in
  let y_next = Rtl.add_op d ~name:"add_y" ~width:w (Rtl.Add (y2, p_udx)) in
  let x_next = Rtl.add_op d ~name:"add_x" ~width:w (Rtl.Add (x2, dx2)) in
  Rtl.mark_output d "x_next" x_next;
  Rtl.mark_output d "y_next" y_next;
  Rtl.mark_output d "u_next" u_next;
  { name = "Paulin";
    design = d;
    description = "differential-equation solver datapath, 2-stage pipeline" }

(* ---------------------------------------------------------------- ASPP4 *)

(* An application-specific programmable processor slice: decode/execute
   pipeline with two multipliers and an ALU bank (two planes). *)
let aspp4 ?(width = 14) () =
  let w = width in
  let d = Rtl.create "ASPP4" in
  let opa = Rtl.add_input d "opa" w in
  let opb = Rtl.add_input d "opb" w in
  let opc = Rtl.add_input d "opc" w in
  let opd = Rtl.add_input d "opd" w in
  let ctl = Rtl.add_input d "ctl" 3 in
  (* stage-1 registers *)
  let ra = Rtl.add_register d ~name:"ra" ~width:w () in
  let rb = Rtl.add_register d ~name:"rb" ~width:w () in
  let rc = Rtl.add_register d ~name:"rc" ~width:w () in
  let rd = Rtl.add_register d ~name:"rd" ~width:w () in
  let rctl = Rtl.add_register d ~name:"rctl" ~width:3 () in
  Rtl.connect_register d ra ~d:opa;
  Rtl.connect_register d rb ~d:opb;
  Rtl.connect_register d rc ~d:opc;
  Rtl.connect_register d rd ~d:opd;
  Rtl.connect_register d rctl ~d:ctl;
  (* plane 1: two multipliers and address-style adds *)
  let m1 = Rtl.add_op d ~name:"mul1" ~width:(2 * w) (Rtl.Mult (ra, rb)) in
  let m2 = Rtl.add_op d ~name:"mul2" ~width:(2 * w) (Rtl.Mult (rc, rd)) in
  let m1_lo = Rtl.add_op d ~width:w (Rtl.Slice (m1, 0)) in
  let m1_hi = Rtl.add_op d ~width:w (Rtl.Slice (m1, w)) in
  let m2_lo = Rtl.add_op d ~width:w (Rtl.Slice (m2, 0)) in
  let m2_hi = Rtl.add_op d ~width:w (Rtl.Slice (m2, w)) in
  let addr = Rtl.add_op d ~name:"addr" ~width:w (Rtl.Add (ra, rc)) in
  let r_m1l = Rtl.add_register d ~name:"r_m1l" ~width:w () in
  let r_m1h = Rtl.add_register d ~name:"r_m1h" ~width:w () in
  let r_m2l = Rtl.add_register d ~name:"r_m2l" ~width:w () in
  let r_m2h = Rtl.add_register d ~name:"r_m2h" ~width:w () in
  let r_addr = Rtl.add_register d ~name:"r_addr" ~width:w () in
  let rctl2 = Rtl.add_register d ~name:"rctl2" ~width:3 () in
  Rtl.connect_register d r_m1l ~d:m1_lo;
  Rtl.connect_register d r_m1h ~d:m1_hi;
  Rtl.connect_register d r_m2l ~d:m2_lo;
  Rtl.connect_register d r_m2h ~d:m2_hi;
  Rtl.connect_register d r_addr ~d:addr;
  Rtl.connect_register d rctl2 ~d:rctl;
  (* plane 2: ALU bank + writeback select *)
  let c0 = Rtl.add_op d ~width:1 (Rtl.Slice (rctl2, 0)) in
  let c1 = Rtl.add_op d ~width:1 (Rtl.Slice (rctl2, 1)) in
  let c2 = Rtl.add_op d ~width:1 (Rtl.Slice (rctl2, 2)) in
  let sum_ll = Rtl.add_op d ~name:"alu_add" ~width:w (Rtl.Add (r_m1l, r_m2l)) in
  let dif_hh = Rtl.add_op d ~name:"alu_sub" ~width:w (Rtl.Sub (r_m1h, r_m2h)) in
  let mac = Rtl.add_op d ~name:"alu_mac" ~width:w (Rtl.Add (sum_ll, r_addr)) in
  let bxor = Rtl.add_op d ~name:"alu_xor" ~width:w (Rtl.Bit_xor (r_m1l, r_m2h)) in
  let band = Rtl.add_op d ~name:"alu_and" ~width:w (Rtl.Bit_and (r_m1h, r_m2l)) in
  let lt = Rtl.add_op d ~name:"alu_lt" ~width:1 (Rtl.Lt (r_m1l, r_m2l)) in
  let mx1 = Rtl.add_op d ~name:"wb1" ~width:w (Rtl.Mux (c0, sum_ll, dif_hh)) in
  let mx2 = Rtl.add_op d ~name:"wb2" ~width:w (Rtl.Mux (c1, mac, bxor)) in
  let mx3 = Rtl.add_op d ~name:"wb3" ~width:w (Rtl.Mux (c2, mx1, mx2)) in
  let mx4 = Rtl.add_op d ~name:"wb4" ~width:w (Rtl.Mux (lt, mx3, band)) in
  Rtl.mark_output d "result" mx4;
  Rtl.mark_output d "flag" lt;
  { name = "ASPP4";
    design = d;
    description = "ASPP processor slice, decode/execute pipeline" }

(* ------------------------------------------- beyond-paper workloads *)

(* CRC-8 (polynomial x^8+x^2+x+1) updating over one input byte per cycle:
   pure XOR trees and 8 bits of feedback state — all "glue" logic, the
   opposite extreme from the module-heavy datapaths above. *)
let crc8 () =
  let d = Rtl.create "CRC8" in
  let data = Rtl.add_input d "data" 8 in
  let crc = Rtl.add_register d ~name:"crc" ~width:8 () in
  (* bit-serial formulation unrolled 8x: next = fold over message bits *)
  let bit i bus = Rtl.add_op d ~width:1 (Rtl.Slice (bus, i)) in
  let state = ref (Array.init 8 (fun i -> bit i crc)) in
  for i = 7 downto 0 do
    let din = bit i data in
    let fb = Rtl.add_op d ~width:1 (Rtl.Bit_xor ((!state).(7), din)) in
    let s = !state in
    let xor_fb j = Rtl.add_op d ~width:1 (Rtl.Bit_xor (s.(j), fb)) in
    state :=
      [| fb; xor_fb 0; xor_fb 1; s.(2); s.(3); s.(4); s.(5); s.(6) |]
  done;
  let next =
    Array.fold_left
      (fun acc b ->
        match acc with
        | None -> Some b
        | Some lo ->
          let w = (Rtl.signal d lo).Rtl.width in
          Some (Rtl.add_op d ~width:(w + 1) (Rtl.Concat (lo, b))))
      None !state
  in
  let next = Option.get next in
  Rtl.connect_register d crc ~d:next;
  Rtl.mark_output d "crc" next;
  { name = "CRC8";
    design = d;
    description = "unrolled CRC-8 update (pure glue logic, 8-bit state)" }

(* Compare-exchange sorting network over four 6-bit values (a Batcher
   stage): comparator+mux modules with no state. *)
let sorter () =
  let w = 6 in
  let d = Rtl.create "Sorter4" in
  let xs = Array.init 4 (fun i -> Rtl.add_input d (Printf.sprintf "x%d" i) w) in
  let cmpx a b =
    let lt = Rtl.add_op d ~name:"cmp" ~width:1 (Rtl.Lt (a, b)) in
    let lo = Rtl.add_op d ~name:"min" ~width:w (Rtl.Mux (lt, b, a)) in
    let hi = Rtl.add_op d ~name:"max" ~width:w (Rtl.Mux (lt, a, b)) in
    (lo, hi)
  in
  (* Batcher's 4-input network: (0,1) (2,3) (0,2) (1,3) (1,2) *)
  let a0, a1 = cmpx xs.(0) xs.(1) in
  let a2, a3 = cmpx xs.(2) xs.(3) in
  let b0, b2 = cmpx a0 a2 in
  let b1, b3 = cmpx a1 a3 in
  let c1, c2 = cmpx b1 b2 in
  List.iteri
    (fun i s -> Rtl.mark_output d (Printf.sprintf "y%d" i) s)
    [ b0; c1; c2; b3 ];
  { name = "Sorter4";
    design = d;
    description = "4-way compare-exchange sorting network, 6-bit keys" }

(* A 4-point DCT-like butterfly with constant multipliers, registered
   inputs and outputs (two planes). *)
let dct4 () =
  let w = 10 in
  let cw = 5 in
  let d = Rtl.create "DCT4" in
  let xs = Array.init 4 (fun i -> Rtl.add_input d (Printf.sprintf "x%d" i) w) in
  let regs =
    Array.init 4 (fun i -> Rtl.add_register d ~name:(Printf.sprintf "rx%d" i) ~width:w ())
  in
  Array.iteri (fun i r -> Rtl.connect_register d r ~d:xs.(i)) regs;
  (* stage 1: butterflies *)
  let s0 = Rtl.add_op d ~name:"bf_add0" ~width:w (Rtl.Add (regs.(0), regs.(3))) in
  let s1 = Rtl.add_op d ~name:"bf_add1" ~width:w (Rtl.Add (regs.(1), regs.(2))) in
  let d0 = Rtl.add_op d ~name:"bf_sub0" ~width:w (Rtl.Sub (regs.(0), regs.(3))) in
  let d1 = Rtl.add_op d ~name:"bf_sub1" ~width:w (Rtl.Sub (regs.(1), regs.(2))) in
  let r_s0 = Rtl.add_register d ~name:"r_s0" ~width:w () in
  let r_s1 = Rtl.add_register d ~name:"r_s1" ~width:w () in
  let r_d0 = Rtl.add_register d ~name:"r_d0" ~width:w () in
  let r_d1 = Rtl.add_register d ~name:"r_d1" ~width:w () in
  Rtl.connect_register d r_s0 ~d:s0;
  Rtl.connect_register d r_s1 ~d:s1;
  Rtl.connect_register d r_d0 ~d:d0;
  Rtl.connect_register d r_d1 ~d:d1;
  (* stage 2: constant rotations *)
  let cmul name s c =
    let k = Rtl.add_const d ~width:cw c in
    let p = Rtl.add_op d ~name ~width:(w + cw) (Rtl.Mult (s, k)) in
    Rtl.add_op d ~width:w (Rtl.Slice (p, cw - 1))
  in
  let y0 = Rtl.add_op d ~name:"out_add" ~width:w (Rtl.Add (r_s0, r_s1)) in
  let y2 = Rtl.add_op d ~name:"out_sub" ~width:w (Rtl.Sub (r_s0, r_s1)) in
  let t0 = cmul "rot_c6" r_d0 25 in
  let t1 = cmul "rot_s6" r_d1 10 in
  let t2 = cmul "rot_s2" r_d0 10 in
  let t3 = cmul "rot_c2" r_d1 25 in
  let y1 = Rtl.add_op d ~name:"rot_add" ~width:w (Rtl.Add (t0, t1)) in
  let y3 = Rtl.add_op d ~name:"rot_sub" ~width:w (Rtl.Sub (t2, t3)) in
  List.iteri (fun i s -> Rtl.mark_output d (Printf.sprintf "y%d" i) s) [ y0; y1; y2; y3 ];
  { name = "DCT4";
    design = d;
    description = "4-point DCT butterfly, registered I/O (2 planes)" }

let all () =
  [ ex1 (); fir (); ex2 (); c5315 (); biquad (); paulin (); aspp4 () ]

let extended () = [ crc8 (); sorter (); dct4 () ]

let by_name name =
  let lower = String.lowercase_ascii name in
  match lower with
  | "ex1" -> ex1 ()
  | "ex1-4bit" | "ex1_small" -> ex1_small ()
  | "fir" -> fir ()
  | "ex2" -> ex2 ()
  | "c5315" -> c5315 ()
  | "biquad" -> biquad ()
  | "paulin" -> paulin ()
  | "aspp4" -> aspp4 ()
  | "crc8" -> crc8 ()
  | "sorter4" | "sorter" -> sorter ()
  | "dct4" -> dct4 ()
  | _ -> raise Not_found
