(** The seven benchmark circuits of the paper's Section 5, reconstructed as
    RTL designs.

    The original artifacts (RTL circuits from the test-generation papers
    [19, 20] and the ISCAS'85 c5315 gate-level ALU) are not redistributable
    here, so each benchmark is rebuilt from its published description with
    bit-widths chosen to land in the same size class as the paper's Table 1
    circuit parameters (#planes, logic depth, #LUTs, #flip-flops). The
    experiment harness reports {e our} circuit parameters alongside the
    mapping results; the comparisons folding vs. no-folding are internally
    consistent. See DESIGN.md for the substitution rationale.

    - [ex1]: the paper's Fig. 1 controller-datapath (FSM + registers +
      ripple-carry adder + parallel multiplier) at 16-bit width; [ex1_small]
      is the 4-bit version used in the motivational example.
    - [fir]: direct-form FIR filter, constant coefficients, registered
      delay line and combinational multiply-accumulate — one plane.
    - [ex2]: a three-stage pipelined controller-datapath (three planes).
    - [c5315]: a purely combinational two-slice 9-bit ALU with parity and
      compare outputs, standing in for the ISCAS'85 netlist (gate-level:
      no registers at all).
    - [biquad]: direct-form-I biquad IIR section; output feedback keeps it
      a single plane.
    - [paulin]: the differential-equation solver datapath from the
      high-level-synthesis literature, two-stage pipelined (two planes).
    - [aspp4]: an application-specific programmable processor slice with a
      decode/execute pipeline (two planes). *)

type benchmark = {
  name : string;
  design : Nanomap_rtl.Rtl.t;
  description : string;
}

val ex1 : ?width:int -> unit -> benchmark
(** Default width 16 (the paper's ex1). *)

val ex1_small : unit -> benchmark
(** The 4-bit Fig. 1 instance (50 LUTs / 14 flip-flops class). *)

val fir : ?taps:int -> ?width:int -> unit -> benchmark
(** Default 8 taps, width 14. *)

val ex2 : ?width:int -> unit -> benchmark
(** Default width 12. *)

val c5315 : ?width:int -> unit -> benchmark
(** Default width 9 (two 9-bit ALU slices, as in the original). *)

val biquad : ?width:int -> unit -> benchmark
(** Default width 16. *)

val paulin : ?width:int -> unit -> benchmark
(** Default width 12. *)

val aspp4 : ?width:int -> unit -> benchmark
(** Default width 14. *)

val all : unit -> benchmark list
(** The seven benchmarks in the paper's Table 1 order. *)

val crc8 : unit -> benchmark
(** Beyond-paper workload: unrolled CRC-8 update — pure glue logic. *)

val sorter : unit -> benchmark
(** Beyond-paper workload: 4-way compare-exchange sorting network. *)

val dct4 : unit -> benchmark
(** Beyond-paper workload: 4-point DCT butterfly pipeline. *)

val extended : unit -> benchmark list
(** The three beyond-paper workloads above. *)

val by_name : string -> benchmark
(** Raises [Not_found] for unknown names. Accepts the paper's names,
    case-insensitively. *)
