lib/cluster/cluster.ml: Array Hashtbl List Nanomap_arch Nanomap_core Nanomap_rtl Nanomap_techmap
