lib/cluster/cluster.mli: Hashtbl Nanomap_arch Nanomap_core
