lib/cluster/smb_local.ml: Array Cluster Hashtbl List Nanomap_arch Nanomap_core Nanomap_techmap Option
