lib/cluster/smb_local.mli: Cluster Nanomap_core
