(** Local interconnect analysis inside SMBs (paper Section 2.1.1: the SMB
    is a two-level cluster whose MBs connect through low-latency
    reconfigurable crossbars with limited ports).

    [analyze] measures, per SMB and configuration, how many distinct
    signals must enter through the SMB's input pins and how many
    MB-external signals each MB's local crossbar must select — checked
    against {!Nanomap_arch.Arch.t}'s [smb_input_pins] / [mb_input_ports].
    SMB pins are enforced during packing; MB ports are balanced after the
    fact by {!rebalance}, which permutes LUTs between the LEs of one SMB
    (the assignment within an SMB is invisible to placement and routing, so
    this is free). *)

type report = {
  max_smb_inputs : int;        (** worst per-configuration SMB pin usage *)
  smb_pin_violations : int;    (** (smb, config) pairs over the cap *)
  max_mb_ports : int;          (** worst per-configuration MB port usage *)
  mb_port_violations : int;
  local_connections : int;     (** fanin connections resolved inside the SMB *)
  external_connections : int;  (** fanin connections through SMB pins *)
}

val analyze : Cluster.t -> Nanomap_core.Mapper.plan -> report

val rebalance : Cluster.t -> Nanomap_core.Mapper.plan -> int
(** Greedy intra-SMB re-assignment of LUTs to MBs to reduce MB port
    pressure; mutates the cluster's LUT slots in place and returns the
    number of LUTs moved. Placement/routing remain valid (SMB assignments
    are untouched). *)
