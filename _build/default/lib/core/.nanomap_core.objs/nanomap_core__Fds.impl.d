lib/core/fds.ml: Array Float List Nanomap_arch Sched
