lib/core/fds.mli: Nanomap_arch Sched
