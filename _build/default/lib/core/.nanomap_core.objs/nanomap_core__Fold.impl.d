lib/core/fold.ml: Nanomap_util
