lib/core/fold.mli:
