lib/core/mapper.ml: Array Fds Fold List Logs Nanomap_arch Nanomap_rtl Nanomap_techmap Nanomap_util Printf Sched
