lib/core/mapper.mli: Nanomap_arch Nanomap_rtl Nanomap_techmap Sched
