lib/core/sched.ml: Array List Nanomap_arch Nanomap_techmap Nanomap_util Printf Queue
