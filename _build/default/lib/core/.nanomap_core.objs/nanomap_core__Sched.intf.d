lib/core/sched.mli: Nanomap_arch Nanomap_techmap
