(** Force-directed scheduling of LUTs and LUT clusters into folding cycles
    (paper Section 4.2, Algorithm 1).

    Each iteration rebuilds time frames and the two distribution graphs
    (LUT computation and register storage), evaluates for every unscheduled
    unit and every feasible cycle the total force — self-force (Eq. 13)
    combined across the two DGs by Eq. 14 ([max(LUT/h, storage/l)]) plus the
    forces exerted on immediate predecessors and successors — and commits
    the single (unit, cycle) assignment with the lowest total force. Lower
    force = less concurrency = fewer LEs.

    Predecessor/successor forces are computed on the LUT-computation DG
    (the storage interaction of a neighbour's frame change is second-order
    and omitted, as in Paulin-Knight's original formulation). *)

val schedule : Sched.t -> arch:Nanomap_arch.Arch.t -> int array
(** Complete schedule: unit id -> folding cycle (1-based). Respects all
    precedence edges; raises {!Sched.Infeasible} if [Sched.t] was
    infeasible to begin with. *)

val asap_schedule : Sched.t -> int array
(** Baseline for the FDS ablation: every unit at its ASAP cycle. *)

val alap_schedule : Sched.t -> int array
(** Every unit at its ALAP cycle (used in tests). *)
