let ceil_div = Nanomap_util.Stats.ceil_div

let min_stages ~lut_max ~available_le =
  if available_le < 1 then invalid_arg "Fold.min_stages: no LEs";
  max 1 (ceil_div lut_max available_le)

let level_for_stages ~depth_max ~stages =
  if stages < 1 then invalid_arg "Fold.level_for_stages: stages < 1";
  max 1 (ceil_div depth_max stages)

let stages_for_level ~depth ~level =
  if level < 1 then invalid_arg "Fold.stages_for_level: level < 1";
  max 1 (ceil_div depth level)

let min_level ~depth_max ~num_planes ~num_reconf =
  match num_reconf with
  | None -> 1
  | Some k ->
    if k < 1 then invalid_arg "Fold.min_level: k < 1";
    max 1 (ceil_div (depth_max * num_planes) k)

let level_pipelined ~depth_max ~available_le ~total_luts =
  if total_luts < 1 then invalid_arg "Fold.level_pipelined: empty design";
  max 1 (ceil_div (depth_max * available_le) total_luts)

let max_stages_allowed ~num_planes ~num_reconf =
  match num_reconf with
  | None -> None
  | Some k -> Some (max 1 (k / max num_planes 1))
