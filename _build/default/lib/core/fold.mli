(** Folding-level arithmetic (paper Section 4.1, Equations 1–4).

    A {e level-p folding} reconfigures the fabric after every [p] LUT
    levels; a plane of logic depth [d] then needs [ceil(d/p)] folding
    stages. All planes must use the same number of folding stages to stay
    globally synchronized. *)

val min_stages : lut_max:int -> available_le:int -> int
(** Equation 1: minimum folding stages forced by the area budget —
    [ceil(LUT_max / available_LE)]. *)

val level_for_stages : depth_max:int -> stages:int -> int
(** Equation 2: [ceil(depth_max / #stages)]. *)

val stages_for_level : depth:int -> level:int -> int
(** Inverse view used when sweeping levels: [ceil(depth / level)],
    at least 1. *)

val min_level : depth_max:int -> num_planes:int -> num_reconf:int option -> int
(** Equation 3: the smallest usable folding level given k NRAM copies —
    every folding cycle of every plane needs its own configuration set, so
    [ceil(depth_max * num_plane / num_reconf)]; 1 when k is unbounded. *)

val level_pipelined :
  depth_max:int -> available_le:int -> total_luts:int -> int
(** Equation 4: when planes may {e not} share resources (pipelined
    execution), the folding level that fits the budget directly —
    [ceil(depth_max * available_LE / sum_i num_LUT_i)], clamped to >= 1. *)

val max_stages_allowed : num_planes:int -> num_reconf:int option -> int option
(** Stage budget per plane implied by k: [floor(k / num_plane)];
    [None] when unbounded. *)
