(** The per-plane scheduling problem: assign every LUT / LUT-cluster unit of
    a partitioned plane to one of [stages] folding cycles, respecting strict
    precedence (a value crosses folding cycles through a flip-flop).

    This module provides the machinery shared by the schedulers: ASAP/ALAP
    time frames (paper Fig. 3), storage lifetimes (Eqs. 6–8, Fig. 4) and the
    LUT-computation / register-storage distribution graphs (Eqs. 5, 9–11,
    Fig. 5).

    {2 Flip-flop accounting}

    Three kinds of bits occupy LE flip-flops:

    - {e state}: every register bit (and inter-plane wire bit) of the whole
      design holds its value at all times — [base_ff_bits], a constant
      demand in every folding cycle;
    - {e shadows}: a freshly computed register/wire value cannot overwrite
      the state bit before the plane commits, so each target bit produced
      by a unit scheduled at cycle [c] occupies an extra flip-flop during
      cycles [c+1 .. stages] (the second flip-flop the paper added to every
      LE exists exactly for this);
    - {e intermediates}: a unit's outputs feeding units in later folding
      cycles live from [c+1] to the cycle of the last consumer (the paper's
      storage operations, weighted by the unit's LUT count). *)

type t = {
  part : Nanomap_techmap.Partition.t;
  stages : int;                  (** folding cycles available, >= 1 *)
  weights : int array;           (** unit id -> #LUTs (Eq. 5 weight) *)
  preds : int list array;        (** strict: must run in an earlier cycle *)
  succs : int list array;
  weak_preds : int list array;   (** same band: same or earlier cycle *)
  weak_succs : int list array;
  target_bits : int array;       (** unit id -> register/wire output bits *)
  store_bits : int array;        (** unit id -> LUT outputs consumed by a
                                     {e different} unit (the bits that can
                                     actually cross folding cycles) *)
  base_ff_bits : int;            (** all-time state bits of the design *)
}

exception Infeasible of string

val problem :
  Nanomap_techmap.Lut_network.t ->
  Nanomap_techmap.Partition.t ->
  stages:int ->
  base_ff_bits:int ->
  t
(** Raises {!Infeasible} when the precedence critical path exceeds
    [stages]. *)

(** {2 Time frames} *)

type frames = {
  asap : int array;
  alap : int array;              (** both 1-based; frame of unit u is
                                     [asap.(u) .. alap.(u)] *)
}

val frames : t -> fixed:int option array -> frames
(** Time frames given the partial schedule [fixed] (scheduled units have a
    one-cycle frame). Raises {!Infeasible} if a unit's frame is empty or a
    fixed cycle violates precedence. *)

(** {2 Storage lifetimes (Eqs. 6–8)} *)

type lifetime = {
  asap_life : int * int;         (** [(begin, end)]; empty if begin > end *)
  alap_life : int * int;
  max_life : int * int;
  overlap : int * int;           (** intersection; empty if begin > end *)
  avg_life : float;              (** Eq. 8 *)
}

val intermediate_lifetime :
  ?source_cycle:int -> t -> frames -> int -> lifetime option
(** Storage of unit [u]'s outputs consumed by later units; [None] when it
    has no successors at all. Born the cycle after the source executes,
    dies after the last consumer (weak successors sharing the source's
    cycle consume combinationally and need no storage — the lifetime is
    then empty). [source_cycle] overrides the source frame (used to
    evaluate a tentative assignment). *)

val shadow_lifetime :
  ?source_cycle:int -> t -> frames -> int -> lifetime option
(** Storage of unit [u]'s register/wire target bits until the end of the
    plane; [None] when the unit drives no targets or [stages] is 1. *)

(** {2 Distribution graphs (Eqs. 5 and 9–11)} *)

val lut_dg : t -> frames -> float array
(** Index j (1-based) = expected LUT-computation concurrency in cycle j. *)

val span_prob : lifetime -> float
(** Eq. 9's probability level outside the overlap (inside it is 1). *)

val storage_dg : t -> frames -> float array
(** Eq. 11 over both storage-op kinds, weighted by cross-unit output bits
    (intermediates) and target bits (shadows). *)

(** {2 Evaluating a complete schedule} *)

val lut_count_per_stage : t -> int array -> int array
(** [.(j)] = LUTs executing in cycle j, for a complete schedule. *)

val ff_bits_per_stage : t -> int array -> int array
(** [.(j)] = flip-flop bits occupied in cycle j: state + shadows +
    intermediates. Intermediates are counted exactly, LUT by LUT: a LUT
    output computed in cycle [c] whose last consumer LUT runs in cycle [e]
    occupies a flip-flop during [c+1 .. e]. *)

val les_needed : t -> arch:Nanomap_arch.Arch.t -> int array -> int
(** Physical LE bound of a complete schedule: the max over folding cycles
    of [max(luts / h, ceil(ff_bits / l))] (cf. Eq. 14's h and l). *)

val check_schedule : t -> int array -> unit
(** Validates bounds and precedence; raises [Failure]. *)
