lib/emu/emulator.ml: Array Hashtbl List Nanomap_cluster Nanomap_core Nanomap_logic Nanomap_rtl Nanomap_techmap Option Printf String
