lib/emu/emulator.mli: Nanomap_cluster Nanomap_core Nanomap_rtl
