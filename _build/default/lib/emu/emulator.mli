(** Cycle-accurate emulation of the NATURE fabric executing a mapped design.

    The emulator interprets the flow's output the way the hardware would:
    one macro cycle = every plane's folding cycles in order; within a
    folding cycle the LEs configured for that cycle evaluate their LUTs
    (combinational chains within the cycle resolve in dependency order,
    which the reconfigurable fabric does electrically); values that cross
    folding cycles live in the exact flip-flop slots chosen by temporal
    clustering; register/wire targets commit from their shadow slots to
    their home slots when the plane ends.

    Because every cross-cycle read goes through a {e physical} flip-flop
    slot, the emulator catches lifetime violations (a slot overwritten
    while still live) that network-level evaluation cannot: a wrong
    allocation produces wrong output values here.

    This is the final link in the verification chain: RTL simulator ==
    mapped LUT networks == folded execution on the clustered fabric. *)

type t

val create :
  Nanomap_rtl.Rtl.t -> Nanomap_core.Mapper.plan -> Nanomap_cluster.Cluster.t -> t
(** The design provides input/output names and register widths. Flip-flops
    start at 0 (matching {!Nanomap_rtl.Rtl.sim_create} for designs with
    zero register init values). *)

val macro_cycle : t -> (string * int) list -> (string * int) list
(** [macro_cycle t inputs] runs all planes' folding cycles once — the
    equivalent of one clock cycle of the original circuit. Primary inputs
    are given by name (missing ones hold their previous value) and primary
    outputs are returned by name, exactly like
    {!Nanomap_rtl.Rtl.sim_cycle}. *)

val peek_state : t -> Nanomap_rtl.Rtl.id -> int
(** Current committed value of a register (or inter-plane wire). *)

exception Fabric_conflict of string
(** Raised when two live values occupy one flip-flop slot — i.e. the
    clustering produced an illegal allocation. *)
