lib/flow/flow.ml: Format Logs Nanomap_arch Nanomap_bitstream Nanomap_cluster Nanomap_core Nanomap_place Nanomap_route Nanomap_rtl Printf
