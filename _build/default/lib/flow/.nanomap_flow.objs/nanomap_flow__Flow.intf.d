lib/flow/flow.mli: Format Nanomap_arch Nanomap_bitstream Nanomap_cluster Nanomap_core Nanomap_place Nanomap_route Nanomap_rtl
