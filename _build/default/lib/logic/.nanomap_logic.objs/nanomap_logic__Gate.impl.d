lib/logic/gate.ml: Array Format Truth_table
