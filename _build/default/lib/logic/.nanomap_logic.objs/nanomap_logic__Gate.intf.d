lib/logic/gate.mli: Format Truth_table
