lib/logic/gate_netlist.ml: Array Gate Hashtbl List Nanomap_util Option
