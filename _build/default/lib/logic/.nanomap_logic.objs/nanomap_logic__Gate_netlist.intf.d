lib/logic/gate_netlist.mli: Gate
