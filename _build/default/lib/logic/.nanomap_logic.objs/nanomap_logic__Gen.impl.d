lib/logic/gen.ml: Array Gate Gate_netlist List Nanomap_util Printf
