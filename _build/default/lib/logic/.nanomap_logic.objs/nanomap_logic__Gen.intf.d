lib/logic/gen.mli: Gate Gate_netlist Nanomap_util
