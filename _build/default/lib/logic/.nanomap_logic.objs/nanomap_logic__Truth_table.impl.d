lib/logic/truth_table.ml: Array Int64 Printf
