type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2

let arity = function
  | Input | Const _ -> 0
  | Buf | Not -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 -> 2
  | Mux2 -> 3

let eval kind inputs =
  if Array.length inputs <> arity kind then invalid_arg "Gate.eval: fanin mismatch";
  match kind with
  | Input -> invalid_arg "Gate.eval: Input has no function"
  | Const b -> b
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And2 -> inputs.(0) && inputs.(1)
  | Or2 -> inputs.(0) || inputs.(1)
  | Nand2 -> not (inputs.(0) && inputs.(1))
  | Nor2 -> not (inputs.(0) || inputs.(1))
  | Xor2 -> inputs.(0) <> inputs.(1)
  | Xnor2 -> inputs.(0) = inputs.(1)
  | Mux2 -> if inputs.(0) then inputs.(2) else inputs.(1)

let truth_table kind =
  match kind with
  | Input -> invalid_arg "Gate.truth_table: Input has no function"
  | _ -> Truth_table.of_fun ~arity:(arity kind) (eval kind)

let name = function
  | Input -> "input"
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"

let pp fmt kind = Format.pp_print_string fmt (name kind)
