(** Primitive combinational gate alphabet for gate-level netlists.

    All gates have bounded fanin (at most 3, for [Mux2]), which keeps every
    netlist K-bounded for K >= 3 as required by FlowMap. *)

type kind =
  | Input                    (** primary input or register output feeding the plane *)
  | Const of bool
  | Buf
  | Not
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2                     (** fanins [sel; a; b]: value is [b] when [sel], else [a] *)

val arity : kind -> int
(** Expected number of fanins; [Input] and [Const] take none. *)

val eval : kind -> bool array -> bool
(** Combinational semantics. Raises [Invalid_argument] on [Input] (it has no
    local function) or on a fanin-count mismatch. *)

val truth_table : kind -> Truth_table.t
(** The gate function as a truth table on [arity kind] variables.
    Raises [Invalid_argument] on [Input]. *)

val name : kind -> string
val pp : Format.formatter -> kind -> unit
