module Vec = Nanomap_util.Vec

type id = int

type node = {
  kind : Gate.kind;
  fanins : id array;
  name : string option;
}

type t = {
  nodes : node Vec.t;
  mutable inputs_rev : (string * id) list;
  mutable outputs_rev : (string * id) list;
  output_names : (string, unit) Hashtbl.t;
}

let create () =
  { nodes = Vec.create ();
    inputs_rev = [];
    outputs_rev = [];
    output_names = Hashtbl.create 16 }

let add_input t name =
  let id = Vec.push t.nodes { kind = Gate.Input; fanins = [||]; name = Some name } in
  t.inputs_rev <- (name, id) :: t.inputs_rev;
  id

let add_const t b =
  Vec.push t.nodes { kind = Gate.Const b; fanins = [||]; name = None }

let add_gate ?name t kind fanins =
  (match kind with
   | Gate.Input | Gate.Const _ ->
     invalid_arg "Gate_netlist.add_gate: use add_input/add_const"
   | Gate.Buf | Gate.Not | Gate.And2 | Gate.Or2 | Gate.Nand2 | Gate.Nor2
   | Gate.Xor2 | Gate.Xnor2 | Gate.Mux2 -> ());
  if Array.length fanins <> Gate.arity kind then
    invalid_arg "Gate_netlist.add_gate: fanin count mismatch";
  let n = Vec.length t.nodes in
  Array.iter
    (fun f -> if f < 0 || f >= n then invalid_arg "Gate_netlist.add_gate: undefined fanin")
    fanins;
  Vec.push t.nodes { kind; fanins; name }

let mark_output t name id =
  if id < 0 || id >= Vec.length t.nodes then
    invalid_arg "Gate_netlist.mark_output: undefined node";
  if Hashtbl.mem t.output_names name then
    invalid_arg ("Gate_netlist.mark_output: duplicate output " ^ name);
  Hashtbl.add t.output_names name ();
  t.outputs_rev <- (name, id) :: t.outputs_rev

let size t = Vec.length t.nodes

let node t id = Vec.get t.nodes id

let inputs t = List.rev t.inputs_rev
let outputs t = List.rev t.outputs_rev

let iter f t = Vec.iteri f t.nodes

let fanout_counts t =
  let counts = Array.make (size t) 0 in
  iter (fun _ n -> Array.iter (fun f -> counts.(f) <- counts.(f) + 1) n.fanins) t;
  counts

let num_gates t =
  Vec.fold
    (fun acc n ->
      match n.kind with
      | Gate.Input | Gate.Const _ | Gate.Buf -> acc
      | Gate.Not | Gate.And2 | Gate.Or2 | Gate.Nand2 | Gate.Nor2 | Gate.Xor2
      | Gate.Xnor2 | Gate.Mux2 -> acc + 1)
    0 t.nodes

let levels t =
  let lv = Array.make (size t) 0 in
  iter
    (fun id n ->
      match n.kind with
      | Gate.Input | Gate.Const _ -> lv.(id) <- 0
      | Gate.Buf -> lv.(id) <- lv.(n.fanins.(0))
      | Gate.Not | Gate.And2 | Gate.Or2 | Gate.Nand2 | Gate.Nor2 | Gate.Xor2
      | Gate.Xnor2 | Gate.Mux2 ->
        let m = Array.fold_left (fun acc f -> max acc lv.(f)) 0 n.fanins in
        lv.(id) <- m + 1)
    t;
  lv

let depth t =
  let lv = levels t in
  List.fold_left (fun acc (_, id) -> max acc lv.(id)) 0 (outputs t)

let simulate t input_values =
  let ins = inputs t in
  if Array.length input_values <> List.length ins then
    invalid_arg "Gate_netlist.simulate: input count mismatch";
  let values = Array.make (size t) false in
  List.iteri (fun i (_, id) -> values.(id) <- input_values.(i)) ins;
  iter
    (fun id n ->
      match n.kind with
      | Gate.Input -> ()
      | kind -> values.(id) <- Gate.eval kind (Array.map (fun f -> values.(f)) n.fanins))
    t;
  values

let output_values t input_values =
  let values = simulate t input_values in
  List.map (fun (name, id) -> (name, values.(id))) (outputs t)

let transitive_fanin t root =
  let member = Array.make (size t) false in
  let rec visit id =
    if not member.(id) then begin
      member.(id) <- true;
      Array.iter visit (node t id).fanins
    end
  in
  visit root;
  member

let stats t =
  let table = Hashtbl.create 16 in
  iter
    (fun _ n ->
      let key = Gate.name n.kind in
      Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
    t;
  let hist = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  let hist = List.sort compare hist in
  hist @ [ ("depth", depth t); ("nodes", size t) ]
