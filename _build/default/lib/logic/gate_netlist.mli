(** Combinational gate-level netlists as append-only DAGs.

    Nodes are created in topological order: a gate's fanins must already
    exist, so the array order is always a valid topological order and no
    cycle check is needed. Primary outputs are named references to nodes.

    This is the common currency between the RTL decomposer, the BLIF
    frontend and the FlowMap technology mapper. *)

type id = int

type node = {
  kind : Gate.kind;
  fanins : id array;
  name : string option; (** debug / source name, if any *)
}

type t

val create : unit -> t

val add_input : t -> string -> id
val add_const : t -> bool -> id
val add_gate : ?name:string -> t -> Gate.kind -> id array -> id
(** Raises [Invalid_argument] if the fanin count does not match the gate
    kind, if any fanin id is not yet defined, or if the kind is [Input] or
    [Const] (use the dedicated constructors). *)

val mark_output : t -> string -> id -> unit
(** Register a named primary output. A node may drive several outputs;
    re-using an output name is an error. *)

val size : t -> int
val node : t -> id -> node
val inputs : t -> (string * id) list
(** In creation order. *)

val outputs : t -> (string * id) list
(** In creation order. *)

val iter : (id -> node -> unit) -> t -> unit
(** In topological (creation) order. *)

val fanout_counts : t -> int array

val num_gates : t -> int
(** Nodes that are neither inputs nor constants nor buffers. *)

val levels : t -> int array
(** Unit-delay level per node: inputs and constants are 0, a gate is
    1 + max over fanins. *)

val depth : t -> int
(** Max level over primary-output drivers (0 for a constant netlist). *)

val simulate : t -> bool array -> bool array
(** [simulate t input_values] evaluates the whole netlist; [input_values]
    are in primary-input creation order; result is indexed by node id. *)

val output_values : t -> bool array -> (string * bool) list
(** Convenience: simulate then project onto named outputs. *)

val transitive_fanin : t -> id -> bool array
(** Membership array for the cone of node [id] (including [id]). *)

val stats : t -> (string * int) list
(** Gate-kind histogram plus ["depth"] and ["nodes"]. *)
