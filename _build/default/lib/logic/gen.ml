module Rng = Nanomap_util.Rng

type id = Gate_netlist.id
type bus = id array

let input_bus t name w =
  Array.init w (fun i -> Gate_netlist.add_input t (Printf.sprintf "%s.%d" name i))

let mark_output_bus t name bus =
  Array.iteri
    (fun i id -> Gate_netlist.mark_output t (Printf.sprintf "%s.%d" name i) id)
    bus

let g = Gate_netlist.add_gate

let half_adder t a b =
  let sum = g t Gate.Xor2 [| a; b |] in
  let carry = g t Gate.And2 [| a; b |] in
  (sum, carry)

let full_adder t a b cin =
  let axb = g t Gate.Xor2 [| a; b |] in
  let sum = g t Gate.Xor2 [| axb; cin |] in
  let c1 = g t Gate.And2 [| a; b |] in
  let c2 = g t Gate.And2 [| axb; cin |] in
  let cout = g t Gate.Or2 [| c1; c2 |] in
  (sum, cout)

let ripple_carry_adder ?cin t a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Gen.ripple_carry_adder: width mismatch";
  let sums = Array.make w 0 in
  let carry = ref (match cin with Some c -> c | None -> Gate_netlist.add_const t false) in
  for i = 0 to w - 1 do
    let s, c = full_adder t a.(i) b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let subtractor t a b =
  let nb = Array.map (fun x -> g t Gate.Not [| x |]) b in
  let one = Gate_netlist.add_const t true in
  ripple_carry_adder ~cin:one t a nb

(* Row accumulation: [acc] always holds the [wa] running-sum bits just above
   the product bits already emitted; each row adds one shifted partial
   product and emits one more low product bit. *)
let array_multiplier t a b =
  let wa = Array.length a and wb = Array.length b in
  if wa = 0 || wb = 0 then invalid_arg "Gen.array_multiplier: empty bus";
  let partial j = Array.map (fun ai -> g t Gate.And2 [| ai; b.(j) |]) a in
  let product = Array.make (wa + wb) 0 in
  let first = partial 0 in
  product.(0) <- first.(0);
  let zero = Gate_netlist.add_const t false in
  let acc = ref (Array.append (Array.sub first 1 (wa - 1)) [| zero |]) in
  for j = 1 to wb - 1 do
    let sums, carry = ripple_carry_adder t !acc (partial j) in
    product.(j) <- sums.(0);
    acc := Array.append (Array.sub sums 1 (wa - 1)) [| carry |]
  done;
  Array.blit !acc 0 product wb wa;
  product

let mux_bus t sel a b =
  if Array.length a <> Array.length b then invalid_arg "Gen.mux_bus: width mismatch";
  Array.map2 (fun x y -> g t Gate.Mux2 [| sel; x; y |]) a b

let carry_select_adder ?cin ?(block = 4) t a b =
  let w = Array.length a in
  if Array.length b <> w then invalid_arg "Gen.carry_select_adder: width mismatch";
  if block < 1 then invalid_arg "Gen.carry_select_adder: block < 1";
  let sums = Array.make w 0 in
  let carry = ref (match cin with Some c -> c | None -> Gate_netlist.add_const t false) in
  let pos = ref 0 in
  let first = ref true in
  while !pos < w do
    let len = min block (w - !pos) in
    let sub x = Array.sub x !pos len in
    if !first then begin
      (* the first block sees its carry immediately; plain ripple *)
      let s, c = ripple_carry_adder ~cin:!carry t (sub a) (sub b) in
      Array.blit s 0 sums !pos len;
      carry := c;
      first := false
    end
    else begin
      let zero = Gate_netlist.add_const t false in
      let one = Gate_netlist.add_const t true in
      let s0, c0 = ripple_carry_adder ~cin:zero t (sub a) (sub b) in
      let s1, c1 = ripple_carry_adder ~cin:one t (sub a) (sub b) in
      let chosen = mux_bus t !carry s0 s1 in
      Array.blit chosen 0 sums !pos len;
      carry := g t Gate.Mux2 [| !carry; c0; c1 |]
    end;
    pos := !pos + len
  done;
  (sums, !carry)

(* Wallace tree: dot-diagram columns compressed with full/half adders until
   every column holds at most two dots, then one carry-propagate add. *)
let wallace_multiplier ?(final = `Carry_select) t a b =
  let wa = Array.length a and wb = Array.length b in
  if wa = 0 || wb = 0 then invalid_arg "Gen.wallace_multiplier: empty bus";
  let width = wa + wb in
  let cols = Array.make width [] in
  for i = 0 to wa - 1 do
    for j = 0 to wb - 1 do
      let pp = g t Gate.And2 [| a.(i); b.(j) |] in
      cols.(i + j) <- pp :: cols.(i + j)
    done
  done;
  let too_tall cols = Array.exists (fun c -> List.length c > 2) cols in
  let current = ref cols in
  while too_tall !current do
    let next = Array.make width [] in
    Array.iteri
      (fun c dots ->
        let rec compress = function
          | x :: y :: z :: rest ->
            let s, cy = full_adder t x y z in
            next.(c) <- s :: next.(c);
            if c + 1 < width then next.(c + 1) <- cy :: next.(c + 1);
            compress rest
          | [ x; y ] when List.length dots > 2 ->
            (* half-adder the tail of a tall column to speed convergence *)
            let s, cy = half_adder t x y in
            next.(c) <- s :: next.(c);
            if c + 1 < width then next.(c + 1) <- cy :: next.(c + 1)
          | rest -> next.(c) <- rest @ next.(c)
        in
        compress dots)
      !current;
    current := next
  done;
  let zero = Gate_netlist.add_const t false in
  let row n = Array.map (fun dots -> match List.nth_opt dots n with Some d -> d | None -> zero) !current in
  let lo = row 0 and hi = row 1 in
  let sums, _ =
    match final with
    | `Carry_select -> carry_select_adder t lo hi
    | `Ripple -> ripple_carry_adder t lo hi
  in
  sums

let bitwise t kind a b =
  if Array.length a <> Array.length b then invalid_arg "Gen.bitwise: width mismatch";
  Array.map2 (fun x y -> g t kind [| x; y |]) a b

let rec tree t kind const_empty = function
  | [] -> Gate_netlist.add_const t const_empty
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> g t kind [| x; y |] :: pair rest
    in
    tree t kind const_empty (pair xs)

let and_tree t xs = tree t Gate.And2 true xs
let or_tree t xs = tree t Gate.Or2 false xs
let xor_tree t xs = tree t Gate.Xor2 false xs

let equality t a b =
  if Array.length a <> Array.length b then invalid_arg "Gen.equality: width mismatch";
  let eqs = Array.to_list (Array.map2 (fun x y -> g t Gate.Xnor2 [| x; y |]) a b) in
  and_tree t eqs

let less_than t a b =
  (* a < b  <=>  borrow out of a - b. Ripple borrow: bw_{i+1} =
     (~a_i & b_i) | (~(a_i ^ b_i) & bw_i). *)
  if Array.length a <> Array.length b then invalid_arg "Gen.less_than: width mismatch";
  let borrow = ref (Gate_netlist.add_const t false) in
  Array.iteri
    (fun i ai ->
      let bi = b.(i) in
      let na = g t Gate.Not [| ai |] in
      let t1 = g t Gate.And2 [| na; bi |] in
      let eq = g t Gate.Xnor2 [| ai; bi |] in
      let t2 = g t Gate.And2 [| eq; !borrow |] in
      borrow := g t Gate.Or2 [| t1; t2 |])
    a;
  !borrow

let decoder t sel =
  let w = Array.length sel in
  let n = 1 lsl w in
  let nots = Array.map (fun s -> g t Gate.Not [| s |]) sel in
  Array.init n (fun v ->
      let lits =
        List.init w (fun i -> if v land (1 lsl i) <> 0 then sel.(i) else nots.(i))
      in
      and_tree t lits)

let alu t ~op a b =
  if Array.length op <> 3 then invalid_arg "Gen.alu: op must be 3 bits";
  let add_r, add_c = ripple_carry_adder t a b in
  let sub_r, sub_c = subtractor t a b in
  let and_r = bitwise t Gate.And2 a b in
  let or_r = bitwise t Gate.Or2 a b in
  let xor_r = bitwise t Gate.Xor2 a b in
  let nota = Array.map (fun x -> g t Gate.Not [| x |]) a in
  (* op2 op1 op0: 000 add, 001 sub, 010 and, 011 or, 100 xor, 101 a,
     110 not a, 111 b. Select with a mux tree on the op bits. *)
  let m00 = mux_bus t op.(0) add_r sub_r in
  let m01 = mux_bus t op.(0) and_r or_r in
  let m10 = mux_bus t op.(0) xor_r a in
  let m11 = mux_bus t op.(0) nota b in
  let lo = mux_bus t op.(1) m00 m01 in
  let hi = mux_bus t op.(1) m10 m11 in
  let result = mux_bus t op.(2) lo hi in
  let carry = g t Gate.Mux2 [| op.(0); add_c; sub_c |] in
  (result, carry)

let random_layered rng ~num_inputs ~layers ~layer_width ~num_outputs =
  if num_inputs < 2 || layer_width < 1 || layers < 1 then
    invalid_arg "Gen.random_layered";
  let t = Gate_netlist.create () in
  let pis = Array.init num_inputs (fun i -> Gate_netlist.add_input t (Printf.sprintf "pi.%d" i)) in
  let kinds = [| Gate.And2; Gate.Or2; Gate.Nand2; Gate.Nor2; Gate.Xor2; Gate.Xnor2 |] in
  let prev = ref pis and prev2 = ref pis in
  for _ = 1 to layers do
    let pick () =
      (* Bias towards the immediately preceding rank so depth grows. *)
      let src = if Rng.int rng 4 = 0 then !prev2 else !prev in
      src.(Rng.int rng (Array.length src))
    in
    let rank =
      Array.init layer_width (fun _ ->
          let kind = kinds.(Rng.int rng (Array.length kinds)) in
          let a = pick () in
          let b = pick () in
          g t kind [| a; b |])
    in
    prev2 := !prev;
    prev := rank
  done;
  let last = !prev in
  for i = 0 to num_outputs - 1 do
    Gate_netlist.mark_output t (Printf.sprintf "po.%d" i) last.(i mod Array.length last)
  done;
  t
