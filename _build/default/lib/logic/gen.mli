(** Structural generators for common datapath blocks.

    All functions append gates to an existing {!Gate_netlist.t} and return
    the ids of the produced signals. Buses are [id array]s, least-significant
    bit first. These are the building blocks the RTL decomposer uses to turn
    datapath operators (adders, multipliers, comparators, muxes) into gates,
    and they also serve to construct the gate-level benchmarks. *)

type id = Gate_netlist.id
type bus = id array

val input_bus : Gate_netlist.t -> string -> int -> bus
(** [input_bus t name w] creates inputs [name.0 .. name.(w-1)]. *)

val mark_output_bus : Gate_netlist.t -> string -> bus -> unit

val half_adder : Gate_netlist.t -> id -> id -> id * id
(** [(sum, carry)]. *)

val full_adder : Gate_netlist.t -> id -> id -> id -> id * id
(** [full_adder t a b cin] is [(sum, cout)]. *)

val ripple_carry_adder : ?cin:id -> Gate_netlist.t -> bus -> bus -> bus * id
(** Equal-width addition; result [(sums, carry_out)]. *)

val subtractor : Gate_netlist.t -> bus -> bus -> bus * id
(** [a - b] in two's complement; second component is borrow-free flag
    (carry out). *)

val array_multiplier : Gate_netlist.t -> bus -> bus -> bus
(** Unsigned array multiplier; the product has [wa + wb] bits. Carry-save
    rows of full adders, ripple-finished — the classic parallel multiplier
    of the paper's motivational example. Depth grows linearly with both
    widths. *)

val carry_select_adder : ?cin:id -> ?block:int -> Gate_netlist.t -> bus -> bus -> bus * id
(** Carry-select adder: fixed-size blocks (default 4) compute both carry
    assumptions in parallel and a mux chain selects; logarithmically deeper
    than a single block but far shallower than ripple for wide buses. *)

val wallace_multiplier :
  ?final:[ `Carry_select | `Ripple ] -> Gate_netlist.t -> bus -> bus -> bus
(** Wallace-tree multiplier: 3:2 full-adder column compression of the
    partial products, finished with a carry-propagate adder
    (carry-select by default). The "parallel multiplier" used for the wide
    datapaths of the benchmark circuits. *)

val equality : Gate_netlist.t -> bus -> bus -> id
val less_than : Gate_netlist.t -> bus -> bus -> id
(** Unsigned [a < b]. *)

val mux_bus : Gate_netlist.t -> id -> bus -> bus -> bus
(** [mux_bus t sel a b] selects [b] when [sel] is high. *)

val and_tree : Gate_netlist.t -> id list -> id
val or_tree : Gate_netlist.t -> id list -> id
val xor_tree : Gate_netlist.t -> id list -> id
(** Balanced reduction trees; the empty list yields a constant
    (true for [and_tree], false for the others). *)

val bitwise : Gate_netlist.t -> Gate.kind -> bus -> bus -> bus
(** Apply a 2-input gate bitwise across two equal-width buses. *)

val decoder : Gate_netlist.t -> bus -> bus
(** [decoder t sel] produces [2^(width sel)] one-hot outputs. *)

val alu : Gate_netlist.t -> op:bus -> bus -> bus -> bus * id
(** A small ALU: op 000 add, 001 sub, 010 and, 011 or, 100 xor, 101 a,
    110 not a, 111 b. [op] must be 3 bits. Returns [(result, carry_out)].
    Used by the synthetic c5315 substitute. *)

val random_layered :
  Nanomap_util.Rng.t ->
  num_inputs:int ->
  layers:int ->
  layer_width:int ->
  num_outputs:int ->
  Gate_netlist.t
(** Synthetic layered random logic: [layers] ranks of random 2-input gates,
    each choosing fanins from the two previous ranks (locality-biased).
    Deterministic in the generator state. Used for synthetic gate-level
    workloads in tests and ablations. *)
