lib/place/place.ml: Array Float Hashtbl List Nanomap_arch Nanomap_cluster Nanomap_core Nanomap_techmap Nanomap_util
