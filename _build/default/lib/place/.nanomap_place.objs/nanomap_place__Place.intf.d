lib/place/place.mli: Nanomap_cluster Nanomap_core
