lib/route/router.ml: Array Float Hashtbl List Nanomap_arch Nanomap_cluster Nanomap_core Nanomap_place Nanomap_techmap Option Rr_graph
