lib/route/router.mli: Nanomap_cluster Nanomap_core Nanomap_place Rr_graph
