lib/route/rr_graph.ml: Array Hashtbl List Nanomap_arch Nanomap_place Nanomap_util
