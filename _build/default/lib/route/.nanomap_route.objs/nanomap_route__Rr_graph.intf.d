lib/route/rr_graph.mli: Nanomap_arch Nanomap_place
