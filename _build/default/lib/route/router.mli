(** PathFinder negotiated-congestion routing (the VPR router the paper
    builds on), applied per folding cycle.

    Every folding cycle of every plane is a separate configuration of the
    same physical switches, so each (plane, cycle) timeslot is routed
    independently on a fresh congestion state of the shared
    {!Rr_graph.t}. Within a timeslot the classic PathFinder loop runs:
    every net is ripped up and re-routed by Dijkstra over node costs
    [(delay + eps) * (1 + history) * present], sink by sink growing a
    Steiner-ish tree; present-sharing penalties double each iteration until
    no node is overused.

    Routing is hierarchical in cost, as in the paper: direct links are the
    cheapest, then length-1 and length-4 segments, then the global lines —
    the router naturally prefers the shortest hierarchy level that works. *)

type routed_net = {
  net : Nanomap_cluster.Cluster.net;
  tree : int list;                       (** rr wire nodes used *)
  sink_delays : (Nanomap_cluster.Cluster.endpoint * float) list;
}

type result = {
  graph : Rr_graph.t;
  routed : routed_net list;
  success : bool;                        (** no overused node in any timeslot *)
  iterations : int;                      (** max PathFinder iterations used *)
  usage_by_kind : (string * int) list;   (** wire-node usages summed over all
                                             timeslots/configurations *)
  nets_using_global : int;                (** core (SMB-to-SMB) nets touching a
                                              global line; pad I/O excluded *)
  total_nets : int;
  wirelength : int;                      (** total wire nodes over all nets *)
  folding_period_ns : float;             (** routed critical folding period *)
}

val route :
  ?caps:Rr_graph.caps ->
  ?max_iterations:int ->
  Nanomap_place.Place.t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_core.Mapper.plan ->
  result
(** Deterministic. [max_iterations] defaults to 12. *)

val route_adaptive :
  ?caps:Rr_graph.caps ->
  ?max_doublings:int ->
  Nanomap_place.Place.t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_core.Mapper.plan ->
  result * int
(** Minimum-channel-width style search: retry with doubled track counts
    until the router succeeds (or [max_doublings], default 4, is
    exhausted). Returns the result and the scale factor used. *)

val validate : result -> unit
(** Every net's tree connects its driver to every sink through existing
    edges, and no wire node is used by two nets of the same timeslot.
    Raises [Failure]. *)
