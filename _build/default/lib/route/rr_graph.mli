(** Routing-resource graph for the NATURE island fabric.

    Nodes model the four interconnect types of the architecture (Section
    4.4): direct links between adjacent SMBs, length-1 and length-4 wire
    segments in the channels, and global row/column lines; plus logical
    source/sink nodes per SMB and per I/O pad. Congestion lives on nodes
    (every wire node has unit capacity; there are [len1_tracks] /
    [len4_tracks] / [global_tracks] parallel nodes per channel position),
    which is the PathFinder formulation. *)

type wire_kind =
  | Direct
  | Len1
  | Len4
  | Global

type node_kind =
  | Src of int              (** SMB output *)
  | Sink of int             (** SMB input *)
  | Pad_src of int
  | Pad_sink of int
  | Wire of wire_kind

type caps = {
  direct_tracks : int;      (** parallel direct wires per adjacent SMB pair *)
  len1_tracks : int;        (** per channel position and direction *)
  len4_tracks : int;
  global_tracks : int;      (** per row and per column *)
}

val scale_caps : caps -> int -> caps
(** Multiply every track count (used by the minimum-channel-width search). *)

val default_caps : caps

type t = {
  num_nodes : int;
  kind : node_kind array;
  delay : float array;      (** traversal delay of each node, ns *)
  adj : int list array;     (** directed edges *)
  src_of_smb : int array;
  sink_of_smb : int array;
  src_of_pad : int array;
  sink_of_pad : int array;
}

val build :
  ?caps:caps -> arch:Nanomap_arch.Arch.t -> Nanomap_place.Place.t -> t
(** Builds the graph for the placement's grid and pad ring. *)

val stats : t -> (string * int) list
(** Node counts by kind. *)
