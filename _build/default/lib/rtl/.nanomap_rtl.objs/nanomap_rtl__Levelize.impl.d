lib/rtl/levelize.ml: Array Format Hashtbl Int List Nanomap_util Queue Rtl Set
