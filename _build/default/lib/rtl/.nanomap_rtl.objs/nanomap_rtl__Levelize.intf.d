lib/rtl/levelize.mli: Format Rtl
