lib/rtl/rtl.ml: Array Hashtbl List Nanomap_logic Nanomap_util Option Printf
