lib/rtl/rtl.mli: Nanomap_logic
