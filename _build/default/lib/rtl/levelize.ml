module IntSet = Set.Make (Int)

type plane = {
  index : int;
  ops : Rtl.id list;
  input_signals : Rtl.id list;
  input_registers : Rtl.id list;
  output_registers : Rtl.id list;
  primary_outputs : (string * Rtl.id) list;
}

type t = {
  design : Rtl.t;
  planes : plane array;
  register_level : (Rtl.id * int) list;
}

(* Register dependency edges, derived from the data cone of each register:
   weight 0 for a direct register-to-register wire, 1 when logic intervenes. *)
type reg_edge = { src : Rtl.id; dst : Rtl.id; weight : int }

let register_edges design order =
  (* reg_sources.(comb id) = registers reachable backwards without crossing
     another register. *)
  let n = Rtl.num_signals design in
  let sources = Array.make n IntSet.empty in
  let source_of id =
    match (Rtl.signal design id).driver with
    | Rtl.Register _ -> IntSet.singleton id
    | Rtl.Input | Rtl.Const_driver _ -> IntSet.empty
    | Rtl.Comb _ -> sources.(id)
  in
  List.iter
    (fun id ->
      match (Rtl.signal design id).driver with
      | Rtl.Comb op ->
        sources.(id) <-
          List.fold_left
            (fun acc i -> IntSet.union acc (source_of i))
            IntSet.empty (Rtl.op_inputs op)
      | Rtl.Input | Rtl.Const_driver _ | Rtl.Register _ -> ())
    order;
  let edges = ref [] in
  List.iter
    (fun (s : Rtl.signal) ->
      match s.driver with
      | Rtl.Register { d; _ } ->
        (match (Rtl.signal design d).driver with
         | Rtl.Register _ -> edges := { src = d; dst = s.id; weight = 0 } :: !edges
         | Rtl.Input | Rtl.Const_driver _ -> ()
         | Rtl.Comb _ ->
           IntSet.iter
             (fun src -> edges := { src; dst = s.id; weight = 1 } :: !edges)
             sources.(d))
      | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> ())
    (Rtl.registers design |> List.to_seq |> List.of_seq);
  (!edges, sources)

(* Tarjan's strongly connected components over the register graph. *)
let sccs nodes edges =
  let adj = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.add adj e.src e.dst) edges;
  let index = Hashtbl.create 64 and low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Hashtbl.create 64 in
  let ncomp = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (Hashtbl.find_all adj v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let cid = !ncomp in
      incr ncomp;
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          Hashtbl.replace comp w cid;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (comp, !ncomp)

(* Plane levels. A weakly-connected component of the register graph that
   contains any directed cycle (an FSM, an accumulator, a controller coupled
   to the datapath it steers) is one synchronous core: temporal execution
   cannot be pipelined across it, so all its registers live in plane 1.
   Pure feed-forward components (pipelines) levelize by longest path, with
   direct register-to-register copies (shift lines) sharing a level. *)
let register_levels design order =
  let regs = List.map (fun (s : Rtl.signal) -> s.id) (Rtl.registers design) in
  let edges, sources = register_edges design order in
  let comp, ncomp = sccs regs edges in
  (* An SCC is cyclic if it has >1 member or a self edge. *)
  let scc_size = Array.make (max ncomp 1) 0 in
  List.iter (fun r -> scc_size.(Hashtbl.find comp r) <- scc_size.(Hashtbl.find comp r) + 1) regs;
  let cyclic_scc = Array.make (max ncomp 1) false in
  Array.iteri (fun c size -> if size > 1 then cyclic_scc.(c) <- true) scc_size;
  List.iter (fun e -> if e.src = e.dst then cyclic_scc.(Hashtbl.find comp e.src) <- true) edges;
  (* Weak components over registers. *)
  let index_of = Hashtbl.create 64 in
  List.iteri (fun i r -> Hashtbl.replace index_of r i) regs;
  let uf = Nanomap_util.Union_find.create (max (List.length regs) 1) in
  List.iter
    (fun e ->
      Nanomap_util.Union_find.union uf (Hashtbl.find index_of e.src)
        (Hashtbl.find index_of e.dst))
    edges;
  let component_cyclic = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if cyclic_scc.(Hashtbl.find comp r) then
        Hashtbl.replace component_cyclic
          (Nanomap_util.Union_find.find uf (Hashtbl.find index_of r))
          ())
    regs;
  let in_cyclic_component r =
    Hashtbl.mem component_cyclic
      (Nanomap_util.Union_find.find uf (Hashtbl.find index_of r))
  in
  let reg_level = Hashtbl.create 64 in
  (* Cyclic components: everything at level 1. *)
  List.iter (fun r -> if in_cyclic_component r then Hashtbl.replace reg_level r 1) regs;
  (* Acyclic components: longest path over registers in topological order.
     The register graph there is a DAG, so Kahn's algorithm applies. *)
  let ff_regs = List.filter (fun r -> not (in_cyclic_component r)) regs in
  let ff_edges = List.filter (fun e -> not (in_cyclic_component e.src)) edges in
  let indeg = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace indeg r 0) ff_regs;
  List.iter
    (fun e -> Hashtbl.replace indeg e.dst (1 + Hashtbl.find indeg e.dst))
    ff_edges;
  let level = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace level r 1) ff_regs;
  let queue = Queue.create () in
  List.iter (fun r -> if Hashtbl.find indeg r = 0 then Queue.add r queue) ff_regs;
  let remaining = ref ff_edges in
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    let outgoing, rest = List.partition (fun e -> e.src = r) !remaining in
    remaining := rest;
    List.iter
      (fun e ->
        let cand = Hashtbl.find level r + e.weight in
        if cand > Hashtbl.find level e.dst then Hashtbl.replace level e.dst cand;
        Hashtbl.replace indeg e.dst (Hashtbl.find indeg e.dst - 1);
        if Hashtbl.find indeg e.dst = 0 then Queue.add e.dst queue)
      outgoing
  done;
  List.iter (fun r -> Hashtbl.replace reg_level r (Hashtbl.find level r)) ff_regs;
  (reg_level, sources)

let levelize design =
  let order = Rtl.comb_order design in
  let reg_level, _sources = register_levels design order in
  let n = Rtl.num_signals design in
  (* Plane of each combinational signal: deepest register source level seen
     on any path into it, at least 1. *)
  let plane = Array.make n 0 in
  let contribution id =
    match (Rtl.signal design id).driver with
    | Rtl.Register _ -> Hashtbl.find reg_level id
    | Rtl.Input | Rtl.Const_driver _ -> 1
    | Rtl.Comb _ -> plane.(id)
  in
  List.iter
    (fun id ->
      match (Rtl.signal design id).driver with
      | Rtl.Comb op ->
        plane.(id) <-
          List.fold_left (fun acc i -> max acc (contribution i)) 1 (Rtl.op_inputs op)
      | Rtl.Input | Rtl.Const_driver _ | Rtl.Register _ -> ())
    order;
  let num_plane = List.fold_left (fun acc id -> max acc plane.(id)) 1 order in
  let plane_of id = plane.(id) in
  let planes =
    Array.init num_plane (fun i ->
        let p = i + 1 in
        let ops = List.filter (fun id -> plane_of id = p) order in
        let op_set = IntSet.of_list ops in
        let inputs =
          List.fold_left
            (fun acc id ->
              match (Rtl.signal design id).driver with
              | Rtl.Comb op ->
                List.fold_left
                  (fun acc i -> if IntSet.mem i op_set then acc else IntSet.add i acc)
                  acc (Rtl.op_inputs op)
              | Rtl.Input | Rtl.Const_driver _ | Rtl.Register _ -> acc)
            IntSet.empty ops
        in
        let input_signals = IntSet.elements inputs in
        let input_registers =
          List.filter
            (fun id ->
              match (Rtl.signal design id).driver with
              | Rtl.Register _ -> true
              | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> false)
            input_signals
        in
        let output_registers =
          List.filter_map
            (fun (s : Rtl.signal) ->
              match s.driver with
              | Rtl.Register { d; _ } ->
                let source_plane =
                  match (Rtl.signal design d).driver with
                  | Rtl.Comb _ -> plane_of d
                  | Rtl.Input | Rtl.Const_driver _ | Rtl.Register _ -> 0
                in
                if source_plane = p then Some s.id else None
              | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> None)
            (Rtl.registers design)
        in
        let primary_outputs =
          List.filter
            (fun (_, id) ->
              match (Rtl.signal design id).driver with
              | Rtl.Comb _ -> plane_of id = p
              | Rtl.Input | Rtl.Const_driver _ | Rtl.Register _ -> false)
            (Rtl.outputs design)
        in
        { index = p; ops; input_signals; input_registers; output_registers;
          primary_outputs })
  in
  let register_level =
    List.map (fun (s : Rtl.signal) -> (s.id, Hashtbl.find reg_level s.id))
      (Rtl.registers design)
  in
  { design; planes; register_level }

let num_planes t = Array.length t.planes

let plane_of_op t id =
  let found = ref 0 in
  Array.iter (fun p -> if List.mem id p.ops then found := p.index) t.planes;
  if !found = 0 then invalid_arg "Levelize.plane_of_op: not a combinational signal";
  !found

let total_flip_flops t =
  List.fold_left
    (fun acc (s : Rtl.signal) -> acc + s.width)
    0 (Rtl.registers t.design)

let pp_summary fmt t =
  Format.fprintf fmt "design %s: %d plane(s), %d flip-flops@."
    (Rtl.name t.design) (num_planes t) (total_flip_flops t);
  Array.iter
    (fun p ->
      Format.fprintf fmt "  plane %d: %d ops, %d input regs, %d output regs, %d POs@."
        p.index (List.length p.ops)
        (List.length p.input_registers)
        (List.length p.output_registers)
        (List.length p.primary_outputs))
    t.planes
