(** Register levelization and plane extraction (paper Section 3).

    Registers are levelized: primary inputs sit at level 0 and a register's
    level is one more than the deepest register feeding logic in its data
    cone. Two refinements make the notion match the paper's benchmarks:

    - registers connected by a {e direct wire} (no logic in between, e.g. a
      shift-register delay line) share a level — the copy is just a delayed
      plane register, not a new plane;
    - a weakly-connected register component containing any directed cycle
      (an FSM, an accumulator, a controller coupled with its datapath) is a
      single synchronous core that cannot be pipelined: all its registers
      sit at level 1, i.e. the whole core is one plane.

    The combinational logic whose deepest register source has level [p]
    forms {e plane p}; [num_plane] is the number of planes. Circuit delay is
    [plane cycle x num_plane] and NanoMap folds each plane into folding
    stages. *)

type plane = {
  index : int;                        (** 1-based plane number *)
  ops : Rtl.id list;                  (** combinational signals, topological order *)
  input_signals : Rtl.id list;        (** registers/inputs/constants/earlier-plane
                                          ops read by this plane *)
  input_registers : Rtl.id list;      (** subset of [input_signals] that are
                                          registers — the plane registers *)
  output_registers : Rtl.id list;     (** registers whose data input is computed
                                          by this plane *)
  primary_outputs : (string * Rtl.id) list; (** POs driven from this plane *)
}

type t = {
  design : Rtl.t;
  planes : plane array;               (** index [p-1] holds plane [p] *)
  register_level : (Rtl.id * int) list;
}

val levelize : Rtl.t -> t
(** Raises [Failure] on invalid designs (see {!Rtl.validate}). A design
    with no combinational logic still gets one (empty) plane. *)

val num_planes : t -> int

val plane_of_op : t -> Rtl.id -> int
(** Plane number of a combinational signal. *)

val total_flip_flops : t -> int
(** Sum of register widths — the paper's "#Flip-flops" column. *)

val pp_summary : Format.formatter -> t -> unit
