(** Register-transfer-level intermediate representation.

    A design is a set of {e signals} (named buses), each driven by exactly
    one driver: a primary input, a constant, a register, or a combinational
    operator. Registers are the only sequential elements; they all share one
    implicit clock, which matches the NATURE execution model where a plane's
    logic propagates in one plane cycle.

    The IR is deliberately small: it is what the paper's flow consumes after
    RTL synthesis — datapath macro-operators (add/sub/mult/compare/mux) that
    NanoMap treats as modules to partition into LUT clusters, plus arbitrary
    single-bit controller logic expressed as truth tables. *)

type id = int

type op =
  | Add of id * id          (** result width = signal width (carry dropped) *)
  | Sub of id * id
  | Mult of id * id         (** truncated to the result signal's width *)
  | Eq of id * id           (** 1-bit *)
  | Lt of id * id           (** unsigned, 1-bit *)
  | Bit_and of id * id
  | Bit_or of id * id
  | Bit_xor of id * id
  | Bit_not of id
  | Mux of id * id * id     (** [Mux (sel, a, b)]: [b] when [sel] *)
  | Slice of id * int       (** [Slice (s, lo)]: bits [lo .. lo+width-1] of [s] *)
  | Concat of id * id       (** low part first *)
  | Table of Nanomap_logic.Truth_table.t * id list
      (** single-bit controller logic over 1-bit operands *)

type driver =
  | Input
  | Const_driver of int
  | Register of { d : id; init : int }
  | Comb of op

type signal = {
  id : id;
  name : string;
  width : int;
  driver : driver;
}

type t

val create : string -> t
val name : t -> string

val add_input : t -> string -> int -> id
val add_const : t -> ?name:string -> width:int -> int -> id
val add_op : t -> ?name:string -> width:int -> op -> id
(** Width-checks the operands (raises [Invalid_argument] on mismatch):
    [Add]/[Sub]/bitwise need equal widths equal to the result width;
    [Mult] needs result width = wa + wb; [Eq]/[Lt]/[Table] produce 1 bit;
    [Mux] needs a 1-bit selector. Operands must already exist. *)

val add_register : t -> ?init:int -> name:string -> width:int -> unit -> id
(** Registers are created first and get their data input later with
    {!connect_register}, so feedback (FSMs, accumulators) is expressible. *)

val connect_register : t -> id -> d:id -> unit
(** Raises [Invalid_argument] if [id] is not a register, is already
    connected, or widths differ. *)

val mark_output : t -> string -> id -> unit

val signal : t -> id -> signal
val num_signals : t -> int
val iter_signals : (signal -> unit) -> t -> unit
val inputs : t -> signal list
val registers : t -> signal list
val outputs : t -> (string * id) list

val validate : t -> unit
(** Checks that every register is connected and that the combinational part
    is acyclic. Raises [Failure] otherwise. Must be called (or implied via
    {!simulate} / levelization) before handing the design to the flow. *)

val op_inputs : op -> id list

val comb_order : t -> id list
(** Topological order of the combinational signals (validates as a side
    effect; raises [Failure] like {!validate}). *)

(** {2 Cycle-accurate reference simulation}

    Used by the equivalence tests between the RTL and its gate-level
    decomposition, and by the examples to demonstrate functional identity
    before/after mapping. *)

type sim

val sim_create : t -> sim
val sim_cycle : sim -> (string * int) list -> (string * int) list
(** [sim_cycle s ins] applies primary-input values (by name, missing
    inputs keep their previous value, initially 0), computes the
    combinational fabric, returns outputs, then clocks every register. *)

val sim_peek : sim -> id -> int
