lib/techmap/decompose.ml: Array Hashtbl Int64 List Lut_network Nanomap_logic Nanomap_rtl Printf
