lib/techmap/decompose.mli: Lut_network Nanomap_logic Nanomap_rtl
