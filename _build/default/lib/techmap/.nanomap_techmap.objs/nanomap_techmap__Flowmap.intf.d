lib/techmap/flowmap.mli: Decompose Lut_network
