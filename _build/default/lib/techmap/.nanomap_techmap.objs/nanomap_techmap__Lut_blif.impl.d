lib/techmap/lut_blif.ml: Array List Lut_network Nanomap_blif Nanomap_logic Printf String
