lib/techmap/lut_blif.mli: Lut_network Nanomap_blif
