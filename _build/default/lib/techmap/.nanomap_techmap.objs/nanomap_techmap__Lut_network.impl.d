lib/techmap/lut_network.ml: Array Hashtbl List Nanomap_logic Nanomap_rtl Nanomap_util Option Printf
