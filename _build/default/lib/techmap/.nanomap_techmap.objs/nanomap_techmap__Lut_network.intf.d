lib/techmap/lut_network.mli: Nanomap_logic Nanomap_rtl
