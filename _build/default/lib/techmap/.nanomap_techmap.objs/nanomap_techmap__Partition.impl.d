lib/techmap/partition.ml: Array Hashtbl List Lut_network Option Printf Queue
