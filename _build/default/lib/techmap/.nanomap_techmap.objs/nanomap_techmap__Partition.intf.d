lib/techmap/partition.mli: Lut_network
