lib/techmap/simplify.ml: Array Decompose Hashtbl List Lut_network Nanomap_logic Nanomap_util Option Printf
