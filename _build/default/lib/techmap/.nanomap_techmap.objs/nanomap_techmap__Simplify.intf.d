lib/techmap/simplify.mli: Decompose
