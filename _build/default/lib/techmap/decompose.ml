module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Truth_table = Nanomap_logic.Truth_table
module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize

type tagged = {
  gates : Gate_netlist.t;
  tags : int array;
  input_origins : (Gate_netlist.id * Lut_network.input_origin) list;
  output_targets : (Lut_network.target * Gate_netlist.id) list;
}

let wire_outputs (lv : Levelize.t) p =
  let mine = (lv.planes.(p - 1)).Levelize.ops in
  let mine_set = List.fold_left (fun acc id -> id :: acc) [] mine in
  let wanted = Hashtbl.create 16 in
  Array.iter
    (fun (q : Levelize.plane) ->
      if q.index > p then
        List.iter
          (fun id -> if List.mem id mine_set then Hashtbl.replace wanted id ())
          q.input_signals)
    lv.planes;
  Hashtbl.fold (fun id () acc -> id :: acc) wanted [] |> List.sort compare

(* Shannon decomposition of a truth table into a MUX tree over gate ids. *)
let rec table_gates gates tt (args : int array) =
  let n = Truth_table.arity tt in
  if n = 0 then Gate_netlist.add_const gates (Truth_table.bits tt <> 0L)
  else begin
    let half_bits = Truth_table.bits tt in
    let lo = Truth_table.of_bits ~arity:(n - 1) half_bits in
    let hi =
      Truth_table.of_bits ~arity:(n - 1)
        (Int64.shift_right_logical half_bits (1 lsl (n - 1)))
    in
    let sub = Array.sub args 0 (n - 1) in
    if Truth_table.equal lo hi then table_gates gates lo sub
    else
      let glo = table_gates gates lo sub in
      let ghi = table_gates gates hi sub in
      Gate_netlist.add_gate gates Gate.Mux2 [| args.(n - 1); glo; ghi |]
  end

let plane (lv : Levelize.t) p =
  let design = lv.design in
  let pl = lv.planes.(p - 1) in
  let gates = Gate_netlist.create () in
  let env : (Rtl.id, int array) Hashtbl.t = Hashtbl.create 64 in
  let input_origins = ref [] in
  (* Plane inputs become gate-level primary inputs (bit-blasted). *)
  List.iter
    (fun sid ->
      let s = Rtl.signal design sid in
      let make origin_of =
        Array.init s.width (fun b ->
            let gid = Gate_netlist.add_input gates (Printf.sprintf "%s.%d" s.name b) in
            input_origins := (gid, origin_of b) :: !input_origins;
            gid)
      in
      let bus =
        match s.driver with
        | Rtl.Register _ -> make (fun b -> Lut_network.Register_bit (sid, b))
        | Rtl.Input -> make (fun b -> Lut_network.Pi_bit (sid, b))
        | Rtl.Const_driver v ->
          Array.init s.width (fun b -> Gate_netlist.add_const gates (v lsr b land 1 = 1))
        | Rtl.Comb _ -> make (fun b -> Lut_network.Wire_bit (sid, b))
      in
      Hashtbl.replace env sid bus)
    pl.input_signals;
  let lookup sid =
    match Hashtbl.find_opt env sid with
    | Some bus -> bus
    | None -> failwith "Decompose.plane: operand not available"
  in
  (* Tag spans: gates created while building op [sid] get tag [sid]. *)
  let spans = ref [] in
  List.iter
    (fun sid ->
      let s = Rtl.signal design sid in
      let op = match s.driver with Rtl.Comb op -> op | _ -> assert false in
      let start = Gate_netlist.size gates in
      let bus =
        match op with
        | Rtl.Add (a, b) -> fst (Gen.ripple_carry_adder gates (lookup a) (lookup b))
        | Rtl.Sub (a, b) -> fst (Gen.subtractor gates (lookup a) (lookup b))
        | Rtl.Mult (a, b) -> Gen.array_multiplier gates (lookup a) (lookup b)
        | Rtl.Eq (a, b) -> [| Gen.equality gates (lookup a) (lookup b) |]
        | Rtl.Lt (a, b) -> [| Gen.less_than gates (lookup a) (lookup b) |]
        | Rtl.Bit_and (a, b) -> Gen.bitwise gates Gate.And2 (lookup a) (lookup b)
        | Rtl.Bit_or (a, b) -> Gen.bitwise gates Gate.Or2 (lookup a) (lookup b)
        | Rtl.Bit_xor (a, b) -> Gen.bitwise gates Gate.Xor2 (lookup a) (lookup b)
        | Rtl.Bit_not a ->
          Array.map (fun g -> Gate_netlist.add_gate gates Gate.Not [| g |]) (lookup a)
        | Rtl.Mux (sel, a, b) ->
          Gen.mux_bus gates (lookup sel).(0) (lookup a) (lookup b)
        | Rtl.Slice (a, lo) -> Array.sub (lookup a) lo s.width
        | Rtl.Concat (a, b) -> Array.append (lookup a) (lookup b)
        | Rtl.Table (tt, args) ->
          let arg_bits = Array.of_list (List.map (fun a -> (lookup a).(0)) args) in
          [| table_gates gates tt arg_bits |]
      in
      let stop = Gate_netlist.size gates in
      if stop > start then spans := (start, stop, sid) :: !spans;
      Hashtbl.replace env sid bus)
    pl.ops;
  (* Outputs: register data inputs, primary outputs, and wires consumed by
     later planes. *)
  let output_targets = ref [] in
  List.iter
    (fun rid ->
      let r = Rtl.signal design rid in
      match r.driver with
      | Rtl.Register { d; _ } ->
        let bus = lookup d in
        Array.iteri
          (fun b gid ->
            output_targets := (Lut_network.Reg_target (rid, b), gid) :: !output_targets)
          bus
      | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> assert false)
    pl.output_registers;
  List.iter
    (fun (name, sid) ->
      let bus = lookup sid in
      Array.iteri
        (fun b gid ->
          output_targets :=
            (Lut_network.Po_target (Printf.sprintf "%s.%d" name b), gid)
            :: !output_targets)
        bus)
    pl.primary_outputs;
  List.iter
    (fun sid ->
      let bus = lookup sid in
      Array.iteri
        (fun b gid ->
          output_targets := (Lut_network.Wire_target (sid, b), gid) :: !output_targets)
        bus)
    (wire_outputs lv p);
  let tags = Array.make (Gate_netlist.size gates) (-1) in
  List.iter
    (fun (start, stop, sid) ->
      for g = start to stop - 1 do tags.(g) <- sid done)
    !spans;
  { gates;
    tags;
    input_origins = List.rev !input_origins;
    output_targets = List.rev !output_targets }
