(** Decomposition of a plane's RTL operators into primitive gates.

    Every datapath operator expands through the structural generators of
    {!Nanomap_logic.Gen} (ripple-carry adders, array multipliers, ...), and
    controller truth tables expand through Shannon decomposition into MUX
    trees. Each produced gate is tagged with the RTL signal id of the
    operator it came from, so that after FlowMap the LUTs of one operator
    can be re-grouped into the paper's LUT clusters. *)

type tagged = {
  gates : Nanomap_logic.Gate_netlist.t;
  tags : int array;
      (** gate id -> RTL signal id of the originating operator, or [-1] for
          inputs/constants/wiring *)
  input_origins : (Nanomap_logic.Gate_netlist.id * Lut_network.input_origin) list;
  output_targets : (Lut_network.target * Nanomap_logic.Gate_netlist.id) list;
}

val wire_outputs : Nanomap_rtl.Levelize.t -> int -> Nanomap_rtl.Rtl.id list
(** Combinational signals of plane [p] that a later plane reads. *)

val plane : Nanomap_rtl.Levelize.t -> int -> tagged
(** [plane lv p] decomposes plane [p] (1-based). *)
