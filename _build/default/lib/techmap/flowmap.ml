module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Truth_table = Nanomap_logic.Truth_table
module Vec = Nanomap_util.Vec

let default_k = 4

let is_source (n : Gate_netlist.node) =
  match n.Gate_netlist.kind with
  | Gate.Input | Gate.Const _ -> true
  | Gate.Buf | Gate.Not | Gate.And2 | Gate.Or2 | Gate.Nand2 | Gate.Nor2
  | Gate.Xor2 | Gate.Xnor2 | Gate.Mux2 -> false

let dedup_fanins fanins =
  Array.to_list fanins |> List.sort_uniq compare

(* A small max-flow network rebuilt for every labeled node. Unit vertex
   capacities are modeled by node splitting; augmenting stops as soon as the
   flow exceeds [k], so each run costs at most k+2 BFS passes. *)
module Flow = struct
  type t = {
    mutable num_nodes : int;
    dst : int Vec.t;
    cap : int Vec.t;
    adj : int list array; (* node -> edge indices *)
  }

  let inf = max_int / 2

  let create max_nodes =
    { num_nodes = max_nodes;
      dst = Vec.create ();
      cap = Vec.create ();
      adj = Array.make max_nodes [] }

  let add_edge t u v c =
    let e = Vec.push t.dst v in
    ignore (Vec.push t.cap c);
    let e' = Vec.push t.dst u in
    ignore (Vec.push t.cap 0);
    t.adj.(u) <- e :: t.adj.(u);
    t.adj.(v) <- e' :: t.adj.(v)

  (* One BFS augmentation; returns the pushed amount (0 if no path). *)
  let augment t src snk =
    let pred = Array.make t.num_nodes (-1) in (* incoming edge index *)
    let seen = Array.make t.num_nodes false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let v = Vec.get t.dst e in
          if (not seen.(v)) && Vec.get t.cap e > 0 then begin
            seen.(v) <- true;
            pred.(v) <- e;
            if v = snk then found := true else Queue.add v q
          end)
        t.adj.(u)
    done;
    if not !found then 0
    else begin
      (* bottleneck *)
      let rec bottleneck v acc =
        if v = src then acc
        else
          let e = pred.(v) in
          let u = Vec.get t.dst (e lxor 1) in
          bottleneck u (min acc (Vec.get t.cap e))
      in
      let b = bottleneck snk inf in
      let rec push v =
        if v <> src then begin
          let e = pred.(v) in
          Vec.set t.cap e (Vec.get t.cap e - b);
          Vec.set t.cap (e lxor 1) (Vec.get t.cap (e lxor 1) + b);
          push (Vec.get t.dst (e lxor 1))
        end
      in
      push snk;
      b
    end

  (* Max flow, aborting once the value exceeds [limit]. *)
  let max_flow_capped t src snk limit =
    let flow = ref 0 in
    let continue_ = ref true in
    while !continue_ && !flow <= limit do
      let pushed = augment t src snk in
      if pushed = 0 then continue_ := false else flow := !flow + pushed
    done;
    !flow

  let residual_reachable t src =
    let seen = Array.make t.num_nodes false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          let v = Vec.get t.dst e in
          if (not seen.(v)) && Vec.get t.cap e > 0 then begin
            seen.(v) <- true;
            Queue.add v q
          end)
        t.adj.(u)
    done;
    seen
end

(* Labeling phase: label.(t) and cut.(t) for every node. *)
let compute nl k =
  let n = Gate_netlist.size nl in
  let label = Array.make n 0 in
  let cut = Array.make n [] in
  (* Scratch buffers reused across nodes. *)
  let loc = Array.make n (-1) in
  for t = 0 to n - 1 do
    let node = Gate_netlist.node nl t in
    if not (is_source node) then begin
      if Array.length node.Gate_netlist.fanins > k then
        invalid_arg "Flowmap: netlist is not K-bounded";
      let cone = Gate_netlist.transitive_fanin nl t in
      (* Collect cone members and the max label below t. *)
      let members = ref [] in
      let p = ref 0 in
      for u = 0 to t do
        if cone.(u) then begin
          members := u :: !members;
          if u <> t then p := max !p label.(u)
        end
      done;
      let members = !members in
      let p = !p in
      if p = 0 then begin
        label.(t) <- 1;
        cut.(t) <- dedup_fanins node.Gate_netlist.fanins
      end
      else begin
        let collapsed u = u = t || label.(u) = p in
        (* Local indices for non-collapsed members. *)
        let m = ref 0 in
        List.iter
          (fun u ->
            if not (collapsed u) then begin
              loc.(u) <- !m;
              incr m
            end)
          members;
        let m = !m in
        let sink = 2 * m and source = (2 * m) + 1 in
        let fl = Flow.create ((2 * m) + 2) in
        List.iter
          (fun u ->
            if not (collapsed u) then begin
              let ui = 2 * loc.(u) and uo = (2 * loc.(u)) + 1 in
              Flow.add_edge fl ui uo 1;
              if is_source (Gate_netlist.node nl u) then
                Flow.add_edge fl source ui Flow.inf
            end)
          members;
        List.iter
          (fun v ->
            let vn = Gate_netlist.node nl v in
            if not (is_source vn) then
              Array.iter
                (fun u ->
                  match collapsed v, collapsed u with
                  | true, true -> ()
                  | true, false -> Flow.add_edge fl ((2 * loc.(u)) + 1) sink Flow.inf
                  | false, false ->
                    Flow.add_edge fl ((2 * loc.(u)) + 1) (2 * loc.(v)) Flow.inf
                  | false, true ->
                    (* labels are monotone along edges, so a collapsed node
                       cannot feed a non-collapsed one inside the cone *)
                    assert false)
                vn.Gate_netlist.fanins)
          members;
        let flow = Flow.max_flow_capped fl source sink k in
        if flow <= k then begin
          label.(t) <- p;
          let reach = Flow.residual_reachable fl source in
          let cut_nodes =
            List.filter
              (fun u ->
                (not (collapsed u))
                && reach.(2 * loc.(u))
                && not (reach.((2 * loc.(u)) + 1)))
              members
          in
          cut.(t) <- List.sort compare cut_nodes
        end
        else begin
          label.(t) <- p + 1;
          cut.(t) <- dedup_fanins node.Gate_netlist.fanins
        end;
        (* Reset scratch. *)
        List.iter (fun u -> loc.(u) <- -1) members
      end
    end
  done;
  (label, cut)

let labels ?(k = default_k) (tg : Decompose.tagged) =
  fst (compute tg.Decompose.gates k)

(* Derive the function of the LUT rooted at [t] with inputs [cut] by
   re-simulating the cone between them. *)
let lut_func nl cut t =
  let cut = Array.of_list cut in
  let arity = Array.length cut in
  assert (arity <= Truth_table.max_arity);
  Truth_table.of_fun ~arity (fun inputs ->
      let memo = Hashtbl.create 16 in
      Array.iteri (fun i id -> Hashtbl.replace memo id inputs.(i)) cut;
      let rec eval id =
        match Hashtbl.find_opt memo id with
        | Some v -> v
        | None ->
          let n = Gate_netlist.node nl id in
          let v =
            match n.Gate_netlist.kind with
            | Gate.Const b -> b
            | Gate.Input -> failwith "Flowmap: primary input below cut"
            | kind -> Gate.eval kind (Array.map eval n.Gate_netlist.fanins)
          in
          Hashtbl.replace memo id v;
          v
      in
      eval t)

(* Area recovery: greedily absorb single-consumer LUTs into their consumer
   when the merged support still fits in k inputs. Works on mutable arrays
   and rebuilds the network at the end (dropping the dissolved LUTs). *)
let area_recover_pass k network =
  let n = Lut_network.size network in
  let fanins = Array.make n [||] in
  let funcs = Array.make n (Truth_table.const ~arity:0 false) in
  let is_lut = Array.make n false in
  Lut_network.iter
    (fun id -> function
      | Lut_network.Input _ -> ()
      | Lut_network.Lut { func; fanins = f } ->
        is_lut.(id) <- true;
        fanins.(id) <- Array.copy f;
        funcs.(id) <- func)
    network;
  let alive = Array.copy is_lut in
  let protected_ = Array.make n false in
  List.iter (fun (_, id) -> protected_.(id) <- true) (Lut_network.outputs network);
  (* distinct consumer sets *)
  let consumers = Array.make n [] in
  let recompute_consumers () =
    Array.fill consumers 0 n [];
    for u = 0 to n - 1 do
      if alive.(u) then
        Array.iter
          (fun f -> if not (List.mem u consumers.(f)) then consumers.(f) <- u :: consumers.(f))
          fanins.(u)
    done
  in
  recompute_consumers ();
  let merged = ref true in
  while !merged do
    merged := false;
    for v = n - 1 downto 0 do
      if alive.(v) && not protected_.(v) then begin
        match consumers.(v) with
        | [ u ] when alive.(u) && u <> v ->
          (* merged support *)
          let keep = Array.to_list fanins.(u) |> List.filter (fun f -> f <> v) in
          let extra =
            Array.to_list fanins.(v) |> List.filter (fun f -> not (List.mem f keep))
          in
          let support = keep @ extra in
          if List.length support <= k then begin
            (* compose u's function with v substituted *)
            let support_arr = Array.of_list support in
            let index_of f =
              let rec find i = if support_arr.(i) = f then i else find (i + 1) in
              find 0
            in
            let old_u_fanins = fanins.(u) and old_u_func = funcs.(u) in
            let v_fanins = fanins.(v) and v_func = funcs.(v) in
            let new_func =
              Truth_table.of_fun ~arity:(Array.length support_arr) (fun inputs ->
                  let v_val =
                    Truth_table.eval v_func
                      (Array.map (fun f -> inputs.(index_of f)) v_fanins)
                  in
                  Truth_table.eval old_u_func
                    (Array.map
                       (fun f -> if f = v then v_val else inputs.(index_of f))
                       old_u_fanins))
            in
            fanins.(u) <- support_arr;
            funcs.(u) <- new_func;
            alive.(v) <- false;
            (* v's fanins gain u as a consumer; cheap local update *)
            Array.iter
              (fun f ->
                consumers.(f) <- List.filter (fun c -> c <> v) consumers.(f);
                if not (List.mem u consumers.(f)) then consumers.(f) <- u :: consumers.(f))
              v_fanins;
            Array.iter
              (fun f -> consumers.(f) <- List.filter (fun c -> c <> v) consumers.(f))
              old_u_fanins;
            Array.iter
              (fun f ->
                if not (List.mem u consumers.(f)) then consumers.(f) <- u :: consumers.(f))
              fanins.(u);
            merged := true
          end
        | _ -> ()
      end
    done
  done;
  (* rebuild *)
  let out = Lut_network.create () in
  let remap = Array.make n (-1) in
  Lut_network.iter
    (fun id node ->
      match node with
      | Lut_network.Input origin ->
        remap.(id) <- Lut_network.add_input out ~name:(Lut_network.node_name network id) origin
      | Lut_network.Lut _ ->
        if alive.(id) then
          remap.(id) <-
            Lut_network.add_lut out
              ~name:(Lut_network.node_name network id)
              ~module_id:(Lut_network.module_id network id)
              ~func:funcs.(id)
              ~fanins:(Array.map (fun f -> remap.(f)) fanins.(id))
              ())
    network;
  List.iter
    (fun (target, id) -> Lut_network.mark_output out target remap.(id))
    (Lut_network.outputs network);
  out

let map ?(k = default_k) ?(area_recover = true) (tg : Decompose.tagged) =
  let nl = tg.Decompose.gates in
  let _, cut = compute nl k in
  (* Mapping phase: walk back from the output drivers, materializing one LUT
     per needed non-source gate. *)
  let needed = Hashtbl.create 64 in
  let rec need gid =
    if not (Hashtbl.mem needed gid) then
      if not (is_source (Gate_netlist.node nl gid)) then begin
        Hashtbl.replace needed gid ();
        List.iter need cut.(gid)
      end
  in
  List.iter (fun (_, gid) -> need gid) tg.Decompose.output_targets;
  (* Inputs referenced by any chosen LUT or directly by an output. *)
  let lut = Lut_network.create () in
  let node_map = Hashtbl.create 64 in (* gate id -> lut node id *)
  let origin_of gid =
    match List.assoc_opt gid tg.Decompose.input_origins with
    | Some origin -> origin
    | None ->
      (match (Gate_netlist.node nl gid).Gate_netlist.kind with
       | Gate.Const b -> Lut_network.Const_bit b
       | _ -> failwith "Flowmap: input gate without origin")
  in
  let input_node gid =
    match Hashtbl.find_opt node_map gid with
    | Some id -> id
    | None ->
      let name = Option.value (Gate_netlist.node nl gid).Gate_netlist.name ~default:"in" in
      let id = Lut_network.add_input lut ~name (origin_of gid) in
      Hashtbl.replace node_map gid id;
      id
  in
  let chosen = Hashtbl.fold (fun gid () acc -> gid :: acc) needed [] |> List.sort compare in
  (* Fanins (cut nodes) always have smaller gate ids, so ascending order is
     topological. *)
  List.iter
    (fun gid ->
      let fanins =
        List.map
          (fun u ->
            if is_source (Gate_netlist.node nl u) then input_node u
            else Hashtbl.find node_map u)
          cut.(gid)
      in
      let func = lut_func nl cut.(gid) gid in
      let name = Printf.sprintf "g%d" gid in
      let id =
        Lut_network.add_lut lut ~name ~module_id:tg.Decompose.tags.(gid) ~func
          ~fanins:(Array.of_list fanins) ()
      in
      Hashtbl.replace node_map gid id)
    chosen;
  List.iter
    (fun (target, gid) ->
      let id =
        if is_source (Gate_netlist.node nl gid) then input_node gid
        else Hashtbl.find node_map gid
      in
      Lut_network.mark_output lut target id)
    tg.Decompose.output_targets;
  if area_recover then area_recover_pass k lut else lut
