(** FlowMap: depth-optimal technology mapping onto K-input LUTs
    (Cong & Ding, TCAD 1994) — the mapper the paper relies on for its input
    LUT networks.

    Labeling phase: nodes are processed in topological order; the label of a
    node is the depth of its best mapping, decided by testing whether the
    node's fanin cone (with all maximum-label nodes collapsed into the sink)
    admits a K-feasible node cut, via at most K+1 augmenting-path steps of a
    unit-capacity max-flow. Mapping phase: LUTs are generated at the stored
    min-cuts, walking from the outputs; each LUT's function is obtained by
    re-simulating its cone over all input assignments.

    The produced {!Lut_network.t} preserves input origins, output targets
    and RTL module tags. *)

val map : ?k:int -> ?area_recover:bool -> Decompose.tagged -> Lut_network.t
(** [k] defaults to 4 (NATURE's LE). Raises [Invalid_argument] if the gate
    netlist is not K-bounded (some gate has more than [k] fanins).

    [area_recover] (default true) runs a post-pass that merges every LUT
    with a single consumer into that consumer when the union of their
    inputs still fits in [k] — the standard duplication/area cleanup after
    depth-optimal mapping. Depth never increases. *)

val labels : ?k:int -> Decompose.tagged -> int array
(** The label (optimal mapping depth) of every gate — exposed for the
    depth-optimality tests. *)
