module Blif = Nanomap_blif.Blif
module Truth_table = Nanomap_logic.Truth_table

let sanitize name = String.map (fun c -> if c = '.' then '_' else c) name

let node_name network id =
  match Lut_network.node network id with
  | Lut_network.Lut _ -> sanitize (Lut_network.node_name network id)
  | Lut_network.Input origin ->
    (match origin with
     | Lut_network.Register_bit (r, b) -> Printf.sprintf "reg%d_%d" r b
     | Lut_network.Pi_bit (s, b) -> Printf.sprintf "pi%d_%d" s b
     | Lut_network.Wire_bit (w, b) -> Printf.sprintf "wire%d_%d" w b
     | Lut_network.Const_bit b -> if b then "const1" else "const0")

(* ON-set cover of a truth table: one cube per minterm (downstream tools
   minimize if they care). *)
let cover_of func =
  let arity = Truth_table.arity func in
  let cubes = ref [] in
  for idx = (1 lsl arity) - 1 downto 0 do
    let inputs = Array.init arity (fun i -> idx land (1 lsl i) <> 0) in
    if Truth_table.eval func inputs then begin
      let mask = String.init arity (fun i -> if inputs.(i) then '1' else '0') in
      cubes := { Blif.mask; value = true } :: !cubes
    end
  done;
  !cubes

let model_of_network ~name network =
  let inputs = ref [] and consts = ref [] in
  let nodes = ref [] in
  Lut_network.iter
    (fun id -> function
      | Lut_network.Input (Lut_network.Const_bit b) ->
        (* constants become 0-input .names *)
        let nm = node_name network id in
        if not (List.mem_assoc nm !consts) then consts := (nm, b) :: !consts
      | Lut_network.Input _ ->
        let nm = node_name network id in
        if not (List.mem nm !inputs) then inputs := nm :: !inputs
      | Lut_network.Lut { func; fanins } ->
        nodes :=
          { Blif.inputs = Array.to_list (Array.map (node_name network) fanins);
            output = node_name network id;
            cover = cover_of func }
          :: !nodes)
    network;
  let const_nodes =
    List.map
      (fun (nm, b) ->
        { Blif.inputs = [];
          output = nm;
          cover = (if b then [ { Blif.mask = ""; value = true } ] else []) })
      !consts
  in
  (* outputs: POs by (sanitized) name via buffer nodes; register and wire
     targets become latches *)
  let outputs = ref [] and latches = ref [] and buffers = ref [] in
  List.iter
    (fun (target, id) ->
      let src = node_name network id in
      match target with
      | Lut_network.Po_target po ->
        let po = sanitize po in
        outputs := po :: !outputs;
        if po <> src then
          buffers :=
            { Blif.inputs = [ src ];
              output = po;
              cover = [ { Blif.mask = "1"; value = true } ] }
            :: !buffers
      | Lut_network.Reg_target (r, b) ->
        latches := { Blif.data_in = src; data_out = Printf.sprintf "reg%d_%d" r b; init = false } :: !latches
      | Lut_network.Wire_target (w, b) ->
        let po = Printf.sprintf "wireout%d_%d" w b in
        outputs := po :: !outputs;
        buffers :=
          { Blif.inputs = [ src ];
            output = po;
            cover = [ { Blif.mask = "1"; value = true } ] }
          :: !buffers)
    (Lut_network.outputs network);
  (* latch outputs must not also be model inputs *)
  let latch_outs = List.map (fun (l : Blif.latch) -> l.Blif.data_out) !latches in
  let model_inputs = List.filter (fun i -> not (List.mem i latch_outs)) !inputs in
  { Blif.name = sanitize name;
    model_inputs = List.rev model_inputs;
    model_outputs = List.rev !outputs;
    nodes = const_nodes @ List.rev !nodes @ List.rev !buffers;
    latches = List.rev !latches }

let write_file ~name network path =
  let oc = open_out path in
  output_string oc (Blif.write_model (model_of_network ~name network));
  close_out oc
