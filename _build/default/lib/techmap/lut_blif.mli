(** Export of mapped LUT networks as BLIF models, the lingua franca of
    academic FPGA tool chains: each LUT becomes a [.names] node whose cover
    enumerates the ON-set of its truth table, register targets become
    [.latch] entries, and plane inputs become model inputs. A design mapped
    by NanoMap can therefore be inspected with (or compared against) any
    BLIF-consuming tool.

    Folding is a run-time notion, so the export is per plane and flattens
    the folding stages back into one combinational network — it round-trips
    functionally with the pre-scheduling network, which the tests verify by
    re-parsing and re-simulating. *)

val model_of_network :
  name:string -> Lut_network.t -> Nanomap_blif.Blif.model
(** Signal naming: LUT nodes use their network names; input bits are
    ["<kind><signal>_<bit>"]; primary-output targets keep their PO names
    with dots replaced by underscores (BLIF treats dots as plain
    characters, but uniformity helps diffing). *)

val write_file : name:string -> Lut_network.t -> string -> unit
