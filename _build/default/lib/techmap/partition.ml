type unit_node = {
  uid : int;
  luts : int list;
  weight : int;
  module_id : int;
  band : int;
  label : string;
}

type t = {
  units : unit_node array;
  edges : (int * int) list;
  weak_edges : (int * int) list;
  unit_of_lut : int array;
  num_bands : int;
  network : Lut_network.t;
}

(* Global ALAP depth of every LUT: alap(l) = depth - height(l) + 1, where
   height is the longest LUT chain from l to any sink. Banding by ALAP
   (rather than ASAP) keeps producers next to their consumers, which both
   shortens storage lifetimes and balances band sizes for array-style
   arithmetic whose input rank is very wide. *)
let alap_depths network =
  let n = Lut_network.size network in
  let height = Array.make n 0 in
  let fanouts = Lut_network.fanouts network in
  for id = n - 1 downto 0 do
    match Lut_network.node network id with
    | Lut_network.Input _ -> ()
    | Lut_network.Lut _ ->
      height.(id) <-
        List.fold_left (fun acc f -> max acc (1 + height.(f))) 1 fanouts.(id)
  done;
  let depth =
    let d = ref 0 in
    Lut_network.iter
      (fun id -> function
        | Lut_network.Lut _ -> d := max !d height.(id)
        | Lut_network.Input _ -> ())
      network;
    !d
  in
  let alap = Array.make n 0 in
  Lut_network.iter
    (fun id -> function
      | Lut_network.Lut _ -> alap.(id) <- depth - height.(id) + 1
      | Lut_network.Input _ -> ())
    network;
  (alap, depth)

(* Balanced band assignment. Every LUT may sit in any band between the one
   its fanins force and the one its global ALAP depth allows; picking the
   least-loaded band in that window evens out per-folding-cycle LUT counts
   (otherwise the fat middle ranks of a multiplier all pile into the bands
   their ALAP dictates). Invariants maintained, which guarantee that any
   schedule respecting the derived precedence keeps every folding cycle at
   most [level] LUT levels deep:
   - along every edge the band is non-decreasing;
   - within one band, chains are at most [level] LUTs long (tracked via
     [in_band_depth]; the ALAP window always leaves a feasible band). *)
let assign_bands network ~level ~alap ~num_bands =
  let n = Lut_network.size network in
  let band = Array.make n (-1) in
  let in_band_depth = Array.make n 0 in
  let load = Array.make num_bands 0 in
  Lut_network.iter
    (fun id -> function
      | Lut_network.Input _ -> ()
      | Lut_network.Lut { fanins; _ } ->
        let hi = (alap.(id) - 1) / level in
        let lo =
          Array.fold_left
            (fun acc f -> match band.(f) with -1 -> acc | b -> max acc b)
            0 fanins
        in
        let depth_at b =
          1
          + Array.fold_left
              (fun acc f -> if band.(f) = b then max acc in_band_depth.(f) else acc)
              0 fanins
        in
        let best = ref (-1) in
        for b = lo to hi do
          if depth_at b <= level then
            match !best with
            | -1 -> best := b
            | cur -> if load.(b) < load.(cur) then best := b
        done;
        let b = match !best with -1 -> assert false | b -> b in
        band.(id) <- b;
        in_band_depth.(id) <- depth_at b;
        load.(b) <- load.(b) + 1)
    network;
  band

let partition network ~level =
  if level < 1 then invalid_arg "Partition.partition: level < 1";
  let alap, depth = alap_depths network in
  let num_bands = max 1 ((depth + level - 1) / level) in
  let bands = assign_bands network ~level ~alap ~num_bands in
  let band_of l = bands.(l) in
  let unit_of_lut = Array.make (Lut_network.size network) (-1) in
  let units = ref [] in
  let next_uid = ref 0 in
  let add_unit luts module_id band label =
    let uid = !next_uid in
    incr next_uid;
    List.iter (fun l -> unit_of_lut.(l) <- uid) luts;
    units := { uid; luts; weight = List.length luts; module_id; band; label } :: !units
  in
  List.iter
    (fun (module_id, luts) ->
      if module_id < 0 then
        (* Glue logic: one unit per LUT. *)
        List.iter
          (fun l ->
            add_unit [ l ] module_id (band_of l) (Lut_network.node_name network l))
          luts
      else begin
        (* One cluster per (module, band). *)
        let bands = Hashtbl.create 4 in
        List.iter
          (fun l ->
            let b = band_of l in
            let cur = Option.value ~default:[] (Hashtbl.find_opt bands b) in
            Hashtbl.replace bands b (l :: cur))
          luts;
        Hashtbl.fold (fun b _ acc -> b :: acc) bands []
        |> List.sort compare
        |> List.iter (fun b ->
               let members = List.rev (Hashtbl.find bands b) in
               add_unit members module_id b (Printf.sprintf "m%d:c%d" module_id (b + 1)))
      end)
    (Lut_network.modules network);
  let units = Array.of_list (List.rev !units) in
  let strict = Hashtbl.create 64 and weak = Hashtbl.create 64 in
  Lut_network.iter
    (fun id -> function
      | Lut_network.Lut { fanins; _ } ->
        let v = unit_of_lut.(id) in
        Array.iter
          (fun f ->
            let u = unit_of_lut.(f) in
            if u >= 0 && u <> v then
              if units.(u).band = units.(v).band then Hashtbl.replace weak (u, v) ()
              else Hashtbl.replace strict (u, v) ())
          fanins
      | Lut_network.Input _ -> ())
    network;
  let to_list tbl = Hashtbl.fold (fun e () acc -> e :: acc) tbl [] |> List.sort compare in
  { units;
    edges = to_list strict;
    weak_edges = to_list weak;
    unit_of_lut;
    num_bands;
    network }

(* Longest path with strict edges weight 1, weak edges weight 0. *)
let critical_path_units t =
  let n = Array.length t.units in
  if n = 0 then 0
  else begin
    let adj = Array.make n [] in
    let indeg = Array.make n 0 in
    let add w (u, v) =
      adj.(u) <- (v, w) :: adj.(u);
      indeg.(v) <- indeg.(v) + 1
    in
    List.iter (add 1) t.edges;
    List.iter (add 0) t.weak_edges;
    let dist = Array.make n 1 in
    let q = Queue.create () in
    Array.iteri (fun u d -> if d = 0 then Queue.add u q) indeg;
    let longest = ref 1 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      longest := max !longest dist.(u);
      List.iter
        (fun (v, w) ->
          if dist.(u) + w > dist.(v) then dist.(v) <- dist.(u) + w;
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v q)
        adj.(u)
    done;
    !longest
  end

let validate t =
  Lut_network.iter
    (fun id -> function
      | Lut_network.Lut _ ->
        if t.unit_of_lut.(id) < 0 then failwith "Partition: LUT not in any unit"
      | Lut_network.Input _ ->
        if t.unit_of_lut.(id) >= 0 then failwith "Partition: input in a unit")
    t.network;
  let n = Array.length t.units in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then failwith "Partition: bad edge";
      if t.units.(u).band >= t.units.(v).band then
        failwith "Partition: strict edge does not increase band")
    t.edges;
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n || u = v then failwith "Partition: bad edge";
      if t.units.(u).band <> t.units.(v).band then
        failwith "Partition: weak edge across bands")
    t.weak_edges;
  (* Acyclicity of the combined graph. *)
  let indeg = Array.make n 0 in
  let adj = Array.make n [] in
  let add (u, v) =
    indeg.(v) <- indeg.(v) + 1;
    adj.(u) <- v :: adj.(u)
  in
  List.iter add t.edges;
  List.iter add t.weak_edges;
  let q = Queue.create () in
  Array.iteri (fun u d -> if d = 0 then Queue.add u q) indeg;
  let consumed = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr consumed;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      adj.(u)
  done;
  if !consumed <> n then failwith "Partition: precedence cycle"
