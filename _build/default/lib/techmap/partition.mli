(** Partitioning of a plane's LUT network into scheduling units (paper
    Section 3): for a chosen folding level [p], the network is cut into
    {e depth bands} of [p] LUT levels using global as-late-as-possible
    depths, so that a plane of depth [d] yields exactly [ceil(d/p)] bands —
    one folding stage's worth of logic each. Within a band, each RTL
    module's LUTs form one LUT cluster (the paper's [mul:c1], [add:c1],
    ...); glue LUTs (controller logic outside any datapath module) stay
    individual, as in the paper.

    Precedence comes in two strengths. An edge that crosses bands is
    {e strict}: the consumer must execute in a strictly later folding cycle
    (its value crosses cycles through a flip-flop). An edge between units
    of the same band is {e weak}: the consumer may share the producer's
    cycle (the chain still fits within [p] LUT levels, by construction of
    the bands) or run later. *)

type unit_node = {
  uid : int;                     (** dense unit id *)
  luts : int list;               (** LUT node ids of the {!Lut_network.t} *)
  weight : int;                  (** number of LUTs (paper's [weight_i]) *)
  module_id : int;               (** RTL signal id, or [-1] for glue *)
  band : int;                    (** 0-based depth band *)
  label : string;                (** e.g. "mul:c1" *)
}

type t = {
  units : unit_node array;
  edges : (int * int) list;      (** strict: strictly increasing cycles *)
  weak_edges : (int * int) list; (** same band: non-decreasing cycles *)
  unit_of_lut : int array;       (** LUT node id -> unit id (-1 for inputs) *)
  num_bands : int;               (** = ceil(plane depth / level) *)
  network : Lut_network.t;
}

val partition : Lut_network.t -> level:int -> t
(** [level >= 1]. Raises [Invalid_argument] on [level < 1]. *)

val critical_path_units : t -> int
(** Longest chain counting strict edges as 1 and weak edges as 0 — the
    minimum number of folding stages of this plane (= [num_bands] unless
    the network is empty). *)

val validate : t -> unit
(** Every LUT in exactly one unit; bands consistent with edges (strict
    edges increase the band, weak edges stay inside one band); the
    combined precedence graph is acyclic. Raises [Failure]. *)
