module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist

type value =
  | Const of bool
  | Node of int (* id in the new netlist *)

let target_name = function
  | Lut_network.Po_target s -> s
  | Lut_network.Reg_target (r, b) -> Printf.sprintf "$reg.%d.%d" r b
  | Lut_network.Wire_target (w, b) -> Printf.sprintf "$wire.%d.%d" w b

let mark_targets tg =
  List.iter
    (fun (target, gid) ->
      Gate_netlist.mark_output tg.Decompose.gates (target_name target) gid)
    tg.Decompose.output_targets;
  tg

let rec run (tg : Decompose.tagged) =
  let old_nl = tg.Decompose.gates in
  let nl = Gate_netlist.create () in
  let new_tags = Nanomap_util.Vec.create () in
  let memo : (int, value) Hashtbl.t = Hashtbl.create 256 in
  let hash_cons : (Gate.kind * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let kind_of_new : (int, Gate.kind * int array) Hashtbl.t = Hashtbl.create 256 in
  let new_origin = ref [] in
  let emit tag kind fanins =
    (* Canonical operand order for commutative gates. *)
    let fanins =
      match kind with
      | Gate.And2 | Gate.Or2 | Gate.Nand2 | Gate.Nor2 | Gate.Xor2 | Gate.Xnor2 ->
        let a = fanins.(0) and b = fanins.(1) in
        if a <= b then fanins else [| b; a |]
      | Gate.Input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Mux2 -> fanins
    in
    let key = (kind, Array.to_list fanins) in
    match Hashtbl.find_opt hash_cons key with
    | Some id -> id
    | None ->
      let id = Gate_netlist.add_gate nl kind fanins in
      ignore (Nanomap_util.Vec.push new_tags tag);
      Hashtbl.replace hash_cons key id;
      Hashtbl.replace kind_of_new id (kind, fanins);
      id
  in
  let is_not id =
    match Hashtbl.find_opt kind_of_new id with
    | Some (Gate.Not, f) -> Some f.(0)
    | _ -> None
  in
  let mk_not tag a =
    match is_not a with
    | Some inner -> Node inner
    | None -> Node (emit tag Gate.Not [| a |])
  in
  let rec value old_id =
    match Hashtbl.find_opt memo old_id with
    | Some v -> v
    | None ->
      let n = Gate_netlist.node old_nl old_id in
      let tag = tg.Decompose.tags.(old_id) in
      let v =
        match n.Gate_netlist.kind with
        | Gate.Input ->
          let name = Option.value n.Gate_netlist.name ~default:"in" in
          let id = Gate_netlist.add_input nl name in
          ignore (Nanomap_util.Vec.push new_tags (-1));
          (match List.assoc_opt old_id tg.Decompose.input_origins with
           | Some origin -> new_origin := (id, origin) :: !new_origin
           | None -> ());
          Node id
        | Gate.Const b -> Const b
        | Gate.Buf -> value n.Gate_netlist.fanins.(0)
        | Gate.Not ->
          (match value n.Gate_netlist.fanins.(0) with
           | Const b -> Const (not b)
           | Node a -> mk_not tag a)
        | Gate.And2 -> binary tag `And n.Gate_netlist.fanins
        | Gate.Or2 -> binary tag `Or n.Gate_netlist.fanins
        | Gate.Nand2 -> negate tag (binary tag `And n.Gate_netlist.fanins)
        | Gate.Nor2 -> negate tag (binary tag `Or n.Gate_netlist.fanins)
        | Gate.Xor2 -> binary tag `Xor n.Gate_netlist.fanins
        | Gate.Xnor2 -> negate tag (binary tag `Xor n.Gate_netlist.fanins)
        | Gate.Mux2 ->
          let s = value n.Gate_netlist.fanins.(0) in
          let a = value n.Gate_netlist.fanins.(1) in
          let b = value n.Gate_netlist.fanins.(2) in
          (match s, a, b with
           | Const false, x, _ -> x
           | Const true, _, y -> y
           | Node _, x, y when x = y -> x
           | Node sv, Const false, Const true -> Node sv
           | Node sv, Const true, Const false -> mk_not tag sv
           | Node _, Const _, Const _ -> assert false (* equal consts matched above *)
           | Node sv, Const false, Node bv -> Node (emit tag Gate.And2 [| min sv bv; max sv bv |])
           | Node sv, Node av, Const true -> Node (emit tag Gate.Or2 [| min sv av; max sv av |])
           | Node sv, Const true, Node bv ->
             (* !s or b *)
             (match mk_not tag sv with
              | Node ns -> Node (emit tag Gate.Or2 [| min ns bv; max ns bv |])
              | Const _ -> assert false)
           | Node sv, Node av, Const false ->
             (match mk_not tag sv with
              | Node ns -> Node (emit tag Gate.And2 [| min ns av; max ns av |])
              | Const _ -> assert false)
           | Node sv, Node av, Node bv -> Node (emit tag Gate.Mux2 [| sv; av; bv |]))
      in
      Hashtbl.replace memo old_id v;
      v
  and negate tag v =
    match v with
    | Const b -> Const (not b)
    | Node a -> mk_not tag a
  and binary tag op fanins =
    let a = value fanins.(0) and b = value fanins.(1) in
    match op, a, b with
    | `And, Const false, _ | `And, _, Const false -> Const false
    | `And, Const true, x | `And, x, Const true -> x
    | `And, Node x, Node y when x = y -> Node x
    | `And, Node x, Node y -> Node (emit tag Gate.And2 [| x; y |])
    | `Or, Const true, _ | `Or, _, Const true -> Const true
    | `Or, Const false, x | `Or, x, Const false -> x
    | `Or, Node x, Node y when x = y -> Node x
    | `Or, Node x, Node y -> Node (emit tag Gate.Or2 [| x; y |])
    | `Xor, Const false, x | `Xor, x, Const false -> x
    | `Xor, Const true, x | `Xor, x, Const true -> negate tag x
    | `Xor, Node x, Node y when x = y -> Const false
    | `Xor, Node x, Node y -> Node (emit tag Gate.Xor2 [| x; y |])
  in
  let const_cache = Hashtbl.create 2 in
  let node_of_value tag = function
    | Node id -> id
    | Const b ->
      (match Hashtbl.find_opt const_cache b with
       | Some id -> id
       | None ->
         let id = Gate_netlist.add_const nl b in
         ignore (Nanomap_util.Vec.push new_tags tag);
         Hashtbl.replace const_cache b id;
         id)
  in
  let output_targets =
    List.map
      (fun (target, gid) -> (target, node_of_value tg.Decompose.tags.(gid) (value gid)))
      tg.Decompose.output_targets
  in
  mark_targets
    (prune
       { Decompose.gates = nl;
         tags = Nanomap_util.Vec.to_array new_tags;
         input_origins = List.rev !new_origin;
         output_targets })

(* Dead-node elimination: rebuild keeping only the cones of the outputs.
   Rewrite rules above may orphan intermediate gates (e.g. an inverter whose
   double negation cancelled); this sweep guarantees the advertised
   invariant that only output cones survive. *)
and prune (tg : Decompose.tagged) =
  let old_nl = tg.Decompose.gates in
  let live = Array.make (Gate_netlist.size old_nl) false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark (Gate_netlist.node old_nl id).Gate_netlist.fanins
    end
  in
  List.iter (fun (_, gid) -> mark gid) tg.Decompose.output_targets;
  let all_live = ref true in
  Array.iter (fun l -> if not l then all_live := false) live;
  if !all_live then tg
  else begin
    let nl = Gate_netlist.create () in
    let tags = Nanomap_util.Vec.create () in
    let remap = Array.make (Gate_netlist.size old_nl) (-1) in
    Gate_netlist.iter
      (fun id n ->
        if live.(id) then begin
          let nid =
            match n.Gate_netlist.kind with
            | Gate.Input ->
              Gate_netlist.add_input nl (Option.value n.Gate_netlist.name ~default:"in")
            | Gate.Const b -> Gate_netlist.add_const nl b
            | kind ->
              Gate_netlist.add_gate ?name:n.Gate_netlist.name nl kind
                (Array.map (fun f -> remap.(f)) n.Gate_netlist.fanins)
          in
          remap.(id) <- nid;
          ignore (Nanomap_util.Vec.push tags tg.Decompose.tags.(id))
        end)
      old_nl;
    { Decompose.gates = nl;
      tags = Nanomap_util.Vec.to_array tags;
      input_origins =
        List.filter_map
          (fun (gid, origin) ->
            if live.(gid) then Some (remap.(gid), origin) else None)
          tg.Decompose.input_origins;
      output_targets =
        List.map (fun (t, gid) -> (t, remap.(gid))) tg.Decompose.output_targets }
  end
