(** Gate-level netlist cleanup ahead of FlowMap.

    The structural generators instantiate textbook blocks (ripple adders
    with constant carry-in, Shannon MUX trees with constant leaves, ...), so
    the raw decomposition carries constants, buffers and duplicate
    structure. This pass performs, in one topological sweep over the cones
    of the outputs:

    - constant folding (including MUX select folding),
    - buffer and double-inverter collapsing,
    - identical/complementary operand rules ([x AND x = x], [x XOR x = 0]),
    - structural hashing (common-subexpression elimination, commutative
      operands canonicalized),
    - dead-node elimination (only output cones survive).

    Module tags and input origins are preserved; an output that folds to a
    constant is re-driven by a fresh constant gate. *)

val run : Decompose.tagged -> Decompose.tagged
