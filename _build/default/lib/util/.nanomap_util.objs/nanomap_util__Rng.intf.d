lib/util/rng.mli:
