lib/util/stats.mli:
