lib/util/vec.mli:
