type row =
  | Cells of string list
  | Separator

type t = {
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells > List.length t.headers then
    invalid_arg "Ascii_table.add_row: more cells than headers";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let to_string t =
  let ncols = List.length t.headers in
  let pad cells = cells @ List.init (ncols - List.length cells) (fun _ -> "") in
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) (pad cells)
  in
  List.iter (function Cells c -> update c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let rule ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c + 1) ' ');
        Buffer.add_char buf '|')
      (pad cells);
    Buffer.add_char buf '\n'
  in
  rule '-';
  line t.headers;
  rule '=';
  List.iter (function Cells c -> line c | Separator -> rule '-') rows;
  rule '-';
  Buffer.contents buf

let print t = print_string (to_string t)
