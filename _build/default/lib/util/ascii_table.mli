(** Fixed-width ASCII tables, used to print the paper's Tables 1 and 2 and
    the experiment summaries in the bench harness. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells print empty.
    Extra cells are rejected. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val to_string : t -> string
val print : t -> unit
(** [to_string] renders with a box border; [print] writes it to stdout. *)
