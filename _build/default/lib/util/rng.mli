(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the flow (simulated annealing, synthetic
    circuit generation) draws from an explicit [t] so that runs are exactly
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (e.g. one per worker or per phase). *)
