let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (s /. float_of_int (List.length xs))

let maxf = function
  | [] -> neg_infinity
  | x :: xs -> List.fold_left max x xs

let minf = function
  | [] -> infinity
  | x :: xs -> List.fold_left min x xs

let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let round2 x = Float.round (x *. 100.) /. 100.
