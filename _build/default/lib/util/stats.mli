(** Small numeric helpers shared by the delay models and the bench harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list. All elements must be positive. *)

val maxf : float list -> float
val minf : float list -> float

val ceil_div : int -> int -> int
(** [ceil_div a b] = ceiling of a/b for positive [b]. *)

val round2 : float -> float
(** Round to two decimal places (table printing). *)
