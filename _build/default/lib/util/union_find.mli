(** Disjoint-set forest with path compression and union by rank.
    Used for net connectivity checks (routing validation). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct sets. *)
