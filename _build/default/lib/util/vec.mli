(** Growable arrays, used pervasively when building graphs whose final size
    is unknown (gate netlists, routing-resource graphs). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map_to_array : ('a -> 'b) -> 'a t -> 'b array
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
val clear : 'a t -> unit
