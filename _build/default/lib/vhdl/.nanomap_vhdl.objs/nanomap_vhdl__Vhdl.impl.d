lib/vhdl/vhdl.ml: Array Hashtbl List Nanomap_rtl Printf String
