lib/vhdl/vhdl.mli: Nanomap_rtl
