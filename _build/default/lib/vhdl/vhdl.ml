module Rtl = Nanomap_rtl.Rtl

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type ty =
  | Std_logic
  | Vector of int

type expr =
  | Name of string
  | Index of string * int
  | Slice of string * int * int
  | Bit_lit of bool
  | Bits_lit of string
  | Others_lit of bool
  | Binop of binop * expr * expr
  | Not of expr
  | When_else of expr * cond * expr

and binop = Add | Sub | Mul | And | Or | Xor | Concat

and cond =
  | Eq of expr * expr
  | Neq of expr * expr
  | Lt of expr * expr

type concurrent =
  | Assign of string * expr
  | Clocked of string * (string * expr) list

type design = {
  entity_name : string;
  ports : (string * [ `In | `Out ] * ty) list;
  signals : (string * ty) list;
  statements : concurrent list;
}

(* ----------------------------------------------------------------- lexer *)

type token =
  | TId of string
  | TInt of int
  | TChar of bool
  | TStr of string
  | TLparen
  | TRparen
  | TSemi
  | TColon
  | TComma
  | TAssign (* <= *)
  | TArrow (* => *)
  | TEq
  | TNeq
  | TLt
  | TAmp
  | TPlus
  | TMinus
  | TStar
  | TEof

let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  while !i < n do
    let c = text.[!i] in
    (match c with
     | '\n' -> incr line; incr i
     | ' ' | '\t' | '\r' -> incr i
     | '-' when peek 1 = Some '-' ->
       while !i < n && text.[!i] <> '\n' do incr i done
     | '-' -> push TMinus; incr i
     | '(' -> push TLparen; incr i
     | ')' -> push TRparen; incr i
     | ';' -> push TSemi; incr i
     | ':' -> push TColon; incr i
     | ',' -> push TComma; incr i
     | '&' -> push TAmp; incr i
     | '+' -> push TPlus; incr i
     | '*' -> push TStar; incr i
     | '=' when peek 1 = Some '>' -> push TArrow; i := !i + 2
     | '=' -> push TEq; incr i
     | '/' when peek 1 = Some '=' -> push TNeq; i := !i + 2
     | '<' when peek 1 = Some '=' -> push TAssign; i := !i + 2
     | '<' -> push TLt; incr i
     | '\'' ->
       (match peek 1, peek 2 with
        | Some ('0' | '1' as b), Some '\'' ->
          push (TChar (b = '1'));
          i := !i + 3
        | _ -> fail !line "expected '0' or '1' between quotes")
     | '"' ->
       let start = !i + 1 in
       let j = ref start in
       while !j < n && text.[!j] <> '"' do incr j done;
       if !j >= n then fail !line "unterminated bit string";
       let s = String.sub text start (!j - start) in
       String.iter
         (fun ch -> if ch <> '0' && ch <> '1' then fail !line "bit string must be 0/1")
         s;
       push (TStr s);
       i := !j + 1
     | '0' .. '9' ->
       let start = !i in
       while !i < n && (match text.[!i] with '0' .. '9' -> true | _ -> false) do
         incr i
       done;
       push (TInt (int_of_string (String.sub text start (!i - start))))
     | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
       let start = !i in
       while
         !i < n
         && (match text.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
       do
         incr i
       done;
       push (TId (String.lowercase_ascii (String.sub text start (!i - start))))
     | _ -> fail !line (Printf.sprintf "unexpected character %c" c))
  done;
  push TEof;
  Array.of_list (List.rev !tokens)

(* ---------------------------------------------------------------- parser *)

type parser_state = {
  toks : (token * int) array;
  mutable pos : int;
}

let cur p = fst p.toks.(p.pos)
let cur_line p = snd p.toks.(p.pos)
let advance p = p.pos <- p.pos + 1

let expect p t what =
  if cur p = t then advance p else fail (cur_line p) ("expected " ^ what)

let expect_kw p kw =
  match cur p with
  | TId id when id = kw -> advance p
  | _ -> fail (cur_line p) ("expected keyword '" ^ kw ^ "'")

let ident p =
  match cur p with
  | TId id -> advance p; id
  | _ -> fail (cur_line p) "expected identifier"

let int_lit p =
  match cur p with
  | TInt v -> advance p; v
  | _ -> fail (cur_line p) "expected integer"

let keywords =
  [ "entity"; "is"; "port"; "end"; "architecture"; "of"; "signal"; "begin";
    "process"; "if"; "then"; "when"; "else"; "not"; "and"; "or"; "xor";
    "downto"; "others"; "rising_edge"; "in"; "out"; "std_logic";
    "std_logic_vector" ]

let check_name line name =
  if List.mem name keywords then fail line (name ^ " is a reserved word")

let parse_type p =
  match cur p with
  | TId "std_logic" -> advance p; Std_logic
  | TId "std_logic_vector" ->
    advance p;
    expect p TLparen "(";
    let hi = int_lit p in
    expect_kw p "downto";
    let lo = int_lit p in
    if lo <> 0 then fail (cur_line p) "only (H downto 0) vectors are supported";
    expect p TRparen ")";
    Vector (hi + 1)
  | _ -> fail (cur_line p) "expected std_logic or std_logic_vector"

(* expression grammar: logic < add/concat < mul < unary *)
let rec parse_expr p =
  let lhs = parse_add p in
  let rec loop lhs =
    match cur p with
    | TId "and" -> advance p; loop (Binop (And, lhs, parse_add p))
    | TId "or" -> advance p; loop (Binop (Or, lhs, parse_add p))
    | TId "xor" -> advance p; loop (Binop (Xor, lhs, parse_add p))
    | _ -> lhs
  in
  loop lhs

and parse_add p =
  let lhs = parse_mul p in
  let rec loop lhs =
    match cur p with
    | TPlus -> advance p; loop (Binop (Add, lhs, parse_mul p))
    | TMinus -> advance p; loop (Binop (Sub, lhs, parse_mul p))
    | TAmp -> advance p; loop (Binop (Concat, lhs, parse_mul p))
    | _ -> lhs
  in
  loop lhs

and parse_mul p =
  let lhs = parse_unary p in
  let rec loop lhs =
    match cur p with
    | TStar -> advance p; loop (Binop (Mul, lhs, parse_unary p))
    | _ -> lhs
  in
  loop lhs

and parse_unary p =
  match cur p with
  | TId "not" -> advance p; Not (parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match cur p with
  | TChar b -> advance p; Bit_lit b
  | TStr s -> advance p; Bits_lit s
  | TLparen ->
    advance p;
    (match cur p with
     | TId "others" ->
       advance p;
       expect p TArrow "=>";
       let b = match cur p with
         | TChar b -> advance p; b
         | _ -> fail (cur_line p) "expected '0' or '1' after others =>"
       in
       expect p TRparen ")";
       Others_lit b
     | _ ->
       let e = parse_expr p in
       expect p TRparen ")";
       e)
  | TId id when not (List.mem id keywords) ->
    advance p;
    (match cur p with
     | TLparen ->
       advance p;
       let first = int_lit p in
       (match cur p with
        | TId "downto" ->
          advance p;
          let lo = int_lit p in
          expect p TRparen ")";
          Slice (id, first, lo)
        | TRparen -> advance p; Index (id, first)
        | _ -> fail (cur_line p) "expected downto or )")
     | _ -> Name id)
  | _ -> fail (cur_line p) "expected expression"

let parse_cond p =
  let lhs = parse_expr p in
  match cur p with
  | TEq -> advance p; Eq (lhs, parse_expr p)
  | TNeq -> advance p; Neq (lhs, parse_expr p)
  | TLt -> advance p; Lt (lhs, parse_expr p)
  | _ -> fail (cur_line p) "expected = /= or < in condition"

let parse_rhs p =
  let value = parse_expr p in
  match cur p with
  | TId "when" ->
    advance p;
    let c = parse_cond p in
    expect_kw p "else";
    let other = parse_expr p in
    When_else (value, c, other)
  | _ -> value

let parse_process p =
  (* 'process' already consumed *)
  expect p TLparen "(";
  let clock = ident p in
  expect p TRparen ")";
  expect_kw p "begin";
  expect_kw p "if";
  expect_kw p "rising_edge";
  expect p TLparen "(";
  let clock2 = ident p in
  if clock2 <> clock then
    fail (cur_line p) "rising_edge clock differs from the sensitivity list";
  expect p TRparen ")";
  expect_kw p "then";
  (* Registered assignments, possibly under nested if/else (synchronous
     reset / enable idioms). Nested conditions desugar per target into
     when/else chains; a target missing from a branch holds its value. *)
  let rec parse_block () =
    let assigns = ref [] in
    let rec loop () =
      match cur p with
      | TId "end" | TId "else" -> ()
      | TId "if" ->
        advance p;
        let c = parse_cond p in
        expect_kw p "then";
        let then_assigns = parse_block () in
        let else_assigns =
          match cur p with
          | TId "else" ->
            advance p;
            parse_block ()
          | _ -> []
        in
        expect_kw p "end";
        expect_kw p "if";
        expect p TSemi ";";
        (* merge: every target assigned in either branch *)
        let targets =
          List.sort_uniq compare (List.map fst (then_assigns @ else_assigns))
        in
        List.iter
          (fun target ->
            let value_of branch =
              match List.assoc_opt target branch with
              | Some e -> e
              | None -> Name target (* hold *)
            in
            assigns :=
              (target, When_else (value_of then_assigns, c, value_of else_assigns))
              :: !assigns)
          targets;
        loop ()
      | TId id when not (List.mem id keywords) ->
        advance p;
        expect p TAssign "<=";
        let rhs = parse_rhs p in
        expect p TSemi ";";
        assigns := (id, rhs) :: !assigns;
        loop ()
      | _ -> fail (cur_line p) "expected a registered assignment, if, else or end"
    in
    loop ();
    List.rev !assigns
  in
  let assigns = parse_block () in
  expect_kw p "end";
  expect_kw p "if";
  expect p TSemi ";";
  expect_kw p "end";
  expect_kw p "process";
  expect p TSemi ";";
  Clocked (clock, assigns)

let parse_string text =
  let p = { toks = lex text; pos = 0 } in
  (* entity *)
  expect_kw p "entity";
  let entity_name = ident p in
  expect_kw p "is";
  expect_kw p "port";
  expect p TLparen "(";
  let ports = ref [] in
  let rec parse_ports () =
    let names = ref [ ident p ] in
    while cur p = TComma do
      advance p;
      names := ident p :: !names
    done;
    expect p TColon ":";
    let dir =
      match cur p with
      | TId "in" -> advance p; `In
      | TId "out" -> advance p; `Out
      | _ -> fail (cur_line p) "expected in or out"
    in
    let ty = parse_type p in
    List.iter (fun nm -> ports := (nm, dir, ty) :: !ports) (List.rev !names);
    match cur p with
    | TSemi -> advance p; parse_ports ()
    | TRparen -> advance p
    | _ -> fail (cur_line p) "expected ; or ) in port list"
  in
  parse_ports ();
  expect p TSemi ";";
  expect_kw p "end";
  (match cur p with
   | TId "entity" -> advance p
   | _ -> ());
  (match cur p with
   | TId id when id = entity_name -> advance p
   | _ -> ());
  expect p TSemi ";";
  (* architecture *)
  expect_kw p "architecture";
  let _arch_name = ident p in
  expect_kw p "of";
  let of_name = ident p in
  if of_name <> entity_name then
    fail (cur_line p) "architecture names a different entity";
  expect_kw p "is";
  let signals = ref [] in
  while cur p = TId "signal" do
    advance p;
    let names = ref [ ident p ] in
    while cur p = TComma do
      advance p;
      names := ident p :: !names
    done;
    expect p TColon ":";
    let ty = parse_type p in
    expect p TSemi ";";
    List.iter (fun nm -> signals := (nm, ty) :: !signals) (List.rev !names)
  done;
  expect_kw p "begin";
  let statements = ref [] in
  let rec parse_statements () =
    match cur p with
    | TId "end" ->
      advance p;
      (match cur p with
       | TId "architecture" -> advance p
       | _ -> ());
      (match cur p with
       | TId _ -> advance p (* architecture name *)
       | _ -> ());
      expect p TSemi ";"
    | TId "process" ->
      advance p;
      statements := parse_process p :: !statements;
      parse_statements ()
    | TId id when not (List.mem id keywords) ->
      advance p;
      (match cur p with
       | TColon ->
         (* a label; the real statement follows *)
         advance p;
         (match cur p with
          | TId "process" ->
            advance p;
            statements := parse_process p :: !statements
          | TId target when not (List.mem target keywords) ->
            advance p;
            expect p TAssign "<=";
            let rhs = parse_rhs p in
            expect p TSemi ";";
            statements := Assign (target, rhs) :: !statements
          | _ -> fail (cur_line p) "expected statement after label")
       | TAssign ->
         advance p;
         let rhs = parse_rhs p in
         expect p TSemi ";";
         statements := Assign (id, rhs) :: !statements
       | _ -> fail (cur_line p) "expected <= or : after identifier");
      parse_statements ()
    | _ -> fail (cur_line p) "expected a concurrent statement or end"
  in
  parse_statements ();
  { entity_name;
    ports = List.rev !ports;
    signals = List.rev !signals;
    statements = List.rev !statements }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------ elaborator *)

let width_of_ty = function Std_logic -> 1 | Vector w -> w

let elaborate (dsn : design) =
  let err msg = fail 0 msg in
  let rtl = Rtl.create dsn.entity_name in
  (* clocks are structural, not data *)
  let clocks =
    List.filter_map (function Clocked (c, _) -> Some c | Assign _ -> None)
      dsn.statements
  in
  let declared = Hashtbl.create 16 in
  List.iter
    (fun (name, _, ty) ->
      check_name 0 name;
      Hashtbl.replace declared name (width_of_ty ty))
    dsn.ports;
  List.iter
    (fun (name, ty) ->
      check_name 0 name;
      Hashtbl.replace declared name (width_of_ty ty))
    dsn.signals;
  let width_of name =
    match Hashtbl.find_opt declared name with
    | Some w -> w
    | None -> err ("undeclared signal " ^ name)
  in
  (* registers: every clocked target *)
  let reg_exprs = Hashtbl.create 16 in
  List.iter
    (function
      | Clocked (_, assigns) ->
        List.iter
          (fun (target, rhs) ->
            if Hashtbl.mem reg_exprs target then
              err ("register " ^ target ^ " driven twice");
            Hashtbl.replace reg_exprs target rhs)
          assigns
      | Assign _ -> ())
    dsn.statements;
  (* combinational drivers *)
  let comb_exprs = Hashtbl.create 16 in
  List.iter
    (function
      | Assign (target, rhs) ->
        if Hashtbl.mem comb_exprs target || Hashtbl.mem reg_exprs target then
          err ("signal " ^ target ^ " driven twice");
        Hashtbl.replace comb_exprs target rhs
      | Clocked _ -> ())
    dsn.statements;
  (* create inputs and registers up front so feedback works *)
  let env : (string, Rtl.id) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, dir, ty) ->
      if dir = `In && not (List.mem name clocks) then
        Hashtbl.replace env name (Rtl.add_input rtl name (width_of_ty ty)))
    dsn.ports;
  Hashtbl.iter
    (fun target _ ->
      Hashtbl.replace env target
        (Rtl.add_register rtl ~name:target ~width:(width_of target) ()))
    reg_exprs;
  (* demand-driven elaboration of combinational signals *)
  let visiting = Hashtbl.create 16 in
  let rec signal_value name =
    match Hashtbl.find_opt env name with
    | Some id -> id
    | None ->
      if Hashtbl.mem visiting name then err ("combinational cycle through " ^ name);
      (match Hashtbl.find_opt comb_exprs name with
       | None -> err ("signal " ^ name ^ " is never driven")
       | Some rhs ->
         Hashtbl.replace visiting name ();
         let id = elab ~hint:(Some (width_of name)) rhs in
         Hashtbl.remove visiting name;
         let id =
           if Rtl.(signal rtl id).Rtl.width <> width_of name then
             err
               (Printf.sprintf "width mismatch assigning %s: %d /= %d" name
                  Rtl.(signal rtl id).Rtl.width (width_of name))
           else id
         in
         Hashtbl.replace env name id;
         id)
  and elab ~hint e =
    match e with
    | Name n -> signal_value n
    | Index (n, i) ->
      let s = signal_value n in
      Rtl.add_op rtl ~width:1 (Rtl.Slice (s, i))
    | Slice (n, hi, lo) ->
      let s = signal_value n in
      if hi < lo then err "slice high < low";
      Rtl.add_op rtl ~width:(hi - lo + 1) (Rtl.Slice (s, lo))
    | Bit_lit b -> Rtl.add_const rtl ~width:1 (if b then 1 else 0)
    | Bits_lit s ->
      let w = String.length s in
      if w = 0 then err "empty bit string";
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 1) lor (if c = '1' then 1 else 0)) s;
      Rtl.add_const rtl ~width:w !v
    | Others_lit b ->
      let w = match hint with Some w -> w | None -> err "(others => ...) needs width context" in
      Rtl.add_const rtl ~width:w (if b then (1 lsl w) - 1 else 0)
    | Not e ->
      let a = elab ~hint e in
      Rtl.add_op rtl ~width:Rtl.(signal rtl a).Rtl.width (Rtl.Bit_not a)
    | Binop (op, a, b) -> elab_binop ~hint op a b
    | When_else (then_e, c, else_e) ->
      let sel = elab_cond c in
      let t = elab ~hint then_e in
      let f = elab ~hint:(Some Rtl.(signal rtl t).Rtl.width) else_e in
      let wt = Rtl.(signal rtl t).Rtl.width in
      if Rtl.(signal rtl f).Rtl.width <> wt then err "when/else branch widths differ";
      Rtl.add_op rtl ~width:wt (Rtl.Mux (sel, f, t))
  and elab_binop ~hint op a b =
    match op with
    | Mul ->
      let x = elab ~hint:None a and y = elab ~hint:None b in
      let w = Rtl.(signal rtl x).Rtl.width + Rtl.(signal rtl y).Rtl.width in
      Rtl.add_op rtl ~width:w (Rtl.Mult (x, y))
    | Concat ->
      (* VHDL: a & b has a as the most significant part *)
      let x = elab ~hint:None a and y = elab ~hint:None b in
      let w = Rtl.(signal rtl x).Rtl.width + Rtl.(signal rtl y).Rtl.width in
      Rtl.add_op rtl ~width:w (Rtl.Concat (y, x))
    | Add | Sub | And | Or | Xor ->
      let x, y = elab_same_width ~hint a b in
      let w = Rtl.(signal rtl x).Rtl.width in
      let rtl_op =
        match op with
        | Add -> Rtl.Add (x, y)
        | Sub -> Rtl.Sub (x, y)
        | And -> Rtl.Bit_and (x, y)
        | Or -> Rtl.Bit_or (x, y)
        | Xor -> Rtl.Bit_xor (x, y)
        | Mul | Concat -> assert false
      in
      Rtl.add_op rtl ~width:w rtl_op
  and elab_same_width ~hint a b =
    (* elaborate the self-sized operand first so (others => ...) can adopt
       its width *)
    match a, b with
    | Others_lit _, Others_lit _ ->
      let x = elab ~hint a in
      (x, elab ~hint b)
    | Others_lit _, _ ->
      let y = elab ~hint b in
      let x = elab ~hint:(Some Rtl.(signal rtl y).Rtl.width) a in
      (x, y)
    | _, _ ->
      let x = elab ~hint a in
      let y = elab ~hint:(Some Rtl.(signal rtl x).Rtl.width) b in
      if Rtl.(signal rtl x).Rtl.width <> Rtl.(signal rtl y).Rtl.width then
        err "operand widths differ";
      (x, y)
  and elab_cond = function
    | Eq (a, b) ->
      let x, y = elab_same_width ~hint:None a b in
      Rtl.add_op rtl ~width:1 (Rtl.Eq (x, y))
    | Neq (a, b) ->
      let x, y = elab_same_width ~hint:None a b in
      let eq = Rtl.add_op rtl ~width:1 (Rtl.Eq (x, y)) in
      Rtl.add_op rtl ~width:1 (Rtl.Bit_not eq)
    | Lt (a, b) ->
      let x, y = elab_same_width ~hint:None a b in
      Rtl.add_op rtl ~width:1 (Rtl.Lt (x, y))
  in
  (* connect registers *)
  Hashtbl.iter
    (fun target rhs ->
      let d = elab ~hint:(Some (width_of target)) rhs in
      if Rtl.(signal rtl d).Rtl.width <> width_of target then
        err ("width mismatch on register " ^ target);
      Rtl.connect_register rtl (Hashtbl.find env target) ~d)
    reg_exprs;
  (* outputs *)
  List.iter
    (fun (name, dir, _) ->
      if dir = `Out then Rtl.mark_output rtl name (signal_value name))
    dsn.ports;
  Rtl.validate rtl;
  rtl

let design_of_file path = elaborate (parse_file path)
