(** RTL-VHDL frontend: the input format the paper names ("RTL and/or
    gate-level VHDL"), for a synthesizable subset sufficient for the
    benchmark class of the paper — controller/datapath circuits built from
    registers, arithmetic operators and multiplexers.

    Supported subset:
    - one [entity] with a port list of [in]/[out] ports of type
      [std_logic] or [std_logic_vector(H downto 0)];
    - one [architecture] with [signal] declarations of the same types;
    - concurrent signal assignments with the operators [+ - * and or xor
      not & ] (concatenation), static slices [s(H downto L)], indexing
      [s(I)], the literals ['0' '1'], bit strings ["0101"], and
      [(others => '0'/'1')];
    - conditional assignment [x <= a when cond else b] where [cond] is
      [sig = lit], [sig = sig], or [sig < sig];
    - clocked processes [process (clk) ... if rising_edge(clk) then
      r <= expr; ... end if; ... end process] — each such assignment
      declares a register; nested [if cond then ... else ... end if]
      blocks inside the clocked region express synchronous resets and
      enables (they desugar to when/else per target, holding the old
      value in branches that do not assign).

    Comments ([--]) are ignored; identifiers are case-insensitive as in
    VHDL. Anything outside the subset raises {!Parse_error} with a line
    number. *)

exception Parse_error of int * string

(** {2 AST} *)

type ty =
  | Std_logic
  | Vector of int (** std_logic_vector(width-1 downto 0) *)

type expr =
  | Name of string
  | Index of string * int
  | Slice of string * int * int          (** high, low *)
  | Bit_lit of bool
  | Bits_lit of string                   (** MSB-first, as written *)
  | Others_lit of bool
  | Binop of binop * expr * expr
  | Not of expr
  | When_else of expr * cond * expr      (** value-if-true, cond, value-if-false *)

and binop = Add | Sub | Mul | And | Or | Xor | Concat

and cond =
  | Eq of expr * expr
  | Neq of expr * expr
  | Lt of expr * expr

type concurrent =
  | Assign of string * expr
  | Clocked of string * (string * expr) list
      (** one process: clock name, registered assignments *)

type design = {
  entity_name : string;
  ports : (string * [ `In | `Out ] * ty) list;
  signals : (string * ty) list;
  statements : concurrent list;
}

val parse_string : string -> design
val parse_file : string -> design

val elaborate : design -> Nanomap_rtl.Rtl.t
(** Lower to the RTL IR: out ports become primary outputs, clocked
    assignments become registers, [when/else] becomes a mux. Width rules
    are strict (arithmetic operands must match, [*] produces the sum of
    the operand widths); violations raise {!Parse_error} with line 0. *)

val design_of_file : string -> Nanomap_rtl.Rtl.t
(** Parse + elaborate. *)
