test/test_blif.ml: Alcotest List Nanomap_blif Nanomap_logic
