test/test_core.ml: Alcotest Array List Nanomap_arch Nanomap_core Nanomap_logic Nanomap_rtl Nanomap_techmap Printf
