test/test_designs.ml: Alcotest Filename List Nanomap_arch Nanomap_cluster Nanomap_core Nanomap_emu Nanomap_rtl Nanomap_util Nanomap_vhdl Option Printf Sys
