test/test_emu.ml: Alcotest List Nanomap_arch Nanomap_circuits Nanomap_cluster Nanomap_core Nanomap_emu Nanomap_rtl Nanomap_util Option Printf
