test/test_logic.ml: Alcotest Array List Nanomap_logic Nanomap_util Printf QCheck QCheck_alcotest
