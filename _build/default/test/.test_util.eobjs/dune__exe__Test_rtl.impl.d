test/test_rtl.ml: Alcotest Array List Nanomap_logic Nanomap_rtl Printf
