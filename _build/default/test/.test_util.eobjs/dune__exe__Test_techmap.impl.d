test/test_techmap.ml: Alcotest Array Hashtbl List Nanomap_blif Nanomap_logic Nanomap_rtl Nanomap_techmap Nanomap_util Printf QCheck QCheck_alcotest
