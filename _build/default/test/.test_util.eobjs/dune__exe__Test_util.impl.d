test/test_util.ml: Alcotest Array Fun Int64 List Nanomap_util String
