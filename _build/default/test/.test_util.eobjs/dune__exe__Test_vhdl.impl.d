test/test_vhdl.ml: Alcotest List Nanomap_arch Nanomap_core Nanomap_rtl Nanomap_util Nanomap_vhdl
