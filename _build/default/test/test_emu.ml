(* Fabric-emulation tests: the folded execution on the clustered fabric must
   match the RTL reference simulator cycle for cycle, for every benchmark
   and several folding levels. This exercises scheduling, clustering and
   flip-flop lifetime allocation functionally, not just structurally. *)

module Rtl = Nanomap_rtl.Rtl
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch
module Cluster = Nanomap_cluster.Cluster
module Emulator = Nanomap_emu.Emulator
module Circuits = Nanomap_circuits.Circuits
module Rng = Nanomap_util.Rng

let check = Alcotest.check

let random_stimulus rng design =
  List.map
    (fun (s : Rtl.signal) -> (s.Rtl.name, Rng.int rng (1 lsl min s.Rtl.width 16)))
    (Rtl.inputs design)

(* Core harness: lockstep RTL sim vs fabric emulator. *)
let lockstep ?(cycles = 120) ~level design =
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare design in
  let plan =
    if level = 0 then Mapper.no_folding p ~arch else Mapper.plan_level p ~arch ~level
  in
  let cl = Cluster.pack plan ~arch in
  Cluster.validate cl plan;
  let emu = Emulator.create design plan cl in
  let sim = Rtl.sim_create design in
  let rng = Rng.create 99 in
  for cycle = 1 to cycles do
    let stimulus = random_stimulus rng design in
    let expected = Rtl.sim_cycle sim stimulus in
    let got = Emulator.macro_cycle emu stimulus in
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name got with
        | Some g ->
          check Alcotest.int (Printf.sprintf "cycle %d output %s" cycle name) v g
        | None -> Alcotest.fail ("missing output " ^ name))
      expected
  done

let test_ex1_small_level1 () = lockstep ~level:1 (Circuits.ex1_small ()).Circuits.design
let test_ex1_small_level2 () = lockstep ~level:2 (Circuits.ex1_small ()).Circuits.design
let test_ex1_small_level3 () = lockstep ~level:3 (Circuits.ex1_small ()).Circuits.design

let test_ex1_small_no_folding () =
  lockstep ~level:0 (Circuits.ex1_small ()).Circuits.design

(* FIR exercises delay-line registers (direct copies outside any plane). *)
let test_fir_level2 () =
  lockstep ~cycles:60 ~level:2 (Circuits.fir ~taps:4 ~width:6 ()).Circuits.design

(* ex2 exercises multi-plane execution and inter-plane wires. *)
let test_ex2_level2 () =
  lockstep ~cycles:60 ~level:2 (Circuits.ex2 ~width:5 ()).Circuits.design

(* Biquad exercises feedback through the output delay line. *)
let test_biquad_level2 () =
  lockstep ~cycles:60 ~level:2 (Circuits.biquad ~width:6 ()).Circuits.design

(* Paulin: two pipelined planes with carried registers. *)
let test_paulin_level2 () =
  lockstep ~cycles:40 ~level:2 (Circuits.paulin ~width:5 ()).Circuits.design

(* beyond-paper workloads *)
let test_crc8_level1 () =
  lockstep ~cycles:80 ~level:1 (Circuits.crc8 ()).Circuits.design

let test_sorter_level1 () =
  lockstep ~cycles:60 ~level:1 (Circuits.sorter ()).Circuits.design

let test_dct4_level2 () =
  lockstep ~cycles:40 ~level:2 (Circuits.dct4 ()).Circuits.design

(* c5315: purely combinational. *)
let test_c5315_level1 () =
  lockstep ~cycles:60 ~level:1 (Circuits.c5315 ~width:5 ()).Circuits.design

(* pipelined clustering keeps planes on disjoint LEs; functionally the
   macro cycle is identical, and the emulator must agree through the
   different flip-flop slot assignment *)
let test_pipelined_lockstep () =
  let design = (Circuits.ex2 ~width:5 ()).Circuits.design in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare design in
  let plan = Mapper.plan_level ~pipelined:true p ~arch ~level:2 in
  let cl = Cluster.pack plan ~arch in
  Cluster.validate cl plan;
  let emu = Emulator.create design plan cl in
  let sim = Rtl.sim_create design in
  let rng = Rng.create 11 in
  for cycle = 1 to 60 do
    let stimulus = random_stimulus rng design in
    let expected = Rtl.sim_cycle sim stimulus in
    let got = Emulator.macro_cycle emu stimulus in
    List.iter
      (fun (name, v) ->
        check Alcotest.int (Printf.sprintf "cycle %d %s" cycle name) v
          (Option.value ~default:(-1) (List.assoc_opt name got)))
      expected
  done

let test_peek_state () =
  let design = (Circuits.ex1_small ()).Circuits.design in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare design in
  let plan = Mapper.plan_level p ~arch ~level:2 in
  let cl = Cluster.pack plan ~arch in
  let emu = Emulator.create design plan cl in
  let sim = Rtl.sim_create design in
  let rng = Rng.create 4 in
  for _ = 1 to 50 do
    let stimulus = random_stimulus rng design in
    ignore (Rtl.sim_cycle sim stimulus);
    ignore (Emulator.macro_cycle emu stimulus)
  done;
  List.iter
    (fun (s : Rtl.signal) ->
      check Alcotest.int ("register " ^ s.Rtl.name) (Rtl.sim_peek sim s.Rtl.id)
        (Emulator.peek_state emu s.Rtl.id))
    (Rtl.registers design)

let () =
  Alcotest.run "emulator"
    [ ( "lockstep",
        [ Alcotest.test_case "ex1-4bit level 1" `Quick test_ex1_small_level1;
          Alcotest.test_case "ex1-4bit level 2" `Quick test_ex1_small_level2;
          Alcotest.test_case "ex1-4bit level 3" `Quick test_ex1_small_level3;
          Alcotest.test_case "ex1-4bit no folding" `Quick test_ex1_small_no_folding;
          Alcotest.test_case "FIR (delay line)" `Quick test_fir_level2;
          Alcotest.test_case "ex2 (3 planes)" `Quick test_ex2_level2;
          Alcotest.test_case "Biquad (feedback)" `Quick test_biquad_level2;
          Alcotest.test_case "Paulin (2 planes)" `Quick test_paulin_level2;
          Alcotest.test_case "c5315 (pure comb)" `Quick test_c5315_level1;
          Alcotest.test_case "CRC8 (glue logic)" `Quick test_crc8_level1;
          Alcotest.test_case "Sorter4" `Quick test_sorter_level1;
          Alcotest.test_case "DCT4 (2 planes)" `Quick test_dct4_level2 ] );
      ( "pipelined",
        [ Alcotest.test_case "ex2 pipelined lockstep" `Quick test_pipelined_lockstep ] );
      ("state", [ Alcotest.test_case "peek_state" `Quick test_peek_state ]) ]
