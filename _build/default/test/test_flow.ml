(* End-to-end flow tests and benchmark circuit sanity. *)

module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch
module Flow = Nanomap_flow.Flow
module Circuits = Nanomap_circuits.Circuits
module Rng = Nanomap_util.Rng

let check = Alcotest.check

(* --- benchmark circuits --- *)

let test_benchmark_planes () =
  let expect =
    [ ("ex1", 1); ("FIR", 1); ("ex2", 3); ("c5315", 1); ("Biquad", 1);
      ("Paulin", 2); ("ASPP4", 2) ]
  in
  List.iter
    (fun (b : Circuits.benchmark) ->
      let lv = Levelize.levelize b.Circuits.design in
      check Alcotest.int
        (b.Circuits.name ^ " planes")
        (List.assoc b.Circuits.name expect)
        (Levelize.num_planes lv))
    (Circuits.all ())

let test_benchmark_c5315_no_ffs () =
  let b = Circuits.c5315 () in
  let lv = Levelize.levelize b.Circuits.design in
  check Alcotest.int "no flip-flops" 0 (Levelize.total_flip_flops lv)

let test_benchmark_sizes_ordered () =
  (* Table 1 ordering by LUT count: ex1/FIR < Biquad/Paulin < ASPP4 class *)
  let luts name =
    let b = Circuits.by_name name in
    (Mapper.prepare b.Circuits.design).Mapper.total_luts
  in
  check Alcotest.bool "ASPP4 is the largest" true
    (luts "aspp4" > luts "ex1" && luts "aspp4" > luts "biquad");
  check Alcotest.bool "all are substantial" true (luts "c5315" > 100)

let test_benchmark_by_name () =
  check Alcotest.string "fir" "FIR" (Circuits.by_name "FIR").Circuits.name;
  check Alcotest.bool "unknown raises" true
    (match Circuits.by_name "nope" with
     | exception Not_found -> true
     | _ -> false)

let test_extended_circuits_map () =
  List.iter
    (fun (b : Circuits.benchmark) ->
      let p = Mapper.prepare b.Circuits.design in
      let plan = Mapper.at_min p ~arch:Arch.unbounded_k in
      check Alcotest.bool (b.Circuits.name ^ " maps") true (plan.Mapper.les > 0))
    (Circuits.extended ())

let test_crc8_behaviour () =
  let b = Circuits.crc8 () in
  let sim = Rtl.sim_create b.Circuits.design in
  (* software CRC-8 (poly 0x07, MSB-first, init 0) as the oracle *)
  let crc_step crc byte =
    let c = ref (crc lxor byte) in
    for _ = 1 to 8 do
      c := if !c land 0x80 <> 0 then (!c lsl 1) lxor 0x07 land 0xff else !c lsl 1 land 0xff
    done;
    !c
  in
  let rng = Rng.create 77 in
  let soft = ref 0 in
  for _ = 1 to 100 do
    let byte = Rng.int rng 256 in
    let outs = Rtl.sim_cycle sim [ ("data", byte) ] in
    soft := crc_step !soft byte;
    check Alcotest.int "crc matches software oracle" !soft (List.assoc "crc" outs)
  done

let test_sorter_behaviour () =
  let b = Circuits.sorter () in
  let sim = Rtl.sim_create b.Circuits.design in
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    let xs = List.init 4 (fun i -> (Printf.sprintf "x%d" i, Rng.int rng 64)) in
    let outs = Rtl.sim_cycle sim xs in
    let got = List.init 4 (fun i -> List.assoc (Printf.sprintf "y%d" i) outs) in
    let expected = List.sort compare (List.map snd xs) in
    check (Alcotest.list Alcotest.int) "sorted" expected got
  done

(* ex1 functional: the datapath should behave like the Fig. 1 circuit. *)
let test_ex1_simulates () =
  let b = Circuits.ex1_small () in
  let sim = Rtl.sim_create b.Circuits.design in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let outs = Rtl.sim_cycle sim [ ("in1", Rng.int rng 16); ("go", Rng.int rng 2) ] in
    let r = List.assoc "result" outs in
    check Alcotest.bool "result in range" true (r >= 0 && r < 16)
  done

(* --- flow --- *)

let test_flow_logical_only () =
  let b = Circuits.ex1_small () in
  let options = { Flow.default_options with Flow.physical = false } in
  let r = Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design in
  check Alcotest.bool "no placement" true (r.Flow.placement = None);
  check Alcotest.bool "has area" true (r.Flow.area_les > 0)

let test_flow_full_physical () =
  let b = Circuits.ex1_small () in
  let r = Flow.run ~arch:Arch.unbounded_k b.Circuits.design in
  check Alcotest.bool "placed" true (r.Flow.placement <> None);
  (match r.Flow.routing with
   | Some routing -> check Alcotest.bool "routed" true routing.Nanomap_route.Router.success
   | None -> Alcotest.fail "no routing");
  (match r.Flow.delay_routed_ns with
   | Some d -> check Alcotest.bool "routed delay sane" true (d > r.Flow.delay_model_ns /. 4.)
   | None -> Alcotest.fail "no routed delay");
  check Alcotest.bool "bitstream present" true (r.Flow.bitstream <> None)

let test_flow_area_loop_triggers () =
  let b = Circuits.ex1_small () in
  let arch = Arch.unbounded_k in
  (* Budget between level-N and level-1 LE needs forces the loop to refine. *)
  let p = Mapper.prepare b.Circuits.design in
  let l1 = Mapper.plan_level p ~arch ~level:1 in
  let budget = l1.Mapper.les + 4 in
  let options =
    { Flow.default_options with
      Flow.objective = Flow.Delay_min (Some budget);
      physical = false }
  in
  let r = Flow.run ~options ~arch b.Circuits.design in
  check Alcotest.bool "fits budget after clustering loop" true
    (r.Flow.area_les <= budget || r.Flow.mapping_retries > 0)

let test_flow_infeasible_budget () =
  let b = Circuits.ex1_small () in
  let options =
    { Flow.default_options with
      Flow.objective = Flow.Delay_min (Some 2);
      physical = false }
  in
  check Alcotest.bool "impossible budget fails" true
    (match Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design with
     | exception (Flow.Flow_failed _ | Mapper.No_feasible_mapping _) -> true
     | _ -> false)

let test_flow_no_folding_objective () =
  let b = Circuits.ex1_small () in
  let options =
    { Flow.default_options with Flow.objective = Flow.No_folding; physical = false }
  in
  let r = Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design in
  check Alcotest.int "one stage" 1 r.Flow.plan.Mapper.stages

let test_flow_fixed_level () =
  let b = Circuits.ex1_small () in
  let options =
    { Flow.default_options with Flow.objective = Flow.Fixed_level 2; physical = false }
  in
  let r = Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design in
  check Alcotest.int "level respected" 2 r.Flow.plan.Mapper.level

let test_pipelined_mode () =
  let b = Circuits.ex2 () in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare b.Circuits.design in
  let shared = Mapper.plan_level p ~arch ~level:2 in
  let piped = Mapper.plan_level ~pipelined:true p ~arch ~level:2 in
  check Alcotest.bool "pipelined uses more LEs" true
    (piped.Mapper.les > shared.Mapper.les);
  check Alcotest.bool "pipelined uses fewer configs" true
    (piped.Mapper.configs_used < shared.Mapper.configs_used);
  (* pipelined clustering really does keep planes apart: the LE area must
     be at least the sum the scheduler predicted *)
  let cl = Nanomap_cluster.Cluster.pack piped ~arch in
  Nanomap_cluster.Cluster.validate cl piped;
  check Alcotest.bool "clustered area reflects the sum" true
    (cl.Nanomap_cluster.Cluster.les_used > shared.Mapper.les)

let test_pipelined_objective () =
  let b = Circuits.ex2 () in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare b.Circuits.design in
  let budget = (Mapper.plan_level ~pipelined:true p ~arch ~level:1).Mapper.les * 2 in
  let options =
    { Flow.default_options with
      Flow.objective = Flow.Pipelined_delay_min budget;
      physical = false }
  in
  let r = Flow.run ~options ~arch b.Circuits.design in
  check Alcotest.bool "is pipelined" true r.Flow.plan.Mapper.pipelined;
  check Alcotest.bool "fits budget" true (r.Flow.area_les <= budget)

let test_flow_k16_config_budget () =
  let b = Circuits.ex1_small () in
  let r =
    Flow.run
      ~options:{ Flow.default_options with Flow.physical = false }
      ~arch:Arch.default b.Circuits.design
  in
  check Alcotest.bool "configs within k=16" true (r.Flow.plan.Mapper.configs_used <= 16)

let () =
  Alcotest.run "flow"
    [ ( "circuits",
        [ Alcotest.test_case "plane counts" `Quick test_benchmark_planes;
          Alcotest.test_case "c5315 pure comb" `Quick test_benchmark_c5315_no_ffs;
          Alcotest.test_case "size classes" `Quick test_benchmark_sizes_ordered;
          Alcotest.test_case "by_name" `Quick test_benchmark_by_name;
          Alcotest.test_case "ex1 simulates" `Quick test_ex1_simulates;
          Alcotest.test_case "extended circuits map" `Quick test_extended_circuits_map;
          Alcotest.test_case "crc8 vs software" `Quick test_crc8_behaviour;
          Alcotest.test_case "sorter sorts" `Quick test_sorter_behaviour ] );
      ( "flow",
        [ Alcotest.test_case "logical only" `Quick test_flow_logical_only;
          Alcotest.test_case "full physical" `Quick test_flow_full_physical;
          Alcotest.test_case "area loop" `Quick test_flow_area_loop_triggers;
          Alcotest.test_case "infeasible budget" `Quick test_flow_infeasible_budget;
          Alcotest.test_case "no-folding objective" `Quick test_flow_no_folding_objective;
          Alcotest.test_case "fixed level" `Quick test_flow_fixed_level;
          Alcotest.test_case "pipelined mode" `Quick test_pipelined_mode;
          Alcotest.test_case "pipelined objective" `Quick test_pipelined_objective;
          Alcotest.test_case "k=16 budget" `Quick test_flow_k16_config_budget ] ) ]
