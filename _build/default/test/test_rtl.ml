module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize
module Truth_table = Nanomap_logic.Truth_table

let check = Alcotest.check

(* --- builder validation --- *)

let test_width_checks () =
  let d = Rtl.create "t" in
  let a = Rtl.add_input d "a" 4 in
  let b = Rtl.add_input d "b" 8 in
  Alcotest.check_raises "add width" (Invalid_argument "Rtl.add_op: width mismatch")
    (fun () -> ignore (Rtl.add_op d ~width:4 (Rtl.Add (a, b))));
  Alcotest.check_raises "mult width" (Invalid_argument "Rtl.add_op: width mismatch")
    (fun () -> ignore (Rtl.add_op d ~width:4 (Rtl.Mult (a, b))));
  ignore (Rtl.add_op d ~width:12 (Rtl.Mult (a, b)));
  Alcotest.check_raises "slice range" (Invalid_argument "Rtl.add_op: width mismatch")
    (fun () -> ignore (Rtl.add_op d ~width:4 (Rtl.Slice (a, 2))))

let test_register_connect () =
  let d = Rtl.create "t" in
  let r = Rtl.add_register d ~name:"r" ~width:4 () in
  let x = Rtl.add_input d "x" 4 in
  Alcotest.check_raises "unconnected register fails validate"
    (Failure "Rtl: unconnected register r") (fun () -> Rtl.validate d);
  Rtl.connect_register d r ~d:x;
  Rtl.validate d;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Rtl.connect_register: already connected")
    (fun () -> Rtl.connect_register d r ~d:x)

let test_comb_cycle_detected () =
  let d = Rtl.create "t" in
  let a = Rtl.add_input d "a" 1 in
  (* Build a cycle through a register-free path is impossible via the
     builder (operands must exist), which is itself the invariant. *)
  let x = Rtl.add_op d ~width:1 (Rtl.Bit_not a) in
  ignore x;
  Rtl.validate d

(* --- simulation --- *)

let test_sim_accumulator () =
  let d = Rtl.create "acc" in
  let x = Rtl.add_input d "x" 8 in
  let acc = Rtl.add_register d ~name:"acc" ~width:8 () in
  let sum = Rtl.add_op d ~width:8 (Rtl.Add (acc, x)) in
  Rtl.connect_register d acc ~d:sum;
  Rtl.mark_output d "sum" sum;
  let sim = Rtl.sim_create d in
  let outs = Rtl.sim_cycle sim [ ("x", 5) ] in
  check Alcotest.int "cycle1" 5 (List.assoc "sum" outs);
  let outs = Rtl.sim_cycle sim [ ("x", 7) ] in
  check Alcotest.int "cycle2" 12 (List.assoc "sum" outs);
  let outs = Rtl.sim_cycle sim [ ("x", 250) ] in
  check Alcotest.int "wraps mod 256" ((12 + 250) land 255) (List.assoc "sum" outs)

let test_sim_ops () =
  let d = Rtl.create "ops" in
  let a = Rtl.add_input d "a" 4 in
  let b = Rtl.add_input d "b" 4 in
  let s = Rtl.add_input d "s" 1 in
  let add = Rtl.add_op d ~width:4 (Rtl.Add (a, b)) in
  let sub = Rtl.add_op d ~width:4 (Rtl.Sub (a, b)) in
  let mult = Rtl.add_op d ~width:8 (Rtl.Mult (a, b)) in
  let eq = Rtl.add_op d ~width:1 (Rtl.Eq (a, b)) in
  let lt = Rtl.add_op d ~width:1 (Rtl.Lt (a, b)) in
  let mux = Rtl.add_op d ~width:4 (Rtl.Mux (s, a, b)) in
  let slice = Rtl.add_op d ~width:2 (Rtl.Slice (mult, 2)) in
  let cat = Rtl.add_op d ~width:8 (Rtl.Concat (a, b)) in
  List.iteri (fun i id -> Rtl.mark_output d (Printf.sprintf "o%d" i) id)
    [ add; sub; mult; eq; lt; mux; slice; cat ];
  let sim = Rtl.sim_create d in
  let outs = Rtl.sim_cycle sim [ ("a", 9); ("b", 3); ("s", 1) ] in
  check Alcotest.int "add" 12 (List.assoc "o0" outs);
  check Alcotest.int "sub" 6 (List.assoc "o1" outs);
  check Alcotest.int "mult" 27 (List.assoc "o2" outs);
  check Alcotest.int "eq" 0 (List.assoc "o3" outs);
  check Alcotest.int "lt" 0 (List.assoc "o4" outs);
  check Alcotest.int "mux picks b" 3 (List.assoc "o5" outs);
  check Alcotest.int "slice" (27 lsr 2 land 3) (List.assoc "o6" outs);
  check Alcotest.int "concat" (9 lor (3 lsl 4)) (List.assoc "o7" outs)

let test_sim_table () =
  let d = Rtl.create "tbl" in
  let a = Rtl.add_input d "a" 1 in
  let b = Rtl.add_input d "b" 1 in
  let maj =
    Truth_table.of_fun ~arity:2 (fun i -> i.(0) && i.(1))
  in
  let t = Rtl.add_op d ~width:1 (Rtl.Table (maj, [ a; b ])) in
  Rtl.mark_output d "t" t;
  let sim = Rtl.sim_create d in
  let outs = Rtl.sim_cycle sim [ ("a", 1); ("b", 1) ] in
  check Alcotest.int "table 11" 1 (List.assoc "t" outs);
  let outs = Rtl.sim_cycle sim [ ("a", 1); ("b", 0) ] in
  check Alcotest.int "table 10" 0 (List.assoc "t" outs)

(* --- levelization --- *)

(* Single-plane FSM + datapath with feedback (ex1 shape). *)
let fsm_datapath () =
  let d = Rtl.create "fsm" in
  let x = Rtl.add_input d "x" 4 in
  let s = Rtl.add_register d ~name:"state" ~width:1 () in
  let r = Rtl.add_register d ~name:"r" ~width:4 () in
  let sum = Rtl.add_op d ~width:4 (Rtl.Add (r, x)) in
  let hold = Rtl.add_op d ~width:4 (Rtl.Mux (s, sum, r)) in
  let ns = Rtl.add_op d ~width:1 (Rtl.Bit_not s) in
  Rtl.connect_register d r ~d:hold;
  Rtl.connect_register d s ~d:ns;
  Rtl.mark_output d "r" hold;
  d

let test_levelize_single_plane_feedback () =
  let lv = Levelize.levelize (fsm_datapath ()) in
  check Alcotest.int "one plane" 1 (Levelize.num_planes lv);
  check Alcotest.int "ffs" 5 (Levelize.total_flip_flops lv);
  let p = lv.Levelize.planes.(0) in
  check Alcotest.int "ops in plane" 3 (List.length p.Levelize.ops);
  check Alcotest.int "input registers" 2 (List.length p.Levelize.input_registers);
  check Alcotest.int "output registers" 2 (List.length p.Levelize.output_registers)

(* Three-stage feed-forward pipeline: levels 1,2,3 -> 3 planes. *)
let pipeline () =
  let d = Rtl.create "pipe" in
  let x = Rtl.add_input d "x" 4 in
  let r1 = Rtl.add_register d ~name:"r1" ~width:4 () in
  let r2 = Rtl.add_register d ~name:"r2" ~width:4 () in
  let r3 = Rtl.add_register d ~name:"r3" ~width:4 () in
  let one = Rtl.add_const d ~width:4 1 in
  Rtl.connect_register d r1 ~d:(Rtl.add_op d ~width:4 (Rtl.Add (x, one)));
  Rtl.connect_register d r2 ~d:(Rtl.add_op d ~width:4 (Rtl.Add (r1, one)));
  Rtl.connect_register d r3 ~d:(Rtl.add_op d ~width:4 (Rtl.Add (r2, one)));
  let out = Rtl.add_op d ~width:4 (Rtl.Add (r3, one)) in
  Rtl.mark_output d "y" out;
  d

let test_levelize_pipeline () =
  let lv = Levelize.levelize (pipeline ()) in
  (* Logic reading only PIs shares plane 1 with the logic reading the
     level-1 registers; the deeper register levels open planes 2 and 3. *)
  check Alcotest.int "planes" 3 (Levelize.num_planes lv);
  let ops_per_plane =
    Array.to_list
      (Array.map (fun (p : Levelize.plane) -> List.length p.Levelize.ops)
         lv.Levelize.planes)
  in
  check (Alcotest.list Alcotest.int) "ops per plane" [ 2; 1; 1 ] ops_per_plane

(* FIR-style shift line: direct register-to-register copies share a level,
   the combinational MAC is the only plane. *)
let fir_like () =
  let d = Rtl.create "fir" in
  let x = Rtl.add_input d "x" 4 in
  let t1 = Rtl.add_register d ~name:"t1" ~width:4 () in
  let t2 = Rtl.add_register d ~name:"t2" ~width:4 () in
  let t3 = Rtl.add_register d ~name:"t3" ~width:4 () in
  Rtl.connect_register d t1 ~d:x;
  Rtl.connect_register d t2 ~d:t1;
  Rtl.connect_register d t3 ~d:t2;
  let s1 = Rtl.add_op d ~width:4 (Rtl.Add (t1, t2)) in
  let s2 = Rtl.add_op d ~width:4 (Rtl.Add (s1, t3)) in
  Rtl.mark_output d "y" s2;
  d

let test_levelize_shift_line () =
  let lv = Levelize.levelize (fir_like ()) in
  check Alcotest.int "one plane despite delay line" 1 (Levelize.num_planes lv);
  let p = lv.Levelize.planes.(0) in
  check Alcotest.int "two adders" 2 (List.length p.Levelize.ops);
  check Alcotest.int "three plane registers" 3 (List.length p.Levelize.input_registers)

let test_levelize_pure_comb () =
  let d = Rtl.create "comb" in
  let a = Rtl.add_input d "a" 4 in
  let b = Rtl.add_input d "b" 4 in
  let s = Rtl.add_op d ~width:4 (Rtl.Add (a, b)) in
  Rtl.mark_output d "s" s;
  let lv = Levelize.levelize d in
  check Alcotest.int "one plane" 1 (Levelize.num_planes lv);
  check Alcotest.int "no ffs" 0 (Levelize.total_flip_flops lv);
  check Alcotest.int "po in plane 1" 1
    (List.length lv.Levelize.planes.(0).Levelize.primary_outputs)

let test_levelize_register_levels () =
  let lv = Levelize.levelize (pipeline ()) in
  let levels = List.map snd lv.Levelize.register_level in
  check (Alcotest.list Alcotest.int) "levels 1 2 3" [ 1; 2; 3 ]
    (List.sort compare levels)

let () =
  Alcotest.run "rtl"
    [ ( "builder",
        [ Alcotest.test_case "width checks" `Quick test_width_checks;
          Alcotest.test_case "register connect" `Quick test_register_connect;
          Alcotest.test_case "validate" `Quick test_comb_cycle_detected ] );
      ( "sim",
        [ Alcotest.test_case "accumulator" `Quick test_sim_accumulator;
          Alcotest.test_case "operators" `Quick test_sim_ops;
          Alcotest.test_case "table" `Quick test_sim_table ] );
      ( "levelize",
        [ Alcotest.test_case "feedback single plane" `Quick
            test_levelize_single_plane_feedback;
          Alcotest.test_case "pipeline" `Quick test_levelize_pipeline;
          Alcotest.test_case "shift line" `Quick test_levelize_shift_line;
          Alcotest.test_case "pure comb" `Quick test_levelize_pure_comb;
          Alcotest.test_case "register levels" `Quick test_levelize_register_levels ] ) ]
