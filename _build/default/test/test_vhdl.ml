module Vhdl = Nanomap_vhdl.Vhdl
module Rtl = Nanomap_rtl.Rtl
module Mapper = Nanomap_core.Mapper
module Arch = Nanomap_arch.Arch
module Rng = Nanomap_util.Rng

let check = Alcotest.check

let mac_source =
  {|
-- multiply-accumulate with synchronous clear
entity mac is
  port (
    clk   : in std_logic;
    clear : in std_logic;
    a     : in std_logic_vector(7 downto 0);
    b     : in std_logic_vector(7 downto 0);
    acc   : out std_logic_vector(15 downto 0)
  );
end entity;

architecture rtl of mac is
  signal product : std_logic_vector(15 downto 0);
  signal sum     : std_logic_vector(15 downto 0);
  signal nxt     : std_logic_vector(15 downto 0);
  signal acc_r   : std_logic_vector(15 downto 0);
begin
  product <= a * b;
  sum <= acc_r + product;
  nxt <= (others => '0') when clear = '1' else sum;
  acc <= nxt;

  reg: process (clk)
  begin
    if rising_edge(clk) then
      acc_r <= nxt;
    end if;
  end process;
end architecture;
|}

(* --- parsing --- *)

let test_parse_mac () =
  let d = Vhdl.parse_string mac_source in
  check Alcotest.string "entity" "mac" d.Vhdl.entity_name;
  check Alcotest.int "ports" 5 (List.length d.Vhdl.ports);
  check Alcotest.int "signals" 4 (List.length d.Vhdl.signals);
  check Alcotest.int "statements" 5 (List.length d.Vhdl.statements)

let test_parse_multi_name_ports () =
  let src =
    "entity e is port (a, b : in std_logic; y : out std_logic); end entity;\n\
     architecture r of e is begin y <= a and b; end architecture;"
  in
  let d = Vhdl.parse_string src in
  check Alcotest.int "three ports" 3 (List.length d.Vhdl.ports)

let test_parse_case_insensitive () =
  let src =
    "ENTITY E IS PORT (A : IN STD_LOGIC; Y : OUT STD_LOGIC); END ENTITY;\n\
     ARCHITECTURE R OF E IS BEGIN Y <= NOT A; END ARCHITECTURE;"
  in
  let d = Vhdl.parse_string src in
  check Alcotest.string "lowercased" "e" d.Vhdl.entity_name

let test_parse_errors () =
  let bad src =
    match Vhdl.parse_string src with
    | exception Vhdl.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "missing entity" true (bad "architecture r of e is begin end;");
  check Alcotest.bool "bad range" true
    (bad
       "entity e is port (a : in std_logic_vector(3 downto 1)); end entity;\n\
        architecture r of e is begin end architecture;");
  check Alcotest.bool "garbage" true (bad "entity e is @;")

(* --- elaboration + simulation --- *)

let test_elaborate_mac_behaviour () =
  let d = Vhdl.elaborate (Vhdl.parse_string mac_source) in
  let sim = Rtl.sim_create d in
  ignore (Rtl.sim_cycle sim [ ("a", 3); ("b", 5); ("clear", 0) ]);
  let outs = Rtl.sim_cycle sim [ ("a", 10); ("b", 10); ("clear", 0) ] in
  check Alcotest.int "3*5 + 10*10" 115 (List.assoc "acc" outs);
  let outs = Rtl.sim_cycle sim [ ("a", 1); ("b", 1); ("clear", 1) ] in
  check Alcotest.int "clear" 0 (List.assoc "acc" outs)

let test_elaborate_operators () =
  let src =
    {|entity ops is
      port (x : in std_logic_vector(3 downto 0);
            y : in std_logic_vector(3 downto 0);
            cat : out std_logic_vector(7 downto 0);
            hi  : out std_logic_vector(1 downto 0);
            bit1 : out std_logic;
            inv : out std_logic_vector(3 downto 0);
            sel : out std_logic_vector(3 downto 0));
      end entity;
      architecture r of ops is
      begin
        cat <= x & y;
        hi <= x(3 downto 2);
        bit1 <= y(1);
        inv <= not x;
        sel <= x when x < y else y;
      end architecture;|}
  in
  let d = Vhdl.elaborate (Vhdl.parse_string src) in
  let sim = Rtl.sim_create d in
  let outs = Rtl.sim_cycle sim [ ("x", 0b1010); ("y", 0b0110) ] in
  (* VHDL x & y: x is the most significant part *)
  check Alcotest.int "concat" 0b10100110 (List.assoc "cat" outs);
  check Alcotest.int "slice" 0b10 (List.assoc "hi" outs);
  check Alcotest.int "index" 1 (List.assoc "bit1" outs);
  check Alcotest.int "not" 0b0101 (List.assoc "inv" outs);
  check Alcotest.int "mux (x<y false -> y)" 0b0110 (List.assoc "sel" outs)

let test_elaborate_bit_string () =
  let src =
    "entity c is port (y : out std_logic_vector(3 downto 0)); end entity;\n\
     architecture r of c is begin y <= \"1010\"; end architecture;"
  in
  let d = Vhdl.elaborate (Vhdl.parse_string src) in
  let sim = Rtl.sim_create d in
  check Alcotest.int "MSB-first literal" 0b1010
    (List.assoc "y" (Rtl.sim_cycle sim []))

let test_elaborate_width_mismatch () =
  let src =
    "entity w is port (a : in std_logic_vector(3 downto 0);\n\
     b : in std_logic_vector(7 downto 0); y : out std_logic_vector(3 downto 0));\n\
     end entity;\n\
     architecture r of w is begin y <= a + b; end architecture;"
  in
  check Alcotest.bool "width mismatch rejected" true
    (match Vhdl.elaborate (Vhdl.parse_string src) with
     | exception Vhdl.Parse_error _ -> true
     | _ -> false)

let test_elaborate_cycle_detected () =
  let src =
    "entity c is port (y : out std_logic); end entity;\n\
     architecture r of c is signal a, b : std_logic; begin\n\
     a <= b; b <= a; y <= a; end architecture;"
  in
  check Alcotest.bool "comb cycle rejected" true
    (match Vhdl.elaborate (Vhdl.parse_string src) with
     | exception Vhdl.Parse_error _ -> true
     | _ -> false)

let test_elaborate_undriven () =
  let src =
    "entity u is port (y : out std_logic); end entity;\n\
     architecture r of u is signal ghost : std_logic; begin\n\
     y <= ghost; end architecture;"
  in
  check Alcotest.bool "undriven signal rejected" true
    (match Vhdl.elaborate (Vhdl.parse_string src) with
     | exception Vhdl.Parse_error _ -> true
     | _ -> false)

(* --- through the whole flow --- *)

let test_vhdl_through_mapper () =
  let d = Vhdl.elaborate (Vhdl.parse_string mac_source) in
  let p = Mapper.prepare d in
  check Alcotest.int "one plane (accumulator feedback)" 1 p.Mapper.num_planes;
  check Alcotest.bool "has LUTs" true (p.Mapper.total_luts > 50);
  let plan = Mapper.at_min p ~arch:Arch.unbounded_k in
  check Alcotest.bool "folding reduces LEs" true (plan.Mapper.les < p.Mapper.total_luts)

(* VHDL vs hand-built RTL equivalence over random stimulus. *)
let test_vhdl_matches_handbuilt () =
  let vhdl_design = Vhdl.elaborate (Vhdl.parse_string mac_source) in
  let hand =
    let d = Rtl.create "mac" in
    let a = Rtl.add_input d "a" 8 in
    let b = Rtl.add_input d "b" 8 in
    let clear = Rtl.add_input d "clear" 1 in
    let acc = Rtl.add_register d ~name:"acc_r" ~width:16 () in
    let product = Rtl.add_op d ~width:16 (Rtl.Mult (a, b)) in
    let sum = Rtl.add_op d ~width:16 (Rtl.Add (acc, product)) in
    let zero = Rtl.add_const d ~width:16 0 in
    let next = Rtl.add_op d ~width:16 (Rtl.Mux (clear, sum, zero)) in
    Rtl.connect_register d acc ~d:next;
    Rtl.mark_output d "acc" next;
    d
  in
  let s1 = Rtl.sim_create vhdl_design and s2 = Rtl.sim_create hand in
  let rng = Rng.create 17 in
  for _ = 1 to 200 do
    let ins =
      [ ("a", Rng.int rng 256); ("b", Rng.int rng 256); ("clear", Rng.int rng 2) ]
    in
    let o1 = Rtl.sim_cycle s1 ins and o2 = Rtl.sim_cycle s2 ins in
    check Alcotest.int "same acc" (List.assoc "acc" o2) (List.assoc "acc" o1)
  done

let () =
  Alcotest.run "vhdl"
    [ ( "parse",
        [ Alcotest.test_case "mac" `Quick test_parse_mac;
          Alcotest.test_case "multi-name ports" `Quick test_parse_multi_name_ports;
          Alcotest.test_case "case insensitive" `Quick test_parse_case_insensitive;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "elaborate",
        [ Alcotest.test_case "mac behaviour" `Quick test_elaborate_mac_behaviour;
          Alcotest.test_case "operators" `Quick test_elaborate_operators;
          Alcotest.test_case "bit string" `Quick test_elaborate_bit_string;
          Alcotest.test_case "width mismatch" `Quick test_elaborate_width_mismatch;
          Alcotest.test_case "comb cycle" `Quick test_elaborate_cycle_detected;
          Alcotest.test_case "undriven" `Quick test_elaborate_undriven ] );
      ( "integration",
        [ Alcotest.test_case "through mapper" `Quick test_vhdl_through_mapper;
          Alcotest.test_case "matches hand-built RTL" `Quick test_vhdl_matches_handbuilt ] ) ]
