(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) plus the ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table1  -- one experiment
     (table1 table2 fig1 fig35 interconnect tradeoff ablation-fds
      ablation-place ablation-ffs speed mapper-comparison defect-tolerance
      serve profile; --smoke shrinks
      profile to one small circuit, the defect-tolerance survival sweep to
      three rates x four trials, and the serve load test to 120 jobs; --route-alg=full, =incremental or =both selects
      the router variant(s) the profile experiment exercises;
      --check=off|fast|full sets the flow's inter-stage invariant checking
      level for the profile runs; --jobs=N sets the worker-domain count
      for the profile flow runs, 0 = auto)

   Absolute numbers come from our own substrate (see DESIGN.md for the
   substitutions); the shapes are what reproduce the paper. *)

module Ascii_table = Nanomap_util.Ascii_table
module Json = Nanomap_util.Json
module Stats = Nanomap_util.Stats
module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Fds = Nanomap_core.Fds
module Fold = Nanomap_core.Fold
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Flow = Nanomap_flow.Flow
module Circuits = Nanomap_circuits.Circuits
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Truth_table = Nanomap_logic.Truth_table
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen
module Decompose = Nanomap_techmap.Decompose
module Flowmap = Nanomap_techmap.Flowmap
module Aig_map = Nanomap_techmap.Aig_map
module Rng = Nanomap_util.Rng
module Check = Nanomap_flow.Check
module Diag = Nanomap_util.Diag
module Pool = Nanomap_util.Pool
module Fuzz = Nanomap_verify.Fuzz
module Gen_rtl = Nanomap_verify.Gen_rtl
module Codec = Nanomap_flow.Codec
module Proto = Nanomap_serve.Proto
module Serve = Nanomap_serve.Serve
module Defect = Nanomap_arch.Defect
module Sat_place = Nanomap_place.Sat_place

let section title = Printf.printf "\n=== %s ===\n\n%!" title

(* Post-clustering LE count of a plan: the flow's real area metric. *)
let clustered_les plan ~arch =
  let cl = Cluster.pack plan ~arch in
  cl.Cluster.les_used

(* ------------------------------------------------------------- Table 1 *)

type t1_row = {
  name : string;
  planes : int;
  depth : int;
  luts : int;
  ffs : int;
  nf_les : int;
  nf_delay : float;
  free_level : int;
  free_les : int;
  free_delay : float;
  k16 : (int * int * float) option; (* level, les, delay *)
}

let table1_rows () =
  List.map
    (fun (b : Circuits.benchmark) ->
      let p = Mapper.prepare b.Circuits.design in
      let free_arch = Arch.unbounded_k in
      let nf = Mapper.no_folding p ~arch:free_arch in
      let nf_les = clustered_les nf ~arch:free_arch in
      let best = Mapper.at_min p ~arch:free_arch in
      let free_les = clustered_les best ~arch:free_arch in
      let k16 =
        match Mapper.at_min p ~arch:Arch.default with
        | plan ->
          Some
            ( plan.Mapper.level,
              clustered_les plan ~arch:Arch.default,
              plan.Mapper.delay_ns )
        | exception Mapper.No_feasible_mapping _ -> None
      in
      { name = b.Circuits.name;
        planes = p.Mapper.num_planes;
        depth = p.Mapper.depth_max;
        luts = p.Mapper.total_luts;
        ffs = p.Mapper.total_ffs;
        nf_les;
        nf_delay = nf.Mapper.delay_ns;
        free_level = best.Mapper.level;
        free_les;
        free_delay = best.Mapper.delay_ns;
        k16 })
    (Circuits.all ())

let table1 () =
  section "Table 1: circuit mapping results for AT product optimization";
  let t =
    Ascii_table.create
      [ "Circuit"; "#Planes"; "Max depth"; "#LUTs"; "#FFs";
        "NF #LEs"; "NF delay";
        "k-enough lvl"; "#LEs"; "delay"; "AT improv";
        "k=16 lvl"; "#LEs"; "delay"; "AT improv" ]
  in
  let rows = table1_rows () in
  let at_improvements = ref [] and at16_improvements = ref [] in
  let le_reductions = ref [] and le16_reductions = ref [] in
  let delay_increase = ref [] and delay16_increase = ref [] in
  List.iter
    (fun r ->
      let nf_at = float_of_int r.nf_les *. r.nf_delay in
      let free_at = float_of_int r.free_les *. r.free_delay in
      at_improvements := (nf_at /. free_at) :: !at_improvements;
      le_reductions :=
        (float_of_int r.nf_les /. float_of_int r.free_les) :: !le_reductions;
      delay_increase := ((r.free_delay /. r.nf_delay) -. 1.0) :: !delay_increase;
      let k16_cells =
        match r.k16 with
        | Some (lvl, les, delay) ->
          let at16 = float_of_int les *. delay in
          at16_improvements := (nf_at /. at16) :: !at16_improvements;
          le16_reductions :=
            (float_of_int r.nf_les /. float_of_int les) :: !le16_reductions;
          delay16_increase := ((delay /. r.nf_delay) -. 1.0) :: !delay16_increase;
          [ string_of_int lvl; string_of_int les; Printf.sprintf "%.2f" delay;
            Printf.sprintf "%.2fX" (nf_at /. at16) ]
        | None -> [ "-"; "-"; "-"; "-" ]
      in
      Ascii_table.add_row t
        ([ r.name;
           string_of_int r.planes;
           string_of_int r.depth;
           string_of_int r.luts;
           string_of_int r.ffs;
           string_of_int r.nf_les;
           Printf.sprintf "%.2f" r.nf_delay;
           string_of_int r.free_level;
           string_of_int r.free_les;
           Printf.sprintf "%.2f" r.free_delay;
           Printf.sprintf "%.2fX" (nf_at /. free_at) ]
        @ k16_cells))
    rows;
  Ascii_table.print t;
  Printf.printf
    "\nSection 5 claims (paper: LE reduction 14.8X / 9.2X, AT improvement 11.0X \
     / 7.8X,\ndelay increase 31.8%% / 19.4%% for k-enough / k=16):\n";
  Printf.printf "  average LE reduction:   %.1fX (k enough)   %.1fX (k=16)\n"
    (Stats.mean !le_reductions) (Stats.mean !le16_reductions);
  Printf.printf "  average AT improvement: %.1fX (k enough)   %.1fX (k=16)\n"
    (Stats.mean !at_improvements) (Stats.mean !at16_improvements);
  Printf.printf "  average delay increase: %.1f%% (k enough)  %.1f%% (k=16)\n"
    (100. *. Stats.mean !delay_increase)
    (100. *. Stats.mean !delay16_increase)

(* ------------------------------------------------------------- Table 2 *)

let table2 () =
  section "Table 2: circuit mapping results for typical optimization objectives";
  let arch = Arch.unbounded_k in
  let t =
    Ascii_table.create
      [ "Circuit"; "Optimization"; "Area const (#LEs)"; "Delay const (ns)";
        "Folding level"; "#LEs"; "Delay (ns)" ]
  in
  (* Constraints are scaled from each circuit's own level-1 mapping, so the
     shapes (which objective binds, which level is chosen) mirror the
     paper's Table 2 on our substrate. *)
  let run name objective area_c delay_c =
    let b = Circuits.by_name name in
    let options = { Flow.default_options with Flow.objective; physical = false } in
    match Flow.run ~options ~arch b.Circuits.design with
    | r ->
      Ascii_table.add_row t
        [ b.Circuits.name;
          (match objective with
           | Flow.Delay_min _ -> "Delay"
           | Flow.Area_min _ -> "Area"
           | Flow.Both _ -> "-"
           | Flow.At_min -> "AT"
           | Flow.Fixed_level _ -> "Fixed"
           | Flow.No_folding -> "None"
           | Flow.Pipelined_delay_min _ -> "Delay (pipelined)");
          (match area_c with Some a -> string_of_int a | None -> "-");
          (match delay_c with Some d -> Printf.sprintf "%.1f" d | None -> "-");
          string_of_int r.Flow.plan.Mapper.level;
          string_of_int r.Flow.area_les;
          Printf.sprintf "%.2f" r.Flow.delay_model_ns ]
    | exception (Flow.Flow_failed msg | Failure msg) ->
      Ascii_table.add_row t [ b.Circuits.name; "FAILED"; msg ]
  in
  let level1_les name =
    let b = Circuits.by_name name in
    let p = Mapper.prepare b.Circuits.design in
    clustered_les (Mapper.plan_level p ~arch ~level:1) ~arch
  in
  let at_delay name =
    let b = Circuits.by_name name in
    let p = Mapper.prepare b.Circuits.design in
    (Mapper.at_min p ~arch).Mapper.delay_ns
  in
  (* ex1: delay-min with a tight area budget *)
  let a = level1_les "ex1" * 5 / 4 in
  run "ex1" (Flow.Delay_min (Some a)) (Some a) None;
  (* FIR: delay-min, looser budget *)
  let a = level1_les "fir" * 2 in
  run "fir" (Flow.Delay_min (Some a)) (Some a) None;
  (* ex2: area-min under a delay budget *)
  let d = at_delay "ex2" *. 1.2 in
  run "ex2" (Flow.Area_min (Some d)) None (Some d);
  (* c5315: pure area minimization *)
  run "c5315" (Flow.Area_min None) None None;
  (* Biquad: delay-min with area budget *)
  let a = level1_les "biquad" * 3 / 2 in
  run "biquad" (Flow.Delay_min (Some a)) (Some a) None;
  (* Paulin: both constraints *)
  let a = level1_les "paulin" * 2 and d = at_delay "paulin" *. 1.3 in
  run "paulin" (Flow.Both (a, d)) (Some a) (Some d);
  (* ASPP4: area-min under delay budget *)
  let d = at_delay "aspp4" *. 1.15 in
  run "aspp4" (Flow.Area_min (Some d)) None (Some d);
  Ascii_table.print t

(* -------------------------------------------------------------- Fig. 1 *)

let fig1 () =
  section
    "Fig. 1: motivational example (4-bit ex1), delay minimization under an \
     area constraint";
  let b = Circuits.ex1_small () in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare b.Circuits.design in
  Printf.printf
    "circuit parameters: %d LUTs, depth %d, %d flip-flops (paper: 50 LUTs, \
     depth 9, 14 FFs)\n"
    p.Mapper.total_luts p.Mapper.depth_max p.Mapper.total_ffs;
  let budget = (p.Mapper.total_luts * 2 / 3) + 1 in
  Printf.printf "area constraint: %d LEs (paper used 32)\n" budget;
  Printf.printf "Eq. 1: minimum folding stages = ceil(%d/%d) = %d\n"
    p.Mapper.lut_max budget
    (Fold.min_stages ~lut_max:p.Mapper.lut_max ~available_le:budget);
  let plan = Mapper.delay_min ~area:budget p ~arch in
  Printf.printf "chosen folding level %d -> %d folding stages\n\n"
    plan.Mapper.level plan.Mapper.stages;
  let t = Ascii_table.create [ "Folding cycle"; "#LUTs"; "FF bits"; "#LEs" ] in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let luts = Sched.lut_count_per_stage pl.Mapper.problem pl.Mapper.schedule in
      let ffs = Sched.ff_bits_per_stage pl.Mapper.problem pl.Mapper.schedule in
      for j = 1 to plan.Mapper.stages do
        let les = max luts.(j) (Stats.ceil_div ffs.(j) 2) in
        Ascii_table.add_row t
          [ string_of_int j; string_of_int luts.(j); string_of_int ffs.(j);
            string_of_int les ]
      done)
    plan.Mapper.planes;
  Ascii_table.print t;
  Printf.printf
    "\nLE requirement = max over cycles = %d <= %d (paper: 12/32/12 -> 32)\n"
    plan.Mapper.les budget

(* ----------------------------------------------------------- Figs. 3-5 *)

let fig35 () =
  section "Figs. 3-5: FDS worked example (time frames, lifetimes, DGs)";
  (* the five-unit example of the paper: A,B sources; C after A; D after B;
     E after B and C; three folding cycles *)
  let nw = Lut_network.create () in
  let in0 = Lut_network.add_input nw (Lut_network.Pi_bit (0, 0)) in
  let in1 = Lut_network.add_input nw (Lut_network.Pi_bit (1, 0)) in
  let buf = Truth_table.var ~arity:1 0 in
  let and2 = Truth_table.of_fun ~arity:2 (fun i -> i.(0) && i.(1)) in
  let a =
    Lut_network.add_lut nw ~name:"LUT1" ~module_id:(-1) ~func:buf ~fanins:[| in0 |] ()
  in
  let b =
    Lut_network.add_lut nw ~name:"LUT2" ~module_id:(-1) ~func:buf ~fanins:[| in1 |] ()
  in
  let c =
    Lut_network.add_lut nw ~name:"clus1" ~module_id:(-1) ~func:buf ~fanins:[| a |] ()
  in
  let d =
    Lut_network.add_lut nw ~name:"LUT3" ~module_id:(-1) ~func:buf ~fanins:[| b |] ()
  in
  let e =
    Lut_network.add_lut nw ~name:"LUT4" ~module_id:(-1) ~func:and2 ~fanins:[| b; c |]
      ()
  in
  Lut_network.mark_output nw (Lut_network.Po_target "d") d;
  Lut_network.mark_output nw (Lut_network.Po_target "e") e;
  let part = Partition.partition nw ~level:1 in
  let prob = Sched.problem nw part ~stages:3 ~base_ff_bits:0 in
  let fixed = Array.make 5 None in
  let fr = Sched.frames prob ~fixed in
  let names = [ (a, "LUT1"); (b, "LUT2"); (c, "clus1"); (d, "LUT3"); (e, "LUT4") ] in
  let t = Ascii_table.create [ "Node"; "ASAP"; "ALAP"; "Time frame" ] in
  List.iter
    (fun (l, name) ->
      let u = part.Partition.unit_of_lut.(l) in
      Ascii_table.add_row t
        [ name;
          string_of_int fr.Sched.asap.(u);
          string_of_int fr.Sched.alap.(u);
          Printf.sprintf "[%d,%d]" fr.Sched.asap.(u) fr.Sched.alap.(u) ])
    names;
  Ascii_table.print t;
  (match Sched.intermediate_lifetime prob fr part.Partition.unit_of_lut.(b) with
   | Some lt ->
     Printf.printf
       "\nStorage for LUT2 (paper Fig. 4): ASAP_life [%d,%d] (len %d), ALAP_life \
        [%d,%d] (len %d),\n  max_life [%d,%d] (Eq. 6), overlap [%d,%d] (Eq. 7), \
        avg_life %.3f (Eq. 8 = 5/3)\n"
       (fst lt.Sched.asap_life) (snd lt.Sched.asap_life)
       (max 0 (snd lt.Sched.asap_life - fst lt.Sched.asap_life + 1))
       (fst lt.Sched.alap_life) (snd lt.Sched.alap_life)
       (max 0 (snd lt.Sched.alap_life - fst lt.Sched.alap_life + 1))
       (fst lt.Sched.max_life) (snd lt.Sched.max_life)
       (fst lt.Sched.overlap) (snd lt.Sched.overlap)
       lt.Sched.avg_life
   | None -> Printf.printf "\n(no storage operation for LUT2?)\n");
  let lut_dg = Sched.lut_dg prob fr in
  let storage_dg = Sched.storage_dg prob fr in
  Printf.printf "\nDistribution graphs (paper Fig. 5):\n";
  for j = 1 to 3 do
    Printf.printf "  cycle %d: LUT_DG = %.3f   storage_DG = %.3f\n" j lut_dg.(j)
      storage_dg.(j)
  done;
  let sched = Fds.schedule prob ~arch:Arch.default in
  Printf.printf "\nFDS schedule:";
  List.iter
    (fun (l, name) ->
      Printf.printf " %s->cycle %d" name sched.(part.Partition.unit_of_lut.(l)))
    names;
  Printf.printf "\n"

(* --------------------------------------------- Interconnect claim (S2) *)

let interconnect () =
  section
    "Section 5 claim: global interconnect usage, level-1 folding vs no folding";
  let t =
    Ascii_table.create
      [ "Circuit"; "Mode"; "SMBs"; "Nets"; "Global nets"; "Global wires/config";
        "Wirelength/net"; "Intra-SMB conns" ]
  in
  let arch = Arch.unbounded_k in
  let reductions = ref [] in
  List.iter
    (fun name ->
      let b = Circuits.by_name name in
      let p = Mapper.prepare b.Circuits.design in
      let eval label plan =
        let cl = Cluster.pack plan ~arch in
        let local = Nanomap_cluster.Smb_local.analyze cl plan in
        let place = Place.place ~effort:`Fast cl in
        let r, _ = Router.route_adaptive place cl plan in
        let configs = max plan.Mapper.configs_used 1 in
        let globals = List.assoc "global" r.Router.usage_by_kind in
        let per_config = float_of_int globals /. float_of_int configs in
        let total_conns =
          local.Nanomap_cluster.Smb_local.local_connections
          + local.Nanomap_cluster.Smb_local.external_connections
        in
        Ascii_table.add_row t
          [ b.Circuits.name; label;
            string_of_int cl.Cluster.num_smbs;
            string_of_int r.Router.total_nets;
            Printf.sprintf "%d (%.1f%%)" r.Router.nets_using_global
              (100.
              *. float_of_int r.Router.nets_using_global
              /. float_of_int (max r.Router.total_nets 1));
            Printf.sprintf "%.1f" per_config;
            Printf.sprintf "%.2f"
              (float_of_int r.Router.wirelength
              /. float_of_int (max r.Router.total_nets 1));
            Printf.sprintf "%.0f%%"
              (100.
              *. float_of_int local.Nanomap_cluster.Smb_local.local_connections
              /. float_of_int (max total_conns 1)) ];
        per_config
      in
      let nf = eval "no folding" (Mapper.no_folding p ~arch) in
      let l1 = eval "level-1" (Mapper.plan_level p ~arch ~level:1) in
      Ascii_table.add_separator t;
      if nf > 0.0 then reductions := (1.0 -. (l1 /. nf)) :: !reductions)
    [ "ex1"; "fir"; "c5315"; "biquad" ];
  Ascii_table.print t;
  Printf.printf
    "\nAverage reduction in per-configuration global-wire usage: %.0f%% (paper \
     claims >50%%)\n"
    (100. *. Stats.mean !reductions)

(* -------------------------------------------------- Tradeoff curve (A3) *)

let tradeoff () =
  section "Sec. 2.2 tradeoff: delay and area vs folding level (ex1)";
  let b = Circuits.ex1 () in
  let p = Mapper.prepare b.Circuits.design in
  let arch = Arch.unbounded_k in
  let t =
    Ascii_table.create
      [ "Folding level"; "Stages"; "#LEs (sched)"; "Delay (ns)"; "AT product" ]
  in
  List.iter
    (fun (lvl, plan) ->
      Ascii_table.add_row t
        [ string_of_int lvl;
          string_of_int plan.Mapper.stages;
          string_of_int plan.Mapper.les;
          Printf.sprintf "%.2f" plan.Mapper.delay_ns;
          Printf.sprintf "%.0f"
            (float_of_int plan.Mapper.les *. plan.Mapper.delay_ns) ])
    (Mapper.sweep p ~arch);
  let nf = Mapper.no_folding p ~arch in
  Ascii_table.add_separator t;
  Ascii_table.add_row t
    [ "no folding"; "1"; string_of_int nf.Mapper.les;
      Printf.sprintf "%.2f" nf.Mapper.delay_ns;
      Printf.sprintf "%.0f" (float_of_int nf.Mapper.les *. nf.Mapper.delay_ns) ];
  Ascii_table.print t

(* -------------------------------------------------- FDS ablation (A1) *)

let ablation_fds () =
  section "Ablation: FDS vs ASAP scheduling (max per-stage LE usage, level 1)";
  let arch = Arch.unbounded_k in
  let t =
    Ascii_table.create [ "Circuit"; "#LEs (FDS)"; "#LEs (ASAP)"; "FDS advantage" ]
  in
  List.iter
    (fun (b : Circuits.benchmark) ->
      let p = Mapper.prepare b.Circuits.design in
      let fds = Mapper.plan_level ~scheduler:Mapper.Fds p ~arch ~level:1 in
      let asap =
        Mapper.plan_level ~scheduler:Mapper.Asap_baseline p ~arch ~level:1
      in
      Ascii_table.add_row t
        [ b.Circuits.name;
          string_of_int fds.Mapper.les;
          string_of_int asap.Mapper.les;
          Printf.sprintf "%.2fX"
            (float_of_int asap.Mapper.les /. float_of_int fds.Mapper.les) ])
    (Circuits.all ());
  Ascii_table.print t

(* ------------------------------------------- Placement ablation (A2) *)

let ablation_place () =
  section "Ablation: joint all-cycles placement cost vs first-cycle-only (Fig. 6)";
  let arch = Arch.unbounded_k in
  let t =
    Ascii_table.create
      [ "Circuit"; "HPWL joint"; "HPWL cycle-1-only"; "Routed WL joint";
        "Routed WL cycle-1" ]
  in
  List.iter
    (fun name ->
      let b = Circuits.by_name name in
      let p = Mapper.prepare b.Circuits.design in
      let plan = Mapper.plan_level p ~arch ~level:1 in
      let cl = Cluster.pack plan ~arch in
      let joint = Place.place ~effort:`Fast ~joint:true cl in
      let single = Place.place ~effort:`Fast ~joint:false cl in
      let wl placement =
        let r, _ = Router.route_adaptive placement cl plan in
        r.Router.wirelength
      in
      Ascii_table.add_row t
        [ b.Circuits.name;
          Printf.sprintf "%.0f" (Place.hpwl joint cl);
          Printf.sprintf "%.0f" (Place.hpwl single cl);
          string_of_int (wl joint);
          string_of_int (wl single) ])
    [ "ex1"; "biquad"; "ex2" ];
  Ascii_table.print t

(* ------------------------------------- Architecture ablation (A4) *)

(* The paper: "temporal logic folding greatly reduces the area for
   implementing logic, so much so that the number of registers in the
   design becomes the bottleneck... as opposed to traditional LEs that
   include only one flip-flop, we include two flip-flops per LE. This does
   increase an SMB's area to 1.5X... more than offset". Reproduce that
   tradeoff: map at level 1 with l = 1 vs l = 2 flip-flops per LE and
   compare SMB-area-weighted cost. *)
let ablation_ffs () =
  section "Ablation: flip-flops per LE (the paper's 2-FF design choice)";
  let t =
    Ascii_table.create
      [ "Circuit"; "#LEs (1 FF)"; "#LEs (2 FF)"; "area x1.0 (1 FF)";
        "area x1.5 (2 FF)"; "2-FF wins" ]
  in
  List.iter
    (fun (b : Circuits.benchmark) ->
      let p = Mapper.prepare b.Circuits.design in
      let arch1 = { Arch.unbounded_k with Arch.ffs_per_le = 1 } in
      let arch2 = Arch.unbounded_k in
      let les1 = (Mapper.plan_level p ~arch:arch1 ~level:1).Mapper.les in
      let les2 = (Mapper.plan_level p ~arch:arch2 ~level:1).Mapper.les in
      (* SMB area scales 1.5X for the second flip-flop (paper Sec. 5) *)
      let area1 = float_of_int les1 *. 1.0 in
      let area2 = float_of_int les2 *. 1.5 in
      Ascii_table.add_row t
        [ b.Circuits.name;
          string_of_int les1;
          string_of_int les2;
          Printf.sprintf "%.0f" area1;
          Printf.sprintf "%.0f" area2;
          (if area2 < area1 then "yes" else "no") ])
    (Circuits.all ());
  Ascii_table.print t

(* --------------------------------------- Architecture geometry (A5) *)

(* The paper fixes one four-input LUT per LE, 4 LEs per MB and 4 MBs per
   SMB "based on the observations in [7]". Sweep the cluster geometry and
   watch the locality/granularity tradeoff: tiny SMBs waste nothing on
   granularity but push every net onto the general interconnect, huge SMBs
   absorb nets but round the area up. *)
let arch_geometry () =
  section "Architecture sweep: LEs/MB x MBs/SMB (paper instance is 4x4)";
  let t =
    Ascii_table.create
      [ "Geometry"; "LEs/SMB"; "SMBs"; "Area (LEs)"; "Inter-SMB nets"; "HPWL" ]
  in
  let b = Circuits.ex1 () in
  let p = Mapper.prepare b.Circuits.design in
  List.iter
    (fun (les_per_mb, mbs_per_smb) ->
      let arch = { Arch.unbounded_k with Arch.les_per_mb; mbs_per_smb } in
      let plan = Mapper.plan_level p ~arch ~level:1 in
      let cl = Cluster.pack plan ~arch in
      let place = Place.place ~effort:`Fast cl in
      Ascii_table.add_row t
        [ Printf.sprintf "%dx%d" les_per_mb mbs_per_smb;
          string_of_int (Arch.les_per_smb arch);
          string_of_int cl.Cluster.num_smbs;
          string_of_int (Cluster.area_les cl);
          string_of_int (List.length cl.Cluster.nets);
          Printf.sprintf "%.0f" place.Place.hpwl ])
      [ (2, 2); (4, 2); (4, 4); (8, 4) ];
  Ascii_table.print t

(* --------------------------------------- Beyond-paper workloads (A6) *)

let extended () =
  section "Extension: beyond-paper workloads under AT optimization";
  let t =
    Ascii_table.create
      [ "Circuit"; "Planes"; "Depth"; "LUTs"; "FFs"; "NF LEs"; "AT lvl"; "#LEs";
        "Delay"; "AT improv" ]
  in
  let arch = Arch.unbounded_k in
  List.iter
    (fun (b : Circuits.benchmark) ->
      let p = Mapper.prepare b.Circuits.design in
      let nf = Mapper.no_folding p ~arch in
      let nf_les = clustered_les nf ~arch in
      let best = Mapper.at_min p ~arch in
      let les = clustered_les best ~arch in
      let improv =
        float_of_int nf_les *. nf.Mapper.delay_ns
        /. (float_of_int les *. best.Mapper.delay_ns)
      in
      Ascii_table.add_row t
        [ b.Circuits.name;
          string_of_int p.Mapper.num_planes;
          string_of_int p.Mapper.depth_max;
          string_of_int p.Mapper.total_luts;
          string_of_int p.Mapper.total_ffs;
          string_of_int nf_les;
          string_of_int best.Mapper.level;
          string_of_int les;
          Printf.sprintf "%.2f" best.Mapper.delay_ns;
          Printf.sprintf "%.2fX" improv ])
    (Circuits.extended ());
  Ascii_table.print t

(* ------------------------------------------------- Energy (extension) *)

(* Not in the paper's tables — an extension quantifying its qualitative
   power argument: folding trades LE leakage and count for per-cycle
   reconfiguration energy. *)
let energy () =
  section "Extension: energy per computation vs folding (event-based model)";
  let t =
    Ascii_table.create
      [ "Circuit"; "Mode"; "#LEs"; "Wire segs"; "Energy (pJ)"; "vs no-folding" ]
  in
  let arch = Arch.unbounded_k in
  List.iter
    (fun name ->
      let b = Circuits.by_name name in
      let p = Mapper.prepare b.Circuits.design in
      let eval label plan =
        let cl = Cluster.pack plan ~arch in
        let place = Place.place ~effort:`Fast cl in
        let r, _ = Router.route_adaptive place cl plan in
        let energy =
          Arch.energy_per_computation_pj arch ~luts_evaluated:p.Mapper.total_luts
            ~les:cl.Cluster.les_used ~stages:plan.Mapper.stages
            ~num_planes:p.Mapper.num_planes ~wire_segments:r.Router.wirelength
            ~delay_ns:plan.Mapper.delay_ns
        in
        (label, cl.Cluster.les_used, r.Router.wirelength, energy)
      in
      let (l1, les1, w1, e1) = eval "no folding" (Mapper.no_folding p ~arch) in
      let (l2, les2, w2, e2) = eval "level-1" (Mapper.plan_level p ~arch ~level:1) in
      List.iter
        (fun (label, les, wires, e) ->
          Ascii_table.add_row t
            [ b.Circuits.name; label; string_of_int les; string_of_int wires;
              Printf.sprintf "%.1f" e;
              (if label = "no folding" then "1.00X"
               else Printf.sprintf "%.2fX" (e /. e1)) ])
        [ (l1, les1, w1, e1); (l2, les2, w2, e2) ];
      Ascii_table.add_separator t)
    [ "ex1"; "c5315"; "biquad" ];
  Ascii_table.print t;
  Printf.printf
    "\nFolding pays reconfiguration energy but wins on wiring and leakage; the\n\
     net direction depends on the reconfiguration energy per LE (e_reconf).\n"

(* --------------------------------------------------------- Speed (S3) *)

let speed () =
  section "Section 5 claim: mapping CPU time (paper: < 1 min per circuit)";
  let t = Ascii_table.create [ "Circuit"; "#LUTs"; "Full flow (s)"; "Within 1 min" ] in
  let stress =
    (* a scale stress case well beyond the paper's largest benchmark *)
    { (Circuits.ex1 ~width:24 ()) with Circuits.name = "ex1-24bit (stress)" }
  in
  List.iter
    (fun (b : Circuits.benchmark) ->
      let t0 = Unix.gettimeofday () in
      let r = Flow.run ~arch:Arch.unbounded_k b.Circuits.design in
      let dt = Unix.gettimeofday () -. t0 in
      Ascii_table.add_row t
        [ b.Circuits.name;
          string_of_int r.Flow.prepared.Mapper.total_luts;
          Printf.sprintf "%.2f" dt;
          (if dt < 60.0 then "yes" else "NO") ])
    (Circuits.all () @ [ stress ]);
  Ascii_table.print t;
  (* Bechamel micro-benchmarks: one kernel per table/figure. *)
  Printf.printf "\nBechamel micro-benchmarks (one kernel per table):\n%!";
  let open Bechamel in
  let ex1s = (Circuits.ex1_small ()).Circuits.design in
  let prepared = Mapper.prepare ex1s in
  let arch = Arch.unbounded_k in
  let tests =
    [ Test.make ~name:"table1_at_min_ex1_4bit"
        (Staged.stage (fun () -> ignore (Mapper.at_min prepared ~arch)));
      Test.make ~name:"table2_delay_min_ex1_4bit"
        (Staged.stage (fun () -> ignore (Mapper.delay_min prepared ~arch)));
      Test.make ~name:"fig1_plan_level1_ex1_4bit"
        (Staged.stage (fun () -> ignore (Mapper.plan_level prepared ~arch ~level:1)));
      Test.make ~name:"interconnect_cluster_ex1_4bit"
        (Staged.stage (fun () ->
             let plan = Mapper.plan_level prepared ~arch ~level:1 in
             ignore (Cluster.pack plan ~arch))) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-36s %14.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n%!" name)
        ols)
    tests

(* ----------------------------------------------------- Profile (tele) *)

(* Full-flow telemetry per benchmark and per router algorithm: the
   per-stage table on stdout, a full-vs-incremental heap-traffic
   comparison, and a machine-readable BENCH_profile.json for regression
   tracking. Doubles as the CI gate for the router: an illegal routing or
   an empty telemetry run aborts the harness with a nonzero exit. *)
let smoke = ref false
let route_algs = ref `Both
let check_level = ref Check.Fast
let bench_jobs = ref 0 (* 0 = auto (recommended domain count, capped) *)

(* -------------------------------------------- Mapper comparison (A7) *)

(* FlowMap (per-node max-flow over the transitive fanin, quadratic) vs the
   priority-cut AIG mapper (near-linear) on generated netlists of rising
   size plus the circuit suite end-to-end. The tt mapper is skipped on a
   subject when its quadratically-projected wall clock (from the last
   measured run) exceeds the time budget — recording the projection keeps
   the row honest about what was not run. *)

type mc_row = {
  mc_name : string;
  mc_gates : int;
  mc_aig_nodes : int;
  mc_aig_cuts : int;
  mc_aig_luts : int;
  mc_aig_depth : int;
  mc_aig_s : float;
  mc_tt : (int * int * float) option; (* luts, depth, wall_s; None = skipped *)
  mc_tt_projected_s : float option;   (* quadratic projection when skipped *)
}

let mc_tag_netlist nl =
  let input_origins =
    List.mapi
      (fun i (_, gid) -> (gid, Lut_network.Pi_bit (i, 0)))
      (Gate_netlist.inputs nl)
  in
  let output_targets =
    List.map
      (fun (name, gid) -> (Lut_network.Po_target name, gid))
      (Gate_netlist.outputs nl)
  in
  { Decompose.gates = nl;
    tags = Array.make (Gate_netlist.size nl) (-1);
    input_origins;
    output_targets }

let mc_time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mapper_comparison_generated () =
  let budget = if !smoke then 10.0 else 120.0 in
  let ladder seed layers width =
    Gen.random_layered (Rng.create seed) ~num_inputs:64 ~layers
      ~layer_width:width ~num_outputs:64
  in
  let wallace w =
    let nl = Gate_netlist.create () in
    let a = Gen.input_bus nl "a" w and b = Gen.input_bus nl "b" w in
    Gen.mark_output_bus nl "p" (Gen.wallace_multiplier nl a b);
    nl
  in
  let subjects =
    [ ("wallace-16x16", wallace 16);
      ("ladder-8x48", ladder 101 8 48);
      ("ladder-16x96", ladder 102 16 96);
      ("ladder-32x160", ladder 103 32 160);
      ("ladder-48x256", ladder 104 48 256) ]
  in
  let last_tt = ref None in
  List.map
    (fun (name, nl) ->
      let tg = mc_tag_netlist nl in
      let gates = Gate_netlist.num_gates nl in
      let (lut_a, st), aig_s = mc_time (fun () -> Aig_map.map_stats ~k:4 tg) in
      let projected =
        match !last_tt with
        | Some (g0, s0) when g0 > 0 ->
          s0 *. ((float_of_int gates /. float_of_int g0) ** 2.0)
        | _ -> 0.0
      in
      let tt, tt_projected =
        if projected <= budget then begin
          let lut_t, tt_s = mc_time (fun () -> Flowmap.map ~k:4 tg) in
          last_tt := Some (gates, tt_s);
          (Some (Lut_network.num_luts lut_t, Lut_network.depth lut_t, tt_s), None)
        end
        else (None, Some projected)
      in
      { mc_name = name;
        mc_gates = gates;
        mc_aig_nodes = st.Aig_map.aig_nodes;
        mc_aig_cuts = st.Aig_map.cuts_enumerated;
        mc_aig_luts = Lut_network.num_luts lut_a;
        mc_aig_depth = Lut_network.depth lut_a;
        mc_aig_s = aig_s;
        mc_tt = tt;
        mc_tt_projected_s = tt_projected })
    subjects

let mapper_comparison_circuits () =
  let benches = if !smoke then [ Circuits.ex1_small () ] else Circuits.all () in
  List.map
    (fun (b : Circuits.benchmark) ->
      let p_tt, tt_s =
        mc_time (fun () -> Mapper.prepare ~mapper:Mapper.Truth_table b.Circuits.design)
      in
      let p_aig, aig_s =
        mc_time (fun () -> Mapper.prepare ~mapper:Mapper.Aig b.Circuits.design)
      in
      ( b.Circuits.name,
        (p_tt.Mapper.total_luts, p_tt.Mapper.depth_max, tt_s),
        (p_aig.Mapper.total_luts, p_aig.Mapper.depth_max, aig_s) ))
    benches

let mapper_comparison_json rows circuits =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"generated\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"gates\":%d,\"aig\":{\"nodes\":%d,\"cuts\":%d,\"luts\":%d,\"depth\":%d,\"wall_s\":%.4f}"
           r.mc_name r.mc_gates r.mc_aig_nodes r.mc_aig_cuts r.mc_aig_luts
           r.mc_aig_depth r.mc_aig_s);
      (match r.mc_tt with
       | Some (luts, depth, s) ->
         Buffer.add_string buf
           (Printf.sprintf
              ",\"tt\":{\"luts\":%d,\"depth\":%d,\"wall_s\":%.4f}" luts depth s)
       | None -> Buffer.add_string buf ",\"tt\":null");
      (match r.mc_tt_projected_s with
       | Some s -> Buffer.add_string buf (Printf.sprintf ",\"tt_projected_s\":%.1f" s)
       | None -> ());
      Buffer.add_char buf '}')
    rows;
  Buffer.add_string buf "],\"circuits\":[";
  List.iteri
    (fun i (name, (tt_luts, tt_depth, tt_s), (aig_luts, aig_depth, aig_s)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"tt\":{\"luts\":%d,\"depth\":%d,\"wall_s\":%.4f},\"aig\":{\"luts\":%d,\"depth\":%d,\"wall_s\":%.4f}}"
           name tt_luts tt_depth tt_s aig_luts aig_depth aig_s))
    circuits;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let mapper_comparison_print rows circuits =
  let t =
    Ascii_table.create
      [ "Subject"; "Gates"; "AIG nodes"; "Cuts"; "AIG LUTs"; "AIG depth";
        "AIG (s)"; "tt LUTs"; "tt depth"; "tt (s)" ]
  in
  List.iter
    (fun r ->
      let tt_cells =
        match r.mc_tt with
        | Some (luts, depth, s) ->
          [ string_of_int luts; string_of_int depth; Printf.sprintf "%.3f" s ]
        | None ->
          [ "-"; "-";
            (match r.mc_tt_projected_s with
             | Some s -> Printf.sprintf "skipped (~%.0fs)" s
             | None -> "skipped") ]
      in
      Ascii_table.add_row t
        ([ r.mc_name;
           string_of_int r.mc_gates;
           string_of_int r.mc_aig_nodes;
           string_of_int r.mc_aig_cuts;
           string_of_int r.mc_aig_luts;
           string_of_int r.mc_aig_depth;
           Printf.sprintf "%.3f" r.mc_aig_s ]
        @ tt_cells))
    rows;
  Ascii_table.print t;
  let t2 =
    Ascii_table.create
      [ "Circuit"; "tt LUTs"; "tt depth"; "tt (s)"; "AIG LUTs"; "AIG depth";
        "AIG (s)" ]
  in
  List.iter
    (fun (name, (tt_luts, tt_depth, tt_s), (aig_luts, aig_depth, aig_s)) ->
      Ascii_table.add_row t2
        [ name;
          string_of_int tt_luts; string_of_int tt_depth;
          Printf.sprintf "%.3f" tt_s;
          string_of_int aig_luts; string_of_int aig_depth;
          Printf.sprintf "%.3f" aig_s ])
    circuits;
  Ascii_table.print t2

(* Splice ["key":json] into [file]'s top-level JSON object (shared with
   the CLI's explore command — see Nanomap_util.Json). Lets each
   standalone experiment refresh its own section of BENCH_profile.json
   without clobbering the others. *)
let splice_json_section file key json =
  Json.splice_file_section ~file ~key json;
  Printf.printf "updated %s (%s section)\n%!" file key

(* Standalone experiment: print the tables and splice the section into an
   existing BENCH_profile.json (or start a fresh one), so `make
   bench-mappers` refreshes this section without re-running the full
   profile. *)
let mapper_comparison () =
  section "Mapper comparison: FlowMap (tt) vs priority-cut AIG mapping";
  let rows = mapper_comparison_generated () in
  let circuits = mapper_comparison_circuits () in
  mapper_comparison_print rows circuits;
  splice_json_section "BENCH_profile.json" "mapper_comparison"
    (mapper_comparison_json rows circuits)

(* ------------------------------------ Defect-tolerance survival (A8) *)

(* Survival curve: at each LE defect rate, how often does each placement
   engine still produce a legal assignment? The annealer's greedy
   first-free-site scan collapses once defects cluster; the exact engine
   either places or certifies Unsat. Every outcome is gated internally:
   a placed result must pass Check.Full, every Unsat certificate must
   agree with exhaustive enumeration, the solver must decide every
   instance at this size, and the SA/SAT race must pick the identical
   winner at one and four workers. *)

let dt_gate cond msg =
  if not cond then begin
    Printf.eprintf "defect-tolerance: FAILED: %s\n%!" msg;
    exit 1
  end

type dt_row = {
  dt_rate : float;
  dt_trials : int;
  dt_sa : int;        (* annealer produced a Check.Full-legal placement *)
  dt_sat : int;       (* exact engine placed (always Check.Full-legal) *)
  dt_unsat : int;     (* exact engine certified no assignment exists *)
  dt_gaveup : int;    (* conflict budget exhausted — gated to zero here *)
}

let dt_fixture () =
  let b = Circuits.ex1_small () in
  let arch = Arch.unbounded_k in
  let p = Mapper.prepare b.Circuits.design in
  let plan = Mapper.plan_level p ~arch ~level:1 in
  (Cluster.pack plan ~arch, arch)

let defect_tolerance_rows () =
  let cl, arch = dt_fixture () in
  let width, height = Place.grid_dims cl in
  let rates =
    if !smoke then [ 0.02; 0.08; 0.16 ]
    else [ 0.01; 0.02; 0.05; 0.08; 0.12; 0.16; 0.20 ]
  in
  let trials = if !smoke then 4 else 12 in
  List.map
    (fun rate ->
      let sa = ref 0 and sat = ref 0 and unsat = ref 0 and gaveup = ref 0 in
      for trial = 0 to trials - 1 do
        let dseed = (1000 * trial) + int_of_float (rate *. 1000.0) in
        let defects = Defect.random_les ~seed:dseed ~fraction:rate ~width ~height arch in
        let tag = Printf.sprintf "rate %.2f trial %d" rate trial in
        (match Place.place ~seed:trial ~effort:`Detailed ~defects cl with
         | p ->
           (match Check.place Check.Full ~defects cl p with
            | Ok () -> incr sa
            | Error d ->
              dt_gate false
                (Printf.sprintf "%s: SA placement rejected: %s" tag
                   (Diag.to_string d)))
         | exception Diag.Fail d when d.Diag.code = "defect-unplaceable" -> ());
        (match Sat_place.solve ~seed:trial ~defects cl with
         | Sat_place.Placed p ->
           Place.validate p cl;
           (match Check.place Check.Full ~defects cl p with
            | Ok () -> incr sat
            | Error d ->
              dt_gate false
                (Printf.sprintf "%s: SAT placement rejected: %s" tag
                   (Diag.to_string d)))
         | Sat_place.Unsat_proven ->
           incr unsat;
           dt_gate
             (not (Sat_place.exhaustive_exists ~defects cl))
             (tag ^ ": Unsat certificate contradicted by exhaustive search")
         | Sat_place.Gave_up -> incr gaveup)
      done;
      dt_gate (!gaveup = 0)
        (Printf.sprintf "rate %.2f: solver gave up on %d instance(s) at smoke size"
           rate !gaveup);
      dt_gate (!sat >= !sa)
        (Printf.sprintf
           "rate %.2f: annealer succeeded on %d fabrics the exact engine missed"
           rate (!sa - !sat));
      { dt_rate = rate; dt_trials = trials; dt_sa = !sa; dt_sat = !sat;
        dt_unsat = !unsat; dt_gaveup = !gaveup })
    rates

(* Certification leg: a fabric with every LE dead is Unsat by
   construction; the solver must say so (not give up) and the
   backtracking oracle must agree. *)
let defect_tolerance_unsat_cert () =
  let cl, arch = dt_fixture () in
  let width, height = Place.grid_dims cl in
  let les = ref [] in
  for x = 0 to width - 1 do
    for y = 0 to height - 1 do
      for mb = 0 to arch.Arch.mbs_per_smb - 1 do
        for le = 0 to arch.Arch.les_per_mb - 1 do
          les := (x, y, mb, le) :: !les
        done
      done
    done
  done;
  let hopeless = { Defect.none with Defect.les = List.rev !les } in
  let certified =
    match Sat_place.solve ~defects:hopeless cl with
    | Sat_place.Unsat_proven -> true
    | Sat_place.Placed _ | Sat_place.Gave_up -> false
  in
  dt_gate certified "all-dead fabric not certified Unsat";
  let agrees = not (Sat_place.exhaustive_exists ~defects:hopeless cl) in
  dt_gate agrees "exhaustive search disagrees with the Unsat certificate";
  (certified, agrees)

(* Race leg: the SA-vs-SAT race must pick the identical winner (same
   placement, same arm) at one and four workers — and at the CLI's
   --jobs width — because the winner rule is a pure function of the two
   arms' results. A deterministic failure (e.g. both arms losing on a
   hopeless fabric) must also be identical. *)
let defect_tolerance_race_check () =
  let cl, arch = dt_fixture () in
  let width, height = Place.grid_dims cl in
  let defects = Defect.random_les ~seed:5 ~fraction:0.05 ~width ~height arch in
  let fingerprint (p : Place.t) winner =
    let b = Buffer.create 128 in
    Printf.bprintf b "%s|%.6f|"
      (match winner with `Sa -> "sa" | `Sat -> "sat")
      p.Place.hpwl;
    Array.iter (fun (x, y) -> Printf.bprintf b "%d,%d;" x y) p.Place.smb_xy;
    Buffer.contents b
  in
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        match Sat_place.race ~pool ~count:4 ~seed:3 ~defects cl with
        | p, winner -> fingerprint p winner
        | exception Diag.Fail d -> "failed:" ^ d.Diag.code)
  in
  let widths =
    List.sort_uniq compare [ 1; 4; Pool.resolve_jobs !bench_jobs ]
  in
  let fps = List.map (fun w -> (w, run w)) widths in
  (match fps with
   | (_, f0) :: rest ->
     List.iter
       (fun (w, f) ->
         dt_gate (f = f0)
           (Printf.sprintf "race outcome differs at %d workers" w))
       rest;
     f0
   | [] -> assert false)

let defect_tolerance_json rows (certified, agrees) race_fp =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"design\":\"ex1-4bit\",\"rates\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rate\":%.2f,\"trials\":%d,\"sa_success\":%d,\"sat_success\":%d,\"sat_unsat\":%d,\"sat_gaveup\":%d}"
           r.dt_rate r.dt_trials r.dt_sa r.dt_sat r.dt_unsat r.dt_gaveup))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"unsat_certified\":%b,\"exhaustive_agrees\":%b,\"race_identical_across_jobs\":true,\"race_winner\":%s}"
       certified agrees
       (Nanomap_util.Telemetry.json_string race_fp));
  Buffer.contents buf

let defect_tolerance_print rows =
  let t =
    Ascii_table.create
      [ "Defect rate"; "Trials"; "SA ok"; "SAT ok"; "SAT unsat"; "SAT gave up" ]
  in
  List.iter
    (fun r ->
      Ascii_table.add_row t
        [ Printf.sprintf "%.0f%%" (100.0 *. r.dt_rate);
          string_of_int r.dt_trials;
          string_of_int r.dt_sa;
          string_of_int r.dt_sat;
          string_of_int r.dt_unsat;
          string_of_int r.dt_gaveup ])
    rows;
  Ascii_table.print t

let defect_tolerance () =
  section "Defect tolerance: placement survival vs LE defect rate (SA vs SAT)";
  let rows = defect_tolerance_rows () in
  defect_tolerance_print rows;
  let cert = defect_tolerance_unsat_cert () in
  Printf.printf "all-dead fabric: Unsat certified, exhaustive search agrees\n%!";
  let race_fp = defect_tolerance_race_check () in
  Printf.printf "race outcome identical at 1 and 4 workers (%s)\n%!"
    (match String.index_opt race_fp '|' with
     | Some i -> String.sub race_fp 0 i ^ " arm won"
     | None -> race_fp);
  splice_json_section "BENCH_profile.json" "defect_tolerance"
    (defect_tolerance_json rows cert race_fp)

let profile () =
  section "Flow profile: per-stage spans and cross-layer counters";
  let module Telemetry = Nanomap_util.Telemetry in
  let benches =
    if !smoke then [ Circuits.ex1_small () ] else Circuits.all ()
  in
  let algs =
    match !route_algs with
    | `Both -> [ (Router.Full, "full"); (Router.Incremental, "incremental") ]
    | `Full -> [ (Router.Full, "full") ]
    | `Incremental -> [ (Router.Incremental, "incremental") ]
  in
  let gate cond msg =
    if not cond then begin
      Printf.eprintf "profile: FAILED: %s\n%!" msg;
      exit 1
    end
  in
  let resolved_jobs = Pool.resolve_jobs !bench_jobs in
  Printf.printf "profile: %d worker domain(s)\n%!" resolved_jobs;
  let runs =
    List.concat_map
      (fun (b : Circuits.benchmark) ->
        List.map
          (fun (alg, alg_name) ->
            let options =
              { Flow.default_options with
                Flow.route_alg = alg;
                check_level = !check_level;
                jobs = resolved_jobs }
            in
            let r = Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design in
            let tag = Printf.sprintf "%s [%s]" b.Circuits.name alg_name in
            (match r.Flow.routing with
             | Some rt ->
               gate rt.Router.success (tag ^ ": routing left overused nodes");
               (match Router.validate rt with
                | () -> ()
                | exception Failure msg -> gate false (tag ^ ": " ^ msg)
                | exception Diag.Fail d ->
                  gate false (tag ^ ": " ^ Diag.to_string d))
             | None -> gate false (tag ^ ": flow produced no routing"));
            let tele = r.Flow.telemetry in
            gate (Telemetry.spans tele <> []) (tag ^ ": telemetry has no spans");
            gate
              (List.exists
                 (fun (name, v) ->
                   String.length name >= 6 && String.sub name 0 6 = "route." && v > 0)
                 (Telemetry.counters tele))
              (tag ^ ": telemetry has no route counters");
            Printf.printf "--- %s ---\n%s\n%!" tag (Telemetry.to_table_string tele);
            (b.Circuits.name, alg_name, tele))
          algs)
      benches
  in
  let pops_of tele =
    Option.value ~default:0
      (List.assoc_opt "route.heap_pops" (Nanomap_util.Telemetry.counters tele))
  in
  let total_pops name =
    List.fold_left
      (fun acc (_, alg, tele) -> if alg = name then acc + pops_of tele else acc)
      0 runs
  in
  let comparison =
    if List.length algs < 2 then None
    else begin
      let full = total_pops "full" and inc = total_pops "incremental" in
      let reduction =
        if full > 0 then 100.0 *. (1.0 -. (float_of_int inc /. float_of_int full))
        else 0.0
      in
      Printf.printf
        "router heap traffic: full %d pops, incremental %d pops (%.1f%% \
         reduction)\n%!"
        full inc reduction;
      Some (full, inc, reduction)
    end
  in
  (* Checker-overhead sub-experiment: the same flow with inter-stage
     checkers off vs fast, wall-clock. Quantifies what --check=fast costs
     on top of an unchecked run. *)
  let overheads =
    List.map
      (fun (b : Circuits.benchmark) ->
        let time level =
          let options =
            { Flow.default_options with Flow.check_level = level }
          in
          let t0 = Unix.gettimeofday () in
          let r = Flow.run ~options ~arch:Arch.unbounded_k b.Circuits.design in
          let dt = Unix.gettimeofday () -. t0 in
          ignore r;
          dt
        in
        let off = time Check.Off in
        let fast = time Check.Fast in
        let pct = if off > 0.0 then 100.0 *. ((fast /. off) -. 1.0) else 0.0 in
        Printf.printf
          "checker overhead %-12s off %.3fs  fast %.3fs  (+%.1f%%)\n%!"
          b.Circuits.name off fast pct;
        (b.Circuits.name, off, fast, pct))
      benches
  in
  (* Parallel-scaling sub-experiment: each multicore stage — the fuzz
     campaign, the placement portfolio, the folding-level sweep — at 1, 2
     and 4 workers. Gates on the determinism contract: every worker count
     must produce the identical result (for the fuzz campaign, the whole
     timing-free telemetry JSON), so the rows differ in wall clock only. *)
  let scaling =
    let worker_counts = [ 1; 2; 4 ] in
    let b = if !smoke then Circuits.ex1_small () else Circuits.ex1 () in
    let p = Mapper.prepare b.Circuits.design in
    let arch = Arch.unbounded_k in
    let stage name run =
      let rows =
        List.map
          (fun w ->
            let t0 = Unix.gettimeofday () in
            let fingerprint = run w in
            (w, Unix.gettimeofday () -. t0, fingerprint))
          worker_counts
      in
      (match rows with
       | (_, _, serial_fp) :: rest ->
         List.iter
           (fun (w, _, fp) ->
             gate (fp = serial_fp)
               (Printf.sprintf
                  "parallel_scaling %s: %d-worker result differs from serial"
                  name w))
           rest
       | [] -> ());
      let base = match rows with (_, dt, _) :: _ -> dt | [] -> 1.0 in
      let speedup dt = if dt > 0.0 then base /. dt else 1.0 in
      Printf.printf "parallel scaling %-16s %s\n%!" name
        (String.concat "  "
           (List.map
              (fun (w, dt, _) ->
                Printf.sprintf "-j%d %.2fs (%.2fx)" w dt (speedup dt))
              rows));
      (name, List.map (fun (w, dt, _) -> (w, dt, speedup dt)) rows)
    in
    let fuzz_stage =
      stage "fuzz_campaign" (fun w ->
          let cfg =
            { Fuzz.default_config with
              Fuzz.seed = 42;
              count = (if !smoke then 60 else 200);
              cycles = 20;
              jobs = w }
          in
          let s = Fuzz.run cfg in
          Nanomap_util.Telemetry.to_json_string ~timings:false s.Fuzz.telemetry)
    in
    let plan = Mapper.plan_level p ~arch ~level:1 in
    let cl = Cluster.pack plan ~arch in
    let place_stage =
      stage "place_portfolio" (fun w ->
          Pool.with_pool ~jobs:w (fun pool ->
              let pl = Place.portfolio ~pool ~count:8 ~seed:3 cl in
              Printf.sprintf "%.4f|%s" pl.Place.hpwl
                (String.concat ","
                   (Array.to_list
                      (Array.map
                         (fun (x, y) -> Printf.sprintf "%d.%d" x y)
                         pl.Place.smb_xy)))))
    in
    let sweep_stage =
      stage "folding_sweep" (fun w ->
          Pool.with_pool ~jobs:w (fun pool ->
              String.concat ";"
                (List.map
                   (fun (lvl, pl) ->
                     Printf.sprintf "%d:%d:%d:%.4f" lvl pl.Mapper.stages
                       pl.Mapper.les pl.Mapper.delay_ns)
                   (Mapper.sweep ~pool p ~arch))))
    in
    [ fuzz_stage; place_stage; sweep_stage ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"benchmarks\":[";
  List.iteri
    (fun i (name, alg_name, tele) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"route_alg\":%s,\"telemetry\":%s}"
           (Telemetry.json_string name)
           (Telemetry.json_string alg_name)
           (Telemetry.to_json_string tele)))
    runs;
  Buffer.add_string buf "]";
  (match comparison with
   | Some (full, inc, reduction) ->
     Buffer.add_string buf
       (Printf.sprintf
          ",\"router_comparison\":{\"full_heap_pops\":%d,\"incremental_heap_pops\":%d,\"heap_pops_reduction_pct\":%.1f}"
          full inc reduction)
   | None -> ());
  Buffer.add_string buf ",\"checker_overhead\":[";
  List.iteri
    (fun i (name, off, fast, pct) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"check_off_s\":%.4f,\"check_fast_s\":%.4f,\"overhead_pct\":%.1f}"
           (Telemetry.json_string name) off fast pct))
    overheads;
  Buffer.add_string buf "]";
  Buffer.add_string buf (Printf.sprintf ",\"jobs\":%d" resolved_jobs);
  (* Physical workers cap at the hardware parallelism (Pool's guard
     against GC-barrier stalls from oversubscription), so on a 1-core
     machine every parallel_scaling row is an honest ~1.0x; the speedup
     shows on multi-core hosts like the CI runners. Recording the cap
     makes the rows interpretable either way. *)
  Buffer.add_string buf
    (Printf.sprintf ",\"hardware_domains\":%d"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf ",\"parallel_scaling\":[";
  List.iteri
    (fun i (name, rows) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"stage\":%s,\"runs\":["
           (Telemetry.json_string name));
      List.iteri
        (fun j (w, dt, speedup) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "{\"workers\":%d,\"wall_s\":%.4f,\"speedup_vs_1\":%.2f}" w dt
               speedup))
        rows;
      Buffer.add_string buf "]}")
    scaling;
  Buffer.add_string buf "]";
  let dt_rows = defect_tolerance_rows () in
  defect_tolerance_print dt_rows;
  let dt_cert = defect_tolerance_unsat_cert () in
  let dt_race = defect_tolerance_race_check () in
  Buffer.add_string buf
    (",\"defect_tolerance\":" ^ defect_tolerance_json dt_rows dt_cert dt_race);
  let mc_rows = mapper_comparison_generated () in
  let mc_circuits = mapper_comparison_circuits () in
  mapper_comparison_print mc_rows mc_circuits;
  Buffer.add_string buf
    (",\"mapper_comparison\":" ^ mapper_comparison_json mc_rows mc_circuits);
  Buffer.add_string buf "}";
  let oc = open_out "BENCH_profile.json" in
  Buffer.output_buffer oc buf;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_profile.json (%d run(s))\n%!" (List.length runs)

(* --------------------------------------------- compile-service bench *)

(* Load generator for the compile daemon's scheduling core: enqueue the
   whole job list up front (≥1k submissions, half of them duplicates of
   an earlier design), drain it through [Serve.handle_batch] in
   socket-sized batches, and report throughput, queue latency
   percentiles and the cache hit rate — once on a one-worker pool and
   once on four workers. The engine is driven in-process: the bench
   measures scheduling and caching, not socket syscalls. *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let serve_requests () =
  let total = if !smoke then 120 else 1024 in
  let uniq = total / 2 in
  let rng = Rng.create 11 in
  let params = { Gen_rtl.default_params with Gen_rtl.steps = 10 } in
  let texts =
    Array.init uniq (fun i ->
        let spec = Gen_rtl.random_spec rng params in
        Codec.rtl_to_string (Gen_rtl.build ~name:(Printf.sprintf "load%d" i) spec))
  in
  ( total,
    uniq,
    List.init total (fun i ->
        Proto.Job
          { Proto.id = Printf.sprintf "job%d" i;
            design = Proto.Rtl_text texts.(i mod uniq);
            arch = Arch.default;
            options = Flow.default_options;
            deadline_ms = None }) )

let serve_run ~pool_jobs requests total =
  (* size the cache for the workload: the default 256-entry bound would
     thrash under a 512-design sequential scan (LRU's worst case) and
     measure eviction, not service throughput *)
  let cache = Nanomap_serve.Cache.create ~max_entries:total () in
  let eng = Serve.create_engine ~jobs:pool_jobs ~cache () in
  let batch_size = 64 in
  let rec batches = function
    | [] -> []
    | reqs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | r :: rest ->
          let batch, remaining = take (n - 1) rest in
          (r :: batch, remaining)
      in
      let batch, rest = take batch_size reqs in
      batch :: batches rest
  in
  let t0 = Unix.gettimeofday () in
  let latencies = ref [] in
  let artifacts = ref [] in
  List.iter
    (fun batch ->
      let answers = Serve.handle_batch eng batch in
      let done_at = (Unix.gettimeofday () -. t0) *. 1000.0 in
      List.iter
        (fun responses ->
          (* queue latency of one job: submission was t0 for everything *)
          latencies := done_at :: !latencies;
          List.iter
            (fun r ->
              match r with
              | Proto.Result { id; artifact; _ } ->
                artifacts := (id, artifact) :: !artifacts
              | _ -> ())
            responses)
        answers)
    (batches requests);
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Serve.engine_stats eng in
  Serve.shutdown_engine eng;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  let lookups = stats.Proto.cache_hits + stats.Proto.cache_misses in
  ( wall,
    float_of_int total /. wall,
    percentile sorted 50.0,
    percentile sorted 99.0,
    (if lookups = 0 then 0.0
     else float_of_int stats.Proto.cache_hits /. float_of_int lookups),
    List.rev !artifacts )

(* Overload: offer batches 4x the admission bound and prove the engine
   sheds ([serve/overloaded]) instead of queueing without bound — the
   p99 of what it does admit stays bounded because the queue cannot grow. *)
let serve_overload_run ~pool_jobs ~queue_bound requests =
  let limits = { Serve.default_limits with Serve.max_queued_jobs = queue_bound } in
  let cache = Nanomap_serve.Cache.create () in
  let eng = Serve.create_engine ~jobs:pool_jobs ~cache ~limits () in
  let batch_size = 4 * queue_bound in
  let rec batches = function
    | [] -> []
    | reqs ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | r :: rest ->
          let batch, remaining = take (n - 1) rest in
          (r :: batch, remaining)
      in
      let batch, rest = take batch_size reqs in
      batch :: batches rest
  in
  let t0 = Unix.gettimeofday () in
  let completed = ref 0 and shed = ref 0 and latencies = ref [] in
  List.iter
    (fun batch ->
      let answers = Serve.handle_batch eng batch in
      let done_at = (Unix.gettimeofday () -. t0) *. 1000.0 in
      List.iter
        (fun responses ->
          List.iter
            (fun r ->
              match r with
              | Proto.Result _ ->
                incr completed;
                latencies := done_at :: !latencies
              | Proto.Error_resp { diag; _ }
                when diag.Nanomap_util.Diag.code = "overloaded" ->
                incr shed
              | _ -> ())
            responses)
        answers)
    (batches requests);
  let wall = Unix.gettimeofday () -. t0 in
  let stats = Serve.engine_stats eng in
  Serve.shutdown_engine eng;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  assert (stats.Proto.shed = !shed);
  ( wall,
    !completed,
    !shed,
    percentile sorted 50.0,
    percentile sorted 99.0,
    float_of_int !completed /. wall )

let serve_bench () =
  section "Compile service: throughput, latency, cache hit rate";
  let total, uniq, requests = serve_requests () in
  Printf.printf "%d queued jobs over %d distinct designs (%.0f%% duplicates)\n%!"
    total uniq
    (100.0 *. (1.0 -. float_of_int uniq /. float_of_int total));
  let runs =
    List.map
      (fun pool_jobs ->
        let wall, jps, p50, p99, hit_rate, artifacts =
          serve_run ~pool_jobs requests total
        in
        Printf.printf
          "  jobs=%d: %6.1f jobs/s  p50 %7.1f ms  p99 %7.1f ms  hit rate %.2f \
           (%.1f s)\n%!"
          pool_jobs jps p50 p99 hit_rate wall;
        (pool_jobs, wall, jps, p50, p99, hit_rate, artifacts))
      [ 1; 4 ]
  in
  let identical =
    match runs with
    | [ (_, _, _, _, _, _, a1); (_, _, _, _, _, _, a4) ] ->
      List.length a1 = List.length a4
      && List.for_all2
           (fun (i1, x1) (i4, x4) -> i1 = i4 && Codec.artifact_equal x1 x4)
           a1 a4
    | _ -> false
  in
  Printf.printf "  artifacts identical across pool sizes: %b\n%!" identical;
  let queue_bound = 16 in
  let o_wall, o_completed, o_shed, o_p50, o_p99, o_jps =
    serve_overload_run ~pool_jobs:4 ~queue_bound requests
  in
  Printf.printf
    "  overload (queue bound %d, batches of %d): %d completed, %d shed, p99 \
     %.1f ms, %.1f jobs/s (%.1f s)\n%!"
    queue_bound (4 * queue_bound) o_completed o_shed o_p99 o_jps o_wall;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"queued_jobs\":%d,\"distinct_designs\":%d,\"batch_size\":64,\"runs\":["
       total uniq);
  List.iteri
    (fun i (pool_jobs, wall, jps, p50, p99, hit_rate, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"pool_jobs\":%d,\"wall_s\":%.3f,\"jobs_per_s\":%.2f,\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"cache_hit_rate\":%.4f}"
           pool_jobs wall jps p50 p99 hit_rate))
    runs;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"artifacts_identical_across_jobs\":%b,\"overload\":{\"queue_bound\":%d,\"batch_size\":%d,\"offered_jobs\":%d,\"completed\":%d,\"shed\":%d,\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"completed_per_s\":%.2f}}"
       identical queue_bound (4 * queue_bound) total o_completed o_shed o_p50
       o_p99 o_jps);
  let oc = open_out "BENCH_serve.json" in
  Buffer.output_buffer oc buf;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (%d jobs, 2 pool sizes)\n%!" total

(* ------------------------------- Architecture exploration (item 3) *)

(* The design-space sweep as a CI-gated experiment: run the (smoke or
   full) grid at -j1 and at the requested pool width, require a non-empty
   Pareto-consistent frontier and byte-identical fingerprints, and splice
   the results into BENCH_explore.json. *)
let explore_bench () =
  section "Architecture design-space exploration";
  let module Explore = Nanomap_explore.Explore in
  let grid = if !smoke then Explore.smoke_grid else Explore.default_grid in
  let designs = [ "ex1_small"; "crc8" ] in
  let results = Explore.run ~designs grid in
  print_string (Explore.report_ascii ~designs results);
  let fp1 = Explore.fingerprint ~designs results in
  let jobs = max 4 (Pool.resolve_jobs !bench_jobs) in
  let results_j =
    Pool.with_pool ~jobs (fun pool -> Explore.run ~pool ~designs grid)
  in
  let fpj = Explore.fingerprint ~designs results_j in
  Printf.printf "fingerprint -j1 %s / -j%d %s\n" fp1 jobs fpj;
  if fp1 <> fpj then begin
    Printf.eprintf "explore: fingerprint differs across pool widths\n";
    exit 1
  end;
  let feasible (r : Explore.point_result) =
    match r.Explore.status with Explore.Feasible _ -> true | _ -> false
  in
  if not (List.exists (fun r -> r.Explore.pareto) results) then begin
    Printf.eprintf "explore: empty Pareto frontier\n";
    exit 1
  end;
  (* dominance consistency: no frontier point may dominate another
     frontier point, and every feasible off-frontier point must be
     dominated by some frontier point *)
  let key (r : Explore.point_result) =
    match r.Explore.status with
    | Explore.Feasible w -> (r.Explore.total_area, r.Explore.mean_delay, w)
    | _ -> assert false
  in
  let dominates (a1, d1, w1) (a2, d2, w2) =
    a1 <= a2 && d1 <= d2 && w1 <= w2 && (a1 < a2 || d1 < d2 || w1 < w2)
  in
  let frontier = List.filter (fun r -> r.Explore.pareto) results in
  List.iter
    (fun f ->
      List.iter
        (fun f' ->
          if f != f' && dominates (key f) (key f') then begin
            Printf.eprintf "explore: frontier point dominated\n";
            exit 1
          end)
        frontier)
    frontier;
  List.iter
    (fun r ->
      if feasible r && not r.Explore.pareto
         && not (List.exists (fun f -> dominates (key f) (key r)) frontier)
      then begin
        Printf.eprintf "explore: off-frontier point dominated by nothing\n";
        exit 1
      end)
    results;
  splice_json_section "BENCH_explore.json" "explore"
    (Json.to_string (Explore.to_json ~designs results))

(* ------------------------------------------------------------- driver *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wanted =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          smoke := true;
          false
        end
        else if a = "--route-alg=full" then begin
          route_algs := `Full;
          false
        end
        else if a = "--route-alg=incremental" then begin
          route_algs := `Incremental;
          false
        end
        else if a = "--route-alg=both" then begin
          route_algs := `Both;
          false
        end
        else if String.length a > 8 && String.sub a 0 8 = "--check=" then begin
          (match Check.level_of_string (String.sub a 8 (String.length a - 8)) with
           | Some l -> check_level := l
           | None ->
             Printf.eprintf "bad --check level in %s (off|fast|full)\n" a;
             exit 2);
          false
        end
        else if String.length a > 7 && String.sub a 0 7 = "--jobs=" then begin
          (match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
           | Some n -> bench_jobs := n
           | None ->
             Printf.eprintf "bad --jobs count in %s (0 = auto)\n" a;
             exit 2);
          false
        end
        else true)
      args
  in
  let all_experiments =
    [ ("table1", table1); ("table2", table2); ("fig1", fig1); ("fig35", fig35);
      ("interconnect", interconnect); ("tradeoff", tradeoff);
      ("ablation-fds", ablation_fds); ("ablation-place", ablation_place);
      ("ablation-ffs", ablation_ffs); ("arch-geometry", arch_geometry);
      ("energy", energy); ("extended", extended); ("speed", speed);
      ("mapper-comparison", mapper_comparison);
      ("defect-tolerance", defect_tolerance); ("serve", serve_bench);
      ("explore", explore_bench); ("profile", profile) ]
  in
  let to_run =
    match wanted with
    | [] -> all_experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s\n" n;
            None)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) to_run;
  Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
