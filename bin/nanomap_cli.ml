(* nanomap — command-line driver for the NanoMap flow.

   Subcommands:
     map    run the full flow on a built-in benchmark or a BLIF file
     stats  print the circuit parameters the folding-level math uses
     sweep  print the folding-level design-space table
     list   list the built-in benchmark circuits *)

open Cmdliner

module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Flow = Nanomap_flow.Flow
module Circuits = Nanomap_circuits.Circuits
module Bitstream = Nanomap_bitstream.Bitstream
module Router = Nanomap_route.Router
module Ascii_table = Nanomap_util.Ascii_table
module Check = Nanomap_flow.Check
module Defect = Nanomap_arch.Defect
module Sat_place = Nanomap_place.Sat_place
module Diag = Nanomap_util.Diag
module Explore = Nanomap_explore.Explore
module Fuzz = Nanomap_verify.Fuzz
module Gen_rtl = Nanomap_verify.Gen_rtl
module Pool = Nanomap_util.Pool

let setup_logs level =
  Fmt_tty.setup_std_outputs ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

(* ----------------------------------------------------- design loading *)

let load_design circuit blif vhdl =
  match circuit, blif, vhdl with
  | Some name, None, None ->
    (try Ok (Circuits.by_name name).Circuits.design
     with Not_found -> Error (`Msg ("unknown benchmark: " ^ name)))
  | None, Some path, None ->
    (try Ok (Nanomap_blif.Blif_rtl.design_of_file path) with
     | Nanomap_blif.Blif.Parse_error (line, msg) ->
       Error (`Msg (Printf.sprintf "%s:%d: %s" path line msg))
     | Failure msg | Sys_error msg -> Error (`Msg msg))
  | None, None, Some path ->
    (try Ok (Nanomap_vhdl.Vhdl.design_of_file path) with
     | Nanomap_vhdl.Vhdl.Parse_error (line, msg) ->
       Error (`Msg (Printf.sprintf "%s:%d: %s" path line msg))
     | Failure msg | Sys_error msg -> Error (`Msg msg))
  | None, None, None -> Error (`Msg "need --circuit NAME, --blif FILE or --vhdl FILE")
  | _ -> Error (`Msg "give exactly one of --circuit, --blif, --vhdl")

let circuit_arg =
  Arg.(value & opt (some string) None
       & info [ "c"; "circuit" ] ~docv:"NAME" ~doc:"Built-in benchmark circuit.")

let blif_arg =
  Arg.(value & opt (some file) None
       & info [ "blif" ] ~docv:"FILE" ~doc:"Gate-level BLIF input file.")

let vhdl_arg =
  Arg.(value & opt (some file) None
       & info [ "vhdl" ] ~docv:"FILE" ~doc:"RTL-VHDL input file (subset).")

let k_arg =
  Arg.(value & opt (some int) (Some 16)
       & info [ "k" ] ~docv:"N"
           ~doc:"NRAM configuration sets per element (0 = unbounded).")

let arch_of_k k =
  match k with
  | Some 0 | None -> Arch.unbounded_k
  | Some n -> Arch.with_num_reconf Arch.default (Some n)

let verbosity =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable informational logging.")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the parallel stages (folding-level \
                 sweep, placement portfolio, fuzz case evaluation). 0 \
                 (default) = auto: the machine's recommended domain count, \
                 capped at 8. Results are byte-identical for every $(docv); \
                 only the wall clock changes.")

(* ------------------------------------------------------------- map cmd *)

let objective_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "at" -> Ok `At
    | "delay" -> Ok `Delay
    | "area" -> Ok `Area
    | "both" -> Ok `Both
    | "none" | "no-folding" -> Ok `None
    | _ -> Error (`Msg "objective must be at|delay|area|both|none")
  in
  let print fmt o =
    Format.pp_print_string fmt
      (match o with
       | `At -> "at" | `Delay -> "delay" | `Area -> "area" | `Both -> "both"
       | `None -> "none")
  in
  Arg.conv (parse, print)

let check_conv =
  let parse s =
    match Check.level_of_string (String.lowercase_ascii s) with
    | Some l -> Ok l
    | None -> Error (`Msg "check must be off|fast|full")
  in
  let print fmt l = Format.pp_print_string fmt (Check.string_of_level l) in
  Arg.conv (parse, print)

let route_alg_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "full" -> Ok Router.Full
    | "incremental" | "inc" -> Ok Router.Incremental
    | _ -> Error (`Msg "route-alg must be full|incremental")
  in
  let print fmt a =
    Format.pp_print_string fmt
      (match a with Router.Full -> "full" | Router.Incremental -> "incremental")
  in
  Arg.conv (parse, print)

let mapper_conv =
  let parse s =
    match Mapper.mapper_of_string (String.lowercase_ascii s) with
    | Some m -> Ok m
    | None -> Error (`Msg "mapper must be tt|aig")
  in
  let print fmt m = Format.pp_print_string fmt (Mapper.string_of_mapper m) in
  Arg.conv (parse, print)

let placer_conv =
  let parse s =
    match Sat_place.strategy_of_string (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None -> Error (`Msg "placer must be sa|sat|race")
  in
  let print fmt p = Format.pp_print_string fmt (Sat_place.strategy_to_string p) in
  Arg.conv (parse, print)

let run_map circuit blif vhdl objective area delay level logical pipelined seed
    route_alg check_level defects_file bitstream_out dump_blif trace json_out
    verbose k jobs portfolio mapper aig_effort placer =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  let defects =
    match defects_file with
    | None -> Ok Defect.none
    | Some path ->
      (try Ok (Defect.of_file ~arch:(arch_of_k k) path) with
       | Diag.Fail d -> Error (Diag.to_string d)
       | Sys_error msg -> Error msg)
  in
  match load_design circuit blif vhdl, defects with
  | Error (`Msg m), _ | _, Error m -> prerr_endline ("error: " ^ m); 1
  | Ok design, Ok defects ->
    let obj =
      match level, pipelined, area with
      | Some l, _, _ -> Flow.Fixed_level l
      | None, true, Some a -> Flow.Pipelined_delay_min a
      | None, true, None ->
        prerr_endline "error: --pipelined needs --area"; exit 1
      | None, false, _ ->
        (match objective, area, delay with
         | `None, _, _ -> Flow.No_folding
         | `At, _, _ -> Flow.At_min
         | `Delay, a, _ -> Flow.Delay_min a
         | `Area, _, d -> Flow.Area_min d
         | `Both, Some a, Some d -> Flow.Both (a, d)
         | `Both, _, _ ->
           prerr_endline "error: --objective both needs --area and --delay";
           exit 1)
    in
    let options =
      { Flow.default_options with
        Flow.objective = obj;
        physical = not logical;
        seed;
        route_alg;
        check_level;
        defects;
        mapper;
        aig_effort = max 1 (min 3 aig_effort);
        jobs = Pool.resolve_jobs jobs;
        portfolio = max 1 portfolio;
        placer }
    in
    (match Flow.run_result ~options ~arch:(arch_of_k k) design with
     | Error d -> prerr_endline ("error: " ^ Diag.to_string d); 2
     | Ok report ->
       Format.printf "%a@." Flow.pp_report report;
       (match report.Flow.routing with
        | Some r ->
          Format.printf "routing: %s, %d nets, wirelength %d, channel factor x%d@."
            (if r.Router.success then "legal" else "CONGESTED")
            r.Router.total_nets r.Router.wirelength report.Flow.channel_factor
        | None -> ());
       (match dump_blif with
        | Some prefix ->
          Array.iter
            (fun (pl : Mapper.plane_plan) ->
              let path =
                if Array.length report.Flow.plan.Mapper.planes = 1 then prefix
                else Printf.sprintf "%s.plane%d" prefix pl.Mapper.plane_index
              in
              Nanomap_techmap.Lut_blif.write_file
                ~name:(Printf.sprintf "%s_plane%d" report.Flow.design_name
                         pl.Mapper.plane_index)
                pl.Mapper.network path;
              Format.printf "mapped LUT network -> %s@." path)
            report.Flow.plan.Mapper.planes
        | None -> ());
       (match bitstream_out, report.Flow.bitstream with
        | Some path, Some bs ->
          Bitstream.write_file bs path;
          Format.printf "bitstream: %d bytes -> %s@." (Bytes.length bs.Bitstream.bytes)
            path
        | Some _, None ->
          Format.printf "bitstream: not generated (logical-only run)@."
        | None, _ -> ());
       if trace then
         print_string
           (Nanomap_util.Telemetry.to_table_string report.Flow.telemetry);
       (match json_out with
        | Some path ->
          let oc = open_out path in
          output_string oc
            (Nanomap_util.Telemetry.to_json_string report.Flow.telemetry);
          close_out oc;
          Format.printf "telemetry: -> %s@." path
        | None -> ());
       0
     | exception Mapper.No_feasible_mapping msg ->
       prerr_endline ("no feasible mapping: " ^ msg); 1)

let map_cmd =
  let area =
    Arg.(value & opt (some int) None
         & info [ "area" ] ~docv:"LES" ~doc:"Area constraint in logic elements.")
  in
  let delay =
    Arg.(value & opt (some float) None
         & info [ "delay" ] ~docv:"NS" ~doc:"Delay constraint in nanoseconds.")
  in
  let level =
    Arg.(value & opt (some int) None
         & info [ "level" ] ~docv:"P" ~doc:"Force folding level $(docv).")
  in
  let objective =
    Arg.(value & opt objective_conv `At
         & info [ "o"; "objective" ] ~docv:"OBJ"
             ~doc:"Optimization objective: at|delay|area|both|none.")
  in
  let logical =
    Arg.(value & flag
         & info [ "logical" ] ~doc:"Stop after clustering (skip place & route).")
  in
  let pipelined =
    Arg.(value & flag
         & info [ "pipelined" ]
             ~doc:"Planes stay resident simultaneously (Eq. 4); needs --area.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let route_alg =
    Arg.(value & opt route_alg_conv Router.Incremental
         & info [ "route-alg" ] ~docv:"ALG"
             ~doc:"Router variant: $(b,full) (classic PathFinder, every net \
                   re-routed each iteration) or $(b,incremental) (A* lookahead \
                   + incremental rip-up; default).")
  in
  let check_level =
    Arg.(value & opt check_conv Check.Fast
         & info [ "check" ] ~docv:"LEVEL"
             ~doc:"Inter-stage invariant checking: $(b,off), $(b,fast) \
                   (spot checks; default) or $(b,full) (exhaustive re-validation \
                   of every stage hand-off). Violations abort with exit code 2 \
                   and a stage-naming diagnostic.")
  in
  let defects =
    Arg.(value & opt (some file) None
         & info [ "defects" ] ~docv:"FILE"
             ~doc:"Defect map of known-bad fabric resources to place and route \
                   around. Lines: $(b,le X Y MB LE) (one defective logic \
                   element) or $(b,track KIND N) (the $(i,N)-th wire of kind \
                   direct|len1|len4|global); $(b,#) starts a comment.")
  in
  let bitstream_out =
    Arg.(value & opt (some string) None
         & info [ "bitstream" ] ~docv:"FILE" ~doc:"Write the configuration bitmap.")
  in
  let dump_blif =
    Arg.(value & opt (some string) None
         & info [ "dump-blif" ] ~docv:"FILE"
             ~doc:"Write the mapped LUT network(s) as BLIF.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the per-stage telemetry table (timings, counters, \
                   events) after the run.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the run telemetry as JSON to $(docv).")
  in
  let portfolio =
    Arg.(value & opt int 1
         & info [ "portfolio" ] ~docv:"N"
             ~doc:"Anneal $(docv) independent detailed-placement seeds and \
                   keep the best-HPWL legal result. Part of the result \
                   (unlike --jobs, which only parallelizes the work).")
  in
  let mapper =
    Arg.(value & opt mapper_conv Mapper.Truth_table
         & info [ "mapper" ] ~docv:"M"
             ~doc:"Technology mapper: $(b,tt) (FlowMap over the truth-table \
                   gate netlist; default) or $(b,aig) (priority-cut mapping \
                   over the strashed And-Inverter Graph — near-linear, \
                   handles thousand-LUT planes).")
  in
  let aig_effort =
    Arg.(value & opt int 2
         & info [ "aig-effort" ] ~docv:"N"
             ~doc:"AIG mapper effort 1..3: priority-cut budget and \
                   area-recovery rounds (only with --mapper=aig).")
  in
  let placer =
    Arg.(value & opt placer_conv Sat_place.Sa
         & info [ "placer" ] ~docv:"P"
             ~doc:"Detailed-placement engine: $(b,sa) (simulated-annealing \
                   portfolio; default), $(b,sat) (exact CNF assignment via \
                   the embedded CDCL solver, annealed afterwards for \
                   wirelength — proves unplaceability on heavily defective \
                   fabrics), or $(b,race) (run both, keep the legal result \
                   with the lower wirelength).")
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Run the NanoMap flow on a design")
    Term.(
      const run_map $ circuit_arg $ blif_arg $ vhdl_arg $ objective $ area $ delay
      $ level $ logical $ pipelined $ seed $ route_alg $ check_level $ defects
      $ bitstream_out $ dump_blif $ trace $ json_out $ verbosity $ k_arg
      $ jobs_arg $ portfolio $ mapper $ aig_effort $ placer)

(* ----------------------------------------------------------- stats cmd *)

let run_stats circuit blif vhdl verbose =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match load_design circuit blif vhdl with
  | Error (`Msg m) -> prerr_endline ("error: " ^ m); 1
  | Ok design ->
    let p = Mapper.prepare design in
    Format.printf
      "@[<v>design: %s@ planes: %d@ LUTs: %d (max plane %d)@ depth: %d@ \
       flip-flops: %d@ state bits: %d@]@."
      (Nanomap_rtl.Rtl.name design)
      p.Mapper.num_planes p.Mapper.total_luts p.Mapper.lut_max p.Mapper.depth_max
      p.Mapper.total_ffs p.Mapper.base_ff_bits;
    0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the circuit parameters of a design")
    Term.(const run_stats $ circuit_arg $ blif_arg $ vhdl_arg $ verbosity)

(* ----------------------------------------------------------- sweep cmd *)

let run_sweep circuit blif vhdl verbose k =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match load_design circuit blif vhdl with
  | Error (`Msg m) -> prerr_endline ("error: " ^ m); 1
  | Ok design ->
    let arch = arch_of_k k in
    let p = Mapper.prepare design in
    let t =
      Ascii_table.create
        [ "Level"; "Stages"; "#LEs (sched)"; "Delay (ns)"; "AT"; "Configs" ]
    in
    List.iter
      (fun (lvl, plan) ->
        Ascii_table.add_row t
          [ string_of_int lvl;
            string_of_int plan.Mapper.stages;
            string_of_int plan.Mapper.les;
            Printf.sprintf "%.2f" plan.Mapper.delay_ns;
            Printf.sprintf "%.0f"
              (float_of_int plan.Mapper.les *. plan.Mapper.delay_ns);
            string_of_int plan.Mapper.configs_used ])
      (Mapper.sweep p ~arch);
    (match Mapper.no_folding p ~arch with
     | nf ->
       Ascii_table.add_separator t;
       Ascii_table.add_row t
         [ "none"; "1"; string_of_int nf.Mapper.les;
           Printf.sprintf "%.2f" nf.Mapper.delay_ns;
           Printf.sprintf "%.0f" (float_of_int nf.Mapper.les *. nf.Mapper.delay_ns);
           string_of_int nf.Mapper.configs_used ]
     | exception _ -> ());
    Ascii_table.print t;
    0

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Print the folding-level design space of a design")
    Term.(const run_sweep $ circuit_arg $ blif_arg $ vhdl_arg $ verbosity $ k_arg)

(* ---------------------------------------------------------- disasm cmd *)

let run_disasm path limit =
  match Bitstream.read_file path with
  | configs ->
    Printf.printf "%s: %d configurations
" path (Array.length configs);
    Array.iteri
      (fun i (c : Bitstream.config) ->
        if i < limit then begin
          Printf.printf "config %d: %d LEs, %d switches
" i (List.length c.Bitstream.les)
            (List.length c.Bitstream.switches);
          List.iteri
            (fun j (le : Bitstream.le_config) ->
              if j < 8 then
                Printf.printf "  LE smb%d/mb%d/le%d lut=0x%Lx inputs=%d
"
                  le.Bitstream.le_smb le.Bitstream.le_mb le.Bitstream.le_index
                  le.Bitstream.truth_table le.Bitstream.used_inputs)
            c.Bitstream.les;
          if List.length c.Bitstream.les > 8 then
            Printf.printf "  ... %d more LEs
" (List.length c.Bitstream.les - 8)
        end)
      configs;
    0
  | exception Bitstream.Corrupt msg ->
    prerr_endline ("corrupt bitstream: " ^ msg); 1
  | exception Sys_error msg -> prerr_endline msg; 1

let disasm_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Bitstream file written by map --bitstream.")
  in
  let limit =
    Arg.(value & opt int 4
         & info [ "configs" ] ~docv:"N" ~doc:"Print at most $(docv) configurations.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Inspect a configuration bitmap")
    Term.(const run_disasm $ path $ limit)

(* --------------------------------------------------------- emulate cmd *)

let run_emulate circuit blif vhdl level cycles seed verbose =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match load_design circuit blif vhdl with
  | Error (`Msg m) -> prerr_endline ("error: " ^ m); 1
  | Ok design ->
    let arch = Arch.unbounded_k in
    let p = Mapper.prepare design in
    let plan =
      match level with
      | Some l -> Mapper.plan_level p ~arch ~level:l
      | None -> Mapper.at_min p ~arch
    in
    let cluster = Nanomap_cluster.Cluster.pack plan ~arch in
    let emu = Nanomap_emu.Emulator.create design plan cluster in
    let sim = Nanomap_rtl.Rtl.sim_create design in
    let rng = Nanomap_util.Rng.create seed in
    let mismatches = ref 0 in
    for _ = 1 to cycles do
      let stimulus =
        List.map
          (fun (s : Nanomap_rtl.Rtl.signal) ->
            ( s.Nanomap_rtl.Rtl.name,
              Nanomap_util.Rng.int rng (1 lsl min s.Nanomap_rtl.Rtl.width 16) ))
          (Nanomap_rtl.Rtl.inputs design)
      in
      let expected = Nanomap_rtl.Rtl.sim_cycle sim stimulus in
      let got = Nanomap_emu.Emulator.macro_cycle emu stimulus in
      List.iter
        (fun (n, v) ->
          if List.assoc_opt n got <> Some v then incr mismatches)
        expected
    done;
    Printf.printf
      "emulated %d macro cycles at folding level %d (%d stages): %d mismatches vs        the RTL simulator
"
      cycles plan.Mapper.level plan.Mapper.stages !mismatches;
    if !mismatches = 0 then 0 else 1

let emulate_cmd =
  let level =
    Arg.(value & opt (some int) None
         & info [ "level" ] ~docv:"P" ~doc:"Folding level (default: AT-optimal).")
  in
  let cycles =
    Arg.(value & opt int 200 & info [ "cycles" ] ~docv:"N" ~doc:"Macro cycles to run.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Stimulus seed.")
  in
  Cmd.v
    (Cmd.info "emulate"
       ~doc:"Emulate the folded fabric against the RTL simulator (self-check)")
    Term.(
      const run_emulate $ circuit_arg $ blif_arg $ vhdl_arg $ level $ cycles $ seed
      $ verbosity)

(* ------------------------------------------------------------ fuzz cmd *)

let run_fuzz seed count cycles steps max_width max_regs max_inputs folding
    mapper corpus trace verbose jobs =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match Fuzz.fold_of_string folding with
  | None ->
    prerr_endline "error: --folding must be auto|none|LEVEL";
    1
  | Some fold ->
    let cfg =
      { Fuzz.default_config with
        Fuzz.seed;
        count;
        cycles;
        fold;
        mapper;
        corpus_dir = corpus;
        jobs = Pool.resolve_jobs jobs;
        gen =
          { Gen_rtl.steps;
            max_width;
            max_regs;
            max_inputs } }
    in
    let summary = Fuzz.run cfg in
    Fuzz.print_summary stdout summary;
    if trace then
      print_string (Nanomap_util.Telemetry.to_table_string summary.Fuzz.telemetry);
    if summary.Fuzz.failures = [] && summary.Fuzz.flow_errors = [] then 0 else 1

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let count =
    Arg.(value & opt int 50
         & info [ "count" ] ~docv:"N" ~doc:"Number of random designs.")
  in
  let cycles =
    Arg.(value & opt int 40
         & info [ "cycles" ] ~docv:"N" ~doc:"Macro cycles of stimulus per design.")
  in
  let steps =
    Arg.(value & opt int Gen_rtl.default_params.Gen_rtl.steps
         & info [ "steps" ] ~docv:"N" ~doc:"Build steps per random design.")
  in
  let max_width =
    Arg.(value & opt int Gen_rtl.default_params.Gen_rtl.max_width
         & info [ "max-width" ] ~docv:"N" ~doc:"Maximum bus width.")
  in
  let max_regs =
    Arg.(value & opt int Gen_rtl.default_params.Gen_rtl.max_regs
         & info [ "max-regs" ] ~docv:"N" ~doc:"Maximum registers per design.")
  in
  let max_inputs =
    Arg.(value & opt int Gen_rtl.default_params.Gen_rtl.max_inputs
         & info [ "max-inputs" ] ~docv:"N" ~doc:"Maximum primary inputs.")
  in
  let folding =
    Arg.(value & opt string "auto"
         & info [ "folding" ] ~docv:"F"
             ~doc:"Folding objective per design: $(b,auto) (area-delay \
                   product), $(b,none), or a fixed level.")
  in
  let mapper =
    Arg.(value & opt mapper_conv Mapper.Truth_table
         & info [ "mapper" ] ~docv:"M"
             ~doc:"Technology mapper every case runs through: $(b,tt) \
                   (default) or $(b,aig). The AIG differential gate runs \
                   the same campaign with both.")
  in
  let corpus =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Write shrunk counterexamples to $(docv) (created if needed).")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Print the campaign telemetry table.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random designs through the whole flow, \
             cross-checked at four levels (RTL sim, LUT networks, fabric \
             emulator, decoded-bitstream replay)")
    Term.(
      const run_fuzz $ seed $ count $ cycles $ steps $ max_width $ max_regs
      $ max_inputs $ folding $ mapper $ corpus $ trace $ verbosity $ jobs_arg)

(* ----------------------------------------------------------- serve cmd *)

module Serve = Nanomap_serve.Serve
module Proto = Nanomap_serve.Proto
module Codec = Nanomap_flow.Codec

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of the compile daemon.")

let run_serve socket stdio cache_dir cache_entries deadline_ms max_queue jobs
    verbose =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  let cache = Nanomap_serve.Cache.create ?dir:cache_dir ~max_entries:cache_entries () in
  let limits =
    { Serve.default_limits with
      Serve.default_deadline_ms = deadline_ms;
      max_queued_jobs = max_queue }
  in
  let eng = Serve.create_engine ~jobs ~cache ~limits () in
  let finish code = Serve.shutdown_engine eng; code in
  match socket, stdio with
  | _, true -> Serve.serve_channels eng stdin stdout; finish 0
  | Some path, false ->
    Logs.info (fun m -> m "listening on %s" path);
    Serve.serve_unix ~handle_sigterm:true eng ~socket_path:path;
    finish 0
  | None, false ->
    prerr_endline "error: need --socket PATH or --stdio";
    finish 1

let serve_cmd =
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve one client over stdin/stdout instead of a socket.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist compiled artifacts under $(docv) (content-addressed; \
                   survives restarts).")
  in
  let cache_entries =
    Arg.(value & opt int 256
         & info [ "cache-entries" ] ~docv:"N"
             ~doc:"In-memory cache bound (LRU eviction past $(docv) entries).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-job compute budget: jobs without their own \
                   $(b,deadline_ms) are cancelled at the next stage boundary \
                   past $(docv) milliseconds ($(b,serve/timeout)).")
  in
  let max_queue =
    Arg.(value & opt int Serve.default_limits.Serve.max_queued_jobs
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Admission bound: at most $(docv) unique compile misses \
                   per batch; the rest are shed with $(b,serve/overloaded) \
                   and a retry hint (0 = unbounded).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent compile daemon (line-framed JSON jobs, \
             content-addressed artifact cache)")
    Term.(
      const run_serve $ socket_arg $ stdio $ cache_dir $ cache_entries
      $ deadline_ms $ max_queue $ jobs_arg $ verbosity)

(* ---------------------------------------------------------- submit cmd *)

let fold_objective = function
  | "auto" -> Some Flow.At_min
  | "none" -> Some Flow.No_folding
  | s -> Option.map (fun l -> Flow.Fixed_level l) (int_of_string_opt s)

let run_submit socket circuit blif vhdl folding mapper seed gen_count dup
    gen_seed min_hit_rate shutdown retries backoff_ms deadline_ms verbose =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match socket with
  | None -> prerr_endline "error: need --socket PATH"; 1
  | Some socket_path ->
    match fold_objective folding with
    | None -> prerr_endline "error: --folding must be auto|none|LEVEL"; 1
    | Some objective ->
      let options = { Flow.default_options with Flow.objective; mapper; seed } in
      let jobs =
        if gen_count > 0 then begin
          (* load-generator mode: [gen_count] submissions over a smaller set
             of distinct random designs, so a [dup] fraction of the traffic
             repeats content the daemon has already compiled *)
          let uniq =
            max 1 (int_of_float (Float.round (float_of_int gen_count *. (1.0 -. dup))))
          in
          let rng = Nanomap_util.Rng.create gen_seed in
          let params = { Gen_rtl.default_params with Gen_rtl.steps = 14 } in
          let designs =
            Array.init uniq (fun i ->
                let spec = Gen_rtl.random_spec rng params in
                Codec.rtl_to_string (Gen_rtl.build ~name:(Printf.sprintf "gen%d" i) spec))
          in
          List.init gen_count (fun i ->
              { Proto.id = Printf.sprintf "job%d" i;
                design = Proto.Rtl_text designs.(i mod uniq);
                arch = Arch.default;
                options; deadline_ms })
        end
        else
          match circuit, blif, vhdl with
          | Some name, None, None ->
            [ { Proto.id = "job0"; design = Proto.Circuit name;
                arch = Arch.default; options; deadline_ms } ]
          | _ ->
            (match load_design circuit blif vhdl with
             | Error (`Msg m) -> prerr_endline ("error: " ^ m); []
             | Ok design ->
               [ { Proto.id = "job0";
                   design = Proto.Rtl_text (Codec.rtl_to_string design);
                   arch = Arch.default; options; deadline_ms } ])
      in
      if jobs = [] then 1
      else begin
        match Serve.Client.connect ~retries ~backoff_ms ~socket_path () with
        | exception Diag.Fail d when d.Diag.stage = "serve" && d.Diag.code = "unreachable" ->
          (* exit 2: "the daemon is not there" is a different failure class
             than "a job failed" (exit 1) — scripts branch on it *)
          prerr_endline ("error: " ^ Diag.to_string d);
          2
        | client ->
        let finally code =
          if shutdown then begin
            Serve.Client.send client Proto.Shutdown;
            match Serve.Client.recv client with
            | Proto.Bye -> ()
            | _ -> prerr_endline "warning: no bye on shutdown"
          end;
          Serve.Client.close client;
          code
        in
        List.iter (fun j -> Serve.Client.send client (Proto.Job j)) jobs;
        let failures = ref 0 and hits = ref 0 and total = ref 0 in
        List.iter
          (fun (j : Proto.job) ->
            incr total;
            let events, terminator = Serve.Client.recv_result client in
            if verbose then
              List.iter
                (fun r ->
                  match r with
                  | Proto.Event { stage_name; ms; _ } ->
                    Printf.printf "# %s %s %.1fms\n" j.Proto.id stage_name ms
                  | _ -> ())
                events;
            match terminator with
            | Proto.Result { id; key; cached; artifact } ->
              if cached then incr hits;
              Printf.printf "%s %s %s %s area=%d LEs delay=%.2f ns\n" id
                (Nanomap_util.Hashing.short key)
                (if cached then "hit " else "miss")
                artifact.Codec.design_name artifact.Codec.area_les
                artifact.Codec.delay_model_ns
            | Proto.Error_resp { id; diag } ->
              incr failures;
              Printf.printf "%s failed: %s\n"
                (Option.value id ~default:"?") (Diag.to_string diag)
            | _ -> incr failures)
          jobs;
        let rate =
          if !total = 0 then 0.0 else float_of_int !hits /. float_of_int !total
        in
        Printf.printf "%d jobs, %d failed, cache hit rate %.2f\n" !total !failures rate;
        let ok = !failures = 0 && rate >= min_hit_rate in
        finally (if ok then 0 else 1)
      end

let submit_cmd =
  let folding =
    Arg.(value & opt string "auto"
         & info [ "folding" ] ~docv:"F"
             ~doc:"Folding objective: $(b,auto), $(b,none), or a fixed level.")
  in
  let mapper =
    Arg.(value & opt mapper_conv Mapper.Truth_table
         & info [ "mapper" ] ~docv:"M" ~doc:"Technology mapper: tt or aig.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Flow seed.")
  in
  let gen_count =
    Arg.(value & opt int 0
         & info [ "gen" ] ~docv:"N"
             ~doc:"Load-generator mode: submit $(docv) random designs instead \
                   of one named design.")
  in
  let dup =
    Arg.(value & opt float 0.5
         & info [ "dup" ] ~docv:"F"
             ~doc:"With --gen: fraction of submissions that repeat an earlier \
                   design (cache-hit traffic).")
  in
  let gen_seed =
    Arg.(value & opt int 7
         & info [ "gen-seed" ] ~docv:"N" ~doc:"With --gen: generator seed.")
  in
  let min_hit_rate =
    Arg.(value & opt float 0.0
         & info [ "min-hit-rate" ] ~docv:"R"
             ~doc:"Exit nonzero unless the observed cache hit rate reaches \
                   $(docv) (smoke-test assertion).")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ] ~doc:"Ask the daemon to exit after the batch.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a refused/missing daemon socket $(docv) times on a \
                   deterministic jittered backoff before giving up with \
                   $(b,serve/unreachable) (exit status 2).")
  in
  let backoff_ms =
    Arg.(value & opt int 100
         & info [ "backoff-ms" ] ~docv:"MS"
             ~doc:"Base delay of the connect retry backoff (doubles per \
                   attempt, capped, jittered).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Attach a per-job compute budget: the daemon cancels the \
                   job past $(docv) milliseconds ($(b,serve/timeout)).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit compile jobs to a running daemon and print the results")
    Term.(
      const run_submit $ socket_arg $ circuit_arg $ blif_arg $ vhdl_arg
      $ folding $ mapper $ seed $ gen_count $ dup $ gen_seed $ min_hit_rate
      $ shutdown $ retries $ backoff_ms $ deadline_ms $ verbosity)

(* ------------------------------------------------------ cache-check cmd *)

let run_cache_check dir =
  let module Cache = Nanomap_serve.Cache in
  (* create scrubs orphaned temp files as a side effect *)
  let cache = Cache.create ~dir () in
  let r = Cache.verify cache in
  Printf.printf "scrubbed %d orphaned temp file(s)\n" (Cache.scrubbed cache);
  Printf.printf "checked %d entrie(s): %d ok, %d corrupt removed\n" r.Cache.checked
    r.Cache.ok r.Cache.corrupt;
  if r.Cache.corrupt = 0 then 0 else 1

let cache_check_cmd =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"The daemon's on-disk artifact cache.")
  in
  Cmd.v
    (Cmd.info "cache-check"
       ~doc:"Scrub and integrity-check an on-disk artifact cache: remove \
             orphaned temp files, digest-verify every entry, delete corrupt \
             ones (exit 1 if any entry was corrupt)")
    Term.(const run_cache_check $ dir)

(* ----------------------------------------------------------- chaos cmd *)

(* The service-level chaos driver: one process hammering a live daemon
   with a deterministic mix of well-formed load and hostile traffic, then
   checking the daemon (a) survived, (b) answered every fault with its
   typed [serve/*] rejection, (c) still produces byte-identical artifacts
   afterwards. The CI chaos-smoke target runs this against a daemon with
   a small queue bound and a default deadline. *)

module Chaos = Nanomap_flow.Fault.Chaos

let run_chaos socket total seed min_complete verbose =
  setup_logs (if verbose then Some Logs.Info else Some Logs.Warning);
  match socket with
  | None -> prerr_endline "error: need --socket PATH"; 1
  | Some socket_path ->
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
    (* -------- hostile raw traffic: garbage frames, abrupt disconnect *)
    let with_raw f =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f (Unix.in_channel_of_descr fd) (Unix.out_channel_of_descr fd))
    in
    let garbage_round round =
      with_raw (fun ic oc ->
          let frames = Chaos.garbage_frames ~seed:(seed + round) ~count:10 in
          List.iter (fun s -> output_string oc s; output_char oc '\n') frames;
          flush oc;
          List.iter
            (fun frame ->
              match input_line ic with
              | exception End_of_file ->
                fail "daemon closed the connection on garbage frame %S" frame
              | line -> (
                match Proto.response_of_frame line with
                | Ok (Proto.Error_resp { diag; _ })
                  when diag.Diag.stage = "serve"
                       && (diag.Diag.code = "bad-json"
                          || diag.Diag.code = "bad-request") ->
                  ()
                | _ -> fail "garbage frame %S not rejected as serve/bad-*" frame))
            frames)
    in
    let abrupt_disconnect () =
      (* half a job line, no newline, then close: the daemon must record
         serve/truncated and keep serving everyone else *)
      with_raw (fun _ic oc ->
          output_string oc "{\"type\":\"job\",\"id\":\"cut";
          flush oc)
    in
    (* ------------------------------------------- the mixed main load *)
    let rng = Nanomap_util.Rng.create seed in
    let params = { Gen_rtl.default_params with Gen_rtl.steps = 8 } in
    let uniq = max 1 (total / 2) in
    let designs =
      Array.init uniq (fun i ->
          let spec = Gen_rtl.random_spec rng params in
          Codec.rtl_to_string (Gen_rtl.build ~name:(Printf.sprintf "chaos%d" i) spec))
    in
    let options =
      { Flow.default_options with Flow.objective = Flow.Fixed_level 1 }
    in
    let good_job i =
      { Proto.id = Printf.sprintf "g%d" i;
        design = Proto.Rtl_text designs.(i mod uniq);
        arch = Arch.default; options; deadline_ms = None }
    in
    let doomed_jobs =
      (* impossible designs (unknown circuit) and hopeless deadlines *)
      [ { Proto.id = "bad0"; design = Proto.Circuit "no-such-circuit";
          arch = Arch.default; options; deadline_ms = None };
        { Proto.id = "t0"; design = Proto.Rtl_text designs.(uniq - 1);
          arch = Arch.default; options; deadline_ms = Some 1 } ]
    in
    (match Serve.Client.connect ~retries:5 ~backoff_ms:50 ~socket_path () with
     | exception Diag.Fail d ->
       prerr_endline ("error: " ^ Diag.to_string d);
       2
     | client ->
       Fun.protect ~finally:(fun () -> Serve.Client.close client)
         (fun () ->
           garbage_round 0;
           abrupt_disconnect ();
           (* pipeline the whole burst before reading anything: this is
              what drives the daemon's admission queue past its bound *)
           let good = List.init total good_job in
           List.iter (fun j -> Serve.Client.send client (Proto.Job j))
             (good @ doomed_jobs);
           let completed = ref 0 and artifacts = Hashtbl.create 64 in
           let overloaded = ref [] in
           List.iter
             (fun (j : Proto.job) ->
               let _events, term = Serve.Client.recv_result client in
               match term with
               | Proto.Result { id; artifact; _ } ->
                 Hashtbl.replace artifacts id
                   (Nanomap_util.Json.to_string (Codec.artifact_to_json artifact));
                 if String.length id > 0 && id.[0] = 'g' then incr completed
                 else if id.[0] = 't' then ()
                   (* a deadline the tiny compile beat: legal *)
               | Proto.Error_resp { id; diag } -> (
                 let id = Option.value id ~default:"?" in
                 match diag.Diag.code, id.[0] with
                 | "overloaded", 'g' ->
                   overloaded := id :: !overloaded
                 | ("overloaded" | "timeout"), 't' | "bad-design", 'b' -> ()
                 | "timeout", 'g' -> ()
                 | code, _ ->
                   fail "job %s rejected with unexpected serve/%s" id code)
               | _ -> fail "job %s got a non-result non-error terminator" j.Proto.id)
             (good @ doomed_jobs);
           (* shed jobs retry serially — the queue has drained, so the
              overload rejection must have been transient *)
           List.iter
             (fun id ->
               let i = int_of_string (String.sub id 1 (String.length id - 1)) in
               match Serve.Client.submit ~attempts:3 client (good_job i) with
               | _, Proto.Result { id; artifact; _ } ->
                 Hashtbl.replace artifacts id
                   (Nanomap_util.Json.to_string (Codec.artifact_to_json artifact));
                 incr completed
               | _, Proto.Error_resp { diag; _ } ->
                 fail "retry of shed job %s still failed: serve/%s" id
                   diag.Diag.code
               | _ -> fail "retry of shed job %s got no terminator" id)
             (List.rev !overloaded);
           garbage_round 1;
           (* ------------- post-chaos integrity: daemon alive, cache sane *)
           Serve.Client.send client Proto.Ping;
           (match Serve.Client.recv client with
            | Proto.Pong -> ()
            | _ -> fail "daemon did not answer the final ping");
           (match
              Serve.Client.submit client
                { (good_job 0) with Proto.id = "final" }
            with
            | _, Proto.Result { artifact; _ } -> (
              let bytes =
                Nanomap_util.Json.to_string (Codec.artifact_to_json artifact)
              in
              match Hashtbl.find_opt artifacts "g0" with
              | Some first when first <> bytes ->
                fail "post-chaos artifact differs from the pre-chaos compile"
              | _ -> ())
            | _ -> fail "clean job after the chaos run did not complete");
           Serve.Client.send client Proto.Stats_req;
           (match Serve.Client.recv client with
            | Proto.Stats_resp s ->
              Printf.printf
                "stats: %d jobs, %d timeouts, %d shed, %d drained, %d \
                 slow-reader drops, rejected: %s\n"
                s.Proto.jobs_done s.Proto.timeouts s.Proto.shed s.Proto.drained
                s.Proto.slow_reader_disconnects
                (String.concat ", "
                   (List.map
                      (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                      s.Proto.rejected))
            | _ -> fail "daemon did not answer the final stats request");
           let rate = float_of_int !completed /. float_of_int total in
           Printf.printf "chaos: %d/%d good jobs completed (%.2f), %d faults injected\n"
             !completed total rate (20 + 1 + List.length doomed_jobs);
           List.iter (fun m -> Printf.printf "FAIL: %s\n" m) (List.rev !failures);
           if !failures = [] && rate >= min_complete then begin
             print_endline "chaos: PASS";
             0
           end
           else 1))

let chaos_cmd =
  let total =
    Arg.(value & opt int 200
         & info [ "total" ] ~docv:"N" ~doc:"Well-formed compile jobs to mix in.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let min_complete =
    Arg.(value & opt float 0.95
         & info [ "min-complete" ] ~docv:"R"
             ~doc:"Exit nonzero unless this fraction of the well-formed jobs \
                   completes (after overload retries).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Chaos-test a running daemon: garbage frames, abrupt \
             disconnects, hopeless deadlines, impossible designs and an \
             overload burst, interleaved with real load; verify every fault \
             yields its typed serve/* rejection, the daemon survives, and \
             post-chaos artifacts are byte-identical")
    Term.(const run_chaos $ socket_arg $ total $ seed $ min_complete $ verbosity)

(* --------------------------------------------------------- explore cmd *)

let run_explore grid_name designs json_file jobs verbose =
  setup_logs (if verbose then Some Logs.Info else None);
  let grid =
    match grid_name with
    | "smoke" -> Ok Explore.smoke_grid
    | "full" -> Ok Explore.default_grid
    | g -> Error ("unknown grid " ^ g ^ " (smoke|full)")
  in
  match grid with
  | Error msg -> prerr_endline msg; 2
  | Ok grid -> (
    let designs = String.split_on_char ',' designs in
    match List.find_opt (fun d -> try ignore (Circuits.by_name d); false
                                  with Not_found -> true) designs with
    | Some d -> prerr_endline ("unknown benchmark: " ^ d); 2
    | None ->
      let jobs = Pool.resolve_jobs jobs in
      let results =
        if jobs > 1 then
          Pool.with_pool ~jobs (fun pool -> Explore.run ~pool ~designs grid)
        else Explore.run ~designs grid
      in
      print_string (Explore.report_ascii ~designs results);
      Printf.printf "fingerprint: %s\n" (Explore.fingerprint ~designs results);
      (match json_file with
      | None -> ()
      | Some file ->
        Nanomap_util.Json.splice_file_section ~file ~key:"explore"
          (Nanomap_util.Json.to_string (Explore.to_json ~designs results));
        Printf.printf "updated %s (explore section)\n" file);
      if List.exists (fun (r : Explore.point_result) -> r.Explore.pareto)
           results
      then 0
      else begin
        prerr_endline "explore: empty Pareto frontier (no feasible point)";
        1
      end)

let explore_cmd =
  let grid_arg =
    Arg.(value & opt string "smoke"
         & info [ "grid" ] ~docv:"GRID"
             ~doc:"Architecture grid to sweep: $(b,smoke) (pinned 2x2x2 \
                   mini-grid) or $(b,full) (K 3-6, cluster shapes, Fs, Fc, \
                   folding none/1/2).")
  in
  let designs_arg =
    Arg.(value & opt string "ex1_small,crc8"
         & info [ "designs" ] ~docv:"NAMES"
             ~doc:"Comma-separated benchmark circuits to map at every point.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Splice the results as an $(b,explore) section into this \
                   JSON report file (created if absent).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Sweep a grid of NATURE architecture points (LUT size, cluster \
             shape, switch-block and connection-block flexibility, folding \
             level), binary-search the minimum routable channel width per \
             point, and print the (area, delay, channel width) Pareto \
             frontier")
    Term.(const run_explore $ grid_arg $ designs_arg $ json_arg $ jobs_arg
          $ verbosity)

(* ------------------------------------------------------------ list cmd *)

let run_list () =
  List.iter
    (fun (b : Circuits.benchmark) ->
      Printf.printf "%-10s %s\n" b.Circuits.name b.Circuits.description)
    (Circuits.ex1_small () :: Circuits.all ());
  0

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark circuits")
    Term.(const run_list $ const ())

let () =
  (* client-side writes to a daemon that just vanished should fail as
     exceptions (handled per command), not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let info =
    Cmd.info "nanomap" ~version:"1.0.0"
      ~doc:"Design optimization flow for the NATURE reconfigurable architecture"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ map_cmd; stats_cmd; sweep_cmd; explore_cmd; list_cmd; disasm_cmd;
            emulate_cmd; fuzz_cmd; serve_cmd; submit_cmd; cache_check_cmd;
            chaos_cmd ]))
