-- Direct-form-I biquad IIR section with constant coefficients.
-- The output feedback keeps the whole filter in one plane.
entity biquad is
  port (
    clk : in std_logic;
    x   : in std_logic_vector(7 downto 0);
    y   : out std_logic_vector(7 downto 0)
  );
end entity;

architecture rtl of biquad is
  signal x1, x2, y1, y2 : std_logic_vector(7 downto 0);
  signal b0x, b1x, b2x  : std_logic_vector(11 downto 0);
  signal a1y, a2y       : std_logic_vector(11 downto 0);
  signal acc1, acc2     : std_logic_vector(11 downto 0);
  signal fb1, fb2       : std_logic_vector(11 downto 0);
  signal y_full         : std_logic_vector(11 downto 0);
  signal y_next         : std_logic_vector(7 downto 0);
begin
  b0x <= x  * "1101";
  b1x <= x1 * "1010";
  b2x <= x2 * "0110";
  a1y <= y1 * "1001";
  a2y <= y2 * "0100";
  acc1 <= b0x + b1x;
  acc2 <= acc1 + b2x;
  fb1 <= acc2 - a1y;
  fb2 <= fb1 - a2y;
  y_full <= fb2;
  y_next <= y_full(9 downto 2);
  y <= y_next;

  state: process (clk)
  begin
    if rising_edge(clk) then
      x1 <= x;
      x2 <= x1;
      y1 <= y_next;
      y2 <= y1;
    end if;
  end process;
end architecture;
