-- Gated counter with synchronous reset: exercises nested if/else inside
-- the clocked process (each branch desugars to a when/else per register).
entity counter is
  port (
    clk  : in std_logic;
    rst  : in std_logic;
    en   : in std_logic;
    step : in std_logic_vector(3 downto 0);
    q    : out std_logic_vector(7 downto 0)
  );
end entity;

architecture rtl of counter is
  signal count : std_logic_vector(7 downto 0);
  signal bumped : std_logic_vector(7 downto 0);
begin
  bumped <= count + ("0000" & step);
  q <= count;

  tick: process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        count <= (others => '0');
      else
        if en = '1' then
          count <= bumped;
        end if;
      end if;
    end if;
  end process;
end architecture;
