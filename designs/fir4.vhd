-- Four-tap direct-form FIR filter with constant coefficients.
-- The delay line is a register chain (one plane after levelization).
entity fir4 is
  port (
    clk : in std_logic;
    x   : in std_logic_vector(7 downto 0);
    y   : out std_logic_vector(11 downto 0)
  );
end entity;

architecture rtl of fir4 is
  signal t0, t1, t2, t3 : std_logic_vector(7 downto 0);
  signal p0, p1, p2, p3 : std_logic_vector(11 downto 0);
  signal s0, s1         : std_logic_vector(11 downto 0);
begin
  taps: process (clk)
  begin
    if rising_edge(clk) then
      t0 <= x;
      t1 <= t0;
      t2 <= t1;
      t3 <= t2;
    end if;
  end process;

  -- coefficients 3, 11, 11, 3 (constant multiplies fold to shift-adds)
  p0 <= t0 * "0011";
  p1 <= t1 * "1011";
  p2 <= t2 * "1011";
  p3 <= t3 * "0011";
  s0 <= p0 + p1;
  s1 <= p2 + p3;
  y <= s0 + s1;
end architecture;
