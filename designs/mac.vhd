-- Multiply-accumulate with synchronous clear: the quickstart design.
entity mac is
  port (
    clk   : in std_logic;
    clear : in std_logic;
    a     : in std_logic_vector(7 downto 0);
    b     : in std_logic_vector(7 downto 0);
    acc   : out std_logic_vector(15 downto 0)
  );
end entity;

architecture rtl of mac is
  signal product : std_logic_vector(15 downto 0);
  signal sum     : std_logic_vector(15 downto 0);
  signal nxt     : std_logic_vector(15 downto 0);
  signal acc_r   : std_logic_vector(15 downto 0);
begin
  product <= a * b;
  sum <= acc_r + product;
  nxt <= (others => '0') when clear = '1' else sum;
  acc <= nxt;

  reg: process (clk)
  begin
    if rising_edge(clk) then
      acc_r <= nxt;
    end if;
  end process;
end architecture;
