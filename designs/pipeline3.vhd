-- Three-stage arithmetic pipeline: multiply, add/compare, blend.
-- Levelizes into three planes; a pipelined mapping keeps all three
-- resident, a shared mapping folds them onto the same LEs.
entity pipeline3 is
  port (
    clk : in std_logic;
    a   : in std_logic_vector(7 downto 0);
    b   : in std_logic_vector(7 downto 0);
    q   : out std_logic_vector(7 downto 0)
  );
end entity;

architecture rtl of pipeline3 is
  signal ra, rb        : std_logic_vector(7 downto 0);
  signal prod          : std_logic_vector(15 downto 0);
  signal r_lo, r_hi    : std_logic_vector(7 downto 0);
  signal summ, diff    : std_logic_vector(7 downto 0);
  signal pick          : std_logic_vector(7 downto 0);
  signal r_pick, r_sum : std_logic_vector(7 downto 0);
  signal blend         : std_logic_vector(7 downto 0);
begin
  stage1_regs: process (clk)
  begin
    if rising_edge(clk) then
      ra <= a;
      rb <= b;
    end if;
  end process;

  prod <= ra * rb;

  stage2_regs: process (clk)
  begin
    if rising_edge(clk) then
      r_lo <= prod(7 downto 0);
      r_hi <= prod(15 downto 8);
    end if;
  end process;

  summ <= r_lo + r_hi;
  diff <= r_hi - r_lo;
  pick <= summ when r_lo < r_hi else diff;

  stage3_regs: process (clk)
  begin
    if rising_edge(clk) then
      r_pick <= pick;
      r_sum <= summ;
    end if;
  end process;

  blend <= r_pick xor r_sum;
  q <= blend;
end architecture;
