module Vec = Nanomap_util.Vec
module Truth_table = Nanomap_logic.Truth_table
module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist

type lit = int

let lit_false = 0
let lit_true = 1
let lit_of_node n = n * 2
let node_of_lit l = l / 2
let is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_compl l c = if c then lit_not l else l

(* Per-node storage. AND nodes have fanin literals; the constant node and
   inputs hold -1. [input_idx] is the creation ordinal for inputs, -1
   elsewhere. *)
type t = {
  fanin0 : lit Vec.t;
  fanin1 : lit Vec.t;
  input_idx : int Vec.t;
  node_level : int Vec.t;
  node_tag : int Vec.t;
  inputs : int Vec.t;  (* input ordinal -> node id *)
  strash : (int * int, int) Hashtbl.t;
}

let create () =
  let t =
    { fanin0 = Vec.create ();
      fanin1 = Vec.create ();
      input_idx = Vec.create ();
      node_level = Vec.create ();
      node_tag = Vec.create ();
      inputs = Vec.create ();
      strash = Hashtbl.create 1024 }
  in
  (* node 0: constant false *)
  ignore (Vec.push t.fanin0 (-1));
  ignore (Vec.push t.fanin1 (-1));
  ignore (Vec.push t.input_idx (-1));
  ignore (Vec.push t.node_level 0);
  ignore (Vec.push t.node_tag (-1));
  t

let num_nodes t = Vec.length t.fanin0
let num_inputs t = Vec.length t.inputs
let num_ands t = num_nodes t - num_inputs t - 1

let is_const_node n = n = 0
let is_input t n = Vec.get t.input_idx n >= 0
let is_and t n = n > 0 && Vec.get t.fanin0 n >= 0

let fanin0 t n =
  let f = Vec.get t.fanin0 n in
  if f < 0 then invalid_arg "Aig.fanin0: not an AND node";
  f

let fanin1 t n =
  let f = Vec.get t.fanin1 n in
  if f < 0 then invalid_arg "Aig.fanin1: not an AND node";
  f

let input_ordinal t n = Vec.get t.input_idx n
let input_node t i = Vec.get t.inputs i
let tag t n = Vec.get t.node_tag n
let level t n = Vec.get t.node_level n

let depth t =
  let d = ref 0 in
  Vec.iter (fun l -> if l > !d then d := l) t.node_level;
  !d

let add_input ?(tag = -1) t =
  let n = num_nodes t in
  ignore (Vec.push t.fanin0 (-1));
  ignore (Vec.push t.fanin1 (-1));
  ignore (Vec.push t.input_idx (Vec.length t.inputs));
  ignore (Vec.push t.node_level 0);
  ignore (Vec.push t.node_tag tag);
  ignore (Vec.push t.inputs n);
  lit_of_node n

let mk_and ?(tag = -1) t a b =
  (* Canonical operand order first, so the rewrite rules and the strash key
     see commuted calls identically. *)
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = lit_not b then lit_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> lit_of_node n
    | None ->
      let n = num_nodes t in
      ignore (Vec.push t.fanin0 a);
      ignore (Vec.push t.fanin1 b);
      ignore (Vec.push t.input_idx (-1));
      ignore
        (Vec.push t.node_level
           (1 + max (Vec.get t.node_level (node_of_lit a))
                  (Vec.get t.node_level (node_of_lit b))));
      ignore (Vec.push t.node_tag tag);
      Hashtbl.replace t.strash (a, b) n;
      lit_of_node n

let mk_or ?tag t a b = lit_not (mk_and ?tag t (lit_not a) (lit_not b))

let mk_xor ?tag t a b =
  mk_or ?tag t (mk_and ?tag t a (lit_not b)) (mk_and ?tag t (lit_not a) b)

let mk_mux ?tag t s a b =
  mk_or ?tag t (mk_and ?tag t (lit_not s) a) (mk_and ?tag t s b)

let eval_lit vals l =
  let v = vals.(node_of_lit l) in
  if is_compl l then not v else v

let eval t f =
  let vals = Array.make (num_nodes t) false in
  for n = 1 to num_nodes t - 1 do
    let idx = Vec.get t.input_idx n in
    if idx >= 0 then vals.(n) <- f idx
    else
      vals.(n) <-
        eval_lit vals (Vec.get t.fanin0 n) && eval_lit vals (Vec.get t.fanin1 n)
  done;
  vals

let sim64_lit vals l =
  let v = vals.(node_of_lit l) in
  if is_compl l then Int64.lognot v else v

let sim64 t f =
  let vals = Array.make (num_nodes t) 0L in
  for n = 1 to num_nodes t - 1 do
    let idx = Vec.get t.input_idx n in
    if idx >= 0 then vals.(n) <- f idx
    else
      vals.(n) <-
        Int64.logand
          (sim64_lit vals (Vec.get t.fanin0 n))
          (sim64_lit vals (Vec.get t.fanin1 n))
  done;
  vals

let lit_of_table ?tag t table fanins =
  if Array.length fanins <> Truth_table.arity table then
    invalid_arg "Aig.lit_of_table: fanin/arity mismatch";
  (* Shannon expansion on the highest support variable; memoised on the
     table bits so shared cofactors build shared structure. *)
  let memo = Hashtbl.create 16 in
  let rec build table =
    match Hashtbl.find_opt memo (Truth_table.bits table) with
    | Some l -> l
    | None ->
      let l =
        let rec top i = if i < 0 then -1 else if Truth_table.depends_on table i then i else top (i - 1) in
        match top (Truth_table.arity table - 1) with
        | -1 ->
          if Truth_table.equal table (Truth_table.const ~arity:(Truth_table.arity table) true)
          then lit_true
          else lit_false
        | i ->
          let f0 = build (Truth_table.cofactor table i false) in
          let f1 = build (Truth_table.cofactor table i true) in
          mk_mux ?tag t fanins.(i) f0 f1
      in
      Hashtbl.replace memo (Truth_table.bits table) l;
      l
  in
  build table

type conversion = {
  aig : t;
  lit_of_gate : lit array;
  gate_of_input : int array;
}

let of_gate_netlist ?tags nl =
  let t = create () in
  let lit_of_gate = Array.make (Gate_netlist.size nl) lit_false in
  let gate_of_input = Vec.create () in
  let tag_of gid = match tags with Some tg -> tg.(gid) | None -> -1 in
  Gate_netlist.iter
    (fun gid node ->
      let tag = tag_of gid in
      let fi i = lit_of_gate.(node.Gate_netlist.fanins.(i)) in
      let l =
        match node.Gate_netlist.kind with
        | Gate.Input ->
          ignore (Vec.push gate_of_input gid);
          add_input ~tag t
        | Gate.Const b -> if b then lit_true else lit_false
        | Gate.Buf -> fi 0
        | Gate.Not -> lit_not (fi 0)
        | Gate.And2 -> mk_and ~tag t (fi 0) (fi 1)
        | Gate.Or2 -> mk_or ~tag t (fi 0) (fi 1)
        | Gate.Nand2 -> lit_not (mk_and ~tag t (fi 0) (fi 1))
        | Gate.Nor2 -> lit_not (mk_or ~tag t (fi 0) (fi 1))
        | Gate.Xor2 -> mk_xor ~tag t (fi 0) (fi 1)
        | Gate.Xnor2 -> lit_not (mk_xor ~tag t (fi 0) (fi 1))
        | Gate.Mux2 -> mk_mux ~tag t (fi 0) (fi 1) (fi 2)
      in
      lit_of_gate.(gid) <- l)
    nl;
  { aig = t; lit_of_gate; gate_of_input = Vec.to_array gate_of_input }

let of_structure ?tags ~size ~node () =
  let t = create () in
  let lits = Array.make size lit_false in
  let tag_of i = match tags with Some tg -> tg.(i) | None -> -1 in
  for i = 0 to size - 1 do
    lits.(i) <-
      (match node i with
      | `Input -> add_input ~tag:(tag_of i) t
      | `Func (table, fanins) ->
        lit_of_table ~tag:(tag_of i) t table (Array.map (fun j -> lits.(j)) fanins))
  done;
  (t, lits)
