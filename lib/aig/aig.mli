(** Structurally-hashed And-Inverter Graph with complemented edges.

    Nodes are numbered densely from 0; node 0 is the constant-false node,
    followed by the inputs in creation order, then two-input AND nodes in
    creation order. Because every AND is created through {!mk_and} — which
    canonically orders its operands, propagates constants and consults the
    structural-hash table — node ids are a deterministic function of the
    construction call sequence, and no AND node ever has a constant fanin
    (constants only survive as output literals).

    A {e literal} packs a node id and a complement bit: [lit = 2*node + c].
    Literal 0 is constant false, literal 1 constant true. *)

type t

type lit = int

val lit_false : lit
val lit_true : lit

val lit_of_node : int -> lit
(** The positive (uncomplemented) literal of a node. *)

val node_of_lit : lit -> int
val is_compl : lit -> bool
val lit_not : lit -> lit
val lit_compl : lit -> bool -> lit
(** [lit_compl l c] complements [l] iff [c]. *)

val create : unit -> t

val num_nodes : t -> int
(** Total node count, including the constant node 0. *)

val num_inputs : t -> int
val num_ands : t -> int

val add_input : ?tag:int -> t -> lit
(** Appends a fresh input node and returns its positive literal. [tag] is an
    arbitrary client annotation (NanoMap stores the RTL module id); defaults
    to [-1]. *)

val mk_and : ?tag:int -> t -> lit -> lit -> lit
(** Strashed, constant-propagating AND: [a & false = false], [a & true = a],
    [a & a = a], [a & not a = false]; operands are swapped into canonical
    order before the hash lookup, so commuted calls return the same literal.
    On a strash hit the existing node (and its tag) is reused. *)

val mk_or : ?tag:int -> t -> lit -> lit -> lit
val mk_xor : ?tag:int -> t -> lit -> lit -> lit
(** Built from AND/NOT (three ANDs for XOR); no dedicated node kinds. *)

val mk_mux : ?tag:int -> t -> lit -> lit -> lit -> lit
(** [mk_mux t s a b] is [b] when [s] is true, else [a] (matching
    {!Nanomap_logic.Gate.Mux2} fanin order [sel; a; b]). *)

val is_const_node : int -> bool
val is_input : t -> int -> bool
val is_and : t -> int -> bool

val fanin0 : t -> int -> lit
val fanin1 : t -> int -> lit
(** Fanin literals of an AND node; [Invalid_argument] otherwise. *)

val input_ordinal : t -> int -> int
(** Creation ordinal (0-based) of an input node; [-1] for other nodes. *)

val input_node : t -> int -> int
(** Node id of the [i]-th input (inverse of {!input_ordinal}). *)

val tag : t -> int -> int

val level : t -> int -> int
(** AND-depth: constants and inputs are 0, an AND is [1 + max] of its fanin
    levels. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val eval : t -> (int -> bool) -> bool array
(** [eval t f] evaluates every node under the assignment [f ordinal] for the
    inputs, returning node values (not literal values) indexed by node id. *)

val eval_lit : bool array -> lit -> bool
(** Read a literal's value out of an {!eval} result. *)

val sim64 : t -> (int -> int64) -> int64 array
(** Bit-parallel simulation: 64 independent input assignments per call. The
    callback supplies a 64-bit stimulus word per input ordinal. This is the
    compositional cycle simulator — feeding one cycle's register outputs
    back as the next cycle's input words simulates 64 traces at once. *)

val sim64_lit : int64 array -> lit -> int64

val lit_of_table : ?tag:int -> t -> Nanomap_logic.Truth_table.t -> lit array -> lit
(** Shannon-decompose a truth table over the given fanin literals (array
    length = table arity) into AND/NOT structure, returning the root
    literal. Variables outside the table's support cost nothing. *)

(** {1 Converters} *)

type conversion = {
  aig : t;
  lit_of_gate : lit array;  (** gate-netlist id -> AIG literal *)
  gate_of_input : int array;  (** AIG input ordinal -> gate-netlist id *)
}

val of_gate_netlist : ?tags:int array -> Nanomap_logic.Gate_netlist.t -> conversion
(** Rewrite a primitive-gate netlist into AIG form: [Not]/[Buf] fold into
    edge complements, XOR/MUX expand into AND trees, constants propagate.
    [tags] (per gate id) become node tags; first creator wins on strash
    hits. *)

val of_structure :
  ?tags:int array ->
  size:int ->
  node:(int -> [ `Input | `Func of Nanomap_logic.Truth_table.t * int array ]) ->
  unit ->
  t * lit array
(** Generic converter for any topologically-ordered DAG of truth-table nodes
    (used by [Nanomap_techmap.Aig_map.of_lut_network]): node [i] is either an
    input or a function of earlier node ids. Returns the AIG and the literal
    of every source node. *)
