module Truth_table = Nanomap_logic.Truth_table

type cut = {
  leaves : int array;
  func : Truth_table.t;
}

type mapping = {
  cuts : cut array array;
  choice : int array;
  label : int array;
  arrival : int array;
  cuts_enumerated : int;
}

let trivial n = { leaves = [| n |]; func = Truth_table.var ~arity:1 0 }

(* Merge two strictly-ascending leaf vectors; None if the union exceeds k. *)
let merge_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if n > k then None
    else if i = la && j = lb then Some (Array.sub out 0 n)
    else if j = lb || (i < la && a.(i) < b.(j)) then begin
      out.(n) <- a.(i);
      go (i + 1) j (n + 1)
    end
    else if i = la || b.(j) < a.(i) then begin
      out.(n) <- b.(j);
      go i (j + 1) (n + 1)
    end
    else begin
      out.(n) <- a.(i);
      go (i + 1) (j + 1) (n + 1)
    end
  in
  go 0 0 0

let index_in union leaf =
  let rec go i = if union.(i) = leaf then i else go (i + 1) in
  go 0

(* Re-express a sub-cut's function over the merged leaf ordering, folding in
   the edge complement. *)
let lift func leaves union compl_ =
  let map = Array.map (index_in union) leaves in
  let t = Truth_table.permute func ~arity:(Array.length union) map in
  if compl_ then Truth_table.lognot t else t

let compare_leaves a b = compare (Array.to_list a) (Array.to_list b)

type candidate = {
  c_leaves : int array;
  c_func : Truth_table.t;
  c_depth : int;
  c_af : float;
}

let effort_params = function
  | 1 -> (6, 1, 0)
  | 2 -> (8, 2, 1)
  | _ -> (12, 3, 2)

let balance_weight = 0.05

let compute ?(k = 4) ?(effort = 2) ?(balance = false) aig ~roots =
  if k < 2 || k > Truth_table.max_arity then invalid_arg "Cut.compute: k";
  let budget, af_rounds, ela_rounds = effort_params (max 1 (min 3 effort)) in
  let n_nodes = Aig.num_nodes aig in
  let cuts = Array.make n_nodes [||] in
  let label = Array.make n_nodes 0 in
  let af = Array.make n_nodes 0.0 in
  let choice = Array.make n_nodes (-1) in
  let arrival = Array.make n_nodes 0 in
  let enumerated = ref 0 in
  (* Structural fanout counts (AND fanins + root references) normalise
     area flow. *)
  let refs = Array.make n_nodes 0 in
  for n = 0 to n_nodes - 1 do
    if Aig.is_and aig n then begin
      refs.(Aig.node_of_lit (Aig.fanin0 aig n)) <- refs.(Aig.node_of_lit (Aig.fanin0 aig n)) + 1;
      refs.(Aig.node_of_lit (Aig.fanin1 aig n)) <- refs.(Aig.node_of_lit (Aig.fanin1 aig n)) + 1
    end
  done;
  List.iter (fun l -> refs.(Aig.node_of_lit l) <- refs.(Aig.node_of_lit l) + 1) roots;
  let leaf_label l = label.(l) in
  let leaf_af l = af.(l) in
  let cut_depth leaves = 1 + Array.fold_left (fun m l -> max m (leaf_label l)) 0 leaves in
  let cut_af leaves = 1.0 +. Array.fold_left (fun s l -> s +. leaf_af l) 0.0 leaves in
  (* --- enumeration (one ascending pass; fanins precede their node) --- *)
  for n = 0 to n_nodes - 1 do
    if Aig.is_input aig n then cuts.(n) <- [| trivial n |]
    else if Aig.is_and aig n then begin
      let f0 = Aig.fanin0 aig n and f1 = Aig.fanin1 aig n in
      let a = Aig.node_of_lit f0 and b = Aig.node_of_lit f1 in
      let ca = Aig.is_compl f0 and cb = Aig.is_compl f1 in
      let cands = ref [] in
      Array.iter
        (fun cut_a ->
          Array.iter
            (fun cut_b ->
              incr enumerated;
              match merge_leaves k cut_a.leaves cut_b.leaves with
              | None -> ()
              | Some union ->
                if not (List.exists (fun c -> compare_leaves c.c_leaves union = 0) !cands)
                then begin
                  let func =
                    Truth_table.logand
                      (lift cut_a.func cut_a.leaves union ca)
                      (lift cut_b.func cut_b.leaves union cb)
                  in
                  cands :=
                    { c_leaves = union;
                      c_func = func;
                      c_depth = cut_depth union;
                      c_af = cut_af union }
                    :: !cands
                end)
            cuts.(b))
        cuts.(a);
      let sorted =
        List.sort
          (fun x y ->
            let c = compare x.c_depth y.c_depth in
            if c <> 0 then c
            else
              let c = compare x.c_af y.c_af in
              if c <> 0 then c else compare_leaves x.c_leaves y.c_leaves)
          !cands
      in
      let kept =
        if List.length sorted <= budget then sorted
        else begin
          let kept = List.filteri (fun i _ -> i < budget) sorted in
          (* guarantee the globally best-area candidate survives pruning *)
          let best_area =
            List.fold_left
              (fun acc c ->
                match acc with
                | None -> Some c
                | Some b ->
                  if
                    c.c_af < b.c_af
                    || (c.c_af = b.c_af
                        && (c.c_depth < b.c_depth
                            || (c.c_depth = b.c_depth
                                && compare_leaves c.c_leaves b.c_leaves < 0)))
                  then Some c
                  else acc)
              None sorted
          in
          match best_area with
          | Some ba when not (List.exists (fun c -> compare_leaves c.c_leaves ba.c_leaves = 0) kept) ->
            List.mapi (fun i c -> if i = budget - 1 then ba else c) kept
          | _ -> kept
        end
      in
      label.(n) <- (match kept with c :: _ -> c.c_depth | [] -> assert false);
      af.(n) <-
        List.fold_left (fun m c -> min m c.c_af) infinity kept
        /. float_of_int (max 1 refs.(n));
      cuts.(n) <-
        Array.of_list
          (List.map (fun c -> { leaves = c.c_leaves; func = c.c_func }) kept
          @ [ trivial n ])
    end
  done;
  (* --- selection --- *)
  let num_real n = Array.length cuts.(n) - 1 in
  let root_nodes =
    List.filter_map
      (fun l ->
        let n = Aig.node_of_lit l in
        if Aig.is_and aig n then Some n else None)
      roots
  in
  let needed = Array.make n_nodes false in
  let compute_needed () =
    Array.fill needed 0 n_nodes false;
    let rec visit n =
      if not needed.(n) then begin
        needed.(n) <- true;
        Array.iter
          (fun l -> if Aig.is_and aig l then visit l)
          cuts.(n).(choice.(n)).leaves
      end
    in
    List.iter visit root_nodes
  in
  let update_arrivals () =
    for n = 0 to n_nodes - 1 do
      if Aig.is_and aig n then
        arrival.(n) <-
          1
          + Array.fold_left
              (fun m l -> max m arrival.(l))
              0
              cuts.(n).(choice.(n)).leaves
    done
  in
  let req = Array.make n_nodes max_int in
  let compute_required () =
    Array.fill req 0 n_nodes max_int;
    List.iter
      (fun n -> req.(n) <- min req.(n) arrival.(n))
      root_nodes;
    for n = n_nodes - 1 downto 0 do
      if needed.(n) && Aig.is_and aig n && req.(n) < max_int then
        Array.iter
          (fun l -> req.(l) <- min req.(l) (req.(n) - 1))
          cuts.(n).(choice.(n)).leaves
    done
  in
  (* depth pass: cuts are sorted (depth, area-flow), so index 0 is the
     depth-optimal choice and arrival = label everywhere. *)
  for n = 0 to n_nodes - 1 do
    if Aig.is_and aig n then choice.(n) <- 0
  done;
  update_arrivals ();
  compute_needed ();
  compute_required ();
  (* area-flow rounds: pick the cheapest cut whose depth fits the slack. *)
  for _round = 1 to af_rounds do
    for n = 0 to n_nodes - 1 do
      if Aig.is_and aig n then begin
        let best = ref choice.(n) in
        let best_cost = ref infinity in
        let best_depth = ref max_int in
        for i = 0 to num_real n - 1 do
          let c = cuts.(n).(i) in
          let d = 1 + Array.fold_left (fun m l -> max m arrival.(l)) 0 c.leaves in
          if d <= req.(n) then begin
            let cost = ref (cut_af c.leaves) in
            if balance then
              (* NRAM folding balance: penalise leaves arriving long before
                 the root — their values must be buffered across folding
                 stages for the whole gap. *)
              Array.iter
                (fun l -> cost := !cost +. (balance_weight *. float_of_int (d - 1 - arrival.(l))))
                c.leaves;
            if
              !cost < !best_cost
              || (!cost = !best_cost
                  && (d < !best_depth
                      || (d = !best_depth
                          && compare_leaves c.leaves cuts.(n).(!best).leaves < 0)))
            then begin
              best := i;
              best_cost := !cost;
              best_depth := d
            end
          end
        done;
        choice.(n) <- !best;
        arrival.(n) <-
          1
          + Array.fold_left (fun m l -> max m arrival.(l)) 0 cuts.(n).(!best).leaves
      end
    done;
    compute_needed ();
    compute_required ()
  done;
  (* exact-local-area refinement over the mapped cone, fed by the area-flow
     choices (fusion: every pass re-ranks the same shared cut sets). *)
  if ela_rounds > 0 then begin
    let mr = Array.make n_nodes 0 in
    let init_refs () =
      Array.fill mr 0 n_nodes 0;
      compute_needed ();
      for n = 0 to n_nodes - 1 do
        if needed.(n) && Aig.is_and aig n then
          Array.iter
            (fun l -> if Aig.is_and aig l then mr.(l) <- mr.(l) + 1)
            cuts.(n).(choice.(n)).leaves
      done;
      List.iter (fun n -> mr.(n) <- mr.(n) + 1) root_nodes
    in
    let rec deref_cut c =
      Array.fold_left
        (fun area l ->
          if Aig.is_and aig l then begin
            mr.(l) <- mr.(l) - 1;
            if mr.(l) = 0 then area + deref_cut cuts.(l).(choice.(l)) else area
          end
          else area)
        1 c.leaves
    and reref_cut c =
      Array.fold_left
        (fun area l ->
          if Aig.is_and aig l then begin
            let area = if mr.(l) = 0 then area + reref_cut cuts.(l).(choice.(l)) else area in
            mr.(l) <- mr.(l) + 1;
            area
          end
          else area)
        1 c.leaves
    in
    for _round = 1 to ela_rounds do
      init_refs ();
      compute_required ();
      for n = n_nodes - 1 downto 0 do
        if Aig.is_and aig n && mr.(n) > 0 then begin
          let cur = choice.(n) in
          let cur_area = deref_cut cuts.(n).(cur) in
          let best = ref cur and best_area = ref cur_area in
          for i = 0 to num_real n - 1 do
            if i <> cur then begin
              let c = cuts.(n).(i) in
              let d = 1 + Array.fold_left (fun m l -> max m arrival.(l)) 0 c.leaves in
              if d <= req.(n) then begin
                let area = reref_cut c in
                ignore (deref_cut c);
                if
                  area < !best_area
                  || (area = !best_area
                      && !best <> cur
                      && compare_leaves c.leaves cuts.(n).(!best).leaves < 0)
                then begin
                  best := i;
                  best_area := area
                end
              end
            end
          done;
          choice.(n) <- !best;
          ignore (reref_cut cuts.(n).(!best));
          arrival.(n) <-
            1
            + Array.fold_left
                (fun m l -> max m arrival.(l))
                0
                cuts.(n).(!best).leaves
        end
      done
    done;
    update_arrivals ();
    compute_needed ()
  end;
  (* final cone: report -1 for everything the mapping does not use *)
  for n = 0 to n_nodes - 1 do
    if not needed.(n) then choice.(n) <- -1
  done;
  { cuts; choice; label; arrival; cuts_enumerated = !enumerated }
