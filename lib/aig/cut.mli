(** Priority-cut enumeration and fused cut selection over an AIG.

    For every AND node a bounded set of K-feasible cuts is enumerated by
    cross-merging the fanins' cut sets (the trivial cut of each fanin is
    always included in the merge, so the immediate two-leaf cut is always
    present). Each cut carries its local function as a truth table over the
    sorted leaf nodes, with edge complements folded in — so a chosen cut
    translates directly into one LUT.

    Selection is fusion-style: the depth-optimal labels, the area-flow pass
    and the exact-local-area refinement all rank the {e same} shared cut
    sets, each pass seeding from the previous pass's choices and constrained
    by required times so depth never degrades. An optional NRAM-balance term
    penalises cuts whose leaves arrive much earlier than the root, reducing
    the live range that folding stages must buffer. *)

type cut = {
  leaves : int array;  (** AIG node ids, strictly ascending *)
  func : Nanomap_logic.Truth_table.t;
      (** function of the leaf {e node} values; arity = number of leaves *)
}

type mapping = {
  cuts : cut array array;
      (** per node: the kept cuts. AND nodes additionally carry the trivial
          cut as the {e last} element (used only for parent merging, never
          chosen); inputs carry exactly the trivial cut. *)
  choice : int array;
      (** per AND node in the mapped cone: index of the chosen cut;
          [-1] for inputs, constants and nodes outside the cone *)
  label : int array;
      (** depth-optimal label: minimum achievable LUT depth of each node
          over {e all} enumerated cuts (0 for inputs). Matches FlowMap's
          labels on netlists whose gates are 1:1 with AND nodes. *)
  arrival : int array;  (** LUT depth of each node under [choice] *)
  cuts_enumerated : int;  (** total candidate cuts generated (pre-pruning) *)
}

val trivial : int -> cut
(** The singleton cut [{n}] with the identity function. *)

val compute :
  ?k:int ->
  ?effort:int ->
  ?balance:bool ->
  Aig.t ->
  roots:Aig.lit list ->
  mapping
(** [compute ?k ?effort ?balance aig ~roots] enumerates cuts (at most
    [k] <= {!Nanomap_logic.Truth_table.max_arity} leaves each) and selects
    one cut per AND node reachable from [roots].

    [effort] 1..3 controls the priority-cut budget and the number of
    area-recovery rounds (1: 6 cuts, area-flow only; 2: 8 cuts, + one
    exact-local-area round; 3: 12 cuts, deeper refinement). [balance]
    enables the NRAM folding-stage balance term. Deterministic: equal-cost
    cuts tie-break on their leaf vectors. *)
