type t = {
  lut_inputs : int;
  luts_per_le : int;
  ffs_per_le : int;
  les_per_mb : int;
  mbs_per_smb : int;
  smb_input_pins : int;
  mb_input_ports : int;
  num_reconf : int option;
  chan_direct : int;
  chan_len1 : int;
  chan_len4 : int;
  chan_global : int;
  fs : int;
  fc_in : float;
  fc_out : float;
  t_lut : float;
  t_local : float;
  t_intra_mb : float;
  t_reconf : float;
  t_setup : float;
  t_direct : float;
  t_len1 : float;
  t_len4 : float;
  t_global : float;
  smb_area : float;
  e_lut_eval : float;
  e_reconf : float;
  e_wire : float;
  p_leak_le : float;
}

(* Delay calibration: the paper reports ex1 (depth 24) at 12.90 ns with no
   folding, i.e. ~0.5375 ns per LUT level including local routing, and a
   160 ps NRAM reconfiguration. The split between LUT and local wire is our
   choice; only the sum is anchored. *)
let default =
  { lut_inputs = 4;
    luts_per_le = 1;
    ffs_per_le = 2;
    les_per_mb = 4;
    mbs_per_smb = 4;
    smb_input_pins = 40;
    mb_input_ports = 14;
    num_reconf = Some 16;
    chan_direct = 4;
    chan_len1 = 16;
    chan_len4 = 4;
    chan_global = 4;
    fs = 3;
    fc_in = 1.0;
    fc_out = 1.0;
    t_lut = 0.32;
    t_local = 0.2175;
    t_intra_mb = 0.10;
    t_reconf = 0.16;
    t_setup = 0.0;
    t_direct = 0.25;
    t_len1 = 0.35;
    t_len4 = 0.55;
    t_global = 0.90;
    smb_area = 5400.0;
    e_lut_eval = 0.012;
    e_reconf = 0.020;
    e_wire = 0.008;
    p_leak_le = 0.06 }

let unbounded_k = { default with num_reconf = None }

let with_num_reconf t num_reconf = { t with num_reconf }

let les_per_smb t = t.les_per_mb * t.mbs_per_smb

let les_to_smbs t les = Nanomap_util.Stats.ceil_div (max les 1) (les_per_smb t)

let area_um2 t les = float_of_int (les_to_smbs t les) *. t.smb_area

let folding_cycle_ns t ~level =
  (float_of_int level *. (t.t_lut +. t.t_local)) +. t.t_reconf +. t.t_setup

let plane_cycle_ns t ~level ~stages =
  if stages <= 1 then
    (* no folding within the plane: no run-time reconfiguration *)
    (float_of_int level *. (t.t_lut +. t.t_local)) +. t.t_setup
  else float_of_int stages *. folding_cycle_ns t ~level

let circuit_delay_ns t ~level ~stages ~num_planes =
  float_of_int num_planes *. plane_cycle_ns t ~level ~stages

let energy_per_computation_pj t ~luts_evaluated ~les ~stages ~num_planes
    ~wire_segments ~delay_ns =
  let dynamic = float_of_int luts_evaluated *. t.e_lut_eval in
  (* every folding cycle after the first reconfigures the active LEs *)
  let reconf_events = max 0 (stages - 1) * num_planes * les in
  let reconf = float_of_int reconf_events *. t.e_reconf in
  let wires = float_of_int wire_segments *. t.e_wire in
  (* leakage: uW * ns = fJ; /1000 to pJ *)
  let leak = float_of_int les *. t.p_leak_le *. delay_ns /. 1000.0 in
  dynamic +. reconf +. wires +. leak

(* The int64-backed [Truth_table] (and the bitstream LUT field derived from
   it) caps LUT arity at 6; architectures beyond that cannot be compiled. *)
let max_lut_inputs = 6

let diag ~code ~field msg =
  Nanomap_util.Diag.make ~stage:"arch" ~code ~context:[ ("field", field) ] msg

let validate_result t =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let pos code field v =
    if v <= 0 then
      Error (diag ~code ~field (Printf.sprintf "%s must be positive (got %d)" field v))
    else Ok ()
  in
  let posf code field v =
    if v < 0.0 then
      Error (diag ~code ~field (Printf.sprintf "%s must be non-negative (got %g)" field v))
    else Ok ()
  in
  let* () = pos "bad-lut-inputs" "lut_inputs" t.lut_inputs in
  let* () =
    if t.lut_inputs > max_lut_inputs then
      Error
        (diag ~code:"bad-lut-inputs" ~field:"lut_inputs"
           (Printf.sprintf "lut_inputs must be at most %d (got %d)" max_lut_inputs
              t.lut_inputs))
    else Ok ()
  in
  let* () = pos "bad-luts-per-le" "luts_per_le" t.luts_per_le in
  let* () = pos "bad-ffs-per-le" "ffs_per_le" t.ffs_per_le in
  let* () = pos "bad-les-per-mb" "les_per_mb" t.les_per_mb in
  let* () = pos "bad-mbs-per-smb" "mbs_per_smb" t.mbs_per_smb in
  let* () =
    if t.smb_input_pins < t.lut_inputs then
      Error
        (diag ~code:"bad-smb-input-pins" ~field:"smb_input_pins"
           "smb_input_pins must cover one LUT's inputs")
    else Ok ()
  in
  let* () =
    if t.mb_input_ports < t.lut_inputs then
      Error
        (diag ~code:"bad-mb-input-ports" ~field:"mb_input_ports"
           "mb_input_ports must cover one LUT's inputs")
    else Ok ()
  in
  let* () =
    match t.num_reconf with
    | Some k -> pos "bad-num-reconf" "num_reconf" k
    | None -> Ok ()
  in
  let* () = pos "bad-chan-direct" "chan_direct" t.chan_direct in
  let* () = pos "bad-chan-len1" "chan_len1" t.chan_len1 in
  let* () = pos "bad-chan-len4" "chan_len4" t.chan_len4 in
  let* () = pos "bad-chan-global" "chan_global" t.chan_global in
  let* () = pos "bad-fs" "fs" t.fs in
  let fc code field v =
    if v <= 0.0 || v > 1.0 then
      Error
        (diag ~code ~field
           (Printf.sprintf "%s must be in (0, 1] (got %g)" field v))
    else Ok ()
  in
  let* () = fc "bad-fc-in" "fc_in" t.fc_in in
  let* () = fc "bad-fc-out" "fc_out" t.fc_out in
  let* () = posf "bad-t-lut" "t_lut" t.t_lut in
  let* () = posf "bad-t-local" "t_local" t.t_local in
  let* () = posf "bad-t-reconf" "t_reconf" t.t_reconf in
  let* () = posf "bad-t-setup" "t_setup" t.t_setup in
  let* () = posf "bad-smb-area" "smb_area" t.smb_area in
  Ok ()

let validate t =
  match validate_result t with
  | Ok () -> ()
  | Error d -> raise (Nanomap_util.Diag.Fail d)
