(** The NATURE architecture instance (paper Section 2 and [7]).

    NATURE is an island-style FPGA. Each logic block holds one
    super-macroblock (SMB) of [mbs_per_smb] macroblocks (MBs), each MB holds
    [les_per_mb] logic elements (LEs), and each LE has one [lut_inputs]-input
    LUT plus [ffs_per_le] flip-flops. Every logic and interconnect element
    carries a k-set NRAM: [num_reconf] configuration copies that can be
    cycled through at run time in [t_reconf] nanoseconds, which is what makes
    cycle-by-cycle temporal logic folding possible.

    The experiments in the paper use one 4-input LUT per LE, 4 LEs per MB,
    4 MBs per SMB and two flip-flops per LE (the second flip-flop costs 1.5X
    SMB area but relieves the register bottleneck that folding exposes); the
    16-set NRAM adds 10.6% area and 160 ps reconfiguration latency at 100 nm.
    {!default} reproduces that instance. *)

type t = {
  lut_inputs : int;        (** K of the LUTs (4) *)
  luts_per_le : int;       (** h in Eq. 14 (1) *)
  ffs_per_le : int;        (** l in Eq. 14 (2) *)
  les_per_mb : int;        (** 4 *)
  mbs_per_smb : int;       (** 4 *)
  smb_input_pins : int;    (** distinct signals the SMB crossbar can bring in
                               per configuration *)
  mb_input_ports : int;    (** distinct MB-external signals one MB's local
                               crossbar can select per configuration *)
  num_reconf : int option; (** k configuration sets; [None] = unbounded *)
  chan_direct : int;       (** direct inter-SMB tracks per channel *)
  chan_len1 : int;         (** length-1 tracks per routing channel *)
  chan_len4 : int;         (** length-4 tracks per routing channel *)
  chan_global : int;       (** global tracks per row/column *)
  fs : int;                (** switch-block flexibility: crossing-channel
                               tracks each incoming length-1 track can turn
                               onto (3 = one per crossing channel, the
                               classic disjoint switch block) *)
  fc_in : float;           (** connection-block input flexibility: fraction
                               of the adjacent length-1 tracks an SMB input
                               can be driven from, in (0, 1] *)
  fc_out : float;          (** connection-block output flexibility: fraction
                               of the adjacent length-1 tracks an SMB output
                               can drive, in (0, 1] *)
  t_lut : float;           (** LUT evaluation delay, ns *)
  t_local : float;         (** average intra-SMB interconnect per LUT level, ns *)
  t_intra_mb : float;      (** fast path between LEs of one MB, ns *)
  t_reconf : float;        (** NRAM reconfiguration latency, ns (0.16) *)
  t_setup : float;         (** flip-flop setup + clk-to-q, ns *)
  t_direct : float;        (** direct inter-SMB link, ns *)
  t_len1 : float;          (** length-1 wire segment, ns *)
  t_len4 : float;          (** length-4 wire segment, ns *)
  t_global : float;        (** global interconnect hop, ns *)
  smb_area : float;        (** SMB area (um^2, 100 nm), incl. NRAM overhead *)
  e_lut_eval : float;      (** energy per LUT evaluation, pJ *)
  e_reconf : float;        (** energy per LE reconfiguration (NRAM -> SRAM), pJ *)
  e_wire : float;          (** energy per wire-segment traversal, pJ *)
  p_leak_le : float;       (** leakage power per LE, uW *)
}

val default : t
(** The paper's experimental instance with k = 16. *)

val unbounded_k : t
(** Same, but with as many configuration sets as needed ("k enough"). *)

val with_num_reconf : t -> int option -> t

val les_per_smb : t -> int

val les_to_smbs : t -> int -> int
(** Number of SMBs needed for a given LE count (ceiling). *)

val area_um2 : t -> int -> float
(** Silicon area of a given LE count, in SMB granularity. *)

(** {2 Analytical delay model}

    Calibrated against the paper's anchors: ex1 at depth 24 has a 12.90 ns
    no-folding delay (≈0.54 ns per LUT level including local interconnect)
    and on-chip reconfiguration costs 160 ps per folding cycle. *)

val folding_cycle_ns : t -> level:int -> float
(** Period of one folding clock at folding level [level]: [level] LUT+wire
    levels, one reconfiguration, one latch. *)

val plane_cycle_ns : t -> level:int -> stages:int -> float
(** [stages] folding cycles; a single no-folding stage pays no
    reconfiguration. *)

val circuit_delay_ns : t -> level:int -> stages:int -> num_planes:int -> float
(** Planes propagate sequentially: [num_planes * plane_cycle]. *)

val max_lut_inputs : int
(** 6 — the largest K the int64-backed truth tables (and the bitstream LUT
    field sizing derived from them) can express. *)

val validate_result : t -> (unit, Nanomap_util.Diag.t) result
(** Sanity checks: positive counts, K within [1 .. max_lut_inputs], crossbar
    pins covering one LUT, channel widths positive, Fs positive, Fc in
    (0, 1], non-negative delays/areas. The diagnostic's [code] names the
    malformed field (stage ["arch"], e.g. ["bad-chan-len1"]) and its context
    carries [field]. *)

val validate : t -> unit
(** Like {!validate_result} but raises [Nanomap_util.Diag.Fail]. *)

(** {2 Energy model (extension)}

    The paper argues NATURE's non-volatile NRAM improves power (no off-chip
    configuration reloads); this simple event-based model quantifies the
    tradeoff folding introduces: fewer LEs leak, but every folding cycle
    pays an on-chip reconfiguration. All values are order-of-magnitude
    100 nm estimates; only comparisons between mappings are meaningful. *)

val energy_per_computation_pj :
  t ->
  luts_evaluated:int ->
  les:int ->
  stages:int ->
  num_planes:int ->
  wire_segments:int ->
  delay_ns:float ->
  float
(** Energy of one complete evaluation of the circuit (one macro cycle):
    LUT evaluations + per-stage reconfiguration of the active LEs + wire
    traffic + leakage integrated over the computation's latency. *)
