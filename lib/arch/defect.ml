type t = {
  les : (int * int * int * int) list;
  tracks : (string * int) list;
}

let none = { les = []; tracks = [] }
let is_none t = t.les = [] && t.tracks = []
let count t = List.length t.les + List.length t.tracks
let track_kinds = [ "direct"; "len1"; "len4"; "global" ]

let random_les ~seed ~fraction ~width ~height arch =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Defect.random_les: fraction out of [0,1]";
  let rng = Nanomap_util.Rng.create seed in
  let les = ref [] in
  for x = 0 to width - 1 do
    for y = 0 to height - 1 do
      for mb = 0 to arch.Arch.mbs_per_smb - 1 do
        for le = 0 to arch.Arch.les_per_mb - 1 do
          if Nanomap_util.Rng.float rng 1.0 < fraction then
            les := (x, y, mb, le) :: !les
        done
      done
    done
  done;
  { none with les = List.rev !les }

let parse_error lineno token msg =
  Nanomap_util.Diag.fail ~stage:"defects" ~code:"parse-error"
    ~context:[ ("line", string_of_int lineno); ("token", token) ]
    msg

let parse_int lineno tok what =
  match int_of_string_opt tok with
  | Some n when n >= 0 -> n
  | _ -> parse_error lineno tok (Printf.sprintf "expected non-negative %s" what)

let of_string ?arch s =
  let les = ref [] and tracks = ref [] in
  (* A resource listed twice is almost always a generator or hand-edit
     bug, and downstream consumers (the SAT encoding in particular)
     assume set semantics — reject instead of silently keeping both. *)
  let seen_le = Hashtbl.create 16 and seen_track = Hashtbl.create 16 in
  let check_dup table lineno key token =
    match Hashtbl.find_opt table key with
    | Some first ->
      Nanomap_util.Diag.fail ~stage:"defects" ~code:"duplicate"
        ~context:
          [ ("line", string_of_int lineno);
            ("first_line", string_of_int first);
            ("token", token) ]
        "defect listed twice"
    | None -> Hashtbl.replace table key lineno
  in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        (* CRLF input: the \n split leaves the \r on the line *)
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "" && w <> "\r")
      in
      match words with
      | [] -> ()
      | [ "le"; x; y; mb; le ] ->
          let parsed =
            ( parse_int lineno x "x coordinate",
              parse_int lineno y "y coordinate",
              parse_int lineno mb "MB index",
              parse_int lineno le "LE index" )
          in
          let _, _, mbv, lev = parsed in
          (* grid coordinates are die-relative and may exceed the design's
             grid (the flow ignores off-grid entries), but MB/LE indices
             address inside one SMB and have an architecture-fixed range *)
          (match arch with
          | Some (a : Arch.t) ->
            if mbv >= a.Arch.mbs_per_smb then
              Nanomap_util.Diag.fail ~stage:"defects" ~code:"out-of-range"
                ~context:
                  [ ("line", string_of_int lineno);
                    ("mb", mb);
                    ("mbs_per_smb", string_of_int a.Arch.mbs_per_smb) ]
                "MB index exceeds the architecture";
            if lev >= a.Arch.les_per_mb then
              Nanomap_util.Diag.fail ~stage:"defects" ~code:"out-of-range"
                ~context:
                  [ ("line", string_of_int lineno);
                    ("le", le);
                    ("les_per_mb", string_of_int a.Arch.les_per_mb) ]
                "LE index exceeds the architecture"
          | None -> ());
          check_dup seen_le lineno parsed
            (Printf.sprintf "le %s %s %s %s" x y mb le);
          les := parsed :: !les
      | [ "track"; kind; ord ] ->
          if not (List.mem kind track_kinds) then
            parse_error lineno kind
              (Printf.sprintf "unknown wire kind (expected one of %s)"
                 (String.concat "/" track_kinds));
          let parsed = (kind, parse_int lineno ord "wire ordinal") in
          check_dup seen_track lineno parsed
            (Printf.sprintf "track %s %s" kind ord);
          tracks := parsed :: !tracks
      | tok :: _ ->
          parse_error lineno tok
            "expected 'le X Y MB LE' or 'track KIND ORDINAL'")
    lines;
  { les = List.rev !les; tracks = List.rev !tracks }

let of_file ?arch path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Nanomap_util.Diag.fail ~stage:"defects" ~code:"unreadable"
        ~context:[ ("file", path) ]
        msg
  in
  of_string ?arch contents

let to_string t =
  let b = Buffer.create 256 in
  List.iter
    (fun (x, y, mb, le) -> Printf.bprintf b "le %d %d %d %d\n" x y mb le)
    t.les;
  List.iter (fun (kind, ord) -> Printf.bprintf b "track %s %d\n" kind ord) t.tracks;
  Buffer.contents b
