type t = {
  les : (int * int * int * int) list;
  tracks : (string * int) list;
}

let none = { les = []; tracks = [] }
let is_none t = t.les = [] && t.tracks = []
let count t = List.length t.les + List.length t.tracks
let track_kinds = [ "direct"; "len1"; "len4"; "global" ]

let random_les ~seed ~fraction ~width ~height arch =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Defect.random_les: fraction out of [0,1]";
  let rng = Nanomap_util.Rng.create seed in
  let les = ref [] in
  for x = 0 to width - 1 do
    for y = 0 to height - 1 do
      for mb = 0 to arch.Arch.mbs_per_smb - 1 do
        for le = 0 to arch.Arch.les_per_mb - 1 do
          if Nanomap_util.Rng.float rng 1.0 < fraction then
            les := (x, y, mb, le) :: !les
        done
      done
    done
  done;
  { none with les = List.rev !les }

let parse_error lineno token msg =
  Nanomap_util.Diag.fail ~stage:"defects" ~code:"parse-error"
    ~context:[ ("line", string_of_int lineno); ("token", token) ]
    msg

let parse_int lineno tok what =
  match int_of_string_opt tok with
  | Some n when n >= 0 -> n
  | _ -> parse_error lineno tok (Printf.sprintf "expected non-negative %s" what)

let of_string s =
  let les = ref [] and tracks = ref [] in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "" && w <> "\r")
      in
      match words with
      | [] -> ()
      | [ "le"; x; y; mb; le ] ->
          les :=
            ( parse_int lineno x "x coordinate",
              parse_int lineno y "y coordinate",
              parse_int lineno mb "MB index",
              parse_int lineno le "LE index" )
            :: !les
      | [ "track"; kind; ord ] ->
          if not (List.mem kind track_kinds) then
            parse_error lineno kind
              (Printf.sprintf "unknown wire kind (expected one of %s)"
                 (String.concat "/" track_kinds));
          tracks := (kind, parse_int lineno ord "wire ordinal") :: !tracks
      | tok :: _ ->
          parse_error lineno tok
            "expected 'le X Y MB LE' or 'track KIND ORDINAL'")
    lines;
  { les = List.rev !les; tracks = List.rev !tracks }

let of_file path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Nanomap_util.Diag.fail ~stage:"defects" ~code:"unreadable"
        ~context:[ ("file", path) ]
        msg
  in
  of_string contents

let to_string t =
  let b = Buffer.create 256 in
  List.iter
    (fun (x, y, mb, le) -> Printf.bprintf b "le %d %d %d %d\n" x y mb le)
    t.les;
  List.iter (fun (kind, ord) -> Printf.bprintf b "track %s %d\n" kind ord) t.tracks;
  Buffer.contents b
