(** Fabric defect maps.

    Nanotube fabrics ship with defective logic elements and broken wire
    segments; NATURE's CAD flow is expected to map around them rather than
    discard the die. A defect map lists known-bad resources:

    - [les]: defective logic elements as [(x, y, mb, le)] — the LE at index
      [le] of macroblock [mb] inside the SMB placed on grid site [(x, y)].
      Placement must not assign an SMB that uses that (mb, le) slot to that
      site.
    - [tracks]: defective routing wires as [(kind, ordinal)] where [kind] is
      one of ["direct"], ["len1"], ["len4"], ["global"] and [ordinal] is the
      0-based index of the wire among the nodes of that kind in the routing
      resource graph's deterministic construction order. Routing must not use
      that wire.

    The on-disk format is line oriented; [#] starts a comment:
    {v
    # defect map for die 0317
    le 2 1 0 3        # SMB site (2,1), MB 0, LE 3
    track len4 17     # 18th length-4 segment
    v} *)

type t = {
  les : (int * int * int * int) list;  (** (x, y, mb, le) *)
  tracks : (string * int) list;        (** (wire kind, per-kind ordinal) *)
}

val none : t
(** The empty defect map (a perfect die). *)

val is_none : t -> bool

val count : t -> int
(** Total number of defective resources. *)

val track_kinds : string list
(** The accepted wire-kind names: ["direct"; "len1"; "len4"; "global"]. *)

val random_les :
  seed:int -> fraction:float -> width:int -> height:int -> Arch.t -> t
(** [random_les ~seed ~fraction ~width ~height arch] marks [fraction] of the
    LEs of a [width] x [height] SMB fabric defective, chosen uniformly by a
    deterministic PRNG. Used by the fault-injection tests to model a die with
    e.g. 5% bad LEs. *)

val of_string : ?arch:Arch.t -> string -> t
(** Parse the defect-map format above. Raises [Diag.Fail] (stage
    ["defects"]) with the line number and offending token on malformed
    input (code ["parse-error"]), on a resource listed twice (code
    ["duplicate"], context carries both line numbers), and — when [arch]
    is given — on an MB or LE index outside the architecture's
    [mbs_per_smb]/[les_per_mb] range (code ["out-of-range"]). Grid
    coordinates and track ordinals are {e not} range-checked: they are
    die-relative, and a die larger than the design's grid is fine (the
    flow simply never uses those sites). *)

val of_file : ?arch:Arch.t -> string -> t
(** [of_string] on a file's contents; raises [Diag.Fail] (code
    ["unreadable"]) if the file cannot be read. *)

val to_string : t -> string
(** Render back into the on-disk format (parseable by [of_string]). *)
