module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Truth_table = Nanomap_logic.Truth_table

type t = {
  bytes : Bytes.t;
  configs : int;
  bits_per_config : int;
  lut_bits : int;
  switch_bits : int;
}

let u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

(* The LUT truth-table field is sized by the architecture's K:
   ceil(2^K / 8) bytes, little-endian. *)
let tt_bytes ~lut_inputs = ((1 lsl lut_inputs) + 7) / 8

let add_tt buf ~lut_inputs (bits : int64) =
  for i = 0 to tt_bytes ~lut_inputs - 1 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let generate (plan : Mapper.plan) (cl : Cluster.t) (route : Router.result) =
  let arch = cl.Cluster.arch in
  let stages = plan.Mapper.stages in
  let num_planes = Array.length plan.Mapper.planes in
  let configs = stages * num_planes in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "NMAP2";
  u32 buf configs;
  u32 buf cl.Cluster.num_smbs;
  Buffer.add_char buf (Char.chr (arch.Arch.lut_inputs land 0xff));
  let lut_bits = ref 0 and switch_bits = ref 0 in
  (* group routed nets by timeslot for the switch section *)
  let nets_of_slot = Hashtbl.create 32 in
  List.iter
    (fun (rn : Router.routed_net) ->
      let key = (rn.Router.net.Cluster.plane, rn.Router.net.Cluster.cycle) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt nets_of_slot key) in
      Hashtbl.replace nets_of_slot key (rn :: cur))
    route.Router.routed;
  for plane = 1 to num_planes do
    let pl = plan.Mapper.planes.(plane - 1) in
    let network = pl.Mapper.network in
    let part = pl.Mapper.partition in
    for cycle = 1 to stages do
      (* --- LE section: every LUT configured in this timeslot --- *)
      let les = ref [] in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { func; fanins } ->
            let u = part.Partition.unit_of_lut.(l) in
            if u >= 0 && pl.Mapper.schedule.(u) = cycle then begin
              let slot = Hashtbl.find cl.Cluster.lut_slots (plane, l) in
              les := (slot, func, Array.length fanins) :: !les
            end)
        network;
      let les =
        List.sort
          (fun ((a : Cluster.slot), _, _) (b, _, _) -> compare a b)
          !les
      in
      u32 buf (List.length les);
      List.iter
        (fun ((slot : Cluster.slot), func, num_inputs) ->
          u16 buf slot.Cluster.smb;
          Buffer.add_char buf (Char.chr slot.Cluster.mb);
          Buffer.add_char buf (Char.chr slot.Cluster.le);
          (* truth table padded to 2^K bits; a >K-input function does not
             fit the field and must not be silently truncated *)
          if Truth_table.arity func > arch.Arch.lut_inputs then
            Nanomap_util.Diag.fail ~stage:"bitstream" ~code:"lut-arity"
              ~context:
                [ ("arity", string_of_int (Truth_table.arity func));
                  ("lut_inputs", string_of_int arch.Arch.lut_inputs);
                  ("smb", string_of_int slot.Cluster.smb) ]
              "LUT function too wide for the architecture's truth-table field";
          add_tt buf ~lut_inputs:arch.Arch.lut_inputs (Truth_table.bits func);
          Buffer.add_char buf (Char.chr (num_inputs land 0xff));
          lut_bits := !lut_bits + (1 lsl arch.Arch.lut_inputs))
        les;
      (* --- switch section: every wire node used in this timeslot --- *)
      let nets =
        Option.value ~default:[] (Hashtbl.find_opt nets_of_slot (plane, cycle))
      in
      let switches =
        List.concat_map
          (fun (rn : Router.routed_net) ->
            List.map (fun nd -> nd) rn.Router.tree)
          nets
        |> List.sort compare
      in
      u32 buf (List.length switches);
      List.iter
        (fun nd ->
          u32 buf nd;
          (* one switch word per wire node: type tag *)
          let tag =
            match route.Router.graph.Rr_graph.kind.(nd) with
            | Rr_graph.Wire Rr_graph.Direct -> 1
            | Rr_graph.Wire Rr_graph.Len1 -> 2
            | Rr_graph.Wire Rr_graph.Len4 -> 3
            | Rr_graph.Wire Rr_graph.Global -> 4
            | Rr_graph.Src _ | Rr_graph.Sink _ | Rr_graph.Pad_src _
            | Rr_graph.Pad_sink _ -> 0
          in
          Buffer.add_char buf (Char.chr tag);
          switch_bits := !switch_bits + 8)
        switches
    done
  done;
  let bytes = Buffer.to_bytes buf in
  { bytes;
    configs;
    bits_per_config =
      (if configs = 0 then 0 else 8 * Bytes.length bytes / configs);
    lut_bits = !lut_bits;
    switch_bits = !switch_bits }

let nram_bits_required t (arch : Arch.t) = (t.configs, arch.Arch.num_reconf)

let summary t =
  [ ("bytes", Bytes.length t.bytes);
    ("configs", t.configs);
    ("bits_per_config", t.bits_per_config);
    ("lut_bits", t.lut_bits);
    ("switch_bits", t.switch_bits) ]

let write_file t path =
  let oc = open_out_bin path in
  output_bytes oc t.bytes;
  close_out oc

type le_config = {
  le_smb : int;
  le_mb : int;
  le_index : int;
  truth_table : int64;
  used_inputs : int;
}

type switch_config = {
  rr_node : int;
  wire_tag : int;
}

type config = {
  les : le_config list;
  switches : switch_config list;
}

exception Corrupt of string

let parse_full bytes =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  let need n what =
    if !pos + n > len then raise (Corrupt ("truncated " ^ what))
  in
  let byte () =
    need 1 "byte";
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let ru16 () =
    let a = byte () in
    let b = byte () in
    a lor (b lsl 8)
  in
  let ru32 () =
    let a = ru16 () in
    let b = ru16 () in
    a lor (b lsl 16)
  in
  need 5 "magic";
  if Bytes.sub_string bytes 0 5 <> "NMAP2" then raise (Corrupt "bad magic");
  pos := 5;
  let configs = ru32 () in
  let num_smbs = ru32 () in
  let lut_inputs = byte () in
  if lut_inputs < 1 || lut_inputs > Truth_table.max_arity then
    raise (Corrupt (Printf.sprintf "bad lut_inputs %d" lut_inputs));
  let rtt () =
    let v = ref 0L in
    for i = 0 to tt_bytes ~lut_inputs - 1 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte ())) (8 * i))
    done;
    !v
  in
  let parsed =
    Array.init configs (fun _ ->
        let num_les = ru32 () in
        let les =
          List.init num_les (fun _ ->
              let le_smb = ru16 () in
              let le_mb = byte () in
              let le_index = byte () in
              let truth_table = rtt () in
              let used_inputs = byte () in
              { le_smb; le_mb; le_index; truth_table; used_inputs })
        in
        let num_switches = ru32 () in
        let switches =
          List.init num_switches (fun _ ->
              let rr_node = ru32 () in
              let wire_tag = byte () in
              { rr_node; wire_tag })
        in
        { les; switches })
  in
  if !pos <> len then
    raise (Corrupt (Printf.sprintf "%d trailing bytes" (len - !pos)));
  (num_smbs, lut_inputs, parsed)

let parse bytes =
  let _, _, configs = parse_full bytes in
  configs

let encode_configs ~num_smbs ~lut_inputs configs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "NMAP2";
  u32 buf (Array.length configs);
  u32 buf num_smbs;
  Buffer.add_char buf (Char.chr (lut_inputs land 0xff));
  Array.iter
    (fun { les; switches } ->
      u32 buf (List.length les);
      List.iter
        (fun le ->
          u16 buf le.le_smb;
          Buffer.add_char buf (Char.chr le.le_mb);
          Buffer.add_char buf (Char.chr le.le_index);
          add_tt buf ~lut_inputs le.truth_table;
          Buffer.add_char buf (Char.chr (le.used_inputs land 0xff)))
        les;
      u32 buf (List.length switches);
      List.iter
        (fun sw ->
          u32 buf sw.rr_node;
          Buffer.add_char buf (Char.chr (sw.wire_tag land 0xff)))
        switches)
    configs;
  Buffer.to_bytes buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = Bytes.create n in
  really_input ic bytes 0 n;
  close_in ic;
  parse bytes
