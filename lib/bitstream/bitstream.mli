(** Configuration bitmap generation — the final output of the flow
    (Fig. 2, step 15 onwards).

    NATURE stores one configuration set per folding cycle in the k-set
    NRAMs next to every logic and interconnect element. The bitmap here
    contains, for every configuration (= timeslot = plane x folding cycle):

    - per used LE: the 2^K LUT truth-table bits, a flip-flop usage mask,
      and one source selector byte per LUT input;
    - per used routing wire node: an 8-bit switch word identifying the
      net's value class.

    The encoding is a documented, deterministic format ("NMAP2" magic,
    little-endian u32 section lengths, a header byte carrying the
    architecture's K so the per-LE truth-table field — [ceil (2^K / 8)]
    bytes — can be decoded without the arch), sufficient to reconstruct which
    resource does what in which cycle — it is what the experiments use to
    account NRAM capacity, not a tape-out artifact. LUT input
    {e connectivity} is not encoded (the clustering supplies it); the
    decode-and-replay verification level therefore cross-references the
    parsed configurations with the cluster (see [Nanomap_verify.Oracle]).

    The format round-trips exactly: {!parse_full} followed by
    {!encode_configs} reproduces the input byte-for-byte, and the parser
    rejects trailing garbage — the invariant [Check.bitstream] asserts at
    [Full] level. *)

type t = {
  bytes : Bytes.t;
  configs : int;               (** stages x planes *)
  bits_per_config : int;       (** average configuration size in bits *)
  lut_bits : int;              (** total truth-table bits *)
  switch_bits : int;           (** total interconnect configuration bits *)
}

val generate :
  Nanomap_core.Mapper.plan ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_route.Router.result ->
  t
(** Raises [Nanomap_util.Diag.Fail] (stage ["bitstream"], code
    ["lut-arity"]) if a mapped LUT has more inputs than the architecture's
    K — the [2^K]-bit truth-table field cannot hold it and silent
    truncation would miscompile. *)

val nram_bits_required : t -> Nanomap_arch.Arch.t -> int * int option
(** [(per-element set count used, NRAM capacity k)] — the first component
    is [configs]; exceeding [k] means the mapping does not fit the
    architecture's reconfiguration storage. *)

val summary : t -> (string * int) list

val write_file : t -> string -> unit

(** {2 Parsing (disassembly)}

    The format round-trips: {!parse} recovers the full per-configuration
    contents, which the tests check against the generator's inputs and the
    CLI's [disasm] subcommand pretty-prints. *)

type le_config = {
  le_smb : int;
  le_mb : int;
  le_index : int;
  truth_table : int64;        (** 2^K bits, LSB = input assignment 0 *)
  used_inputs : int;
}

type switch_config = {
  rr_node : int;
  wire_tag : int;             (** 1 direct, 2 len-1, 3 len-4, 4 global *)
}

type config = {
  les : le_config list;
  switches : switch_config list;
}

exception Corrupt of string

val parse : Bytes.t -> config array
(** Raises {!Corrupt} on bad magic, truncated sections, or trailing
    bytes after the last configuration. *)

val parse_full : Bytes.t -> int * int * config array
(** Like {!parse} but also recovers the header's SMB count and LUT K
    [(num_smbs, lut_inputs, configs)], so the parse result carries
    everything needed to re-encode the bitmap. *)

val encode_configs : num_smbs:int -> lut_inputs:int -> config array -> Bytes.t
(** Re-encode a parsed bitmap. [encode_configs ~num_smbs ~lut_inputs cfgs]
    is byte-identical to the input of the [parse_full] that produced
    [(num_smbs, lut_inputs, cfgs)] — the round-trip invariant the [Full]
    checker and the differential oracle rely on. *)

val read_file : string -> config array
