module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Gen = Nanomap_logic.Gen

type cube = {
  mask : string;
  value : bool;
}

type names = {
  inputs : string list;
  output : string;
  cover : cube list;
}

type latch = {
  data_in : string;
  data_out : string;
  init : bool;
}

type model = {
  name : string;
  model_inputs : string list;
  model_outputs : string list;
  nodes : names list;
  latches : latch list;
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* Logical lines: strip comments, join '\' continuations, keep the line
   number of the first physical line. *)
let logical_lines text =
  let physical = String.split_on_char '\n' text in
  let strip s =
    match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let rec join acc pending pending_line lineno = function
    | [] ->
      let acc = match pending with
        | Some s -> (pending_line, s) :: acc
        | None -> acc
      in
      List.rev acc
    | raw :: rest ->
      let s = String.trim (strip raw) in
      let continued = String.length s > 0 && s.[String.length s - 1] = '\\' in
      let body = if continued then String.sub s 0 (String.length s - 1) else s in
      let acc, pending, pending_line =
        match pending with
        | Some p ->
          let merged = p ^ " " ^ body in
          if continued then (acc, Some merged, pending_line)
          else ((pending_line, merged) :: acc, None, 0)
        | None ->
          if body = "" then (acc, None, 0)
          else if continued then (acc, Some body, lineno)
          else ((lineno, body) :: acc, None, 0)
      in
      join acc pending pending_line (lineno + 1) rest
  in
  join [] None 0 1 physical

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_string text =
  let lines = logical_lines text in
  let name = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let nodes = ref [] and latches = ref [] in
  (* every signal may be driven once: by .inputs, a .latch output, or a
     .names output *)
  let defined : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let define line signal =
    match Hashtbl.find_opt defined signal with
    | Some first ->
      fail line
        (Printf.sprintf "duplicate definition of '%s' (first defined at line %d)"
           signal first)
    | None -> Hashtbl.replace defined signal line
  in
  let latch_lines = ref [] in
  let current : (int * string list * cube list) option ref = ref None in
  let flush_current () =
    match !current with
    | None -> ()
    | Some (line, signals, cubes_rev) ->
      (match List.rev signals with
       | [] -> fail line ".names with no signals"
       | rev_signals ->
         let rec split_last acc = function
           | [] -> fail line ".names with no output"
           | [ out ] -> (List.rev acc, out)
           | x :: rest -> split_last (x :: acc) rest
         in
         let ins, out = split_last [] rev_signals in
         define line out;
         let cover = List.rev cubes_rev in
         let expected = List.length ins in
         List.iter
           (fun c ->
             if String.length c.mask <> expected then
               fail line "cube width does not match .names input count")
           cover;
         (match cover with
          | [] -> ()
          | first :: rest ->
            if List.exists (fun c -> c.value <> first.value) rest then
              fail line "mixed ON/OFF covers in one .names are not supported");
         nodes := { inputs = ins; output = out; cover } :: !nodes);
      current := None
  in
  let parse_cube line toks =
    match toks with
    | [ v ] ->
      (* zero-input constant *)
      let value =
        match v with
        | "1" -> true
        | "0" -> false
        | _ -> fail line ("bad cube '" ^ v ^ "'")
      in
      { mask = ""; value }
    | [ mask; v ] ->
      String.iter
        (fun c ->
          if c <> '0' && c <> '1' && c <> '-' then
            fail line ("bad cube mask '" ^ mask ^ "'"))
        mask;
      let value =
        match v with
        | "1" -> true
        | "0" -> false
        | _ -> fail line ("bad cube value '" ^ v ^ "'")
      in
      { mask; value }
    | toks -> fail line ("bad cube line '" ^ String.concat " " toks ^ "'")
  in
  let seen_end = ref false in
  List.iter
    (fun (line, text) ->
      if not !seen_end then
        match tokens text with
        | [] -> ()
        | cmd :: args when String.length cmd > 0 && cmd.[0] = '.' ->
          flush_current ();
          (match cmd, args with
           | ".model", [ n ] -> name := n
           | ".model", _ -> fail line ".model expects one name"
           | ".inputs", sigs ->
             List.iter (define line) sigs;
             inputs := !inputs @ sigs
           | ".outputs", sigs -> outputs := !outputs @ sigs
           | ".names", sigs -> current := Some (line, List.rev sigs, [])
           | ".latch", (din :: dout :: rest) ->
             let init =
               match rest with
               | [] | [ "0" ] | [ "3" ] | [ "2" ] -> false
               | [ "1" ] -> true
               | [ _; _; init ] | [ _; init ] ->
                 (match init with "1" -> true | _ -> false)
               | _ -> fail line "bad .latch"
             in
             define line dout;
             latch_lines := (line, din) :: !latch_lines;
             latches := { data_in = din; data_out = dout; init } :: !latches
           | ".latch", _ -> fail line ".latch expects input and output"
           | ".end", _ -> seen_end := true
           | ".clock", _ | ".wire_load_slope", _ | ".default_input_arrival", _ -> ()
           | _, _ -> fail line ("unsupported directive " ^ cmd))
        | toks ->
          (match !current with
           | None -> fail line "cube line outside .names"
           | Some (l, sigs, cubes) -> current := Some (l, sigs, parse_cube line toks :: cubes)))
    lines;
  flush_current ();
  List.iter
    (fun (line, din) ->
      if not (Hashtbl.mem defined din) then
        fail line
          ("latch input '" ^ din
           ^ "' is not driven by any .names, .latch, or .inputs"))
    (List.rev !latch_lines);
  if !name = "" then fail 1 "missing .model";
  { name = !name;
    model_inputs = !inputs;
    model_outputs = !outputs;
    nodes = List.rev !nodes;
    latches = List.rev !latches }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let cube_matches cube inputs =
  let ok = ref true in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> if inputs.(i) then ok := false
      | '1' -> if not inputs.(i) then ok := false
      | _ -> ())
    cube.mask;
  !ok

let cover_value node inputs =
  match node.cover with
  | [] -> false
  | { value; _ } :: _ ->
    let any = List.exists (fun c -> cube_matches c inputs) node.cover in
    if value then any else not any

(* Topologically order nodes; model inputs and latch outputs are sources. *)
let topo_nodes model =
  let by_output = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace by_output n.output n) model.nodes;
  let sources = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace sources s ()) model.model_inputs;
  List.iter (fun l -> Hashtbl.replace sources l.data_out ()) model.latches;
  let state = Hashtbl.create 64 in (* signal -> [`Visiting | `Done] *)
  let order = ref [] in
  let rec visit signal =
    if Hashtbl.mem sources signal then ()
    else
      match Hashtbl.find_opt state signal with
      | Some `Done -> ()
      | Some `Visiting -> failwith ("Blif.lower: combinational cycle through " ^ signal)
      | None ->
        (match Hashtbl.find_opt by_output signal with
         | None -> failwith ("Blif.lower: undefined signal " ^ signal)
         | Some node ->
           Hashtbl.replace state signal `Visiting;
           List.iter visit node.inputs;
           Hashtbl.replace state signal `Done;
           order := node :: !order)
  in
  List.iter (fun n -> visit n.output) model.nodes;
  List.rev !order

type lowered = {
  netlist : Gate_netlist.t;
  latch_list : latch list;
}

let lower model =
  let t = Gate_netlist.create () in
  let env = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace env s (Gate_netlist.add_input t s)) model.model_inputs;
  List.iter
    (fun l -> Hashtbl.replace env l.data_out (Gate_netlist.add_input t l.data_out))
    model.latches;
  let lookup signal =
    match Hashtbl.find_opt env signal with
    | Some id -> id
    | None -> failwith ("Blif.lower: undefined signal " ^ signal)
  in
  let build node =
    let fanins = List.map lookup node.inputs in
    let id =
      match node.cover with
      | [] -> Gate_netlist.add_const t false
      | { value; _ } :: _ ->
        let cube_gate cube =
          let lits =
            List.mapi
              (fun i id ->
                match cube.mask.[i] with
                | '1' -> Some id
                | '0' -> Some (Gate_netlist.add_gate t Gate.Not [| id |])
                | _ -> None)
              fanins
            |> List.filter_map Fun.id
          in
          Gen.and_tree t lits
        in
        let ors = Gen.or_tree t (List.map cube_gate node.cover) in
        if value then ors else Gate_netlist.add_gate t Gate.Not [| ors |]
    in
    Hashtbl.replace env node.output id
  in
  List.iter build (topo_nodes model);
  List.iter (fun s -> Gate_netlist.mark_output t s (lookup s)) model.model_outputs;
  List.iter
    (fun l -> Gate_netlist.mark_output t ("$latch." ^ l.data_out) (lookup l.data_in))
    model.latches;
  { netlist = t; latch_list = model.latches }

let write_model m =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf ".model %s\n" m.name;
  pf ".inputs %s\n" (String.concat " " m.model_inputs);
  pf ".outputs %s\n" (String.concat " " m.model_outputs);
  List.iter
    (fun l -> pf ".latch %s %s re clk %d\n" l.data_in l.data_out (if l.init then 1 else 0))
    m.latches;
  List.iter
    (fun n ->
      pf ".names %s\n" (String.concat " " (n.inputs @ [ n.output ]));
      List.iter
        (fun c ->
          if c.mask = "" then pf "%d\n" (if c.value then 1 else 0)
          else pf "%s %d\n" c.mask (if c.value then 1 else 0))
        n.cover)
    m.nodes;
  pf ".end\n";
  Buffer.contents buf
