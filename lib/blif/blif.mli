(** BLIF (Berkeley Logic Interchange Format) subset: the gate-level input
    frontend of the flow.

    Supported constructs: [.model], [.inputs], [.outputs], [.names] with a
    sum-of-products cover, [.latch] (rising-edge, optional init), [.end],
    comments ([#]) and line continuations ([\\]). One model per file.

    A parsed model can be lowered to a {!Nanomap_logic.Gate_netlist.t} plus
    a list of latches; covers of any arity are expanded as two-level
    AND/OR logic, so downstream FlowMap re-derives a K-bounded mapping. *)

type cube = {
  mask : string;   (** one char per input: '0', '1' or '-' *)
  value : bool;    (** output value of the cube line *)
}

type names = {
  inputs : string list;
  output : string;
  cover : cube list; (** empty cover means constant 0 *)
}

type latch = {
  data_in : string;
  data_out : string;
  init : bool;
}

type model = {
  name : string;
  model_inputs : string list;
  model_outputs : string list;
  nodes : names list;
  latches : latch list;
}

exception Parse_error of int * string
(** Line number (1-based) and message; messages quote the offending token
    or signal. *)

val parse_string : string -> model
(** Besides syntax errors, rejects (with {!Parse_error}):
    - a signal driven twice — by two [.names] outputs, a [.names] output
      and a [.latch] output, or either colliding with an [.inputs] name;
    - a [.latch] whose data input is not driven by any [.names], [.latch]
      or [.inputs] declaration anywhere in the model. *)

val parse_file : string -> model

type lowered = {
  netlist : Nanomap_logic.Gate_netlist.t;
  (** Combinational part. Latch outputs appear as primary inputs named after
      [data_out]; latch inputs and model outputs are marked as outputs. *)
  latch_list : latch list;
}

val lower : model -> lowered
(** Raises [Failure] on undefined signals or combinational cycles. *)

val cover_value : names -> bool array -> bool
(** Reference semantics of a cover (used by tests): inputs in [names.inputs]
    order. A cover whose lines carry output ['0'] denotes the complement of
    the OR of its cubes. *)

val write_model : model -> string
(** Render back to BLIF text (round-trip tested). *)
