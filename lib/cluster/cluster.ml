module Arch = Nanomap_arch.Arch
module Diag = Nanomap_util.Diag
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Telemetry = Nanomap_util.Telemetry

let c_luts_packed = Telemetry.counter "cluster.luts_packed"
let c_smbs_grown = Telemetry.counter "cluster.smbs_grown"
let c_ffs_allocated = Telemetry.counter "cluster.ffs_allocated"

type slot = {
  smb : int;
  mb : int;
  le : int;
}

type value =
  | V_lut of int * int
  | V_state of int * int
  | V_pi of int * int

type endpoint =
  | At_smb of int
  | At_pad of int

type net = {
  plane : int;
  cycle : int;
  value : value;
  driver : endpoint;
  sinks : endpoint list;
}

type t = {
  arch : Arch.t;
  num_smbs : int;
  les_used : int;
  lut_slots : (int * int, slot) Hashtbl.t;
  ff_slots : (value, slot * int) Hashtbl.t;
  nets : net list;
  pads : (value * int) list;
}

(* Mutable packing state. *)
type pool = {
  arch_ : Arch.t;
  timeslots : int;
  mutable smbs : int;
  (* (smb, timeslot) -> LUT count; LE-grain occupancy below *)
  le_busy : (int * int, unit) Hashtbl.t; (* (global le id, timeslot) *)
  ff_busy : (int * int, unit) Hashtbl.t; (* (global ff id, timeslot) *)
  smb_values : (int, (value, unit) Hashtbl.t) Hashtbl.t;
  (* conservative per-configuration input-pin pressure: values consumed in
     (smb, ts) that are not produced by a LUT of the same smb and ts *)
  smb_inputs : (int * int, (value, unit) Hashtbl.t) Hashtbl.t;
  smb_produced : (int * int, (value, unit) Hashtbl.t) Hashtbl.t;
}

let les_per_smb pool = Arch.les_per_smb pool.arch_

let global_le pool s le_in_smb = (s * les_per_smb pool) + le_in_smb

let slot_of_global pool g =
  let lps = les_per_smb pool in
  let smb = g / lps in
  let within = g mod lps in
  { smb; mb = within / pool.arch_.Arch.les_per_mb; le = within mod pool.arch_.Arch.les_per_mb }

let global_of_slot pool s =
  (s.smb * les_per_smb pool) + (s.mb * pool.arch_.Arch.les_per_mb) + s.le

let smb_table pool s =
  match Hashtbl.find_opt pool.smb_values s with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 32 in
    Hashtbl.replace pool.smb_values s tbl;
    tbl

let slot_table map key =
  match Hashtbl.find_opt map key with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace map key tbl;
    tbl

(* Pin pressure if LUT [l] (producing [out], consuming [ins]) joins
   (smb, ts): current inputs + new external fanins - anything this LUT's
   own output satisfies later is not modelled (conservative). *)
let pins_after pool s ts ~out ~ins =
  let inputs = slot_table pool.smb_inputs (s, ts) in
  let produced = slot_table pool.smb_produced (s, ts) in
  let extra = ref 0 in
  List.iter
    (fun v ->
      if (not (Hashtbl.mem inputs v)) && (not (Hashtbl.mem produced v)) && v <> out
      then incr extra)
    ins;
  (* the new LUT's output may satisfy previously-external inputs, but pins
     are already counted; keep the conservative figure *)
  Hashtbl.length inputs + !extra

let commit_pins pool s ts ~out ~ins =
  let inputs = slot_table pool.smb_inputs (s, ts) in
  let produced = slot_table pool.smb_produced (s, ts) in
  List.iter
    (fun v -> if not (Hashtbl.mem produced v) then Hashtbl.replace inputs v ())
    ins;
  Hashtbl.replace produced out ();
  Hashtbl.remove inputs out

let le_free pool g ts = not (Hashtbl.mem pool.le_busy (g, ts))

let smb_has_free_le pool s ts =
  let lps = les_per_smb pool in
  let rec loop i = i < lps && (le_free pool (global_le pool s i) ts || loop (i + 1)) in
  loop 0

let first_free_le pool s ts =
  let lps = les_per_smb pool in
  let rec loop i =
    if i >= lps then None
    else if le_free pool (global_le pool s i) ts then Some i
    else loop (i + 1)
  in
  loop 0

(* Flip-flop slots: ff id = global_le * ffs_per_le + index. *)
let ff_free_interval pool ff lo hi =
  let rec loop ts = ts > hi || ((not (Hashtbl.mem pool.ff_busy (ff, ts))) && loop (ts + 1)) in
  loop lo

let occupy_ff pool ff lo hi =
  for ts = lo to hi do
    Hashtbl.replace pool.ff_busy (ff, ts) ()
  done

let grow pool =
  Telemetry.incr c_smbs_grown;
  pool.smbs <- pool.smbs + 1

(* ---------------------------------------------------------------- pack *)

let pack (plan : Mapper.plan) ~arch =
  let planes = plan.Mapper.planes in
  let num_planes = Array.length planes in
  let stages = plan.Mapper.stages in
  (* In pipelined mode every plane runs concurrently, so a timeslot is just
     the folding cycle: two planes' LUTs in the same cycle must use
     different LEs, which is exactly what the shared occupancy enforces. *)
  let pipelined = plan.Mapper.pipelined in
  let timeslots = if pipelined then stages else num_planes * stages in
  let ts_of ~plane ~cycle =
    if pipelined then cycle - 1 else ((plane - 1) * stages) + (cycle - 1)
  in
  let pool =
    { arch_ = arch;
      timeslots;
      smbs = max 1 (Arch.les_to_smbs arch plan.Mapper.les);
      le_busy = Hashtbl.create 1024;
      ff_busy = Hashtbl.create 1024;
      smb_values = Hashtbl.create 64;
      smb_inputs = Hashtbl.create 256;
      smb_produced = Hashtbl.create 256 }
  in
  let lut_slots : (int * int, slot) Hashtbl.t = Hashtbl.create 1024 in
  let lut_cycle : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* Values associated with a LUT for the attraction function. *)
  let lut_keys plane network l =
    match Lut_network.node network l with
    | Lut_network.Input _ -> []
    | Lut_network.Lut { fanins; _ } ->
      let fanin_key f =
        match Lut_network.node network f with
        | Lut_network.Lut _ -> Some (V_lut (plane, f))
        | Lut_network.Input (Lut_network.Register_bit (r, b)) -> Some (V_state (r, b))
        | Lut_network.Input (Lut_network.Wire_bit (w, b)) -> Some (V_state (w, b))
        | Lut_network.Input (Lut_network.Pi_bit (s, b)) -> Some (V_pi (s, b))
        | Lut_network.Input (Lut_network.Const_bit _) -> None
      in
      V_lut (plane, l)
      :: (Array.to_list fanins |> List.filter_map fanin_key)
  in
  (* --- LUT packing, cycle by cycle --- *)
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      let plane = pl.Mapper.plane_index in
      (* distinct external inputs per unit, for seed ordering *)
      let unit_inputs u =
        let seen = Hashtbl.create 16 in
        List.iter
          (fun l ->
            match Lut_network.node network l with
            | Lut_network.Lut { fanins; _ } ->
              Array.iter
                (fun f ->
                  if part.Partition.unit_of_lut.(f) <> u.Partition.uid then
                    Hashtbl.replace seen f ())
                fanins
            | Lut_network.Input _ -> ())
          u.Partition.luts;
        Hashtbl.length seen
      in
      (* timing criticality (paper Section 4.3): a LUT's slack within the
         plane; LUTs on the longest paths pack first and therefore get the
         best-shared SMBs *)
      let depth_arr = Lut_network.depths network in
      let height = Array.make (Lut_network.size network) 0 in
      let fanouts = Lut_network.fanouts network in
      for id = Lut_network.size network - 1 downto 0 do
        match Lut_network.node network id with
        | Lut_network.Input _ -> ()
        | Lut_network.Lut _ ->
          height.(id) <-
            List.fold_left (fun acc f -> max acc (1 + height.(f))) 1 fanouts.(id)
      done;
      let network_depth = Array.fold_left max 1 depth_arr in
      let criticality l =
        (* path length through l, normalized; 1.0 = on a longest path *)
        float_of_int (depth_arr.(l) + height.(l) - 1) /. float_of_int network_depth
      in
      for cycle = 1 to stages do
        let ts = ts_of ~plane ~cycle in
        let units_here =
          Array.to_list part.Partition.units
          |> List.filter (fun u -> pl.Mapper.schedule.(u.Partition.uid) = cycle)
          |> List.map (fun u -> (unit_inputs u, u))
          |> List.sort (fun (a, _) (b, _) -> compare b a)
        in
        List.iter
          (fun (_, u) ->
            (* LUTs within a unit: critical and well-connected first *)
            let luts =
              List.map
                (fun l ->
                  let fanin_count =
                    match Lut_network.node network l with
                    | Lut_network.Lut { fanins; _ } -> Array.length fanins
                    | Lut_network.Input _ -> 0
                  in
                  ((criticality l, fanin_count), l))
                u.Partition.luts
              |> List.sort (fun (a, _) (b, _) -> compare b a)
              |> List.map snd
            in
            List.iter
              (fun l ->
                let keys = lut_keys plane network l in
                let out, ins =
                  match keys with
                  | out :: ins -> (out, ins)
                  | [] -> (V_lut (plane, l), [])
                in
                (* score every SMB with a free LE and spare input pins in
                   this timeslot *)
                let best = ref None in
                for s = 0 to pool.smbs - 1 do
                  if smb_has_free_le pool s ts
                     && pins_after pool s ts ~out ~ins <= arch.Arch.smb_input_pins
                  then begin
                    let tbl = smb_table pool s in
                    let score =
                      List.fold_left
                        (fun acc k -> if Hashtbl.mem tbl k then acc + 1 else acc)
                        0 keys
                    in
                    match !best with
                    | None -> best := Some (score, s)
                    | Some (bs, _) when score > bs -> best := Some (score, s)
                    | Some _ -> ()
                  end
                done;
                let s =
                  match !best with
                  | Some (_, s) -> s
                  | None ->
                    grow pool;
                    pool.smbs - 1
                in
                let le_idx =
                  match first_free_le pool s ts with
                  | Some i -> i
                  | None -> assert false
                in
                Telemetry.incr c_luts_packed;
                let g = global_le pool s le_idx in
                Hashtbl.replace pool.le_busy (g, ts) ();
                Hashtbl.replace lut_slots (plane, l) (slot_of_global pool g);
                Hashtbl.replace lut_cycle (plane, l) cycle;
                commit_pins pool s ts ~out ~ins;
                let tbl = smb_table pool s in
                List.iter (fun k -> Hashtbl.replace tbl k ()) keys)
              luts)
          units_here
      done)
    planes;
  (* --- flip-flop allocation --- *)
  let ff_slots : (value, slot * int) Hashtbl.t = Hashtbl.create 256 in
  let ffs_per_le = arch.Arch.ffs_per_le in
  let alloc_ff ~prefer ~lo ~hi value =
    Telemetry.incr c_ffs_allocated;
    (* candidate global LE order: preferred LE, its MB, its SMB, everything *)
    let lps = Arch.les_per_smb arch in
    let candidates = ref [] in
    let push g = candidates := g :: !candidates in
    (match prefer with
     | Some slot ->
       let g0 = global_of_slot pool slot in
       (* everything else in pool order *)
       for s = pool.smbs - 1 downto 0 do
         for i = lps - 1 downto 0 do
           let g = global_le pool s i in
           if g <> g0 && s <> slot.smb then push g
         done
       done;
       (* same SMB *)
       for i = lps - 1 downto 0 do
         let g = global_le pool slot.smb i in
         if g <> g0 && i / arch.Arch.les_per_mb <> slot.mb then push g
       done;
       (* same MB *)
       for i = arch.Arch.les_per_mb - 1 downto 0 do
         let g = global_le pool slot.smb ((slot.mb * arch.Arch.les_per_mb) + i) in
         if g <> g0 then push g
       done;
       push g0
     | None ->
       for s = pool.smbs - 1 downto 0 do
         for i = lps - 1 downto 0 do
           push (global_le pool s i)
         done
       done);
    let rec try_candidates = function
      | [] ->
        (* no capacity anywhere: grow the pool and take the fresh SMB *)
        grow pool;
        let g = global_le pool (pool.smbs - 1) 0 in
        let ff = (g * ffs_per_le) + 0 in
        occupy_ff pool ff lo hi;
        (slot_of_global pool g, 0)
      | g :: rest ->
        let rec try_ff idx =
          if idx >= ffs_per_le then None
          else begin
            let ff = (g * ffs_per_le) + idx in
            if ff_free_interval pool ff lo hi then Some idx else try_ff (idx + 1)
          end
        in
        (match try_ff 0 with
         | Some idx ->
           let ff = (g * ffs_per_le) + idx in
           occupy_ff pool ff lo hi;
           (slot_of_global pool g, idx)
         | None -> try_candidates rest)
    in
    let where = try_candidates !candidates in
    Hashtbl.replace ff_slots value where;
    where
  in
  (* home slots for every state bit; producers preferred *)
  let state_producer : (int * int, slot) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      List.iter
        (fun (target, node) ->
          match target with
          | Lut_network.Reg_target (r, b) | Lut_network.Wire_target (r, b) ->
            (match Hashtbl.find_opt lut_slots (pl.Mapper.plane_index, node) with
             | Some slot -> Hashtbl.replace state_producer (r, b) slot
             | None -> ())
          | Lut_network.Po_target _ -> ())
        (Lut_network.outputs pl.Mapper.network))
    planes;
  (* Every register bit of the design is state, whether or not any plane's
     logic touches it (delay lines and registered outputs included); wire
     bits come from the plane networks. *)
  let state_bits = Hashtbl.create 64 in
  List.iter
    (fun (s : Nanomap_rtl.Rtl.signal) ->
      for b = 0 to s.Nanomap_rtl.Rtl.width - 1 do
        Hashtbl.replace state_bits (s.Nanomap_rtl.Rtl.id, b) ()
      done)
    (Nanomap_rtl.Rtl.registers plan.Mapper.design);
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      Lut_network.iter
        (fun _ -> function
          | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
            Hashtbl.replace state_bits (r, b) ()
          | Lut_network.Input
              (Lut_network.Register_bit _ | Lut_network.Pi_bit _
              | Lut_network.Const_bit _)
          | Lut_network.Lut _ -> ())
        pl.Mapper.network;
      List.iter
        (fun (target, _) ->
          match target with
          | Lut_network.Wire_target (r, b) -> Hashtbl.replace state_bits (r, b) ()
          | Lut_network.Reg_target _ | Lut_network.Po_target _ -> ())
        (Lut_network.outputs pl.Mapper.network))
    planes;
  Hashtbl.iter
    (fun (r, b) () ->
      ignore
        (alloc_ff
           ~prefer:(Hashtbl.find_opt state_producer (r, b))
           ~lo:0 ~hi:(timeslots - 1)
           (V_state (r, b))))
    state_bits;
  (* intermediates and shadows, merged: a LUT output needs a flip-flop from
     the cycle after it computes until its last same-plane consumer — and
     until the end of the plane when it drives a register/wire target (the
     shadow waiting for the commit). One slot serves both, it is the same
     bit. *)
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      let fanouts = Lut_network.fanouts network in
      let has_target = Hashtbl.create 32 in
      List.iter
        (fun (target, node) ->
          match target with
          | Lut_network.Reg_target _ | Lut_network.Wire_target _ ->
            Hashtbl.replace has_target node ()
          | Lut_network.Po_target _ -> ())
        (Lut_network.outputs network);
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut _ ->
            let u = part.Partition.unit_of_lut.(l) in
            if u >= 0 then begin
              let c = pl.Mapper.schedule.(u) in
              let last =
                List.fold_left
                  (fun acc f ->
                    let v = part.Partition.unit_of_lut.(f) in
                    if v >= 0 then max acc pl.Mapper.schedule.(v) else acc)
                  c fanouts.(l)
              in
              let last = if Hashtbl.mem has_target l then stages else last in
              if last > c then
                ignore
                  (alloc_ff
                     ~prefer:(Hashtbl.find_opt lut_slots (plane, l))
                     ~lo:(ts_of ~plane ~cycle:c + 1)
                     ~hi:(ts_of ~plane ~cycle:last)
                     (V_lut (plane, l)))
            end)
        network)
    planes;
  (* --- pads --- *)
  let pads = Hashtbl.create 32 in
  let next_pad = ref 0 in
  let pad_of value =
    match Hashtbl.find_opt pads value with
    | Some id -> id
    | None ->
      let id = !next_pad in
      incr next_pad;
      Hashtbl.replace pads value id;
      id
  in
  (* --- net extraction --- *)
  let nets = ref [] in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      (* sinks per (value, cycle) *)
      let sinks : (value * int, endpoint list ref) Hashtbl.t = Hashtbl.create 256 in
      let add_sink value cycle ep =
        let key = (value, cycle) in
        match Hashtbl.find_opt sinks key with
        | Some l -> if not (List.mem ep !l) then l := ep :: !l
        | None -> Hashtbl.replace sinks key (ref [ ep ])
      in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let u = part.Partition.unit_of_lut.(l) in
            let c = pl.Mapper.schedule.(u) in
            let my_smb = (Hashtbl.find lut_slots (plane, l)).smb in
            Array.iter
              (fun f ->
                match Lut_network.node network f with
                | Lut_network.Lut _ -> add_sink (V_lut (plane, f)) c (At_smb my_smb)
                | Lut_network.Input (Lut_network.Register_bit (r, b))
                | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
                  add_sink (V_state (r, b)) c (At_smb my_smb)
                | Lut_network.Input (Lut_network.Pi_bit (s, b)) ->
                  add_sink (V_pi (s, b)) c (At_smb my_smb)
                | Lut_network.Input (Lut_network.Const_bit _) -> ())
              fanins)
        network;
      (* target writes: producer value must reach its home FF / pad *)
      List.iter
        (fun (target, node) ->
          match Lut_network.node network node with
          | Lut_network.Input _ -> () (* pass-through outputs are wiring *)
          | Lut_network.Lut _ ->
            let u = part.Partition.unit_of_lut.(node) in
            let c = pl.Mapper.schedule.(u) in
            (match target with
             | Lut_network.Reg_target (r, b) | Lut_network.Wire_target (r, b) ->
               (match Hashtbl.find_opt ff_slots (V_state (r, b)) with
                | Some (slot, _) -> add_sink (V_lut (plane, node)) c (At_smb slot.smb)
                | None -> ())
             | Lut_network.Po_target name ->
               add_sink (V_lut (plane, node)) c
                 (At_pad (pad_of (V_lut (plane, node))));
               ignore name))
        (Lut_network.outputs network);
      (* build nets with drivers *)
      Hashtbl.iter
        (fun (value, cycle) sink_list ->
          let driver =
            match value with
            | V_lut (p, l) ->
              assert (p = plane);
              let produced_at =
                pl.Mapper.schedule.(part.Partition.unit_of_lut.(l))
              in
              if produced_at = cycle then
                At_smb (Hashtbl.find lut_slots (p, l)).smb
              else begin
                (* read from the intermediate flip-flop copy *)
                match Hashtbl.find_opt ff_slots value with
                | Some (slot, _) -> At_smb slot.smb
                | None -> At_smb (Hashtbl.find lut_slots (p, l)).smb
              end
            | V_state _ ->
              (match Hashtbl.find_opt ff_slots value with
               | Some (slot, _) -> At_smb slot.smb
               | None -> At_pad (pad_of value))
            | V_pi _ -> At_pad (pad_of value)
          in
          let pruned = List.filter (fun ep -> ep <> driver) !sink_list in
          if pruned <> [] then
            nets := { plane; cycle; value; driver; sinks = pruned } :: !nets)
        sinks)
    planes;
  let les_used =
    let seen = Hashtbl.create 256 in
    Hashtbl.iter (fun (g, _) () -> Hashtbl.replace seen g ()) pool.le_busy;
    Hashtbl.iter
      (fun (ff, _) () -> Hashtbl.replace seen (ff / ffs_per_le) ())
      pool.ff_busy;
    Hashtbl.length seen
  in
  { arch;
    num_smbs = pool.smbs;
    les_used;
    lut_slots;
    ff_slots;
    nets = !nets;
    pads = Hashtbl.fold (fun v id acc -> (v, id) :: acc) pads [] }

let area_les t = t.num_smbs * Arch.les_per_smb t.arch

let validate t (plan : Mapper.plan) =
  let stages = plan.Mapper.stages in
  (* every scheduled LUT has a slot; no LE double-booked per timeslot *)
  let le_at : (int * int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut _ ->
            (match Hashtbl.find_opt t.lut_slots (plane, l) with
             | None ->
               Diag.fail ~stage:"cluster" ~code:"lut-unplaced"
                 ~context:
                   [ ("plane", string_of_int plane); ("lut", string_of_int l) ]
                 "scheduled LUT has no LE slot"
             | Some slot ->
               if slot.smb < 0 || slot.smb >= t.num_smbs then
                 Diag.fail ~stage:"cluster" ~code:"slot-range"
                   ~context:
                     [ ("smb", string_of_int slot.smb);
                       ("num_smbs", string_of_int t.num_smbs) ]
                   "LE slot names an SMB outside the cluster";
               let u = pl.Mapper.partition.Partition.unit_of_lut.(l) in
               let cycle = pl.Mapper.schedule.(u) in
               let ts = ((plane - 1) * stages) + (cycle - 1) in
               let g =
                 (slot.smb * Arch.les_per_smb t.arch)
                 + (slot.mb * t.arch.Arch.les_per_mb)
                 + slot.le
               in
               if Hashtbl.mem le_at (g, ts, 0) then
                 Diag.fail ~stage:"cluster" ~code:"le-double-booked"
                   ~context:
                     [ ("plane", string_of_int plane);
                       ("cycle", string_of_int cycle);
                       ("smb", string_of_int slot.smb);
                       ("mb", string_of_int slot.mb);
                       ("le", string_of_int slot.le) ]
                   "LE hosts two LUTs in one folding cycle";
               Hashtbl.replace le_at (g, ts, 0) ()))
        pl.Mapper.network)
    plan.Mapper.planes;
  (* net endpoints in range *)
  List.iter
    (fun n ->
      let check = function
        | At_smb s ->
          if s < 0 || s >= t.num_smbs then
            Diag.fail ~stage:"cluster" ~code:"endpoint-range"
              ~context:
                [ ("smb", string_of_int s);
                  ("num_smbs", string_of_int t.num_smbs) ]
              "net endpoint names an SMB outside the cluster"
        | At_pad _ -> ()
      in
      check n.driver;
      List.iter check n.sinks;
      if n.sinks = [] then
        Diag.fail ~stage:"cluster" ~code:"empty-net"
          ~context:
            [ ("plane", string_of_int n.plane); ("cycle", string_of_int n.cycle) ]
          "net has a driver but no sinks")
    t.nets

let interconnect_stats t =
  let inter = List.length t.nets in
  let pad_nets =
    List.length
      (List.filter
         (fun n ->
           (match n.driver with At_pad _ -> true | At_smb _ -> false)
           || List.exists (function At_pad _ -> true | At_smb _ -> false) n.sinks)
         t.nets)
  in
  let multi_sink = List.length (List.filter (fun n -> List.length n.sinks > 1) t.nets) in
  [ ("nets", inter); ("pad_nets", pad_nets); ("multi_sink_nets", multi_sink) ]
