(** Temporal clustering (paper Section 4.3): assign every scheduled LUT of
    every folding cycle to a physical logic element, pack LEs into MBs and
    SMBs, and allocate flip-flops for every value that must live across
    folding cycles.

    Because of temporal folding a physical LE hosts a {e different} LUT in
    each folding cycle (one NRAM configuration set per cycle), so packing is
    constructive over a pool of SMBs whose per-cycle occupancy is tracked
    separately: a LUT can enter an SMB in cycle 3 even though the same LEs
    are full in cycle 2. The attraction of a candidate LUT to an SMB is the
    number of values (fanins, outputs) it shares with LUTs already packed
    there {e in any folding cycle} — the paper's max-over-cycles attraction
    — plus a bonus for LUTs of the same scheduling unit.

    Flip-flop allocation distinguishes (cf. {!Nanomap_core.Sched}):
    - {e home} slots: one per design state bit (register or inter-plane
      wire), occupied in every cycle;
    - {e shadow} slots: register/wire values waiting for the plane commit;
    - {e intermediate} slots: LUT outputs consumed in later cycles.
    Each allocation prefers the producer's own LE, then its MB, its SMB,
    and finally any free slot; the pool grows if capacity runs out, so
    clustering also yields the {e real} LE count that the Fig. 2 area check
    compares against the constraint. *)

type slot = {
  smb : int;
  mb : int;  (** MB within the SMB *)
  le : int;  (** LE within the MB *)
}

(** A value that can travel over the interconnect. *)
type value =
  | V_lut of int * int      (** plane index (1-based), LUT node id *)
  | V_state of int * int    (** register/wire RTL signal id, bit *)
  | V_pi of int * int       (** primary-input RTL signal id, bit *)

type endpoint =
  | At_smb of int
  | At_pad of int           (** I/O pad id (see {!pads}) *)

(** One routed connection bundle of one folding cycle of one plane. *)
type net = {
  plane : int;
  cycle : int;
  value : value;
  driver : endpoint;
  sinks : endpoint list;    (** distinct, excludes the driver *)
}

type t = {
  arch : Nanomap_arch.Arch.t;
  num_smbs : int;
  les_used : int;                  (** distinct LEs hosting at least one LUT
                                       or flip-flop *)
  lut_slots : (int * int, slot) Hashtbl.t;  (** (plane, node) -> LE *)
  ff_slots : (value, slot * int) Hashtbl.t; (** stored value -> FF slot *)
  nets : net list;
  pads : (value * int) list;       (** PI/PO pad assignment *)
}

val pack : Nanomap_core.Mapper.plan -> arch:Nanomap_arch.Arch.t -> t
(** Never fails: the SMB pool grows as needed. *)

val area_les : t -> int
(** SMB-granular area: [num_smbs * les_per_smb] — what the Fig. 2 area
    check uses. *)

val validate : t -> Nanomap_core.Mapper.plan -> unit
(** Structural invariants: every scheduled LUT placed, no LE hosts two
    LUTs in one cycle, no flip-flop double-booked in any cycle, all net
    endpoints within bounds. Raises [Nanomap_util.Diag.Fail] (stage
    ["cluster"], codes ["lut-unplaced"], ["slot-range"],
    ["le-double-booked"], ["endpoint-range"], ["empty-net"]). *)

val interconnect_stats : t -> (string * int) list
(** Counters used by the experiments: total nets, intra-SMB-only values
    (absorbed), inter-SMB nets, pad nets. *)
