module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Telemetry = Nanomap_util.Telemetry

let c_rebalance_moves = Telemetry.counter "cluster.rebalance_moves"

type report = {
  max_smb_inputs : int;
  smb_pin_violations : int;
  max_mb_ports : int;
  mb_port_violations : int;
  local_connections : int;
  external_connections : int;
}

(* Per (smb, timeslot): the LUTs configured there, with their fanin values
   and output values; plus the values resident in the SMB's flip-flops. *)
let gather (cl : Cluster.t) (plan : Mapper.plan) =
  let stages = plan.Mapper.stages in
  let by_slot : (int * int, (int * int * Cluster.value list * Cluster.value) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let u = part.Partition.unit_of_lut.(l) in
            let cycle = pl.Mapper.schedule.(u) in
            let ts = ((plane - 1) * stages) + (cycle - 1) in
            let slot = Hashtbl.find cl.Cluster.lut_slots (plane, l) in
            let ins =
              Array.to_list fanins
              |> List.filter_map (fun f ->
                     match Lut_network.node network f with
                     | Lut_network.Lut _ -> Some (Cluster.V_lut (plane, f))
                     | Lut_network.Input (Lut_network.Register_bit (r, b))
                     | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
                       Some (Cluster.V_state (r, b))
                     | Lut_network.Input (Lut_network.Pi_bit (s, b)) ->
                       Some (Cluster.V_pi (s, b))
                     | Lut_network.Input (Lut_network.Const_bit _) -> None)
            in
            let key = (slot.Cluster.smb, ts) in
            let cur =
              match Hashtbl.find_opt by_slot key with
              | Some r -> r
              | None ->
                let r = ref [] in
                Hashtbl.replace by_slot key r;
                r
            in
            cur := (plane, l, ins, Cluster.V_lut (plane, l)) :: !cur)
        network)
    plan.Mapper.planes;
  by_slot

(* values resident in an SMB's flip-flops (any configuration; conservative
   in the right direction — a value in a local FF needs no input pin) *)
let ff_resident (cl : Cluster.t) =
  let by_smb : (int, (Cluster.value, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun value ((slot : Cluster.slot), _) ->
      let tbl =
        match Hashtbl.find_opt by_smb slot.Cluster.smb with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 32 in
          Hashtbl.replace by_smb slot.Cluster.smb t;
          t
      in
      Hashtbl.replace tbl value ())
    cl.Cluster.ff_slots;
  by_smb

let analyze (cl : Cluster.t) (plan : Mapper.plan) =
  let arch = cl.Cluster.arch in
  let by_slot = gather cl plan in
  let resident = ff_resident cl in
  let max_smb_inputs = ref 0 and smb_pin_violations = ref 0 in
  let max_mb_ports = ref 0 and mb_port_violations = ref 0 in
  let local_connections = ref 0 and external_connections = ref 0 in
  Hashtbl.iter
    (fun (smb, _ts) luts ->
      let produced = Hashtbl.create 16 in
      List.iter (fun (_, _, _, out) -> Hashtbl.replace produced out ()) !luts;
      let in_ffs =
        Option.value ~default:(Hashtbl.create 1) (Hashtbl.find_opt resident smb)
      in
      let internal v = Hashtbl.mem produced v || Hashtbl.mem in_ffs v in
      (* SMB-level pins *)
      let pins = Hashtbl.create 16 in
      List.iter
        (fun (_, _, ins, _) ->
          List.iter
            (fun v ->
              if internal v then incr local_connections
              else begin
                incr external_connections;
                Hashtbl.replace pins v ()
              end)
            ins)
        !luts;
      let pin_count = Hashtbl.length pins in
      if pin_count > !max_smb_inputs then max_smb_inputs := pin_count;
      if pin_count > arch.Arch.smb_input_pins then incr smb_pin_violations;
      (* MB-level ports: values a MB consumes that it does not itself
         produce in this configuration *)
      let mb_of (plane, l) =
        (Hashtbl.find cl.Cluster.lut_slots (plane, l)).Cluster.mb
      in
      let mb_produced = Hashtbl.create 16 and mb_consumed = Hashtbl.create 16 in
      List.iter
        (fun (plane, l, ins, out) ->
          let m = mb_of (plane, l) in
          Hashtbl.replace mb_produced (m, out) ();
          List.iter (fun v -> Hashtbl.replace mb_consumed (m, v) ()) ins)
        !luts;
      let ports = Hashtbl.create 8 in
      Hashtbl.iter
        (fun (m, v) () ->
          if not (Hashtbl.mem mb_produced (m, v)) then begin
            let tbl =
              match Hashtbl.find_opt ports m with
              | Some t -> t
              | None ->
                let t = Hashtbl.create 8 in
                Hashtbl.replace ports m t;
                t
            in
            Hashtbl.replace tbl v ()
          end)
        mb_consumed;
      Hashtbl.iter
        (fun _ tbl ->
          let n = Hashtbl.length tbl in
          if n > !max_mb_ports then max_mb_ports := n;
          if n > arch.Arch.mb_input_ports then incr mb_port_violations)
        ports)
    by_slot;
  { max_smb_inputs = !max_smb_inputs;
    smb_pin_violations = !smb_pin_violations;
    max_mb_ports = !max_mb_ports;
    mb_port_violations = !mb_port_violations;
    local_connections = !local_connections;
    external_connections = !external_connections }

(* Greedy rebalance: within each (smb, ts), re-assign LUTs to MBs by
   affinity (shared fanin values), filling MBs up to their LE capacity.
   This can only improve sharing relative to the arbitrary first-free-LE
   order the packer used. *)
let rebalance (cl : Cluster.t) (plan : Mapper.plan) =
  let arch = cl.Cluster.arch in
  let by_slot = gather cl plan in
  let moved = ref 0 in
  Hashtbl.iter
    (fun (smb, _ts) luts ->
      let num_mbs = arch.Arch.mbs_per_smb in
      let cap = arch.Arch.les_per_mb in
      let mb_fill = Array.make num_mbs 0 in
      let mb_values : (Cluster.value, unit) Hashtbl.t array =
        Array.init num_mbs (fun _ -> Hashtbl.create 8)
      in
      (* biggest fanin first *)
      let ordered =
        List.sort
          (fun (_, _, a, _) (_, _, b, _) -> compare (List.length b) (List.length a))
          !luts
      in
      List.iter
        (fun (plane, l, ins, out) ->
          (* best MB: most shared values, with space *)
          let best = ref (-1) and best_score = ref (-1) in
          for m = 0 to num_mbs - 1 do
            if mb_fill.(m) < cap then begin
              let score =
                List.fold_left
                  (fun acc v -> if Hashtbl.mem mb_values.(m) v then acc + 1 else acc)
                  0 ins
              in
              if score > !best_score then begin
                best_score := score;
                best := m
              end
            end
          done;
          let m = if !best >= 0 then !best else 0 in
          let le = mb_fill.(m) in
          mb_fill.(m) <- mb_fill.(m) + 1;
          List.iter (fun v -> Hashtbl.replace mb_values.(m) v ()) (out :: ins);
          let old_slot = Hashtbl.find cl.Cluster.lut_slots (plane, l) in
          let new_slot = { Cluster.smb; mb = m; le } in
          if old_slot <> new_slot then begin
            incr moved;
            Telemetry.incr c_rebalance_moves;
            Hashtbl.replace cl.Cluster.lut_slots (plane, l) new_slot
          end)
        ordered)
    by_slot;
  !moved
