module Arch = Nanomap_arch.Arch
module Telemetry = Nanomap_util.Telemetry

let c_force_evals = Telemetry.counter "fds.force_evals"
let c_passes = Telemetry.counter "fds.passes"

(* All forces are evaluated in O(1) via prefix sums over the distribution
   graphs: sum dg[a..b] = pref(b) - pref(a-1). *)
let prefix dg =
  let n = Array.length dg in
  let pref = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    pref.(i + 1) <- pref.(i) +. dg.(i)
  done;
  pref

(* Sum of dg over the (1-based) cycle interval [a,b], clipped to bounds. *)
let seg pref ~stages a b =
  let a = max 1 a and b = min stages b in
  if a > b then 0.0 else pref.(b + 1) -. pref.(a)

(* Eq. 13 for a uniform frame [a,b] collapsing onto cycle j:
   sum_k dg(k) * delta_p(k) = w * (dg(j) - avg(dg over frame)). *)
let self_force dg pref ~stages ~weight ~a ~b j =
  let span = float_of_int (b - a + 1) in
  let w = float_of_int weight in
  w *. (dg.(j) -. (seg pref ~stages a b /. span))

(* Force on a neighbour whose frame [a,b] clips to [a',b']. *)
let neighbour_force pref ~stages ~weight ~a ~b ~a' ~b' =
  if a' > b' then infinity
  else begin
    let span = float_of_int (b - a + 1) in
    let span' = float_of_int (b' - a' + 1) in
    let w = float_of_int weight in
    w *. ((seg pref ~stages a' b' /. span') -. (seg pref ~stages a b /. span))
  end

(* Expected storage-DG inner product of one storage operation:
   inside the overlap the probability is w, elsewhere in max_life it is the
   Eq. 9 level. *)
let storage_inner (t : Sched.t) pref ~weight (lt : Sched.lifetime) =
  let w = float_of_int weight in
  let stages = t.Sched.stages in
  let sum_max = seg pref ~stages (fst lt.Sched.max_life) (snd lt.Sched.max_life) in
  let sum_ov = seg pref ~stages (fst lt.Sched.overlap) (snd lt.Sched.overlap) in
  let outside = Sched.span_prob lt *. w in
  (outside *. (sum_max -. sum_ov)) +. (w *. sum_ov)

(* Both storage operations of unit u (intermediates + shadow) re-evaluated
   with the source fixed at cycle j, minus the current expectation. *)
let storage_self_force (t : Sched.t) fr pref u j =
  let delta kind weight =
    let old_lt, new_lt =
      match kind with
      | `Intermediate ->
        ( Sched.intermediate_lifetime t fr u,
          Sched.intermediate_lifetime ~source_cycle:j t fr u )
      | `Shadow ->
        (Sched.shadow_lifetime t fr u, Sched.shadow_lifetime ~source_cycle:j t fr u)
    in
    match old_lt, new_lt with
    | Some o, Some n ->
      storage_inner t pref ~weight n -. storage_inner t pref ~weight o
    | None, None -> 0.0
    | Some _, None | None, Some _ -> 0.0
  in
  delta `Intermediate t.Sched.store_bits.(u) +. delta `Shadow t.Sched.target_bits.(u)

let schedule (t : Sched.t) ~arch =
  let n = Array.length t.Sched.weights in
  let fixed : int option array = Array.make n None in
  let h = float_of_int arch.Arch.luts_per_le in
  let l = float_of_int arch.Arch.ffs_per_le in
  let stages = t.Sched.stages in
  let remaining = ref n in
  while !remaining > 0 do
    Telemetry.incr c_passes;
    let fr = Sched.frames t ~fixed in
    let lut_dg = Sched.lut_dg t fr in
    let storage_dg = Sched.storage_dg t fr in
    let lut_pref = prefix lut_dg in
    let sto_pref = prefix storage_dg in
    (* Commit every unit whose frame is already a single cycle: their
       assignment is forced, and skipping the force evaluation keeps the
       whole pass near the O(n^2) the paper quotes. *)
    let committed = ref 0 in
    for u = 0 to n - 1 do
      if fixed.(u) = None && fr.Sched.asap.(u) = fr.Sched.alap.(u) then begin
        fixed.(u) <- Some fr.Sched.asap.(u);
        incr committed;
        decr remaining
      end
    done;
    if !committed = 0 && !remaining > 0 then begin
      let best_unit = ref (-1) and best_cycle = ref 0 in
      let best_force = ref infinity in
      for u = 0 to n - 1 do
        if fixed.(u) = None then begin
          let a = fr.Sched.asap.(u) and b = fr.Sched.alap.(u) in
          for j = a to b do
            Telemetry.incr c_force_evals;
            let lut_self =
              self_force lut_dg lut_pref ~stages ~weight:t.Sched.weights.(u) ~a ~b j
            in
            let sto_self = storage_self_force t fr sto_pref u j in
            let self = Float.max (lut_self /. h) (sto_self /. l) in
            let clip_pred limit acc p =
              let pa = fr.Sched.asap.(p) and pb = fr.Sched.alap.(p) in
              acc
              +. neighbour_force lut_pref ~stages ~weight:t.Sched.weights.(p)
                   ~a:pa ~b:pb ~a':pa ~b':(min pb limit)
            in
            let clip_succ limit acc s =
              let sa = fr.Sched.asap.(s) and sb = fr.Sched.alap.(s) in
              acc
              +. neighbour_force lut_pref ~stages ~weight:t.Sched.weights.(s)
                   ~a:sa ~b:sb ~a':(max sa limit) ~b':sb
            in
            let pred_force =
              List.fold_left (clip_pred (j - 1)) 0.0 t.Sched.preds.(u)
            in
            let pred_force =
              List.fold_left (clip_pred j) pred_force t.Sched.weak_preds.(u)
            in
            let succ_force =
              List.fold_left (clip_succ (j + 1)) 0.0 t.Sched.succs.(u)
            in
            let succ_force =
              List.fold_left (clip_succ j) succ_force t.Sched.weak_succs.(u)
            in
            let total = self +. ((pred_force +. succ_force) /. h) in
            if total < !best_force then begin
              best_force := total;
              best_unit := u;
              best_cycle := j
            end
          done
        end
      done;
      assert (!best_unit >= 0);
      fixed.(!best_unit) <- Some !best_cycle;
      decr remaining
    end
  done;
  let result = Array.map (function Some c -> c | None -> assert false) fixed in
  Sched.check_schedule t result;
  result

let asap_schedule (t : Sched.t) =
  let fixed = Array.make (Array.length t.Sched.weights) None in
  let fr = Sched.frames t ~fixed in
  fr.Sched.asap

let alap_schedule (t : Sched.t) =
  let fixed = Array.make (Array.length t.Sched.weights) None in
  let fr = Sched.frames t ~fixed in
  fr.Sched.alap
