module Rtl = Nanomap_rtl.Rtl
module Levelize = Nanomap_rtl.Levelize
module Decompose = Nanomap_techmap.Decompose
module Simplify = Nanomap_techmap.Simplify
module Flowmap = Nanomap_techmap.Flowmap
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Arch = Nanomap_arch.Arch

let log = Logs.Src.create "nanomap.mapper" ~doc:"NanoMap logic mapping"

module Log = (val Logs.src_log log)

type mapper = Truth_table | Aig

let mapper_of_string = function
  | "tt" | "truth-table" | "flowmap" -> Some Truth_table
  | "aig" -> Some Aig
  | _ -> None

let string_of_mapper = function
  | Truth_table -> "tt"
  | Aig -> "aig"

type prepared = {
  design : Rtl.t;
  levelized : Levelize.t;
  mapper : mapper;
  networks : Lut_network.t array;
  num_luts : int array;
  plane_depths : int array;
  lut_max : int;
  depth_max : int;
  total_luts : int;
  num_planes : int;
  total_ffs : int;
  base_ff_bits : int;
}

let prepare ?(k = 4) ?(mapper = Truth_table) ?(aig_effort = 2) design =
  let levelized = Levelize.levelize design in
  let num_planes = Levelize.num_planes levelized in
  let networks =
    Array.init num_planes (fun i ->
        let tagged = Simplify.run (Decompose.plane levelized (i + 1)) in
        let network =
          match mapper with
          | Truth_table -> Flowmap.map ~k tagged
          | Aig ->
            (* per-cut truth tables cap K at Truth_table.max_arity *)
            Nanomap_techmap.Aig_map.map
              ~k:(min k Nanomap_logic.Truth_table.max_arity)
              ~effort:aig_effort tagged
        in
        Lut_network.validate network;
        network)
  in
  let num_luts = Array.map Lut_network.num_luts networks in
  let plane_depths = Array.map Lut_network.depth networks in
  let lut_max = Array.fold_left max 1 num_luts in
  let depth_max = Array.fold_left max 1 plane_depths in
  let total_luts = Array.fold_left ( + ) 0 num_luts in
  (* All-time state bits: every design register bit plus every inter-plane
     wire bit must be held in some flip-flop at all times. *)
  let wire_bits =
    Array.fold_left
      (fun acc network ->
        List.fold_left
          (fun acc (target, _) ->
            match target with
            | Lut_network.Wire_target _ -> acc + 1
            | Lut_network.Reg_target _ | Lut_network.Po_target _ -> acc)
          acc (Lut_network.outputs network))
      0 networks
  in
  let total_ffs = Levelize.total_flip_flops levelized in
  { design;
    levelized;
    mapper;
    networks;
    num_luts;
    plane_depths;
    lut_max;
    depth_max;
    total_luts;
    num_planes;
    total_ffs;
    base_ff_bits = total_ffs + wire_bits }

type plane_plan = {
  plane_index : int;
  network : Lut_network.t;
  partition : Partition.t;
  problem : Sched.t;
  schedule : int array;
}

type plan = {
  design : Rtl.t;
  level : int;
  stages : int;
  planes : plane_plan array;
  les : int;
  delay_ns : float;
  configs_used : int;
  pipelined : bool;
}

type scheduler = Fds | Asap_baseline

exception No_feasible_mapping of string

let plan_level ?(scheduler = Fds) ?(pipelined = false) p ~arch ~level =
  if level < 1 then invalid_arg "Mapper.plan_level: level < 1";
  let partitions =
    Array.map (fun network -> Partition.partition network ~level) p.networks
  in
  (* Global synchronization: all planes use the same number of folding
     stages — the max of the Eq. 1 view and each plane's precedence
     critical path (glue-LUT chains can exceed ceil(depth/level)). *)
  let stages = ref 1 in
  Array.iteri
    (fun i part ->
      stages :=
        max !stages
          (max
             (Fold.stages_for_level ~depth:p.plane_depths.(i) ~level)
             (Partition.critical_path_units part)))
    partitions;
  let stages = !stages in
  let configs_used = if pipelined then stages else stages * p.num_planes in
  (match arch.Arch.num_reconf with
   | Some kk when stages > 1 && configs_used > kk ->
     raise
       (No_feasible_mapping
          (Printf.sprintf "level %d needs %d configuration sets, NRAM holds %d"
             level configs_used kk))
   | Some _ | None -> ());
  let planes =
    Array.init p.num_planes (fun i ->
        let problem =
          Sched.problem p.networks.(i) partitions.(i) ~stages
            ~base_ff_bits:p.base_ff_bits
        in
        let schedule =
          match scheduler with
          | Fds -> Fds.schedule problem ~arch
          | Asap_baseline -> Fds.asap_schedule problem
        in
        { plane_index = i + 1;
          network = p.networks.(i);
          partition = partitions.(i);
          problem;
          schedule })
  in
  (* Shared mode: planes execute sequentially on the same LEs, so the bound
     is the max across planes. Pipelined mode: planes are resident at the
     same time, so areas add. *)
  let les =
    if pipelined then
      Array.fold_left
        (fun acc pl -> acc + Sched.les_needed pl.problem ~arch pl.schedule)
        0 planes
    else
      Array.fold_left
        (fun acc pl -> max acc (Sched.les_needed pl.problem ~arch pl.schedule))
        1 planes
  in
  let delay_ns =
    Arch.circuit_delay_ns arch ~level ~stages ~num_planes:p.num_planes
  in
  Log.debug (fun m ->
      m "level %d: stages=%d les=%d delay=%.2fns configs=%d" level stages les
        delay_ns configs_used);
  { design = p.design; level; stages; planes; les; delay_ns; configs_used;
    pipelined }

(* Traditional spatial implementation: every plane is one configuration.
   Precedence between scheduling units collapses (combinational chains are
   fine within a single configuration), so the plan is built directly. *)
let no_folding p ~arch =
  let level = p.depth_max in
  let planes =
    Array.init p.num_planes (fun i ->
        let partition = Partition.partition p.networks.(i) ~level in
        let n = Array.length partition.Partition.units in
        let problem =
          { Sched.part = partition;
            stages = 1;
            weights =
              Array.map (fun u -> u.Partition.weight) partition.Partition.units;
            preds = Array.make n [];
            succs = Array.make n [];
            weak_preds = Array.make n [];
            weak_succs = Array.make n [];
            target_bits = Array.make n 0;
            store_bits = Array.make n 0;
            base_ff_bits = p.base_ff_bits }
        in
        { plane_index = i + 1;
          network = p.networks.(i);
          partition;
          problem;
          schedule = Array.make n 1 })
  in
  let les =
    Array.fold_left
      (fun acc pl -> max acc (Sched.les_needed pl.problem ~arch pl.schedule))
      1 planes
  in
  let delay_ns =
    Arch.circuit_delay_ns arch ~level ~stages:1 ~num_planes:p.num_planes
  in
  { design = p.design;
    level;
    stages = 1;
    planes;
    les;
    delay_ns;
    configs_used = p.num_planes;
    pipelined = false }

let delay_min_pipelined ~area p ~arch =
  let level0 =
    Fold.level_pipelined ~depth_max:p.depth_max ~available_le:area
      ~total_luts:p.total_luts
  in
  let min_level =
    (* each plane only needs its own folding cycles in NRAM *)
    match arch.Arch.num_reconf with
    | None -> 1
    | Some k -> max 1 (Nanomap_util.Stats.ceil_div p.depth_max k)
  in
  let rec refine level =
    if level < min_level then
      raise
        (No_feasible_mapping
           (Printf.sprintf "no pipelined folding level fits %d LEs" area))
    else begin
      match plan_level ~pipelined:true p ~arch ~level with
      | plan when plan.les <= area -> plan
      | _ -> refine (level - 1)
      | exception (Sched.Infeasible _ | No_feasible_mapping _) -> refine (level - 1)
    end
  in
  refine (max level0 min_level)

let min_level_for p ~arch =
  Fold.min_level ~depth_max:p.depth_max ~num_planes:p.num_planes
    ~num_reconf:arch.Arch.num_reconf

(* Candidate levels are independent, so with a pool they are planned
   concurrently; results come back in level order either way, and
   infeasible levels are dropped after the join, so the candidate list is
   identical for every worker count. *)
let sweep ?(scheduler = Fds) ?pool p ~arch =
  let lo = min_level_for p ~arch in
  if lo > p.depth_max then []
  else begin
    let levels = Array.init (p.depth_max - lo + 1) (fun i -> lo + i) in
    let eval level =
      match plan_level ~scheduler p ~arch ~level with
      | plan -> Some (level, plan)
      | exception (Sched.Infeasible _ | No_feasible_mapping _) -> None
    in
    let plans =
      match pool with
      | Some pool when Array.length levels > 1 ->
        Nanomap_util.Pool.map pool ~f:eval levels
      | Some _ | None -> Array.map eval levels
    in
    List.filter_map Fun.id (Array.to_list plans)
  end

let delay_min ?area p ~arch =
  match area with
  | None -> no_folding p ~arch
  | Some available_le ->
    let stages0 = Fold.min_stages ~lut_max:p.lut_max ~available_le in
    let level0 = Fold.level_for_stages ~depth_max:p.depth_max ~stages:stages0 in
    let min_level = min_level_for p ~arch in
    let rec refine level =
      if level < min_level then
        raise
          (No_feasible_mapping
             (Printf.sprintf "no folding level in [%d,%d] fits %d LEs" min_level
                level0 available_le))
      else begin
        match plan_level p ~arch ~level with
        | plan when plan.les <= available_le -> plan
        | _ -> refine (level - 1)
        | exception (Sched.Infeasible _ | No_feasible_mapping _) ->
          refine (level - 1)
      end
    in
    (* No-folding may already fit; prefer it, as it has the least delay. *)
    let unfolded = try Some (no_folding p ~arch) with _ -> None in
    (match unfolded with
     | Some plan when plan.les <= available_le -> plan
     | Some _ | None -> refine level0)

let area_min ?delay_ns ?pool p ~arch =
  let candidates = sweep ?pool p ~arch in
  let candidates =
    match delay_ns with
    | None -> candidates
    | Some budget -> List.filter (fun (_, pl) -> pl.delay_ns <= budget) candidates
  in
  (* Also consider no-folding (it may be the only option meeting a tight
     delay budget). *)
  let candidates =
    match no_folding p ~arch with
    | plan ->
      (match delay_ns with
       | Some budget when plan.delay_ns > budget -> candidates
       | Some _ | None -> (plan.level, plan) :: candidates)
    | exception _ -> candidates
  in
  match candidates with
  | [] -> raise (No_feasible_mapping "no folding level meets the delay budget")
  | (_, first) :: rest ->
    List.fold_left
      (fun best (_, pl) -> if pl.les < best.les then pl else best)
      first rest

let at_min ?pool p ~arch =
  let candidates = sweep ?pool p ~arch in
  let candidates =
    match no_folding p ~arch with
    | plan -> (plan.level, plan) :: candidates
    | exception _ -> candidates
  in
  match candidates with
  | [] -> raise (No_feasible_mapping "no feasible folding level")
  | (_, first) :: rest ->
    let product pl = float_of_int pl.les *. pl.delay_ns in
    List.fold_left
      (fun best (_, pl) -> if product pl < product best then pl else best)
      first rest

let both_constraints ?pool ~area ~delay_ns p ~arch =
  let candidates = sweep ?pool p ~arch in
  let candidates =
    match no_folding p ~arch with
    | plan -> (plan.level, plan) :: candidates
    | exception _ -> candidates
  in
  let ok =
    List.filter (fun (_, pl) -> pl.les <= area && pl.delay_ns <= delay_ns) candidates
  in
  match ok with
  | [] ->
    raise
      (No_feasible_mapping
         (Printf.sprintf "no mapping with area <= %d LEs and delay <= %.2f ns" area
            delay_ns))
  | (_, first) :: rest ->
    List.fold_left
      (fun best (_, pl) -> if pl.delay_ns < best.delay_ns then pl else best)
      first rest
