(** Logic mapping: the iterative folding-level search of Fig. 2 (steps 2–6).

    [prepare] runs the front half of the flow once — levelization,
    per-plane decomposition to gates, simplification, FlowMap — since the
    LUT networks do not depend on the folding level. [plan_level] then
    evaluates one candidate level: partition every plane into LUT clusters,
    schedule with FDS (or the ASAP baseline), and report folding stages,
    estimated LE usage, configuration-set usage and the analytical delay.
    The objective drivers iterate over levels exactly as Section 4.1
    prescribes.

    Temporal clustering and placement can later reject a plan (Fig. 2 loops
    back), which callers express by re-invoking the driver with the
    [max_level] restriction below the rejected level. *)

type mapper =
  | Truth_table  (** the seed FlowMap path over the primitive-gate netlist *)
  | Aig          (** priority-cut mapping over the strashed AIG *)

val mapper_of_string : string -> mapper option
(** Accepts ["tt"], ["truth-table"], ["flowmap"], ["aig"]. *)

val string_of_mapper : mapper -> string

type prepared = {
  design : Nanomap_rtl.Rtl.t;
  levelized : Nanomap_rtl.Levelize.t;
  mapper : mapper;                                (** which mapper produced
                                                      the networks *)
  networks : Nanomap_techmap.Lut_network.t array; (** one per plane *)
  num_luts : int array;                           (** per plane *)
  plane_depths : int array;                       (** LUT depth per plane *)
  lut_max : int;                                  (** max over planes *)
  depth_max : int;
  total_luts : int;
  num_planes : int;
  total_ffs : int;
  base_ff_bits : int;     (** register bits + inter-plane wire bits: state
                              that occupies flip-flops at all times *)
}

val prepare :
  ?k:int -> ?mapper:mapper -> ?aig_effort:int -> Nanomap_rtl.Rtl.t -> prepared
(** [k] is the LUT input count (default from the architecture, 4).
    [mapper] selects the technology mapper (default {!Truth_table});
    [aig_effort] (1..3, default 2) is forwarded to
    {!Nanomap_techmap.Aig_map.map} when [mapper = Aig]. *)

type plane_plan = {
  plane_index : int;
  network : Nanomap_techmap.Lut_network.t;
  partition : Nanomap_techmap.Partition.t;
  problem : Sched.t;
  schedule : int array;
}

type plan = {
  design : Nanomap_rtl.Rtl.t;
  level : int;              (** folding level p *)
  stages : int;             (** folding stages per plane (global) *)
  planes : plane_plan array;
  les : int;                (** scheduler LE bound: max over planes and cycles
                                when planes share resources, sum otherwise *)
  delay_ns : float;         (** analytical model delay *)
  configs_used : int;       (** NRAM sets consumed per element *)
  pipelined : bool;         (** Section 4.1's second scenario: planes stay
                                resident simultaneously (Eq. 4); folding
                                happens within each plane only *)
}

type scheduler = Fds | Asap_baseline

exception No_feasible_mapping of string

val plan_level :
  ?scheduler:scheduler ->
  ?pipelined:bool ->
  prepared ->
  arch:Nanomap_arch.Arch.t ->
  level:int ->
  plan
(** Raises {!Sched.Infeasible} if the level cannot satisfy precedence, or
    {!No_feasible_mapping} if it exceeds the NRAM configuration budget.
    With [pipelined:true] (default false) every plane keeps its own LEs and
    its own k configuration sets: area sums over planes but the NRAM budget
    only has to cover one plane's folding cycles. *)

val delay_min_pipelined :
  area:int -> prepared -> arch:Nanomap_arch.Arch.t -> plan
(** The Section 4.1 second scenario: choose the folding level directly by
    Eq. 4 for the given area budget, refining downwards while the schedule
    does not fit. *)

val sweep :
  ?scheduler:scheduler ->
  ?pool:Nanomap_util.Pool.t ->
  prepared ->
  arch:Nanomap_arch.Arch.t ->
  (int * plan) list
(** All feasible levels from the Eq. 3 minimum up to [depth_max], with
    their plans. Never raises; infeasible levels are dropped. With [pool]
    the candidate levels are planned concurrently; the result is
    identical (same order, same plans) for any worker count. *)

(** {2 Objectives (Table 2)} *)

val delay_min :
  ?area:int -> prepared -> arch:Nanomap_arch.Arch.t -> plan
(** Circuit-delay minimization under an optional area constraint — the
    worked objective of Section 4.1: no folding when unconstrained,
    otherwise start from Eqs. 1–2 and decrease the level until the
    scheduler bound fits. Raises {!No_feasible_mapping}. *)

val area_min :
  ?delay_ns:float ->
  ?pool:Nanomap_util.Pool.t ->
  prepared ->
  arch:Nanomap_arch.Arch.t ->
  plan
(** Minimize LEs under an optional delay constraint. [pool] parallelizes
    the underlying level {!sweep}. *)

val at_min : ?pool:Nanomap_util.Pool.t -> prepared -> arch:Nanomap_arch.Arch.t -> plan
(** Minimize the area-delay product (Table 1's objective). [pool]
    parallelizes the underlying level {!sweep}. *)

val both_constraints :
  ?pool:Nanomap_util.Pool.t ->
  area:int ->
  delay_ns:float ->
  prepared ->
  arch:Nanomap_arch.Arch.t ->
  plan
(** Any mapping satisfying both constraints (minimum delay among them).
    [pool] parallelizes the underlying level {!sweep}. *)

val no_folding : prepared -> arch:Nanomap_arch.Arch.t -> plan
(** The traditional-FPGA baseline: every plane in one configuration. *)
