module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Arch = Nanomap_arch.Arch
module Telemetry = Nanomap_util.Telemetry

let c_frame_passes = Telemetry.counter "sched.frame_passes"
let c_problems = Telemetry.counter "sched.problems_built"

type t = {
  part : Partition.t;
  stages : int;
  weights : int array;
  preds : int list array;
  succs : int list array;
  weak_preds : int list array;
  weak_succs : int list array;
  target_bits : int array;
  store_bits : int array;
  base_ff_bits : int;
}

exception Infeasible of string

let problem network (part : Partition.t) ~stages ~base_ff_bits =
  Telemetry.incr c_problems;
  if stages < 1 then raise (Infeasible "stages < 1");
  let n = Array.length part.Partition.units in
  let preds = Array.make n [] and succs = Array.make n [] in
  let weak_preds = Array.make n [] and weak_succs = Array.make n [] in
  List.iter
    (fun (u, v) ->
      succs.(u) <- v :: succs.(u);
      preds.(v) <- u :: preds.(v))
    part.Partition.edges;
  List.iter
    (fun (u, v) ->
      weak_succs.(u) <- v :: weak_succs.(u);
      weak_preds.(v) <- u :: weak_preds.(v))
    part.Partition.weak_edges;
  let weights = Array.map (fun u -> u.Partition.weight) part.Partition.units in
  let target_bits = Array.make n 0 in
  List.iter
    (fun (target, node) ->
      let u = part.Partition.unit_of_lut.(node) in
      if u >= 0 then
        match target with
        | Lut_network.Reg_target _ | Lut_network.Wire_target _ ->
          target_bits.(u) <- target_bits.(u) + 1
        | Lut_network.Po_target _ -> ())
    (Lut_network.outputs network);
  (* Bits that can cross folding cycles: LUT outputs with a consumer in a
     different unit. *)
  let store_bits = Array.make n 0 in
  let fanouts = Lut_network.fanouts network in
  Lut_network.iter
    (fun l -> function
      | Lut_network.Lut _ ->
        let u = part.Partition.unit_of_lut.(l) in
        if u >= 0
           && List.exists (fun f -> part.Partition.unit_of_lut.(f) <> u) fanouts.(l)
        then store_bits.(u) <- store_bits.(u) + 1
      | Lut_network.Input _ -> ())
    network;
  let cp = Partition.critical_path_units part in
  if cp > stages then
    raise
      (Infeasible
         (Printf.sprintf "critical path %d units exceeds %d stages" cp stages));
  { part; stages; weights; preds; succs; weak_preds; weak_succs; target_bits;
    store_bits; base_ff_bits }

type frames = {
  asap : int array;
  alap : int array;
}

(* Unit ids carry no order guarantee, so both sweeps are Kahn passes over
   the combined graph (strict edges advance the cycle by one, weak edges by
   zero). *)
let frames t ~fixed =
  Telemetry.incr c_frame_passes;
  let n = Array.length t.weights in
  let asap = Array.make n 1 in
  let alap = Array.make n t.stages in
  let indeg =
    Array.init n (fun u -> List.length t.preds.(u) + List.length t.weak_preds.(u))
  in
  let q = Queue.create () in
  Array.iteri (fun u d -> if d = 0 then Queue.add u q) indeg;
  let processed = ref 0 in
  let relax_succ w v cand =
    if cand > asap.(v) then asap.(v) <- cand;
    ignore w;
    indeg.(v) <- indeg.(v) - 1;
    if indeg.(v) = 0 then Queue.add v q
  in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr processed;
    (match fixed.(u) with
     | Some c ->
       if c < asap.(u) then
         raise (Infeasible (Printf.sprintf "unit %d fixed before its ASAP" u));
       asap.(u) <- c
     | None -> ());
    List.iter (fun v -> relax_succ 1 v (asap.(u) + 1)) t.succs.(u);
    List.iter (fun v -> relax_succ 0 v asap.(u)) t.weak_succs.(u)
  done;
  if !processed <> n then raise (Infeasible "precedence cycle");
  let outdeg =
    Array.init n (fun u -> List.length t.succs.(u) + List.length t.weak_succs.(u))
  in
  Array.iteri (fun u d -> if d = 0 then Queue.add u q) outdeg;
  let relax_pred p cand =
    if cand < alap.(p) then alap.(p) <- cand;
    outdeg.(p) <- outdeg.(p) - 1;
    if outdeg.(p) = 0 then Queue.add p q
  in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    (match fixed.(u) with
     | Some c ->
       if c > alap.(u) then
         raise (Infeasible (Printf.sprintf "unit %d fixed after its ALAP" u));
       alap.(u) <- c
     | None -> ());
    List.iter (fun p -> relax_pred p (alap.(u) - 1)) t.preds.(u);
    List.iter (fun p -> relax_pred p alap.(u)) t.weak_preds.(u)
  done;
  Array.iteri
    (fun u a ->
      if a > alap.(u) || a < 1 || alap.(u) > t.stages then
        raise
          (Infeasible
             (Printf.sprintf "empty time frame for unit %d: [%d,%d]" u a alap.(u))))
    asap;
  { asap; alap }

type lifetime = {
  asap_life : int * int;
  alap_life : int * int;
  max_life : int * int;
  overlap : int * int;
  avg_life : float;
}

let span_len (a, b) = max 0 (b - a + 1)

let make_lifetime ~src_asap ~src_alap ~dest_asap ~dest_alap =
  let asap_life = (src_asap + 1, dest_asap) in
  let alap_life = (src_alap + 1, dest_alap) in
  let max_life = (fst asap_life, snd alap_life) in
  let overlap = (fst alap_life, snd asap_life) in
  let avg_life =
    float_of_int (span_len asap_life + span_len alap_life + span_len max_life)
    /. 3.0
  in
  { asap_life; alap_life; max_life; overlap; avg_life }

let source_frame ?source_cycle fr u =
  match source_cycle with
  | Some c -> (c, c)
  | None -> (fr.asap.(u), fr.alap.(u))

let intermediate_lifetime ?source_cycle t fr u =
  match t.succs.(u) @ t.weak_succs.(u) with
  | [] -> None
  | dests ->
    let dest_asap = List.fold_left (fun acc d -> max acc fr.asap.(d)) 0 dests in
    let dest_alap = List.fold_left (fun acc d -> max acc fr.alap.(d)) 0 dests in
    let src_asap, src_alap = source_frame ?source_cycle fr u in
    Some (make_lifetime ~src_asap ~src_alap ~dest_asap ~dest_alap)

let shadow_lifetime ?source_cycle t fr u =
  if t.target_bits.(u) = 0 || t.stages <= 1 then None
  else begin
    let src_asap, src_alap = source_frame ?source_cycle fr u in
    Some
      (make_lifetime ~src_asap ~src_alap ~dest_asap:t.stages ~dest_alap:t.stages)
  end

let lut_dg t fr =
  let dg = Array.make (t.stages + 1) 0.0 in
  Array.iteri
    (fun u w ->
      let a = fr.asap.(u) and b = fr.alap.(u) in
      let p = float_of_int w /. float_of_int (b - a + 1) in
      for j = a to b do
        dg.(j) <- dg.(j) +. p
      done)
    t.weights;
  dg

(* Eq. 9: probability level inside max_life but outside the overlap. *)
let span_prob lt =
  let ov = float_of_int (span_len lt.overlap) in
  let mx = float_of_int (span_len lt.max_life) in
  if mx <= ov then 1.0 else (lt.avg_life -. ov) /. (mx -. ov)

let add_storage_op dg ~stages ~weight lt =
  let w = float_of_int weight in
  let outside = span_prob lt *. w in
  let ma, mb = lt.max_life and oa, ob = lt.overlap in
  for j = max 1 ma to min stages mb do
    let p = if j >= oa && j <= ob then w else outside in
    dg.(j) <- dg.(j) +. p
  done

let storage_dg t fr =
  let dg = Array.make (t.stages + 1) 0.0 in
  Array.iteri
    (fun u _ ->
      (match intermediate_lifetime t fr u with
       | Some lt -> add_storage_op dg ~stages:t.stages ~weight:t.store_bits.(u) lt
       | None -> ());
      match shadow_lifetime t fr u with
      | Some lt -> add_storage_op dg ~stages:t.stages ~weight:t.target_bits.(u) lt
      | None -> ())
    t.weights;
  dg

let check_schedule t schedule =
  if Array.length schedule <> Array.length t.weights then
    failwith "Sched: schedule size mismatch";
  Array.iteri
    (fun u c ->
      if c < 1 || c > t.stages then failwith "Sched: cycle out of range";
      List.iter
        (fun v ->
          if schedule.(v) <= c then failwith "Sched: precedence violated")
        t.succs.(u);
      List.iter
        (fun v ->
          if schedule.(v) < c then failwith "Sched: weak precedence violated")
        t.weak_succs.(u))
    schedule

let lut_count_per_stage t schedule =
  let counts = Array.make (t.stages + 1) 0 in
  Array.iteri (fun u c -> counts.(c) <- counts.(c) + t.weights.(u)) schedule;
  counts

let ff_bits_per_stage t schedule =
  let bits = Array.make (t.stages + 1) t.base_ff_bits in
  bits.(0) <- 0;
  (* intermediates, exact per LUT: alive from the cycle after its unit
     computes through the cycle of its last consumer in another unit *)
  let network = t.part.Partition.network in
  let fanouts = Lut_network.fanouts network in
  Lut_network.iter
    (fun l -> function
      | Lut_network.Lut _ ->
        let u = t.part.Partition.unit_of_lut.(l) in
        if u >= 0 then begin
          let c = schedule.(u) in
          let last =
            List.fold_left
              (fun acc f ->
                let v = t.part.Partition.unit_of_lut.(f) in
                if v >= 0 && v <> u then max acc schedule.(v) else acc)
              0 fanouts.(l)
          in
          for j = c + 1 to last do
            bits.(j) <- bits.(j) + 1
          done
        end
      | Lut_network.Input _ -> ())
    network;
  (* shadows: target bits wait for the end-of-plane commit *)
  Array.iteri
    (fun u c ->
      if t.target_bits.(u) > 0 then
        for j = c + 1 to t.stages do
          bits.(j) <- bits.(j) + t.target_bits.(u)
        done)
    schedule;
  bits

let les_needed t ~arch schedule =
  let luts = lut_count_per_stage t schedule in
  let ffs = ff_bits_per_stage t schedule in
  let need = ref 0 in
  for j = 1 to t.stages do
    let by_lut = Nanomap_util.Stats.ceil_div luts.(j) arch.Arch.luts_per_le in
    let by_ff = Nanomap_util.Stats.ceil_div ffs.(j) arch.Arch.ffs_per_le in
    need := max !need (max by_lut by_ff)
  done;
  max !need 1
