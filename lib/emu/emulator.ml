module Rtl = Nanomap_rtl.Rtl
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Truth_table = Nanomap_logic.Truth_table
module Diag = Nanomap_util.Diag

(* A flip-flop cell remembers both its bit and which value wrote it last;
   reading a cell on behalf of a different value means the slot was
   overwritten while still live — an illegal clustering. *)
type cell = {
  mutable bit : bool;
  mutable owner : Cluster.value option;
}

type overrides = {
  lut_func : plane:int -> lut:int -> Truth_table.t option;
  lut_cycle : plane:int -> lut:int -> int option;
}

let no_overrides =
  { lut_func = (fun ~plane:_ ~lut:_ -> None);
    lut_cycle = (fun ~plane:_ ~lut:_ -> None) }

type t = {
  design : Rtl.t;
  plan : Mapper.plan;
  cluster : Cluster.t;
  overrides : overrides;
  cells : (Cluster.slot * int, cell) Hashtbl.t;
  inputs : (string, int) Hashtbl.t;
  direct_copies : (Rtl.signal * Rtl.driver) list;
      (** registers fed by a plain wire (delay lines): no plane computes
          them, they shift at the macro-cycle commit *)
}

let fabric_fail code what =
  Diag.fail ~stage:"emulate" ~code ~context:[ ("value", what) ]
    "fabric flip-flop allocation is inconsistent"

let cell_of t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = { bit = false; owner = None } in
    Hashtbl.replace t.cells key c;
    c

let create ?(overrides = no_overrides) design plan cluster =
  let direct_copies =
    List.filter_map
      (fun (s : Rtl.signal) ->
        match s.Rtl.driver with
        | Rtl.Register { d; _ } ->
          let drv = (Rtl.signal design d).Rtl.driver in
          (match drv with
           | Rtl.Register _ | Rtl.Input | Rtl.Const_driver _ ->
             Some (s, (Rtl.signal design d).Rtl.driver)
           | Rtl.Comb _ -> None)
        | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> None)
      (Rtl.registers design)
  in
  let t =
    { design;
      plan;
      cluster;
      overrides;
      cells = Hashtbl.create 256;
      inputs = Hashtbl.create 16;
      direct_copies }
  in
  (* every home cell starts at 0, owned by its state value *)
  Hashtbl.iter
    (fun value key ->
      match value with
      | Cluster.V_state _ ->
        let c = cell_of t key in
        c.bit <- false;
        c.owner <- Some value
      | Cluster.V_lut _ | Cluster.V_pi _ -> ())
    cluster.Cluster.ff_slots;
  t

let read_ff t value what =
  match Hashtbl.find_opt t.cluster.Cluster.ff_slots value with
  | None -> fabric_fail "slot-missing" what
  | Some key ->
    let c = cell_of t key in
    (match c.owner with
     | Some owner when owner = value -> c.bit
     | Some _ -> fabric_fail "slot-overwritten" what
     | None -> fabric_fail "slot-unwritten" what)

let write_ff t value bit =
  match Hashtbl.find_opt t.cluster.Cluster.ff_slots value with
  | None -> ()
  | Some key ->
    let c = cell_of t key in
    c.bit <- bit;
    c.owner <- Some value

let input_bit t sid bit =
  let name = (Rtl.signal t.design sid).Rtl.name in
  let v = Option.value ~default:0 (Hashtbl.find_opt t.inputs name) in
  v land (1 lsl bit) <> 0

(* "result.3" -> ("result", 3) *)
let split_po_name name =
  match String.rindex_opt name '.' with
  | None -> (name, 0)
  | Some i ->
    (match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
     | Some bit -> (String.sub name 0 i, bit)
     | None -> (name, 0))

let macro_cycle t stimulus =
  List.iter (fun (name, v) -> Hashtbl.replace t.inputs name v) stimulus;
  let po_acc : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let record_po name value =
    let base, idx = split_po_name name in
    let cur = Option.value ~default:0 (Hashtbl.find_opt po_acc base) in
    Hashtbl.replace po_acc base
      (if value then cur lor (1 lsl idx) else cur land lnot (1 lsl idx))
  in
  let pending_regs : (Cluster.value * bool) list ref = ref [] in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      let cycle_of l =
        match t.overrides.lut_cycle ~plane ~lut:l with
        | Some c -> c
        | None -> pl.Mapper.schedule.(part.Partition.unit_of_lut.(l))
      in
      let live = Array.make (Lut_network.size network) false in
      (* primary-output bits driven directly by plane inputs *)
      let po_by_node = Hashtbl.create 8 in
      List.iter
        (fun (target, node) ->
          match target with
          | Lut_network.Po_target name -> Hashtbl.add po_by_node node name
          | Lut_network.Reg_target _ | Lut_network.Wire_target _ -> ())
        (Lut_network.outputs network);
      let origin_bit = function
        | Lut_network.Register_bit (r, b) | Lut_network.Wire_bit (r, b) ->
          read_ff t (Cluster.V_state (r, b)) (Printf.sprintf "state %d.%d" r b)
        | Lut_network.Pi_bit (s, b) -> input_bit t s b
        | Lut_network.Const_bit b -> b
      in
      (* inputs may drive POs directly *)
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input origin ->
            List.iter
              (fun name -> record_po name (origin_bit origin))
              (Hashtbl.find_all po_by_node l)
          | Lut_network.Lut _ -> ())
        network;
      for cycle = 1 to t.plan.Mapper.stages do
        (* evaluate this folding cycle's LUTs in dependency order *)
        Lut_network.iter
          (fun l -> function
            | Lut_network.Input _ -> ()
            | Lut_network.Lut { func; fanins } ->
              if cycle_of l = cycle then begin
                let bit_of f =
                  match Lut_network.node network f with
                  | Lut_network.Input origin -> origin_bit origin
                  | Lut_network.Lut _ ->
                    if cycle_of f = cycle then live.(f)
                    else
                      read_ff t (Cluster.V_lut (plane, f))
                        (Printf.sprintf "plane %d LUT %d" plane f)
                in
                let func =
                  Option.value ~default:func (t.overrides.lut_func ~plane ~lut:l)
                in
                let v = Truth_table.eval func (Array.map bit_of fanins) in
                live.(l) <- v;
                List.iter
                  (fun name -> record_po name v)
                  (Hashtbl.find_all po_by_node l)
              end)
          network;
        (* end of the folding cycle: latch everything that crosses cycles *)
        Lut_network.iter
          (fun l -> function
            | Lut_network.Input _ -> ()
            | Lut_network.Lut _ ->
              if cycle_of l = cycle then write_ff t (Cluster.V_lut (plane, l)) live.(l))
          network
      done;
      (* end of the plane: wire targets become visible to later planes;
         register targets wait for the macro-cycle commit *)
      List.iter
        (fun (target, node) ->
          match target with
          | Lut_network.Po_target _ -> () (* recorded at compute time *)
          | Lut_network.Wire_target _ | Lut_network.Reg_target _ ->
            let bit =
              match Lut_network.node network node with
              | Lut_network.Input origin -> origin_bit origin
              | Lut_network.Lut _ ->
                if cycle_of node = t.plan.Mapper.stages then live.(node)
                else
                  read_ff t (Cluster.V_lut (plane, node))
                    (Printf.sprintf "plane %d output LUT %d" plane node)
            in
            (match target with
             | Lut_network.Wire_target (w, b) ->
               write_ff t (Cluster.V_state (w, b)) bit
             | Lut_network.Reg_target (r, b) ->
               pending_regs := (Cluster.V_state (r, b), bit) :: !pending_regs
             | Lut_network.Po_target _ -> assert false))
        (Lut_network.outputs network))
    t.plan.Mapper.planes;
  (* primary outputs driven directly by a register/input/constant belong to
     no plane; read them now (before the commit), matching the RTL
     simulator's pre-clock sampling *)
  List.iter
    (fun (name, id) ->
      let s = Rtl.signal t.design id in
      match s.Rtl.driver with
      | Rtl.Comb _ -> ()
      | Rtl.Register _ ->
        for b = 0 to s.Rtl.width - 1 do
          let bit =
            match
              Hashtbl.find_opt t.cluster.Cluster.ff_slots (Cluster.V_state (id, b))
            with
            | Some key -> (cell_of t key).bit
            | None -> false
          in
          record_po (Printf.sprintf "%s.%d" name b) bit
        done
      | Rtl.Input ->
        for b = 0 to s.Rtl.width - 1 do
          record_po (Printf.sprintf "%s.%d" name b) (input_bit t id b)
        done
      | Rtl.Const_driver v ->
        for b = 0 to s.Rtl.width - 1 do
          record_po (Printf.sprintf "%s.%d" name b) (v land (1 lsl b) <> 0)
        done)
    (Rtl.outputs t.design);
  (* delay-line registers shift from their (old) sources at the same
     commit; gather before applying anything *)
  let copy_commits =
    List.concat_map
      (fun ((s : Rtl.signal), _) ->
        let d =
          match s.Rtl.driver with
          | Rtl.Register { d; _ } -> d
          | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> assert false
        in
        let src = Rtl.signal t.design d in
        List.init s.Rtl.width (fun b ->
            let bit =
              match src.Rtl.driver with
              | Rtl.Register _ ->
                (* old value: pending commits are not applied yet *)
                (match
                   Hashtbl.find_opt t.cluster.Cluster.ff_slots
                     (Cluster.V_state (src.Rtl.id, b))
                 with
                 | Some key -> (cell_of t key).bit
                 | None -> false)
              | Rtl.Input -> input_bit t src.Rtl.id b
              | Rtl.Const_driver v -> v land (1 lsl b) <> 0
              | Rtl.Comb _ -> assert false
            in
            (Cluster.V_state (s.Rtl.id, b), bit)))
      t.direct_copies
  in
  (* macro-cycle commit: all registers latch simultaneously *)
  List.iter (fun (value, bit) -> write_ff t value bit) !pending_regs;
  List.iter (fun (value, bit) -> write_ff t value bit) copy_commits;
  (* assemble primary outputs in the design's declaration order *)
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt po_acc name with
      | Some v -> Some (name, v)
      | None -> None)
    (Rtl.outputs t.design)

let peek_state t rid =
  let s = Rtl.signal t.design rid in
  let v = ref 0 in
  for b = 0 to s.Rtl.width - 1 do
    match Hashtbl.find_opt t.cluster.Cluster.ff_slots (Cluster.V_state (rid, b)) with
    | Some key -> if (cell_of t key).bit then v := !v lor (1 lsl b)
    | None -> ()
  done;
  !v
