(** Cycle-accurate emulation of the NATURE fabric executing a mapped design.

    The emulator interprets the flow's output the way the hardware would:
    one macro cycle = every plane's folding cycles in order; within a
    folding cycle the LEs configured for that cycle evaluate their LUTs
    (combinational chains within the cycle resolve in dependency order,
    which the reconfigurable fabric does electrically); values that cross
    folding cycles live in the exact flip-flop slots chosen by temporal
    clustering; register/wire targets commit from their shadow slots to
    their home slots when the plane ends.

    Because every cross-cycle read goes through a {e physical} flip-flop
    slot, the emulator catches lifetime violations (a slot overwritten
    while still live) that network-level evaluation cannot: a wrong
    allocation produces wrong output values here.

    This is one link in the verification chain: RTL simulator == mapped
    LUT networks == folded execution on the clustered fabric == replay of
    the decoded bitstream (see [Nanomap_verify.Oracle]). *)

type t

(** Per-LUT configuration overrides, used by the bitstream decode-and-replay
    verification level: the truth table and folding-cycle assignment of a LUT
    can be taken from a {e decoded} configuration bitmap instead of the plan.
    Returning [None] falls back to the plan's network/schedule. A
    [lut_cycle] of [Some 0] (no folding cycle runs cycle 0) effectively
    removes the LUT from execution: its consumers then read an unwritten
    flip-flop slot and the emulator reports the divergence. *)
type overrides = {
  lut_func : plane:int -> lut:int -> Nanomap_logic.Truth_table.t option;
  lut_cycle : plane:int -> lut:int -> int option;
}

val create :
  ?overrides:overrides ->
  Nanomap_rtl.Rtl.t -> Nanomap_core.Mapper.plan -> Nanomap_cluster.Cluster.t -> t
(** The design provides input/output names and register widths. Flip-flops
    start at 0 (matching {!Nanomap_rtl.Rtl.sim_create} for designs with
    zero register init values). *)

val macro_cycle : t -> (string * int) list -> (string * int) list
(** [macro_cycle t inputs] runs all planes' folding cycles once — the
    equivalent of one clock cycle of the original circuit. Primary inputs
    are given by name and primary outputs are returned by name, exactly
    like {!Nanomap_rtl.Rtl.sim_cycle}.

    {b Missing-input hold semantics:} a primary input absent from
    [inputs] {e holds} the value it was last driven with (initially 0) —
    the fabric's input pads are latched, they do not float. This matches
    {!Nanomap_rtl.Rtl.sim_cycle} exactly, so a differential harness may
    drive partial stimulus into both sides without divergence.

    Raises {!Nanomap_util.Diag.Fail} (stage ["emulate"]) when the mapping
    itself is inconsistent — i.e. clustering produced an illegal
    flip-flop allocation, or an override (decoded bitstream) disagrees
    with the fabric's connectivity. Stable codes:
    - ["slot-missing"]: a live value has no allocated flip-flop slot;
    - ["slot-overwritten"]: two live values occupied one slot (lifetime
      violation);
    - ["slot-unwritten"]: a consumer read a slot no producer wrote (e.g.
      a LUT dropped from the decoded bitstream).
    The diagnostic context names the value ([value]) and, where known,
    the plane and folding cycle. *)

val peek_state : t -> Nanomap_rtl.Rtl.id -> int
(** Current committed value of a register (or inter-plane wire). *)
