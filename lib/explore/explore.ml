module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check
module Circuits = Nanomap_circuits.Circuits
module Diag = Nanomap_util.Diag
module Json = Nanomap_util.Json
module Pool = Nanomap_util.Pool

type folding =
  | F_none
  | F_level of int

let folding_to_string = function
  | F_none -> "none"
  | F_level l -> string_of_int l

type grid = {
  ks : int list;
  les_per_mbs : int list;
  mbs_per_smbs : int list;
  fss : int list;
  fcs : float list;
  foldings : folding list;
}

let default_grid =
  { ks = [ 3; 4; 5; 6 ];
    les_per_mbs = [ 2; 4; 8 ];
    mbs_per_smbs = [ 2; 4; 8 ];
    fss = [ 3; 6 ];
    fcs = [ 0.5; 1.0 ];
    foldings = [ F_none; F_level 1; F_level 2 ] }

let smoke_grid =
  { ks = [ 3; 4 ];
    les_per_mbs = [ 2; 4 ];
    mbs_per_smbs = [ 4 ];
    fss = [ 3 ];
    fcs = [ 1.0 ];
    foldings = [ F_none; F_level 1 ] }

type point = {
  arch : Arch.t;
  folding : folding;
}

(* Crossbar pin counts re-derived from the cluster shape, calibrated so
   the default shape (K=4, 4 LEs/MB, 4 MBs/SMB) reproduces Arch.default's
   14 MB input ports and 40 SMB input pins. *)
let arch_point ?(k = 4) ?(les_per_mb = 4) ?(mbs_per_smb = 4) ?(fs = 3)
    ?(fc = 1.0) () =
  let mb_input_ports = max k ((les_per_mb * k) - 2) in
  let smb_input_pins =
    max mb_input_ports (mbs_per_smb * mb_input_ports * 5 / 7)
  in
  { Arch.default with
    Arch.lut_inputs = k;
    les_per_mb;
    mbs_per_smb;
    mb_input_ports;
    smb_input_pins;
    num_reconf = None;
    fs;
    fc_in = fc;
    fc_out = fc }

let enumerate g =
  List.concat_map
    (fun k ->
      List.concat_map
        (fun les_per_mb ->
          List.concat_map
            (fun mbs_per_smb ->
              List.concat_map
                (fun fs ->
                  List.concat_map
                    (fun fc ->
                      let arch =
                        arch_point ~k ~les_per_mb ~mbs_per_smb ~fs ~fc ()
                      in
                      match Arch.validate_result arch with
                      | Error _ -> []
                      | Ok () ->
                        List.map (fun folding -> { arch; folding }) g.foldings)
                    g.fcs)
                g.fss)
            g.mbs_per_smbs)
        g.les_per_mbs)
    g.ks

(* ------------------------------------ minimum-channel-width search *)

let width_caps (a : Arch.t) w =
  let ceil_div n d = (n + d - 1) / d in
  let scale n = max 1 (ceil_div (n * w) a.Arch.chan_len1) in
  { Rr_graph.direct_tracks = scale a.Arch.chan_direct;
    len1_tracks = max 1 w;
    len4_tracks = scale a.Arch.chan_len4;
    global_tracks = scale a.Arch.chan_global }

let routable_at ?(defects = Defect.none) ~cluster ~plan pl w =
  let caps = width_caps cluster.Cluster.arch w in
  match Router.route ~caps ~defects pl cluster plan with
  | r -> r.Router.success
  | exception Diag.Fail _ -> false

let min_channel_width ?(max_width = 64) ?(defects = Defect.none) ~cluster
    ~plan pl =
  let routable w = routable_at ~defects ~cluster ~plan pl w in
  if not (routable max_width) then
    Error
      (Diag.make ~stage:"explore" ~code:"unroutable-at-max"
         ~context:[ ("max_width", string_of_int max_width) ]
         "not routable even at the search's maximum channel width")
  else if routable 1 then Ok 1
  else begin
    (* invariant: lo unroutable, hi routable *)
    let lo = ref 1 and hi = ref max_width in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if routable mid then hi := mid else lo := mid
    done;
    Ok !hi
  end

(* ------------------------------------------------------- sweeping *)

type status =
  | Feasible of int
  | Unroutable
  | Infeasible of string

type measure = {
  design : string;
  area_um2 : float;
  delay_ns : float;
  status : status;
}

type point_result = {
  point : point;
  measures : measure list;
  total_area : float;
  mean_delay : float;
  status : status;
  mutable pareto : bool;
}

let flow_options folding =
  { Flow.default_options with
    Flow.objective =
      (match folding with
      | F_none -> Flow.No_folding
      | F_level l -> Flow.Fixed_level l);
    physical = true;
    check_level = Check.Off;
    jobs = 1 }

let measure_design pt name =
  let bench = Circuits.by_name name in
  match
    Flow.run_result ~options:(flow_options pt.folding) ~arch:pt.arch
      bench.Circuits.design
  with
  | Error d ->
    { design = name;
      area_um2 = 0.0;
      delay_ns = 0.0;
      status = Infeasible d.Diag.code }
  | Ok report -> (
    let area_um2 = report.Flow.area_um2 in
    let delay_ns =
      match report.Flow.delay_routed_ns with
      | Some d -> d
      | None -> report.Flow.delay_model_ns
    in
    match report.Flow.placement with
    | None ->
      { design = name; area_um2; delay_ns; status = Infeasible "no-placement" }
    | Some pl -> (
      match
        min_channel_width ~cluster:report.Flow.cluster ~plan:report.Flow.plan
          pl
      with
      | Ok w -> { design = name; area_um2; delay_ns; status = Feasible w }
      | Error _ -> { design = name; area_um2; delay_ns; status = Unroutable }))

let measure_point ~designs pt =
  let measures = List.map (measure_design pt) designs in
  let total_area = List.fold_left (fun a (m : measure) -> a +. m.area_um2) 0.0 measures in
  let feasible_delays =
    List.filter_map
      (fun (m : measure) ->
        match m.status with
        | Feasible _ when m.delay_ns > 0.0 -> Some m.delay_ns
        | _ -> None)
      measures
  in
  let mean_delay =
    match feasible_delays with
    | [] -> 0.0
    | ds ->
      exp (List.fold_left (fun a d -> a +. log d) 0.0 ds
           /. float_of_int (List.length ds))
  in
  let status =
    let worst acc (m : measure) =
      match (acc, m.status) with
      | (Infeasible _ as i), _ -> i
      | _, (Infeasible _ as i) -> i
      | Unroutable, _ | _, Unroutable -> Unroutable
      | Feasible a, Feasible b -> Feasible (max a b)
    in
    match measures with
    | [] -> Infeasible "no-designs"
    | m :: rest -> List.fold_left worst m.status rest
  in
  { point = pt; measures; total_area; mean_delay; status; pareto = false }

let pareto_mark results =
  let key r =
    match r.status with
    | Feasible w -> Some (r.total_area, r.mean_delay, w)
    | Unroutable | Infeasible _ -> None
  in
  let dominates (a1, d1, w1) (a2, d2, w2) =
    a1 <= a2 && d1 <= d2 && w1 <= w2 && (a1 < a2 || d1 < d2 || w1 < w2)
  in
  List.iter
    (fun r ->
      match key r with
      | None -> r.pareto <- false
      | Some k ->
        r.pareto <-
          not
            (List.exists
               (fun r' ->
                 match key r' with
                 | Some k' when r' != r -> dominates k' k
                 | _ -> false)
               results))
    results

let run ?pool ?(designs = [ "ex1_small"; "crc8" ]) g =
  let points = Array.of_list (enumerate g) in
  let f pt = measure_point ~designs pt in
  let results =
    match pool with
    | Some p when Pool.jobs p > 1 -> Pool.map p ~f points
    | _ -> Array.map f points
  in
  let results = Array.to_list results in
  pareto_mark results;
  results

(* ------------------------------------------------------ reporting *)

let round2 f = Float.round (f *. 100.0) /. 100.0

let status_json = function
  | Feasible w -> [ ("status", Json.String "ok"); ("min_width", Json.Int w) ]
  | Unroutable -> [ ("status", Json.String "unroutable") ]
  | Infeasible code ->
    [ ("status", Json.String "infeasible"); ("code", Json.String code) ]

let point_fields pt =
  let a = pt.arch in
  [ ("k", Json.Int a.Arch.lut_inputs);
    ("les_per_mb", Json.Int a.Arch.les_per_mb);
    ("mbs_per_smb", Json.Int a.Arch.mbs_per_smb);
    ("fs", Json.Int a.Arch.fs);
    ("fc", Json.Float (round2 a.Arch.fc_in));
    ("folding", Json.String (folding_to_string pt.folding)) ]

let to_json ~designs results =
  Json.Obj
    [ ("designs", Json.List (List.map (fun d -> Json.String d) designs));
      ( "points",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 (point_fields r.point
                 @ [ ("area_um2", Json.Float (round2 r.total_area));
                     ("delay_ns", Json.Float (round2 r.mean_delay)) ]
                 @ status_json r.status
                 @ [ ("pareto", Json.Bool r.pareto);
                     ( "measures",
                       Json.List
                         (List.map
                            (fun (m : measure) ->
                              Json.Obj
                                (("design", Json.String m.design)
                                :: ("area_um2", Json.Float (round2 m.area_um2))
                                :: ("delay_ns", Json.Float (round2 m.delay_ns))
                                :: status_json m.status))
                            r.measures) ) ]))
             results) );
      ( "frontier",
        Json.List
          (List.filteri (fun _ r -> r.pareto) results
          |> List.map (fun r -> Json.Obj (point_fields r.point))) ) ]

let fingerprint ~designs results =
  Digest.to_hex (Digest.string (Json.to_string (to_json ~designs results)))

let report_ascii ~designs results =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "design-space exploration over %s\n"
       (String.concat ", " designs));
  Buffer.add_string b
    "   k le/mb mb/smb fs   fc fold       area      delay  Wmin\n";
  List.iter
    (fun r ->
      let a = r.point.arch in
      let wmin, note =
        match r.status with
        | Feasible w -> (string_of_int w, "")
        | Unroutable -> ("-", " unroutable")
        | Infeasible code -> ("-", " infeasible:" ^ code)
      in
      Buffer.add_string b
        (Printf.sprintf "%s %2d %5d %6d %2d %1.2f %-5s %10.2f %10.2f %5s%s\n"
           (if r.pareto then "*" else " ")
           a.Arch.lut_inputs a.Arch.les_per_mb a.Arch.mbs_per_smb a.Arch.fs
           a.Arch.fc_in
           (folding_to_string r.point.folding)
           (round2 r.total_area) (round2 r.mean_delay) wmin note))
    results;
  let frontier = List.filter (fun r -> r.pareto) results in
  Buffer.add_string b
    (Printf.sprintf "frontier: %d of %d points\n" (List.length frontier)
       (List.length results));
  Buffer.contents b
