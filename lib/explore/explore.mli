(** Architecture design-space exploration ("what should NATURE look
    like?") — ROADMAP item 3.

    A COFFE-style sweep: enumerate a grid of architecture points (LUT size
    K, cluster shape, switch-block and connection-block flexibility,
    folding regime), compile the benchmark suite at every point, binary
    search the minimum routable channel width per point (the
    routability-driven methodology: fix the placement the flow produced,
    then shrink the channels until routing fails), and report the Pareto
    frontier over (area, delay, minimum channel width).

    Everything is deterministic: points are enumerated in a fixed nested
    order, each point's measurement is an independent task fanned out on
    the {!Nanomap_util.Pool} (worker count changes wall-clock only), and
    the JSON/ASCII renderings are stable — the j1/j4 fingerprints are
    byte-identical. *)

module Arch = Nanomap_arch.Arch

type folding =
  | F_none          (** no temporal folding *)
  | F_level of int  (** fixed folding level *)

val folding_to_string : folding -> string
(** ["none"] or the level as a decimal string. *)

type grid = {
  ks : int list;           (** LUT input counts *)
  les_per_mbs : int list;
  mbs_per_smbs : int list;
  fss : int list;          (** switch-block flexibilities *)
  fcs : float list;        (** connection-block Fc (applied to both in/out) *)
  foldings : folding list;
}

val default_grid : grid
(** The full sweep: K 3..6, cluster shapes 2/4/8, Fs 3 and 6, Fc 0.5 and
    1.0, folding none/1/2. *)

val smoke_grid : grid
(** A pinned 2x2x2 mini-grid (K in 3/4, LEs per MB in 2/4, folding
    none/1, everything else the paper default) — the golden-test and CI
    smoke grid. *)

type point = {
  arch : Arch.t;
  folding : folding;
}

val arch_point :
  ?k:int ->
  ?les_per_mb:int ->
  ?mbs_per_smb:int ->
  ?fs:int ->
  ?fc:float ->
  unit ->
  Arch.t
(** The default architecture with the given knobs overridden and the
    crossbar pin counts re-derived from the cluster shape (the default
    shape reproduces {!Arch.default}'s 14 MB ports / 40 SMB pins).
    [num_reconf] is unbounded so folding depth never disqualifies a
    point. The result satisfies {!Arch.validate_result}. *)

val enumerate : grid -> point list
(** Cartesian product in a fixed nested order (K outermost, folding
    innermost); every architecture passes {!Arch.validate_result}. *)

(** {2 Minimum-channel-width search} *)

val width_caps : Arch.t -> int -> Nanomap_route.Rr_graph.caps
(** [width_caps arch w] is the track-count vector with [w] length-1
    tracks and the other wire types scaled proportionally to the
    architecture's channel ratios (each at least 1). *)

val routable_at :
  ?defects:Nanomap_arch.Defect.t ->
  cluster:Nanomap_cluster.Cluster.t ->
  plan:Nanomap_core.Mapper.plan ->
  Nanomap_place.Place.t ->
  int ->
  bool
(** Does routing succeed on the fixed placement with [width_caps arch w]
    channels? (A routing-graph disconnection counts as unroutable.) *)

val min_channel_width :
  ?max_width:int ->
  ?defects:Nanomap_arch.Defect.t ->
  cluster:Nanomap_cluster.Cluster.t ->
  plan:Nanomap_core.Mapper.plan ->
  Nanomap_place.Place.t ->
  (int, Nanomap_util.Diag.t) result
(** Binary search (on the monotone routability predicate {!routable_at})
    for the least channel width in [1 .. max_width] (default 64) that
    routes. [Error] carries stage ["explore"], code ["unroutable-at-max"]
    when even [max_width] fails. *)

(** {2 Sweeping} *)

type status =
  | Feasible of int      (** minimum routable channel width *)
  | Unroutable           (** not routable even at the search's max width *)
  | Infeasible of string (** the flow failed; the diagnostic's code *)

type measure = {
  design : string;
  area_um2 : float;     (** 0 when the flow failed *)
  delay_ns : float;     (** routed delay when available, else the model *)
  status : status;
}

type point_result = {
  point : point;
  measures : measure list;      (** one per design, in suite order *)
  total_area : float;           (** sum over designs *)
  mean_delay : float;           (** geometric mean over designs *)
  status : status;              (** worst over designs; [Feasible] = max *)
  mutable pareto : bool;        (** on the (area, delay, width) frontier *)
}

val measure_point : designs:string list -> point -> point_result
(** Compile every design (by {!Nanomap_circuits.Circuits.by_name}) at the
    point's architecture and folding, then run the channel-width search
    on each result. [pareto] is left [false]; {!run} sets it. *)

val run :
  ?pool:Nanomap_util.Pool.t ->
  ?designs:string list ->
  grid ->
  point_result list
(** The whole sweep: enumerate, fan one task per point out on the pool
    (serial when [pool] is [None]; byte-identical results either way),
    and mark the Pareto frontier. [designs] defaults to
    ["ex1_small"; "crc8"]. *)

val pareto_mark : point_result list -> unit
(** Set [pareto] on every point no other [Feasible] point dominates
    (lower-or-equal area, delay and width, strictly lower somewhere).
    Points that are not [Feasible] never join the frontier. *)

(** {2 Reporting} *)

val to_json : designs:string list -> point_result list -> Nanomap_util.Json.t
(** Stable JSON: the grid axes are implicit in the per-point fields;
    floats are rounded to 0.01 so the rendering is platform-stable. *)

val fingerprint : designs:string list -> point_result list -> string
(** MD5 hex of the JSON rendering — what the j1-vs-j4 CI gate compares. *)

val report_ascii : designs:string list -> point_result list -> string
(** The COFFE-style table: one row per point, frontier rows starred. *)
