module Diag = Nanomap_util.Diag
module Rng = Nanomap_util.Rng
module Telemetry = Nanomap_util.Telemetry
module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Sched = Nanomap_core.Sched
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Bitstream = Nanomap_bitstream.Bitstream
module Gate_netlist = Nanomap_logic.Gate_netlist
module Lut_network = Nanomap_techmap.Lut_network
module Decompose = Nanomap_techmap.Decompose
module Simplify = Nanomap_techmap.Simplify
module Aig_map = Nanomap_techmap.Aig_map
module Aig = Nanomap_aig.Aig

type level = Off | Fast | Full

let level_of_string = function
  | "off" -> Some Off
  | "fast" -> Some Fast
  | "full" -> Some Full
  | _ -> None

let string_of_level = function Off -> "off" | Fast -> "fast" | Full -> "full"

let c_violations = Telemetry.counter "check.violations"

(* Run a checker body that signals problems by raising [Diag.Fail]; every
   failure counts as one check violation. *)
let guard stage f =
  match f () with
  | () -> Ok ()
  | exception Diag.Fail d ->
    Telemetry.incr c_violations;
    Error d
  | exception Failure msg ->
    Telemetry.incr c_violations;
    Error (Diag.make ~stage ~code:"uncaught-failure" msg)

(* --- techmap: LUT network vs gate netlist simulation spot-check --- *)

let techmap level (prepared : Mapper.prepared) =
  if level = Off then Ok ()
  else
    guard "techmap" (fun () ->
        let planes =
          match level with
          | Full -> prepared.Mapper.num_planes
          | Off | Fast -> min 1 prepared.Mapper.num_planes
        in
        let vectors = match level with Full -> 8 | Off | Fast -> 2 in
        for p = 1 to planes do
          let tagged =
            Simplify.run (Decompose.plane prepared.Mapper.levelized p)
          in
          let network = prepared.Mapper.networks.(p - 1) in
          let origin_of_gate = Hashtbl.create 32 in
          List.iter
            (fun (gid, origin) -> Hashtbl.replace origin_of_gate gid origin)
            tagged.Decompose.input_origins;
          let gate_inputs = Gate_netlist.inputs tagged.Decompose.gates in
          let lut_outs = Lut_network.outputs network in
          for v = 1 to vectors do
            let rng = Rng.create (0x7ec4 + (p * 131) + v) in
            (* one random value per input origin, shared by both sides *)
            let memo = Hashtbl.create 32 in
            let assign = function
              | Lut_network.Const_bit b -> b
              | origin ->
                (match Hashtbl.find_opt memo origin with
                | Some b -> b
                | None ->
                  let b = Rng.bool rng in
                  Hashtbl.replace memo origin b;
                  b)
            in
            let input_values =
              List.map
                (fun (_, gid) ->
                  match Hashtbl.find_opt origin_of_gate gid with
                  | Some origin -> assign origin
                  | None -> false)
                gate_inputs
              |> Array.of_list
            in
            let sim = Gate_netlist.simulate tagged.Decompose.gates input_values in
            let lut_vals = Lut_network.eval network assign in
            List.iter
              (fun (target, gid) ->
                match List.assoc_opt target lut_outs with
                | None ->
                  Diag.fail ~stage:"techmap" ~code:"missing-target"
                    ~context:[ ("plane", string_of_int p) ]
                    "gate-level output target absent from the LUT network"
                | Some lnode ->
                  if sim.(gid) <> lut_vals.(lnode) then
                    Diag.fail ~stage:"techmap" ~code:"sim-mismatch"
                      ~context:
                        [ ("plane", string_of_int p);
                          ("vector", string_of_int v);
                          ("gate_value", string_of_bool sim.(gid));
                          ("lut_value", string_of_bool lut_vals.(lnode)) ]
                      "LUT network disagrees with the gate netlist")
              tagged.Decompose.output_targets
          done;
          (* AIG-vs-source spot check: rewrite the plane into AIG form and
             bit-parallel simulate 64 random assignments at once, then
             cross-check a few lanes against the reference gate simulator.
             This validates the AIG substrate itself independently of which
             mapper produced the stored network. *)
          let conv = Aig_map.aig_of_tagged tagged in
          let rng = Rng.create (0x41c + p) in
          let words = Hashtbl.create 32 in
          List.iter
            (fun (_, gid) -> Hashtbl.replace words gid (Rng.int64 rng))
            gate_inputs;
          let vals =
            Aig.sim64 conv.Aig.aig (fun ordinal ->
                Hashtbl.find words conv.Aig.gate_of_input.(ordinal))
          in
          let lanes = match level with Full -> 4 | Off | Fast -> 2 in
          for lane = 0 to lanes - 1 do
            let bit w = Int64.logand (Int64.shift_right_logical w lane) 1L = 1L in
            let input_values =
              List.map (fun (_, gid) -> bit (Hashtbl.find words gid)) gate_inputs
              |> Array.of_list
            in
            let sim = Gate_netlist.simulate tagged.Decompose.gates input_values in
            List.iter
              (fun (_, gid) ->
                let got = bit (Aig.sim64_lit vals conv.Aig.lit_of_gate.(gid)) in
                if sim.(gid) <> got then
                  Diag.fail ~stage:"techmap" ~code:"aig-mismatch"
                    ~context:
                      [ ("plane", string_of_int p);
                        ("lane", string_of_int lane);
                        ("gate_value", string_of_bool sim.(gid));
                        ("aig_value", string_of_bool got) ]
                    "AIG rewrite disagrees with the gate netlist")
              tagged.Decompose.output_targets
          done
        done)

(* --- fds: schedule legality + NRAM budget --- *)

let fds level ~arch (plan : Mapper.plan) =
  if level = Off then Ok ()
  else
    guard "fds" (fun () ->
        Array.iter
          (fun (plp : Mapper.plane_plan) ->
            try Sched.check_schedule plp.Mapper.problem plp.Mapper.schedule
            with Failure msg ->
              Diag.fail ~stage:"fds" ~code:"schedule-illegal"
                ~context:[ ("plane", string_of_int plp.Mapper.plane_index) ]
                msg)
          plan.Mapper.planes;
        match arch.Arch.num_reconf with
        | Some k when plan.Mapper.configs_used > k ->
          Diag.fail ~stage:"fds" ~code:"config-overflow"
            ~context:
              [ ("configs_used", string_of_int plan.Mapper.configs_used);
                ("num_reconf", string_of_int k) ]
            "plan needs more configuration sets than the NRAM holds"
        | Some _ | None -> ())

(* --- cluster: structural legality + capacity --- *)

let cluster level (plan : Mapper.plan) (cl : Cluster.t) =
  if level = Off then Ok ()
  else
    guard "cluster" (fun () ->
        Cluster.validate cl plan;
        let arch = cl.Cluster.arch in
        let capacity = cl.Cluster.num_smbs * Arch.les_per_smb arch in
        if cl.Cluster.les_used > capacity then
          Diag.fail ~stage:"cluster" ~code:"capacity"
            ~context:
              [ ("les_used", string_of_int cl.Cluster.les_used);
                ("capacity", string_of_int capacity) ]
            "cluster uses more LEs than its SMB pool provides";
        Hashtbl.iter
          (fun _ (slot : Cluster.slot) ->
            if
              slot.Cluster.mb < 0
              || slot.Cluster.mb >= arch.Arch.mbs_per_smb
              || slot.Cluster.le < 0
              || slot.Cluster.le >= arch.Arch.les_per_mb
            then
              Diag.fail ~stage:"cluster" ~code:"slot-range"
                ~context:
                  [ ("mb", string_of_int slot.Cluster.mb);
                    ("le", string_of_int slot.Cluster.le) ]
                "LE slot outside the SMB's MB/LE geometry")
          cl.Cluster.lut_slots)

(* --- place: slot exclusivity + defect avoidance --- *)

let place level ?(defects = Defect.none) (cl : Cluster.t) (pl : Place.t) =
  if level = Off then Ok ()
  else
    guard "place" (fun () ->
        Place.validate pl cl;
        if not (Defect.is_none defects) then begin
          let smb_at = Hashtbl.create 64 in
          Array.iteri
            (fun s xy -> Hashtbl.replace smb_at xy s)
            pl.Place.smb_xy;
          let used = Hashtbl.create 64 in
          Hashtbl.iter
            (fun _ (slot : Cluster.slot) ->
              Hashtbl.replace used
                (slot.Cluster.smb, slot.Cluster.mb, slot.Cluster.le)
                ())
            cl.Cluster.lut_slots;
          Hashtbl.iter
            (fun _ ((slot : Cluster.slot), _) ->
              Hashtbl.replace used
                (slot.Cluster.smb, slot.Cluster.mb, slot.Cluster.le)
                ())
            cl.Cluster.ff_slots;
          List.iter
            (fun (x, y, mb, le) ->
              match Hashtbl.find_opt smb_at (x, y) with
              | Some s when Hashtbl.mem used (s, mb, le) ->
                Diag.fail ~stage:"place" ~code:"defective-le"
                  ~context:
                    [ ("smb", string_of_int s);
                      ("x", string_of_int x);
                      ("y", string_of_int y);
                      ("mb", string_of_int mb);
                      ("le", string_of_int le) ]
                  "SMB occupies a defective LE"
              | Some _ | None -> ())
            defects.Defect.les
        end)

(* --- route: legality + completeness --- *)

let route level (cl : Cluster.t) (r : Router.result) =
  if level = Off then Ok ()
  else
    guard "route" (fun () ->
        if not r.Router.success then
          Diag.fail ~stage:"route" ~code:"congested"
            ~context:[ ("overused", string_of_int r.Router.overused) ]
            "routing left overused wire nodes";
        Router.validate r;
        if level = Full then begin
          let routed_keys = Hashtbl.create 256 in
          List.iter
            (fun (rn : Router.routed_net) ->
              Hashtbl.replace routed_keys
                ( rn.Router.net.Cluster.plane,
                  rn.Router.net.Cluster.cycle,
                  rn.Router.net.Cluster.value )
                ())
            r.Router.routed;
          List.iter
            (fun (n : Cluster.net) ->
              if
                n.Cluster.sinks <> []
                && not
                     (Hashtbl.mem routed_keys
                        (n.Cluster.plane, n.Cluster.cycle, n.Cluster.value))
              then
                Diag.fail ~stage:"route" ~code:"net-missing"
                  ~context:
                    [ ("plane", string_of_int n.Cluster.plane);
                      ("cycle", string_of_int n.Cluster.cycle) ]
                  "cluster net has no routed tree")
            cl.Cluster.nets
        end)

(* --- bitstream: config bounds + parse round-trip --- *)

let bitstream level ~arch (bs : Bitstream.t) =
  if level = Off then Ok ()
  else
    guard "bitstream" (fun () ->
        (match Bitstream.nram_bits_required bs arch with
        | configs, Some k when configs > k ->
          Diag.fail ~stage:"bitstream" ~code:"config-overflow"
            ~context:
              [ ("configs", string_of_int configs);
                ("num_reconf", string_of_int k) ]
            "bitstream holds more configuration sets than the NRAM"
        | _ -> ());
        if level = Full then begin
          match Bitstream.parse_full bs.Bitstream.bytes with
          | num_smbs, lut_inputs, parsed ->
            if Array.length parsed <> bs.Bitstream.configs then
              Diag.fail ~stage:"bitstream" ~code:"config-count"
                ~context:
                  [ ("parsed", string_of_int (Array.length parsed));
                    ("expected", string_of_int bs.Bitstream.configs) ]
                "parsed configuration count disagrees with the header";
            (* encode -> parse -> encode must reproduce the bitmap exactly,
               otherwise the decode-and-replay oracle verifies a different
               configuration than the one shipped *)
            let re = Bitstream.encode_configs ~num_smbs ~lut_inputs parsed in
            if not (Bytes.equal re bs.Bitstream.bytes) then
              Diag.fail ~stage:"bitstream" ~code:"roundtrip"
                ~context:
                  [ ("bytes", string_of_int (Bytes.length bs.Bitstream.bytes));
                    ("reencoded", string_of_int (Bytes.length re)) ]
                "re-encoding the parsed bitmap does not reproduce it"
          | exception Bitstream.Corrupt msg ->
            Diag.fail ~stage:"bitstream" ~code:"corrupt" msg
        end)
