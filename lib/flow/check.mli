(** Inter-stage invariant checkers.

    Every hand-off in the Fig. 2 pipeline can be validated before the next
    stage consumes it: the mapped LUT networks against the gate-level
    netlists they came from (by simulation spot-check), the FDS schedule
    against precedence and the NRAM budget, the clustering against LE/MB/SMB
    capacity, the placement against slot exclusivity and the defect map, the
    routing against occupancy/connectivity legality, and the bitstream
    against its configuration-set bounds and its own parser.

    Checkers return [(unit, Diag.t) result] rather than raising, bump the
    [check.violations] telemetry counter on every failure, and are selected
    by a {!level}:

    - {!Off} — no checking (every checker returns [Ok ()] immediately);
    - {!Fast} — cheap structural checks, simulation limited to the first
      plane and a couple of random vectors;
    - {!Full} — everything: all planes, more vectors, route completeness,
      bitstream parse round-trip. *)

type level = Off | Fast | Full

val level_of_string : string -> level option
(** ["off"], ["fast"], ["full"]. *)

val string_of_level : level -> string

val techmap :
  level -> Nanomap_core.Mapper.prepared -> (unit, Nanomap_util.Diag.t) result
(** Functional-equivalence spot-check: re-derives each plane's simplified
    gate netlist and compares [Gate_netlist.simulate] against
    [Lut_network.eval] on random input vectors drawn per
    [input_origin]. [Fast]: first plane, 2 vectors; [Full]: all planes, 8
    vectors. Failure code: ["sim-mismatch"]. *)

val fds :
  level ->
  arch:Nanomap_arch.Arch.t ->
  Nanomap_core.Mapper.plan ->
  (unit, Nanomap_util.Diag.t) result
(** Every plane's schedule respects precedence and stage bounds
    (["schedule-illegal"]); the plan's configuration-set usage fits the
    NRAM budget (["config-overflow"]). *)

val cluster :
  level ->
  Nanomap_core.Mapper.plan ->
  Nanomap_cluster.Cluster.t ->
  (unit, Nanomap_util.Diag.t) result
(** Structural legality via [Cluster.validate] (unplaced LUTs, double-booked
    LEs, endpoint ranges), plus LE capacity vs the SMB pool (["capacity"])
    and MB/LE slot indices within the architecture (["slot-range"]). *)

val place :
  level ->
  ?defects:Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_place.Place.t ->
  (unit, Nanomap_util.Diag.t) result
(** Slot exclusivity and grid legality via [Place.validate], plus defect
    avoidance: no SMB sits on a site whose defective [(mb, le)] it occupies
    (["defective-le"]). *)

val route :
  level ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_route.Router.result ->
  (unit, Nanomap_util.Diag.t) result
(** The routing claims success (["congested"]); occupancy, connectivity and
    defect legality via [Router.validate]; with [Full], every cluster net
    with sinks actually has a routed tree (["net-missing"]). *)

val bitstream :
  level ->
  arch:Nanomap_arch.Arch.t ->
  Nanomap_bitstream.Bitstream.t ->
  (unit, Nanomap_util.Diag.t) result
(** Configuration-set count within the NRAM capacity (["config-overflow"]);
    with [Full], the bitmap parses back (["corrupt"]) into the advertised
    number of configurations (["config-count"]), and re-encoding the parse
    result reproduces the bitmap byte-for-byte (["roundtrip"]). *)
