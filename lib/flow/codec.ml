module Json = Nanomap_util.Json
module Hashing = Nanomap_util.Hashing
module Rtl = Nanomap_rtl.Rtl
module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Truth_table = Nanomap_logic.Truth_table
module Mapper = Nanomap_core.Mapper
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Place = Nanomap_place.Place
module Cluster = Nanomap_cluster.Cluster
module Bitstream = Nanomap_bitstream.Bitstream
module Lut_network = Nanomap_techmap.Lut_network

(* ------------------------------------------------------------ rtl text *)

(* One signal per line, in id order, so the decoder re-creates ids
   exactly. Names are percent-escaped (they may contain spaces from VHDL
   labels); registers are two-phase like the builder API, with the data
   input connected after all signals exist. *)

let escape_name s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '%' -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_name s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
       | Some code ->
         Buffer.add_char buf (Char.chr code);
         i := !i + 2
       | None -> Buffer.add_char buf '%')
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let op_to_line op =
  let b2 tag a b = Printf.sprintf "%s %d %d" tag a b in
  match op with
  | Rtl.Add (a, b) -> b2 "add" a b
  | Rtl.Sub (a, b) -> b2 "sub" a b
  | Rtl.Mult (a, b) -> b2 "mult" a b
  | Rtl.Eq (a, b) -> b2 "eq" a b
  | Rtl.Lt (a, b) -> b2 "lt" a b
  | Rtl.Bit_and (a, b) -> b2 "and" a b
  | Rtl.Bit_or (a, b) -> b2 "or" a b
  | Rtl.Bit_xor (a, b) -> b2 "xor" a b
  | Rtl.Bit_not a -> Printf.sprintf "not %d" a
  | Rtl.Mux (s, a, b) -> Printf.sprintf "mux %d %d %d" s a b
  | Rtl.Slice (a, lo) -> Printf.sprintf "slice %d %d" a lo
  | Rtl.Concat (a, b) -> b2 "concat" a b
  | Rtl.Table (tt, args) ->
    Printf.sprintf "table %d %Lu %s" (Truth_table.arity tt) (Truth_table.bits tt)
      (String.concat " " (List.map string_of_int args))

let rtl_to_string design =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "nanomap-rtl v1 %s\n" (escape_name (Rtl.name design)));
  Rtl.iter_signals
    (fun (s : Rtl.signal) ->
      let head = Printf.sprintf "s %d %s %d " s.Rtl.id (escape_name s.Rtl.name) s.Rtl.width in
      let body =
        match s.Rtl.driver with
        | Rtl.Input -> "input"
        | Rtl.Const_driver v -> Printf.sprintf "const %d" v
        | Rtl.Register { d; init } -> Printf.sprintf "reg %d %d" d init
        | Rtl.Comb op -> op_to_line op
      in
      Buffer.add_string buf head;
      Buffer.add_string buf body;
      Buffer.add_char buf '\n')
    design;
  List.iter
    (fun (name, id) ->
      Buffer.add_string buf (Printf.sprintf "o %s %d\n" (escape_name name) id))
    (Rtl.outputs design);
  Buffer.contents buf

let rtl_of_string text =
  let fail line msg = failwith (Printf.sprintf "rtl line %d: %s" line msg) in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "rtl: empty input"
  | (hline, header) :: rest ->
    let design =
      match String.split_on_char ' ' header with
      | "nanomap-rtl" :: "v1" :: name ->
        Rtl.create (unescape_name (String.concat " " name))
      | _ -> fail hline "expected 'nanomap-rtl v1 <name>' header"
    in
    (* registers connect after every signal exists *)
    let pending_regs = ref [] in
    let int_of ln s =
      match int_of_string_opt s with
      | Some i -> i
      | None -> fail ln ("not a number: " ^ s)
    in
    List.iter
      (fun (ln, line) ->
        match String.split_on_char ' ' line with
        | "s" :: id :: name :: width :: driver -> (
          let id = int_of ln id in
          let name = unescape_name name in
          let width = int_of ln width in
          let created =
            match driver with
            | [ "input" ] -> Rtl.add_input design name width
            | [ "const"; v ] ->
              Rtl.add_const design ~name ~width (int_of ln v)
            | [ "reg"; d; init ] ->
              let r =
                Rtl.add_register design ~init:(int_of ln init) ~name ~width ()
              in
              pending_regs := (ln, r, int_of ln d) :: !pending_regs;
              r
            | "table" :: arity_s :: bits_s :: rest ->
              let arity = int_of ln arity_s in
              (* truth bits are printed with %Lu and may exceed the int
                 range at arity 6; parse them back as unsigned int64 *)
              let bits =
                match Int64.of_string_opt ("0u" ^ bits_s) with
                | Some b -> b
                | None -> fail ln ("bad table bits: " ^ bits_s)
              in
              let op =
                Rtl.Table (Truth_table.of_bits ~arity bits, List.map (int_of ln) rest)
              in
              (try Rtl.add_op design ~name ~width op
               with Invalid_argument msg -> fail ln msg)
            | op_tag :: args ->
              let op =
                match op_tag, List.map (int_of ln) args with
                | "add", [ a; b ] -> Rtl.Add (a, b)
                | "sub", [ a; b ] -> Rtl.Sub (a, b)
                | "mult", [ a; b ] -> Rtl.Mult (a, b)
                | "eq", [ a; b ] -> Rtl.Eq (a, b)
                | "lt", [ a; b ] -> Rtl.Lt (a, b)
                | "and", [ a; b ] -> Rtl.Bit_and (a, b)
                | "or", [ a; b ] -> Rtl.Bit_or (a, b)
                | "xor", [ a; b ] -> Rtl.Bit_xor (a, b)
                | "not", [ a ] -> Rtl.Bit_not a
                | "mux", [ s; a; b ] -> Rtl.Mux (s, a, b)
                | "slice", [ a; lo ] -> Rtl.Slice (a, lo)
                | "concat", [ a; b ] -> Rtl.Concat (a, b)
                | _ -> fail ln ("bad driver: " ^ line)
              in
              (try Rtl.add_op design ~name ~width op
               with Invalid_argument msg -> fail ln msg)
            | [] -> fail ln "missing driver"
          in
          if created <> id then fail ln (Printf.sprintf "id mismatch: expected %d, got %d" id created))
        | "o" :: name :: [ id ] ->
          (try Rtl.mark_output design (unescape_name name) (int_of ln id)
           with Invalid_argument msg -> fail ln msg)
        | _ -> fail ln ("unrecognized line: " ^ line))
      rest;
    List.iter
      (fun (ln, r, d) ->
        try Rtl.connect_register design r ~d
        with Invalid_argument msg -> fail ln msg)
      (List.rev !pending_regs);
    (try Rtl.validate design
     with Failure msg -> failwith ("rtl: invalid design: " ^ msg));
    design

(* ---------------------------------------------------------------- arch *)

let arch_to_json (a : Arch.t) =
  Json.Obj
    [ ("lut_inputs", Json.Int a.Arch.lut_inputs);
      ("luts_per_le", Json.Int a.Arch.luts_per_le);
      ("ffs_per_le", Json.Int a.Arch.ffs_per_le);
      ("les_per_mb", Json.Int a.Arch.les_per_mb);
      ("mbs_per_smb", Json.Int a.Arch.mbs_per_smb);
      ("smb_input_pins", Json.Int a.Arch.smb_input_pins);
      ("mb_input_ports", Json.Int a.Arch.mb_input_ports);
      ( "num_reconf",
        match a.Arch.num_reconf with
        | None -> Json.Null
        | Some k -> Json.Int k );
      ("chan_direct", Json.Int a.Arch.chan_direct);
      ("chan_len1", Json.Int a.Arch.chan_len1);
      ("chan_len4", Json.Int a.Arch.chan_len4);
      ("chan_global", Json.Int a.Arch.chan_global);
      ("fs", Json.Int a.Arch.fs);
      ("fc_in", Json.Float a.Arch.fc_in);
      ("fc_out", Json.Float a.Arch.fc_out);
      ("t_lut", Json.Float a.Arch.t_lut);
      ("t_local", Json.Float a.Arch.t_local);
      ("t_intra_mb", Json.Float a.Arch.t_intra_mb);
      ("t_reconf", Json.Float a.Arch.t_reconf);
      ("t_setup", Json.Float a.Arch.t_setup);
      ("t_direct", Json.Float a.Arch.t_direct);
      ("t_len1", Json.Float a.Arch.t_len1);
      ("t_len4", Json.Float a.Arch.t_len4);
      ("t_global", Json.Float a.Arch.t_global);
      ("smb_area", Json.Float a.Arch.smb_area);
      ("e_lut_eval", Json.Float a.Arch.e_lut_eval);
      ("e_reconf", Json.Float a.Arch.e_reconf);
      ("e_wire", Json.Float a.Arch.e_wire);
      ("p_leak_le", Json.Float a.Arch.p_leak_le) ]

let ( let* ) = Result.bind

let need what = function
  | Some v -> Ok v
  | None -> Error ("missing or ill-typed " ^ what)

let get_int j name ~default =
  match Json.member name j with
  | None -> Ok default
  | Some v -> need name (Json.to_int v)

let get_float j name ~default =
  match Json.member name j with
  | None -> Ok default
  | Some v -> need name (Json.to_float v)

let arch_of_json j =
  let d = Arch.default in
  let* lut_inputs = get_int j "lut_inputs" ~default:d.Arch.lut_inputs in
  let* luts_per_le = get_int j "luts_per_le" ~default:d.Arch.luts_per_le in
  let* ffs_per_le = get_int j "ffs_per_le" ~default:d.Arch.ffs_per_le in
  let* les_per_mb = get_int j "les_per_mb" ~default:d.Arch.les_per_mb in
  let* mbs_per_smb = get_int j "mbs_per_smb" ~default:d.Arch.mbs_per_smb in
  let* smb_input_pins = get_int j "smb_input_pins" ~default:d.Arch.smb_input_pins in
  let* mb_input_ports = get_int j "mb_input_ports" ~default:d.Arch.mb_input_ports in
  let* num_reconf =
    match Json.member "num_reconf" j with
    | None -> Ok d.Arch.num_reconf
    | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some k -> Ok (Some k)
      | None -> Error "missing or ill-typed num_reconf")
  in
  let* chan_direct = get_int j "chan_direct" ~default:d.Arch.chan_direct in
  let* chan_len1 = get_int j "chan_len1" ~default:d.Arch.chan_len1 in
  let* chan_len4 = get_int j "chan_len4" ~default:d.Arch.chan_len4 in
  let* chan_global = get_int j "chan_global" ~default:d.Arch.chan_global in
  let* fs = get_int j "fs" ~default:d.Arch.fs in
  let* fc_in = get_float j "fc_in" ~default:d.Arch.fc_in in
  let* fc_out = get_float j "fc_out" ~default:d.Arch.fc_out in
  let* t_lut = get_float j "t_lut" ~default:d.Arch.t_lut in
  let* t_local = get_float j "t_local" ~default:d.Arch.t_local in
  let* t_intra_mb = get_float j "t_intra_mb" ~default:d.Arch.t_intra_mb in
  let* t_reconf = get_float j "t_reconf" ~default:d.Arch.t_reconf in
  let* t_setup = get_float j "t_setup" ~default:d.Arch.t_setup in
  let* t_direct = get_float j "t_direct" ~default:d.Arch.t_direct in
  let* t_len1 = get_float j "t_len1" ~default:d.Arch.t_len1 in
  let* t_len4 = get_float j "t_len4" ~default:d.Arch.t_len4 in
  let* t_global = get_float j "t_global" ~default:d.Arch.t_global in
  let* smb_area = get_float j "smb_area" ~default:d.Arch.smb_area in
  let* e_lut_eval = get_float j "e_lut_eval" ~default:d.Arch.e_lut_eval in
  let* e_reconf = get_float j "e_reconf" ~default:d.Arch.e_reconf in
  let* e_wire = get_float j "e_wire" ~default:d.Arch.e_wire in
  let* p_leak_le = get_float j "p_leak_le" ~default:d.Arch.p_leak_le in
  Ok
    { Arch.lut_inputs; luts_per_le; ffs_per_le; les_per_mb; mbs_per_smb;
      smb_input_pins; mb_input_ports; num_reconf; chan_direct; chan_len1;
      chan_len4; chan_global; fs; fc_in; fc_out; t_lut; t_local; t_intra_mb;
      t_reconf; t_setup; t_direct; t_len1; t_len4; t_global; smb_area;
      e_lut_eval; e_reconf; e_wire; p_leak_le }

(* ------------------------------------------------------------- options *)

let objective_to_json (o : Flow.objective) =
  match o with
  | Flow.Delay_min area ->
    Json.Obj
      (("kind", Json.String "delay")
      :: (match area with None -> [] | Some a -> [ ("area", Json.Int a) ]))
  | Flow.Area_min delay ->
    Json.Obj
      (("kind", Json.String "area")
      :: (match delay with None -> [] | Some d -> [ ("delay_ns", Json.Float d) ]))
  | Flow.At_min -> Json.Obj [ ("kind", Json.String "at") ]
  | Flow.Both (a, d) ->
    Json.Obj
      [ ("kind", Json.String "both"); ("area", Json.Int a);
        ("delay_ns", Json.Float d) ]
  | Flow.Fixed_level l ->
    Json.Obj [ ("kind", Json.String "fixed"); ("level", Json.Int l) ]
  | Flow.No_folding -> Json.Obj [ ("kind", Json.String "none") ]
  | Flow.Pipelined_delay_min a ->
    Json.Obj [ ("kind", Json.String "pipelined"); ("area", Json.Int a) ]

let objective_of_json j =
  let* kind = need "objective.kind" Option.(bind (Json.member "kind" j) Json.to_str) in
  match kind with
  | "delay" -> (
    match Json.member "area" j with
    | None -> Ok (Flow.Delay_min None)
    | Some v ->
      let* a = need "objective.area" (Json.to_int v) in
      Ok (Flow.Delay_min (Some a)))
  | "area" -> (
    match Json.member "delay_ns" j with
    | None -> Ok (Flow.Area_min None)
    | Some v ->
      let* d = need "objective.delay_ns" (Json.to_float v) in
      Ok (Flow.Area_min (Some d)))
  | "at" -> Ok Flow.At_min
  | "both" ->
    let* a = need "objective.area" Option.(bind (Json.member "area" j) Json.to_int) in
    let* d =
      need "objective.delay_ns" Option.(bind (Json.member "delay_ns" j) Json.to_float)
    in
    Ok (Flow.Both (a, d))
  | "fixed" ->
    let* l = need "objective.level" Option.(bind (Json.member "level" j) Json.to_int) in
    Ok (Flow.Fixed_level l)
  | "none" -> Ok Flow.No_folding
  | "pipelined" ->
    let* a = need "objective.area" Option.(bind (Json.member "area" j) Json.to_int) in
    Ok (Flow.Pipelined_delay_min a)
  | k -> Error ("unknown objective kind " ^ k)

let route_alg_string = function
  | Router.Full -> "full"
  | Router.Incremental -> "incremental"

let caps_to_json (c : Rr_graph.caps) =
  Json.Obj
    [ ("direct", Json.Int c.Rr_graph.direct_tracks);
      ("len1", Json.Int c.Rr_graph.len1_tracks);
      ("len4", Json.Int c.Rr_graph.len4_tracks);
      ("global", Json.Int c.Rr_graph.global_tracks) ]

let options_to_json (o : Flow.options) =
  Json.Obj
    [ ("objective", objective_to_json o.Flow.objective);
      ("physical", Json.Bool o.Flow.physical);
      ("seed", Json.Int o.Flow.seed);
      ("routability_threshold", Json.Float o.Flow.routability_threshold);
      ("max_place_retries", Json.Int o.Flow.max_place_retries);
      ("route_alg", Json.String (route_alg_string o.Flow.route_alg));
      ("check_level", Json.String (Check.string_of_level o.Flow.check_level));
      ("defects", Json.String (Defect.to_string o.Flow.defects));
      ( "route_caps",
        match o.Flow.route_caps with
        | None -> Json.Null
        | Some c -> caps_to_json c );
      ("mapper", Json.String (Mapper.string_of_mapper o.Flow.mapper));
      ("aig_effort", Json.Int o.Flow.aig_effort);
      ("jobs", Json.Int o.Flow.jobs);
      ("portfolio", Json.Int o.Flow.portfolio);
      ( "placer",
        Json.String (Nanomap_place.Sat_place.strategy_to_string o.Flow.placer)
      ) ]

let options_of_json j =
  let d = Flow.default_options in
  let* objective =
    match Json.member "objective" j with
    | None -> Ok d.Flow.objective
    | Some oj -> objective_of_json oj
  in
  let* physical =
    match Json.member "physical" j with
    | None -> Ok d.Flow.physical
    | Some v -> need "physical" (Json.to_bool v)
  in
  let* seed = get_int j "seed" ~default:d.Flow.seed in
  let* routability_threshold =
    get_float j "routability_threshold" ~default:d.Flow.routability_threshold
  in
  let* max_place_retries =
    get_int j "max_place_retries" ~default:d.Flow.max_place_retries
  in
  let* route_alg =
    match Json.member "route_alg" j with
    | None -> Ok d.Flow.route_alg
    | Some v -> (
      match Json.to_str v with
      | Some "full" -> Ok Router.Full
      | Some "incremental" -> Ok Router.Incremental
      | _ -> Error "route_alg must be full|incremental")
  in
  let* check_level =
    match Json.member "check_level" j with
    | None -> Ok d.Flow.check_level
    | Some v -> (
      match Option.bind (Json.to_str v) Check.level_of_string with
      | Some l -> Ok l
      | None -> Error "check_level must be off|fast|full")
  in
  let* defects =
    match Json.member "defects" j with
    | None -> Ok d.Flow.defects
    | Some v -> (
      match Json.to_str v with
      | None -> Error "defects must be a string"
      | Some s -> (
        match Defect.of_string s with
        | def -> Ok def
        | exception Nanomap_util.Diag.Fail diag ->
          Error ("defects: " ^ Nanomap_util.Diag.to_string diag)))
  in
  let* route_caps =
    match Json.member "route_caps" j with
    | None | Some Json.Null -> Ok d.Flow.route_caps
    | Some cj ->
      let dc = Rr_graph.default_caps in
      let* direct_tracks = get_int cj "direct" ~default:dc.Rr_graph.direct_tracks in
      let* len1_tracks = get_int cj "len1" ~default:dc.Rr_graph.len1_tracks in
      let* len4_tracks = get_int cj "len4" ~default:dc.Rr_graph.len4_tracks in
      let* global_tracks = get_int cj "global" ~default:dc.Rr_graph.global_tracks in
      Ok (Some { Rr_graph.direct_tracks; len1_tracks; len4_tracks; global_tracks })
  in
  let* mapper =
    match Json.member "mapper" j with
    | None -> Ok d.Flow.mapper
    | Some v -> (
      match Option.bind (Json.to_str v) Mapper.mapper_of_string with
      | Some m -> Ok m
      | None -> Error "mapper must be tt|aig")
  in
  let* aig_effort = get_int j "aig_effort" ~default:d.Flow.aig_effort in
  let* jobs = get_int j "jobs" ~default:d.Flow.jobs in
  let* portfolio = get_int j "portfolio" ~default:d.Flow.portfolio in
  let* placer =
    match Json.member "placer" j with
    | None -> Ok d.Flow.placer
    | Some v -> (
      match
        Option.bind (Json.to_str v) Nanomap_place.Sat_place.strategy_of_string
      with
      | Some p -> Ok p
      | None -> Error "placer must be sa|sat|race")
  in
  Ok
    { Flow.objective; physical; seed; routability_threshold; max_place_retries;
      route_alg; check_level; defects; route_caps; mapper; aig_effort; jobs;
      portfolio; placer }

(* The hash view: canonical JSON of every report-affecting field. [jobs]
   buys wall-clock only (Pool's determinism contract), so it is excluded
   and -j1/-j4 traffic shares cache entries. *)
let options_hash_string (o : Flow.options) =
  Json.to_string
    (Json.Obj
       [ ("objective", objective_to_json o.Flow.objective);
         ("physical", Json.Bool o.Flow.physical);
         ("seed", Json.Int o.Flow.seed);
         ("routability_threshold", Json.Float o.Flow.routability_threshold);
         ("max_place_retries", Json.Int o.Flow.max_place_retries);
         ("route_alg", Json.String (route_alg_string o.Flow.route_alg));
         ("check_level", Json.String (Check.string_of_level o.Flow.check_level));
         ("defects", Json.String (Defect.to_string o.Flow.defects));
         ( "route_caps",
           match o.Flow.route_caps with
           | None -> Json.Null
           | Some c -> caps_to_json c );
         ("mapper", Json.String (Mapper.string_of_mapper o.Flow.mapper));
         ("aig_effort", Json.Int o.Flow.aig_effort);
         ("portfolio", Json.Int o.Flow.portfolio);
         ( "placer",
           Json.String
             (Nanomap_place.Sat_place.strategy_to_string o.Flow.placer) ) ])

(* ------------------------------------------------------------ artifact *)

type placement = {
  width : int;
  height : int;
  smb_xy : (int * int) array;
  pad_xy : (int * int) array;
}

type artifact = {
  design_name : string;
  mapper : string;
  level : int;
  stages : int;
  num_planes : int;
  area_les : int;
  area_smbs : int;
  area_um2 : float;
  delay_model_ns : float;
  delay_routed_ns : float option;
  channel_factor : int;
  mapping_retries : int;
  degradations : string list;
  fingerprints : string array;
  placement : placement option;
  route_success : bool option;
  route_wirelength : int option;
  route_total_nets : int option;
  bitstream : string option;
}

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "hex: odd length"
  else
    let buf = Buffer.create (n / 2) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      (match int_of_string_opt ("0x" ^ String.sub s !i 2) with
      | Some code -> Buffer.add_char buf (Char.chr code)
      | None -> ok := false);
      i := !i + 2
    done;
    if !ok then Ok (Buffer.contents buf) else Error "hex: bad digit"

let artifact_of_report (r : Flow.report) =
  { design_name = r.Flow.design_name;
    mapper = Mapper.string_of_mapper r.Flow.prepared.Mapper.mapper;
    level = r.Flow.plan.Mapper.level;
    stages = r.Flow.plan.Mapper.stages;
    num_planes = r.Flow.prepared.Mapper.num_planes;
    area_les = r.Flow.area_les;
    area_smbs = r.Flow.area_smbs;
    area_um2 = r.Flow.area_um2;
    delay_model_ns = r.Flow.delay_model_ns;
    delay_routed_ns = r.Flow.delay_routed_ns;
    channel_factor = r.Flow.channel_factor;
    mapping_retries = r.Flow.mapping_retries;
    degradations = r.Flow.degradations;
    fingerprints =
      Array.map
        (fun (pl : Mapper.plane_plan) ->
          Hashing.digest_hex (Lut_network.fingerprint pl.Mapper.network))
        r.Flow.plan.Mapper.planes;
    placement =
      Option.map
        (fun (p : Place.t) ->
          { width = p.Place.width;
            height = p.Place.height;
            smb_xy = Array.copy p.Place.smb_xy;
            pad_xy = Array.copy p.Place.pad_xy })
        r.Flow.placement;
    route_success =
      Option.map (fun (rt : Router.result) -> rt.Router.success) r.Flow.routing;
    route_wirelength =
      Option.map (fun (rt : Router.result) -> rt.Router.wirelength) r.Flow.routing;
    route_total_nets =
      Option.map (fun (rt : Router.result) -> rt.Router.total_nets) r.Flow.routing;
    bitstream =
      Option.map
        (fun (b : Bitstream.t) -> Bytes.to_string b.Bitstream.bytes)
        r.Flow.bitstream }

let placement_to_json p =
  let xy (x, y) = Json.List [ Json.Int x; Json.Int y ] in
  Json.Obj
    [ ("width", Json.Int p.width);
      ("height", Json.Int p.height);
      ("smb_xy", Json.List (Array.to_list (Array.map xy p.smb_xy)));
      ("pad_xy", Json.List (Array.to_list (Array.map xy p.pad_xy))) ]

let placement_of_json j =
  let* width = need "placement.width" Option.(bind (Json.member "width" j) Json.to_int) in
  let* height = need "placement.height" Option.(bind (Json.member "height" j) Json.to_int) in
  let xy_list name =
    let* items = need name Option.(bind (Json.member name j) Json.to_list) in
    let* pairs =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.List [ a; b ] -> (
            match Json.to_int a, Json.to_int b with
            | Some x, Some y -> Ok ((x, y) :: acc)
            | _ -> Error (name ^ ": bad coordinate"))
          | _ -> Error (name ^ ": bad coordinate"))
        (Ok []) items
    in
    Ok (Array.of_list (List.rev pairs))
  in
  let* smb_xy = xy_list "smb_xy" in
  let* pad_xy = xy_list "pad_xy" in
  Ok { width; height; smb_xy; pad_xy }

let opt f = function None -> Json.Null | Some v -> f v

let artifact_to_json a =
  Json.Obj
    [ ("design_name", Json.String a.design_name);
      ("mapper", Json.String a.mapper);
      ("level", Json.Int a.level);
      ("stages", Json.Int a.stages);
      ("num_planes", Json.Int a.num_planes);
      ("area_les", Json.Int a.area_les);
      ("area_smbs", Json.Int a.area_smbs);
      ("area_um2", Json.Float a.area_um2);
      ("delay_model_ns", Json.Float a.delay_model_ns);
      ("delay_routed_ns", opt (fun f -> Json.Float f) a.delay_routed_ns);
      ("channel_factor", Json.Int a.channel_factor);
      ("mapping_retries", Json.Int a.mapping_retries);
      ("degradations", Json.List (List.map (fun s -> Json.String s) a.degradations));
      ( "fingerprints",
        Json.List (Array.to_list (Array.map (fun s -> Json.String s) a.fingerprints)) );
      ("placement", opt placement_to_json a.placement);
      ("route_success", opt (fun b -> Json.Bool b) a.route_success);
      ("route_wirelength", opt (fun i -> Json.Int i) a.route_wirelength);
      ("route_total_nets", opt (fun i -> Json.Int i) a.route_total_nets);
      ("bitstream", opt (fun s -> Json.String (hex_encode s)) a.bitstream) ]

let artifact_of_json j =
  let opt_member name conv =
    match Json.member name j with
    | None | Some Json.Null -> Ok None
    | Some v ->
      let* x = need name (conv v) in
      Ok (Some x)
  in
  let* design_name =
    need "design_name" Option.(bind (Json.member "design_name" j) Json.to_str)
  in
  let* mapper = need "mapper" Option.(bind (Json.member "mapper" j) Json.to_str) in
  let* level = need "level" Option.(bind (Json.member "level" j) Json.to_int) in
  let* stages = need "stages" Option.(bind (Json.member "stages" j) Json.to_int) in
  let* num_planes =
    need "num_planes" Option.(bind (Json.member "num_planes" j) Json.to_int)
  in
  let* area_les = need "area_les" Option.(bind (Json.member "area_les" j) Json.to_int) in
  let* area_smbs =
    need "area_smbs" Option.(bind (Json.member "area_smbs" j) Json.to_int)
  in
  let* area_um2 =
    need "area_um2" Option.(bind (Json.member "area_um2" j) Json.to_float)
  in
  let* delay_model_ns =
    need "delay_model_ns" Option.(bind (Json.member "delay_model_ns" j) Json.to_float)
  in
  let* delay_routed_ns = opt_member "delay_routed_ns" Json.to_float in
  let* channel_factor =
    need "channel_factor" Option.(bind (Json.member "channel_factor" j) Json.to_int)
  in
  let* mapping_retries =
    need "mapping_retries" Option.(bind (Json.member "mapping_retries" j) Json.to_int)
  in
  let* degradations =
    let* items =
      need "degradations" Option.(bind (Json.member "degradations" j) Json.to_list)
    in
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* s = need "degradations item" (Json.to_str item) in
        Ok (s :: acc))
      (Ok []) items
    |> Result.map List.rev
  in
  let* fingerprints =
    let* items =
      need "fingerprints" Option.(bind (Json.member "fingerprints" j) Json.to_list)
    in
    let* strs =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* s = need "fingerprints item" (Json.to_str item) in
          Ok (s :: acc))
        (Ok []) items
    in
    Ok (Array.of_list (List.rev strs))
  in
  let* placement =
    match Json.member "placement" j with
    | None | Some Json.Null -> Ok None
    | Some pj ->
      let* p = placement_of_json pj in
      Ok (Some p)
  in
  let* route_success = opt_member "route_success" Json.to_bool in
  let* route_wirelength = opt_member "route_wirelength" Json.to_int in
  let* route_total_nets = opt_member "route_total_nets" Json.to_int in
  let* bitstream =
    match Json.member "bitstream" j with
    | None | Some Json.Null -> Ok None
    | Some v ->
      let* hex = need "bitstream" (Json.to_str v) in
      let* raw = hex_decode hex in
      Ok (Some raw)
  in
  Ok
    { design_name; mapper; level; stages; num_planes; area_les; area_smbs;
      area_um2; delay_model_ns; delay_routed_ns; channel_factor;
      mapping_retries; degradations; fingerprints; placement; route_success;
      route_wirelength; route_total_nets; bitstream }

let artifact_equal a b = a = b

(* ----------------------------------------------------------- cache key *)

let content_key ~design ~arch ~options =
  Nanomap_util.Hashing.digest_parts
    [ "nanomap-job v1";
      rtl_to_string design;
      Json.to_string (arch_to_json arch);
      options_hash_string options ]
