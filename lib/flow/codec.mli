(** Round-trip codecs for the flow's stage inputs and outputs, and the
    content-hash definition of the compile-service cache.

    The compile service ships jobs over a wire and memoizes their results
    on disk, which forces the flow's boundary values to become plain
    serializable data:

    - {e inputs}: the RTL netlist (canonical line-oriented text), the
      architecture instance and the flow options (JSON);
    - {e outputs}: an {!artifact} — the value-level summary of a
      {!Flow.report} (areas, delays, per-plane LUT-network fingerprints,
      the placement, the routing summary and the raw bitstream bytes) —
      as JSON.

    Every codec round-trips: [decode (encode x)] reproduces [x] up to the
    codomain stated on each function, and the encoders are {e canonical}
    — a value encodes byte-identically on every run and process, which is
    what makes the encodings hashable.

    {2 The content hash}

    {!content_key} is the cache key of a compile job:

    [md5(len-framed ["nanomap-job v1"; rtl; arch; options-hash-string])]

    where [rtl] is {!rtl_to_string} of the netlist, [arch] is the stable
    JSON of {!arch_to_json} and the options section is
    {!options_hash_string} — every report-affecting field of
    {!Flow.options}, {e excluding} [jobs] (the pool's determinism
    contract guarantees worker count never changes a report, so
    [-j 1]/[-j 4] traffic shares entries; [portfolio] {e is} part of the
    result and is included). Determinism of the key is exactly
    determinism of the serializers; the regression tests pin it by
    hashing the same design twice through independent builds and at
    [-j 1] vs [-j 4]. *)

module Json = Nanomap_util.Json

(** {1 Netlist} *)

val rtl_to_string : Nanomap_rtl.Rtl.t -> string
(** Canonical text, one signal per line in id order ([nanomap-rtl v1]
    header), then the outputs. Reconstructs ids exactly: signal [i] of
    the decoded design is signal [i] of the encoded one. *)

val rtl_of_string : string -> Nanomap_rtl.Rtl.t
(** Raises [Failure] with a line number on malformed input. The result
    is validated. *)

(** {1 Flow inputs} *)

val arch_to_json : Nanomap_arch.Arch.t -> Json.t
val arch_of_json : Json.t -> (Nanomap_arch.Arch.t, string) result

val options_to_json : Flow.options -> Json.t
(** Every field, including [jobs] (the wire protocol carries it so a
    client can steer the server's parallelism; the cache key drops it). *)

val options_of_json : Json.t -> (Flow.options, string) result
(** Missing members default to {!Flow.default_options}'s values, so a
    client can send only what it overrides. *)

val options_hash_string : Flow.options -> string
(** The options section of the content hash: canonical, [jobs]-free. *)

(** {1 Flow outputs} *)

(** A placement as plain data (grid, per-SMB and per-pad coordinates). *)
type placement = {
  width : int;
  height : int;
  smb_xy : (int * int) array;
  pad_xy : (int * int) array;
}

(** The serializable result of one compile job: everything a client (or a
    cache hit) needs, without the live structures of a {!Flow.report}.
    [fingerprints] are {!Nanomap_techmap.Lut_network.fingerprint} digests
    of the mapped per-plane networks; [bitstream] is the raw configuration
    bitmap. *)
type artifact = {
  design_name : string;
  mapper : string;                    (** ["tt"] or ["aig"] *)
  level : int;
  stages : int;
  num_planes : int;
  area_les : int;
  area_smbs : int;
  area_um2 : float;
  delay_model_ns : float;
  delay_routed_ns : float option;
  channel_factor : int;
  mapping_retries : int;
  degradations : string list;
  fingerprints : string array;        (** md5 per plane, in plane order *)
  placement : placement option;
  route_success : bool option;
  route_wirelength : int option;
  route_total_nets : int option;
  bitstream : string option;          (** raw bytes (not hex); JSON-escaped
                                          on the wire via base16 *)
}

val artifact_of_report : Flow.report -> artifact

val artifact_to_json : artifact -> Json.t
(** Canonical: fixed member order, bitstream bytes hex-encoded. *)

val artifact_of_json : Json.t -> (artifact, string) result

val artifact_equal : artifact -> artifact -> bool
(** Structural equality — what the cache-correctness differential tests
    assert between a cold compile and a cache hit. *)

(** {1 The cache key} *)

val content_key :
  design:Nanomap_rtl.Rtl.t ->
  arch:Nanomap_arch.Arch.t ->
  options:Flow.options ->
  string
(** 32-hex-char job key as specified above. *)

(** {2 Hex helpers (bitstream transport)} *)

val hex_encode : string -> string
val hex_decode : string -> (string, string) result
