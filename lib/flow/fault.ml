module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Bitstream = Nanomap_bitstream.Bitstream

let drop_net (r : Router.result) =
  match r.Router.routed with
  | [] -> r
  | _ :: rest -> { r with Router.routed = rest }

(* Two LUTs of one plane scheduled in the same folding cycle: give the
   second the first's LE slot, creating a within-timeslot double booking. *)
let overfill_cluster (plan : Mapper.plan) (cl : Cluster.t) =
  let victim = ref None in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      if !victim = None then begin
        let plane = plp.Mapper.plane_index in
        let first_in_cycle = Hashtbl.create 16 in
        Lut_network.iter
          (fun l -> function
            | Lut_network.Input _ -> ()
            | Lut_network.Lut _ ->
              if !victim = None then begin
                let u = plp.Mapper.partition.Partition.unit_of_lut.(l) in
                let cycle = plp.Mapper.schedule.(u) in
                match Hashtbl.find_opt first_in_cycle cycle with
                | None -> Hashtbl.replace first_in_cycle cycle (plane, l)
                | Some (p0, l0) ->
                  (* only a real conflict if the two LUTs sit on different
                     LEs right now *)
                  let s0 = Hashtbl.find_opt cl.Cluster.lut_slots (p0, l0) in
                  let s1 = Hashtbl.find_opt cl.Cluster.lut_slots (plane, l) in
                  (match (s0, s1) with
                  | Some a, Some b when a <> b ->
                    victim := Some ((p0, l0), (plane, l))
                  | _ -> ())
              end)
          plp.Mapper.network
      end)
    plan.Mapper.planes;
  match !victim with
  | None -> cl
  | Some (first, second) ->
    let lut_slots = Hashtbl.copy cl.Cluster.lut_slots in
    Hashtbl.replace lut_slots second (Hashtbl.find lut_slots first);
    { cl with Cluster.lut_slots }

let double_book_slot (pl : Place.t) =
  if Array.length pl.Place.smb_xy < 2 then pl
  else begin
    let smb_xy = Array.copy pl.Place.smb_xy in
    smb_xy.(1) <- smb_xy.(0);
    { pl with Place.smb_xy }
  end

let mark_used_le_defective (cl : Cluster.t) (pl : Place.t) =
  (* deterministic pick: the slot of the smallest (plane, lut) key *)
  let best = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !best with
      | Some (k, _) when compare k key <= 0 -> ()
      | _ -> best := Some (key, slot))
    cl.Cluster.lut_slots;
  match !best with
  | None -> Defect.none
  | Some (_, (slot : Cluster.slot)) ->
    let x, y = pl.Place.smb_xy.(slot.Cluster.smb) in
    { Defect.none with
      Defect.les = [ (x, y, slot.Cluster.mb, slot.Cluster.le) ] }

let mark_used_track_defective (r : Router.result) =
  let rec first_wire = function
    | [] -> -1
    | (rn : Router.routed_net) :: rest ->
      (match rn.Router.tree with [] -> first_wire rest | nd :: _ -> nd)
  in
  let nd = first_wire r.Router.routed in
  if nd >= 0 then r.Router.graph.Rr_graph.defective.(nd) <- true;
  nd

let corrupt_bitstream (bs : Bitstream.t) =
  (* header: "NMAP1" + u32 configs + u32 num_smbs = 13 bytes; the word at
     offset 13 is the first configuration's LE-section length *)
  let bytes =
    if Bytes.length bs.Bitstream.bytes >= 17 then begin
      let b = Bytes.copy bs.Bitstream.bytes in
      Bytes.set_int32_le b 13 0x7FFFFFFFl;
      b
    end
    else
      (* degenerate zero-config bitmap: truncate the header instead *)
      Bytes.sub bs.Bitstream.bytes 0 (min 8 (Bytes.length bs.Bitstream.bytes))
  in
  { bs with Bitstream.bytes }
