module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Truth_table = Nanomap_logic.Truth_table
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Bitstream = Nanomap_bitstream.Bitstream

let drop_net (r : Router.result) =
  match r.Router.routed with
  | [] -> r
  | _ :: rest -> { r with Router.routed = rest }

(* Two LUTs of one plane scheduled in the same folding cycle: give the
   second the first's LE slot, creating a within-timeslot double booking. *)
let overfill_cluster (plan : Mapper.plan) (cl : Cluster.t) =
  let victim = ref None in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      if !victim = None then begin
        let plane = plp.Mapper.plane_index in
        let first_in_cycle = Hashtbl.create 16 in
        Lut_network.iter
          (fun l -> function
            | Lut_network.Input _ -> ()
            | Lut_network.Lut _ ->
              if !victim = None then begin
                let u = plp.Mapper.partition.Partition.unit_of_lut.(l) in
                let cycle = plp.Mapper.schedule.(u) in
                match Hashtbl.find_opt first_in_cycle cycle with
                | None -> Hashtbl.replace first_in_cycle cycle (plane, l)
                | Some (p0, l0) ->
                  (* only a real conflict if the two LUTs sit on different
                     LEs right now *)
                  let s0 = Hashtbl.find_opt cl.Cluster.lut_slots (p0, l0) in
                  let s1 = Hashtbl.find_opt cl.Cluster.lut_slots (plane, l) in
                  (match (s0, s1) with
                  | Some a, Some b when a <> b ->
                    victim := Some ((p0, l0), (plane, l))
                  | _ -> ())
              end)
          plp.Mapper.network
      end)
    plan.Mapper.planes;
  match !victim with
  | None -> cl
  | Some (first, second) ->
    let lut_slots = Hashtbl.copy cl.Cluster.lut_slots in
    Hashtbl.replace lut_slots second (Hashtbl.find lut_slots first);
    { cl with Cluster.lut_slots }

let double_book_slot (pl : Place.t) =
  if Array.length pl.Place.smb_xy < 2 then pl
  else begin
    let smb_xy = Array.copy pl.Place.smb_xy in
    smb_xy.(1) <- smb_xy.(0);
    { pl with Place.smb_xy }
  end

let mark_used_le_defective (cl : Cluster.t) (pl : Place.t) =
  (* deterministic pick: the slot of the smallest (plane, lut) key *)
  let best = ref None in
  Hashtbl.iter
    (fun key slot ->
      match !best with
      | Some (k, _) when compare k key <= 0 -> ()
      | _ -> best := Some (key, slot))
    cl.Cluster.lut_slots;
  match !best with
  | None -> Defect.none
  | Some (_, (slot : Cluster.slot)) ->
    let x, y = pl.Place.smb_xy.(slot.Cluster.smb) in
    { Defect.none with
      Defect.les = [ (x, y, slot.Cluster.mb, slot.Cluster.le) ] }

let mark_used_track_defective (r : Router.result) =
  let rec first_wire = function
    | [] -> -1
    | (rn : Router.routed_net) :: rest ->
      (match rn.Router.tree with [] -> first_wire rest | nd :: _ -> nd)
  in
  let nd = first_wire r.Router.routed in
  if nd >= 0 then r.Router.graph.Rr_graph.defective.(nd) <- true;
  nd

(* --- functional faults for the differential oracle --- *)

(* Rebuild [network] node for node, inverting the function of LUT
   [victim]. Node ids, names, module tags and output targets are
   preserved, so partitions and schedules indexed by node id stay valid. *)
let rebuild_with_inverted_lut network victim =
  let n' = Lut_network.create () in
  Lut_network.iter
    (fun i node ->
      let i' =
        match node with
        | Lut_network.Input origin ->
          Lut_network.add_input n' ~name:(Lut_network.node_name network i) origin
        | Lut_network.Lut { func; fanins } ->
          let func = if i = victim then Truth_table.lognot func else func in
          Lut_network.add_lut n'
            ~name:(Lut_network.node_name network i)
            ~module_id:(Lut_network.module_id network i)
            ~func ~fanins:(Array.copy fanins) ()
      in
      assert (i' = i))
    network;
  List.iter
    (fun (target, node) -> Lut_network.mark_output n' target node)
    (Lut_network.outputs network);
  n'

let flip_network_lut (prepared : Mapper.prepared) (plan : Mapper.plan) =
  (* invert a LUT that directly drives an output target — preferably a
     primary output, so the divergence is observable immediately *)
  let victim = ref None in
  Array.iteri
    (fun pi (plp : Mapper.plane_plan) ->
      if !victim = None then begin
        let network = plp.Mapper.network in
        let is_lut n =
          match Lut_network.node network n with
          | Lut_network.Lut _ -> true
          | Lut_network.Input _ -> false
        in
        let outs = Lut_network.outputs network in
        let pick pred =
          List.find_opt (fun (t, n) -> pred t && is_lut n) outs
        in
        match
          pick (function Lut_network.Po_target _ -> true | _ -> false)
        with
        | Some (_, n) -> victim := Some (pi, n)
        | None ->
          (match pick (fun _ -> true) with
           | Some (_, n) -> victim := Some (pi, n)
           | None -> ())
      end)
    plan.Mapper.planes;
  match !victim with
  | None -> (prepared, plan)
  | Some (pi, node) ->
    let network' =
      rebuild_with_inverted_lut plan.Mapper.planes.(pi).Mapper.network node
    in
    let networks = Array.copy prepared.Mapper.networks in
    networks.(pi) <- network';
    let planes = Array.copy plan.Mapper.planes in
    planes.(pi) <- { planes.(pi) with Mapper.network = network' };
    ( { prepared with Mapper.networks },
      { plan with Mapper.planes = planes } )

let misroute_ff_slot (plan : Mapper.plan) (cl : Cluster.t) =
  (* Redirect an intermediate V_lut value written in folding cycle c onto
     the home slot of a state value some LUT of a *later* cycle of the same
     plane still reads: the emulator's owner check must fire within the
     first macro cycle. *)
  let found = ref None in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      if !found = None then begin
        let plane = plp.Mapper.plane_index in
        let network = plp.Mapper.network in
        let cycle_of l =
          plp.Mapper.schedule.(plp.Mapper.partition.Partition.unit_of_lut.(l))
        in
        let luts = ref [] and state_reads = ref [] in
        Lut_network.iter
          (fun l -> function
            | Lut_network.Input _ -> ()
            | Lut_network.Lut { fanins; _ } ->
              let c = cycle_of l in
              if Hashtbl.mem cl.Cluster.ff_slots (Cluster.V_lut (plane, l))
              then luts := (l, c) :: !luts;
              Array.iter
                (fun f ->
                  match Lut_network.node network f with
                  | Lut_network.Input
                      (Lut_network.Register_bit (r, b)
                      | Lut_network.Wire_bit (r, b)) ->
                    if Hashtbl.mem cl.Cluster.ff_slots (Cluster.V_state (r, b))
                    then state_reads := ((r, b), c) :: !state_reads
                  | Lut_network.Input _ | Lut_network.Lut _ -> ())
                fanins)
          network;
        List.iter
          (fun (l, cw) ->
            if !found = None then
              match List.find_opt (fun (_, cr) -> cr > cw) !state_reads with
              | Some ((r, b), _) ->
                found :=
                  Some (Cluster.V_lut (plane, l), Cluster.V_state (r, b))
              | None -> ())
          (List.rev !luts)
      end)
    plan.Mapper.planes;
  match !found with
  | None -> cl
  | Some (vlut, vstate) ->
    let ff_slots = Hashtbl.copy cl.Cluster.ff_slots in
    Hashtbl.replace ff_slots vlut (Hashtbl.find ff_slots vstate);
    { cl with Cluster.ff_slots }

let invert_bitstream_luts (bs : Bitstream.t) =
  match Bitstream.parse_full bs.Bitstream.bytes with
  | exception Bitstream.Corrupt _ -> bs
  | num_smbs, lut_inputs, configs ->
    (* flip every truth-table bit the 2^K field actually holds *)
    let mask =
      if lut_inputs >= 6 then -1L
      else Int64.sub (Int64.shift_left 1L (1 lsl lut_inputs)) 1L
    in
    let any = ref false in
    let configs =
      Array.map
        (fun (c : Bitstream.config) ->
          { c with
            Bitstream.les =
              List.map
                (fun (le : Bitstream.le_config) ->
                  any := true;
                  { le with
                    Bitstream.truth_table =
                      Int64.logxor le.Bitstream.truth_table mask })
                c.Bitstream.les })
        configs
    in
    if not !any then bs
    else
      { bs with
        Bitstream.bytes = Bitstream.encode_configs ~num_smbs ~lut_inputs configs }

(* --- service-level chaos injectors --- *)

module Chaos = struct
  module Rng = Nanomap_util.Rng

  let disarm () = Flow.set_stage_hook None

  let arm_crash ~design ~stage =
    Flow.set_stage_hook
      (Some
         (fun ~stage:s ~design:d ->
           if d = design && s = stage then
             failwith
               (Printf.sprintf "chaos: injected crash in %s at stage %s" d s)))

  let arm_stall ~design ~stage ~ms =
    Flow.set_stage_hook
      (Some
         (fun ~stage:s ~design:d ->
           if d = design && s = stage then
             Unix.sleepf (float_of_int ms /. 1000.0)))

  (* The cache's on-disk layout, restated here because the flow library
     cannot depend on the serve library that owns it. A test
     cross-checks this against [Cache.entry_path] so the two cannot
     drift silently. *)
  let entry_path ~dir ~key =
    Filename.concat (Filename.concat dir (String.sub key 0 2))
      (String.sub key 2 (String.length key - 2) ^ ".json")

  let corrupt_disk_entry ~dir ~key =
    let path = entry_path ~dir ~key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> false
    | text ->
      (* keep a syntactically plausible prefix: a corruption that still
         parses as JSON is exactly what only the digest can catch *)
      let n = String.length text in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub text 0 (n / 2)));
      true

  let rec mkdir_p path =
    if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
      mkdir_p (Filename.dirname path);
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let orphan_tmp ~dir ~key =
    let path = entry_path ~dir ~key ^ ".tmp.999999.0" in
    mkdir_p (Filename.dirname path);
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc "{\"v\":1,\"digest\":\"interrupted");
    path

  let garbage_frames ~seed ~count =
    let rng = Rng.create seed in
    List.init count (fun _ ->
        match Rng.int rng 6 with
        | 0 -> "{\"type\":\"job\",oops"                      (* not JSON *)
        | 1 -> "{\"type\":\"job\"}"            (* JSON, missing members *)
        | 2 -> "[1,2,3]"                      (* JSON, not even an object *)
        | 3 -> "{\"type\":\"warp-core\"}"            (* unknown request *)
        | 4 -> String.make (1 + Rng.int rng 64) '\x01'   (* binary noise *)
        | _ ->
          "{\"type\":\"job\",\"id\":42}"     (* wrong member type *))
end

let corrupt_bitstream (bs : Bitstream.t) =
  (* header: "NMAP2" + u32 configs + u32 num_smbs + u8 lut_inputs =
     14 bytes; the word at offset 14 is the first configuration's
     LE-section length *)
  let bytes =
    if Bytes.length bs.Bitstream.bytes >= 18 then begin
      let b = Bytes.copy bs.Bitstream.bytes in
      Bytes.set_int32_le b 14 0x7FFFFFFFl;
      b
    end
    else
      (* degenerate zero-config bitmap: truncate the header instead *)
      Bytes.sub bs.Bitstream.bytes 0 (min 8 (Bytes.length bs.Bitstream.bytes))
  in
  { bs with Bitstream.bytes }
