(** Deterministic fault injection for the checker test-bench.

    Each injector corrupts one intermediate artifact of the flow in a way
    that exactly one {!Check} validator (or stage validator) must catch —
    the test suite uses them to prove the checkers detect what they claim.
    All injectors are pure copies except {!mark_used_track_defective},
    which mutates the routing graph's defect marks in place (the graph owns
    that array). Injectors return the artifact unchanged when the fault
    cannot be expressed (e.g. dropping a net from an empty routing). *)

val drop_net : Nanomap_route.Router.result -> Nanomap_route.Router.result
(** Remove one routed net. Caught by [Check.route] at [Full] level
    (["net-missing"]). *)

val overfill_cluster :
  Nanomap_core.Mapper.plan -> Nanomap_cluster.Cluster.t ->
  Nanomap_cluster.Cluster.t
(** Reassign one LUT's LE slot onto an LE already hosting another LUT of the
    same folding cycle. Caught by [Cluster.validate] / [Check.cluster]
    (["le-double-booked"]). *)

val double_book_slot : Nanomap_place.Place.t -> Nanomap_place.Place.t
(** Move SMB 1 onto SMB 0's grid site. Caught by [Place.validate] /
    [Check.place] (["site-conflict"]). *)

val mark_used_le_defective :
  Nanomap_cluster.Cluster.t -> Nanomap_place.Place.t -> Nanomap_arch.Defect.t
(** A defect map declaring one LE that the placed design actually uses
    defective. Caught by [Check.place] (["defective-le"]). *)

val mark_used_track_defective : Nanomap_route.Router.result -> int
(** Mark one wire node used by a routed net defective {e in the graph}
    (mutates [graph.defective]); returns the node id, or [-1] if no net
    uses a wire. Caught by [Router.validate] / [Check.route]
    (["defective-track"]). *)

val corrupt_bitstream :
  Nanomap_bitstream.Bitstream.t -> Nanomap_bitstream.Bitstream.t
(** Smash a section-length word in the encoded bytes. Caught by
    [Check.bitstream] at [Full] level (["corrupt"]) and by the oracle's
    decode-and-replay level. *)

(** {2 Functional faults}

    The injectors above violate {e structural} invariants; the ones below
    produce structurally legal artifacts that compute the {e wrong
    function}, which only the differential oracle
    ([Nanomap_verify.Oracle]) can catch — each at a specific level pair
    of the verification chain. *)

val flip_network_lut :
  Nanomap_core.Mapper.prepared -> Nanomap_core.Mapper.plan ->
  Nanomap_core.Mapper.prepared * Nanomap_core.Mapper.plan
(** Invert the function of one output-driving LUT, consistently in the
    prepared networks and the plan (ids, partitions and schedules stay
    valid). Caught by the oracle as an (rtl-sim, lut-network) mismatch,
    and by [Check.techmap]'s simulation spot-check. Unchanged if the
    design maps to zero LUTs. *)

val misroute_ff_slot :
  Nanomap_core.Mapper.plan -> Nanomap_cluster.Cluster.t ->
  Nanomap_cluster.Cluster.t
(** Redirect one intermediate (LUT-output) flip-flop value onto the home
    slot of a state value that a later folding cycle of the same plane
    still reads — a lifetime violation. Caught by the emulator's
    owner check ([Diag.Fail], stage ["emulate"], code
    ["slot-overwritten"]) within the first macro cycle. Unchanged if the
    schedule has no such overlapping pair (e.g. no folding). *)

val invert_bitstream_luts :
  Nanomap_bitstream.Bitstream.t -> Nanomap_bitstream.Bitstream.t
(** Invert every LE truth table in the encoded bytes (via
    parse/re-encode, so the bitmap stays well-formed). Caught by the
    oracle as an (emulator, bitstream-replay) mismatch. Unchanged if no
    configuration contains an LE. *)

(** {2 Service-level chaos}

    Deterministic injectors for the compile-service chaos harness. The
    structural injectors above prove the {e checkers} catch corrupt
    artifacts; these prove the {e service} survives misbehaving compiles,
    storage and clients — each fault must surface as exactly one typed
    [serve/*] rejection while the daemon keeps serving. *)

module Chaos : sig
  val arm_crash : design:string -> stage:string -> unit
  (** Until {!disarm}: any compile of [design] raises at the boundary of
      [stage] — an exception escaping mid-flow, adopted by the stage's
      diagnostic protection ([Failure] → stage diag). *)

  val arm_stall : design:string -> stage:string -> ms:int -> unit
  (** Until {!disarm}: any compile of [design] sleeps [ms] at the
      boundary of [stage] — how a test drives a job into its deadline
      ([serve/timeout]) without a genuinely slow design. *)

  val disarm : unit -> unit
  (** Remove the stage hook. Always call in test teardown. *)

  val entry_path : dir:string -> key:string -> string
  (** The cache's on-disk entry location, restated (the flow library
      cannot see the serve library's [Cache]); a test pins it against
      [Cache.entry_path]. *)

  val corrupt_disk_entry : dir:string -> key:string -> bool
  (** Truncate the stored entry to half its bytes — a torn write. [false]
      if no entry exists. Must be caught by the cache's read-side digest
      check (counted, deleted, served as a miss). *)

  val orphan_tmp : dir:string -> key:string -> string
  (** Plant an orphaned temp file next to [key]'s entry, as an
      interrupted writer would; returns its path. Must be removed by the
      startup scrub. *)

  val garbage_frames : seed:int -> count:int -> string list
  (** Deterministic malformed request lines (not-JSON, wrong shape, wrong
      member types, binary noise — never a newline). Each must be
      answered [serve/bad-json] or [serve/bad-request] without
      disturbing neighboring frames. *)
end
