module Arch = Nanomap_arch.Arch
module Mapper = Nanomap_core.Mapper
module Fold = Nanomap_core.Fold
module Sched = Nanomap_core.Sched
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Router = Nanomap_route.Router
module Bitstream = Nanomap_bitstream.Bitstream
module Telemetry = Nanomap_util.Telemetry

let log = Logs.Src.create "nanomap.flow" ~doc:"NanoMap end-to-end flow"

module Log = (val Logs.src_log log)

type objective =
  | Delay_min of int option
  | Area_min of float option
  | At_min
  | Both of int * float
  | Fixed_level of int
  | No_folding
  | Pipelined_delay_min of int

type options = {
  objective : objective;
  physical : bool;
  seed : int;
  routability_threshold : float;
  max_place_retries : int;
  route_alg : Router.algorithm;
}

let default_options =
  { objective = At_min;
    physical = true;
    seed = 1;
    routability_threshold = 8.0;
    max_place_retries = 2;
    route_alg = Router.Incremental }

type report = {
  design_name : string;
  prepared : Mapper.prepared;
  plan : Mapper.plan;
  cluster : Cluster.t;
  area_les : int;
  area_smbs : int;
  area_um2 : float;
  delay_model_ns : float;
  placement : Place.t option;
  routing : Router.result option;
  channel_factor : int;
  delay_routed_ns : float option;
  bitstream : Bitstream.t option;
  mapping_retries : int;
  telemetry : Telemetry.run;
}

exception Flow_failed of string

let initial_plan options prepared ~arch =
  match options.objective with
  | Delay_min area -> Mapper.delay_min ?area prepared ~arch
  | Area_min delay_ns -> Mapper.area_min ?delay_ns prepared ~arch
  | At_min -> Mapper.at_min prepared ~arch
  | Both (area, delay_ns) -> Mapper.both_constraints ~area ~delay_ns prepared ~arch
  | Fixed_level level -> Mapper.plan_level prepared ~arch ~level
  | No_folding -> Mapper.no_folding prepared ~arch
  | Pipelined_delay_min area -> Mapper.delay_min_pipelined ~area prepared ~arch

let area_budget options =
  match options.objective with
  | Delay_min (Some area) -> Some area
  | Both (area, _) -> Some area
  | Pipelined_delay_min area -> Some area
  | Delay_min None | Area_min _ | At_min | Fixed_level _ | No_folding -> None

(* The Fig. 2 area loop: clustering is the ground truth for LE usage; if it
   exceeds the budget, fold one level deeper and redo mapping. Every
   iteration is a fresh cluster/rebalance stage pair in the telemetry run,
   and each re-fold lands in the event journal. *)
let rec map_and_cluster ?(retries = 0) tele options prepared ~arch plan =
  let cluster = Telemetry.span tele "cluster" (fun () -> Cluster.pack plan ~arch) in
  let moved =
    Telemetry.span tele "rebalance" (fun () ->
        Nanomap_cluster.Smb_local.rebalance cluster plan)
  in
  Log.debug (fun m -> m "intra-SMB rebalance moved %d LUTs" moved);
  Cluster.validate cluster plan;
  match area_budget options with
  | Some budget when cluster.Cluster.les_used > budget ->
    let min_level =
      Fold.min_level ~depth_max:prepared.Mapper.depth_max
        ~num_planes:prepared.Mapper.num_planes ~num_reconf:arch.Arch.num_reconf
    in
    let next_level = plan.Mapper.level - 1 in
    if next_level < min_level then
      raise
        (Flow_failed
           (Printf.sprintf
              "clustering needs %d LEs > budget %d and no deeper folding level \
               remains"
              cluster.Cluster.les_used budget))
    else begin
      Log.info (fun m ->
          m "area loop: clustered %d LEs > %d, retrying at level %d"
            cluster.Cluster.les_used budget next_level);
      Telemetry.event tele "area_loop.refold"
        ~data:
          [ ("clustered_les", string_of_int cluster.Cluster.les_used);
            ("budget", string_of_int budget);
            ("next_level", string_of_int next_level) ];
      let pipelined =
        match options.objective with
        | Pipelined_delay_min _ -> true
        | Delay_min _ | Area_min _ | At_min | Both _ | Fixed_level _ | No_folding ->
          false
      in
      let plan =
        Telemetry.span tele "plan" (fun () ->
            Mapper.plan_level ~pipelined prepared ~arch ~level:next_level)
      in
      map_and_cluster ~retries:(retries + 1) tele options prepared ~arch plan
    end
  | Some _ | None -> (plan, cluster, retries)

let run ?(options = default_options) ?(arch = Arch.default) design =
  let tele = Telemetry.start ("flow:" ^ Nanomap_rtl.Rtl.name design) in
  let prepared =
    Telemetry.span tele "prepare" (fun () ->
        Nanomap_rtl.Rtl.validate design;
        Mapper.prepare ~k:arch.Arch.lut_inputs design)
  in
  let plan0 =
    Telemetry.span tele "plan" (fun () -> initial_plan options prepared ~arch)
  in
  let plan, cluster, mapping_retries =
    map_and_cluster tele options prepared ~arch plan0
  in
  Telemetry.set_gauge tele "cluster.les_used"
    (float_of_int cluster.Cluster.les_used);
  let delay_model_ns = plan.Mapper.delay_ns in
  if not options.physical then begin
    Telemetry.finish tele;
    { design_name = Nanomap_rtl.Rtl.name design;
      prepared;
      plan;
      cluster;
      area_les = cluster.Cluster.les_used;
      area_smbs = cluster.Cluster.num_smbs;
      area_um2 = float_of_int cluster.Cluster.num_smbs *. arch.Arch.smb_area;
      delay_model_ns;
      placement = None;
      routing = None;
      channel_factor = 1;
      delay_routed_ns = None;
      bitstream = None;
      mapping_retries;
      telemetry = tele }
  end
  else begin
    (* fast placement, screened by routability (Fig. 2 steps 9-13); the
       winning fast placement is returned, not re-derived, and seeds the
       detailed pass *)
    let rec attempt_placement try_no =
      let fast =
        Telemetry.span tele "place_fast" (fun () ->
            Place.place ~seed:(options.seed + try_no) ~effort:`Fast cluster)
      in
      let estimate = Place.routability fast cluster in
      if estimate <= options.routability_threshold
         || try_no >= options.max_place_retries
      then begin
        Log.info (fun m ->
            m "fast placement %d: routability %.2f%s" try_no estimate
              (if estimate > options.routability_threshold then " (accepted anyway)"
               else ""));
        Telemetry.set_gauge tele "place.routability" estimate;
        (try_no, fast)
      end
      else begin
        Telemetry.event tele "place.retry"
          ~data:
            [ ("try", string_of_int try_no);
              ("routability", Printf.sprintf "%.2f" estimate) ];
        attempt_placement (try_no + 1)
      end
    in
    let chosen_try, fast = attempt_placement 0 in
    let placement =
      Telemetry.span tele "place_detailed" (fun () ->
          Place.place ~seed:(options.seed + chosen_try) ~effort:`Detailed
            ~init:fast cluster)
    in
    Place.validate placement cluster;
    Telemetry.set_gauge tele "place.hpwl" placement.Place.hpwl;
    let routing, channel_factor =
      Telemetry.span tele "route" (fun () ->
          Router.route_adaptive ~alg:options.route_alg placement cluster plan)
    in
    if routing.Router.success then Router.validate routing;
    Telemetry.set_gauge tele "route.wirelength"
      (float_of_int routing.Router.wirelength);
    Telemetry.set_gauge tele "route.channel_factor" (float_of_int channel_factor);
    let folding_period = routing.Router.folding_period_ns in
    let delay_routed_ns =
      Some
        (float_of_int (prepared.Mapper.num_planes * plan.Mapper.stages)
        *. folding_period)
    in
    let bitstream =
      Telemetry.span tele "bitstream" (fun () ->
          Bitstream.generate plan cluster routing)
    in
    Telemetry.finish tele;
    { design_name = Nanomap_rtl.Rtl.name design;
      prepared;
      plan;
      cluster;
      area_les = cluster.Cluster.les_used;
      area_smbs = cluster.Cluster.num_smbs;
      area_um2 = float_of_int cluster.Cluster.num_smbs *. arch.Arch.smb_area;
      delay_model_ns;
      placement = Some placement;
      routing = Some routing;
      channel_factor;
      delay_routed_ns;
      bitstream = Some bitstream;
      mapping_retries;
      telemetry = tele }
  end

let circuit_delay_routed report = report.delay_routed_ns

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>design %s:@ level %d, %d stage(s), %d plane(s)@ LEs %d (plan %d), SMBs \
     %d (%.0f um^2)@ delay (model) %.2f ns%a@ configurations %d@]"
    r.design_name r.plan.Mapper.level r.plan.Mapper.stages
    r.prepared.Mapper.num_planes r.area_les r.plan.Mapper.les r.area_smbs
    r.area_um2 r.delay_model_ns
    (fun fmt -> function
      | Some d -> Format.fprintf fmt "@ delay (routed) %.2f ns" d
      | None -> ())
    r.delay_routed_ns r.plan.Mapper.configs_used
