module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Mapper = Nanomap_core.Mapper
module Fold = Nanomap_core.Fold
module Sched = Nanomap_core.Sched
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Sat_place = Nanomap_place.Sat_place
module Router = Nanomap_route.Router
module Rr_graph = Nanomap_route.Rr_graph
module Bitstream = Nanomap_bitstream.Bitstream
module Telemetry = Nanomap_util.Telemetry
module Diag = Nanomap_util.Diag
module Cancel = Nanomap_util.Cancel

let log = Logs.Src.create "nanomap.flow" ~doc:"NanoMap end-to-end flow"

module Log = (val Logs.src_log log)

let c_degradations = Telemetry.counter "flow.degradations"

(* Test-only chaos hook: invoked at every stage boundary, after the
   cancellation check and before the stage body. The service chaos
   harness uses it to make a specific design crash or stall mid-compile
   deterministically; anything it raises is adopted by the stage's
   diagnostic protection like a real stage failure. Atomic because pool
   workers read it while a test (an)arms it. *)
let stage_hook :
    (stage:string -> design:string -> unit) option Atomic.t =
  Atomic.make None

let set_stage_hook h = Atomic.set stage_hook h

type objective =
  | Delay_min of int option
  | Area_min of float option
  | At_min
  | Both of int * float
  | Fixed_level of int
  | No_folding
  | Pipelined_delay_min of int

type options = {
  objective : objective;
  physical : bool;
  seed : int;
  routability_threshold : float;
  max_place_retries : int;
  route_alg : Router.algorithm;
  check_level : Check.level;
  defects : Defect.t;
  route_caps : Rr_graph.caps option;  (* None: derive from the arch knobs *)
  mapper : Mapper.mapper;
  aig_effort : int;
  jobs : int;
  portfolio : int;
  placer : Sat_place.strategy;
}

let default_options =
  { objective = At_min;
    physical = true;
    seed = 1;
    routability_threshold = 8.0;
    max_place_retries = 2;
    route_alg = Router.Incremental;
    check_level = Check.Fast;
    defects = Defect.none;
    route_caps = None;
    mapper = Mapper.Truth_table;
    aig_effort = 2;
    jobs = 1;
    portfolio = 1;
    placer = Sat_place.Sa }

type report = {
  design_name : string;
  prepared : Mapper.prepared;
  plan : Mapper.plan;
  cluster : Cluster.t;
  area_les : int;
  area_smbs : int;
  area_um2 : float;
  delay_model_ns : float;
  placement : Place.t option;
  routing : Router.result option;
  channel_factor : int;
  delay_routed_ns : float option;
  bitstream : Bitstream.t option;
  mapping_retries : int;
  degradations : string list;
  telemetry : Telemetry.run;
}

exception Flow_failed of string

let initial_plan ?pool options prepared ~arch =
  match options.objective with
  | Delay_min area -> Mapper.delay_min ?area prepared ~arch
  | Area_min delay_ns -> Mapper.area_min ?delay_ns ?pool prepared ~arch
  | At_min -> Mapper.at_min ?pool prepared ~arch
  | Both (area, delay_ns) -> Mapper.both_constraints ?pool ~area ~delay_ns prepared ~arch
  | Fixed_level level -> Mapper.plan_level prepared ~arch ~level
  | No_folding -> Mapper.no_folding prepared ~arch
  | Pipelined_delay_min area -> Mapper.delay_min_pipelined ~area prepared ~arch

let area_budget options =
  match options.objective with
  | Delay_min (Some area) -> Some area
  | Both (area, _) -> Some area
  | Pipelined_delay_min area -> Some area
  | Delay_min None | Area_min _ | At_min | Fixed_level _ | No_folding -> None

let is_pipelined options =
  match options.objective with
  | Pipelined_delay_min _ -> true
  | Delay_min _ | Area_min _ | At_min | Both _ | Fixed_level _ | No_folding ->
    false

(* The Fig. 2 area loop: clustering is the ground truth for LE usage; if it
   exceeds the budget, fold one level deeper and redo mapping. Every
   iteration is a fresh cluster/rebalance stage pair in the telemetry run,
   and each re-fold lands in the event journal. *)
let rec map_and_cluster ?(retries = 0) tele options prepared ~arch plan =
  let cluster = Telemetry.span tele "cluster" (fun () -> Cluster.pack plan ~arch) in
  let moved =
    Telemetry.span tele "rebalance" (fun () ->
        Nanomap_cluster.Smb_local.rebalance cluster plan)
  in
  Log.debug (fun m -> m "intra-SMB rebalance moved %d LUTs" moved);
  Cluster.validate cluster plan;
  match area_budget options with
  | Some budget when cluster.Cluster.les_used > budget ->
    let min_level =
      Fold.min_level ~depth_max:prepared.Mapper.depth_max
        ~num_planes:prepared.Mapper.num_planes ~num_reconf:arch.Arch.num_reconf
    in
    let next_level = plan.Mapper.level - 1 in
    if next_level < min_level then
      Diag.fail ~stage:"cluster" ~code:"area-budget"
        ~context:
          [ ("clustered_les", string_of_int cluster.Cluster.les_used);
            ("budget", string_of_int budget);
            ("level", string_of_int plan.Mapper.level);
            ("min_level", string_of_int min_level) ]
        "clustering exceeds the LE budget and no deeper folding level remains"
    else begin
      Log.info (fun m ->
          m "area loop: clustered %d LEs > %d, retrying at level %d"
            cluster.Cluster.les_used budget next_level);
      Telemetry.event tele "area_loop.refold"
        ~data:
          [ ("clustered_les", string_of_int cluster.Cluster.les_used);
            ("budget", string_of_int budget);
            ("next_level", string_of_int next_level) ];
      let pipelined = is_pipelined options in
      let plan =
        Telemetry.span tele "plan" (fun () ->
            Mapper.plan_level ~pipelined prepared ~arch ~level:next_level)
      in
      map_and_cluster ~retries:(retries + 1) tele options prepared ~arch plan
    end
  | Some _ | None -> (plan, cluster, retries)

let ( let* ) = Result.bind

let run_result ?cancel ?(options = default_options) ?(arch = Arch.default)
    design =
  let design_name = Nanomap_rtl.Rtl.name design in
  let tele = Telemetry.start ("flow:" ^ design_name) in
  (* Every diagnostic — fatal or recovered-from — lands in the event
     journal, so [--trace] shows the full failure/recovery path. *)
  let journal d =
    Telemetry.event tele "diag" ~data:(Diag.event_data d);
    d
  in
  let protect stage f =
    match
      (* Stage boundary: the cancellation token (deadline or manual) is
         honored before any new stage work starts, so a deadlined job
         costs at most the stage it is currently inside. The chaos hook
         runs under the same exception adoption as the stage body. *)
      (match cancel with Some c -> Cancel.check c | None -> ());
      (match Atomic.get stage_hook with
      | Some h -> h ~stage ~design:design_name
      | None -> ());
      f ()
    with
    | v -> Ok v
    | exception Diag.Fail d -> Error (journal d)
    | exception Mapper.No_feasible_mapping msg ->
      Error (journal (Diag.make ~stage ~code:"no-feasible-mapping" msg))
    | exception Sched.Infeasible msg ->
      Error (journal (Diag.make ~stage ~code:"infeasible-schedule" msg))
    | exception Flow_failed msg ->
      Error (journal (Diag.make ~stage ~code:"flow-failed" msg))
    | exception Failure msg ->
      Error (journal (Diag.make ~stage ~code:"uncaught-failure" msg))
    | exception Invalid_argument msg ->
      Error (journal (Diag.make ~stage ~code:"invalid-argument" msg))
    | exception Stack_overflow -> raise Stack_overflow
    | exception Out_of_memory -> raise Out_of_memory
    | exception exn ->
      Error (journal (Diag.make ~stage ~code:"exception" (Printexc.to_string exn)))
  in
  let checked result =
    match result with Ok () -> Ok () | Error d -> Error (journal d)
  in
  let level = options.check_level in
  let finish_with result =
    Telemetry.finish tele;
    result
  in
  let body pool =
    let* prepared =
      protect "prepare" (fun () ->
          Telemetry.span tele "prepare" (fun () ->
              Nanomap_rtl.Rtl.validate design;
              Mapper.prepare ~k:arch.Arch.lut_inputs ~mapper:options.mapper
                ~aig_effort:options.aig_effort design))
    in
    let* () = checked (Check.techmap level prepared) in
    let* plan0 =
      protect "plan" (fun () ->
          Telemetry.span tele "plan" (fun () ->
              initial_plan ?pool options prepared ~arch))
    in
    let* plan, cluster, mapping_retries =
      protect "cluster" (fun () ->
          map_and_cluster tele options prepared ~arch plan0)
    in
    let* () = checked (Check.fds level ~arch plan) in
    let* () = checked (Check.cluster level plan cluster) in
    Telemetry.set_gauge tele "cluster.les_used"
      (float_of_int cluster.Cluster.les_used);
    let report ~plan ~cluster ~mapping_retries ~degradations physical_part =
      let placement, routing, channel_factor, delay_routed_ns, bitstream =
        match physical_part with
        | None -> (None, None, 1, None, None)
        | Some (placement, routing, channel_factor, bitstream) ->
          let delay_routed_ns =
            float_of_int
              (prepared.Mapper.num_planes * plan.Mapper.stages)
            *. routing.Router.folding_period_ns
          in
          ( Some placement,
            Some routing,
            channel_factor,
            Some delay_routed_ns,
            Some bitstream )
      in
      { design_name = Nanomap_rtl.Rtl.name design;
        prepared;
        plan;
        cluster;
        area_les = cluster.Cluster.les_used;
        area_smbs = cluster.Cluster.num_smbs;
        area_um2 = float_of_int cluster.Cluster.num_smbs *. arch.Arch.smb_area;
        delay_model_ns = plan.Mapper.delay_ns;
        placement;
        routing;
        channel_factor;
        delay_routed_ns;
        bitstream;
        mapping_retries;
        degradations;
        telemetry = tele }
    in
    if not options.physical then
      Ok (report ~plan ~cluster ~mapping_retries ~degradations:[] None)
    else begin
      (* One end-to-end physical attempt: fast placement screened by
         routability (Fig. 2 steps 9-13) seeding the detailed pass, adaptive
         routing, bitstream — each stage validated per [check_level]. *)
      let physical_attempt ~seed ~caps plan cluster =
        let* chosen_try, fast =
          protect "place" (fun () ->
              let rec attempt_placement try_no =
                let fast =
                  Telemetry.span tele "place_fast" (fun () ->
                      Place.place ~seed:(seed + try_no) ~effort:`Fast
                        ~defects:options.defects cluster)
                in
                let estimate = Place.routability fast cluster in
                if
                  estimate <= options.routability_threshold
                  || try_no >= options.max_place_retries
                then begin
                  Log.info (fun m ->
                      m "fast placement %d: routability %.2f%s" try_no estimate
                        (if estimate > options.routability_threshold then
                           " (accepted anyway)"
                         else ""));
                  Telemetry.set_gauge tele "place.routability" estimate;
                  (try_no, fast)
                end
                else begin
                  Telemetry.event tele "place.retry"
                    ~data:
                      [ ("try", string_of_int try_no);
                        ("routability", Printf.sprintf "%.2f" estimate) ];
                  attempt_placement (try_no + 1)
                end
              in
              match attempt_placement 0 with
              | try_no, fast -> (try_no, Some fast)
              | exception Diag.Fail d
                when options.placer <> Sat_place.Sa
                     && d.Diag.code = "defect-unplaceable" ->
                (* The greedy fast pass can't seed anything, but the
                   exact engine may still find (or refute) an
                   assignment — let it run from scratch. *)
                Telemetry.event tele "place.fast_unplaceable"
                  ~data:Diag.(event_data d);
                (0, None))
        in
        let* placement =
          protect "place" (fun () ->
              let placement =
                Telemetry.span tele "place_detailed" (fun () ->
                    match options.placer with
                    | Sat_place.Sa ->
                      Place.portfolio ?pool ~count:options.portfolio
                        ~seed:(seed + chosen_try) ~effort:`Detailed ?init:fast
                        ~defects:options.defects cluster
                    | Sat_place.Sat -> (
                      match
                        Sat_place.solve ~seed:(seed + chosen_try)
                          ~defects:options.defects cluster
                      with
                      | Sat_place.Placed p -> p
                      | Sat_place.Unsat_proven ->
                        Diag.fail ~stage:"place" ~code:"unplaceable-proven"
                          "SAT certifies that no legal placement exists"
                      | Sat_place.Gave_up ->
                        Diag.fail ~stage:"place" ~code:"sat-gave-up"
                          "SAT conflict budget exhausted without a verdict")
                    | Sat_place.Race ->
                      let p, winner =
                        Sat_place.race ?pool ~count:options.portfolio
                          ~seed:(seed + chosen_try) ~effort:`Detailed ?init:fast
                          ~defects:options.defects cluster
                      in
                      Telemetry.event tele "place.race_winner"
                        ~data:
                          [ ( "winner",
                              match winner with `Sa -> "sa" | `Sat -> "sat" ) ];
                      p)
              in
              Place.validate placement cluster;
              placement)
        in
        let* () =
          checked (Check.place level ~defects:options.defects cluster placement)
        in
        Telemetry.set_gauge tele "place.hpwl" placement.Place.hpwl;
        let* routing, channel_factor =
          protect "route" (fun () ->
              Telemetry.span tele "route" (fun () ->
                  Router.route_adaptive ~caps ~defects:options.defects
                    ~alg:options.route_alg placement cluster plan))
        in
        let* () =
          if routing.Router.success then
            protect "route" (fun () -> Router.validate routing)
          else
            Error
              (journal
                 (Diag.make ~stage:"route" ~code:"congested"
                    ~context:
                      [ ("overused", string_of_int routing.Router.overused);
                        ("channel_factor", string_of_int channel_factor) ]
                    "adaptive routing still overuses wires at the widest fabric"))
        in
        let* () = checked (Check.route level cluster routing) in
        Telemetry.set_gauge tele "route.wirelength"
          (float_of_int routing.Router.wirelength);
        Telemetry.set_gauge tele "route.channel_factor"
          (float_of_int channel_factor);
        let* bitstream =
          protect "bitstream" (fun () ->
              Telemetry.span tele "bitstream" (fun () ->
                  Bitstream.generate plan cluster routing))
        in
        let* () = checked (Check.bitstream level ~arch bitstream) in
        Ok (placement, routing, channel_factor, bitstream)
      in
      (* Bounded graceful degradation: a failed physical attempt retries
         with a fresh seed, then a widened fabric, then progressively lower
         folding levels; each step is journaled and counted so the recovery
         path is visible in --trace. The last diagnostic carries the trail. *)
      let degrade_step step detail d =
        Telemetry.incr c_degradations;
        Telemetry.event tele "flow.degradation"
          ~data:
            [ ("step", step);
              ("detail", detail);
              ("after", Diag.to_string d) ]
      in
      let rec with_degradation ~trail ~step plan cluster mapping_retries ~seed
          ~caps =
        match physical_attempt ~seed ~caps plan cluster with
        | Ok phys ->
          Ok
            (report ~plan ~cluster ~mapping_retries
               ~degradations:(List.rev trail) (Some phys))
        | Error d ->
          let give_up () =
            Error
              (Diag.add_context d
                 (match trail with
                 | [] -> []
                 | t -> [ ("degradations", String.concat "," (List.rev t)) ]))
          in
          (* A deadline expiry must not enter the degradation ladder:
             reseeding or widening a job that is already past its budget
             only burns more of the worker the cancellation exists to
             free. *)
          if d.Diag.stage = "serve" && d.Diag.code = "timeout" then give_up ()
          else
          (match step with
          | 0 ->
            let seed' = seed + 17 in
            degrade_step "reseed" (string_of_int seed') d;
            with_degradation ~trail:("reseed" :: trail) ~step:1 plan cluster
              mapping_retries ~seed:seed' ~caps
          | 1 ->
            let caps' = Rr_graph.scale_caps caps 2 in
            degrade_step "widen" "2x" d;
            with_degradation ~trail:("widen" :: trail) ~step:2 plan cluster
              mapping_retries ~seed ~caps:caps'
          | _ ->
            let min_level =
              Fold.min_level ~depth_max:prepared.Mapper.depth_max
                ~num_planes:prepared.Mapper.num_planes
                ~num_reconf:arch.Arch.num_reconf
            in
            let next_level = plan.Mapper.level - 1 in
            if next_level < min_level then give_up ()
            else begin
              degrade_step "refold" (string_of_int next_level) d;
              match
                protect "plan" (fun () ->
                    let plan' =
                      Telemetry.span tele "plan" (fun () ->
                          Mapper.plan_level ~pipelined:(is_pipelined options)
                            prepared ~arch ~level:next_level)
                    in
                    map_and_cluster tele options prepared ~arch plan')
              with
              | Ok (plan', cluster', retries') ->
                with_degradation ~trail:("refold" :: trail) ~step:2 plan'
                  cluster'
                  (mapping_retries + retries' + 1)
                  ~seed ~caps
              | Error _ -> give_up ()
            end)
      in
      with_degradation ~trail:[] ~step:0 plan cluster mapping_retries
        ~seed:options.seed
        ~caps:
          (match options.route_caps with
          | Some c -> c
          | None -> Rr_graph.caps_of_arch arch)
    end
  in
  (* [jobs] buys wall-clock only: the folding-level sweep and the
     placement portfolio merge deterministically, so the report is
     byte-identical for every worker count. jobs = 1 spawns nothing. *)
  let result =
    if options.jobs > 1 then
      Nanomap_util.Pool.with_pool ~jobs:options.jobs (fun p -> body (Some p))
    else body None
  in
  finish_with result

let run ?options ?arch design =
  match run_result ?options ?arch design with
  | Ok report -> report
  | Error d -> raise (Flow_failed (Diag.to_string d))

let validate_report ?(level = Check.Full) ?(defects = Defect.none) r =
  let arch = r.cluster.Cluster.arch in
  let* () = Check.techmap level r.prepared in
  let* () = Check.fds level ~arch r.plan in
  let* () = Check.cluster level r.plan r.cluster in
  let* () =
    match r.placement with
    | None -> Ok ()
    | Some pl -> Check.place level ~defects r.cluster pl
  in
  let* () =
    match r.routing with
    | None -> Ok ()
    | Some rt -> Check.route level r.cluster rt
  in
  match r.bitstream with
  | None -> Ok ()
  | Some bs -> Check.bitstream level ~arch bs

let circuit_delay_routed report = report.delay_routed_ns

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>design %s:@ mapper %s@ level %d, %d stage(s), %d plane(s)@ LEs %d \
     (plan %d), SMBs %d (%.0f um^2)@ delay (model) %.2f ns%a@ configurations \
     %d%a@]"
    r.design_name
    (Mapper.string_of_mapper r.prepared.Mapper.mapper)
    r.plan.Mapper.level r.plan.Mapper.stages
    r.prepared.Mapper.num_planes r.area_les r.plan.Mapper.les r.area_smbs
    r.area_um2 r.delay_model_ns
    (fun fmt -> function
      | Some d -> Format.fprintf fmt "@ delay (routed) %.2f ns" d
      | None -> ())
    r.delay_routed_ns r.plan.Mapper.configs_used
    (fun fmt -> function
      | [] -> ()
      | steps ->
        Format.fprintf fmt "@ degraded via %s" (String.concat " -> " steps))
    r.degradations
