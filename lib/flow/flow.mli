(** The complete NanoMap flow of Fig. 2: logic mapping with iterative
    folding-level selection, temporal clustering with the post-clustering
    area check, two-phase temporal placement gated by routability and delay
    analysis, PathFinder routing, and configuration-bitmap generation.

    The loops of Fig. 2 are realized as:
    - {e area loop}: if clustering needs more LEs than the constraint
      allows, the folding level decreases by one and mapping repeats;
    - {e placement loop}: if the fast placement's routability estimate is
      poor, placement is retried with fresh seeds before the detailed pass
      (and the detailed router can still widen its channels).

    {2 Failure semantics}

    The flow has two entry points with one behavior:

    - {!run_result} never raises on flow problems — every stage failure
      becomes a typed {!Nanomap_util.Diag.t} carrying the stage, a stable
      code, and context, and is journaled in the telemetry event stream
      before being returned as [Error];
    - {!run} is a thin wrapper that raises {!Flow_failed} with the rendered
      diagnostic.

    Inter-stage invariant checkers ({!Check}) run between stages at
    {!options.check_level}. A failed {e physical} stage (placement,
    routing, bitstream) triggers bounded graceful degradation before the
    flow gives up: retry with a fresh placement seed, then widen the
    routing fabric 2x, then lower the folding level while one remains.
    Every degradation step is journaled (event ["flow.degradation"]) and
    counted (counter [flow.degradations]); steps taken appear in
    {!report.degradations} and, on failure, in the diagnostic's
    ["degradations"] context key. *)

type objective =
  | Delay_min of int option       (** minimize delay, optional LE budget *)
  | Area_min of float option      (** minimize LEs, optional delay budget (ns) *)
  | At_min                        (** minimize the area-delay product *)
  | Both of int * float           (** satisfy LE and delay budgets *)
  | Fixed_level of int            (** force one folding level (sweeps) *)
  | No_folding                    (** baseline *)
  | Pipelined_delay_min of int    (** Eq. 4: planes resident simultaneously,
                                      minimize delay within an LE budget *)

type options = {
  objective : objective;
  physical : bool;      (** run place & route & bitstream (else stop after
                            clustering) *)
  seed : int;
  routability_threshold : float;
  max_place_retries : int;
  route_alg : Nanomap_route.Router.algorithm;
                        (** router variant: [Full] (classic PathFinder) or
                            [Incremental] (A* lookahead + incremental
                            rip-up) *)
  check_level : Check.level;
                        (** inter-stage invariant checking: [Off], [Fast]
                            (default) or [Full] *)
  defects : Nanomap_arch.Defect.t;
                        (** known-bad fabric LEs and wire segments that
                            placement and routing must avoid *)
  route_caps : Nanomap_route.Rr_graph.caps option;
                        (** base per-channel track counts (the adaptive
                            router and the degradation policy scale them);
                            [None] (default) derives them from the
                            architecture's [chan_*] knobs *)
  mapper : Nanomap_core.Mapper.mapper;
                        (** technology mapper: the seed FlowMap truth-table
                            path or the AIG priority-cut mapper *)
  aig_effort : int;     (** 1..3, AIG cut budget / refinement rounds
                            (ignored by the truth-table mapper) *)
  jobs : int;           (** worker domains for the folding-level sweep and
                            the placement portfolio (1 = serial, spawns
                            nothing). Changes wall-clock only: the report
                            is byte-identical for every value *)
  portfolio : int;      (** independent detailed-placement seeds annealed
                            per attempt, best HPWL kept (1 = single
                            anneal). Part of the result, NOT tied to
                            [jobs], so output stays worker-count
                            independent *)
  placer : Nanomap_place.Sat_place.strategy;
                        (** detailed-placement engine: [Sa] (annealing
                            portfolio, default), [Sat] (exact CNF
                            assignment refined by annealing; proves
                            unplaceability), or [Race] (both, pure
                            winner rule — see {!Nanomap_place.Sat_place.race}).
                            With [Sat]/[Race], a fast-pass
                            ["defect-unplaceable"] is not fatal: the
                            exact engine still gets its shot. *)
}

val default_options : options
(** [At_min], physical, seed 1, threshold 8.0, 2 retries, incremental
    routing, [Fast] checks, no defects, default track caps,
    [mapper = Truth_table], [aig_effort = 2], [jobs = 1],
    [portfolio = 1], [placer = Sa]. *)

type report = {
  design_name : string;
  prepared : Nanomap_core.Mapper.prepared;
  plan : Nanomap_core.Mapper.plan;
  cluster : Nanomap_cluster.Cluster.t;
  area_les : int;                     (** post-clustering LE count *)
  area_smbs : int;
  area_um2 : float;                   (** SMB-granular silicon area (100 nm) *)
  delay_model_ns : float;             (** analytical circuit delay *)
  placement : Nanomap_place.Place.t option;
  routing : Nanomap_route.Router.result option;
  channel_factor : int;               (** track-count multiplier the router
                                          needed (1 = base fabric) *)
  delay_routed_ns : float option;     (** circuit delay with the routed
                                          folding-clock period *)
  bitstream : Nanomap_bitstream.Bitstream.t option;
  mapping_retries : int;              (** area-loop iterations taken *)
  degradations : string list;         (** graceful-degradation steps taken,
                                          in order ([] = clean run) *)
  telemetry : Nanomap_util.Telemetry.run;
                                      (** completed per-stage span tree,
                                          counter deltas, gauges, and the
                                          event journal for this run *)
}

exception Flow_failed of string

val run_result :
  ?cancel:Nanomap_util.Cancel.t ->
  ?options:options ->
  ?arch:Nanomap_arch.Arch.t ->
  Nanomap_rtl.Rtl.t ->
  (report, Nanomap_util.Diag.t) result
(** End-to-end flow on a validated RTL design; [arch] defaults to
    {!Nanomap_arch.Arch.default} (k = 16). Returns [Error] instead of
    raising on any flow failure — infeasible mapping, budget overrun,
    stage-validator rejection, checker violation, unroutable fabric — after
    exhausting the graceful-degradation policy. The diagnostic is also the
    last ["diag"] event of {!report.telemetry}'s journal.

    [cancel] is a cooperative cancellation token (the compile service's
    per-job deadline): it is checked at {e every stage boundary}, and an
    expired token aborts the run with the token's [serve/timeout]
    diagnostic — immediately, without entering the degradation ladder. A
    run already inside a stage finishes that stage first (cancellation is
    cooperative, never preemptive). *)

val run :
  ?options:options -> ?arch:Nanomap_arch.Arch.t -> Nanomap_rtl.Rtl.t -> report
(** [run_result] unwrapped: raises {!Flow_failed} with the rendered
    diagnostic on [Error]. *)

val validate_report :
  ?level:Check.level ->
  ?defects:Nanomap_arch.Defect.t ->
  report ->
  (unit, Nanomap_util.Diag.t) result
(** Re-run every applicable inter-stage checker on a finished report
    ([Full] by default) — the property tests' oracle that an [Ok] report is
    internally consistent. *)

val circuit_delay_routed : report -> float option
(** [num_planes * stages * routed folding period], when routed. *)

val set_stage_hook : (stage:string -> design:string -> unit) option -> unit
(** Test-only chaos instrumentation: install a hook invoked at every
    stage boundary of every {!run_result} (after the cancellation check,
    before the stage body). Whatever it raises is adopted by the stage's
    diagnostic protection exactly like a stage failure — which is how
    {!Fault.Chaos} makes a chosen design crash or stall mid-compile
    deterministically. Pass [None] to disarm. Not for production use. *)

val pp_report : Format.formatter -> report -> unit
