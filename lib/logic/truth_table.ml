type t = {
  arity : int;
  bits : int64;
}

let max_arity = 6

let mask arity =
  if arity = max_arity then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl arity)) 1L

let arity t = t.arity
let bits t = t.bits

let of_bits ~arity bits =
  if arity < 0 || arity > max_arity then invalid_arg "Truth_table.of_bits";
  { arity; bits = Int64.logand bits (mask arity) }

let const ~arity b = of_bits ~arity (if b then -1L else 0L)

(* Projection patterns: for variable i the table alternates runs of 2^i
   zeros and 2^i ones. *)
let var ~arity i =
  if i < 0 || i >= arity then invalid_arg "Truth_table.var";
  let run = 1 lsl i in
  let rec build acc pos =
    if pos >= 1 lsl arity then acc
    else
      let acc =
        if pos land run <> 0 then Int64.logor acc (Int64.shift_left 1L pos) else acc
      in
      build acc (pos + 1)
  in
  { arity; bits = build 0L 0 }

let check_pair a b =
  if a.arity <> b.arity then invalid_arg "Truth_table: arity mismatch"

let lognot a = { a with bits = Int64.logand (Int64.lognot a.bits) (mask a.arity) }
let logand a b = check_pair a b; { a with bits = Int64.logand a.bits b.bits }
let logor a b = check_pair a b; { a with bits = Int64.logor a.bits b.bits }
let logxor a b = check_pair a b; { a with bits = Int64.logxor a.bits b.bits }

let equal a b = a.arity = b.arity && Int64.equal a.bits b.bits

let index_of_inputs inputs =
  let idx = ref 0 in
  Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) inputs;
  !idx

let eval t inputs =
  if Array.length inputs <> t.arity then invalid_arg "Truth_table.eval";
  let idx = index_of_inputs inputs in
  Int64.logand (Int64.shift_right_logical t.bits idx) 1L = 1L

let of_fun ~arity f =
  if arity < 0 || arity > max_arity then invalid_arg "Truth_table.of_fun";
  let bits = ref 0L in
  for idx = 0 to (1 lsl arity) - 1 do
    let inputs = Array.init arity (fun i -> idx land (1 lsl i) <> 0) in
    if f inputs then bits := Int64.logor !bits (Int64.shift_left 1L idx)
  done;
  { arity; bits = !bits }

let depends_on t i =
  if i < 0 || i >= t.arity then false
  else begin
    let shift = 1 lsl i in
    (* Compare cofactors: f with x_i = 0 vs x_i = 1. *)
    let moved = Int64.shift_right_logical t.bits shift in
    let relevant = bits (var ~arity:t.arity i) in
    (* positions where x_i = 1 hold f(x_i=1); shifting brings them onto the
       matching x_i = 0 positions. *)
    let diff = Int64.logxor t.bits moved in
    Int64.logand diff (Int64.logand (Int64.lognot relevant) (mask t.arity)) <> 0L
  end

let cofactor t i b =
  if i < 0 || i >= t.arity then invalid_arg "Truth_table.cofactor";
  of_fun ~arity:t.arity (fun inputs ->
      let inputs = Array.copy inputs in
      inputs.(i) <- b;
      eval t inputs)

let permute t ~arity map =
  if arity < 0 || arity > max_arity then invalid_arg "Truth_table.permute";
  if Array.length map <> t.arity then invalid_arg "Truth_table.permute";
  Array.iter
    (fun j -> if j < 0 || j >= arity then invalid_arg "Truth_table.permute")
    map;
  of_fun ~arity (fun inputs -> eval t (Array.map (fun j -> inputs.(j)) map))

let support_size t =
  let n = ref 0 in
  for i = 0 to t.arity - 1 do
    if depends_on t i then incr n
  done;
  !n

let to_string t = Printf.sprintf "0x%Lx" t.bits
