(** Boolean functions of up to {!max_arity} variables as 64-bit truth tables.

    Bit [i] of the table is the function value on the input assignment whose
    bits are the binary digits of [i] (variable 0 is the least significant).
    This is the representation stored in each mapped LUT and written into the
    configuration bitstream. *)

type t

val max_arity : int
(** 6 — the largest function representable in one 64-bit word. NATURE's LEs
    use 4-input LUTs, so this leaves headroom. *)

val arity : t -> int
val bits : t -> int64
(** Raw table; bits above [2^arity - 1] are guaranteed zero. *)

val of_bits : arity:int -> int64 -> t
(** Masks away bits beyond [2^arity]. Raises [Invalid_argument] if
    [arity < 0 || arity > max_arity]. *)

val const : arity:int -> bool -> t
val var : arity:int -> int -> t
(** [var ~arity i] is the projection on variable [i < arity]. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
(** Binary operators require equal arities. *)

val equal : t -> t -> bool
val eval : t -> bool array -> bool
(** [eval f inputs] with [Array.length inputs = arity f]. *)

val of_fun : arity:int -> (bool array -> bool) -> t
(** Tabulate an OCaml predicate over all [2^arity] assignments. *)

val cofactor : t -> int -> bool -> t
(** [cofactor f i b] fixes variable [i] to [b]; the result keeps the same
    arity but no longer depends on variable [i]. *)

val permute : t -> arity:int -> int array -> t
(** [permute f ~arity map] re-expresses [f] over a (possibly wider) variable
    space: the result [g] has the given [arity] and satisfies
    [g(x) = f(x_{map.(0)}, ..., x_{map.(n-1)})]. Used by cut merging to lift
    a sub-cut's table onto the merged leaf ordering. *)

val depends_on : t -> int -> bool
(** True if the function value changes with variable [i] for some input. *)

val support_size : t -> int
(** Number of variables the function actually depends on. *)

val to_string : t -> string
(** Hex string of the table, e.g. 4-input AND is ["0x8000"]. *)
