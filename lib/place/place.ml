module Rng = Nanomap_util.Rng
module Diag = Nanomap_util.Diag
module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Cluster = Nanomap_cluster.Cluster
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Telemetry = Nanomap_util.Telemetry

let c_moves_tried = Telemetry.counter "place.moves_tried"
let c_moves_accepted = Telemetry.counter "place.moves_accepted"
let c_temp_steps = Telemetry.counter "place.temperature_steps"

type t = {
  width : int;
  height : int;
  smb_xy : (int * int) array;
  pad_xy : (int * int) array;
  hpwl : float;
  moves_tried : int;
  moves_accepted : int;
}

(* Pads sit on a perimeter ring just outside the SMB grid. *)
let perimeter_positions width height =
  let ring = ref [] in
  for x = 0 to width - 1 do
    ring := (x, -1) :: (x, height) :: !ring
  done;
  for y = 0 to height - 1 do
    ring := (-1, y) :: (width, y) :: !ring
  done;
  Array.of_list (List.sort compare !ring)

(* Pads are never moved: every placer (annealing or exact) pins pad [i]
   to the same evenly-spread ring position, so placements from different
   engines are directly comparable. *)
let default_pad_xy (cl : Cluster.t) ~width ~height =
  let perim = perimeter_positions width height in
  let n_pads = List.length cl.Cluster.pads in
  Array.init (max n_pads 1) (fun i ->
      perim.(i * Array.length perim / max n_pads 1 mod Array.length perim))

type flat_net = {
  smb_eps : int array;  (** distinct SMB endpoints *)
  pad_eps : int array;  (** distinct pad endpoints *)
  weight : float;
}

let flatten_nets ?(joint = true) (cl : Cluster.t) =
  List.filter_map
    (fun (n : Cluster.net) ->
      let weight =
        if joint then 1.0 else if n.Cluster.cycle = 1 then 1.0 else 0.0
      in
      if weight = 0.0 then None
      else begin
        let smbs = Hashtbl.create 4 and pads = Hashtbl.create 4 in
        let add = function
          | Cluster.At_smb s -> Hashtbl.replace smbs s ()
          | Cluster.At_pad p -> Hashtbl.replace pads p ()
        in
        add n.Cluster.driver;
        List.iter add n.Cluster.sinks;
        Some
          (* Sort the deduplicated endpoints: Hashtbl.fold visits buckets in
             an unspecified order, and endpoint order must not leak into
             anything downstream (determinism contract). *)
          { smb_eps =
              Hashtbl.fold (fun s () acc -> s :: acc) smbs []
              |> List.sort compare |> Array.of_list;
            pad_eps =
              Hashtbl.fold (fun p () acc -> p :: acc) pads []
              |> List.sort compare |> Array.of_list;
            weight }
      end)
    cl.Cluster.nets
  |> Array.of_list

let net_hpwl smb_xy pad_xy net =
  let minx = ref max_int and maxx = ref min_int in
  let miny = ref max_int and maxy = ref min_int in
  let visit (x, y) =
    if x < !minx then minx := x;
    if x > !maxx then maxx := x;
    if y < !miny then miny := y;
    if y > !maxy then maxy := y
  in
  Array.iter (fun s -> visit smb_xy.(s)) net.smb_eps;
  Array.iter (fun p -> visit pad_xy.(p)) net.pad_eps;
  if !minx > !maxx then 0.0
  else float_of_int ((!maxx - !minx) + (!maxy - !miny)) *. net.weight

let total_hpwl smb_xy pad_xy nets =
  Array.fold_left (fun acc n -> acc +. net_hpwl smb_xy pad_xy n) 0.0 nets

let grid_dims (cl : Cluster.t) =
  let n_smb = max cl.Cluster.num_smbs 1 in
  let width = int_of_float (ceil (sqrt (float_of_int n_smb))) in
  let height = (n_smb + width - 1) / width in
  (* a little slack so relocation moves exist even on a full grid *)
  let height = if width * height = n_smb then height + 1 else height in
  (width, height)

(* Which (mb, le) positions each SMB actually occupies, from the cluster's
   LUT and flip-flop slot assignments. An SMB only conflicts with a
   defective LE if it uses that LE. *)
let used_les (cl : Cluster.t) =
  let used = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (slot : Cluster.slot) ->
      Hashtbl.replace used (slot.Cluster.smb, slot.Cluster.mb, slot.Cluster.le) ())
    cl.Cluster.lut_slots;
  Hashtbl.iter
    (fun _ ((slot : Cluster.slot), _) ->
      Hashtbl.replace used (slot.Cluster.smb, slot.Cluster.mb, slot.Cluster.le) ())
    cl.Cluster.ff_slots;
  used

(* illegal.(s * nsites + site) = placing SMB s on site would put one of its
   occupied LEs on a defective fabric LE. *)
let illegal_sites (defects : Defect.t) (cl : Cluster.t) ~n_smb ~width ~height =
  if Defect.is_none defects then None
  else begin
    let nsites = width * height in
    let arr = Array.make (n_smb * nsites) false in
    let used = used_les cl in
    List.iter
      (fun (x, y, mb, le) ->
        if x >= 0 && x < width && y >= 0 && y < height then begin
          let site = (y * width) + x in
          for s = 0 to n_smb - 1 do
            if Hashtbl.mem used (s, mb, le) then arr.((s * nsites) + site) <- true
          done
        end)
      defects.Defect.les;
    Some arr
  end

let place ?(seed = 1) ?(effort = `Detailed) ?(joint = true) ?init
    ?(defects = Defect.none) (cl : Cluster.t) =
  let rng = Rng.create seed in
  let n_smb = max cl.Cluster.num_smbs 1 in
  let width, height = grid_dims cl in
  let pad_xy = default_pad_xy cl ~width ~height in
  let nets = flatten_nets ~joint cl in
  let nsites = width * height in
  let illegal = illegal_sites defects cl ~n_smb ~width ~height in
  let legal s site =
    match illegal with
    | None -> true
    | Some arr -> not arr.((s * nsites) + site)
  in
  (* site occupancy *)
  let site_of = Array.make nsites (-1) in
  let smb_xy = Array.make n_smb (0, 0) in
  (* seed from a previous placement of the same cluster (two-phase flow:
     the detailed pass refines the accepted fast placement instead of
     re-deriving the global structure from scratch). A valid [init]
     replaces the initial-assignment scan entirely, so a placement an
     exact engine found can be refined even when the greedy scan below
     would fail on a heavily defective fabric. *)
  let seeded =
    match init with
    | Some p
      when p.width = width && p.height = height && Array.length p.smb_xy = n_smb
           && Array.for_all
                (fun s ->
                  let x, y = p.smb_xy.(s) in
                  legal s ((y * width) + x))
                (Array.init n_smb Fun.id) ->
      Array.blit p.smb_xy 0 smb_xy 0 n_smb;
      Array.iteri (fun s (x, y) -> site_of.((y * width) + x) <- s) smb_xy;
      true
    | Some _ | None -> false
  in
  if not seeded then begin
    match illegal with
    | None ->
      for s = 0 to n_smb - 1 do
        let x = s mod width and y = s / width in
        smb_xy.(s) <- (x, y);
        site_of.((y * width) + x) <- s
      done
    | Some _ ->
      (* first free site the SMB's occupied LEs are all healthy on *)
      for s = 0 to n_smb - 1 do
        let rec find site =
          if site >= nsites then
            Diag.fail ~stage:"place" ~code:"defect-unplaceable"
              ~context:[ ("smb", string_of_int s) ]
              "no defect-free site remains for SMB"
          else if site_of.(site) = -1 && legal s site then site
          else find (site + 1)
        in
        let site = find 0 in
        smb_xy.(s) <- (site mod width, site / width);
        site_of.(site) <- s
      done
  end;
  (* incident nets per smb *)
  let incident = Array.make n_smb [] in
  Array.iteri
    (fun i net -> Array.iter (fun s -> incident.(s) <- i :: incident.(s)) net.smb_eps)
    nets;
  let cost = ref (total_hpwl smb_xy pad_xy nets) in
  let moves_tried = ref 0 and moves_accepted = ref 0 in
  let affected a b =
    match b with
    | None -> incident.(a)
    | Some b -> List.rev_append incident.(a) incident.(b)
  in
  (* Returns the cost delta it computed (0.0 for degenerate no-op moves),
     so callers can calibrate temperatures without replaying moves. *)
  let try_move ~temp ~rlim =
    incr moves_tried;
    Telemetry.incr c_moves_tried;
    let a = Rng.int rng n_smb in
    let ax, ay = smb_xy.(a) in
    let dx = Rng.int rng ((2 * rlim) + 1) - rlim in
    let dy = Rng.int rng ((2 * rlim) + 1) - rlim in
    let tx = max 0 (min (width - 1) (ax + dx)) in
    let ty = max 0 (min (height - 1) (ay + dy)) in
    if (tx, ty) = (ax, ay) then 0.0
    else begin
      let target_site = (ty * width) + tx in
      let occupant = site_of.(target_site) in
      let source_site = (ay * width) + ax in
      if
        (not (legal a target_site))
        || (occupant >= 0 && not (legal occupant source_site))
      then 0.0
      else begin
      let nets_touched =
        affected a (if occupant >= 0 then Some occupant else None)
      in
      let before =
        List.fold_left (fun acc i -> acc +. net_hpwl smb_xy pad_xy nets.(i)) 0.0
          nets_touched
      in
      (* apply *)
      smb_xy.(a) <- (tx, ty);
      if occupant >= 0 then smb_xy.(occupant) <- (ax, ay);
      let after =
        List.fold_left (fun acc i -> acc +. net_hpwl smb_xy pad_xy nets.(i)) 0.0
          nets_touched
      in
      let delta = after -. before in
      let accept =
        delta <= 0.0 || (temp > 0.0 && Rng.float rng 1.0 < exp (-.delta /. temp))
      in
      if accept then begin
        cost := !cost +. delta;
        incr moves_accepted;
        Telemetry.incr c_moves_accepted;
        site_of.(target_site) <- a;
        site_of.((ay * width) + ax) <- (match occupant with -1 -> -1 | b -> b)
      end
      else begin
        (* revert *)
        smb_xy.(a) <- (ax, ay);
        if occupant >= 0 then smb_xy.(occupant) <- (tx, ty)
      end;
      delta
      end
    end
  in
  if Array.length nets > 0 && n_smb > 1 then begin
    (* initial temperature: sample random moves *)
    let samples = 50 in
    let t0 =
      if seeded then begin
        (* refinement: probe at zero temperature (only improvements commit)
           and start just warm enough to escape local minima without
           scrambling the seed placement *)
        let sum_sq = ref 0.0 in
        for _ = 1 to samples do
          let d = try_move ~temp:0.0 ~rlim:(max width height) in
          sum_sq := !sum_sq +. (d *. d)
        done;
        sqrt (!sum_sq /. float_of_int samples) +. 0.1
      end
      else begin
        let base = !cost in
        let sum_sq = ref 0.0 in
        for _ = 1 to samples do
          ignore (try_move ~temp:infinity ~rlim:(max width height));
          let d = !cost -. base in
          sum_sq := !sum_sq +. (d *. d)
        done;
        (20.0 *. sqrt (!sum_sq /. float_of_int samples)) +. 1.0
      end
    in
    let factor = match effort with `Fast -> 1 | `Detailed -> 4 in
    let inner =
      factor * int_of_float (4.0 *. (float_of_int n_smb ** 1.3333)) |> max 32
    in
    let temp = ref t0 in
    let rlim = ref (max width height) in
    let stop_at = 0.005 *. (!cost +. 1.0) /. float_of_int (Array.length nets) in
    while !temp > stop_at do
      Telemetry.incr c_temp_steps;
      let before_accepted = !moves_accepted in
      for _ = 1 to inner do
        ignore (try_move ~temp:!temp ~rlim:!rlim)
      done;
      let alpha =
        float_of_int (!moves_accepted - before_accepted) /. float_of_int inner
      in
      (* VPR-style adaptive cooling *)
      let gamma =
        if alpha > 0.96 then 0.5
        else if alpha > 0.8 then 0.9
        else if alpha > 0.15 then 0.95
        else 0.8
      in
      temp := !temp *. gamma;
      rlim :=
        max 1
          (min (max width height)
             (int_of_float (float_of_int !rlim *. (1.0 -. 0.44 +. alpha))))
    done;
    (* greedy cleanup *)
    for _ = 1 to inner do
      ignore (try_move ~temp:0.0 ~rlim:1)
    done
  end;
  { width;
    height;
    smb_xy;
    pad_xy;
    hpwl = total_hpwl smb_xy pad_xy nets;
    moves_tried = !moves_tried;
    moves_accepted = !moves_accepted }

let hpwl t (cl : Cluster.t) =
  total_hpwl t.smb_xy t.pad_xy (flatten_nets ~joint:true cl)

(* RISA-flavoured estimate: each net spreads q(pins) * hpwl wire over its
   bounding box; channel supply is one track-bundle per grid edge. The
   utilization peaks where boxes stack, approximated by summing per-cell
   demand; cycles are independent configurations, so take the max. *)
let routability t (cl : Cluster.t) =
  let cells = Array.make (t.width * t.height) 0.0 in
  let cycles = Hashtbl.create 8 in
  List.iter
    (fun (n : Cluster.net) ->
      Hashtbl.replace cycles (n.Cluster.plane, n.Cluster.cycle) ())
    cl.Cluster.nets;
  let max_util = ref 0.0 in
  Hashtbl.iter
    (fun (plane, cycle) () ->
      Array.fill cells 0 (Array.length cells) 0.0;
      List.iter
        (fun (n : Cluster.net) ->
          if n.Cluster.plane = plane && n.Cluster.cycle = cycle then begin
            let xy = function
              | Cluster.At_smb s -> t.smb_xy.(s)
              | Cluster.At_pad p -> t.pad_xy.(p)
            in
            let eps = xy n.Cluster.driver :: List.map xy n.Cluster.sinks in
            let xs = List.map fst eps and ys = List.map snd eps in
            let minx = List.fold_left min max_int xs
            and maxx = List.fold_left max min_int xs in
            let miny = List.fold_left min max_int ys
            and maxy = List.fold_left max min_int ys in
            let pins = List.length eps in
            let q = 1.0 +. (0.1 *. float_of_int (max 0 (pins - 3))) in
            let w = max 1 (maxx - minx) and h = max 1 (maxy - miny) in
            let demand = q /. float_of_int (w * h) in
            for x = max 0 minx to min (t.width - 1) maxx do
              for y = max 0 miny to min (t.height - 1) maxy do
                cells.((y * t.width) + x) <- cells.((y * t.width) + x) +. demand
              done
            done
          end)
        cl.Cluster.nets;
      Array.iter (fun d -> if d > !max_util then max_util := d) cells)
    cycles;
  (* normalize by nominal per-cell capacity: half the length-1 tracks of
     one channel (each cell borders two channels per direction) *)
  !max_util /. (float_of_int cl.Cluster.arch.Arch.chan_len1 /. 2.0)

let wire_delay (arch : Arch.t) dist =
  if dist <= 0 then arch.Arch.t_local
  else if dist = 1 then arch.Arch.t_direct
  else if dist <= 4 then arch.Arch.t_len1 +. (0.02 *. float_of_int dist)
  else if dist <= 8 then arch.Arch.t_len4 +. (0.02 *. float_of_int dist)
  else arch.Arch.t_global

let timing_estimate t (cl : Cluster.t) (plan : Mapper.plan) =
  let arch = cl.Cluster.arch in
  let dist (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2) in
  let worst = ref 0.0 in
  Array.iter
    (fun (pl : Mapper.plane_plan) ->
      let plane = pl.Mapper.plane_index in
      let network = pl.Mapper.network in
      let part = pl.Mapper.partition in
      let arrival = Array.make (Lut_network.size network) 0.0 in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let u = part.Partition.unit_of_lut.(l) in
            let c = pl.Mapper.schedule.(u) in
            let my_xy = t.smb_xy.((Hashtbl.find cl.Cluster.lut_slots (plane, l)).Cluster.smb) in
            let input_arrival f =
              match Lut_network.node network f with
              | Lut_network.Lut _ ->
                let fu = part.Partition.unit_of_lut.(f) in
                if pl.Mapper.schedule.(fu) = c then begin
                  let fxy =
                    t.smb_xy.((Hashtbl.find cl.Cluster.lut_slots (plane, f)).Cluster.smb)
                  in
                  arrival.(f) +. wire_delay arch (dist fxy my_xy)
                end
                else begin
                  (* from the stored copy's flip-flop *)
                  match Hashtbl.find_opt cl.Cluster.ff_slots (Cluster.V_lut (plane, f)) with
                  | Some (slot, _) ->
                    wire_delay arch (dist t.smb_xy.(slot.Cluster.smb) my_xy)
                  | None -> arch.Arch.t_local
                end
              | Lut_network.Input (Lut_network.Register_bit (r, b))
              | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
                (match Hashtbl.find_opt cl.Cluster.ff_slots (Cluster.V_state (r, b)) with
                 | Some (slot, _) ->
                   wire_delay arch (dist t.smb_xy.(slot.Cluster.smb) my_xy)
                 | None -> arch.Arch.t_local)
              | Lut_network.Input (Lut_network.Pi_bit _) -> arch.Arch.t_global
              | Lut_network.Input (Lut_network.Const_bit _) -> 0.0
            in
            let worst_in =
              Array.fold_left (fun acc f -> Float.max acc (input_arrival f)) 0.0 fanins
            in
            arrival.(l) <- worst_in +. arch.Arch.t_lut;
            if arrival.(l) > !worst then worst := arrival.(l))
        network)
    plan.Mapper.planes;
  !worst +. arch.Arch.t_reconf +. arch.Arch.t_setup

let validate t (cl : Cluster.t) =
  let seen = Hashtbl.create 64 in
  let xy_ctx s x y =
    [ ("smb", string_of_int s); ("x", string_of_int x); ("y", string_of_int y) ]
  in
  Array.iteri
    (fun s (x, y) ->
      if x < 0 || x >= t.width || y < 0 || y >= t.height then
        Diag.fail ~stage:"place" ~code:"off-grid" ~context:(xy_ctx s x y)
          "SMB placed off the grid";
      (match Hashtbl.find_opt seen (x, y) with
      | Some other ->
        Diag.fail ~stage:"place" ~code:"site-conflict"
          ~context:(("other_smb", string_of_int other) :: xy_ctx s x y)
          "two SMBs on one site"
      | None -> ());
      Hashtbl.replace seen (x, y) s)
    t.smb_xy;
  Array.iteri
    (fun p (x, y) ->
      let on_perimeter = x = -1 || y = -1 || x = t.width || y = t.height in
      if not on_perimeter then
        Diag.fail ~stage:"place" ~code:"pad-perimeter"
          ~context:
            [ ("pad", string_of_int p);
              ("x", string_of_int x);
              ("y", string_of_int y) ]
          "pad not on the perimeter ring")
    t.pad_xy;
  ignore cl

(* Multi-seed portfolio: the annealer is cheap enough to run several
   times, and independent seeds explore different basins. Candidate
   seeds are a fixed arithmetic offset of [seed] (not the worker count),
   and the winner is the lowest-HPWL legal placement with ties broken by
   the lowest candidate index — so the result is a pure function of
   [count] and [seed], whatever the pool size. *)
let portfolio ?pool ?(count = 1) ?(seed = 1) ?(effort = `Detailed)
    ?(joint = true) ?init ?(defects = Defect.none) (cl : Cluster.t) =
  if count <= 1 then place ~seed ~effort ~joint ?init ~defects cl
  else begin
    let anneal _i cand_seed =
      let p = place ~seed:cand_seed ~effort ~joint ?init ~defects cl in
      validate p cl;
      p
    in
    let seeds = Array.init count (fun i -> seed + (7919 * i)) in
    let candidates =
      match pool with
      | Some pool -> Nanomap_util.Pool.mapi pool ~f:anneal seeds
      | None -> Array.mapi anneal seeds
    in
    let best = ref candidates.(0) in
    Array.iter (fun c -> if c.hpwl < !best.hpwl then best := c) candidates;
    !best
  end
