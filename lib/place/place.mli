(** Temporal placement (paper Section 4.4).

    SMBs are placed on a square island grid with I/O pads on the perimeter,
    by VPR-style simulated annealing: random swap/relocate moves inside a
    shrinking range window, adaptive temperature schedule, half-perimeter
    wirelength (HPWL) cost. Temporal folding enters through the cost: the
    nets of {e all} folding cycles are summed, so two SMBs that only talk
    in a late folding cycle still attract each other (the paper adds the
    Manhattan distance between SMB pairs of other folding stages to the
    current cycle's cost — summing every cycle's HPWL generalizes that).
    [joint:false] restricts the cost to first-cycle nets, which is the
    ablation knob for that design choice.

    The flow runs {!place} twice, mirroring Fig. 2: a [`Fast] low-precision
    pass whose result is screened by {!routability} and
    {!timing_estimate}, then a [`Detailed] pass. *)

type t = {
  width : int;
  height : int;                    (** SMB grid dimensions *)
  smb_xy : (int * int) array;      (** SMB id -> grid coordinates *)
  pad_xy : (int * int) array;      (** pad id -> perimeter coordinates *)
  hpwl : float;                    (** final joint HPWL *)
  moves_tried : int;
  moves_accepted : int;
}

val grid_dims : Nanomap_cluster.Cluster.t -> int * int
(** [(width, height)] of the SMB grid {!place} will use for this cluster
    (square-ish, with one slack row so relocation moves always exist).
    Exposed so defect maps can be generated in fabric coordinates. *)

val default_pad_xy :
  Nanomap_cluster.Cluster.t -> width:int -> height:int -> (int * int) array
(** The fixed perimeter-ring positions every placer pins the cluster's
    pads to (pad [i] evenly spread around the ring). Exposed so exact
    placers produce placements directly comparable with the annealer's. *)

val illegal_sites :
  Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  n_smb:int ->
  width:int ->
  height:int ->
  bool array option
(** [illegal_sites defects cl ~n_smb ~width ~height] is [None] when the
    defect map is empty; otherwise [Some arr] with
    [arr.(s * width * height + site)] true iff placing SMB [s] on [site]
    would put one of its occupied [(mb, le)] slots on a defective fabric
    LE. The shared legality oracle for the annealer and the SAT
    encoding, so both engines agree on what "legal" means. *)

val place :
  ?seed:int ->
  ?effort:[ `Fast | `Detailed ] ->
  ?joint:bool ->
  ?init:t ->
  ?defects:Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  t
(** [joint] defaults to [true]. Deterministic in [seed] (default 1).
    [init] seeds the annealer with a previous placement of the {e same}
    cluster and switches to a low-temperature refinement schedule, so the
    detailed pass improves on the accepted fast placement instead of
    re-deriving the global structure; an [init] of mismatched dimensions is
    ignored. A valid [init] replaces the initial-assignment scan
    entirely, so a placement found by the exact engine can be refined
    even on fabrics where the greedy scan would fail. [defects] (default {!Nanomap_arch.Defect.none}) lists known-bad
    fabric LEs: an SMB whose cluster assignment occupies a defective
    [(mb, le)] is never placed on that site — the initial assignment routes
    around them, annealing moves that would land on one are rejected, and an
    [init] that violates the map is discarded. Raises [Diag.Fail] (code
    ["defect-unplaceable"]) if no defect-free site remains for some SMB. *)

val portfolio :
  ?pool:Nanomap_util.Pool.t ->
  ?count:int ->
  ?seed:int ->
  ?effort:[ `Fast | `Detailed ] ->
  ?joint:bool ->
  ?init:t ->
  ?defects:Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  t
(** Multi-seed annealing portfolio: run {!place} on [count] (default 1)
    independent seeds — [seed + 7919*i] for candidate [i] — validate each,
    and keep the lowest-HPWL placement (ties: lowest candidate index).
    With [pool] the candidates anneal concurrently; the chosen placement
    is a pure function of [count] and [seed], independent of the worker
    count. [count <= 1] is exactly {!place}. Other arguments are passed
    through to each candidate run. *)

val hpwl : t -> Nanomap_cluster.Cluster.t -> float
(** Joint HPWL of a placement (recomputed from scratch; used by tests and
    the ablation, independent of the annealer's incremental bookkeeping). *)

val routability : t -> Nanomap_cluster.Cluster.t -> float
(** RISA-flavoured routability estimate: expected peak channel utilization
    (demand / supply) given per-net bounding boxes, in [0, inf); values
    under ~1 predict routable. The folding cycles are independent
    configurations, so the estimate is the max over cycles. *)

val timing_estimate :
  t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_core.Mapper.plan ->
  float
(** Pre-route estimate of the folding-clock period (ns): longest
    LUT-chain path within any folding cycle, with net delays taken from
    bounding-box Manhattan distances. *)

val validate : t -> Nanomap_cluster.Cluster.t -> unit
(** No two SMBs on one site, all coordinates on the grid, pads on the
    perimeter. Raises [Nanomap_util.Diag.Fail] (stage ["place"], codes
    ["off-grid"], ["site-conflict"], ["pad-perimeter"]). *)
