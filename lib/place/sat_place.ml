module Sat = Nanomap_util.Sat
module Diag = Nanomap_util.Diag
module Pool = Nanomap_util.Pool
module Telemetry = Nanomap_util.Telemetry
module Defect = Nanomap_arch.Defect
module Cluster = Nanomap_cluster.Cluster

let c_sat_solved = Telemetry.counter "sat_place.solved"
let c_sat_unsat = Telemetry.counter "sat_place.unsat_proven"
let c_sat_gave_up = Telemetry.counter "sat_place.gave_up"

type strategy = Sa | Sat | Race

let strategy_to_string = function Sa -> "sa" | Sat -> "sat" | Race -> "race"

let strategy_of_string = function
  | "sa" -> Some Sa
  | "sat" -> Some Sat
  | "race" -> Some Race
  | _ -> None

type outcome =
  | Placed of Place.t
  | Unsat_proven
  | Gave_up

let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

(* at-most-one over [lits]: pairwise when the group is small, commander
   encoding for large groups — split into triples, pairwise inside each
   triple, a fresh commander variable implied by every member, then
   at-most-one over the commanders recursively. Linear clause count
   instead of quadratic. *)
let rec add_amo solver lits =
  let n = Array.length lits in
  if n <= 6 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Sat.add_clause solver [ Sat.negate lits.(i); Sat.negate lits.(j) ]
      done
    done
  else begin
    let ngroups = (n + 2) / 3 in
    let commanders =
      Array.init ngroups (fun g ->
          let lo = 3 * g in
          let hi = min (lo + 3) n in
          for i = lo to hi - 1 do
            for j = i + 1 to hi - 1 do
              Sat.add_clause solver [ Sat.negate lits.(i); Sat.negate lits.(j) ]
            done
          done;
          let c = Sat.pos (Sat.new_var solver) in
          for i = lo to hi - 1 do
            Sat.add_clause solver [ Sat.negate lits.(i); c ]
          done;
          c)
    in
    add_amo solver commanders
  end

type encoding = {
  solver : Sat.t;
  n_smb : int;
  width : int;
  height : int;
  nsites : int;
  var : int -> int -> int; (* smb -> site -> solver variable *)
}

let legality defects cl ~n_smb ~width ~height =
  let nsites = width * height in
  match Place.illegal_sites defects cl ~n_smb ~width ~height with
  | None -> fun _ _ -> true
  | Some arr -> fun s site -> not arr.((s * nsites) + site)

(* Deterministically collect the cluster's connectivity: SMB pairs that
   share a net, and SMB–pad pairs. Hashtable iteration order must not
   reach the clause stream, so keys are sorted before use. *)
let connectivity (cl : Cluster.t) =
  let smb_pairs = Hashtbl.create 64 and pad_pairs = Hashtbl.create 64 in
  List.iter
    (fun (n : Cluster.net) ->
      let eps = n.Cluster.driver :: n.Cluster.sinks in
      let smbs =
        List.filter_map
          (function Cluster.At_smb s -> Some s | Cluster.At_pad _ -> None)
          eps
        |> List.sort_uniq compare
      in
      let pads =
        List.filter_map
          (function Cluster.At_pad p -> Some p | Cluster.At_smb _ -> None)
          eps
        |> List.sort_uniq compare
      in
      List.iter
        (fun a ->
          List.iter (fun b -> if a < b then Hashtbl.replace smb_pairs (a, b) ()) smbs)
        smbs;
      List.iter
        (fun s -> List.iter (fun p -> Hashtbl.replace pad_pairs (s, p) ()) pads)
        smbs)
    cl.Cluster.nets;
  let sorted h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare in
  (sorted smb_pairs, sorted pad_pairs)

let encode ?distance_bound ?(defects = Defect.none) (cl : Cluster.t) =
  let n_smb = max cl.Cluster.num_smbs 1 in
  let width, height = Place.grid_dims cl in
  let nsites = width * height in
  let legal = legality defects cl ~n_smb ~width ~height in
  let solver = Sat.create ~nvars:(n_smb * nsites) () in
  let var s site = (s * nsites) + site in
  (* defect avoidance: illegal pairs pinned false *)
  for s = 0 to n_smb - 1 do
    for site = 0 to nsites - 1 do
      if not (legal s site) then Sat.add_clause solver [ Sat.neg (var s site) ]
    done
  done;
  (* one-hot per SMB over its legal sites *)
  for s = 0 to n_smb - 1 do
    let sites = ref [] in
    for site = nsites - 1 downto 0 do
      if legal s site then sites := site :: !sites
    done;
    Sat.add_clause solver (List.map (fun site -> Sat.pos (var s site)) !sites);
    add_amo solver
      (Array.of_list (List.map (fun site -> Sat.pos (var s site)) !sites))
  done;
  (* site exclusivity *)
  for site = 0 to nsites - 1 do
    let smbs = ref [] in
    for s = n_smb - 1 downto 0 do
      if legal s site then smbs := s :: !smbs
    done;
    add_amo solver
      (Array.of_list (List.map (fun s -> Sat.pos (var s site)) !smbs))
  done;
  (* distance-bounded routability over the cluster's connectivity *)
  (match distance_bound with
  | None -> ()
  | Some d ->
    let pad_xy = Place.default_pad_xy cl ~width ~height in
    let site_xy site = (site mod width, site / width) in
    let smb_pairs, pad_pairs = connectivity cl in
    List.iter
      (fun (a, b) ->
        for sa = 0 to nsites - 1 do
          if legal a sa then
            for sb = 0 to nsites - 1 do
              if legal b sb && manhattan (site_xy sa) (site_xy sb) > d then
                Sat.add_clause solver [ Sat.neg (var a sa); Sat.neg (var b sb) ]
            done
        done)
      smb_pairs;
    List.iter
      (fun (s, p) ->
        for site = 0 to nsites - 1 do
          if legal s site && manhattan (site_xy site) pad_xy.(p) > d then
            Sat.add_clause solver [ Sat.neg (var s site) ]
        done)
      pad_pairs);
  { solver; n_smb; width; height; nsites; var }

let decode enc (cl : Cluster.t) =
  let smb_xy =
    Array.init enc.n_smb (fun s ->
        let rec find site =
          if site >= enc.nsites then
            Diag.fail ~stage:"place" ~code:"sat-decode"
              ~context:[ ("smb", string_of_int s) ]
              "SAT model assigns no site to SMB"
          else if Sat.value enc.solver (enc.var s site) then
            (site mod enc.width, site / enc.width)
          else find (site + 1)
        in
        find 0)
  in
  let pad_xy = Place.default_pad_xy cl ~width:enc.width ~height:enc.height in
  let t =
    { Place.width = enc.width;
      height = enc.height;
      smb_xy;
      pad_xy;
      hpwl = 0.;
      moves_tried = 0;
      moves_accepted = 0 }
  in
  { t with Place.hpwl = Place.hpwl t cl }

let solve ?(seed = 1) ?distance_bound ?max_conflicts ?(refine = true)
    ?(defects = Defect.none) (cl : Cluster.t) =
  let enc = encode ?distance_bound ~defects cl in
  match Sat.solve ?max_conflicts enc.solver with
  | Sat.Unsat ->
    Telemetry.incr c_sat_unsat;
    Unsat_proven
  | Sat.Unknown ->
    Telemetry.incr c_sat_gave_up;
    Gave_up
  | Sat.Sat ->
    Telemetry.incr c_sat_solved;
    let decoded = decode enc cl in
    if refine then
      Placed (Place.place ~seed ~effort:`Detailed ~init:decoded ~defects cl)
    else Placed decoded

let exhaustive_exists ?(defects = Defect.none) (cl : Cluster.t) =
  let n_smb = max cl.Cluster.num_smbs 1 in
  let width, height = Place.grid_dims cl in
  let nsites = width * height in
  let legal = legality defects cl ~n_smb ~width ~height in
  let domain_size s =
    let n = ref 0 in
    for site = 0 to nsites - 1 do
      if legal s site then incr n
    done;
    !n
  in
  (* most-constrained SMB first: prunes the search by orders of magnitude *)
  let order = Array.init n_smb Fun.id in
  Array.sort
    (fun a b -> compare (domain_size a, a) (domain_size b, b))
    order;
  let used = Array.make nsites false in
  let rec go i =
    i = n_smb
    || begin
         let s = order.(i) in
         let rec try_site site =
           site < nsites
           && begin
                if (not used.(site)) && legal s site then begin
                  used.(site) <- true;
                  let found = go (i + 1) in
                  used.(site) <- false;
                  found || try_site (site + 1)
                end
                else try_site (site + 1)
              end
         in
         try_site 0
       end
  in
  go 0

(* The race's winner is a pure function of the two arms' results, never
   of timing, so any pool width gives the same placement. *)
let decide sa_res sat_res =
  match (sa_res, sat_res) with
  | Ok sa_p, Ok (Placed sat_p) ->
    if sat_p.Place.hpwl < sa_p.Place.hpwl then (sat_p, `Sat) else (sa_p, `Sa)
  | Ok sa_p, (Ok (Unsat_proven | Gave_up) | Error _) -> (sa_p, `Sa)
  | Error _, Ok (Placed sat_p) -> (sat_p, `Sat)
  | Error sa_d, Ok Unsat_proven ->
    Diag.fail ~stage:"place" ~code:"unplaceable-proven"
      ~context:[ ("sa_code", sa_d.Diag.code) ]
      "SAT certifies that no legal placement exists on this fabric"
  | Error sa_d, (Ok Gave_up | Error _) -> raise (Diag.Fail sa_d)

let race ?pool ?(count = 1) ?(seed = 1) ?(effort = `Detailed) ?(joint = true)
    ?init ?max_conflicts ?(defects = Defect.none) (cl : Cluster.t) =
  (* Arms trap their own [Diag.Fail]: the pool re-raises the lowest-index
     task failure at the join point, which would hide the SAT arm's
     verdict whenever the SA arm fails — the decision must see both. *)
  let sa_arm () : (Place.t, Diag.t) result =
    match Place.portfolio ~count ~seed ~effort ~joint ?init ~defects cl with
    | p ->
      Place.validate p cl;
      Ok p
    | exception Diag.Fail d -> Error d
  in
  let sat_arm () : (outcome, Diag.t) result =
    match solve ~seed ?max_conflicts ~defects cl with
    | o -> Ok o
    | exception Diag.Fail d -> Error d
  in
  let sa_res, sat_res =
    match pool with
    | Some pool -> (
      let results =
        Pool.mapi pool
          ~f:(fun i () -> if i = 0 then `Sa (sa_arm ()) else `Sat (sat_arm ()))
          [| (); () |]
      in
      match results with
      | [| `Sa sa; `Sat sat |] -> (sa, sat)
      | _ -> assert false)
    | None -> (sa_arm (), sat_arm ())
  in
  decide sa_res sat_res
