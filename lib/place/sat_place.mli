(** Exact defect-tolerant placement via the embedded SAT solver.

    Following the CMOL cell-assignment-by-satisfiability approach, the
    LE→site assignment problem under a defect map is encoded as CNF over
    one-hot assignment variables [x_{s,site}] ("SMB [s] sits on grid
    site [site]"):

    - {e at-least-one} clause per SMB over its defect-legal sites;
    - {e at-most-one} per SMB and per site — pairwise for small groups,
      commander encoding (groups of three with fresh commander
      variables, recursively) for large ones;
    - {e defect avoidance} as unit clauses pinning illegal pairs false
      (legality comes from the same {!Place.illegal_sites} oracle the
      annealer uses, so both engines agree on what "legal" means);
    - optional {e distance-bounded routability}: connected SMB pairs
      (and SMB–pad pairs, pads being fixed) may not be assigned sites
      further than a Manhattan bound apart.

    A model decodes to a {!Place.t}; [Unsat] is a {e certificate} that no
    legal assignment exists — strictly stronger than the annealer giving
    up. {!race} runs both engines and keeps the better result under a
    pure, pool-width-independent winner rule. *)

type strategy = Sa | Sat | Race

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option
(** ["sa"], ["sat"], ["race"]. *)

type outcome =
  | Placed of Place.t
  | Unsat_proven  (** certificate: no legal assignment exists *)
  | Gave_up       (** conflict budget exhausted before a verdict *)

val solve :
  ?seed:int ->
  ?distance_bound:int ->
  ?max_conflicts:int ->
  ?refine:bool ->
  ?defects:Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  outcome
(** Encode, solve, decode. With [refine] (default [true]) the decoded
    assignment — legal but wirelength-oblivious — seeds a detailed
    {!Place.place} run ([seed], default 1) that anneals the wirelength
    down without ever leaving the legal region; [refine:false] returns
    the raw decoded placement (use this under [distance_bound], which
    the annealer does not know about). [max_conflicts] bounds the
    solver; exhausting it yields [Gave_up]. Deterministic in all
    arguments. *)

val exhaustive_exists :
  ?defects:Nanomap_arch.Defect.t -> Nanomap_cluster.Cluster.t -> bool
(** Ground truth by backtracking enumeration (smallest-domain-first over
    the same legality oracle, no distance constraints): does {e any}
    legal injective SMB→site assignment exist? Exponential — only for
    small fabrics; the differential tests and the bench's UNSAT
    certification leg check [solve = Unsat_proven] iff this is [false]. *)

val race :
  ?pool:Nanomap_util.Pool.t ->
  ?count:int ->
  ?seed:int ->
  ?effort:[ `Fast | `Detailed ] ->
  ?joint:bool ->
  ?init:Place.t ->
  ?max_conflicts:int ->
  ?defects:Nanomap_arch.Defect.t ->
  Nanomap_cluster.Cluster.t ->
  Place.t * [ `Sa | `Sat ]
(** Run the annealing portfolio ({!Place.portfolio} with [count],
    [seed], [effort], [joint], [init]) and the exact engine ({!solve}
    with [seed], [max_conflicts]) on the same problem — concurrently as
    two tasks when [pool] is given — and pick the winner by a pure rule
    on the two results, so the outcome is identical at every pool
    width:

    - both legal: SAT wins iff its joint HPWL is strictly lower (the SA
      arm keeps ties);
    - one side failed (annealer [Diag.Fail], solver [Gave_up]): the
      other wins;
    - annealer failed and the solver proved [Unsat]: raises [Diag.Fail]
      (stage ["place"], code ["unplaceable-proven"]) — an exact
      certificate, not a search giving up;
    - both failed without a certificate: the annealer's diagnostic is
      re-raised.

    The SA arm anneals its portfolio serially inside its task (pool maps
    do not nest); the pool still overlaps it with the SAT arm. *)
