module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Diag = Nanomap_util.Diag
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Telemetry = Nanomap_util.Telemetry
module Min_heap = Nanomap_util.Min_heap

let c_pathfinder_iters = Telemetry.counter "route.pathfinder_iters"
let c_heap_pushes = Telemetry.counter "route.heap_pushes"
let c_heap_pops = Telemetry.counter "route.heap_pops"
let c_nodes_expanded = Telemetry.counter "route.nodes_expanded"
let c_nets_rerouted = Telemetry.counter "route.nets_rerouted"
let c_astar_pruned = Telemetry.counter "route.astar_pruned"

type algorithm = Full | Incremental

type routed_net = {
  net : Cluster.net;
  tree : int list;
  sink_delays : (Cluster.endpoint * float) list;
}

type result = {
  graph : Rr_graph.t;
  routed : routed_net list;
  success : bool;
  iterations : int;
  overused : int;
  usage_by_kind : (string * int) list;
  nets_using_global : int;
  total_nets : int;
  wirelength : int;
  folding_period_ns : float;
}

(* Wavefront scratch (distances and backpointers) over flat arrays indexed
   by rr-node id. A search is invalidated in O(1) by bumping the generation
   stamp instead of refilling the arrays or walking a touched list: a cell
   belongs to the current search only if its stamp matches. *)
module Scratch = struct
  type t = {
    dist_a : float array;
    prev_a : int array;
    gen : int array;
    mutable stamp : int;
  }

  let create n =
    { dist_a = Array.make n infinity;
      prev_a = Array.make n (-1);
      gen = Array.make n 0;
      stamp = 0 }

  let size s = Array.length s.gen

  let begin_search s = s.stamp <- s.stamp + 1

  let dist s v = if s.gen.(v) = s.stamp then s.dist_a.(v) else infinity

  let prev s v = if s.gen.(v) = s.stamp then s.prev_a.(v) else -1

  let set s v ~dist ~prev =
    s.dist_a.(v) <- dist;
    s.prev_a.(v) <- prev;
    s.gen.(v) <- s.stamp
end

let is_wire (g : Rr_graph.t) n =
  match g.Rr_graph.kind.(n) with
  | Rr_graph.Wire _ -> true
  | Rr_graph.Src _ | Rr_graph.Sink _ | Rr_graph.Pad_src _ | Rr_graph.Pad_sink _ ->
    false

(* Deterministic timeslot buckets: slots ascending by (plane, cycle), nets
   within a slot in their original cluster order. The Hashtbl only groups;
   its iteration order never reaches the routing order, so same-seed runs
   route nets identically. *)
let group_by_slot nets =
  let by_slot = Hashtbl.create 32 in
  List.iter
    (fun (net : Cluster.net) ->
      let key = (net.Cluster.plane, net.Cluster.cycle) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_slot key) in
      Hashtbl.replace by_slot key (net :: cur))
    nets;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) by_slot []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let ep_string = function
  | Cluster.At_smb s -> "smb:" ^ string_of_int s
  | Cluster.At_pad p -> "pad:" ^ string_of_int p

let route ?(caps = Rr_graph.default_caps) ?(defects = Defect.none)
    ?(max_iterations = 12) ?(alg = Incremental) (pl : Place.t) (cl : Cluster.t)
    (plan : Mapper.plan) =
  let arch = cl.Cluster.arch in
  let g = Rr_graph.build ~caps ~defects ~arch pl in
  let n = g.Rr_graph.num_nodes in
  let astar = alg = Incremental in
  let node_of_src = function
    | Cluster.At_smb s -> g.Rr_graph.src_of_smb.(s)
    | Cluster.At_pad p -> g.Rr_graph.src_of_pad.(p)
  in
  let node_of_sink = function
    | Cluster.At_smb s -> g.Rr_graph.sink_of_smb.(s)
    | Cluster.At_pad p -> g.Rr_graph.sink_of_pad.(p)
  in
  let slots = group_by_slot cl.Cluster.nets in
  (* scratch state reused across nets and timeslots *)
  let usage = Array.make n 0 in
  let history = Array.make n 0.0 in
  let scratch = Scratch.create n in
  let heap = Min_heap.create () in
  (* tree membership by stamp: on_tree.(v) = current net's stamp *)
  let on_tree = Array.make n 0 in
  let tree_stamp = ref 0 in
  let all_routed = ref [] in
  let worst_iters = ref 0 in
  let total_overused = ref 0 in
  let all_success = ref true in
  List.iter
    (fun (_slot, nets) ->
      Array.fill usage 0 n 0;
      Array.fill history 0 n 0.0;
      let trees : (Cluster.net * int list) array =
        Array.of_list (List.map (fun net -> (net, [])) nets)
      in
      let pres_fac = ref 0.5 in
      let cost_of nd =
        let base = Rr_graph.base_cost g nd in
        if is_wire g nd then begin
          let over = usage.(nd) in
          let pres =
            if over > 0 then 1.0 +. (!pres_fac *. float_of_int over) else 1.0
          in
          base *. (1.0 +. history.(nd)) *. pres
        end
        else base
      in
      (* Rip up [old_tree] and grow a fresh Steiner-ish tree, sink by sink.
         Multi-source Dijkstra from the current tree; with [astar] the
         priority is dist + lookahead-to-sink, and discoveries the bound
         proves useless (unreachable sink, or provably no better than an
         already-found path to the sink) never enter the heap. *)
      let route_one (net : Cluster.net) old_tree =
        Telemetry.incr c_nets_rerouted;
        List.iter (fun nd -> usage.(nd) <- usage.(nd) - 1) old_tree;
        let src = node_of_src net.Cluster.driver in
        incr tree_stamp;
        let stamp = !tree_stamp in
        on_tree.(src) <- stamp;
        let tree_nodes = ref [ src ] in
        let tree_wires = ref [] in
        List.iter
          (fun sink_ep ->
            let target = node_of_sink sink_ep in
            let lb = if astar then Rr_graph.lookahead g target else [||] in
            let h v = if astar then lb.(v) else 0.0 in
            Scratch.begin_search scratch;
            Min_heap.clear heap;
            List.iter
              (fun t ->
                Scratch.set scratch t ~dist:0.0 ~prev:(-1);
                let f = h t in
                if f < infinity then begin
                  Telemetry.incr c_heap_pushes;
                  Min_heap.push heap f t
                end)
              !tree_nodes;
            (* tightest complete-path cost discovered so far; with A* any
               frontier entry at least this expensive is dead weight *)
            let upper = ref infinity in
            let found = ref false in
            while not !found do
              match Min_heap.pop heap with
              | None ->
                Diag.fail ~stage:"route" ~code:"unreachable-sink"
                  ~context:
                    [ ("plane", string_of_int net.Cluster.plane);
                      ("cycle", string_of_int net.Cluster.cycle);
                      ("driver", ep_string net.Cluster.driver);
                      ("sink", ep_string sink_ep) ]
                  "no path to sink exists in the routing graph"
              | Some (f, u) ->
                Telemetry.incr c_heap_pops;
                let du = Scratch.dist scratch u in
                if f <= du +. h u +. 1e-9 then begin
                  if u = target then found := true
                  else begin
                    Telemetry.incr c_nodes_expanded;
                    List.iter
                      (fun v ->
                        let nd = du +. cost_of v in
                        if nd < Scratch.dist scratch v then begin
                          if astar && nd +. lb.(v) >= !upper then
                            Telemetry.incr c_astar_pruned
                          else begin
                            Scratch.set scratch v ~dist:nd ~prev:u;
                            if v = target then upper := nd;
                            Telemetry.incr c_heap_pushes;
                            Min_heap.push heap (nd +. h v) v
                          end
                        end)
                      g.Rr_graph.adj.(u)
                  end
                end
            done;
            (* walk back, add new nodes to the tree *)
            let rec walk v acc =
              if on_tree.(v) = stamp then acc
              else walk (Scratch.prev scratch v) (v :: acc)
            in
            let path = walk target [] in
            List.iter
              (fun v ->
                on_tree.(v) <- stamp;
                tree_nodes := v :: !tree_nodes;
                if is_wire g v then begin
                  usage.(v) <- usage.(v) + 1;
                  tree_wires := v :: !tree_wires
                end)
              path)
          net.Cluster.sinks;
        !tree_wires
      in
      let iter = ref 0 in
      let overused = ref 1 in
      while !overused > 0 && !iter < max_iterations do
        incr iter;
        Telemetry.incr c_pathfinder_iters;
        Array.iteri
          (fun idx (net, old_tree) ->
            (* Full: classic PathFinder, every net re-negotiates every
               iteration. Incremental: after the first iteration only nets
               sitting on an overused node are ripped up; legal nets keep
               their routes (their usage still shapes everyone's costs). *)
            let must_reroute =
              !iter = 1 || alg = Full
              || List.exists (fun nd -> usage.(nd) > 1) old_tree
            in
            if must_reroute then trees.(idx) <- (net, route_one net old_tree))
          trees;
        (* congestion accounting *)
        overused := 0;
        for nd = 0 to n - 1 do
          if usage.(nd) > 1 then begin
            incr overused;
            history.(nd) <- history.(nd) +. 1.0
          end
        done;
        pres_fac := !pres_fac *. 2.0
      done;
      if !overused > 0 then all_success := false;
      total_overused := !total_overused + !overused;
      if !iter > !worst_iters then worst_iters := !iter;
      (* final per-net delays: pure-delay relaxation restricted to the tree *)
      Array.iter
        (fun (net, wires) ->
          let allowed = Hashtbl.create 16 in
          List.iter (fun nd -> Hashtbl.replace allowed nd ()) wires;
          let src = node_of_src net.Cluster.driver in
          Hashtbl.replace allowed src ();
          List.iter
            (fun ep -> Hashtbl.replace allowed (node_of_sink ep) ())
            net.Cluster.sinks;
          (* simple Bellman-ish relaxation over the small tree *)
          let d = Hashtbl.create 16 in
          Hashtbl.replace d src 0.0;
          let changed = ref true in
          while !changed do
            changed := false;
            Hashtbl.iter
              (fun u du ->
                List.iter
                  (fun v ->
                    if Hashtbl.mem allowed v then begin
                      let cand = du +. g.Rr_graph.delay.(v) in
                      match Hashtbl.find_opt d v with
                      | Some dv when dv <= cand -> ()
                      | _ ->
                        Hashtbl.replace d v cand;
                        changed := true
                    end)
                  g.Rr_graph.adj.(u))
              (Hashtbl.copy d)
          done;
          let sink_delays =
            List.map
              (fun ep ->
                let nd = node_of_sink ep in
                (ep, Option.value ~default:arch.Arch.t_global (Hashtbl.find_opt d nd)))
              net.Cluster.sinks
          in
          all_routed := { net; tree = wires; sink_delays } :: !all_routed)
        trees)
    slots;
  let routed = !all_routed in
  (* usage stats *)
  let count kind_name pred =
    ( kind_name,
      List.fold_left
        (fun acc rn ->
          acc + List.length (List.filter (fun nd -> pred g.Rr_graph.kind.(nd)) rn.tree))
        0 routed )
  in
  let usage_by_kind =
    [ count "direct" (function Rr_graph.Wire Rr_graph.Direct -> true | _ -> false);
      count "len1" (function Rr_graph.Wire Rr_graph.Len1 -> true | _ -> false);
      count "len4" (function Rr_graph.Wire Rr_graph.Len4 -> true | _ -> false);
      count "global" (function Rr_graph.Wire Rr_graph.Global -> true | _ -> false) ]
  in
  (* Core nets only: pad I/O legitimately rides the global lines, so the
     paper's "global interconnect usage" claim is about SMB-to-SMB traffic. *)
  let is_core rn =
    let smb_only = function Cluster.At_smb _ -> true | Cluster.At_pad _ -> false in
    smb_only rn.net.Cluster.driver && List.for_all smb_only rn.net.Cluster.sinks
  in
  let nets_using_global =
    List.length
      (List.filter
         (fun rn ->
           is_core rn
           && List.exists
                (fun nd ->
                  match g.Rr_graph.kind.(nd) with
                  | Rr_graph.Wire Rr_graph.Global -> true
                  | _ -> false)
                rn.tree)
         routed)
  in
  let wirelength = List.fold_left (fun acc rn -> acc + List.length rn.tree) 0 routed in
  (* routed timing: longest LUT chain within any folding cycle *)
  let delay_lookup = Hashtbl.create 256 in
  List.iter
    (fun rn ->
      List.iter
        (fun (ep, d) ->
          Hashtbl.replace delay_lookup
            (rn.net.Cluster.plane, rn.net.Cluster.cycle, rn.net.Cluster.value, ep)
            d)
        rn.sink_delays)
    routed;
  let worst = ref 0.0 in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      let plane = plp.Mapper.plane_index in
      let network = plp.Mapper.network in
      let part = plp.Mapper.partition in
      let arrival = Array.make (Lut_network.size network) 0.0 in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let u = part.Partition.unit_of_lut.(l) in
            let c = plp.Mapper.schedule.(u) in
            let my_slot = Hashtbl.find cl.Cluster.lut_slots (plane, l) in
            let my_smb = my_slot.Cluster.smb in
            (* absorbed nets stay inside the SMB: LEs of one MB talk over
               the fast local crossbar, different MBs over the SMB-level
               crossbar *)
            let local_delay source_slot =
              match source_slot with
              | Some (slot : Cluster.slot)
                when slot.Cluster.smb = my_smb && slot.Cluster.mb = my_slot.Cluster.mb
                -> arch.Arch.t_intra_mb
              | Some _ | None -> arch.Arch.t_local
            in
            let slot_of_value = function
              | Cluster.V_lut (p', l') -> Hashtbl.find_opt cl.Cluster.lut_slots (p', l')
              | (Cluster.V_state _ | Cluster.V_pi _) as v ->
                (match Hashtbl.find_opt cl.Cluster.ff_slots v with
                 | Some (slot, _) -> Some slot
                 | None -> None)
            in
            let net_delay value =
              match
                Hashtbl.find_opt delay_lookup (plane, c, value, Cluster.At_smb my_smb)
              with
              | Some d -> d
              | None -> local_delay (slot_of_value value)
            in
            let input_arrival f =
              match Lut_network.node network f with
              | Lut_network.Lut _ ->
                let fu = part.Partition.unit_of_lut.(f) in
                let chain =
                  if plp.Mapper.schedule.(fu) = c then arrival.(f) else 0.0
                in
                chain +. net_delay (Cluster.V_lut (plane, f))
              | Lut_network.Input (Lut_network.Register_bit (r, b))
              | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
                net_delay (Cluster.V_state (r, b))
              | Lut_network.Input (Lut_network.Pi_bit (s, b)) ->
                net_delay (Cluster.V_pi (s, b))
              | Lut_network.Input (Lut_network.Const_bit _) -> 0.0
            in
            let worst_in =
              Array.fold_left (fun acc f -> Float.max acc (input_arrival f)) 0.0 fanins
            in
            arrival.(l) <- worst_in +. arch.Arch.t_lut;
            if arrival.(l) > !worst then worst := arrival.(l))
        network)
    plan.Mapper.planes;
  let folding_period_ns = !worst +. arch.Arch.t_reconf +. arch.Arch.t_setup in
  { graph = g;
    routed;
    success = !all_success;
    iterations = !worst_iters;
    overused = !total_overused;
    usage_by_kind;
    nets_using_global;
    total_nets = List.length routed;
    wirelength;
    folding_period_ns }

let validate r =
  let g = r.graph in
  (* per-timeslot single use of each wire node; never a defective node *)
  let used = Hashtbl.create 256 in
  List.iter
    (fun rn ->
      let slot = (rn.net.Cluster.plane, rn.net.Cluster.cycle) in
      List.iter
        (fun nd ->
          if g.Rr_graph.defective.(nd) then
            Diag.fail ~stage:"route" ~code:"defective-track"
              ~context:
                [ ("node", string_of_int nd);
                  ("kind", match g.Rr_graph.kind.(nd) with
                           | Rr_graph.Wire wk -> Rr_graph.wire_kind_name wk
                           | _ -> "non-wire") ]
              "routed net uses a wire marked defective";
          if Hashtbl.mem used (slot, nd) then
            Diag.fail ~stage:"route" ~code:"wire-shared"
              ~context:
                [ ("node", string_of_int nd);
                  ("plane", string_of_int rn.net.Cluster.plane);
                  ("cycle", string_of_int rn.net.Cluster.cycle) ]
              "wire node shared by two nets within one timeslot";
          Hashtbl.replace used (slot, nd) ())
        rn.tree)
    r.routed;
  (* connectivity: driver reaches every sink through tree edges *)
  List.iter
    (fun rn ->
      let allowed = Hashtbl.create 16 in
      List.iter (fun nd -> Hashtbl.replace allowed nd ()) rn.tree;
      let src =
        match rn.net.Cluster.driver with
        | Cluster.At_smb s -> g.Rr_graph.src_of_smb.(s)
        | Cluster.At_pad p -> g.Rr_graph.src_of_pad.(p)
      in
      let sinks =
        List.map
          (function
            | Cluster.At_smb s -> g.Rr_graph.sink_of_smb.(s)
            | Cluster.At_pad p -> g.Rr_graph.sink_of_pad.(p))
          rn.net.Cluster.sinks
      in
      let reached = Hashtbl.create 16 in
      let rec visit u =
        if not (Hashtbl.mem reached u) then begin
          Hashtbl.replace reached u ();
          List.iter
            (fun v ->
              if Hashtbl.mem allowed v || List.mem v sinks then visit v)
            g.Rr_graph.adj.(u)
        end
      in
      visit src;
      List.iter
        (fun snk ->
          if not (Hashtbl.mem reached snk) then
            Diag.fail ~stage:"route" ~code:"sink-unreached"
              ~context:
                [ ("plane", string_of_int rn.net.Cluster.plane);
                  ("cycle", string_of_int rn.net.Cluster.cycle);
                  ("driver", ep_string rn.net.Cluster.driver) ]
              "sink not reached through the net's routed tree")
        sinks)
    r.routed

let route_adaptive ?(caps = Rr_graph.default_caps) ?(defects = Defect.none)
    ?(max_doublings = 4) ?(alg = Incremental) pl cl plan =
  let rec attempt factor =
    let result =
      route ~caps:(Rr_graph.scale_caps caps factor) ~defects ~alg pl cl plan
    in
    if result.success || factor >= 1 lsl max_doublings then (result, factor)
    else attempt (2 * factor)
  in
  attempt 1
