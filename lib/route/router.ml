module Arch = Nanomap_arch.Arch
module Cluster = Nanomap_cluster.Cluster
module Place = Nanomap_place.Place
module Mapper = Nanomap_core.Mapper
module Partition = Nanomap_techmap.Partition
module Lut_network = Nanomap_techmap.Lut_network
module Telemetry = Nanomap_util.Telemetry

let c_pathfinder_iters = Telemetry.counter "route.pathfinder_iters"
let c_heap_pushes = Telemetry.counter "route.heap_pushes"
let c_heap_pops = Telemetry.counter "route.heap_pops"
let c_nodes_expanded = Telemetry.counter "route.nodes_expanded"

type routed_net = {
  net : Cluster.net;
  tree : int list;
  sink_delays : (Cluster.endpoint * float) list;
}

type result = {
  graph : Rr_graph.t;
  routed : routed_net list;
  success : bool;
  iterations : int;
  usage_by_kind : (string * int) list;
  nets_using_global : int;
  total_nets : int;
  wirelength : int;
  folding_period_ns : float;
}

(* Minimal binary min-heap on (cost, node). *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable len : int;
  }

  let create () = { data = Array.make 64 (0.0, 0); len = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h item =
    Telemetry.incr c_heap_pushes;
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- item;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      Telemetry.incr c_heap_pops;
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end

  let clear h = h.len <- 0
end

let is_wire (g : Rr_graph.t) n =
  match g.Rr_graph.kind.(n) with
  | Rr_graph.Wire _ -> true
  | Rr_graph.Src _ | Rr_graph.Sink _ | Rr_graph.Pad_src _ | Rr_graph.Pad_sink _ ->
    false

let route ?(caps = Rr_graph.default_caps) ?(max_iterations = 12) (pl : Place.t)
    (cl : Cluster.t) (plan : Mapper.plan) =
  let arch = cl.Cluster.arch in
  let g = Rr_graph.build ~caps ~arch pl in
  let n = g.Rr_graph.num_nodes in
  let node_of_src = function
    | Cluster.At_smb s -> g.Rr_graph.src_of_smb.(s)
    | Cluster.At_pad p -> g.Rr_graph.src_of_pad.(p)
  in
  let node_of_sink = function
    | Cluster.At_smb s -> g.Rr_graph.sink_of_smb.(s)
    | Cluster.At_pad p -> g.Rr_graph.sink_of_pad.(p)
  in
  (* timeslot buckets, deterministic order *)
  let by_slot = Hashtbl.create 32 in
  List.iter
    (fun (net : Cluster.net) ->
      let key = (net.Cluster.plane, net.Cluster.cycle) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_slot key) in
      Hashtbl.replace by_slot key (net :: cur))
    cl.Cluster.nets;
  let slots =
    Hashtbl.fold (fun k v acc -> (k, List.sort compare v) :: acc) by_slot []
    |> List.sort compare
  in
  (* scratch state reused per timeslot *)
  let usage = Array.make n 0 in
  let history = Array.make n 0.0 in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let touched = ref [] in
  let heap = Heap.create () in
  let all_routed = ref [] in
  let worst_iters = ref 0 in
  let all_success = ref true in
  List.iter
    (fun (_slot, nets) ->
      Array.fill usage 0 n 0;
      Array.fill history 0 n 0.0;
      let trees : (Cluster.net * int list) array =
        Array.of_list (List.map (fun net -> (net, [])) nets)
      in
      let pres_fac = ref 0.5 in
      let iter = ref 0 in
      let overused = ref 1 in
      while !overused > 0 && !iter < max_iterations do
        incr iter;
        Telemetry.incr c_pathfinder_iters;
        Array.iteri
          (fun idx (net, old_tree) ->
            (* rip up *)
            List.iter (fun nd -> usage.(nd) <- usage.(nd) - 1) old_tree;
            let src = node_of_src net.Cluster.driver in
            let tree_nodes = ref [ src ] in
            let tree_wires = ref [] in
            let cost_of nd =
              let base = g.Rr_graph.delay.(nd) +. 0.01 in
              if is_wire g nd then begin
                let over = usage.(nd) + 1 - 1 in
                let pres = if over > 0 then 1.0 +. (!pres_fac *. float_of_int over) else 1.0 in
                base *. (1.0 +. history.(nd)) *. pres
              end
              else base
            in
            List.iter
              (fun sink_ep ->
                let target = node_of_sink sink_ep in
                (* multi-source Dijkstra from the current tree *)
                Heap.clear heap;
                List.iter
                  (fun t ->
                    dist.(t) <- 0.0;
                    prev.(t) <- -1;
                    touched := t :: !touched;
                    Heap.push heap (0.0, t))
                  !tree_nodes;
                let found = ref false in
                while not !found do
                  match Heap.pop heap with
                  | None -> failwith "Router: unreachable sink"
                  | Some (d, u) ->
                    if d <= dist.(u) then begin
                      Telemetry.incr c_nodes_expanded;
                      if u = target then found := true
                      else
                        List.iter
                          (fun v ->
                            let nd = d +. cost_of v in
                            if nd < dist.(v) then begin
                              if dist.(v) = infinity then touched := v :: !touched;
                              dist.(v) <- nd;
                              prev.(v) <- u;
                              Heap.push heap (nd, v)
                            end)
                          g.Rr_graph.adj.(u)
                    end
                done;
                (* walk back, add new nodes to tree *)
                let rec walk v acc =
                  if List.mem v !tree_nodes then acc
                  else walk prev.(v) (v :: acc)
                in
                let path = walk target [] in
                List.iter
                  (fun v ->
                    tree_nodes := v :: !tree_nodes;
                    if is_wire g v then begin
                      usage.(v) <- usage.(v) + 1;
                      tree_wires := v :: !tree_wires
                    end)
                  path;
                (* reset dijkstra scratch *)
                List.iter
                  (fun v ->
                    dist.(v) <- infinity;
                    prev.(v) <- -1)
                  !touched;
                touched := [])
              net.Cluster.sinks;
            trees.(idx) <- (net, !tree_wires))
          trees;
        (* congestion accounting *)
        overused := 0;
        for nd = 0 to n - 1 do
          if usage.(nd) > 1 then begin
            incr overused;
            history.(nd) <- history.(nd) +. 1.0
          end
        done;
        pres_fac := !pres_fac *. 2.0
      done;
      if !overused > 0 then all_success := false;
      if !iter > !worst_iters then worst_iters := !iter;
      (* final per-net delays: pure-delay Dijkstra restricted to the tree *)
      Array.iter
        (fun (net, wires) ->
          let allowed = Hashtbl.create 16 in
          List.iter (fun nd -> Hashtbl.replace allowed nd ()) wires;
          let src = node_of_src net.Cluster.driver in
          Hashtbl.replace allowed src ();
          List.iter
            (fun ep -> Hashtbl.replace allowed (node_of_sink ep) ())
            net.Cluster.sinks;
          (* simple Bellman-ish relaxation over the small tree *)
          let d = Hashtbl.create 16 in
          Hashtbl.replace d src 0.0;
          let changed = ref true in
          while !changed do
            changed := false;
            Hashtbl.iter
              (fun u du ->
                List.iter
                  (fun v ->
                    if Hashtbl.mem allowed v then begin
                      let cand = du +. g.Rr_graph.delay.(v) in
                      match Hashtbl.find_opt d v with
                      | Some dv when dv <= cand -> ()
                      | _ ->
                        Hashtbl.replace d v cand;
                        changed := true
                    end)
                  g.Rr_graph.adj.(u))
              (Hashtbl.copy d)
          done;
          let sink_delays =
            List.map
              (fun ep ->
                let nd = node_of_sink ep in
                (ep, Option.value ~default:arch.Arch.t_global (Hashtbl.find_opt d nd)))
              net.Cluster.sinks
          in
          all_routed := { net; tree = wires; sink_delays } :: !all_routed)
        trees)
    slots;
  let routed = !all_routed in
  (* usage stats *)
  let count kind_name pred =
    ( kind_name,
      List.fold_left
        (fun acc rn ->
          acc + List.length (List.filter (fun nd -> pred g.Rr_graph.kind.(nd)) rn.tree))
        0 routed )
  in
  let usage_by_kind =
    [ count "direct" (function Rr_graph.Wire Rr_graph.Direct -> true | _ -> false);
      count "len1" (function Rr_graph.Wire Rr_graph.Len1 -> true | _ -> false);
      count "len4" (function Rr_graph.Wire Rr_graph.Len4 -> true | _ -> false);
      count "global" (function Rr_graph.Wire Rr_graph.Global -> true | _ -> false) ]
  in
  (* Core nets only: pad I/O legitimately rides the global lines, so the
     paper's "global interconnect usage" claim is about SMB-to-SMB traffic. *)
  let is_core rn =
    let smb_only = function Cluster.At_smb _ -> true | Cluster.At_pad _ -> false in
    smb_only rn.net.Cluster.driver && List.for_all smb_only rn.net.Cluster.sinks
  in
  let nets_using_global =
    List.length
      (List.filter
         (fun rn ->
           is_core rn
           && List.exists
                (fun nd ->
                  match g.Rr_graph.kind.(nd) with
                  | Rr_graph.Wire Rr_graph.Global -> true
                  | _ -> false)
                rn.tree)
         routed)
  in
  let wirelength = List.fold_left (fun acc rn -> acc + List.length rn.tree) 0 routed in
  (* routed timing: longest LUT chain within any folding cycle *)
  let delay_lookup = Hashtbl.create 256 in
  List.iter
    (fun rn ->
      List.iter
        (fun (ep, d) ->
          Hashtbl.replace delay_lookup
            (rn.net.Cluster.plane, rn.net.Cluster.cycle, rn.net.Cluster.value, ep)
            d)
        rn.sink_delays)
    routed;
  let worst = ref 0.0 in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      let plane = plp.Mapper.plane_index in
      let network = plp.Mapper.network in
      let part = plp.Mapper.partition in
      let arrival = Array.make (Lut_network.size network) 0.0 in
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut { fanins; _ } ->
            let u = part.Partition.unit_of_lut.(l) in
            let c = plp.Mapper.schedule.(u) in
            let my_slot = Hashtbl.find cl.Cluster.lut_slots (plane, l) in
            let my_smb = my_slot.Cluster.smb in
            (* absorbed nets stay inside the SMB: LEs of one MB talk over
               the fast local crossbar, different MBs over the SMB-level
               crossbar *)
            let local_delay source_slot =
              match source_slot with
              | Some (slot : Cluster.slot)
                when slot.Cluster.smb = my_smb && slot.Cluster.mb = my_slot.Cluster.mb
                -> arch.Arch.t_intra_mb
              | Some _ | None -> arch.Arch.t_local
            in
            let slot_of_value = function
              | Cluster.V_lut (p', l') -> Hashtbl.find_opt cl.Cluster.lut_slots (p', l')
              | (Cluster.V_state _ | Cluster.V_pi _) as v ->
                (match Hashtbl.find_opt cl.Cluster.ff_slots v with
                 | Some (slot, _) -> Some slot
                 | None -> None)
            in
            let net_delay value =
              match
                Hashtbl.find_opt delay_lookup (plane, c, value, Cluster.At_smb my_smb)
              with
              | Some d -> d
              | None -> local_delay (slot_of_value value)
            in
            let input_arrival f =
              match Lut_network.node network f with
              | Lut_network.Lut _ ->
                let fu = part.Partition.unit_of_lut.(f) in
                let chain =
                  if plp.Mapper.schedule.(fu) = c then arrival.(f) else 0.0
                in
                chain +. net_delay (Cluster.V_lut (plane, f))
              | Lut_network.Input (Lut_network.Register_bit (r, b))
              | Lut_network.Input (Lut_network.Wire_bit (r, b)) ->
                net_delay (Cluster.V_state (r, b))
              | Lut_network.Input (Lut_network.Pi_bit (s, b)) ->
                net_delay (Cluster.V_pi (s, b))
              | Lut_network.Input (Lut_network.Const_bit _) -> 0.0
            in
            let worst_in =
              Array.fold_left (fun acc f -> Float.max acc (input_arrival f)) 0.0 fanins
            in
            arrival.(l) <- worst_in +. arch.Arch.t_lut;
            if arrival.(l) > !worst then worst := arrival.(l))
        network)
    plan.Mapper.planes;
  let folding_period_ns = !worst +. arch.Arch.t_reconf +. arch.Arch.t_setup in
  { graph = g;
    routed;
    success = !all_success;
    iterations = !worst_iters;
    usage_by_kind;
    nets_using_global;
    total_nets = List.length routed;
    wirelength;
    folding_period_ns }

let validate r =
  let g = r.graph in
  (* per-timeslot single use of each wire node *)
  let used = Hashtbl.create 256 in
  List.iter
    (fun rn ->
      let slot = (rn.net.Cluster.plane, rn.net.Cluster.cycle) in
      List.iter
        (fun nd ->
          if Hashtbl.mem used (slot, nd) then
            failwith "Router: wire node shared within a timeslot";
          Hashtbl.replace used (slot, nd) ())
        rn.tree)
    r.routed;
  (* connectivity: driver reaches every sink through tree edges *)
  List.iter
    (fun rn ->
      let allowed = Hashtbl.create 16 in
      List.iter (fun nd -> Hashtbl.replace allowed nd ()) rn.tree;
      let src =
        match rn.net.Cluster.driver with
        | Cluster.At_smb s -> g.Rr_graph.src_of_smb.(s)
        | Cluster.At_pad p -> g.Rr_graph.src_of_pad.(p)
      in
      let sinks =
        List.map
          (function
            | Cluster.At_smb s -> g.Rr_graph.sink_of_smb.(s)
            | Cluster.At_pad p -> g.Rr_graph.sink_of_pad.(p))
          rn.net.Cluster.sinks
      in
      let reached = Hashtbl.create 16 in
      let rec visit u =
        if not (Hashtbl.mem reached u) then begin
          Hashtbl.replace reached u ();
          List.iter
            (fun v ->
              if Hashtbl.mem allowed v || List.mem v sinks then visit v)
            g.Rr_graph.adj.(u)
        end
      in
      visit src;
      List.iter
        (fun snk ->
          if not (Hashtbl.mem reached snk) then failwith "Router: sink not reached")
        sinks)
    r.routed

let route_adaptive ?(caps = Rr_graph.default_caps) ?(max_doublings = 4) pl cl plan =
  let rec attempt factor =
    let result = route ~caps:(Rr_graph.scale_caps caps factor) pl cl plan in
    if result.success || factor >= 1 lsl max_doublings then (result, factor)
    else attempt (2 * factor)
  in
  attempt 1
