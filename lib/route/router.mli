(** PathFinder negotiated-congestion routing (the VPR router the paper
    builds on), applied per folding cycle.

    Every folding cycle of every plane is a separate configuration of the
    same physical switches, so each (plane, cycle) timeslot is routed
    independently on a fresh congestion state of the shared
    {!Rr_graph.t}. Within a timeslot the PathFinder loop runs: nets are
    ripped up and re-routed by wavefront search over node costs
    [(delay + eps) * (1 + history) * present], sink by sink growing a
    Steiner-ish tree; present-sharing penalties double each iteration until
    no node is overused.

    Two {!algorithm}s share that contract:
    - {!Full} — the classic formulation: every iteration rips up and
      re-routes every net with plain Dijkstra wavefronts;
    - {!Incremental} (default) — iterations after the first rip up only
      the nets sitting on an overused node, and every wavefront is an A*
      search ordered by [dist + lookahead], where the lookahead is the
      exact uncongested distance-to-sink of {!Rr_graph.lookahead} —
      admissible (congestion only raises costs), so routes are identical
      in quality while the wavefront stops flooding the fabric.

    Search state (distances, backpointers, tree membership) lives in flat
    arrays indexed by rr-node id and is invalidated between searches by
    generation stamps, never reallocated or refilled.

    Routing is hierarchical in cost, as in the paper: direct links are the
    cheapest, then length-1 and length-4 segments, then the global lines —
    the router naturally prefers the shortest hierarchy level that works. *)

type algorithm =
  | Full         (** re-route every net each iteration, plain Dijkstra *)
  | Incremental  (** A* lookahead + rip up only congested nets *)

type routed_net = {
  net : Nanomap_cluster.Cluster.net;
  tree : int list;                       (** rr wire nodes used *)
  sink_delays : (Nanomap_cluster.Cluster.endpoint * float) list;
}

type result = {
  graph : Rr_graph.t;
  routed : routed_net list;
  success : bool;                        (** no overused node in any timeslot *)
  iterations : int;                      (** max PathFinder iterations used *)
  overused : int;                        (** nodes still overused at exit,
                                             summed over timeslots (0 iff
                                             [success]) *)
  usage_by_kind : (string * int) list;   (** wire-node usages summed over all
                                             timeslots/configurations *)
  nets_using_global : int;                (** core (SMB-to-SMB) nets touching a
                                              global line; pad I/O excluded *)
  total_nets : int;
  wirelength : int;                      (** total wire nodes over all nets *)
  folding_period_ns : float;             (** routed critical folding period *)
}

val route :
  ?caps:Rr_graph.caps ->
  ?defects:Nanomap_arch.Defect.t ->
  ?max_iterations:int ->
  ?alg:algorithm ->
  Nanomap_place.Place.t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_core.Mapper.plan ->
  result
(** Deterministic. [max_iterations] defaults to 12, [alg] to
    {!Incremental}. [defects] (default {!Nanomap_arch.Defect.none}) removes
    the named wire segments from the routing graph before any search, so
    routes avoid them by construction. Raises [Nanomap_util.Diag.Fail]
    (stage ["route"], code ["unreachable-sink"]) if some sink has no path at
    all — e.g. the fabric is too damaged or the track caps are zero. *)

val route_adaptive :
  ?caps:Rr_graph.caps ->
  ?defects:Nanomap_arch.Defect.t ->
  ?max_doublings:int ->
  ?alg:algorithm ->
  Nanomap_place.Place.t ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_core.Mapper.plan ->
  result * int
(** Minimum-channel-width style search: retry with doubled track counts
    until the router succeeds (or [max_doublings], default 4, is
    exhausted). Returns the result and the scale factor used. *)

val validate : result -> unit
(** Every net's tree connects its driver to every sink through existing
    edges, no wire node is used by two nets of the same timeslot, and no
    routed tree touches a node the defect map marked bad. Raises
    [Nanomap_util.Diag.Fail] (stage ["route"], codes ["wire-shared"],
    ["sink-unreached"], ["defective-track"]). *)

(** {1 Internals exposed for the test harness} *)

val group_by_slot :
  Nanomap_cluster.Cluster.net list ->
  ((int * int) * Nanomap_cluster.Cluster.net list) list
(** Buckets nets into (plane, cycle) timeslots: slots sorted ascending by
    key, nets within a slot in their input order — the routing order is a
    pure function of the net list, independent of hash-table iteration. *)

(** Generation-stamped wavefront scratch: [dist]/[prev] reads outside the
    current search (see {!Scratch.begin_search}) give [infinity]/[-1]
    without any per-search refill. *)
module Scratch : sig
  type t

  val create : int -> t
  val size : t -> int
  val begin_search : t -> unit
  (** Invalidate every cell in O(1). *)

  val dist : t -> int -> float
  val prev : t -> int -> int
  val set : t -> int -> dist:float -> prev:int -> unit
end
