module Arch = Nanomap_arch.Arch
module Defect = Nanomap_arch.Defect
module Place = Nanomap_place.Place

type wire_kind =
  | Direct
  | Len1
  | Len4
  | Global

type node_kind =
  | Src of int
  | Sink of int
  | Pad_src of int
  | Pad_sink of int
  | Wire of wire_kind

let wire_kind_name = function
  | Direct -> "direct"
  | Len1 -> "len1"
  | Len4 -> "len4"
  | Global -> "global"

type caps = {
  direct_tracks : int;
  len1_tracks : int;
  len4_tracks : int;
  global_tracks : int;
}

let default_caps =
  { direct_tracks = 4; len1_tracks = 16; len4_tracks = 4; global_tracks = 4 }

let caps_of_arch (a : Arch.t) =
  { direct_tracks = a.Arch.chan_direct;
    len1_tracks = a.Arch.chan_len1;
    len4_tracks = a.Arch.chan_len4;
    global_tracks = a.Arch.chan_global }

let scale_caps c f =
  { direct_tracks = c.direct_tracks * f;
    len1_tracks = c.len1_tracks * f;
    len4_tracks = c.len4_tracks * f;
    global_tracks = c.global_tracks * f }

type t = {
  num_nodes : int;
  kind : node_kind array;
  delay : float array;
  adj : int list array;
  radj : int list array;
  src_of_smb : int array;
  sink_of_smb : int array;
  src_of_pad : int array;
  sink_of_pad : int array;
  defective : bool array;
  lookahead_cache : (int, float array) Hashtbl.t;
  lookahead_lock : Mutex.t;
}

let cost_eps = 0.01

let base_cost t nd = t.delay.(nd) +. cost_eps

let reverse_adjacency adj =
  let radj = Array.make (Array.length adj) [] in
  Array.iteri (fun u vs -> List.iter (fun v -> radj.(v) <- u :: radj.(v)) vs) adj;
  radj

let make ?defective ~kind ~delay ~adj ~src_of_smb ~sink_of_smb ~src_of_pad
    ~sink_of_pad () =
  let num_nodes = Array.length kind in
  if Array.length delay <> num_nodes || Array.length adj <> num_nodes then
    invalid_arg "Rr_graph.make: kind/delay/adj length mismatch";
  let defective =
    match defective with
    | None -> Array.make num_nodes false
    | Some d ->
      if Array.length d <> num_nodes then
        invalid_arg "Rr_graph.make: defective length mismatch";
      d
  in
  Array.iter
    (List.iter (fun v ->
         if v < 0 || v >= num_nodes then
           invalid_arg "Rr_graph.make: edge target out of range"))
    adj;
  { num_nodes;
    kind;
    delay;
    adj;
    radj = reverse_adjacency adj;
    src_of_smb;
    sink_of_smb;
    src_of_pad;
    sink_of_pad;
    defective;
    lookahead_cache = Hashtbl.create 32;
    lookahead_lock = Mutex.create () }

(* Exact distance-to-sink lower bounds: a backward Dijkstra from [sink]
   over the reversed graph with uncongested base costs. The router's
   congestion cost of a node is [base * (1 + history) * present >= base]
   (history >= 0, present >= 1), so these distances are admissible — and
   consistent — A* heuristics for any congestion state. Cached per sink:
   every net of every PathFinder iteration targeting the same SMB/pad sink
   shares one computation. *)
let compute_lookahead t sink =
    let dist = Array.make t.num_nodes infinity in
    let heap = Nanomap_util.Min_heap.create () in
    dist.(sink) <- 0.0;
    Nanomap_util.Min_heap.push heap 0.0 sink;
    let continue_ = ref true in
    while !continue_ do
      match Nanomap_util.Min_heap.pop heap with
      | None -> continue_ := false
      | Some (d, v) ->
        if d <= dist.(v) then begin
          (* entering [v] on a forward path costs [base_cost v], paid when
             the wavefront relaxes into it *)
          let through = d +. base_cost t v in
          List.iter
            (fun u ->
              if through < dist.(u) then begin
                dist.(u) <- through;
                Nanomap_util.Min_heap.push heap through u
              end)
            t.radj.(v)
        end
    done;
    dist

(* The cache is shared mutable state; routers on different pool domains
   may share one graph, so find/insert run under the lock. The Dijkstra
   itself runs unlocked — a race merely computes the same (deterministic)
   table twice, and the first insertion stays canonical. *)
let lookahead t sink =
  Mutex.lock t.lookahead_lock;
  match Hashtbl.find_opt t.lookahead_cache sink with
  | Some dist ->
    Mutex.unlock t.lookahead_lock;
    dist
  | None ->
    Mutex.unlock t.lookahead_lock;
    let dist = compute_lookahead t sink in
    Mutex.lock t.lookahead_lock;
    let dist =
      match Hashtbl.find_opt t.lookahead_cache sink with
      | Some existing -> existing
      | None ->
        Hashtbl.replace t.lookahead_cache sink dist;
        dist
    in
    Mutex.unlock t.lookahead_lock;
    dist

type builder = {
  kinds : node_kind Nanomap_util.Vec.t;
  delays : float Nanomap_util.Vec.t;
  mutable edges : (int * int) list;
}

let new_node b kind delay =
  let id = Nanomap_util.Vec.push b.kinds kind in
  ignore (Nanomap_util.Vec.push b.delays delay);
  id

let edge b u v = b.edges <- (u, v) :: b.edges

let build ?caps ?(defects = Defect.none) ~arch (pl : Place.t) =
  let caps = match caps with Some c -> c | None -> caps_of_arch arch in
  let w = pl.Place.width and h = pl.Place.height in
  (* Connection-block flexibility: an SMB (or pad) pin touches
     [ceil (fc * W)] of the W length-1 tracks in each bordering channel.
     The window is staggered by the block's index so neighboring blocks
     load different tracks; at fc = 1.0 every track is selected and the
     edge emission order is identical to the pre-Fc construction. *)
  let cb_tracks frac =
    max 1 (min caps.len1_tracks
             (int_of_float (ceil (frac *. float_of_int caps.len1_tracks))))
  in
  let n_in = cb_tracks arch.Arch.fc_in and n_out = cb_tracks arch.Arch.fc_out in
  let in_window ~who ~n t =
    let w = caps.len1_tracks in
    (((t - who) mod w) + w) mod w < n
  in
  (* Switch-block flexibility: at a crossing, incoming track t turns onto
     [ceil (fs / 3)] tracks of each crossing channel (offsets 0, 1, ...).
     fs = 3 is the classic disjoint switch block — one same-index track per
     crossing channel — and reproduces the pre-Fs construction. *)
  let turn_offsets = (arch.Arch.fs + 2) / 3 in
  let b = { kinds = Nanomap_util.Vec.create (); delays = Nanomap_util.Vec.create (); edges = [] } in
  let n_smb = Array.length pl.Place.smb_xy in
  let n_pad = Array.length pl.Place.pad_xy in
  (* SMB occupancy by coordinate *)
  let smb_at = Hashtbl.create 64 in
  Array.iteri (fun s xy -> Hashtbl.replace smb_at xy s) pl.Place.smb_xy;
  let src_of_smb = Array.init n_smb (fun s -> new_node b (Src s) 0.0) in
  let sink_of_smb = Array.init n_smb (fun s -> new_node b (Sink s) 0.0) in
  let src_of_pad = Array.init n_pad (fun p -> new_node b (Pad_src p) 0.0) in
  let sink_of_pad = Array.init n_pad (fun p -> new_node b (Pad_sink p) 0.0) in
  (* --- direct links between adjacent SMBs --- *)
  Array.iteri
    (fun s (x, y) ->
      List.iter
        (fun (nx, ny) ->
          match Hashtbl.find_opt smb_at (nx, ny) with
          | Some s' ->
            for _ = 1 to caps.direct_tracks do
              let d = new_node b (Wire Direct) arch.Arch.t_direct in
              edge b src_of_smb.(s) d;
              edge b d sink_of_smb.(s')
            done
          | None -> ())
        [ (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ])
    pl.Place.smb_xy;
  (* --- length-1 wires ---
     horizontal channel y_ch in 0..h (south of row y_ch), position x,
     track t; vertical channel x_ch in 0..w, position y, track t. *)
  let len1_h = Array.init (h + 1) (fun _ -> Array.make_matrix w caps.len1_tracks (-1)) in
  let len1_v = Array.init (w + 1) (fun _ -> Array.make_matrix h caps.len1_tracks (-1)) in
  for yc = 0 to h do
    for x = 0 to w - 1 do
      for t = 0 to caps.len1_tracks - 1 do
        len1_h.(yc).(x).(t) <- new_node b (Wire Len1) arch.Arch.t_len1
      done
    done
  done;
  for xc = 0 to w do
    for y = 0 to h - 1 do
      for t = 0 to caps.len1_tracks - 1 do
        len1_v.(xc).(y).(t) <- new_node b (Wire Len1) arch.Arch.t_len1
      done
    done
  done;
  (* SMB <-> len1 and len1 adjacency *)
  let connect_smb_to_len1 s (x, y) =
    for t = 0 to caps.len1_tracks - 1 do
      (* channels north (y) and south (y+1)? channel yc sits below row yc:
         row y borders channels y (south) and y+1 (north) *)
      List.iter
        (fun wire ->
          if in_window ~who:s ~n:n_out t then edge b src_of_smb.(s) wire;
          if in_window ~who:s ~n:n_in t then edge b wire sink_of_smb.(s))
        [ len1_h.(y).(x).(t); len1_h.(y + 1).(x).(t);
          len1_v.(x).(y).(t); len1_v.(x + 1).(y).(t) ]
    done
  in
  Array.iteri (fun s xy -> connect_smb_to_len1 s xy) pl.Place.smb_xy;
  (* wire-to-wire: same track continues straight; turns at crossings *)
  for yc = 0 to h do
    for x = 0 to w - 1 do
      for t = 0 to caps.len1_tracks - 1 do
        let me = len1_h.(yc).(x).(t) in
        if x + 1 < w then begin
          edge b me len1_h.(yc).(x + 1).(t);
          edge b len1_h.(yc).(x + 1).(t) me
        end;
        (* turns: vertical channels x and x+1 at rows yc-1 / yc *)
        List.iter
          (fun (xc, y) ->
            if xc >= 0 && xc <= w && y >= 0 && y < h then
              for o = 0 to turn_offsets - 1 do
                let v = len1_v.(xc).(y).((t + o) mod caps.len1_tracks) in
                edge b me v;
                edge b v me
              done)
          [ (x, yc - 1); (x, yc); (x + 1, yc - 1); (x + 1, yc) ]
      done
    done
  done;
  for xc = 0 to w do
    for y = 0 to h - 1 do
      for t = 0 to caps.len1_tracks - 1 do
        let me = len1_v.(xc).(y).(t) in
        if y + 1 < h then begin
          edge b me len1_v.(xc).(y + 1).(t);
          edge b len1_v.(xc).(y + 1).(t) me
        end
      done
    done
  done;
  (* --- length-4 wires: horizontal spans, endpoints tied into len1 --- *)
  if w >= 4 then
    for yc = 0 to h do
      let x0 = ref 0 in
      while !x0 + 3 <= w - 1 do
        for t = 0 to caps.len4_tracks - 1 do
          let wire = new_node b (Wire Len4) arch.Arch.t_len4 in
          for x = !x0 to !x0 + 3 do
            (* sinks + sources along the span (both rows bordering channel) *)
            List.iter
              (fun row ->
                match Hashtbl.find_opt smb_at (x, row) with
                | Some s ->
                  edge b src_of_smb.(s) wire;
                  edge b wire sink_of_smb.(s)
                | None -> ())
              [ yc - 1; yc ]
          done;
          (* endpoints into len1 of the same channel *)
          let t1 = t mod caps.len1_tracks in
          edge b wire len1_h.(yc).(!x0).(t1);
          edge b len1_h.(yc).(!x0).(t1) wire;
          edge b wire len1_h.(yc).(!x0 + 3).(t1);
          edge b len1_h.(yc).(!x0 + 3).(t1) wire
        done;
        x0 := !x0 + 4
      done
    done;
  (* --- global row/column lines --- *)
  let grow_ = Array.make_matrix h caps.global_tracks (-1) in
  let gcol = Array.make_matrix w caps.global_tracks (-1) in
  for y = 0 to h - 1 do
    for t = 0 to caps.global_tracks - 1 do
      grow_.(y).(t) <- new_node b (Wire Global) arch.Arch.t_global
    done
  done;
  for x = 0 to w - 1 do
    for t = 0 to caps.global_tracks - 1 do
      gcol.(x).(t) <- new_node b (Wire Global) arch.Arch.t_global
    done
  done;
  Array.iteri
    (fun s (x, y) ->
      for t = 0 to caps.global_tracks - 1 do
        edge b src_of_smb.(s) grow_.(y).(t);
        edge b grow_.(y).(t) sink_of_smb.(s);
        edge b src_of_smb.(s) gcol.(x).(t);
        edge b gcol.(x).(t) sink_of_smb.(s)
      done)
    pl.Place.smb_xy;
  (* row-column transitions for full reachability *)
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      for t = 0 to caps.global_tracks - 1 do
        edge b grow_.(y).(t) gcol.(x).(t);
        edge b gcol.(x).(t) grow_.(y).(t)
      done
    done
  done;
  (* --- pads --- *)
  Array.iteri
    (fun p (px, py) ->
      (* nearest in-grid coordinate and bordering channel *)
      let x = max 0 (min (w - 1) px) and y = max 0 (min (h - 1) py) in
      for t = 0 to caps.global_tracks - 1 do
        edge b src_of_pad.(p) grow_.(y).(t);
        edge b grow_.(y).(t) sink_of_pad.(p);
        edge b src_of_pad.(p) gcol.(x).(t);
        edge b gcol.(x).(t) sink_of_pad.(p)
      done;
      for t = 0 to caps.len1_tracks - 1 do
        (* the channel that runs along the pad's border *)
        let wires =
          if py = -1 then [ len1_h.(0).(x).(t) ]
          else if py = h then [ len1_h.(h).(x).(t) ]
          else if px = -1 then [ len1_v.(0).(y).(t) ]
          else [ len1_v.(w).(y).(t) ]
        in
        List.iter
          (fun wire ->
            if in_window ~who:p ~n:n_out t then edge b src_of_pad.(p) wire;
            if in_window ~who:p ~n:n_in t then edge b wire sink_of_pad.(p))
          wires
      done;
      (* direct hop to the adjacent SMB if present *)
      match Hashtbl.find_opt smb_at (x, y) with
      | Some s ->
        let d1 = new_node b (Wire Direct) arch.Arch.t_direct in
        edge b src_of_pad.(p) d1;
        edge b d1 sink_of_smb.(s);
        let d2 = new_node b (Wire Direct) arch.Arch.t_direct in
        edge b src_of_smb.(s) d2;
        edge b d2 sink_of_pad.(p)
      | None -> ())
    pl.Place.pad_xy;
  let num_nodes = Nanomap_util.Vec.length b.kinds in
  let kind = Nanomap_util.Vec.to_array b.kinds in
  (* Known-bad wire segments: defects name them (kind, ordinal), where the
     ordinal counts nodes of that wire kind in this deterministic
     construction order. Mark them, then drop every edge touching one, so
     the router simply never sees a defective track. *)
  let defective = Array.make num_nodes false in
  if defects.Defect.tracks <> [] then begin
    let want = Hashtbl.create 16 in
    List.iter (fun (k, o) -> Hashtbl.replace want (k, o) ()) defects.Defect.tracks;
    let counters = Hashtbl.create 4 in
    Array.iteri
      (fun id k ->
        match k with
        | Wire wk ->
          let name = wire_kind_name wk in
          let ord = Option.value ~default:0 (Hashtbl.find_opt counters name) in
          Hashtbl.replace counters name (ord + 1);
          if Hashtbl.mem want (name, ord) then defective.(id) <- true
        | _ -> ())
      kind
  end;
  let edges =
    if defects.Defect.tracks = [] then b.edges
    else List.filter (fun (u, v) -> not (defective.(u) || defective.(v))) b.edges
  in
  let adj = Array.make num_nodes [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  make ~defective ~kind
    ~delay:(Nanomap_util.Vec.to_array b.delays)
    ~adj ~src_of_smb ~sink_of_smb ~src_of_pad ~sink_of_pad ()

let stats t =
  let count pred = Array.fold_left (fun acc k -> if pred k then acc + 1 else acc) 0 t.kind in
  [ ("nodes", t.num_nodes);
    ("direct", count (function Wire Direct -> true | _ -> false));
    ("len1", count (function Wire Len1 -> true | _ -> false));
    ("len4", count (function Wire Len4 -> true | _ -> false));
    ("global", count (function Wire Global -> true | _ -> false)) ]
