(** Routing-resource graph for the NATURE island fabric.

    Nodes model the four interconnect types of the architecture (Section
    4.4): direct links between adjacent SMBs, length-1 and length-4 wire
    segments in the channels, and global row/column lines; plus logical
    source/sink nodes per SMB and per I/O pad. Congestion lives on nodes
    (every wire node has unit capacity; there are [len1_tracks] /
    [len4_tracks] / [global_tracks] parallel nodes per channel position),
    which is the PathFinder formulation. *)

type wire_kind =
  | Direct
  | Len1
  | Len4
  | Global

type node_kind =
  | Src of int              (** SMB output *)
  | Sink of int             (** SMB input *)
  | Pad_src of int
  | Pad_sink of int
  | Wire of wire_kind

val wire_kind_name : wire_kind -> string
(** ["direct"], ["len1"], ["len4"] or ["global"] — the names used by defect
    maps ({!Nanomap_arch.Defect}). *)

type caps = {
  direct_tracks : int;      (** parallel direct wires per adjacent SMB pair *)
  len1_tracks : int;        (** per channel position and direction *)
  len4_tracks : int;
  global_tracks : int;      (** per row and per column *)
}

val scale_caps : caps -> int -> caps
(** Multiply every track count (used by the minimum-channel-width search). *)

val default_caps : caps
(** The paper instance's channel widths — equal to
    [caps_of_arch Nanomap_arch.Arch.default]. *)

val caps_of_arch : Nanomap_arch.Arch.t -> caps
(** Track counts from the architecture's [chan_*] knobs. *)

type t = {
  num_nodes : int;
  kind : node_kind array;
  delay : float array;      (** traversal delay of each node, ns *)
  adj : int list array;     (** directed edges *)
  radj : int list array;    (** reversed edges (for the sink lookahead) *)
  src_of_smb : int array;
  sink_of_smb : int array;
  src_of_pad : int array;
  sink_of_pad : int array;
  defective : bool array;   (** known-bad nodes from the defect map; they
                                keep their ids but have no edges *)
  lookahead_cache : (int, float array) Hashtbl.t;
                            (** sink node -> per-node lower bounds; filled
                                lazily by {!lookahead} *)
  lookahead_lock : Mutex.t; (** guards {!field-lookahead_cache} so routers
                                on different pool domains can share one
                                graph *)
}

val build :
  ?caps:caps ->
  ?defects:Nanomap_arch.Defect.t ->
  arch:Nanomap_arch.Arch.t ->
  Nanomap_place.Place.t ->
  t
(** Builds the graph for the placement's grid and pad ring. [caps] defaults
    to [caps_of_arch arch]; the architecture's switch-block flexibility
    [fs] (each length-1 track turns onto [ceil (fs / 3)] tracks of every
    crossing channel; 3 = the disjoint switch block) and connection-block
    flexibilities [fc_in]/[fc_out] (each SMB/pad pin touches
    [ceil (fc * W)] of the W adjacent length-1 tracks, staggered by block
    index) shape the connectivity. [defects]
    (default {!Nanomap_arch.Defect.none}) names broken wire segments as
    [(kind, ordinal)] pairs, the ordinal counting nodes of that wire kind in
    the deterministic construction order; defective nodes are marked in
    {!field-defective} and every edge touching one is dropped, so routing
    transparently avoids them. *)

val make :
  ?defective:bool array ->
  kind:node_kind array ->
  delay:float array ->
  adj:int list array ->
  src_of_smb:int array ->
  sink_of_smb:int array ->
  src_of_pad:int array ->
  sink_of_pad:int array ->
  unit ->
  t
(** Assemble a graph from explicit arrays — the reverse adjacency and an
    empty lookahead cache are derived. Used by {!build} and by tests that
    hand-craft small graphs. Raises [Invalid_argument] on mismatched
    lengths or out-of-range edges. *)

val cost_eps : float
(** The ε added to every node delay in routing costs, so zero-delay nodes
    still cost something and hop counts break delay ties. *)

val base_cost : t -> int -> float
(** [delay + cost_eps]: the uncongested cost of entering a node. The
    router's congested node cost is always ≥ this (history ≥ 0 and
    present-sharing ≥ 1 only multiply it up). *)

val lookahead : t -> int -> float array
(** [lookahead g sink] is the exact base-cost distance from every node to
    [sink] ([infinity] where the sink is unreachable), computed by one
    backward Dijkstra over {!field-radj} and cached in the graph. Because
    congested costs never drop below {!base_cost}, this is an admissible
    and consistent A* heuristic for any congestion state. *)

val stats : t -> (string * int) list
(** Node counts by kind. *)
