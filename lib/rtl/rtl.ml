module Vec = Nanomap_util.Vec
module Truth_table = Nanomap_logic.Truth_table

type id = int

type op =
  | Add of id * id
  | Sub of id * id
  | Mult of id * id
  | Eq of id * id
  | Lt of id * id
  | Bit_and of id * id
  | Bit_or of id * id
  | Bit_xor of id * id
  | Bit_not of id
  | Mux of id * id * id
  | Slice of id * int
  | Concat of id * id
  | Table of Truth_table.t * id list

type driver =
  | Input
  | Const_driver of int
  | Register of { d : id; init : int }
  | Comb of op

type signal = {
  id : id;
  name : string;
  width : int;
  driver : driver;
}

type t = {
  design_name : string;
  signals : signal Vec.t;
  mutable outputs_rev : (string * id) list;
}

let create design_name = { design_name; signals = Vec.create (); outputs_rev = [] }

let name t = t.design_name

let num_signals t = Vec.length t.signals

let signal t id = Vec.get t.signals id

let check_id t id =
  if id < 0 || id >= num_signals t then invalid_arg "Rtl: undefined signal"

let width_of t id = (signal t id).width

let add_signal t name width driver =
  if width < 1 || width > 48 then invalid_arg "Rtl: width must be in 1..48";
  let id = Vec.length t.signals in
  ignore (Vec.push t.signals { id; name; width; driver });
  id

let add_input t name width = add_signal t name width Input

let add_const t ?name ~width value =
  if value < 0 || value lsr width <> 0 then invalid_arg "Rtl.add_const: value too wide";
  let name = Option.value name ~default:(Printf.sprintf "const%d_w%d" value width) in
  add_signal t name width (Const_driver value)

let op_inputs = function
  | Add (a, b) | Sub (a, b) | Mult (a, b) | Eq (a, b) | Lt (a, b)
  | Bit_and (a, b) | Bit_or (a, b) | Bit_xor (a, b) | Concat (a, b) -> [ a; b ]
  | Bit_not a | Slice (a, _) -> [ a ]
  | Mux (s, a, b) -> [ s; a; b ]
  | Table (_, args) -> args

let check_op t ~width op =
  List.iter (check_id t) (op_inputs op);
  let w = width_of t in
  let expect cond = if not cond then invalid_arg "Rtl.add_op: width mismatch" in
  match op with
  | Add (a, b) | Sub (a, b) | Bit_and (a, b) | Bit_or (a, b) | Bit_xor (a, b) ->
    expect (w a = width && w b = width)
  | Mult (a, b) -> expect (width = w a + w b)
  | Eq (a, b) | Lt (a, b) -> expect (width = 1 && w a = w b)
  | Bit_not a -> expect (w a = width)
  | Mux (s, a, b) -> expect (w s = 1 && w a = width && w b = width)
  | Slice (a, lo) -> expect (lo >= 0 && lo + width <= w a)
  | Concat (a, b) -> expect (width = w a + w b)
  | Table (tt, args) ->
    expect (width = 1);
    expect (Truth_table.arity tt = List.length args);
    List.iter (fun a -> expect (w a = 1)) args

(* The default name is derived from the design-local signal id, never from
   process-global state: two builds of the same design must be
   byte-identical (names reach the gate netlist, the LUT-network
   fingerprint and the content hash of the compile-service cache). *)
let add_op t ?name ~width op =
  check_op t ~width op;
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "w%d" (Vec.length t.signals)
  in
  add_signal t name width (Comb op)

let add_register t ?(init = 0) ~name ~width () =
  add_signal t name width (Register { d = -1; init })

let connect_register t id ~d =
  check_id t id;
  check_id t d;
  let s = signal t id in
  match s.driver with
  | Register { d = -1; init } ->
    if width_of t d <> s.width then invalid_arg "Rtl.connect_register: width mismatch";
    Vec.set t.signals id { s with driver = Register { d; init } }
  | Register _ -> invalid_arg "Rtl.connect_register: already connected"
  | Input | Const_driver _ | Comb _ -> invalid_arg "Rtl.connect_register: not a register"

let mark_output t name id =
  check_id t id;
  if List.mem_assoc name t.outputs_rev then
    invalid_arg ("Rtl.mark_output: duplicate output " ^ name);
  t.outputs_rev <- (name, id) :: t.outputs_rev

let iter_signals f t = Vec.iter f t.signals

let inputs t =
  Vec.fold (fun acc s -> match s.driver with Input -> s :: acc | _ -> acc) [] t.signals
  |> List.rev

let registers t =
  Vec.fold
    (fun acc s -> match s.driver with Register _ -> s :: acc | _ -> acc)
    [] t.signals
  |> List.rev

let outputs t = List.rev t.outputs_rev

(* Combinational topological order (registers, inputs and constants are
   sources). Raises on cycles or unconnected registers. *)
let comb_topo t =
  let n = num_signals t in
  let state = Array.make n 0 in (* 0 unvisited, 1 visiting, 2 done *)
  let order = ref [] in
  let rec visit id =
    let s = signal t id in
    match s.driver with
    | Input | Const_driver _ -> ()
    | Register { d; _ } ->
      if d = -1 then failwith ("Rtl: unconnected register " ^ s.name)
    | Comb op ->
      (match state.(id) with
       | 2 -> ()
       | 1 -> failwith ("Rtl: combinational cycle through " ^ s.name)
       | _ ->
         state.(id) <- 1;
         List.iter visit (op_inputs op);
         state.(id) <- 2;
         order := id :: !order)
  in
  for id = 0 to n - 1 do visit id done;
  List.rev !order

let validate t = ignore (comb_topo t)

let comb_order = comb_topo

type sim = {
  design : t;
  values : int array;
  order : id list;
  input_index : (string, id) Hashtbl.t;
}

let mask w = (1 lsl w) - 1

let sim_create design =
  let order = comb_topo design in
  let values = Array.make (num_signals design) 0 in
  iter_signals
    (fun s ->
      match s.driver with
      | Register { init; _ } -> values.(s.id) <- init land mask s.width
      | Const_driver v -> values.(s.id) <- v
      | Input | Comb _ -> ())
    design;
  let input_index = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace input_index s.name s.id) (inputs design);
  { design; values; order; input_index }

let eval_op sim ~width op =
  let v id = sim.values.(id) in
  let m = mask width in
  match op with
  | Add (a, b) -> (v a + v b) land m
  | Sub (a, b) -> (v a - v b) land m
  | Mult (a, b) -> (v a * v b) land m
  | Eq (a, b) -> if v a = v b then 1 else 0
  | Lt (a, b) -> if v a < v b then 1 else 0
  | Bit_and (a, b) -> v a land v b
  | Bit_or (a, b) -> v a lor v b
  | Bit_xor (a, b) -> v a lxor v b
  | Bit_not a -> lnot (v a) land m
  | Mux (s, a, b) -> if v s = 1 then v b else v a
  | Slice (a, lo) -> (v a lsr lo) land m
  | Concat (a, b) ->
    let wa = (signal sim.design a).width in
    v a lor (v b lsl wa)
  | Table (tt, args) ->
    let bools = Array.of_list (List.map (fun a -> v a = 1) args) in
    if Truth_table.eval tt bools then 1 else 0

let sim_cycle sim ins =
  List.iter
    (fun (name, value) ->
      match Hashtbl.find_opt sim.input_index name with
      | Some id -> sim.values.(id) <- value land mask (width_of sim.design id)
      | None -> invalid_arg ("Rtl.sim_cycle: no input " ^ name))
    ins;
  List.iter
    (fun id ->
      match (signal sim.design id).driver with
      | Comb op -> sim.values.(id) <- eval_op sim ~width:(width_of sim.design id) op
      | Input | Const_driver _ | Register _ -> assert false)
    sim.order;
  let outs =
    List.map (fun (name, id) -> (name, sim.values.(id))) (outputs sim.design)
  in
  (* Clock edge: all registers latch simultaneously. *)
  let next =
    List.filter_map
      (fun s ->
        match s.driver with
        | Register { d; _ } -> Some (s.id, sim.values.(d) land mask s.width)
        | Input | Const_driver _ | Comb _ -> None)
      (registers sim.design)
  in
  List.iter (fun (id, value) -> sim.values.(id) <- value) next;
  outs

let sim_peek sim id = sim.values.(id)
