module Codec = Nanomap_flow.Codec
module Json = Nanomap_util.Json

type entry = {
  artifact : Codec.artifact;
  mutable last_use : int;
}

type t = {
  dir : string option;
  max_entries : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(max_entries = 256) () =
  Option.iter mkdir_p dir;
  { dir;
    max_entries = max 1 max_entries;
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let entry_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2))
    (String.sub key 2 (String.length key - 2) ^ ".json")

let evict_past_bound t =
  while Hashtbl.length t.table > t.max_entries do
    (* O(n) minimum scan: the bound is small (hundreds), evictions are
       rare relative to lookups, and a scan needs no auxiliary order
       structure to keep consistent. *)
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some (key, e.last_use))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

let insert t key artifact =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key { artifact; last_use = t.tick };
  evict_past_bound t

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> None
    | text -> (
      match Result.bind (Json.parse text) Codec.artifact_of_json with
      | Ok artifact -> Some artifact
      | Error _ -> None))

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.artifact
  | None -> (
    match disk_find t key with
    | Some artifact ->
      t.hits <- t.hits + 1;
      insert t key artifact;
      Some artifact
    | None ->
      t.misses <- t.misses + 1;
      None)

let disk_store t key artifact =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir key in
    mkdir_p (Filename.dirname path);
    let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc
          (Json.to_string (Codec.artifact_to_json artifact)));
    Sys.rename tmp path

let store t key artifact =
  insert t key artifact;
  disk_store t key artifact

let mem_entries t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let dir t = t.dir
