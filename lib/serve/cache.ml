module Codec = Nanomap_flow.Codec
module Json = Nanomap_util.Json
module Hashing = Nanomap_util.Hashing
module Telemetry = Nanomap_util.Telemetry

let c_scrubbed = Telemetry.counter "cache.scrubbed"
let c_corrupt = Telemetry.counter "cache.corrupt"

type entry = {
  artifact : Codec.artifact;
  mutable last_use : int;
}

type verify_report = {
  checked : int;
  ok : int;
  corrupt : int;
  removed : int;
}

type t = {
  dir : string option;
  max_entries : int;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable scrubbed : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let entry_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2))
    (String.sub key 2 (String.length key - 2) ^ ".json")

(* Entries and orphaned temp files all live one shard-directory deep
   ([dir/k0k1/...]); the walk visits the top level too so a temp file
   stranded mid-[mkdir_p] is still found. *)
let iter_files dir f =
  (* non-raising: a path can vanish between readdir and the check (the
     callback itself deletes files) *)
  let is_dir path = try Sys.is_directory path with Sys_error _ -> false in
  let in_dir d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
      Array.sort compare names;
      Array.iter
        (fun name ->
          let path = Filename.concat d name in
          if Sys.file_exists path && not (is_dir path) then f path)
        names
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.sort compare names;
    in_dir dir;
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        if is_dir path then in_dir path)
      names

let is_tmp path =
  (* Temp names are [<entry>.json.tmp.<pid>.<n>]; match on the marker so
     a rename that died between pid and counter is still scrubbed. *)
  let base = Filename.basename path in
  let marker = ".tmp." in
  let bl = String.length base and ml = String.length marker in
  let rec scan i = i + ml <= bl && (String.sub base i ml = marker || scan (i + 1)) in
  scan 0

(* An interrupted write can leave a [.tmp] file forever (the rename never
   happened); an interrupted rename cannot leave a partial entry, but a
   torn page under a crashed filesystem can. Scrubbing the former is
   cheap and runs at startup; the latter is what the per-entry digest
   catches on read. *)
let scrub_dir t =
  match t.dir with
  | None -> 0
  | Some dir ->
    let n = ref 0 in
    iter_files dir (fun path ->
        if is_tmp path then begin
          (try Sys.remove path with Sys_error _ -> ());
          incr n
        end);
    t.scrubbed <- t.scrubbed + !n;
    Telemetry.add c_scrubbed !n;
    !n

let create ?dir ?(max_entries = 256) () =
  Option.iter mkdir_p dir;
  let t =
    { dir;
      max_entries = max 1 max_entries;
      table = Hashtbl.create 64;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      corrupt = 0;
      scrubbed = 0 }
  in
  ignore (scrub_dir t);
  t

let scrub t = scrub_dir t

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let evict_past_bound t =
  while Hashtbl.length t.table > t.max_entries do
    (* O(n) minimum scan: the bound is small (hundreds), evictions are
       rare relative to lookups, and a scan needs no auxiliary order
       structure to keep consistent. *)
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, age) when age <= e.last_use -> ()
        | _ -> victim := Some (key, e.last_use))
      t.table;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

let insert t key artifact =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key { artifact; last_use = t.tick };
  evict_past_bound t

(* On-disk entry envelope: the artifact JSON plus a digest of its exact
   serialized bytes. The digest is what distinguishes "half a file after
   a crash" or "bit rot" from a real entry — a bare parse success is not
   enough, a truncated JSON list can still parse. *)
let wrap_artifact artifact =
  let body = Json.to_string (Codec.artifact_to_json artifact) in
  Json.Obj
    [ ("v", Json.Int 1);
      ("digest", Json.String (Hashing.digest_hex body));
      ("artifact", Codec.artifact_to_json artifact) ]

let unwrap_entry text =
  match Json.parse text with
  | Error _ -> None
  | Ok j -> (
    match
      ( Option.bind (Json.member "digest" j) Json.to_str,
        Json.member "artifact" j )
    with
    | Some digest, Some aj
      when String.equal digest (Hashing.digest_hex (Json.to_string aj)) -> (
      match Codec.artifact_of_json aj with
      | Ok artifact -> Some artifact
      | Error _ -> None)
    | _ -> None)

let count_corrupt t path =
  t.corrupt <- t.corrupt + 1;
  Telemetry.incr c_corrupt;
  try Sys.remove path with Sys_error _ -> ()

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> None
    | text -> (
      match unwrap_entry text with
      | Some artifact -> Some artifact
      | None ->
        (* Quarantine by deletion: the next miss recomputes and
           overwrites, so a damaged entry can never be served twice. *)
        count_corrupt t path;
        None))

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.artifact
  | None -> (
    match disk_find t key with
    | Some artifact ->
      t.hits <- t.hits + 1;
      insert t key artifact;
      Some artifact
    | None ->
      t.misses <- t.misses + 1;
      None)

let tmp_seq = Atomic.make 0

let disk_store t key artifact =
  match t.dir with
  | None -> ()
  | Some dir ->
    let path = entry_path dir key in
    mkdir_p (Filename.dirname path);
    (* pid + process-wide sequence number: unique even when several
       worker domains store under the same key concurrently. *)
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    (try
       Out_channel.with_open_bin tmp (fun oc ->
           Out_channel.output_string oc (Json.to_string (wrap_artifact artifact)));
       Sys.rename tmp path
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

let store t key artifact =
  insert t key artifact;
  disk_store t key artifact

let verify t =
  match t.dir with
  | None -> { checked = 0; ok = 0; corrupt = 0; removed = 0 }
  | Some dir ->
    let checked = ref 0 and ok = ref 0 and bad = ref 0 in
    iter_files dir (fun path ->
        if (not (is_tmp path)) && Filename.check_suffix path ".json" then begin
          incr checked;
          let good =
            match In_channel.with_open_bin path In_channel.input_all with
            | exception Sys_error _ -> false
            | text -> Option.is_some (unwrap_entry text)
          in
          if good then incr ok
          else begin
            count_corrupt t path;
            incr bad
          end
        end);
    { checked = !checked; ok = !ok; corrupt = !bad; removed = !bad }

let mem_entries t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let corrupt t = t.corrupt
let scrubbed t = t.scrubbed
let dir t = t.dir
