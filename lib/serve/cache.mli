(** The content-addressed artifact cache.

    Keys are {!Nanomap_flow.Codec.content_key} digests (32 lowercase hex
    characters); values are finished {!Nanomap_flow.Codec.artifact}s. Two
    tiers:

    - an in-memory index, bounded by [max_entries] with least-recently-used
      eviction (both hits and stores refresh recency), so a long-lived
      daemon's footprint stays flat under churn;
    - an optional on-disk tier under [dir], content-addressed as
      [dir/k0k1/k2..k31.json] (the artifact's canonical JSON, written to a
      temp file and renamed so readers never observe a partial entry).
      Disk entries survive daemon restarts and are promoted back into
      memory on first use; the disk tier is never evicted by this process.

    A corrupt disk entry (failed parse, key mismatch) is treated as a
    miss — the cache re-computes and overwrites, it never propagates a
    damaged artifact. *)

module Codec = Nanomap_flow.Codec

type t

val create : ?dir:string -> ?max_entries:int -> unit -> t
(** [max_entries] bounds the memory tier (default 256; values < 1 clamp
    to 1). [dir] enables the disk tier (created if missing). *)

val find : t -> string -> Codec.artifact option
(** Memory first, then disk (promoting into memory). Counts one hit or
    one miss. *)

val store : t -> string -> Codec.artifact -> unit
(** Insert into memory (evicting the least recently used entry past the
    bound) and, when configured, write through to disk atomically. *)

val mem_entries : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val dir : t -> string option
