(** The content-addressed artifact cache.

    Keys are {!Nanomap_flow.Codec.content_key} digests (32 lowercase hex
    characters); values are finished {!Nanomap_flow.Codec.artifact}s. Two
    tiers:

    - an in-memory index, bounded by [max_entries] with least-recently-used
      eviction (both hits and stores refresh recency), so a long-lived
      daemon's footprint stays flat under churn;
    - an optional on-disk tier under [dir], content-addressed as
      [dir/k0k1/k2..k31.json]. Disk entries survive daemon restarts and
      are promoted back into memory on first use; the disk tier is never
      evicted by this process.

    {2 Crash safety}

    The disk tier assumes it can be killed at any instruction:

    - writes go to a uniquely-named temp file (pid + sequence number) and
      are renamed into place, so readers never observe a partial entry;
      a write that raises removes its temp file;
    - every entry embeds an MD5 digest of the artifact's canonical JSON.
      A read that fails the digest (torn write, bit rot, truncation — a
      truncated JSON can still parse) deletes the file, counts one
      {!corrupt}, and reports a miss, so a damaged artifact is never
      served and never inspected twice;
    - {!create} scrubs temp files orphaned by a previous crash (counted
      in {!scrubbed} and the process-global [cache.scrubbed] telemetry
      counter);
    - {!verify} sweeps the whole tier on demand ([nanomap cache-check]). *)

module Codec = Nanomap_flow.Codec

type t

type verify_report = {
  checked : int;   (** entries examined *)
  ok : int;        (** parsed and digest-verified *)
  corrupt : int;   (** failed parse, digest or decode *)
  removed : int;   (** corrupt entries deleted (= [corrupt]) *)
}

val create : ?dir:string -> ?max_entries:int -> unit -> t
(** [max_entries] bounds the memory tier (default 256; values < 1 clamp
    to 1). [dir] enables the disk tier (created if missing) and scrubs
    any temp files a crashed writer left behind. *)

val find : t -> string -> Codec.artifact option
(** Memory first, then disk (promoting into memory). Counts one hit or
    one miss; a disk entry failing integrity verification is deleted,
    counted in {!corrupt}, and reported as a miss. *)

val store : t -> string -> Codec.artifact -> unit
(** Insert into memory (evicting the least recently used entry past the
    bound) and, when configured, write through to disk atomically
    (digest-wrapped, temp file + rename). *)

val scrub : t -> int
(** Remove orphaned temp files under the disk tier, returning how many
    were deleted. Idempotent; already run once by {!create}. *)

val verify : t -> verify_report
(** Integrity sweep of the entire disk tier: re-read every entry, check
    its digest, decode its artifact; delete (and count) anything that
    fails. No-op report when there is no disk tier. *)

val entry_path : string -> string -> string
(** [entry_path dir key] is the on-disk location of [key]'s entry —
    exposed so the chaos harness and tests can corrupt exactly the right
    file without re-deriving the layout. *)

val mem_entries : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val corrupt : t -> int
(** Disk entries that failed integrity verification (and were removed)
    over this cache's lifetime, from both reads and {!verify} sweeps. *)

val scrubbed : t -> int
(** Orphaned temp files removed over this cache's lifetime. *)

val dir : t -> string option
