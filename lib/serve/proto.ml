module Json = Nanomap_util.Json
module Diag = Nanomap_util.Diag
module Codec = Nanomap_flow.Codec
module Flow = Nanomap_flow.Flow
module Arch = Nanomap_arch.Arch

let stage = "serve"

type design_src =
  | Rtl_text of string
  | Circuit of string

type job = {
  id : string;
  design : design_src;
  arch : Arch.t;
  options : Flow.options;
  deadline_ms : int option;
}

type request =
  | Job of job
  | Ping
  | Stats_req
  | Shutdown

type stats = {
  jobs_done : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  uptime_s : int;
  timeouts : int;
  shed : int;
  drained : int;
  slow_reader_disconnects : int;
  cache_scrubbed : int;
  cache_corrupt : int;
  rejected : (string * int) list;
}

type response =
  | Event of { id : string; stage_name : string; ms : float }
  | Result of { id : string; key : string; cached : bool; artifact : Codec.artifact }
  | Error_resp of { id : string option; diag : Diag.t }
  | Pong
  | Stats_resp of stats
  | Bye

(* ----------------------------------------------------------- rejections *)

let bad_json detail =
  Diag.make ~stage ~code:"bad-json" ~context:[ ("detail", detail) ]
    "request line is not valid JSON"

let bad_request detail =
  Diag.make ~stage ~code:"bad-request" ~context:[ ("detail", detail) ]
    "request JSON has the wrong shape"

let oversized ~limit n =
  Diag.make ~stage ~code:"oversized"
    ~context:[ ("bytes", string_of_int n); ("limit", string_of_int limit) ]
    "request line exceeds the frame size bound"

let truncated n =
  Diag.make ~stage ~code:"truncated" ~context:[ ("bytes", string_of_int n) ]
    "connection closed in the middle of a request line"

let bad_design detail =
  Diag.make ~stage ~code:"bad-design" ~context:[ ("detail", detail) ]
    "job design cannot be resolved"

let overloaded ~queued ~limit ~retry_after_ms =
  Diag.make ~stage ~code:"overloaded"
    ~context:
      [ ("queued", string_of_int queued);
        ("limit", string_of_int limit);
        ("retry_after_ms", string_of_int retry_after_ms) ]
    "admission queue is full; back off and retry"

let draining =
  Diag.make ~stage ~code:"draining"
    "daemon is draining: in-flight jobs finish, new jobs are rejected"

let unreachable ~addr detail =
  Diag.make ~stage ~code:"unreachable"
    ~context:[ ("socket", addr); ("detail", detail) ]
    "compile daemon is not reachable at the socket"

let retry_after_ms (d : Diag.t) =
  if d.Diag.stage = stage && d.Diag.code = "overloaded" then
    Option.bind (List.assoc_opt "retry_after_ms" d.Diag.context) int_of_string_opt
  else None

(* ------------------------------------------------------------- decoding *)

let request_of_frame line =
  match Json.parse line with
  | Error e -> Error (bad_json e)
  | Ok j -> (
    match Option.bind (Json.member "type" j) Json.to_str with
    | None -> Error (bad_request "missing \"type\" member")
    | Some "ping" -> Ok Ping
    | Some "stats" -> Ok Stats_req
    | Some "shutdown" -> Ok Shutdown
    | Some "job" -> (
      match Option.bind (Json.member "id" j) Json.to_str with
      | None -> Error (bad_request "job without string \"id\"")
      | Some id -> (
        let design =
          match Json.member "design" j with
          | None -> Error "job without \"design\""
          | Some d -> (
            match Option.bind (Json.member "kind" d) Json.to_str with
            | Some "rtl" -> (
              match Option.bind (Json.member "text" d) Json.to_str with
              | Some t -> Ok (Rtl_text t)
              | None -> Error "design kind rtl without string \"text\"")
            | Some "circuit" -> (
              match Option.bind (Json.member "name" d) Json.to_str with
              | Some n -> Ok (Circuit n)
              | None -> Error "design kind circuit without string \"name\"")
            | Some k -> Error ("unknown design kind " ^ k)
            | None -> Error "design without \"kind\"")
        in
        match design with
        | Error detail -> Error (bad_request detail)
        | Ok design -> (
          let arch =
            match Json.member "arch" j with
            | None | Some Json.Null -> Ok Arch.default
            | Some a -> Codec.arch_of_json a
          in
          let options =
            match Json.member "options" j with
            | None | Some Json.Null -> Ok Flow.default_options
            | Some o -> Codec.options_of_json o
          in
          let deadline_ms =
            match Json.member "deadline_ms" j with
            | None | Some Json.Null -> Ok None
            | Some v -> (
              match Json.to_int v with
              | Some ms when ms > 0 -> Ok (Some ms)
              | Some _ -> Error "deadline_ms must be positive"
              | None -> Error "deadline_ms must be an integer")
          in
          match arch, options, deadline_ms with
          | Error e, _, _ -> Error (bad_request ("arch: " ^ e))
          | _, Error e, _ -> Error (bad_request ("options: " ^ e))
          | _, _, Error e -> Error (bad_request e)
          | Ok arch, Ok options, Ok deadline_ms ->
            Ok (Job { id; design; arch; options; deadline_ms }))))
    | Some t -> Error (bad_request ("unknown request type " ^ t)))

(* ------------------------------------------------------------- encoding *)

let design_to_json = function
  | Rtl_text t ->
    Json.Obj [ ("kind", Json.String "rtl"); ("text", Json.String t) ]
  | Circuit n ->
    Json.Obj [ ("kind", Json.String "circuit"); ("name", Json.String n) ]

let request_to_json = function
  | Ping -> Json.Obj [ ("type", Json.String "ping") ]
  | Stats_req -> Json.Obj [ ("type", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("type", Json.String "shutdown") ]
  | Job { id; design; arch; options; deadline_ms } ->
    Json.Obj
      ([ ("type", Json.String "job");
         ("id", Json.String id);
         ("design", design_to_json design);
         ("arch", Codec.arch_to_json arch);
         ("options", Codec.options_to_json options) ]
      @
      match deadline_ms with
      | None -> []
      | Some ms -> [ ("deadline_ms", Json.Int ms) ])

let request_to_frame r = Json.to_string (request_to_json r)

let diag_to_json (d : Diag.t) =
  Json.Obj
    [ ("stage", Json.String d.Diag.stage);
      ("severity", Json.String (Diag.severity_string d.Diag.severity));
      ("code", Json.String d.Diag.code);
      ("message", Json.String d.Diag.message);
      ( "context",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) d.Diag.context) ) ]

let diag_of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error ("diag without " ^ name)
  in
  match str "stage", str "code", str "message" with
  | Ok stage, Ok code, Ok message ->
    let severity =
      match Option.bind (Json.member "severity" j) Json.to_str with
      | Some "warning" -> Diag.Warning
      | Some "fatal" -> Diag.Fatal
      | _ -> Diag.Error
    in
    let context =
      match Json.member "context" j with
      | Some (Json.Obj members) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
          members
      | _ -> []
    in
    Ok (Diag.make ~stage ~severity ~code ~context message)
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let response_to_json = function
  | Event { id; stage_name; ms } ->
    Json.Obj
      [ ("type", Json.String "event");
        ("id", Json.String id);
        ("stage", Json.String stage_name);
        ("ms", Json.Float ms) ]
  | Result { id; key; cached; artifact } ->
    Json.Obj
      [ ("type", Json.String "result");
        ("id", Json.String id);
        ("key", Json.String key);
        ("cached", Json.Bool cached);
        ("artifact", Codec.artifact_to_json artifact) ]
  | Error_resp { id; diag } ->
    Json.Obj
      [ ("type", Json.String "error");
        ("id", match id with None -> Json.Null | Some s -> Json.String s);
        ("diag", diag_to_json diag) ]
  | Pong -> Json.Obj [ ("type", Json.String "pong") ]
  | Stats_resp s ->
    Json.Obj
      [ ("type", Json.String "stats");
        ("jobs_done", Json.Int s.jobs_done);
        ("cache_hits", Json.Int s.cache_hits);
        ("cache_misses", Json.Int s.cache_misses);
        ("cache_entries", Json.Int s.cache_entries);
        ("uptime_s", Json.Int s.uptime_s);
        ("timeouts", Json.Int s.timeouts);
        ("shed", Json.Int s.shed);
        ("drained", Json.Int s.drained);
        ("slow_reader_disconnects", Json.Int s.slow_reader_disconnects);
        ("cache_scrubbed", Json.Int s.cache_scrubbed);
        ("cache_corrupt", Json.Int s.cache_corrupt);
        ( "rejected",
          Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.rejected) ) ]
  | Bye -> Json.Obj [ ("type", Json.String "bye") ]

let response_to_frame r = Json.to_string (response_to_json r)

let ( let* ) = Result.bind

let response_of_frame line =
  let* j = Json.parse line in
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error ("response without " ^ name)
  in
  match Option.bind (Json.member "type" j) Json.to_str with
  | None -> Error "response without \"type\""
  | Some "pong" -> Ok Pong
  | Some "bye" -> Ok Bye
  | Some "event" ->
    let* id = str "id" in
    let* stage_name = str "stage" in
    let* ms =
      match Option.bind (Json.member "ms" j) Json.to_float with
      | Some f -> Ok f
      | None -> Error "event without ms"
    in
    Ok (Event { id; stage_name; ms })
  | Some "result" ->
    let* id = str "id" in
    let* key = str "key" in
    let* cached =
      match Option.bind (Json.member "cached" j) Json.to_bool with
      | Some b -> Ok b
      | None -> Error "result without cached"
    in
    let* artifact =
      match Json.member "artifact" j with
      | Some a -> Codec.artifact_of_json a
      | None -> Error "result without artifact"
    in
    Ok (Result { id; key; cached; artifact })
  | Some "error" ->
    let id =
      match Json.member "id" j with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    let* diag =
      match Json.member "diag" j with
      | Some d -> diag_of_json d
      | None -> Error "error without diag"
    in
    Ok (Error_resp { id; diag })
  | Some "stats" ->
    let int name =
      match Option.bind (Json.member name j) Json.to_int with
      | Some i -> Ok i
      | None -> Error ("stats without " ^ name)
    in
    (* Robustness counters default to zero so a newer client can read an
       older daemon's stats (liberal-in on optional members only). *)
    let opt name =
      Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int)
    in
    let* jobs_done = int "jobs_done" in
    let* cache_hits = int "cache_hits" in
    let* cache_misses = int "cache_misses" in
    let* cache_entries = int "cache_entries" in
    let rejected =
      match Json.member "rejected" j with
      | Some (Json.Obj members) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
          members
      | _ -> []
    in
    Ok
      (Stats_resp
         { jobs_done;
           cache_hits;
           cache_misses;
           cache_entries;
           uptime_s = opt "uptime_s";
           timeouts = opt "timeouts";
           shed = opt "shed";
           drained = opt "drained";
           slow_reader_disconnects = opt "slow_reader_disconnects";
           cache_scrubbed = opt "cache_scrubbed";
           cache_corrupt = opt "cache_corrupt";
           rejected })
  | Some t -> Error ("unknown response type " ^ t)
