(** The compile service's wire protocol.

    One message per line ({!Nanomap_util.Framing}), each line one JSON
    object with a ["type"] member. Client to server:

    - [{"type":"job","id":ID,"design":D,"arch":A?,"options":O?}] — compile
      a design. [ID] is a client-chosen correlation string echoed on every
      response for this job. [D] is either
      [{"kind":"rtl","text":T}] (canonical {!Nanomap_flow.Codec.rtl_to_string}
      text) or [{"kind":"circuit","name":N}] (a built-in benchmark, resolved
      server-side). [A]/[O] default to {!Nanomap_arch.Arch.default} and
      {!Nanomap_flow.Flow.default_options}.
    - [{"type":"ping"}], [{"type":"stats"}], [{"type":"shutdown"}].

    Server to client:

    - [{"type":"event","id":ID,"stage":S,"ms":F}] — one per flow stage,
      streamed before the job's result (replayed from the report's
      telemetry span tree; a cache hit emits a single ["cache"] stage).
    - [{"type":"result","id":ID,"key":K,"cached":B,"artifact":...}].
    - [{"type":"error","id":ID?,"diag":{stage,severity,code,message,context}}]
      — a flow failure (the job's id) or a protocol rejection (id absent
      or [null] when the request was too broken to carry one).
    - [{"type":"pong"}], [{"type":"stats",...}], [{"type":"bye"}].

    {2 Rejection taxonomy}

    Malformed traffic maps to typed {!Nanomap_util.Diag.t} values at stage
    ["serve"], with stable codes the protocol tests assert on:
    [bad-json] (not JSON), [bad-request] (JSON, wrong shape),
    [oversized] (frame over the byte bound), [truncated] (EOF inside a
    line), [bad-design] (unparseable netlist / unknown circuit),
    [timeout] (the job overran its deadline — see
    {!Nanomap_util.Cancel}), [overloaded] (admission queue full; the
    context carries a [retry_after_ms] hint), [draining] (shutdown in
    progress, in-flight jobs finishing), and the client-side-only
    [unreachable] (no daemon at the socket). A rejection is always
    per-message: the daemon answers with an error frame and keeps
    serving. *)

module Json = Nanomap_util.Json
module Diag = Nanomap_util.Diag
module Codec = Nanomap_flow.Codec

val stage : string
(** ["serve"] — the diagnostics' stage tag. *)

type design_src =
  | Rtl_text of string   (** canonical netlist text, parsed server-side *)
  | Circuit of string    (** built-in benchmark name *)

type job = {
  id : string;
  design : design_src;
  arch : Nanomap_arch.Arch.t;
  options : Nanomap_flow.Flow.options;
  deadline_ms : int option;
      (** per-job compute budget; [None] defers to the server default.
          On the wire as an optional positive-integer ["deadline_ms"]
          member. *)
}

type request =
  | Job of job
  | Ping
  | Stats_req
  | Shutdown

type stats = {
  jobs_done : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  uptime_s : int;             (** whole seconds since the engine started *)
  timeouts : int;             (** jobs cancelled at their deadline *)
  shed : int;                 (** jobs rejected [serve/overloaded] *)
  drained : int;              (** jobs rejected [serve/draining] *)
  slow_reader_disconnects : int;
                              (** connections dropped for an over-budget
                                  write buffer *)
  cache_scrubbed : int;       (** orphaned cache temp files removed *)
  cache_corrupt : int;        (** cache entries that failed integrity
                                  verification *)
  rejected : (string * int) list;
                              (** rejection counts keyed ["stage/code"],
                                  sorted by key — every error frame the
                                  engine ever emitted, by class *)
}

type response =
  | Event of { id : string; stage_name : string; ms : float }
  | Result of { id : string; key : string; cached : bool; artifact : Codec.artifact }
  | Error_resp of { id : string option; diag : Diag.t }
  | Pong
  | Stats_resp of stats
  | Bye

(** {2 Decoding (server side)} *)

val request_of_frame : string -> (request, Diag.t) result
(** Parse one line. All failures are [serve/bad-json] or
    [serve/bad-request] diagnostics with the offending detail in context.
    Does {e not} resolve the design source (that needs the circuit table
    and belongs to the engine — see [serve/bad-design] there). *)

val oversized : limit:int -> int -> Diag.t
(** The [serve/oversized] rejection for a frame of the given length. *)

val truncated : int -> Diag.t
(** The [serve/truncated] rejection (EOF after N buffered bytes). *)

val bad_design : string -> Diag.t
(** The [serve/bad-design] rejection. *)

val overloaded : queued:int -> limit:int -> retry_after_ms:int -> Diag.t
(** The [serve/overloaded] load-shed rejection. [retry_after_ms] is the
    server's backoff hint (its recent average compile time), carried in
    context for {!retry_after_ms} to read back. *)

val draining : Diag.t
(** The [serve/draining] rejection for jobs arriving during graceful
    shutdown. *)

val unreachable : addr:string -> string -> Diag.t
(** The client-side [serve/unreachable] diagnostic: no daemon listening
    at [addr] (connect refused / socket missing), with the errno detail. *)

val retry_after_ms : Diag.t -> int option
(** The backoff hint of a [serve/overloaded] diagnostic, when present. *)

(** {2 Encoding} *)

val request_to_frame : request -> string
val response_to_frame : response -> string

(** {2 Client-side decoding} *)

val response_of_frame : string -> (response, string) result
