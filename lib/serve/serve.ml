module Pool = Nanomap_util.Pool
module Diag = Nanomap_util.Diag
module Framing = Nanomap_util.Framing
module Telemetry = Nanomap_util.Telemetry
module Cancel = Nanomap_util.Cancel
module Rng = Nanomap_util.Rng
module Codec = Nanomap_flow.Codec
module Flow = Nanomap_flow.Flow
module Circuits = Nanomap_circuits.Circuits

type limits = {
  default_deadline_ms : int option;
  max_queued_jobs : int;
  max_conn_buffer : int;
}

let default_limits =
  { default_deadline_ms = None;
    max_queued_jobs = 64;
    max_conn_buffer = 8 * 1024 * 1024 }

type engine = {
  pool : Pool.t;
  cache : Cache.t;
  limits : limits;
  started_ns : int64;
  rejections : (string, int) Hashtbl.t;
  mutable jobs_done : int;
  mutable timeouts : int;
  mutable shed : int;
  mutable drained_jobs : int;
  mutable slow_reader_disconnects : int;
  mutable draining : bool;
  mutable compile_ms_ewma : float;    (* 0.0 until the first compile *)
}

let create_engine ?(jobs = 1) ?cache ?(limits = default_limits) () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { pool = Pool.create ~jobs:(Pool.resolve_jobs jobs) ();
    cache;
    limits;
    started_ns = Cancel.now_ns ();
    rejections = Hashtbl.create 8;
    jobs_done = 0;
    timeouts = 0;
    shed = 0;
    drained_jobs = 0;
    slow_reader_disconnects = 0;
    draining = false;
    compile_ms_ewma = 0.0 }

let shutdown_engine eng = Pool.shutdown eng.pool
let engine_cache eng = eng.cache
let drain_engine eng = eng.draining <- true
let engine_draining eng = eng.draining

(* Every error frame funnels through here: the per-class ledger feeds the
   stats response, and the dedicated counters (timeouts, shed, drained)
   stay consistent with it by construction. *)
let count_reject eng (d : Diag.t) =
  let key = d.Diag.stage ^ "/" ^ d.Diag.code in
  Hashtbl.replace eng.rejections key
    (1 + Option.value ~default:0 (Hashtbl.find_opt eng.rejections key));
  if d.Diag.stage = Proto.stage then
    match d.Diag.code with
    | "timeout" -> eng.timeouts <- eng.timeouts + 1
    | "overloaded" -> eng.shed <- eng.shed + 1
    | "draining" -> eng.drained_jobs <- eng.drained_jobs + 1
    | _ -> ()

let reject eng ~id diag =
  count_reject eng diag;
  Proto.Error_resp { id; diag }

(* The overload hint: the server's recent average compile time is the
   most honest estimate of when a queue slot will free up. Floor keeps
   the hint sane before the first compile lands. *)
let retry_hint_ms eng =
  if eng.compile_ms_ewma <= 0.0 then 100
  else max 20 (int_of_float eng.compile_ms_ewma)

let engine_stats eng =
  let rejected =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) eng.rejections [])
  in
  let uptime_ns = Int64.sub (Cancel.now_ns ()) eng.started_ns in
  { Proto.jobs_done = eng.jobs_done;
    cache_hits = Cache.hits eng.cache;
    cache_misses = Cache.misses eng.cache;
    cache_entries = Cache.mem_entries eng.cache;
    uptime_s = Int64.to_int (Int64.div uptime_ns 1_000_000_000L);
    timeouts = eng.timeouts;
    shed = eng.shed;
    drained = eng.drained_jobs;
    slow_reader_disconnects = eng.slow_reader_disconnects;
    cache_scrubbed = Cache.scrubbed eng.cache;
    cache_corrupt = Cache.corrupt eng.cache;
    rejected }

(* -------------------------------------------------------------- engine *)

let resolve_design = function
  | Proto.Rtl_text text -> (
    try Ok (Codec.rtl_of_string text)
    with Failure msg -> Error (Proto.bad_design msg))
  | Proto.Circuit name -> (
    match Circuits.by_name name with
    | b -> Ok b.Circuits.design
    | exception Not_found -> Error (Proto.bad_design ("unknown circuit " ^ name)))

let hit_responses id key artifact =
  [ Proto.Event { id; stage_name = "cache"; ms = 0.0 };
    Proto.Result { id; key; cached = true; artifact } ]

let events_of_report id (report : Flow.report) =
  List.map
    (fun (s : Telemetry.span) ->
      Proto.Event { id; stage_name = s.Telemetry.span_name; ms = Telemetry.span_ms s })
    (Telemetry.spans report.Flow.telemetry)

(* What the second pass still has to fill in for one request. *)
type slot =
  | Immediate of Proto.response list
  | Await of { id : string; key : string }

let handle_batch eng requests =
  (* pass 1: admission. Resolve designs, answer cache hits, collect
     unique misses in order — and enforce the robustness gates, in this
     order: draining (a [Shutdown] earlier in this same batch already
     counts), then the bounded admission queue. A job's cancellation
     token starts at admission, so its deadline covers queueing time too:
     a deadline is a promise about the answer, not about CPU time. *)
  let pending = Hashtbl.create 8 in
  let order = ref [] in
  let slots =
    List.map
      (fun req ->
        match req with
        | Proto.Ping -> Immediate [ Proto.Pong ]
        | Proto.Stats_req -> Immediate [ Proto.Stats_resp (engine_stats eng) ]
        | Proto.Shutdown ->
          eng.draining <- true;
          Immediate [ Proto.Bye ]
        | Proto.Job { Proto.id; design; arch; options; deadline_ms } -> (
          if eng.draining then
            Immediate [ reject eng ~id:(Some id) Proto.draining ]
          else
            match resolve_design design with
            | Error diag ->
              eng.jobs_done <- eng.jobs_done + 1;
              Immediate [ reject eng ~id:(Some id) diag ]
            | Ok rtl -> (
              let key = Codec.content_key ~design:rtl ~arch ~options in
              if Hashtbl.mem pending key then Await { id; key }
              else
                match Cache.find eng.cache key with
                | Some artifact ->
                  eng.jobs_done <- eng.jobs_done + 1;
                  Immediate (hit_responses id key artifact)
                | None ->
                  let queued = Hashtbl.length pending in
                  let limit = eng.limits.max_queued_jobs in
                  if limit > 0 && queued >= limit then
                    Immediate
                      [ reject eng ~id:(Some id)
                          (Proto.overloaded ~queued ~limit
                             ~retry_after_ms:(retry_hint_ms eng)) ]
                  else begin
                    let deadline_ms =
                      match deadline_ms with
                      | Some _ as d -> d
                      | None -> eng.limits.default_deadline_ms
                    in
                    let cancel = Cancel.make ?deadline_ms () in
                    Hashtbl.add pending key (rtl, arch, options, cancel);
                    order := key :: !order;
                    Await { id; key }
                  end)))
      requests
  in
  (* compile the unique misses on the pool. Each job runs with jobs = 1
     (a pool map must not nest); batch-level parallelism is the pool's.
     Tasks never raise — a failing job becomes its own Error and cannot
     poison the rest of the batch (Pool re-raises the first exception).
     Each job carries its own token: checked here before the compile
     starts (a job can time out waiting for a pool slot) and at every
     stage boundary inside [Flow.run_result]. *)
  let uniq = Array.of_list (List.rev !order) in
  let computed =
    Pool.map eng.pool
      ~f:(fun key ->
        let rtl, arch, options, cancel = Hashtbl.find pending key in
        let options = { options with Flow.jobs = 1 } in
        let t0 = Cancel.now_ns () in
        let outcome =
          if Cancel.expired cancel then Error (Cancel.timeout_diag cancel)
          else
            match Flow.run_result ~cancel ~options ~arch rtl with
            | Ok report -> Ok (report, Codec.artifact_of_report report)
            | Error diag -> Error diag
            | exception exn -> (
              match Diag.of_exn ~stage:Proto.stage exn with
              | Some diag -> Error diag
              | None -> raise exn)
        in
        let ms =
          Int64.to_float (Int64.sub (Cancel.now_ns ()) t0) /. 1_000_000.0
        in
        (outcome, ms))
      uniq
  in
  let outcomes = Hashtbl.create 8 in
  Array.iteri
    (fun i key ->
      let outcome, ms = computed.(i) in
      (* the EWMA only samples completed compiles on the submitting
         domain, after the pool joined — no cross-domain mutation *)
      eng.compile_ms_ewma <-
        (if eng.compile_ms_ewma <= 0.0 then ms
         else (0.8 *. eng.compile_ms_ewma) +. (0.2 *. ms));
      Hashtbl.replace outcomes key outcome;
      match outcome with
      | Ok (_, artifact) -> Cache.store eng.cache key artifact
      | Error _ -> ())
    uniq;
  (* pass 2: answer in submission order; within-batch duplicates of a
     computed key are served back through the cache so hit accounting
     reflects the reuse *)
  let first_served = Hashtbl.create 8 in
  List.map
    (fun slot ->
      match slot with
      | Immediate rs -> rs
      | Await { id; key } -> (
        eng.jobs_done <- eng.jobs_done + 1;
        match Hashtbl.find outcomes key with
        | Error diag -> [ reject eng ~id:(Some id) diag ]
        | Ok (report, artifact) ->
          if not (Hashtbl.mem first_served key) then begin
            Hashtbl.add first_served key ();
            events_of_report id report
            @ [ Proto.Result { id; key; cached = false; artifact } ]
          end
          else
            let artifact =
              match Cache.find eng.cache key with
              | Some a -> a
              | None -> artifact (* evicted under churn; still correct *)
            in
            hit_responses id key artifact))
    slots

(* --------------------------------------------------------------- stdio *)

let serve_channels eng ic oc =
  let respond rs =
    List.iter (fun r -> Framing.write_frame oc (Proto.response_to_frame r)) rs
  in
  let rec loop () =
    match Framing.read_frame ic with
    | `Eof -> ()
    | `Truncated partial ->
      respond [ reject eng ~id:None (Proto.truncated (String.length partial)) ]
    | `Oversized n ->
      respond
        [ reject eng ~id:None (Proto.oversized ~limit:Framing.default_max_bytes n) ];
      loop ()
    | `Frame line -> (
      match Proto.request_of_frame line with
      | Error diag ->
        respond [ reject eng ~id:None diag ];
        loop ()
      | Ok req -> (
        respond (List.concat (handle_batch eng [ req ]));
        match req with
        | Proto.Shutdown -> ()
        | _ -> loop ()))
  in
  loop ()

(* ---------------------------------------------------------- unix socket *)

type conn = {
  fd : Unix.file_descr;
  splitter : Framing.Splitter.t;
  out : Buffer.t;           (* responses not yet accepted by the kernel *)
  mutable alive : bool;     (* read side still open *)
  mutable broken : bool;    (* write side failed; discard the connection *)
}

(* The daemon must never block on a slow reader: a client that pipelines
   a long burst of jobs before reading any responses would otherwise
   deadlock it (daemon stuck writing, client stuck writing). Sockets are
   nonblocking; what the kernel won't take stays in [conn.out] and is
   retried when select reports the descriptor writable. *)
let flush_conn c =
  if (not c.broken) && Buffer.length c.out > 0 then begin
    let s = Buffer.contents c.out in
    Buffer.clear c.out;
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write_substring c.fd s off (n - off) with
        | 0 -> c.broken <- true
        | w -> go (off + w)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          Buffer.add_substring c.out s off (n - off)
        | exception Unix.Unix_error _ -> c.broken <- true
    in
    go 0
  end

(* A reader that stops reading is a memory leak with a socket attached:
   the buffer cap converts it into a disconnect. Dropping the connection
   loses that client's pending responses — acceptable; blocking the
   daemon or growing without bound is not. *)
let send_responses eng conn rs =
  if not conn.broken then begin
    List.iter
      (fun r ->
        Buffer.add_string conn.out (Proto.response_to_frame r);
        Buffer.add_char conn.out '\n')
      rs;
    flush_conn conn;
    let cap = eng.limits.max_conn_buffer in
    if cap > 0 && Buffer.length conn.out > cap then begin
      conn.broken <- true;
      eng.slow_reader_disconnects <- eng.slow_reader_disconnects + 1
    end
  end

let serve_unix ?(max_bytes = Framing.default_max_bytes) ?(on_ready = fun () -> ())
    ?(handle_sigterm = false) eng ~socket_path =
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let drain_requested = Atomic.make false in
  (* a client that disconnects mid-write must surface as EPIPE on that
     one connection (marked broken, reaped), never as a SIGPIPE that
     kills the whole daemon *)
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_sigterm =
    if handle_sigterm then
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set drain_requested true)))
    else None
  in
  let cleanup () =
    Sys.set_signal Sys.sigpipe old_sigpipe;
    Option.iter (Sys.set_signal Sys.sigterm) old_sigterm;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    try Sys.remove socket_path with Sys_error _ -> ()
  in
  (try
     Unix.bind listener (Unix.ADDR_UNIX socket_path);
     Unix.listen listener 64
   with e -> cleanup (); raise e);
  on_ready ();
  let conns = ref [] in
  let buf = Bytes.create 65536 in
  let stop = ref false in
  (* SIGTERM drain: the signal only flips an atomic (safe at any point);
     the loop notices it between batches — in-flight compiles therefore
     always finish. One final zero-timeout sweep answers whatever is
     already readable with [serve/draining], then the loop exits and the
     normal shutdown path flushes what each connection is owed. *)
  let drain_sweep_done = ref false in
  (try
     while not !stop do
       if Atomic.get drain_requested then
         if !drain_sweep_done then stop := true
         else begin
           drain_sweep_done := true;
           eng.draining <- true
         end;
       if not !stop then begin
         (* a connection stays registered until its read side is closed AND
            everything it is owed has been flushed *)
         let live, dead =
           List.partition
             (fun c -> (not c.broken) && (c.alive || Buffer.length c.out > 0))
             !conns
         in
         List.iter
           (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
           dead;
         conns := live;
         let rset =
           listener :: List.filter_map (fun c -> if c.alive then Some c.fd else None) live
         and wset =
           List.filter_map
             (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
             live
         in
         let timeout = if !drain_sweep_done then 0.0 else -1.0 in
         let readable, writable =
           (* a signal interrupting select is not an error: return empty
              sets and let the top of the loop see the drain flag *)
           match Unix.select rset wset [] timeout with
           | r, w, _ -> (r, w)
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
         in
         List.iter (fun c -> if List.mem c.fd writable then flush_conn c) live;
         if List.mem listener readable then begin
           let fd, _ = Unix.accept listener in
           Unix.set_nonblock fd;
           conns :=
             !conns
             @ [ { fd; splitter = Framing.Splitter.create ~max_bytes ();
                   out = Buffer.create 256; alive = true; broken = false } ]
         end;
         (* drain every readable connection; queue keeps arrival order *)
         let queue = ref [] in
         List.iter
           (fun c ->
             if c.alive && List.mem c.fd readable then begin
               let eof () =
                 (match Framing.Splitter.finish c.splitter with
                 | Some partial ->
                   queue := (c, `Err (Proto.truncated (String.length partial))) :: !queue
                 | None -> ());
                 c.alive <- false
               in
               match Unix.read c.fd buf 0 (Bytes.length buf) with
               | exception
                   Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                 ->
                 ()
               | exception Unix.Unix_error _ -> eof ()
               | 0 -> eof ()
               | n ->
                 List.iter
                   (fun frame ->
                     match frame with
                     | Framing.Frame line -> (
                       match Proto.request_of_frame line with
                       | Ok r -> queue := (c, `Req r) :: !queue
                       | Error diag -> queue := (c, `Err diag) :: !queue)
                     | Framing.Oversized n ->
                       queue := (c, `Err (Proto.oversized ~limit:max_bytes n)) :: !queue)
                   (Framing.Splitter.feed c.splitter (Bytes.sub_string buf 0 n))
             end)
           live;
         let queue = List.rev !queue in
         let batch =
           List.filter_map (function _, `Req r -> Some r | _, `Err _ -> None) queue
         in
         let answers = handle_batch eng batch in
         (* hand each answer back to its requester, still in arrival order *)
         let rec dispatch queue answers =
           match queue, answers with
           | [], _ -> ()
           | (c, `Err diag) :: rest, answers ->
             send_responses eng c [ reject eng ~id:None diag ];
             dispatch rest answers
           | (c, `Req r) :: rest, rs :: answers ->
             send_responses eng c rs;
             (match r with Proto.Shutdown -> stop := true | _ -> ());
             dispatch rest answers
           | (_, `Req _) :: _, [] -> ()
         in
         dispatch queue answers
         (* closed connections are reaped at the top of the next iteration,
            once their remaining output has drained *)
       end
     done
   with e -> cleanup (); raise e);
  (* drain what each connection is still owed (e.g. the Bye) before
     closing; bounded so a wedged client cannot hold the daemon open *)
  let rec drain c tries =
    if tries > 0 && (not c.broken) && Buffer.length c.out > 0 then begin
      ignore (Unix.select [] [ c.fd ] [] 1.0);
      flush_conn c;
      drain c (tries - 1)
    end
  in
  List.iter
    (fun c ->
      drain c 10;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  cleanup ()

(* -------------------------------------------------------------- client *)

module Backoff = struct
  (* Capped exponential with multiplicative jitter, fully determined by
     the seed: retry storms from many clients decorrelate (different
     seeds) while any single schedule is replayable in tests. *)
  let delays_ms ?(base_ms = 50) ?(cap_ms = 2000) ~seed ~attempts () =
    let base_ms = max 1 base_ms in
    let cap_ms = max base_ms cap_ms in
    let rng = Rng.create seed in
    List.init (max 0 attempts) (fun i ->
        let expo = min cap_ms (base_ms * (1 lsl min i 16)) in
        let half = max 1 (expo / 2) in
        half + Rng.int rng (half + 1))
end

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect_once ~socket_path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let connect ?(retries = 0) ?(backoff_ms = 100) ~socket_path () =
    (* The jitter seed comes from the socket path: one client retries on
       a reproducible schedule, two clients hammering different daemons
       do not sync up. *)
    let delays =
      Backoff.delays_ms ~base_ms:backoff_ms
        ~seed:(Hashtbl.hash socket_path) ~attempts:retries ()
    in
    let rec go delays =
      match connect_once ~socket_path with
      | t -> t
      | exception Unix.Unix_error (err, _, _) -> (
        match delays with
        | d :: rest ->
          Unix.sleepf (float_of_int d /. 1000.0);
          go rest
        | [] ->
          raise
            (Diag.Fail
               (Proto.unreachable ~addr:socket_path (Unix.error_message err))))
    in
    go delays

  let close t =
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()

  let send t r = Framing.write_frame t.oc (Proto.request_to_frame r)

  let recv t =
    match Framing.read_frame t.ic with
    | `Frame line -> (
      match Proto.response_of_frame line with
      | Ok r -> r
      | Error e -> failwith ("malformed response: " ^ e))
    | `Eof -> failwith "connection closed"
    | `Truncated _ -> failwith "truncated response"
    | `Oversized _ -> failwith "oversized response"

  let recv_result t =
    let rec go events =
      match recv t with
      | Proto.Event _ as e -> go (e :: events)
      | terminator -> (List.rev events, terminator)
    in
    go []

  let submit ?(attempts = 1) t job =
    let attempts = max 1 attempts in
    let rec go n =
      send t (Proto.Job job);
      let events, term = recv_result t in
      match term with
      | Proto.Error_resp { diag; _ }
        when n + 1 < attempts && Option.is_some (Proto.retry_after_ms diag) ->
        (* honor the server's own estimate of when a slot frees up *)
        Unix.sleepf
          (float_of_int (Option.get (Proto.retry_after_ms diag)) /. 1000.0);
        go (n + 1)
      | _ -> (events, term)
    in
    go 0
end
