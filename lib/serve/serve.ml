module Pool = Nanomap_util.Pool
module Diag = Nanomap_util.Diag
module Framing = Nanomap_util.Framing
module Telemetry = Nanomap_util.Telemetry
module Codec = Nanomap_flow.Codec
module Flow = Nanomap_flow.Flow
module Circuits = Nanomap_circuits.Circuits

type engine = {
  pool : Pool.t;
  cache : Cache.t;
  mutable jobs_done : int;
}

let create_engine ?(jobs = 1) ?cache () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { pool = Pool.create ~jobs:(Pool.resolve_jobs jobs) (); cache; jobs_done = 0 }

let shutdown_engine eng = Pool.shutdown eng.pool
let engine_cache eng = eng.cache

let engine_stats eng =
  { Proto.jobs_done = eng.jobs_done;
    cache_hits = Cache.hits eng.cache;
    cache_misses = Cache.misses eng.cache;
    cache_entries = Cache.mem_entries eng.cache }

(* -------------------------------------------------------------- engine *)

let resolve_design = function
  | Proto.Rtl_text text -> (
    try Ok (Codec.rtl_of_string text)
    with Failure msg -> Error (Proto.bad_design msg))
  | Proto.Circuit name -> (
    match Circuits.by_name name with
    | b -> Ok b.Circuits.design
    | exception Not_found -> Error (Proto.bad_design ("unknown circuit " ^ name)))

let hit_responses id key artifact =
  [ Proto.Event { id; stage_name = "cache"; ms = 0.0 };
    Proto.Result { id; key; cached = true; artifact } ]

let events_of_report id (report : Flow.report) =
  List.map
    (fun (s : Telemetry.span) ->
      Proto.Event { id; stage_name = s.Telemetry.span_name; ms = Telemetry.span_ms s })
    (Telemetry.spans report.Flow.telemetry)

(* What the second pass still has to fill in for one request. *)
type slot =
  | Immediate of Proto.response list
  | Await of { id : string; key : string }

let handle_batch eng requests =
  (* pass 1: resolve, answer cache hits, collect unique misses in order *)
  let pending = Hashtbl.create 8 in
  let order = ref [] in
  let slots =
    List.map
      (fun req ->
        match req with
        | Proto.Ping -> Immediate [ Proto.Pong ]
        | Proto.Stats_req -> Immediate [ Proto.Stats_resp (engine_stats eng) ]
        | Proto.Shutdown -> Immediate [ Proto.Bye ]
        | Proto.Job { Proto.id; design; arch; options } -> (
          match resolve_design design with
          | Error diag ->
            eng.jobs_done <- eng.jobs_done + 1;
            Immediate [ Proto.Error_resp { id = Some id; diag } ]
          | Ok rtl -> (
            let key = Codec.content_key ~design:rtl ~arch ~options in
            if Hashtbl.mem pending key then Await { id; key }
            else
              match Cache.find eng.cache key with
              | Some artifact ->
                eng.jobs_done <- eng.jobs_done + 1;
                Immediate (hit_responses id key artifact)
              | None ->
                Hashtbl.add pending key (rtl, arch, options);
                order := key :: !order;
                Await { id; key })))
      requests
  in
  (* compile the unique misses on the pool. Each job runs with jobs = 1
     (a pool map must not nest); batch-level parallelism is the pool's.
     Tasks never raise — a failing job becomes its own Error and cannot
     poison the rest of the batch (Pool re-raises the first exception). *)
  let uniq = Array.of_list (List.rev !order) in
  let computed =
    Pool.map eng.pool
      ~f:(fun key ->
        let rtl, arch, options = Hashtbl.find pending key in
        let options = { options with Flow.jobs = 1 } in
        match Flow.run_result ~options ~arch rtl with
        | Ok report -> Ok (report, Codec.artifact_of_report report)
        | Error diag -> Error diag
        | exception exn -> (
          match Diag.of_exn ~stage:Proto.stage exn with
          | Some diag -> Error diag
          | None -> raise exn))
      uniq
  in
  let outcomes = Hashtbl.create 8 in
  Array.iteri
    (fun i key ->
      Hashtbl.replace outcomes key computed.(i);
      match computed.(i) with
      | Ok (_, artifact) -> Cache.store eng.cache key artifact
      | Error _ -> ())
    uniq;
  (* pass 2: answer in submission order; within-batch duplicates of a
     computed key are served back through the cache so hit accounting
     reflects the reuse *)
  let first_served = Hashtbl.create 8 in
  List.map
    (fun slot ->
      match slot with
      | Immediate rs -> rs
      | Await { id; key } -> (
        eng.jobs_done <- eng.jobs_done + 1;
        match Hashtbl.find outcomes key with
        | Error diag -> [ Proto.Error_resp { id = Some id; diag } ]
        | Ok (report, artifact) ->
          if not (Hashtbl.mem first_served key) then begin
            Hashtbl.add first_served key ();
            events_of_report id report
            @ [ Proto.Result { id; key; cached = false; artifact } ]
          end
          else
            let artifact =
              match Cache.find eng.cache key with
              | Some a -> a
              | None -> artifact (* evicted under churn; still correct *)
            in
            hit_responses id key artifact))
    slots

(* --------------------------------------------------------------- stdio *)

let serve_channels eng ic oc =
  let respond rs =
    List.iter (fun r -> Framing.write_frame oc (Proto.response_to_frame r)) rs
  in
  let rec loop () =
    match Framing.read_frame ic with
    | `Eof -> ()
    | `Truncated partial ->
      respond
        [ Proto.Error_resp
            { id = None; diag = Proto.truncated (String.length partial) } ]
    | `Oversized n ->
      respond
        [ Proto.Error_resp
            { id = None;
              diag = Proto.oversized ~limit:Framing.default_max_bytes n } ];
      loop ()
    | `Frame line -> (
      match Proto.request_of_frame line with
      | Error diag ->
        respond [ Proto.Error_resp { id = None; diag } ];
        loop ()
      | Ok req -> (
        respond (List.concat (handle_batch eng [ req ]));
        match req with
        | Proto.Shutdown -> ()
        | _ -> loop ()))
  in
  loop ()

(* ---------------------------------------------------------- unix socket *)

type conn = {
  fd : Unix.file_descr;
  splitter : Framing.Splitter.t;
  out : Buffer.t;           (* responses not yet accepted by the kernel *)
  mutable alive : bool;     (* read side still open *)
  mutable broken : bool;    (* write side failed; discard the connection *)
}

(* The daemon must never block on a slow reader: a client that pipelines
   a long burst of jobs before reading any responses would otherwise
   deadlock it (daemon stuck writing, client stuck writing). Sockets are
   nonblocking; what the kernel won't take stays in [conn.out] and is
   retried when select reports the descriptor writable. *)
let flush_conn c =
  if (not c.broken) && Buffer.length c.out > 0 then begin
    let s = Buffer.contents c.out in
    Buffer.clear c.out;
    let n = String.length s in
    let rec go off =
      if off < n then
        match Unix.write_substring c.fd s off (n - off) with
        | 0 -> c.broken <- true
        | w -> go (off + w)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          Buffer.add_substring c.out s off (n - off)
        | exception Unix.Unix_error _ -> c.broken <- true
    in
    go 0
  end

let send_responses conn rs =
  if not conn.broken then begin
    List.iter
      (fun r ->
        Buffer.add_string conn.out (Proto.response_to_frame r);
        Buffer.add_char conn.out '\n')
      rs;
    flush_conn conn
  end

let serve_unix ?(max_bytes = Framing.default_max_bytes) ?(on_ready = fun () -> ())
    eng ~socket_path =
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    try Sys.remove socket_path with Sys_error _ -> ()
  in
  (try
     Unix.bind listener (Unix.ADDR_UNIX socket_path);
     Unix.listen listener 64
   with e -> cleanup (); raise e);
  on_ready ();
  let conns = ref [] in
  let buf = Bytes.create 65536 in
  let stop = ref false in
  (try
     while not !stop do
       (* a connection stays registered until its read side is closed AND
          everything it is owed has been flushed *)
       let live, dead =
         List.partition
           (fun c -> (not c.broken) && (c.alive || Buffer.length c.out > 0))
           !conns
       in
       List.iter
         (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
         dead;
       conns := live;
       let rset =
         listener :: List.filter_map (fun c -> if c.alive then Some c.fd else None) live
       and wset =
         List.filter_map
           (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
           live
       in
       let readable, writable, _ = Unix.select rset wset [] (-1.0) in
       List.iter (fun c -> if List.mem c.fd writable then flush_conn c) live;
       if List.mem listener readable then begin
         let fd, _ = Unix.accept listener in
         Unix.set_nonblock fd;
         conns :=
           !conns
           @ [ { fd; splitter = Framing.Splitter.create ~max_bytes ();
                 out = Buffer.create 256; alive = true; broken = false } ]
       end;
       (* drain every readable connection; queue keeps arrival order *)
       let queue = ref [] in
       List.iter
         (fun c ->
           if c.alive && List.mem c.fd readable then begin
             let eof () =
               (match Framing.Splitter.finish c.splitter with
               | Some partial ->
                 queue := (c, `Err (Proto.truncated (String.length partial))) :: !queue
               | None -> ());
               c.alive <- false
             in
             match Unix.read c.fd buf 0 (Bytes.length buf) with
             | exception
                 Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
               ->
               ()
             | exception Unix.Unix_error _ -> eof ()
             | 0 -> eof ()
             | n ->
               List.iter
                 (fun frame ->
                   match frame with
                   | Framing.Frame line -> (
                     match Proto.request_of_frame line with
                     | Ok r -> queue := (c, `Req r) :: !queue
                     | Error diag -> queue := (c, `Err diag) :: !queue)
                   | Framing.Oversized n ->
                     queue := (c, `Err (Proto.oversized ~limit:max_bytes n)) :: !queue)
                 (Framing.Splitter.feed c.splitter (Bytes.sub_string buf 0 n))
           end)
         live;
       let queue = List.rev !queue in
       let batch =
         List.filter_map (function _, `Req r -> Some r | _, `Err _ -> None) queue
       in
       let answers = handle_batch eng batch in
       (* hand each answer back to its requester, still in arrival order *)
       let rec dispatch queue answers =
         match queue, answers with
         | [], _ -> ()
         | (c, `Err diag) :: rest, answers ->
           send_responses c [ Proto.Error_resp { id = None; diag } ];
           dispatch rest answers
         | (c, `Req r) :: rest, rs :: answers ->
           send_responses c rs;
           (match r with Proto.Shutdown -> stop := true | _ -> ());
           dispatch rest answers
         | (_, `Req _) :: _, [] -> ()
       in
       dispatch queue answers
       (* closed connections are reaped at the top of the next iteration,
          once their remaining output has drained *)
     done
   with e -> cleanup (); raise e);
  (* drain what each connection is still owed (e.g. the Bye) before
     closing; bounded so a wedged client cannot hold the daemon open *)
  let rec drain c tries =
    if tries > 0 && (not c.broken) && Buffer.length c.out > 0 then begin
      ignore (Unix.select [] [ c.fd ] [] 1.0);
      flush_conn c;
      drain c (tries - 1)
    end
  in
  List.iter
    (fun c ->
      drain c 10;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  cleanup ()

(* -------------------------------------------------------------- client *)

module Client = struct
  type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect ~socket_path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let close t =
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()

  let send t r = Framing.write_frame t.oc (Proto.request_to_frame r)

  let recv t =
    match Framing.read_frame t.ic with
    | `Frame line -> (
      match Proto.response_of_frame line with
      | Ok r -> r
      | Error e -> failwith ("malformed response: " ^ e))
    | `Eof -> failwith "connection closed"
    | `Truncated _ -> failwith "truncated response"
    | `Oversized _ -> failwith "oversized response"

  let recv_result t =
    let rec go events =
      match recv t with
      | Proto.Event _ as e -> go (e :: events)
      | terminator -> (List.rev events, terminator)
    in
    go []
end
