(** The compile service: a persistent daemon that accepts compile jobs
    over the line-framed JSON protocol ({!Proto}), schedules batches onto
    the deterministic domain pool, memoizes results by content hash
    ({!Cache}, keys from {!Nanomap_flow.Codec.content_key}) and streams
    per-stage telemetry events back before each result.

    {2 Scheduling model}

    The daemon drains every request currently queued (across all
    connections, in arrival order) into one {e batch}, then:

    + resolves each job's design and computes its content key;
    + answers cache hits immediately (one ["cache"] event, then the
      result with [cached = true]);
    + deduplicates the remaining misses by key {e within the batch} and
      compiles the unique designs on the pool — each compile runs with
      the job's options forced to [jobs = 1] (maps on one pool must not
      nest; batch-level parallelism is the pool's);
    + stores finished artifacts and answers every requester in
      submission order — duplicate submissions of a computed key are
      answered from the cache ([cached = true]).

    A failing job answers {e only} its own requester with the flow's
    typed diagnostic; other jobs in the batch are unaffected, and the
    daemon keeps serving (first-failure isolation is per job, not per
    batch). Protocol-level garbage (bad JSON, oversized or truncated
    frames) is likewise answered per message with a [serve/*] diagnostic
    — see {!Proto}.

    {2 Robustness model}

    Admission happens per job, in batch order, through three gates:

    + {e draining}: once a [Shutdown] was seen (or SIGTERM arrived),
      every later job is rejected [serve/draining] — jobs admitted
      before it still finish;
    + {e backpressure}: at most [limits.max_queued_jobs] unique misses
      are admitted per batch; beyond that, [serve/overloaded] with a
      [retry_after_ms] hint derived from the recent average compile
      time;
    + {e deadline}: an admitted job gets a {!Nanomap_util.Cancel} token
      (its own [deadline_ms], else the server default), checked before
      the compile starts and at every flow stage boundary — an overrun
      becomes [serve/timeout], never a wedged worker.

    Slow readers are disconnected (never blocked on) once their pending
    output exceeds [limits.max_conn_buffer]. All rejections are counted
    by class in {!engine_stats}. *)

type limits = {
  default_deadline_ms : int option;
      (** applied to jobs that carry no [deadline_ms]; [None] = no limit *)
  max_queued_jobs : int;
      (** unique compile misses admitted per batch; [<= 0] = unbounded *)
  max_conn_buffer : int;
      (** per-connection pending-output bytes before the slow reader is
          dropped; [<= 0] = unbounded *)
}

val default_limits : limits
(** No default deadline, 64 queued jobs, 8 MiB write buffer. *)

type engine

val create_engine :
  ?jobs:int -> ?cache:Cache.t -> ?limits:limits -> unit -> engine
(** [jobs] is the pool width for batch compiles (default 1; resolved via
    {!Nanomap_util.Pool.resolve_jobs}). [cache] defaults to a fresh
    memory-only cache. [limits] defaults to {!default_limits}. *)

val shutdown_engine : engine -> unit
(** Stop the pool. Idempotent. *)

val engine_cache : engine -> Cache.t
val engine_stats : engine -> Proto.stats

val drain_engine : engine -> unit
(** Flip the engine into draining mode: every job admitted from now on
    is rejected [serve/draining]. Irreversible (the engine is expected
    to be shut down next). *)

val engine_draining : engine -> bool

val handle_batch : engine -> Proto.request list -> Proto.response list list
(** The scheduling core, exposed for tests and the load-generator bench:
    one response list per request, in submission order ([Shutdown] answers
    [Bye] and flips the engine into draining mode — jobs later in the
    same batch are already rejected [serve/draining]; stopping the
    surrounding loop is the caller's job). *)

(** {2 Server loops} *)

val serve_channels : engine -> in_channel -> out_channel -> unit
(** The stdio framing fallback: read one request per line, answer on
    [out], until [Shutdown], end-of-input, or a truncated final line
    (answered with [serve/truncated] before returning). Single-client,
    sequential — what the protocol tests drive. *)

val serve_unix :
  ?max_bytes:int ->
  ?on_ready:(unit -> unit) ->
  ?handle_sigterm:bool ->
  engine ->
  socket_path:string ->
  unit
(** The daemon proper: listen on a unix socket, multiplex connections
    with [select], drain all readable traffic into a batch, answer, and
    repeat until a [Shutdown] arrives (every connection then receives
    its pending answers, the listener closes, and the socket file is
    removed). [on_ready] fires once the socket is listening (the tests'
    startup barrier). [max_bytes] is the per-frame bound
    (default {!Nanomap_util.Framing.default_max_bytes}).

    With [handle_sigterm] (the CLI's default; off here so in-process
    tests never touch global signal state), SIGTERM triggers a graceful
    drain: the in-progress batch finishes, one final zero-timeout sweep
    answers already-arrived jobs with [serve/draining], pending output
    is flushed, and the loop exits. The previous SIGTERM disposition is
    restored on return. *)

(** {2 Client side} *)

module Backoff : sig
  val delays_ms :
    ?base_ms:int -> ?cap_ms:int -> seed:int -> attempts:int -> unit -> int list
  (** A deterministic retry schedule: capped exponential (base 50 ms,
      cap 2000 ms) with multiplicative jitter in [\[expo/2, expo\]],
      fully determined by [seed]. Equal seeds give equal schedules;
      different clients (different seeds) decorrelate. *)
end

module Client : sig
  type t

  val connect : ?retries:int -> ?backoff_ms:int -> socket_path:string -> unit -> t
  (** Connect, retrying a refused/missing socket [retries] times on the
      {!Backoff} schedule ([backoff_ms] is the base, seeded from
      [socket_path]). When the daemon is still unreachable, raises
      [Nanomap_util.Diag.Fail] with [serve/unreachable] (never a raw
      [Unix.Unix_error]). *)

  val close : t -> unit
  val send : t -> Proto.request -> unit

  val recv : t -> Proto.response
  (** Blocking. Raises [Failure] on a malformed frame or closed
      connection. *)

  val recv_result : t -> Proto.response list * Proto.response
  (** Read until a job terminator ([Result], [Error_resp], or [Bye]):
      returns the streamed events and the terminator. *)

  val submit :
    ?attempts:int -> t -> Proto.job -> Proto.response list * Proto.response
  (** Send one job and read its events and terminator. On a
      [serve/overloaded] rejection, sleeps the server's [retry_after_ms]
      hint and resends, up to [attempts] total tries (default 1 — no
      retry); any other terminator returns immediately. *)
end
