(** The compile service: a persistent daemon that accepts compile jobs
    over the line-framed JSON protocol ({!Proto}), schedules batches onto
    the deterministic domain pool, memoizes results by content hash
    ({!Cache}, keys from {!Nanomap_flow.Codec.content_key}) and streams
    per-stage telemetry events back before each result.

    {2 Scheduling model}

    The daemon drains every request currently queued (across all
    connections, in arrival order) into one {e batch}, then:

    + resolves each job's design and computes its content key;
    + answers cache hits immediately (one ["cache"] event, then the
      result with [cached = true]);
    + deduplicates the remaining misses by key {e within the batch} and
      compiles the unique designs on the pool — each compile runs with
      the job's options forced to [jobs = 1] (maps on one pool must not
      nest; batch-level parallelism is the pool's);
    + stores finished artifacts and answers every requester in
      submission order — duplicate submissions of a computed key are
      answered from the cache ([cached = true]).

    A failing job answers {e only} its own requester with the flow's
    typed diagnostic; other jobs in the batch are unaffected, and the
    daemon keeps serving (first-failure isolation is per job, not per
    batch). Protocol-level garbage (bad JSON, oversized or truncated
    frames) is likewise answered per message with a [serve/*] diagnostic
    — see {!Proto}. *)

type engine

val create_engine : ?jobs:int -> ?cache:Cache.t -> unit -> engine
(** [jobs] is the pool width for batch compiles (default 1; resolved via
    {!Nanomap_util.Pool.resolve_jobs}). [cache] defaults to a fresh
    memory-only cache. *)

val shutdown_engine : engine -> unit
(** Stop the pool. Idempotent. *)

val engine_cache : engine -> Cache.t
val engine_stats : engine -> Proto.stats

val handle_batch : engine -> Proto.request list -> Proto.response list list
(** The scheduling core, exposed for tests and the load-generator bench:
    one response list per request, in submission order ([Shutdown] answers
    [Bye] — stopping the surrounding loop is the caller's job). *)

(** {2 Server loops} *)

val serve_channels : engine -> in_channel -> out_channel -> unit
(** The stdio framing fallback: read one request per line, answer on
    [out], until [Shutdown], end-of-input, or a truncated final line
    (answered with [serve/truncated] before returning). Single-client,
    sequential — what the protocol tests drive. *)

val serve_unix :
  ?max_bytes:int ->
  ?on_ready:(unit -> unit) ->
  engine ->
  socket_path:string ->
  unit
(** The daemon proper: listen on a unix socket, multiplex connections
    with [select], drain all readable traffic into a batch, answer, and
    repeat until a [Shutdown] arrives (every connection then receives
    its pending answers, the listener closes, and the socket file is
    removed). [on_ready] fires once the socket is listening (the tests'
    startup barrier). [max_bytes] is the per-frame bound
    (default {!Nanomap_util.Framing.default_max_bytes}). *)

(** {2 Client side} *)

module Client : sig
  type t

  val connect : socket_path:string -> t
  (** Raises [Unix.Unix_error] if the daemon is not there. *)

  val close : t -> unit
  val send : t -> Proto.request -> unit

  val recv : t -> Proto.response
  (** Blocking. Raises [Failure] on a malformed frame or closed
      connection. *)

  val recv_result : t -> Proto.response list * Proto.response
  (** Read until a job terminator ([Result], [Error_resp], or [Bye]):
      returns the streamed events and the terminator. *)
end
