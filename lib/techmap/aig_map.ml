module Gate = Nanomap_logic.Gate
module Gate_netlist = Nanomap_logic.Gate_netlist
module Truth_table = Nanomap_logic.Truth_table
module Aig = Nanomap_aig.Aig
module Cut = Nanomap_aig.Cut

type stats = {
  aig_nodes : int;
  aig_ands : int;
  aig_depth : int;
  cuts_enumerated : int;
}

let aig_of_tagged (tg : Decompose.tagged) =
  Aig.of_gate_netlist ~tags:tg.Decompose.tags tg.Decompose.gates

let of_lut_network network =
  Aig.of_structure
    ~size:(Lut_network.size network)
    ~node:(fun i ->
      match Lut_network.node network i with
      | Lut_network.Input _ -> `Input
      | Lut_network.Lut { func; fanins } -> `Func (func, fanins))
    ()

let map_stats ?(k = 4) ?(effort = 2) ?(balance = false) (tg : Decompose.tagged) =
  if k > Truth_table.max_arity then invalid_arg "Aig_map.map: k > max_arity";
  let nl = tg.Decompose.gates in
  let conv = aig_of_tagged tg in
  let aig = conv.Aig.aig in
  let roots =
    List.map (fun (_, gid) -> conv.Aig.lit_of_gate.(gid)) tg.Decompose.output_targets
  in
  let mapping = Cut.compute ~k ~effort ~balance aig ~roots in
  let lut = Lut_network.create () in
  let origin_of gid =
    match List.assoc_opt gid tg.Decompose.input_origins with
    | Some origin -> origin
    | None -> failwith "Aig_map: input gate without origin"
  in
  (* AIG input node -> LUT-network input node, created on demand with the
     origin of the source gate (mirrors Flowmap.map). *)
  let input_map = Hashtbl.create 64 in
  let input_net n =
    match Hashtbl.find_opt input_map n with
    | Some id -> id
    | None ->
      let gid = conv.Aig.gate_of_input.(Aig.input_ordinal aig n) in
      let name = Option.value (Gate_netlist.node nl gid).Gate_netlist.name ~default:"in" in
      let id = Lut_network.add_input lut ~name (origin_of gid) in
      Hashtbl.replace input_map n id;
      id
  in
  let const_map = Hashtbl.create 2 in
  let const_net b =
    match Hashtbl.find_opt const_map b with
    | Some id -> id
    | None ->
      let id = Lut_network.add_input lut ~name:"const" (Lut_network.Const_bit b) in
      Hashtbl.replace const_map b id;
      id
  in
  (* Emit the chosen cone in ascending node order (cut leaves always have
     smaller ids, so this is topological). *)
  let lut_of = Array.make (Aig.num_nodes aig) (-1) in
  let net_of_leaf l = if Aig.is_input aig l then input_net l else lut_of.(l) in
  for n = 0 to Aig.num_nodes aig - 1 do
    if mapping.Cut.choice.(n) >= 0 then begin
      let cut = mapping.Cut.cuts.(n).(mapping.Cut.choice.(n)) in
      lut_of.(n) <-
        Lut_network.add_lut lut
          ~name:(Printf.sprintf "a%d" n)
          ~module_id:(Aig.tag aig n) ~func:cut.Cut.func
          ~fanins:(Array.map net_of_leaf cut.Cut.leaves)
          ()
    end
  done;
  (* Complemented root literals: a negated sibling of the root cut, same
     fanins, same depth — one extra LUT at most per polarity. *)
  let neg_map = Hashtbl.create 8 in
  let neg_net n module_id =
    match Hashtbl.find_opt neg_map n with
    | Some id -> id
    | None ->
      let id =
        if Aig.is_input aig n then
          Lut_network.add_lut lut
            ~name:(Printf.sprintf "inv%d" n)
            ~module_id
            ~func:(Truth_table.lognot (Truth_table.var ~arity:1 0))
            ~fanins:[| input_net n |] ()
        else
          let cut = mapping.Cut.cuts.(n).(mapping.Cut.choice.(n)) in
          Lut_network.add_lut lut
            ~name:(Printf.sprintf "n%d" n)
            ~module_id:(Aig.tag aig n)
            ~func:(Truth_table.lognot cut.Cut.func)
            ~fanins:(Array.map net_of_leaf cut.Cut.leaves)
            ()
      in
      Hashtbl.replace neg_map n id;
      id
  in
  List.iter
    (fun (target, gid) ->
      let l = conv.Aig.lit_of_gate.(gid) in
      let n = Aig.node_of_lit l in
      let net =
        if Aig.is_const_node n then const_net (Aig.is_compl l)
        else if not (Aig.is_compl l) then
          if Aig.is_input aig n then input_net n else lut_of.(n)
        else neg_net n tg.Decompose.tags.(gid)
      in
      Lut_network.mark_output lut target net)
    tg.Decompose.output_targets;
  ( lut,
    { aig_nodes = Aig.num_nodes aig;
      aig_ands = Aig.num_ands aig;
      aig_depth = Aig.depth aig;
      cuts_enumerated = mapping.Cut.cuts_enumerated } )

let map ?k ?effort ?balance tg = fst (map_stats ?k ?effort ?balance tg)
