(** AIG-based technology mapping: the priority-cut alternative to
    {!Flowmap}.

    The tagged gate netlist of a plane is rewritten into a structurally
    hashed AIG ({!Nanomap_aig.Aig}), cuts are enumerated and selected by
    {!Nanomap_aig.Cut}, and the chosen cuts are emitted as the same
    {!Lut_network.t} the rest of the flow consumes — clustering, FDS,
    placement and routing see no difference. Complemented output literals
    cost at most one extra LUT (a negated sibling of the root cut, at equal
    depth); inverters and buffers otherwise vanish into edge complements.

    Near-linear in netlist size (bounded cut sets per node), where FlowMap's
    labeling is quadratic — this is the mapper that handles thousand-LUT
    planes. *)

type stats = {
  aig_nodes : int;   (** total AIG nodes incl. constant *)
  aig_ands : int;    (** AND nodes after strashing/const-prop *)
  aig_depth : int;   (** AND-depth of the AIG *)
  cuts_enumerated : int;  (** candidate cuts generated during enumeration *)
}

val aig_of_tagged : Decompose.tagged -> Nanomap_aig.Aig.conversion
(** The AIG of a tagged plane netlist (module tags become node tags).
    Exposed for the flow checker's AIG-vs-source spot check. *)

val of_lut_network : Lut_network.t -> Nanomap_aig.Aig.t * Nanomap_aig.Aig.lit array
(** Re-encode an already-mapped LUT network as an AIG (each LUT Shannon-
    decomposed over its fanins). Returns the literal of every network
    node; used by equivalence checks between mapped networks. *)

val map :
  ?k:int -> ?effort:int -> ?balance:bool -> Decompose.tagged -> Lut_network.t
(** [k] defaults to 4 and must be at most
    {!Nanomap_logic.Truth_table.max_arity}. [effort] (1..3, default 2) sets
    the priority-cut budget and refinement rounds; [balance] enables the
    NRAM folding-balance cut score. *)

val map_stats :
  ?k:int -> ?effort:int -> ?balance:bool -> Decompose.tagged ->
  Lut_network.t * stats
(** {!map} plus the AIG/cut statistics recorded by the mapper-comparison
    benchmarks. *)
