module Vec = Nanomap_util.Vec
module Truth_table = Nanomap_logic.Truth_table

type input_origin =
  | Register_bit of Nanomap_rtl.Rtl.id * int
  | Pi_bit of Nanomap_rtl.Rtl.id * int
  | Const_bit of bool
  | Wire_bit of Nanomap_rtl.Rtl.id * int

type node =
  | Input of input_origin
  | Lut of {
      func : Truth_table.t;
      fanins : int array;
    }

type target =
  | Reg_target of Nanomap_rtl.Rtl.id * int
  | Po_target of string
  | Wire_target of Nanomap_rtl.Rtl.id * int

type info = {
  node : node;
  module_id : int;
  name : string;
}

type t = {
  nodes : info Vec.t;
  mutable outputs_rev : (target * int) list;
}

let create () = { nodes = Vec.create (); outputs_rev = [] }

let size t = Vec.length t.nodes

let add_input t ?name origin =
  let name = Option.value name ~default:(Printf.sprintf "in%d" (size t)) in
  Vec.push t.nodes { node = Input origin; module_id = -1; name }

let add_lut t ?name ~module_id ~func ~fanins () =
  if Array.length fanins <> Truth_table.arity func then
    invalid_arg "Lut_network.add_lut: fanin/arity mismatch";
  let n = size t in
  Array.iter
    (fun f -> if f < 0 || f >= n then invalid_arg "Lut_network.add_lut: bad fanin")
    fanins;
  let name = Option.value name ~default:(Printf.sprintf "lut%d" n) in
  Vec.push t.nodes { node = Lut { func; fanins }; module_id; name }

let mark_output t target id =
  if id < 0 || id >= size t then invalid_arg "Lut_network.mark_output: bad node";
  t.outputs_rev <- (target, id) :: t.outputs_rev

let node t id = (Vec.get t.nodes id).node
let module_id t id = (Vec.get t.nodes id).module_id
let node_name t id = (Vec.get t.nodes id).name
let outputs t = List.rev t.outputs_rev

let iter f t = Vec.iteri (fun i info -> f i info.node) t.nodes

let num_luts t =
  Vec.fold (fun acc info -> match info.node with Lut _ -> acc + 1 | Input _ -> acc) 0 t.nodes

let num_inputs t =
  Vec.fold (fun acc info -> match info.node with Input _ -> acc + 1 | Lut _ -> acc) 0 t.nodes

let depths t =
  let d = Array.make (size t) 0 in
  iter
    (fun id -> function
      | Input _ -> d.(id) <- 0
      | Lut { fanins; _ } ->
        d.(id) <- 1 + Array.fold_left (fun acc f -> max acc d.(f)) 0 fanins)
    t;
  d

let depth t = Array.fold_left max 0 (depths t)

let fanouts t =
  let fo = Array.make (size t) [] in
  iter
    (fun id -> function
      | Input _ -> ()
      | Lut { fanins; _ } -> Array.iter (fun f -> fo.(f) <- id :: fo.(f)) fanins)
    t;
  Array.map List.rev fo

let modules t =
  let table = Hashtbl.create 16 in
  Vec.iteri
    (fun id info ->
      match info.node with
      | Lut _ ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt table info.module_id) in
        Hashtbl.replace table info.module_id (id :: cur)
      | Input _ -> ())
    t.nodes;
  Hashtbl.fold (fun m ids acc -> (m, List.rev ids) :: acc) table []
  |> List.sort compare

let module_depths t m =
  let d = Array.make (size t) 0 in
  Vec.iteri
    (fun id info ->
      match info.node with
      | Lut { fanins; _ } when info.module_id = m ->
        d.(id) <- 1 + Array.fold_left (fun acc f -> max acc d.(f)) 0 fanins
      | Lut _ | Input _ -> ())
    t.nodes;
  d

let lut_input_count t id =
  match node t id with
  | Lut { fanins; _ } -> Array.length fanins
  | Input _ -> invalid_arg "Lut_network.lut_input_count: not a LUT"

let eval t assign =
  let values = Array.make (size t) false in
  iter
    (fun id -> function
      | Input (Const_bit b) -> values.(id) <- b
      | Input origin -> values.(id) <- assign origin
      | Lut { func; fanins } ->
        values.(id) <- Truth_table.eval func (Array.map (fun f -> values.(f)) fanins))
    t;
  values

let string_of_origin = function
  | Register_bit (r, b) -> Printf.sprintf "reg:%d.%d" r b
  | Pi_bit (r, b) -> Printf.sprintf "pi:%d.%d" r b
  | Const_bit b -> Printf.sprintf "const:%b" b
  | Wire_bit (w, b) -> Printf.sprintf "wire:%d.%d" w b

let string_of_target = function
  | Reg_target (r, b) -> Printf.sprintf "reg:%d.%d" r b
  | Po_target s -> Printf.sprintf "po:%s" s
  | Wire_target (w, b) -> Printf.sprintf "wire:%d.%d" w b

(* Canonical dump of everything semantically meaningful in the network.
   Two runs of a deterministic mapper must produce byte-identical
   fingerprints — the determinism regression tests and the differential
   mapper gate both rely on this. *)
let fingerprint t =
  let buf = Buffer.create 4096 in
  Vec.iteri
    (fun id info ->
      (match info.node with
      | Input origin ->
        Buffer.add_string buf
          (Printf.sprintf "%d i %s %s m%d\n" id (string_of_origin origin)
             info.name info.module_id)
      | Lut { func; fanins } ->
        Buffer.add_string buf
          (Printf.sprintf "%d l %s [%s] %s m%d\n" id (Truth_table.to_string func)
             (String.concat "," (Array.to_list (Array.map string_of_int fanins)))
             info.name info.module_id)))
    t.nodes;
  List.iter
    (fun (target, id) ->
      Buffer.add_string buf (Printf.sprintf "o %s %d\n" (string_of_target target) id))
    (outputs t);
  Buffer.contents buf

let validate t =
  let n = size t in
  Vec.iteri
    (fun id info ->
      match info.node with
      | Input _ -> ()
      | Lut { func; fanins } ->
        if Array.length fanins <> Truth_table.arity func then
          failwith "Lut_network: fanin/arity mismatch";
        Array.iter
          (fun f ->
            if f < 0 || f >= id then failwith "Lut_network: fanin out of order")
          fanins)
    t.nodes;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (target, id) ->
      if id < 0 || id >= n then failwith "Lut_network: dangling output";
      match target with
      | Reg_target (r, b) ->
        if Hashtbl.mem seen (`R (r, b)) then failwith "Lut_network: register bit driven twice";
        Hashtbl.replace seen (`R (r, b)) ()
      | Po_target s ->
        if Hashtbl.mem seen (`P s) then failwith "Lut_network: PO driven twice";
        Hashtbl.replace seen (`P s) ()
      | Wire_target (w, b) ->
        if Hashtbl.mem seen (`W (w, b)) then failwith "Lut_network: wire bit driven twice";
        Hashtbl.replace seen (`W (w, b)) ())
    (outputs t)
