(** The mapped LUT network of one plane: what logic mapping hands to the
    scheduler, the clusterer and ultimately the placer.

    Nodes are either plane inputs (register bits, primary-input bits,
    constants, or wires computed by an earlier plane) or K-input LUTs whose
    function is an explicit truth table. Every LUT carries the RTL module it
    was mapped from ([module_id], an {!Nanomap_rtl.Rtl.id}, or [-1] for glue
    logic) — NanoMap partitions module LUTs into LUT clusters and schedules
    whole clusters at once. *)

type input_origin =
  | Register_bit of Nanomap_rtl.Rtl.id * int  (** plane register bit *)
  | Pi_bit of Nanomap_rtl.Rtl.id * int        (** primary-input bit *)
  | Const_bit of bool
  | Wire_bit of Nanomap_rtl.Rtl.id * int      (** computed by an earlier plane *)

type node =
  | Input of input_origin
  | Lut of {
      func : Nanomap_logic.Truth_table.t;
      fanins : int array; (** node ids; length = arity of [func] *)
    }

type target =
  | Reg_target of Nanomap_rtl.Rtl.id * int    (** register bit written at end of plane *)
  | Po_target of string                       (** primary-output bit *)
  | Wire_target of Nanomap_rtl.Rtl.id * int   (** read by a later plane *)

type t

val create : unit -> t

val add_input : t -> ?name:string -> input_origin -> int
val add_lut :
  t -> ?name:string -> module_id:int ->
  func:Nanomap_logic.Truth_table.t -> fanins:int array -> unit -> int
(** Fanins must exist and match the function arity; raises
    [Invalid_argument] otherwise. Nodes are appended in topological order. *)

val mark_output : t -> target -> int -> unit

val size : t -> int
val node : t -> int -> node
val module_id : t -> int -> int
val node_name : t -> int -> string
val outputs : t -> (target * int) list
val iter : (int -> node -> unit) -> t -> unit

val num_luts : t -> int
val num_inputs : t -> int

val depths : t -> int array
(** LUT level: inputs 0, LUT = 1 + max over fanins. *)

val depth : t -> int
(** Max LUT level in the network (the plane's logic depth). *)

val fanouts : t -> int list array
(** For each node, the LUT nodes it feeds. *)

val modules : t -> (int * int list) list
(** Module id -> its LUT node ids (topological order within the module);
    glue LUTs appear under id [-1]. *)

val module_depths : t -> int -> int array
(** Depth of each node {e relative to the module}: a LUT of module [m] has
    relative depth 1 + max over same-module fanins (other fanins count 0).
    Indexed by node id; non-module nodes hold 0. Used by LUT-cluster
    partitioning. *)

val lut_input_count : t -> int -> int
(** Number of fanins of a LUT node. *)

val eval : t -> (input_origin -> bool) -> bool array
(** Evaluate the whole network under an assignment of the input origins
    ([Const_bit b] always evaluates to [b], the callback is not consulted).
    Returns the value of every node. Used by the functional-equivalence
    tests between gate and LUT levels. *)

val fingerprint : t -> string
(** Canonical textual dump of the whole network (nodes, functions, fanins,
    names, module ids, output bindings). Byte-identical across runs of a
    deterministic mapper; the determinism regression tests compare
    fingerprints of repeated mappings. *)

val validate : t -> unit
(** Structural checks: fanin arity = function arity, all referenced nodes
    exist, every output target driven once. Raises [Failure]. *)
