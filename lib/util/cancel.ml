(* Monotonic-clock token: Unix wall time can step (NTP), which would turn
   a clock adjustment into spurious mass timeouts on a long-lived daemon. *)

type t = {
  deadline_ns : int64 option;
  budget_ms : int option;
  flag : bool Atomic.t;
}

let now_ns () = Monotonic_clock.now ()

let make ?deadline_ms () =
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add (now_ns ()) (Int64.mul (Int64.of_int (max 0 ms)) 1_000_000L))
      deadline_ms
  in
  { deadline_ns; budget_ms = deadline_ms; flag = Atomic.make false }

let none () = make ()

let cancel t = Atomic.set t.flag true

let expired t =
  Atomic.get t.flag
  || (match t.deadline_ns with
     | Some d -> Int64.compare (now_ns ()) d >= 0
     | None -> false)

let remaining_ms t =
  if Atomic.get t.flag then Some 0
  else
    match t.deadline_ns with
    | None -> None
    | Some d ->
      let left = Int64.sub d (now_ns ()) in
      Some (max 0 (Int64.to_int (Int64.div left 1_000_000L)))

let timeout_diag t =
  Diag.make ~stage:"serve" ~code:"timeout"
    ~context:
      (match t.budget_ms with
      | Some ms -> [ ("deadline_ms", string_of_int ms) ]
      | None -> [])
    "job exceeded its deadline and was cancelled at a stage boundary"

let check t = if expired t then raise (Diag.Fail (timeout_diag t))
