(** Cooperative cancellation tokens for deadline-bounded work.

    The compile service admits jobs with a wall-clock budget; a wedged or
    merely slow compile must stop claiming a worker without the service
    resorting to anything preemptive (killing a domain would poison the
    shared runtime). The contract is {e cooperative}: the flow checks its
    token at every stage boundary and the pool checks it before starting
    each task, so a cancelled job is abandoned at the next seam rather
    than mid-stage.

    A token combines an optional monotonic-clock deadline with a manual
    flag (for client-disconnect or drain-driven cancellation). Expiry is
    expressed as the typed diagnostic [serve/timeout], which is exactly
    what {!Nanomap_util.Diag} consumers (the flow driver, the serve
    engine) already journal and return — a timed-out job therefore
    surfaces to the client as a normal typed rejection, never as a
    wedged worker. *)

type t

val now_ns : unit -> int64
(** The monotonic clock tokens measure against (nanoseconds from an
    arbitrary origin) — exposed so services can compute uptimes against
    the same clock their deadlines use. *)

val make : ?deadline_ms:int -> unit -> t
(** A fresh token. With [deadline_ms], {!expired} flips once that many
    milliseconds of monotonic time have elapsed from [make]; without it
    the token only trips via {!cancel}. [deadline_ms <= 0] means already
    expired. *)

val none : unit -> t
(** A token that never expires on its own (fresh — safe to share only if
    nobody calls {!cancel} on it). *)

val cancel : t -> unit
(** Trip the token manually (thread-safe, idempotent). *)

val expired : t -> bool
(** Manually cancelled, or past the deadline. *)

val remaining_ms : t -> int option
(** Milliseconds until expiry ([Some 0] when past due or cancelled);
    [None] for a deadline-free token that has not been cancelled. *)

val timeout_diag : t -> Diag.t
(** The [serve/timeout] diagnostic this token raises, carrying the
    original [deadline_ms] budget in context. *)

val check : t -> unit
(** Raise [Diag.Fail (timeout_diag t)] if {!expired}. The hook stage
    boundaries call. *)
