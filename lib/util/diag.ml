type severity = Warning | Error | Fatal

type t = {
  stage : string;
  severity : severity;
  code : string;
  message : string;
  context : (string * string) list;
}

exception Fail of t

let make ~stage ?(severity = Error) ~code ?(context = []) message =
  { stage; severity; code; message; context }

let fail ~stage ?severity ~code ?context message =
  raise (Fail (make ~stage ?severity ~code ?context message))

let add_context t kvs = { t with context = t.context @ kvs }

let severity_string = function
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

let to_string t =
  let b = Buffer.create 80 in
  Buffer.add_string b (severity_string t.severity);
  Buffer.add_char b '[';
  Buffer.add_string b t.stage;
  Buffer.add_char b '/';
  Buffer.add_string b t.code;
  Buffer.add_string b "] ";
  Buffer.add_string b t.message;
  (match t.context with
  | [] -> ()
  | kvs ->
      Buffer.add_string b " (";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b "; ";
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b v)
        kvs;
      Buffer.add_char b ')');
  Buffer.contents b

let pp ppf t = Format.pp_print_string ppf (to_string t)

let event_data t =
  ("stage", t.stage)
  :: ("severity", severity_string t.severity)
  :: ("code", t.code)
  :: ("message", t.message)
  :: t.context

let of_exn ~stage = function
  | Fail d -> Some d
  | Failure msg -> Some (make ~stage ~code:"uncaught-failure" msg)
  | Invalid_argument msg -> Some (make ~stage ~code:"invalid-argument" msg)
  | _ -> None
