(** Structured flow diagnostics.

    Every failure on the flow path is a typed value: which {e stage} of the
    Fig. 2 pipeline detected it, how bad it is, a stable machine-readable
    [code], a human message, and free-form context key/values (the net, the
    slot, the budget that was exceeded, ...). Stages raise {!Fail} instead
    of [failwith]; the flow driver catches it, journals the diagnostic into
    the telemetry event stream and either degrades gracefully or returns it
    as the [Error] of [Flow.run_result]. *)

type severity =
  | Warning  (** recoverable; the flow can degrade and continue *)
  | Error    (** the artifact is illegal; the stage result is unusable *)
  | Fatal    (** no recovery policy applies *)

type t = {
  stage : string;                  (** pipeline stage that detected it
                                       ("techmap", "fds", "cluster",
                                       "place", "route", "bitstream", ...) *)
  severity : severity;
  code : string;                   (** stable kebab-case identifier, e.g.
                                       ["le-double-booked"] *)
  message : string;
  context : (string * string) list;
}

exception Fail of t

val make :
  stage:string ->
  ?severity:severity ->
  code:string ->
  ?context:(string * string) list ->
  string ->
  t
(** [make ~stage ~code msg] builds a diagnostic; [severity] defaults to
    {!Error}, [context] to []. *)

val fail :
  stage:string ->
  ?severity:severity ->
  code:string ->
  ?context:(string * string) list ->
  string ->
  'a
(** [fail ~stage ~code msg] raises {!Fail}. *)

val add_context : t -> (string * string) list -> t
(** Append key/values to the context (later entries win on render order;
    existing entries are kept). *)

val severity_string : severity -> string
(** ["warning"], ["error"] or ["fatal"]. *)

val to_string : t -> string
(** One line: [severity[stage/code] message (k=v; k2=v2)] — what the CLI
    prints on flow failure. *)

val pp : Format.formatter -> t -> unit

val event_data : t -> (string * string) list
(** The diagnostic flattened to telemetry-event key/values: [stage],
    [severity], [code], [message], then the context pairs. *)

val of_exn : stage:string -> exn -> t option
(** Adopt an exception raised inside a stage: {!Fail} passes through
    (keeping its own stage), [Failure]/[Invalid_argument] become
    ["uncaught-failure"]/["invalid-argument"] diagnostics at [stage].
    [None] for exceptions that should keep propagating (e.g.
    [Out_of_memory], [Stack_overflow]). *)
