let default_max_bytes = 4 * 1024 * 1024

type frame =
  | Frame of string
  | Oversized of int

module Splitter = struct
  type t = {
    max_bytes : int;
    buf : Buffer.t;
    mutable discarding : bool;  (* inside an oversized line, past the bound *)
    mutable discarded : int;    (* bytes dropped of the current oversized line *)
    mutable finished : bool;
  }

  let create ?(max_bytes = default_max_bytes) () =
    { max_bytes; buf = Buffer.create 256; discarding = false; discarded = 0;
      finished = false }

  let pending_bytes t = Buffer.length t.buf + t.discarded

  let feed t chunk =
    if t.finished then invalid_arg "Framing.Splitter.feed: already finished";
    let frames = ref [] in
    let emit f = frames := f :: !frames in
    String.iter
      (fun c ->
        if c = '\n' then begin
          if t.discarding then begin
            (* the oversized frame was already reported when the bound was
               crossed; the newline just re-synchronizes the stream *)
            t.discarding <- false;
            t.discarded <- 0
          end
          else begin
            let line = Buffer.contents t.buf in
            Buffer.clear t.buf;
            (* tolerate \r\n peers *)
            let line =
              let n = String.length line in
              if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
              else line
            in
            if line <> "" then emit (Frame line)
          end
        end
        else if t.discarding then t.discarded <- t.discarded + 1
        else begin
          Buffer.add_char t.buf c;
          if Buffer.length t.buf > t.max_bytes then begin
            emit (Oversized (Buffer.length t.buf));
            Buffer.clear t.buf;
            t.discarding <- true;
            t.discarded <- 0
          end
        end)
      chunk;
    List.rev !frames

  let finish t =
    t.finished <- true;
    if t.discarding then begin
      t.discarding <- false;
      None (* already reported as Oversized *)
    end
    else if Buffer.length t.buf > 0 then begin
      let partial = Buffer.contents t.buf in
      Buffer.clear t.buf;
      Some partial
    end
    else None
end

let read_frame ?max_bytes ic =
  (* Character loop rather than [input_line]: the latter cannot tell a
     newline-terminated final line from a truncated one. *)
  let splitter = Splitter.create ?max_bytes () in
  (* The splitter dies with this call, so an oversized line must be
     drained to its newline here or its tail would leak into the next
     call as a garbage frame. *)
  let rec drain n =
    match input_char ic with
    | '\n' -> `Oversized n
    | _ -> drain (n + 1)
    | exception End_of_file -> `Oversized n
  in
  let rec loop () =
    match input_char ic with
    | c -> (
      match Splitter.feed splitter (String.make 1 c) with
      | [] -> loop ()
      | Frame line :: _ -> `Frame line
      | Oversized n :: _ -> drain n)
    | exception End_of_file -> (
      match Splitter.finish splitter with
      | Some partial -> `Truncated partial
      | None -> `Eof)
  in
  loop ()

let write_frame oc line =
  if String.contains line '\n' then
    invalid_arg "Framing.write_frame: embedded newline";
  output_string oc line;
  output_char oc '\n';
  flush oc
