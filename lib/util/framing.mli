(** Line framing for the compile service's wire protocol.

    A message is one line: a JSON document followed by ['\n']. The framing
    layer enforces a size bound {e before} any parsing happens, so a
    misbehaving client cannot make the daemon buffer an unbounded request,
    and distinguishes three degenerate shapes the protocol tests exercise:

    - {e oversized}: a line longer than [max_bytes]. The splitter keeps
      consuming (and discarding) until the terminating newline, so the
      stream re-synchronizes on the next message;
    - {e truncated}: end-of-input in the middle of a line (no final
      newline) — the peer died mid-message;
    - {e empty} lines, which are tolerated and skipped (keep-alive).

    {!Splitter} is incremental (feed arbitrary byte chunks, collect whole
    frames), which is what the select-based socket loop needs: bytes from
    interleaved clients arrive in arbitrary segment boundaries and each
    connection owns one splitter. {!read_frame} wraps a splitter around a
    blocking [in_channel] for the stdin fallback. *)

val default_max_bytes : int
(** 4 MiB — comfortably above any real job request (a thousand-LUT design
    serializes to tens of kilobytes) and far below anything that could
    pressure the daemon. *)

type frame =
  | Frame of string      (** one complete line, newline stripped *)
  | Oversized of int     (** a line exceeded the bound; payload discarded,
                             the total length consumed so far is reported *)

(** {2 Incremental splitting} *)

module Splitter : sig
  type t

  val create : ?max_bytes:int -> unit -> t

  val feed : t -> string -> frame list
  (** Append a chunk; return the complete frames it finished, in order.
      Empty lines are dropped. An oversized line yields exactly one
      [Oversized] frame (when its terminating newline arrives, or
      immediately once the bound is crossed — the rest of that line is
      then discarded silently). *)

  val finish : t -> string option
  (** End-of-input: returns the unterminated partial line, if any (the
      {e truncated} case — never a valid frame). The splitter must not be
      fed afterwards. *)

  val pending_bytes : t -> int
  (** Bytes buffered for the line in progress (diagnostics). *)
end

(** {2 Channel convenience} *)

val read_frame :
  ?max_bytes:int ->
  in_channel ->
  [ `Frame of string | `Oversized of int | `Eof | `Truncated of string ]
(** Blocking read of the next frame from a channel (skipping empty
    lines). [`Truncated] carries the partial final line. *)

val write_frame : out_channel -> string -> unit
(** Write [line ^ "\n"] and flush. Raises [Invalid_argument] if [line]
    contains a newline (it would forge an extra frame). *)
