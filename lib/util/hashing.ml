let digest_hex s = Digest.to_hex (Digest.string s)

let digest_parts parts =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  digest_hex (Buffer.contents buf)

let is_key s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let short s = if String.length s <= 12 then s else String.sub s 0 12
