(** Content hashing for the artifact cache.

    A compile job's cache key is the digest of a {e canonical
    serialization} of its inputs (netlist, architecture parameters, flow
    options). The determinism contract is therefore exactly the
    serializers': byte-identical canonical forms — and only those — share
    a cache entry. The digest itself is the stdlib's MD5 ({!Stdlib.Digest}),
    which is fine here: keys index a local trusted cache, they are not a
    security boundary.

    Keys are rendered as 32 lowercase hex characters; {!is_key} validates
    the shape before a key is used as an on-disk path component. *)

val digest_hex : string -> string
(** MD5 of the string, lowercase hex (32 chars). *)

val digest_parts : string list -> string
(** Digest of the parts joined with an unambiguous length-prefixed
    framing ([<decimal length>:<bytes>] per part, concatenated), so
    [["ab"; "c"]] and [["a"; "bc"]] hash differently. This is the job-key
    entry point: each part is one canonical section (format tag, netlist,
    arch, options). *)

val is_key : string -> bool
(** 32 lowercase-hex characters — a value {!digest_hex} could have
    produced. *)

val short : string -> string
(** First 12 characters — for logs and telemetry labels. *)
