type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------ printing *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec print_into buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      (* non-finite: JSON has no spelling; null keeps the document valid *)
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        print_into buf x)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------- parsing *)

exception Bad of int * string

let parse_exn_internal s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal (expected " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* encode the code point as UTF-8; the printer only emits
                  \u00XX so round-trips stay exact *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
    in
    if is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail ("bad number " ^ text))
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let members = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          members := member () :: !members;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !members)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn_internal s with
  | v -> Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "offset %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error e -> failwith ("Json.parse: " ^ e)

(* ----------------------------------------------------------- accessors *)

let member name = function
  | Obj members -> List.assoc_opt name members
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | Null | Bool _ | Float _ | String _ | List _ | Obj _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null | Bool _ | String _ | List _ | Obj _ -> None

let to_bool = function
  | Bool b -> Some b
  | Null | Int _ | Float _ | String _ | List _ | Obj _ -> None

let to_str = function
  | String s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let to_list = function
  | List xs -> Some xs
  | Null | Bool _ | Int _ | Float _ | String _ | Obj _ -> None

(* Textual top-level-member splice: the report files this touches are
   written by this module's printer, but hand-edited whitespace survives
   too — the scan only assumes the file is one JSON object. *)
let splice_file_section ~file ~key json =
  let member = Printf.sprintf "\"%s\":" key in
  let existing =
    if Sys.file_exists file then begin
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (String.trim s)
    end
    else None
  in
  let out =
    match existing with
    | None | Some "" | Some "{}" -> Printf.sprintf "{%s%s}" member json
    | Some s ->
      let n = String.length s in
      let m = String.length member in
      (* a top-level occurrence is preceded by '{' or ','; nested or
         in-string occurrences are skipped by the depth/string scan *)
      let rec find i depth in_str =
        if i >= n then None
        else if in_str then
          match s.[i] with
          | '\\' -> find (i + 2) depth true
          | '"' ->
            if depth = 1 && i + m <= n && String.sub s i m = member
               && i > 0 && (s.[i - 1] = '{' || s.[i - 1] = ',')
            then Some i
            else find (i + 1) depth false
          | _ -> find (i + 1) depth true
        else
          match s.[i] with
          | '"' ->
            if depth = 1 && i + m <= n && String.sub s i m = member
               && i > 0 && (s.[i - 1] = '{' || s.[i - 1] = ',')
            then Some i
            else find (i + 1) depth true
          | '{' | '[' -> find (i + 1) (depth + 1) false
          | '}' | ']' -> find (i + 1) (depth - 1) false
          | _ -> find (i + 1) depth false
      in
      (match find 0 0 false with
       | None -> String.sub s 0 (n - 1) ^ "," ^ member ^ json ^ "}"
       | Some i ->
         let vstart = i + m in
         (* end of the value: at bracket depth 0, the next ',' or the
            object's closing brace; strings may contain either *)
         let rec vend j depth in_str =
           if j >= n then j
           else if in_str then
             match s.[j] with
             | '\\' -> vend (j + 2) depth true
             | '"' -> vend (j + 1) depth false
             | _ -> vend (j + 1) depth true
           else
             match s.[j] with
             | '"' -> vend (j + 1) depth true
             | '{' | '[' -> vend (j + 1) (depth + 1) false
             | ('}' | ']' | ',') when depth = 0 -> j
             | '}' | ']' -> vend (j + 1) (depth - 1) false
             | _ -> vend (j + 1) depth false
         in
         let j = vend vstart 0 false in
         String.sub s 0 i ^ member ^ json ^ String.sub s j (n - j))
  in
  let oc = open_out file in
  output_string oc out;
  output_char oc '\n';
  close_out oc
