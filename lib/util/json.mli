(** A minimal JSON tree with a strict parser and a {e stable} printer.

    The compile service's wire protocol, the artifact cache's on-disk
    metadata and the bench reports all speak JSON; nothing in the toolchain
    may depend on an external JSON package, so this is a small, total
    implementation of RFC 8259's essentials:

    - the printer emits no insignificant whitespace and keeps object
      members in the order the value carries them, so a value prints
      byte-identically on every run — serialized artifacts can be compared
      (and content-hashed) as strings;
    - the parser accepts exactly what the printer emits plus ordinary
      interchange JSON (whitespace, nested containers, escapes, floats);
      it rejects trailing garbage, unterminated strings and literals it
      does not know, with a character position in the error;
    - numbers are split into [Int] (fits in an OCaml [int], printed with
      no decimal point) and [Float] (printed with round-trip precision),
      which keeps integer fields exact.

    Not supported (not needed by the protocol): surrogate-pair unicode
    escapes are passed through as their escaped form rather than decoded. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Stable, whitespace-free rendering. Object members keep their order;
    strings are escaped per JSON (quote, backslash, control characters as
    [u00XX] escapes); floats use the shortest representation that
    round-trips ([%.17g] fallback), with non-finite floats rendered as
    [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON value covering the whole string (surrounding
    whitespace allowed). [Error] carries ["offset N: reason"]. Never
    raises. *)

val parse_exn : string -> t
(** [parse] or [Failure]. *)

(** {2 Accessors}

    Total lookups used by the protocol decoder; all return [option]
    rather than raising. *)

val member : string -> t -> t option
(** Object member by name ([None] on non-objects too). *)

val to_int : t -> int option
(** [Int] directly; [Float] only when integral. *)

val to_float : t -> float option
(** [Float] or [Int]. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

val splice_file_section : file:string -> key:string -> string -> unit
(** Splice [("key": json)] into [file]'s top-level JSON object: replace an
    existing member in place (balanced-bracket scan over its value, so
    sections can live in any order), append before the closing brace
    otherwise, and start a fresh one-member object when the file is absent.
    Lets independent experiments each refresh their own section of a shared
    report file without clobbering the others. *)
