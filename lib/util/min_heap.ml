type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable len : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { keys = Array.make capacity 0.0; payloads = Array.make capacity 0; len = 0 }

let length h = h.len
let is_empty h = h.len = 0
let clear h = h.len <- 0

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let p = h.payloads.(i) in
  h.payloads.(i) <- h.payloads.(j);
  h.payloads.(j) <- p

let grow h =
  let cap = Array.length h.keys in
  let keys = Array.make (2 * cap) 0.0 in
  let payloads = Array.make (2 * cap) 0 in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.payloads 0 payloads 0 h.len;
  h.keys <- keys;
  h.payloads <- payloads

let push h key payload =
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.payloads.(h.len) <- payload;
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let sift_down h =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
    if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
    if !smallest = !i then continue_ := false
    else begin
      swap h !i !smallest;
      i := !smallest
    end
  done

let pop_unsafe h =
  if h.len = 0 then invalid_arg "Min_heap.pop_unsafe: empty heap";
  let key = h.keys.(0) and payload = h.payloads.(0) in
  h.len <- h.len - 1;
  h.keys.(0) <- h.keys.(h.len);
  h.payloads.(0) <- h.payloads.(h.len);
  sift_down h;
  (key, payload)

let pop h = if h.len = 0 then None else Some (pop_unsafe h)
