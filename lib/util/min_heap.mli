(** Minimal binary min-heap on [(float key, int payload)] pairs, backed by
    a pair of flat growable arrays so neither {!push} nor {!pop} allocates
    (beyond occasional doubling). Shared by the router's wavefront
    expansion and the routing-graph lookahead precomputation — both hot
    paths that live and die by heap traffic. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap. [capacity] (default 64) is only the initial array
    size; the heap grows as needed. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Drop all entries, keeping the backing storage. *)

val push : t -> float -> int -> unit
(** [push h key payload] inserts. Duplicate keys and payloads are fine
    (the router pushes stale re-discoveries rather than decrease-key). *)

val pop : t -> (float * int) option
(** Remove and return an entry with the minimum key, or [None] when
    empty. Ties are broken arbitrarily but deterministically (the heap is
    a pure function of the push/pop sequence). *)

val pop_unsafe : t -> float * int
(** Like {!pop} but raises [Invalid_argument] on an empty heap; avoids
    the option allocation on paths that already know the heap is
    non-empty. *)
