(* A deterministic fixed-size domain pool. Scheduling is free-for-all
   (any idle domain claims the next unclaimed index), but everything
   observable is pinned to submission order: results land in a slot per
   index, seeds are derived before any task runs, and the join point
   re-raises the lowest-index failure. The submitting domain works too,
   so [jobs = 1] runs entirely on the caller with no domain spawned. *)

let default_jobs_cap = 8

let default_jobs () = min default_jobs_cap (Domain.recommended_domain_count ())

let resolve_jobs n = if n <= 0 then default_jobs () else n

(* One batch of tasks. [run] owns per-task exception capture, so from the
   pool's point of view it never raises. *)
type job = {
  run : int -> unit;
  total : int;
  mutable next : int;       (* next unclaimed task index *)
  mutable completed : int;
}

type t = {
  n_jobs : int;           (* requested parallelism, reported by [jobs] *)
  n_workers : int;        (* domains that actually participate in a map *)
  mutex : Mutex.t;
  work : Condition.t;       (* a job was published, or shutdown began *)
  idle : Condition.t;       (* the current job's last task completed *)
  mutable current : job option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs
let workers t = t.n_workers

(* Workers loop: claim an index under the mutex, run it unlocked, book the
   completion. The final completion wakes the submitter. *)
let rec worker t =
  Mutex.lock t.mutex;
  let rec claim () =
    if t.stopping then begin
      Mutex.unlock t.mutex;
      None
    end
    else
      match t.current with
      | Some j when j.next < j.total ->
        let i = j.next in
        j.next <- i + 1;
        Mutex.unlock t.mutex;
        Some (j, i)
      | Some _ | None ->
        Condition.wait t.work t.mutex;
        claim ()
  in
  match claim () with
  | None -> ()
  | Some (j, i) ->
    j.run i;
    Mutex.lock t.mutex;
    j.completed <- j.completed + 1;
    if j.completed = j.total then Condition.broadcast t.idle;
    Mutex.unlock t.mutex;
    worker t

let create ?jobs ?(oversubscribe = false) () =
  let n = match jobs with None -> default_jobs () | Some j -> max 1 j in
  (* Results are pinned to submission order regardless of who runs what,
     so the worker-domain count is purely a wall-clock decision. More
     domains than cores is strictly harmful (each minor GC is a
     stop-the-world handshake across every domain, and oversubscribed
     domains stall the barrier), so physical workers are capped at the
     hardware parallelism unless a test explicitly opts out to exercise
     the multi-domain protocol on any machine. *)
  let w =
    if oversubscribe then n
    else min n (Domain.recommended_domain_count ())
  in
  let t =
    { n_jobs = n;
      n_workers = w;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      current = None;
      stopping = false;
      domains = [] }
  in
  t.domains <- List.init (w - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ds = t.domains in
  t.stopping <- true;
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

let with_pool ?jobs ?oversubscribe f =
  let t = create ?jobs ?oversubscribe () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The submitter publishes the job, then helps drain it; it only blocks
   once no task is left to claim but stragglers are still running. *)
let run_job t job =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  if t.current <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: a task may not map on the pool running it"
  end;
  if job.total > 0 then begin
    t.current <- Some job;
    Condition.broadcast t.work;
    let rec help () =
      if job.next < job.total then begin
        let i = job.next in
        job.next <- i + 1;
        Mutex.unlock t.mutex;
        job.run i;
        Mutex.lock t.mutex;
        job.completed <- job.completed + 1;
        help ()
      end
      else if job.completed < job.total then begin
        Condition.wait t.idle t.mutex;
        help ()
      end
    in
    help ();
    t.current <- None
  end;
  Mutex.unlock t.mutex

let mapi ?cancel t ~f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let run i =
      let r =
        (* The cancellation check runs inside the capture: a tripped token
           turns every not-yet-started task into a per-task [Diag.Fail]
           (serve/timeout) instead of tearing the pool down, and the join
           point re-raises the lowest-index one as usual. Tasks already
           running are the stages' business — they check their own token
           at stage boundaries. *)
        match
          (match cancel with Some c -> Cancel.check c | None -> ());
          f i xs.(i)
        with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    run_job t { run; total = n; next = 0; completed = 0 };
    (* First failure wins, deterministically: the scan is in index order
       and every task has run to completion by now. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  end

let map ?cancel t ~f xs = mapi ?cancel t ~f:(fun _ x -> f x) xs

let map_seeded ?cancel t ~rng ~f xs =
  (* Seeds are split off serially, in index order, before any task runs:
     task [i]'s stream is a function of [rng]'s state and [i] alone. *)
  let seeds = Array.map (fun _ -> Rng.split rng) xs in
  mapi ?cancel t ~f:(fun i x -> f seeds.(i) x) xs

let map_reduce ?cancel t ~f ~combine ~init xs =
  Array.fold_left combine init (map ?cancel t ~f xs)
