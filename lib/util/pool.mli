(** A fixed-size worker pool over OCaml 5 domains, with a determinism
    contract: the worker count changes {e wall-clock time only}, never a
    result.

    Every [map]-family function hands out tasks to whichever domain is
    free, but

    - results are combined in {e submission order}, regardless of
      completion order;
    - per-task randomness ({!map_seeded}) is derived from the parent RNG
      {e serially, in index order}, before any task runs, so task [i]
      sees the same seed whether the pool has one worker or sixteen;
    - a raising task never tears down the pool: every task runs to
      completion, exceptions are captured per task, and the join point
      re-raises the exception of the {e lowest-index} failing task with
      its original backtrace (so a [Diag.Fail] thrown inside a worker
      surfaces exactly as it would from serial code).

    A pool of [jobs = 1] spawns no domains at all — everything runs on
    the calling domain — which makes [-j 1] trivially byte-identical to
    the pre-pool serial code and cheap enough to keep as a default.

    The submitting domain participates in the work, so a pool of [jobs]
    uses [jobs - 1] spawned domains. Maps on one pool do not nest: a
    task must not call a [map] on the pool that is running it (use a
    serial fallback or a second pool instead). *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8 — the default for
    [--jobs] auto mode. *)

val resolve_jobs : int -> int
(** CLI convention: [resolve_jobs n] is [n] for positive [n] and
    {!default_jobs}[ ()] for zero or negative (the "auto" spelling). *)

val create : ?jobs:int -> ?oversubscribe:bool -> unit -> t
(** A pool of [jobs] workers (default {!default_jobs}[ ()]; values < 1
    are clamped to 1). Spawns [workers - 1] domains that live until
    {!shutdown}, where [workers = min jobs (recommended_domain_count)]:
    since results never depend on the worker count, physical domains are
    capped at the hardware parallelism — running more would only stall
    the stop-the-world GC barrier. [~oversubscribe:true] disables the
    cap so tests can exercise the multi-domain protocol even on a
    single-core machine. *)

val jobs : t -> int
(** The requested parallelism (what [-j] was set to). *)

val workers : t -> int
(** The number of domains that actually cooperate on a map, including
    the caller — [min (jobs t) (recommended_domain_count ())] unless the
    pool was created with [~oversubscribe:true]. *)

val map : ?cancel:Cancel.t -> t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map pool ~f xs] is [Array.map f xs] computed on the pool's workers.
    Result order is submission order. With [cancel], the token is checked
    before each task starts: once it trips, every not-yet-started task
    fails with the token's [serve/timeout] {!Diag.Fail} (captured per
    task like any other exception — the pool itself stays usable). *)

val mapi : ?cancel:Cancel.t -> t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array

val map_seeded :
  ?cancel:Cancel.t ->
  t -> rng:Rng.t -> f:(Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} but each task gets its own private RNG, split off [rng]
    serially in index order before any task starts (advancing [rng] by
    one draw per task). Identical streams for every worker count. *)

val map_reduce :
  ?cancel:Cancel.t ->
  t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** [map] then a left fold of [combine] over the results in submission
    order — the deterministic merge point for sharded campaigns. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> ?oversubscribe:bool -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
