(* CDCL SAT solver — see sat.mli for the overview. The layout follows
   MiniSat: one clause arena (problem + learnt interleaved, learnt never
   deleted — [max_conflicts] bounds growth at the scales this serves),
   per-literal watch lists of arena indices, a flat trail with level
   marks, and an indexed max-heap for VSIDS. Everything is int arrays;
   no randomness anywhere, ties always break toward the lower variable
   index, so runs are reproducible bit-for-bit. *)

type lit = int

let pos v = v * 2
let neg v = (v * 2) + 1
let negate l = l lxor 1
let var_of l = l lsr 1
let sign l = l land 1 = 0

type result = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learnt : int;
}

type t = {
  mutable nvars : int;
  (* clause arena; [reason] entries index into it *)
  mutable clauses : int array array;
  mutable n_clauses : int;
  mutable n_learnt : int;
  (* clauses as handed to [add_clause], pre-simplification, for export *)
  mutable originals : int array array;
  mutable n_originals : int;
  (* watches.(l) = indices of clauses watching literal l *)
  mutable watches : int array array;
  mutable watch_len : int array;
  (* per-variable: assigns.(v) = parity of the true literal, -1 unassigned *)
  mutable assigns : int array;
  mutable level : int array;
  mutable reason : int array; (* clause index, -1 for decisions *)
  mutable activity : float array;
  mutable saved_phase : bool array;
  mutable seen : bool array;
  (* trail *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable n_levels : int;
  mutable qhead : int;
  (* VSIDS order heap: max on activity, ties to the lower index *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;
  mutable var_inc : float;
  (* analyze scratch, sized with the variables *)
  mutable an_out : int array;
  mutable an_clear : int array;
  mutable ok : bool; (* false once a top-level conflict is proven *)
  mutable model_ : bool array option;
  mutable decisions : int;
  mutable conflicts : int;
  mutable propagations : int;
  mutable restarts : int;
}

let num_vars s = s.nvars
let num_clauses s = s.n_originals

let stats s =
  {
    decisions = s.decisions;
    conflicts = s.conflicts;
    propagations = s.propagations;
    restarts = s.restarts;
    learnt = s.n_learnt;
  }

(* ---- growable storage ------------------------------------------------ *)

let cap_for n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let grow_int_arr a n def =
  let old = Array.length a in
  if n <= old then a
  else begin
    let b = Array.make (cap_for n) def in
    Array.blit a 0 b 0 old;
    b
  end

let grow_vars s n =
  let old = Array.length s.assigns in
  if n > old then begin
    let cap = cap_for n in
    let gi a def = grow_int_arr a cap def in
    s.assigns <- gi s.assigns (-1);
    s.level <- gi s.level 0;
    s.reason <- gi s.reason (-1);
    s.trail <- gi s.trail 0;
    s.heap <- gi s.heap 0;
    s.heap_pos <- gi s.heap_pos (-1);
    s.an_out <- grow_int_arr s.an_out (cap + 1) 0;
    s.an_clear <- gi s.an_clear 0;
    let act = Array.make cap 0. in
    Array.blit s.activity 0 act 0 old;
    s.activity <- act;
    let ph = Array.make cap false in
    Array.blit s.saved_phase 0 ph 0 old;
    s.saved_phase <- ph;
    let sn = Array.make cap false in
    Array.blit s.seen 0 sn 0 old;
    s.seen <- sn;
    let w = Array.make (2 * cap) [||] in
    Array.blit s.watches 0 w 0 (2 * old);
    s.watches <- w;
    s.watch_len <- grow_int_arr s.watch_len (2 * cap) 0
  end

(* ---- VSIDS order heap ------------------------------------------------ *)

let better s v w =
  s.activity.(v) > s.activity.(w)
  || (s.activity.(v) = s.activity.(w) && v < w)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if better s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < s.heap_size && better s s.heap.(l) s.heap.(!m) then m := l;
  if r < s.heap_size && better s s.heap.(r) s.heap.(!m) then m := r;
  if !m <> i then begin
    heap_swap s i !m;
    heap_down s !m
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    let w = s.heap.(s.heap_size) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_down s 0
  end;
  v

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* rescale; relative order (and thus the heap) is preserved *)
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* ---- construction ---------------------------------------------------- *)

let new_var s =
  grow_vars s (s.nvars + 1);
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns.(v) <- -1;
  s.reason.(v) <- -1;
  s.level.(v) <- 0;
  s.activity.(v) <- 0.;
  s.saved_phase.(v) <- false;
  s.seen.(v) <- false;
  heap_insert s v;
  v

let create ?(nvars = 0) () =
  let s =
    {
      nvars = 0;
      clauses = Array.make 16 [||];
      n_clauses = 0;
      n_learnt = 0;
      originals = Array.make 16 [||];
      n_originals = 0;
      watches = Array.make 32 [||];
      watch_len = Array.make 32 0;
      assigns = Array.make 16 (-1);
      level = Array.make 16 0;
      reason = Array.make 16 (-1);
      activity = Array.make 16 0.;
      saved_phase = Array.make 16 false;
      seen = Array.make 16 false;
      trail = Array.make 16 0;
      trail_size = 0;
      trail_lim = Array.make 16 0;
      n_levels = 0;
      qhead = 0;
      heap = Array.make 16 0;
      heap_size = 0;
      heap_pos = Array.make 16 (-1);
      var_inc = 1.;
      an_out = Array.make 17 0;
      an_clear = Array.make 16 0;
      ok = true;
      model_ = None;
      decisions = 0;
      conflicts = 0;
      propagations = 0;
      restarts = 0;
    }
  in
  for _ = 1 to nvars do
    ignore (new_var s)
  done;
  s

(* ---- assignment and propagation -------------------------------------- *)

(* 1 = literal true, 0 = false, -1 = unassigned *)
let lit_value s l =
  let a = s.assigns.(l lsr 1) in
  if a < 0 then -1 else if a = l land 1 then 1 else 0

let enqueue s l reason =
  let v = l lsr 1 in
  s.assigns.(v) <- l land 1;
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let watch_push s l ci =
  let w = s.watches.(l) in
  let n = s.watch_len.(l) in
  let w =
    if n = Array.length w then begin
      let nw = Array.make (max 4 (2 * n)) 0 in
      Array.blit w 0 nw 0 n;
      s.watches.(l) <- nw;
      nw
    end
    else w
  in
  w.(n) <- ci;
  s.watch_len.(l) <- n + 1

(* push a clause (length >= 2) into the arena and watch its first two
   literals; returns the arena index *)
let clause_push s c =
  if s.n_clauses = Array.length s.clauses then begin
    let nc = Array.make (2 * s.n_clauses) [||] in
    Array.blit s.clauses 0 nc 0 s.n_clauses;
    s.clauses <- nc
  end;
  let ci = s.n_clauses in
  s.clauses.(ci) <- c;
  s.n_clauses <- ci + 1;
  watch_push s c.(0) ci;
  watch_push s c.(1) ci;
  ci

let new_level s =
  s.trail_lim <- grow_int_arr s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = s.trail.(i) lsr 1 in
      s.saved_phase.(v) <- s.assigns.(v) = 0;
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- lvl
  end

(* returns a conflicting clause index, or -1 *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = negate p in
    let ws = s.watches.(fl) in
    let n = s.watch_len.(fl) in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let ci = ws.(!i) in
      incr i;
      let c = s.clauses.(ci) in
      (* normalize: the falsified watch sits at position 1 *)
      if c.(0) = fl then begin
        c.(0) <- c.(1);
        c.(1) <- fl
      end;
      let first = c.(0) in
      if lit_value s first = 1 then begin
        ws.(!j) <- ci;
        incr j
      end
      else begin
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && lit_value s c.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          (* found a replacement watch; this list drops the clause.
             [watch_push] never reallocates [ws]: the new watch is
             non-false while [fl] is false, so they differ. *)
          c.(1) <- c.(!k);
          c.(!k) <- fl;
          watch_push s c.(1) ci
        end
        else begin
          ws.(!j) <- ci;
          incr j;
          if lit_value s first = 0 then begin
            confl := ci;
            while !i < n do
              ws.(!j) <- ws.(!i);
              incr j;
              incr i
            done;
            s.qhead <- s.trail_size
          end
          else enqueue s first ci
        end
      end
    done;
    s.watch_len.(fl) <- !j
  done;
  !confl

(* ---- clause addition (level 0 only) ---------------------------------- *)

let add_clause s lits =
  List.iter
    (fun l ->
      if l < 0 || l lsr 1 >= s.nvars then
        invalid_arg "Sat.add_clause: literal out of range")
    lits;
  if s.n_originals = Array.length s.originals then begin
    let no = Array.make (2 * s.n_originals) [||] in
    Array.blit s.originals 0 no 0 s.n_originals;
    s.originals <- no
  end;
  s.originals.(s.n_originals) <- Array.of_list lits;
  s.n_originals <- s.n_originals + 1;
  if s.ok then begin
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (negate l) lits) lits in
    if not taut then begin
      if not (List.exists (fun l -> lit_value s l = 1) lits) then begin
        (* drop literals already false at level 0 *)
        match List.filter (fun l -> lit_value s l <> 0) lits with
        | [] -> s.ok <- false
        | [ l ] -> enqueue s l (-1)
        | c -> ignore (clause_push s (Array.of_list c))
      end
    end
  end

(* ---- conflict analysis (first UIP) ----------------------------------- *)

(* returns (learnt length in s.an_out with the asserting literal at 0,
   backjump level); position 1 holds the next-highest-level literal so
   the caller can watch positions 0 and 1 *)
let analyze s confl0 =
  let out = s.an_out and to_clear = s.an_clear in
  let out_n = ref 1 and clear_n = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let confl = ref confl0 in
  let looping = ref true in
  while !looping do
    let c = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length c - 1 do
      let q = c.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear.(!clear_n) <- v;
        incr clear_n;
        var_bump s v;
        if s.level.(v) >= s.n_levels then incr counter
        else begin
          out.(!out_n) <- q;
          incr out_n
        end
      end
    done;
    while not s.seen.(s.trail.(!index) lsr 1) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    if !counter = 0 then looping := false else confl := s.reason.(!p lsr 1)
  done;
  out.(0) <- negate !p;
  (* local minimization: a literal whose reason clause is covered by the
     other kept literals (or level 0) is implied by them — drop it *)
  let redundant q =
    let v = q lsr 1 in
    let r = s.reason.(v) in
    r >= 0
    && begin
         let c = s.clauses.(r) in
         let keep = ref true in
         for k = 0 to Array.length c - 1 do
           let w = c.(k) lsr 1 in
           if w <> v && (not s.seen.(w)) && s.level.(w) > 0 then keep := false
         done;
         !keep
       end
  in
  let j = ref 1 in
  for i = 1 to !out_n - 1 do
    if not (redundant out.(i)) then begin
      out.(!j) <- out.(i);
      incr j
    end
  done;
  out_n := !j;
  for i = 0 to !clear_n - 1 do
    s.seen.(to_clear.(i)) <- false
  done;
  let blevel =
    if !out_n = 1 then 0
    else begin
      let mi = ref 1 in
      for i = 2 to !out_n - 1 do
        if s.level.(out.(i) lsr 1) > s.level.(out.(!mi) lsr 1) then mi := i
      done;
      let tmp = out.(1) in
      out.(1) <- out.(!mi);
      out.(!mi) <- tmp;
      s.level.(out.(1) lsr 1)
    end
  in
  (!out_n, blevel)

(* ---- Luby restart sequence ------------------------------------------- *)

let luby i =
  if i < 0 then invalid_arg "Sat.luby";
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* ---- main search loop ------------------------------------------------- *)

let restart_unit = 100

let pick_branch s =
  let v = ref (-1) in
  while !v < 0 && s.heap_size > 0 do
    let w = heap_pop s in
    if s.assigns.(w) < 0 then v := w
  done;
  !v

let solve ?(assumptions = []) ?max_conflicts s =
  List.iter
    (fun l ->
      if l < 0 || l lsr 1 >= s.nvars then
        invalid_arg "Sat.solve: assumption out of range")
    assumptions;
  s.model_ <- None;
  if not s.ok then Unsat
  else begin
    let assumps = Array.of_list assumptions in
    let n_assumps = Array.length assumps in
    let budget =
      match max_conflicts with
      | None -> max_int
      | Some b -> if b >= max_int - s.conflicts then max_int else s.conflicts + b
    in
    let luby_idx = ref 0 in
    let limit = ref (restart_unit * luby 0) in
    let since_restart = ref 0 in
    let result = ref None in
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr since_restart;
        if s.n_levels = 0 then begin
          s.ok <- false;
          result := Some Unsat
        end
        else begin
          let len, blevel = analyze s confl in
          cancel_until s blevel;
          if len = 1 then enqueue s s.an_out.(0) (-1)
          else begin
            let c = Array.sub s.an_out 0 len in
            let ci = clause_push s c in
            s.n_learnt <- s.n_learnt + 1;
            enqueue s c.(0) ci
          end;
          var_decay s;
          if s.conflicts >= budget then begin
            cancel_until s 0;
            result := Some Unknown
          end
          else if !since_restart >= !limit then begin
            cancel_until s 0;
            s.restarts <- s.restarts + 1;
            incr luby_idx;
            since_restart := 0;
            limit := restart_unit * luby !luby_idx
          end
        end
      end
      else if s.n_levels < n_assumps then begin
        (* take the next assumption as a pseudo-decision *)
        let p = assumps.(s.n_levels) in
        match lit_value s p with
        | 1 -> new_level s (* already true: dummy level keeps indices lined up *)
        | 0 ->
          cancel_until s 0;
          result := Some Unsat (* unsat under the assumptions; s.ok stays *)
        | _ ->
          new_level s;
          enqueue s p (-1)
      end
      else begin
        let v = pick_branch s in
        if v < 0 then begin
          s.model_ <- Some (Array.init s.nvars (fun v -> s.assigns.(v) = 0));
          cancel_until s 0;
          result := Some Sat
        end
        else begin
          s.decisions <- s.decisions + 1;
          new_level s;
          enqueue s (if s.saved_phase.(v) then pos v else neg v) (-1)
        end
      end
    done;
    match !result with Some r -> r | None -> assert false
  end

let model s =
  match s.model_ with
  | Some m -> Array.copy m
  | None -> invalid_arg "Sat.model: last solve did not return Sat"

let value s v =
  match s.model_ with
  | Some m ->
    if v < 0 || v >= Array.length m then invalid_arg "Sat.value: no such variable";
    m.(v)
  | None -> invalid_arg "Sat.value: last solve did not return Sat"

(* ---- DIMACS ----------------------------------------------------------- *)

module Dimacs = struct
  let parse text =
    let nvars = ref (-1) and ncl = ref (-1) in
    let clauses = ref [] and cur = ref [] in
    let lineno = ref 0 in
    let fail msg = failwith (Printf.sprintf "dimacs: line %d: %s" !lineno msg) in
    List.iter
      (fun line ->
        incr lineno;
        let line =
          String.map (function '\t' | '\r' -> ' ' | ch -> ch) line |> String.trim
        in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          if !nvars >= 0 then fail "duplicate header";
          match
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          with
          | [ "p"; "cnf"; v; c ] -> (
            match (int_of_string_opt v, int_of_string_opt c) with
            | Some v, Some c when v >= 0 && c >= 0 ->
              nvars := v;
              ncl := c
            | _ -> fail "malformed header")
          | _ -> fail "malformed header"
        end
        else begin
          if !nvars < 0 then fail "clause before header";
          List.iter
            (fun tok ->
              match int_of_string_opt tok with
              | None -> fail (Printf.sprintf "not an integer: %S" tok)
              | Some 0 ->
                clauses := List.rev !cur :: !clauses;
                cur := []
              | Some l ->
                if abs l > !nvars then
                  fail (Printf.sprintf "literal %d out of range 1..%d" l !nvars);
                cur := l :: !cur)
            (String.split_on_char ' ' line |> List.filter (fun t -> t <> ""))
        end)
      (String.split_on_char '\n' text);
    if !nvars < 0 then failwith "dimacs: missing header";
    if !cur <> [] then failwith "dimacs: unterminated clause";
    let cs = List.rev !clauses in
    let found = List.length cs in
    if found <> !ncl then
      failwith
        (Printf.sprintf "dimacs: header declares %d clauses, found %d" !ncl found);
    (!nvars, cs)

  let print ~nvars clauses =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
    List.iter
      (fun c ->
        List.iter
          (fun l ->
            Buffer.add_string b (string_of_int l);
            Buffer.add_char b ' ')
          c;
        Buffer.add_string b "0\n")
      clauses;
    Buffer.contents b

  let lit_of_dimacs l = if l > 0 then pos (l - 1) else neg (-l - 1)
  let dimacs_of_lit l = if sign l then var_of l + 1 else -(var_of l + 1)

  let add s dlits =
    List.iter
      (fun l -> if l = 0 then invalid_arg "Sat.Dimacs.add: zero literal")
      dlits;
    let maxv = List.fold_left (fun m l -> max m (abs l)) 0 dlits in
    while num_vars s < maxv do
      ignore (new_var s)
    done;
    add_clause s (List.map lit_of_dimacs dlits)

  let of_string text =
    let nvars, cs = parse text in
    let s = create ~nvars () in
    List.iter (fun c -> add s c) cs;
    s

  let export s =
    let b = Buffer.create 256 in
    Buffer.add_string b (Printf.sprintf "p cnf %d %d\n" s.nvars s.n_originals);
    for i = 0 to s.n_originals - 1 do
      Array.iter
        (fun l ->
          Buffer.add_string b (string_of_int (dimacs_of_lit l));
          Buffer.add_char b ' ')
        s.originals.(i);
      Buffer.add_string b "0\n"
    done;
    Buffer.contents b
end
