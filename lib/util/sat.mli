(** A small conflict-driven clause-learning (CDCL) SAT solver.

    Built for the exact defect-tolerant assignment problems of the physical
    flow (placement-under-defects as CNF, cf. the CMOL cell-assignment
    literature), but deliberately general: routing-feasibility queries and
    checker proofs can reuse it. The implementation is the classic MiniSat
    recipe at small scale:

    - {e two-watched-literal} unit propagation (clauses are touched only
      when one of their two watches is falsified);
    - {e first-UIP} conflict analysis with local clause minimization,
      learning one asserting clause per conflict and backjumping;
    - {e VSIDS} decision heuristic (exponentially-decayed variable
      activities in an indexed max-heap) with {e phase saving};
    - {e Luby-sequence restarts};
    - DIMACS CNF import/export for interop and differential testing.

    The solver is fully deterministic: no randomness, ties broken by
    variable index, so equal inputs give equal models, statistics and
    proofs on every machine and worker count. *)

type t

type lit = int
(** A literal is [2*var] (positive) or [2*var + 1] (negated). *)

val pos : int -> lit
(** [pos v] is the positive literal of variable [v] (0-based). *)

val neg : int -> lit
(** [neg v] is the negated literal of variable [v]. *)

val negate : lit -> lit

val var_of : lit -> int

val sign : lit -> bool
(** [true] for a positive literal. *)

val create : ?nvars:int -> unit -> t
(** A fresh solver over [nvars] (default 0) variables. *)

val new_var : t -> int
(** Allocate one more variable and return its index. *)

val num_vars : t -> int

val num_clauses : t -> int
(** Problem clauses added so far (not counting learnt clauses). *)

val add_clause : t -> lit list -> unit
(** Add a clause (a disjunction of literals). Duplicate literals are
    dropped, tautologies ([l] and [negate l] together) are ignored, and
    the empty clause makes the instance trivially unsatisfiable. Clauses
    may only be added between [solve] calls (the solver is then at
    decision level 0). Raises [Invalid_argument] on an out-of-range
    variable. *)

type result = Sat | Unsat | Unknown

val solve : ?assumptions:lit list -> ?max_conflicts:int -> t -> result
(** Solve the current clause set. [assumptions] are tried as the first
    decisions (in order); an [Unsat] answer then means "unsatisfiable
    under these assumptions" — the clause set itself may still be
    satisfiable, and the solver remains usable for further [solve] calls
    (incremental use). [max_conflicts] bounds the search; exceeding it
    returns [Unknown]. After [Sat], {!value} and {!model} read the
    satisfying assignment. *)

val value : t -> int -> bool
(** [value t v] is variable [v]'s polarity in the last model. Raises
    [Invalid_argument] if the last [solve] did not return [Sat]. *)

val model : t -> bool array
(** The last model, one [bool] per variable. Raises [Invalid_argument]
    if the last [solve] did not return [Sat]. *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learnt : int;       (** learnt clauses currently kept *)
}

val stats : t -> stats
(** Cumulative search statistics across all [solve] calls. *)

val luby : int -> int
(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    ([luby 0] = 1); exposed for tests. *)

(** DIMACS CNF interchange. Literals on this boundary use the DIMACS
    convention: nonzero integers, variable [i] (1-based) positive as [i]
    and negated as [-i]. *)
module Dimacs : sig
  val parse : string -> int * int list list
  (** Parse a DIMACS CNF document ([c] comment lines, one [p cnf V C]
      header, zero-terminated clauses, possibly spanning lines). Returns
      [(num_vars, clauses)]. Raises [Failure] with a line-numbered
      message on malformed input, a literal out of the declared range,
      or a clause-count mismatch. *)

  val print : nvars:int -> int list list -> string
  (** Render a header plus one zero-terminated clause per line.
      [parse (print ~nvars cs) = (nvars, cs)] whenever every literal is
      in range. *)

  val add : t -> int list -> unit
  (** Add one DIMACS-convention clause, growing the solver's variable
      space as needed. *)

  val of_string : string -> t
  (** A fresh solver loaded with a parsed DIMACS document. *)

  val export : t -> string
  (** The solver's problem clauses (as originally added, pre-
      simplification) as a DIMACS document. *)
end
