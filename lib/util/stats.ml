let mean = function
  | [] -> 0.
  | xs ->
    let n, sum = List.fold_left (fun (n, s) x -> (n + 1, s +. x)) (0, 0.) xs in
    sum /. float_of_int n

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let n, sum, sumsq =
      List.fold_left
        (fun (n, s, s2) x -> (n + 1, s +. x, s2 +. (x *. x)))
        (0, 0., 0.) xs
    in
    let nf = float_of_int n in
    let m = sum /. nf in
    sqrt (Float.max 0. ((sumsq /. nf) -. (m *. m)))

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let geomean = function
  | [] -> 0.
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (s /. float_of_int (List.length xs))

let maxf = function
  | [] -> neg_infinity
  | x :: xs -> List.fold_left max x xs

let minf = function
  | [] -> infinity
  | x :: xs -> List.fold_left min x xs

let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let round2 x = Float.round (x *. 100.) /. 100.
