(** Small numeric helpers shared by the delay models and the bench harness. *)

val mean : float list -> float
(** Arithmetic mean in a single traversal; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists of fewer than two
    elements. *)

val median : float list -> float
(** Middle element (mean of the two middles for even lengths); 0. on the
    empty list. *)

val geomean : float list -> float
(** Geometric mean; 0. on the empty list. All elements must be positive. *)

val maxf : float list -> float
val minf : float list -> float

val ceil_div : int -> int -> int
(** [ceil_div a b] = ceiling of a/b for positive [b]. *)

val round2 : float -> float
(** Round to two decimal places (table printing). *)
