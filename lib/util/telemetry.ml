(* Counters are process-global so that hot layers never thread a handle;
   a run reports deltas against snapshots taken at span boundaries.
   Increments are atomic so pool workers (Pool) can bump the same counter
   concurrently without losing counts; the registry itself is interned
   under a mutex for the rare case of first-use registration off the main
   domain. Runs/spans/events/gauges stay single-domain: a run must be
   driven from one domain, with pool workers quiescent at span
   boundaries.

   A single shared Atomic.t would be correct but slow: the hot layers
   (annealer moves, router heap traffic) bump counters millions of times
   per run, and concurrent fetch-and-adds on one location bounce its
   cache line between cores — measurably *slowing* parallel runs down.
   So each counter is striped: one separately-allocated (and padded, so
   two stripes never share a cache line) atomic cell per domain slot,
   picked by domain id. A domain increments its own cell uncontended;
   readers sum the stripes. Sums are exact — reads happen at span/run
   boundaries with workers quiescent. *)

let stripes = 8 (* power of two; >= Pool.default_jobs_cap *)

type counter = {
  cname : string;
  cells : int Atomic.t array;
}

let make_cells () =
  Array.init stripes (fun _ ->
      let cell = Atomic.make 0 in
      (* Padding between consecutively-allocated cells, so each stripe
         owns its cache line. The block must stay reachable only long
         enough to keep the allocator from reusing the gap — dropping it
         immediately is fine; it just spaces the allocations. *)
      ignore (Sys.opaque_identity (Array.make 8 0));
      cell)

let registry_lock = Mutex.create ()
let registry : (string, counter) Hashtbl.t = Hashtbl.create 64
let all_counters : counter list ref = ref []

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { cname = name; cells = make_cells () } in
      Hashtbl.replace registry name c;
      all_counters := c :: !all_counters;
      c
  in
  Mutex.unlock registry_lock;
  c

let cell c = c.cells.((Domain.self () :> int) land (stripes - 1))
let incr c = Atomic.incr (cell c)
let add c n = ignore (Atomic.fetch_and_add (cell c) n)
let value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

(* ------------------------------------------------------------- runs *)

type span = {
  span_name : string;
  start_ns : int64;
  stop_ns : int64;
  deltas : (string * int) list;
  children : span list;
}

type event = {
  at_ns : int64;
  label : string;
  data : (string * string) list;
}

(* A snapshot pairs each live counter with its value at snapshot time;
   counters registered afterwards implicitly start from 0. *)
type snapshot = (counter * int) list

type open_span = {
  oname : string;
  ostart : int64;
  osnap : snapshot;
  mutable ochildren : span list; (* reversed *)
}

type run = {
  rname : string;
  clock : unit -> int64;
  t0 : int64;
  rsnap : snapshot;
  mutable rtotal_ns : int64;
  mutable rfinished : bool;
  mutable rtop : span list;      (* reversed *)
  mutable rstack : open_span list;
  mutable revents : event list;  (* reversed *)
  mutable rgauges : (string * float) list;
  mutable rcounters : (string * int) list;
}

let live_counters () =
  Mutex.lock registry_lock;
  let cs = !all_counters in
  Mutex.unlock registry_lock;
  cs

let take_snapshot () : snapshot =
  List.rev_map (fun c -> (c, value c)) (live_counters ())

let deltas_since (snap : snapshot) =
  List.filter_map
    (fun c ->
      let base = match List.assq_opt c snap with Some v -> v | None -> 0 in
      let v = value c in
      if v <> base then Some (c.cname, v - base) else None)
    (live_counters ())
  |> List.sort compare

let default_clock = Monotonic_clock.now

let start ?(clock = default_clock) name =
  { rname = name;
    clock;
    t0 = clock ();
    rsnap = take_snapshot ();
    rtotal_ns = 0L;
    rfinished = false;
    rtop = [];
    rstack = [];
    revents = [];
    rgauges = [];
    rcounters = [] }

let now run = Int64.sub (run.clock ()) run.t0

let finish run =
  if not run.rfinished then begin
    run.rfinished <- true;
    run.rtotal_ns <- now run;
    run.rcounters <- deltas_since run.rsnap
  end

let span run name f =
  let os =
    { oname = name; ostart = now run; osnap = take_snapshot (); ochildren = [] }
  in
  run.rstack <- os :: run.rstack;
  let close () =
    let stop = now run in
    (match run.rstack with
     | top :: rest when top == os -> run.rstack <- rest
     | stack ->
       (* unbalanced close (an inner span leaked an exception past us):
          drop everything above this span *)
       let rec unwind = function
         | top :: rest when top == os -> rest
         | _ :: rest -> unwind rest
         | [] -> []
       in
       run.rstack <- unwind stack);
    let sp =
      { span_name = os.oname;
        start_ns = os.ostart;
        stop_ns = stop;
        deltas = deltas_since os.osnap;
        children = List.rev os.ochildren }
    in
    match run.rstack with
    | parent :: _ -> parent.ochildren <- sp :: parent.ochildren
    | [] -> run.rtop <- sp :: run.rtop
  in
  match f () with
  | v ->
    close ();
    v
  | exception e ->
    close ();
    raise e

let event ?(data = []) run label =
  run.revents <- { at_ns = now run; label; data } :: run.revents

let set_gauge run name v =
  run.rgauges <- (name, v) :: List.remove_assoc name run.rgauges

let name run = run.rname
let total_ns run = run.rtotal_ns
let spans run = List.rev run.rtop
let events run = List.rev run.revents
let gauges run = List.sort compare run.rgauges
let counters run = run.rcounters

let find_spans run wanted =
  let rec collect acc sp =
    let acc = if sp.span_name = wanted then sp :: acc else acc in
    List.fold_left collect acc sp.children
  in
  List.rev (List.fold_left collect [] (spans run))

let span_ms sp = Int64.to_float (Int64.sub sp.stop_ns sp.start_ns) /. 1e6

(* ----------------------------------------------------------- table *)

(* A stage can accumulate more counters than fit a terminal line; break the
   [k=v] tokens into chunks and print the overflow as continuation rows. *)
let wrap_tokens ?(width = 72) tokens =
  match tokens with
  | [] -> [ "" ]
  | first :: rest ->
    let lines, last =
      List.fold_left
        (fun (lines, cur) tok ->
          if String.length cur + 1 + String.length tok <= width then
            (lines, cur ^ " " ^ tok)
          else (cur :: lines, tok))
        ([], first) rest
    in
    List.rev (last :: lines)

let add_wrapped t col0 col1 tokens =
  match wrap_tokens tokens with
  | [] -> Ascii_table.add_row t [ col0; col1; "" ]
  | first :: rest ->
    Ascii_table.add_row t [ col0; col1; first ];
    List.iter (fun line -> Ascii_table.add_row t [ ""; ""; line ]) rest

let to_table_string run =
  let t = Ascii_table.create [ "Stage"; "ms"; "counters" ] in
  let counter_tokens cs =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) cs
  in
  let rec add_span indent sp =
    add_wrapped t (indent ^ sp.span_name)
      (Printf.sprintf "%.3f" (span_ms sp))
      (counter_tokens sp.deltas);
    List.iter (add_span (indent ^ "  ")) sp.children
  in
  List.iter (add_span "") (spans run);
  (match events run with
   | [] -> ()
   | evs ->
     Ascii_table.add_separator t;
     List.iter
       (fun ev ->
         add_wrapped t ("! " ^ ev.label)
           (Printf.sprintf "%.3f" (Int64.to_float ev.at_ns /. 1e6))
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ev.data))
       evs);
  Ascii_table.add_separator t;
  add_wrapped t "total"
    (Printf.sprintf "%.3f" (Int64.to_float run.rtotal_ns /. 1e6))
    (counter_tokens run.rcounters);
  (match gauges run with
   | [] -> ()
   | gs ->
     add_wrapped t "gauges" ""
       (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) gs));
  Ascii_table.to_string t

(* ------------------------------------------------------------ JSON *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.6g round-trips: parsing the printed form and re-printing it yields the
   same bytes, which the determinism guard relies on. *)
let fmt_float v = Printf.sprintf "%.6g" v

let to_json_string ?(timings = true) run =
  let buf = Buffer.create 1024 in
  let str s = Buffer.add_string buf (json_string s) in
  let ns t = Buffer.add_string buf (Int64.to_string (if timings then t else 0L)) in
  let obj_of add_fields =
    Buffer.add_char buf '{';
    add_fields ();
    Buffer.add_char buf '}'
  in
  let field first name add_value =
    if not first then Buffer.add_char buf ',';
    str name;
    Buffer.add_char buf ':';
    add_value ()
  in
  let list items add_item =
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_item x)
      items;
    Buffer.add_char buf ']'
  in
  let str_map kvs add_value =
    obj_of (fun () ->
        List.iteri (fun i (k, v) -> field (i = 0) k (fun () -> add_value v)) kvs)
  in
  let int_map kvs =
    str_map kvs (fun v -> Buffer.add_string buf (string_of_int v))
  in
  let rec add_span sp =
    obj_of (fun () ->
        field true "name" (fun () -> str sp.span_name);
        field false "start_ns" (fun () -> ns sp.start_ns);
        field false "stop_ns" (fun () -> ns sp.stop_ns);
        field false "counters" (fun () -> int_map sp.deltas);
        field false "children" (fun () -> list sp.children add_span))
  in
  let add_event ev =
    obj_of (fun () ->
        field true "at_ns" (fun () -> ns ev.at_ns);
        field false "label" (fun () -> str ev.label);
        field false "data" (fun () -> str_map ev.data str))
  in
  obj_of (fun () ->
      field true "run" (fun () -> str run.rname);
      field false "total_ns" (fun () -> ns run.rtotal_ns);
      field false "spans" (fun () -> list (spans run) add_span);
      field false "events" (fun () -> list (events run) add_event);
      field false "gauges" (fun () ->
          str_map (gauges run) (fun v -> Buffer.add_string buf (fmt_float v)));
      field false "counters" (fun () -> int_map run.rcounters));
  Buffer.contents buf

(* A minimal recursive-descent parser for the subset we emit. *)

type jv =
  | J_obj of (string * jv) list
  | J_arr of jv list
  | J_str of string
  | J_num of string
  | J_bool of bool
  | J_null

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = failwith (Printf.sprintf "Telemetry.of_json_string: %s at %d" msg !pos) in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= len then fail "bad escape");
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 >= len then fail "bad \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           (* we only emit \u00XX control codes; anything larger would need
              UTF-8 encoding, which our own output never contains *)
           if code < 0x100 then Buffer.add_char buf (Char.chr code)
           else fail "unsupported \\u escape";
           pos := !pos + 4
         | _ -> fail "bad escape");
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); J_obj [] end
      else begin
        let rec fields acc =
          let k = (skip_ws (); parse_string ()) in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); fields ((k, v) :: acc)
          | '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (fields [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); J_arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); items (v :: acc)
          | ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_arr (items [])
      end
    | 't' when !pos + 4 <= len && String.sub s !pos 4 = "true" ->
      pos := !pos + 4;
      J_bool true
    | 'f' when !pos + 5 <= len && String.sub s !pos 5 = "false" ->
      pos := !pos + 5;
      J_bool false
    | 'n' when !pos + 4 <= len && String.sub s !pos 4 = "null" ->
      pos := !pos + 4;
      J_null
    | c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < len && num_char s.[!pos] do
        advance ()
      done;
      J_num (String.sub s start (!pos - start))
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let of_json_string text =
  let get_field obj name =
    match obj with
    | J_obj fields ->
      (match List.assoc_opt name fields with
       | Some v -> v
       | None -> failwith ("Telemetry.of_json_string: missing field " ^ name))
    | _ -> failwith "Telemetry.of_json_string: expected object"
  in
  let as_str = function
    | J_str s -> s
    | _ -> failwith "Telemetry.of_json_string: expected string"
  in
  let as_int64 = function
    | J_num n -> Int64.of_string n
    | _ -> failwith "Telemetry.of_json_string: expected number"
  in
  let as_arr = function
    | J_arr xs -> xs
    | _ -> failwith "Telemetry.of_json_string: expected array"
  in
  let as_map f = function
    | J_obj fields -> List.map (fun (k, v) -> (k, f v)) fields
    | _ -> failwith "Telemetry.of_json_string: expected object"
  in
  let as_int v = Int64.to_int (as_int64 v) in
  let as_float = function
    | J_num n -> float_of_string n
    | _ -> failwith "Telemetry.of_json_string: expected number"
  in
  let rec span_of v =
    { span_name = as_str (get_field v "name");
      start_ns = as_int64 (get_field v "start_ns");
      stop_ns = as_int64 (get_field v "stop_ns");
      deltas = as_map as_int (get_field v "counters");
      children = List.map span_of (as_arr (get_field v "children")) }
  in
  let event_of v =
    { at_ns = as_int64 (get_field v "at_ns");
      label = as_str (get_field v "label");
      data = as_map as_str (get_field v "data") }
  in
  let root = parse_json text in
  { rname = as_str (get_field root "run");
    clock = (fun () -> 0L);
    t0 = 0L;
    rsnap = [];
    rtotal_ns = as_int64 (get_field root "total_ns");
    rfinished = true;
    rtop = List.rev_map span_of (as_arr (get_field root "spans"));
    rstack = [];
    revents = List.rev_map event_of (as_arr (get_field root "events"));
    rgauges = as_map as_float (get_field root "gauges");
    rcounters = as_map as_int (get_field root "counters") }
