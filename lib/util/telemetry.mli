(** Cross-layer telemetry: monotonic-clock spans, named counters and
    gauges, and a per-run event journal, with ASCII-table and stable-JSON
    renderers.

    Counters are process-global and always on: incrementing one is a single
    atomic fetch-and-add, so hot loops (annealer moves, router heap traffic,
    FDS force evaluations) can call {!incr} unconditionally — including
    concurrently from {!Pool} worker domains, without losing counts. A
    {!run} attributes counter activity to stages by snapshotting the
    registry at span boundaries; everything a run reports is a {e delta}
    against those snapshots, so runs are independent even though the
    counters are shared. Runs themselves (spans, events, gauges) are
    single-domain: drive a run from one domain and keep pool workers
    quiescent across span boundaries, and the reported deltas are a pure
    function of the work done — independent of the worker count. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] interns a process-global counter. Calling it twice with
    the same name returns the same counter. Prefer binding the result at
    module level so hot paths pay only the increment. *)

val incr : counter -> unit
(** Add one, atomically. Does not allocate. *)

val add : counter -> int -> unit
(** Add [n], atomically. Does not allocate. *)

val value : counter -> int
(** Current absolute value (since process start). *)

(** {1 Runs, spans, events, gauges} *)

type span = {
  span_name : string;
  start_ns : int64;                (** relative to the run's start *)
  stop_ns : int64;
  deltas : (string * int) list;    (** nonzero counter deltas over the span
                                       (children included), sorted by name *)
  children : span list;
}

type event = {
  at_ns : int64;                   (** relative to the run's start *)
  label : string;
  data : (string * string) list;
}

type run

val start : ?clock:(unit -> int64) -> string -> run
(** [start name] opens a run. [clock] (nanoseconds, monotonic) defaults to
    the OS monotonic clock; tests inject a fake clock for determinism. *)

val finish : run -> unit
(** Seal the run: record total wall-clock and run-level counter deltas.
    Idempotent. *)

val span : run -> string -> (unit -> 'a) -> 'a
(** [span run name f] runs [f ()] inside a named span. Spans nest: a span
    opened while another is running becomes its child. The span is closed
    (and its counter deltas captured) even if [f] raises. *)

val event : ?data:(string * string) list -> run -> string -> unit
(** Append a journal entry, e.g. an area-loop re-fold or a placement
    retry. *)

val set_gauge : run -> string -> float -> unit
(** Record a named measurement (HPWL, routability estimate, ...). Setting
    the same name again overwrites. *)

(** {1 Accessors} *)

val name : run -> string
val total_ns : run -> int64
val spans : run -> span list
(** Completed top-level spans, in execution order. *)

val events : run -> event list
val gauges : run -> (string * float) list
(** Sorted by name. *)

val counters : run -> (string * int) list
(** Nonzero counter deltas over the whole run, sorted by name. Only
    meaningful after {!finish}. *)

val find_spans : run -> string -> span list
(** All spans with the given name, depth-first. *)

val span_ms : span -> float

(** {1 Renderers} *)

val to_table_string : run -> string
(** Per-stage ASCII table: one row per span (children indented), the event
    journal, and run totals. *)

val to_json_string : ?timings:bool -> run -> string
(** Stable JSON: fields in fixed order, counters/gauges sorted by name, no
    whitespace. With [~timings:false] every clock reading is emitted as 0,
    making the output a pure function of the work performed — the
    determinism guard used by the tests. *)

val of_json_string : string -> run
(** Parse a string produced by {!to_json_string} back into a (sealed) run.
    Raises [Failure] on malformed input. *)

val json_string : string -> string
(** Quote and escape a string as a JSON string literal (for harnesses that
    splice telemetry JSON into larger documents). *)
