module Diag = Nanomap_util.Diag
module Rng = Nanomap_util.Rng
module Pool = Nanomap_util.Pool
module Telemetry = Nanomap_util.Telemetry
module Arch = Nanomap_arch.Arch
module Flow = Nanomap_flow.Flow
module Check = Nanomap_flow.Check

type fold = F_auto | F_none | F_level of int

let fold_of_string = function
  | "auto" -> Some F_auto
  | "none" -> Some F_none
  | s ->
    (match int_of_string_opt s with
    | Some l when l >= 1 -> Some (F_level l)
    | Some _ | None -> None)

let string_of_fold = function
  | F_auto -> "auto"
  | F_none -> "none"
  | F_level l -> string_of_int l

type config = {
  seed : int;
  count : int;
  cycles : int;
  gen : Gen_rtl.params;
  fold : fold;
  mapper : Nanomap_core.Mapper.mapper;
  corpus_dir : string option;
  shrink_budget : int;
  jobs : int;
}

let default_config =
  { seed = 1;
    count = 50;
    cycles = 40;
    gen = Gen_rtl.default_params;
    fold = F_auto;
    mapper = Nanomap_core.Mapper.Truth_table;
    corpus_dir = None;
    shrink_budget = 200;
    jobs = 1 }

type failure = {
  index : int;
  spec : Gen_rtl.spec;
  shrunk : Gen_rtl.spec;
  outcome : Oracle.outcome;
  corpus_file : string option;
}

type summary = {
  cases : int;
  passed : int;
  failures : failure list;
  flow_errors : (int * Diag.t) list;
  telemetry : Telemetry.run;
}

let flow_options ~seed ?(mapper = Nanomap_core.Mapper.Truth_table) fold =
  let objective =
    match fold with
    | F_auto -> Flow.At_min
    | F_none -> Flow.No_folding
    | F_level l -> Flow.Fixed_level l
  in
  { Flow.default_options with
    Flow.objective;
    physical = true;
    seed;
    mapper;
    check_level = Check.Off }

let run_spec ?(cycles = 40) ?(seed = 1) ?mapper fold spec =
  match Gen_rtl.build spec with
  | exception e ->
    (match Diag.of_exn ~stage:"generate" e with
    | Some d -> Oracle.Flow_error d
    | None -> raise e)
  | design ->
    (match
       Flow.run_result ~options:(flow_options ~seed ?mapper fold)
         ~arch:Arch.unbounded_k design
     with
    | Error d -> Oracle.Flow_error d
    | Ok report -> Oracle.run ~cycles ~seed (Oracle.subject_of_report report))

let same_failure_class (a : Oracle.outcome) (b : Oracle.outcome) =
  match (a, b) with
  | Oracle.Pass _, Oracle.Pass _ -> true
  | Oracle.Mismatch ma, Oracle.Mismatch mb ->
    ma.Oracle.golden = mb.Oracle.golden && ma.Oracle.suspect = mb.Oracle.suspect
  | Oracle.Level_fault (la, _), Oracle.Level_fault (lb, _) -> la = lb
  | Oracle.Flow_error _, Oracle.Flow_error _ -> true
  | _ -> false

let shrink ~budget ~still_fails spec =
  let evals = ref 0 in
  let try_spec s =
    if !evals >= budget then false
    else begin
      incr evals;
      still_fails s
    end
  in
  let rec descend current =
    let next =
      List.find_opt
        (fun cand -> Gen_rtl.spec_size cand < Gen_rtl.spec_size current
                     && try_spec cand)
        (Gen_rtl.shrink_candidates current)
    in
    match next with
    | Some smaller when !evals < budget -> descend smaller
    | Some smaller -> smaller
    | None -> current
  in
  descend spec

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let write_counterexample ~dir ~name ~comment spec =
  ensure_dir dir;
  let path = Filename.concat dir (name ^ ".rtl") in
  let oc = open_out path in
  List.iter (fun line -> Printf.fprintf oc "# %s\n" line) comment;
  output_string oc (Gen_rtl.spec_to_string spec);
  close_out oc;
  path

let load_corpus dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rtl")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let ic = open_in_bin path in
           let len = in_channel_length ic in
           let body = really_input_string ic len in
           close_in ic;
           match Gen_rtl.spec_of_string body with
           | spec -> (f, spec)
           | exception Failure msg ->
             failwith (Printf.sprintf "%s: %s" path msg))

let run ?eval (cfg : config) =
  let eval =
    match eval with
    | Some f -> f
    | None ->
      fun spec ->
        run_spec ~cycles:cfg.cycles ~seed:cfg.seed ~mapper:cfg.mapper cfg.fold spec
  in
  let tele = Telemetry.start "fuzz" in
  let rng = Rng.create cfg.seed in
  (* Sharding keeps the campaign deterministic: specs are generated
     serially from the campaign RNG (the same draw sequence as a jobs=1
     run), only the pure per-spec evaluations fan out across workers, and
     the join below walks cases in index order — so the journal, the
     shrinks and the corpus files are byte-identical for every [jobs]. *)
  let specs = Array.init cfg.count (fun _ -> Gen_rtl.random_spec rng cfg.gen) in
  let outcomes =
    if cfg.jobs > 1 && cfg.count > 1 then
      Pool.with_pool ~jobs:cfg.jobs (fun pool -> Pool.map pool ~f:eval specs)
    else Array.map eval specs
  in
  let passed = ref 0 in
  let failures = ref [] in
  let flow_errors = ref [] in
  for i = 1 to cfg.count do
    let spec = specs.(i - 1) in
    let outcome = outcomes.(i - 1) in
    Telemetry.event tele "verify.case"
      ~data:
        [ ("index", string_of_int i);
          ("steps", string_of_int (Gen_rtl.spec_size spec));
          ("outcome", Oracle.describe outcome) ];
    match outcome with
    | Oracle.Pass _ -> incr passed
    | Oracle.Flow_error d -> flow_errors := (i, d) :: !flow_errors
    | Oracle.Mismatch _ | Oracle.Level_fault _ ->
      let shrunk =
        shrink ~budget:cfg.shrink_budget
          ~still_fails:(fun s -> same_failure_class (eval s) outcome)
          spec
      in
      let corpus_file =
        Option.map
          (fun dir ->
            let name = Printf.sprintf "cex-seed%d-case%d" cfg.seed i in
            let comment =
              [ Oracle.describe outcome;
                Printf.sprintf "fuzz seed %d, case %d, folding %s, shrunk %d -> %d steps"
                  cfg.seed i (string_of_fold cfg.fold)
                  (Gen_rtl.spec_size spec) (Gen_rtl.spec_size shrunk) ]
            in
            write_counterexample ~dir ~name ~comment shrunk)
          cfg.corpus_dir
      in
      failures := { index = i; spec; shrunk; outcome; corpus_file } :: !failures
  done;
  let failures = List.rev !failures in
  let flow_errors = List.rev !flow_errors in
  Telemetry.set_gauge tele "verify.pass_rate"
    (if cfg.count = 0 then 1.
     else float_of_int !passed /. float_of_int cfg.count);
  Telemetry.finish tele;
  { cases = cfg.count;
    passed = !passed;
    failures;
    flow_errors;
    telemetry = tele }

let print_summary oc (s : summary) =
  Printf.fprintf oc "fuzz: %d cases, %d passed, %d failed, %d flow errors\n"
    s.cases s.passed (List.length s.failures) (List.length s.flow_errors);
  List.iter
    (fun (f : failure) ->
      Printf.fprintf oc "  case %d: %s\n" f.index (Oracle.describe f.outcome);
      Printf.fprintf oc "    shrunk to %d steps%s\n"
        (Gen_rtl.spec_size f.shrunk)
        (match f.corpus_file with
        | Some p -> Printf.sprintf ", corpus %s" p
        | None -> ""))
    s.failures;
  List.iter
    (fun (i, d) ->
      Printf.fprintf oc "  case %d: flow error: %s\n" i (Diag.to_string d))
    s.flow_errors;
  List.iter
    (fun (name, v) ->
      if String.length name >= 7 && String.sub name 0 7 = "verify." then
        Printf.fprintf oc "  %s = %d\n" name v)
    (Telemetry.counters s.telemetry)
