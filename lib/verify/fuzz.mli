(** The fuzzing campaign driver: generate random designs ({!Gen_rtl}), run
    each through the whole flow, differential-check the result at four
    levels ({!Oracle}), shrink failing specs to minimal reproducers and
    write them to the counterexample corpus.

    {2 Corpus convention}

    A failing case is shrunk greedily (drop steps while the same failure
    class persists) and written to [<corpus>/cex-seed<S>-case<I>.rtl] in
    the {!Gen_rtl.spec_to_string} format, with the failure description in
    leading [#] comment lines. Files under [test/corpus/] are replayed
    forever by the tier-1 test suite: a bug caught once can never quietly
    return. *)

type fold =
  | F_auto  (** area-delay-product objective picks the folding level *)
  | F_none  (** no folding (traditional-FPGA baseline) *)
  | F_level of int  (** force one folding level *)

val fold_of_string : string -> fold option
(** ["auto"], ["none"], or a positive integer. *)

val string_of_fold : fold -> string

type config = {
  seed : int;
  count : int;  (** number of random designs *)
  cycles : int;  (** macro cycles of stimulus per design *)
  gen : Gen_rtl.params;
  fold : fold;
  mapper : Nanomap_core.Mapper.mapper;
      (** technology mapper the flow uses for every case — the AIG
          differential gate runs the same campaign with both values *)
  corpus_dir : string option;  (** where shrunk counterexamples land *)
  shrink_budget : int;  (** max oracle evaluations spent shrinking *)
  jobs : int;  (** worker domains evaluating cases concurrently (1 =
                   serial). Specs are generated serially from the
                   campaign RNG and results merged in case order, so the
                   summary, journal and corpus are byte-identical for
                   every value *)
}

val default_config : config
(** seed 1, 50 cases, 40 cycles, {!Gen_rtl.default_params}, [F_auto],
    [Truth_table] mapper, no corpus dir, budget 200, jobs 1. *)

type failure = {
  index : int;  (** 1-based case number within the campaign *)
  spec : Gen_rtl.spec;  (** as generated *)
  shrunk : Gen_rtl.spec;  (** minimized reproducer *)
  outcome : Oracle.outcome;
  corpus_file : string option;
}

type summary = {
  cases : int;
  passed : int;
  failures : failure list;  (** mismatches and level faults, in order *)
  flow_errors : (int * Nanomap_util.Diag.t) list;
      (** cases the flow rejected outright (no oracle verdict), in order *)
  telemetry : Nanomap_util.Telemetry.run;  (** sealed campaign run *)
}

val flow_options :
  seed:int -> ?mapper:Nanomap_core.Mapper.mapper -> fold -> Nanomap_flow.Flow.options
(** Physical flow (the bitstream level needs a bitmap), checkers [Off]
    (the oracle {e is} the checker here). [mapper] defaults to
    [Truth_table]. *)

val run_spec :
  ?cycles:int ->
  ?seed:int ->
  ?mapper:Nanomap_core.Mapper.mapper ->
  fold ->
  Gen_rtl.spec ->
  Oracle.outcome
(** Build the spec's design, run the flow, run the oracle. Flow rejection
    becomes [Oracle.Flow_error]. *)

val same_failure_class : Oracle.outcome -> Oracle.outcome -> bool
(** Shrinking predicate: same constructor, same level pair (mismatches) or
    same faulting level (faults). Cycle/signal/values may differ. *)

val shrink :
  budget:int ->
  still_fails:(Gen_rtl.spec -> bool) ->
  Gen_rtl.spec ->
  Gen_rtl.spec
(** Greedy descent over {!Gen_rtl.shrink_candidates} until a fixpoint or
    the evaluation budget runs out. *)

val write_counterexample :
  dir:string -> name:string -> comment:string list -> Gen_rtl.spec -> string
(** Serialize the spec to [<dir>/<name>.rtl] (creating [dir] if needed)
    with [comment] lines as a [#] header; returns the path. *)

val load_corpus : string -> (string * Gen_rtl.spec) list
(** All [*.rtl] files of a directory, sorted by name; [[]] if the
    directory does not exist. Raises [Failure] on a malformed file. *)

val run : ?eval:(Gen_rtl.spec -> Oracle.outcome) -> config -> summary
(** Run the campaign. [eval] replaces {!run_spec} (tests use it to inject
    synthetic failures without a flow run); shrinking and the corpus write
    go through the same [eval]. Journals one [verify.case] telemetry event
    per case. With [config.jobs > 1] case evaluations shard across a
    worker pool ([eval] must then be pure and thread-safe, as {!run_spec}
    is); shrinking and corpus writes stay serial, in case order. *)

val print_summary : out_channel -> summary -> unit
