module Rng = Nanomap_util.Rng
module Rtl = Nanomap_rtl.Rtl
module Truth_table = Nanomap_logic.Truth_table

type step =
  | S_input of int
  | S_const of int * int
  | S_reg of int * int
  | S_binop of int * int * int
  | S_not of int
  | S_mux of int * int * int
  | S_cmp of int * int * int
  | S_mult of int * int
  | S_slice of int * int
  | S_concat of int * int
  | S_table of int64 * int list
  | S_output of int

type spec = step list

type params = {
  steps : int;
  max_width : int;
  max_regs : int;
  max_inputs : int;
}

let default_params = { steps = 24; max_width = 6; max_regs = 4; max_inputs = 4 }

(* --- building: total over arbitrary step lists --- *)

(* widths are clamped so any parsed spec stays inside the IR's 1..48 bound:
   inputs/consts/registers at 16, mult operands at 8, concat operands at 16 *)
let clamp_width w = max 1 (min w 16)
let mask w v = v land ((1 lsl w) - 1)

let build ?(name = "fuzz") spec =
  let d = Rtl.create name in
  (* signals in creation order, newest first *)
  let sigs = ref [] in
  let count = ref 0 in
  let add id w =
    sigs := (id, w) :: !sigs;
    incr count
  in
  let fresh_const w =
    let id = Rtl.add_const d ~width:w 0 in
    add id w;
    id
  in
  let nth_sig p =
    let n = !count in
    let i = ((p mod n) + n) mod n in
    List.nth !sigs i
  in
  let pick_any p =
    if !count = 0 then (fresh_const 1, 1) else nth_sig p
  in
  let pick_filtered pred fallback_w p =
    let cands = List.filter pred !sigs in
    match cands with
    | [] -> (fresh_const fallback_w, fallback_w)
    | l ->
      let n = List.length l in
      List.nth l (((p mod n) + n) mod n)
  in
  let pick_width w p = pick_filtered (fun (_, w') -> w' = w) w p in
  let pick_narrow limit p =
    pick_filtered (fun (_, w') -> w' <= limit) 1 p
  in
  let n_inputs = ref 0 and n_regs = ref 0 in
  let pending_regs = ref [] in
  let out_picks = ref [] in
  List.iter
    (fun step ->
      match step with
      | S_input w ->
        let w = clamp_width w in
        let id = Rtl.add_input d (Printf.sprintf "i%d" !n_inputs) w in
        incr n_inputs;
        add id w
      | S_const (w, v) ->
        let w = clamp_width w in
        let id = Rtl.add_const d ~width:w (mask w (abs v)) in
        add id w
      | S_reg (w, dp) ->
        let w = clamp_width w in
        let id =
          Rtl.add_register d ~name:(Printf.sprintf "r%d" !n_regs) ~width:w ()
        in
        incr n_regs;
        add id w;
        pending_regs := (id, w, dp) :: !pending_regs
      | S_binop (opc, pa, pb) ->
        let a, wa = pick_any pa in
        let b, _ = pick_width wa pb in
        let op =
          match ((opc mod 5) + 5) mod 5 with
          | 0 -> Rtl.Add (a, b)
          | 1 -> Rtl.Sub (a, b)
          | 2 -> Rtl.Bit_and (a, b)
          | 3 -> Rtl.Bit_or (a, b)
          | _ -> Rtl.Bit_xor (a, b)
        in
        add (Rtl.add_op d ~width:wa op) wa
      | S_not p ->
        let a, wa = pick_any p in
        add (Rtl.add_op d ~width:wa (Rtl.Bit_not a)) wa
      | S_mux (ps, pa, pb) ->
        let sel, _ = pick_width 1 ps in
        let a, wa = pick_any pa in
        let b, _ = pick_width wa pb in
        add (Rtl.add_op d ~width:wa (Rtl.Mux (sel, a, b))) wa
      | S_cmp (k, pa, pb) ->
        let a, wa = pick_any pa in
        let b, _ = pick_width wa pb in
        let op = if k mod 2 = 0 then Rtl.Eq (a, b) else Rtl.Lt (a, b) in
        add (Rtl.add_op d ~width:1 op) 1
      | S_mult (pa, pb) ->
        let a, wa = pick_narrow 8 pa in
        let b, wb = pick_narrow 8 pb in
        add (Rtl.add_op d ~width:(wa + wb) (Rtl.Mult (a, b))) (wa + wb)
      | S_slice (p, lo) ->
        let a, wa = pick_any p in
        let lo = ((lo mod wa) + wa) mod wa in
        let w = wa - lo in
        add (Rtl.add_op d ~width:w (Rtl.Slice (a, lo))) w
      | S_concat (pa, pb) ->
        let a, wa = pick_narrow 16 pa in
        let b, wb = pick_narrow 16 pb in
        add (Rtl.add_op d ~width:(wa + wb) (Rtl.Concat (a, b))) (wa + wb)
      | S_table (bits, picks) ->
        let picks = match picks with [] -> [ 0 ] | l -> l in
        let picks =
          List.filteri (fun i _ -> i < 4) picks
        in
        let args = List.map (fun p -> fst (pick_width 1 p)) picks in
        let tt = Truth_table.of_bits ~arity:(List.length args) bits in
        add (Rtl.add_op d ~width:1 (Rtl.Table (tt, args))) 1
      | S_output p ->
        let id, _ = pick_any p in
        out_picks := id :: !out_picks)
    spec;
  (* connect registers against the *final* signal set: feedback allowed *)
  List.iter
    (fun (id, w, dp) ->
      let dsig, _ = pick_width w dp in
      Rtl.connect_register d id ~d:dsig)
    (List.rev !pending_regs);
  (match List.rev !out_picks with
  | [] ->
    let id, _ = pick_any 0 in
    Rtl.mark_output d "o0" id
  | outs ->
    List.iteri
      (fun i id -> Rtl.mark_output d (Printf.sprintf "o%d" i) id)
      outs);
  Rtl.validate d;
  d

(* --- random generation --- *)

let random_spec rng (p : params) =
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let n_inputs = ref 0 and n_regs = ref 0 in
  let pick () = Rng.int rng 1000 in
  let width () = 1 + Rng.int rng (max 1 p.max_width) in
  push (S_input (width ()));
  incr n_inputs;
  for _ = 2 to max 1 p.steps do
    let r = Rng.int rng 100 in
    if r < 12 && !n_inputs < p.max_inputs then begin
      push (S_input (width ()));
      incr n_inputs
    end
    else if r < 22 && !n_regs < p.max_regs then begin
      push (S_reg (width (), pick ()));
      incr n_regs
    end
    else if r < 27 then push (S_const (width (), Rng.int rng 65536))
    else if r < 52 then push (S_binop (Rng.int rng 5, pick (), pick ()))
    else if r < 60 then push (S_not (pick ()))
    else if r < 68 then push (S_mux (pick (), pick (), pick ()))
    else if r < 74 then push (S_cmp (Rng.int rng 2, pick (), pick ()))
    else if r < 80 then push (S_mult (pick (), pick ()))
    else if r < 86 then push (S_slice (pick (), Rng.int rng 8))
    else if r < 91 then push (S_concat (pick (), pick ()))
    else if r < 96 then
      push
        (S_table
           ( Rng.int64 rng,
             [ pick (); pick (); pick () ] ))
    else push (S_output (pick ()))
  done;
  push (S_output (pick ()));
  List.rev !steps

(* --- serialization --- *)

let header = "rtl-spec v1"

let step_to_string = function
  | S_input w -> Printf.sprintf "input %d" w
  | S_const (w, v) -> Printf.sprintf "const %d %d" w v
  | S_reg (w, dp) -> Printf.sprintf "reg %d %d" w dp
  | S_binop (o, a, b) -> Printf.sprintf "binop %d %d %d" o a b
  | S_not a -> Printf.sprintf "not %d" a
  | S_mux (s, a, b) -> Printf.sprintf "mux %d %d %d" s a b
  | S_cmp (k, a, b) -> Printf.sprintf "cmp %d %d %d" k a b
  | S_mult (a, b) -> Printf.sprintf "mult %d %d" a b
  | S_slice (a, lo) -> Printf.sprintf "slice %d %d" a lo
  | S_concat (a, b) -> Printf.sprintf "concat %d %d" a b
  | S_table (bits, picks) ->
    Printf.sprintf "table %Lx%s" bits
      (String.concat ""
         (List.map (fun p -> Printf.sprintf " %d" p) picks))
  | S_output p -> Printf.sprintf "output %d" p

let spec_to_string spec =
  String.concat "\n" (header :: List.map step_to_string spec) ^ "\n"

let spec_of_string s =
  let lines = String.split_on_char '\n' s in
  let lines =
    List.filter_map
      (fun l ->
        let l = String.trim l in
        if l = "" || l.[0] = '#' then None else Some l)
      lines
  in
  let body =
    match lines with
    | h :: rest when h = header -> rest
    | _ -> failwith "rtl spec: missing \"rtl-spec v1\" header"
  in
  let num tok =
    match int_of_string_opt tok with
    | Some n -> n
    | None -> failwith (Printf.sprintf "rtl spec: bad number %S" tok)
  in
  List.map
    (fun line ->
      let toks =
        List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
      in
      match toks with
      | [ "input"; w ] -> S_input (num w)
      | [ "const"; w; v ] -> S_const (num w, num v)
      | [ "reg"; w; dp ] -> S_reg (num w, num dp)
      | [ "binop"; o; a; b ] -> S_binop (num o, num a, num b)
      | [ "not"; a ] -> S_not (num a)
      | [ "mux"; s; a; b ] -> S_mux (num s, num a, num b)
      | [ "cmp"; k; a; b ] -> S_cmp (num k, num a, num b)
      | [ "mult"; a; b ] -> S_mult (num a, num b)
      | [ "slice"; a; lo ] -> S_slice (num a, num lo)
      | [ "concat"; a; b ] -> S_concat (num a, num b)
      | "table" :: bits :: picks ->
        let bits =
          try Int64.of_string ("0x" ^ bits)
          with Failure _ ->
            failwith (Printf.sprintf "rtl spec: bad table bits %S" bits)
        in
        S_table (bits, List.map num picks)
      | [ "output"; p ] -> S_output (num p)
      | _ -> failwith (Printf.sprintf "rtl spec: bad step %S" line))
    body

let spec_size = List.length

(* --- shrinking --- *)

let shrink_candidates spec =
  let arr = Array.of_list spec in
  let n = Array.length arr in
  let without i =
    List.filteri (fun j _ -> j <> i) spec
  in
  let halves =
    if n >= 4 then
      [ List.filteri (fun j _ -> j < n / 2) spec;
        List.filteri (fun j _ -> j >= n / 2) spec ]
    else []
  in
  halves @ List.init n without

let arbitrary (p : params) =
  let gen =
    QCheck.Gen.map
      (fun seed -> random_spec (Rng.create seed) p)
      QCheck.Gen.(0 -- 1_000_000)
  in
  QCheck.make ~print:spec_to_string
    ~shrink:(fun s -> QCheck.Iter.of_list (shrink_candidates s))
    gen

(* --- stimulus --- *)

let stimulus rng design =
  List.map
    (fun (s : Rtl.signal) ->
      (s.Rtl.name, Rng.int rng (1 lsl min s.Rtl.width 16)))
    (Rtl.inputs design)
