(** Seeded random RTL design generation for the differential fuzzer.

    A design is described by a {e spec}: a flat list of build steps. Specs
    are {e total} — every step list, including any sublist of a valid spec,
    builds a valid {!Nanomap_rtl.Rtl.t}. Operand references are resolved
    modulo the signals created so far (creating a constant when a step
    needs a width nothing provides yet), register data inputs are connected
    after all steps (so feedback is expressible and dangling registers are
    impossible), and at least one primary output is always marked. Totality
    is what makes shrinking trivial: dropping any subset of steps still
    yields a buildable design, so the shrinker never needs to repair
    references.

    Specs serialize to a line-oriented text format (see {!spec_to_string})
    used for the counterexample corpus under [test/corpus/]. *)

type step =
  | S_input of int  (** width *)
  | S_const of int * int  (** width, value *)
  | S_reg of int * int  (** width, data-input pick (resolved at the end) *)
  | S_binop of int * int * int
      (** opcode ([mod 5]: add sub and or xor), pick a, pick b *)
  | S_not of int  (** pick *)
  | S_mux of int * int * int  (** sel pick, pick a, pick b *)
  | S_cmp of int * int * int  (** kind ([mod 2]: eq lt), pick a, pick b *)
  | S_mult of int * int  (** pick a, pick b (operands capped at 8 bits) *)
  | S_slice of int * int  (** pick, raw low bit ([mod] operand width) *)
  | S_concat of int * int  (** pick a, pick b (operands capped at 16 bits) *)
  | S_table of int64 * int list
      (** truth-table bits, 1-bit operand picks (at most 4 used) *)
  | S_output of int  (** pick among signals created so far *)

type spec = step list

type params = {
  steps : int;  (** number of random steps to draw *)
  max_width : int;  (** bus widths are drawn from [1 .. max_width] *)
  max_regs : int;
  max_inputs : int;
}

val default_params : params
(** [{ steps = 24; max_width = 6; max_regs = 4; max_inputs = 4 }] — small
    enough that the full flow runs in milliseconds, wide enough to exercise
    multi-plane levelization and folding. *)

val random_spec : Nanomap_util.Rng.t -> params -> spec
(** Deterministic in the RNG state. Always creates at least one input and
    marks at least one output. *)

val build : ?name:string -> spec -> Nanomap_rtl.Rtl.t
(** Total: never raises on any step list. The result is validated. *)

val spec_size : spec -> int

val spec_to_string : spec -> string
(** Line-oriented: a [rtl-spec v1] header, then one step per line. Blank
    lines and [#] comments are ignored by the parser. *)

val spec_of_string : string -> spec
(** Raises [Failure] on malformed input (bad header, unknown step,
    non-numeric field). *)

val shrink_candidates : spec -> spec list
(** Strictly smaller variants, biggest bites first: the two halves (when
    the spec has at least four steps), then every drop-one variant. *)

val arbitrary : params -> spec QCheck.arbitrary
(** QCheck generator (drawing a fresh {!Nanomap_util.Rng.t} seed per case)
    with {!spec_to_string} printing and {!shrink_candidates} shrinking. *)

val stimulus :
  Nanomap_util.Rng.t -> Nanomap_rtl.Rtl.t -> (string * int) list
(** One random value per primary input, suitable for
    {!Nanomap_rtl.Rtl.sim_cycle} and {!Nanomap_emu.Emulator.macro_cycle}. *)
