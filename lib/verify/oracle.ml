module Diag = Nanomap_util.Diag
module Rng = Nanomap_util.Rng
module Telemetry = Nanomap_util.Telemetry
module Rtl = Nanomap_rtl.Rtl
module Truth_table = Nanomap_logic.Truth_table
module Lut_network = Nanomap_techmap.Lut_network
module Partition = Nanomap_techmap.Partition
module Mapper = Nanomap_core.Mapper
module Cluster = Nanomap_cluster.Cluster
module Bitstream = Nanomap_bitstream.Bitstream
module Emulator = Nanomap_emu.Emulator
module Flow = Nanomap_flow.Flow

type level = L_rtl | L_lut | L_emu | L_bits

let level_name = function
  | L_rtl -> "rtl-sim"
  | L_lut -> "lut-network"
  | L_emu -> "fabric-emulator"
  | L_bits -> "bitstream-replay"

type mismatch = {
  golden : level;
  suspect : level;
  cycle : int;
  signal : string;
  expected : int;
  got : int;
}

type stats = {
  cycles_run : int;
  reg_bits : int;
  toggled_bits : int;
  occupancy : float;
}

type outcome =
  | Pass of stats
  | Mismatch of mismatch
  | Level_fault of level * Diag.t
  | Flow_error of Diag.t

let describe = function
  | Pass st ->
    Printf.sprintf "pass (%d cycles, %d/%d register bits toggled, %.0f%% timeslot occupancy)"
      st.cycles_run st.toggled_bits st.reg_bits (100. *. st.occupancy)
  | Mismatch m ->
    Printf.sprintf "mismatch (%s vs %s) at cycle %d on %s: expected %d, got %s"
      (level_name m.golden) (level_name m.suspect) m.cycle m.signal m.expected
      (if m.got = min_int then "<absent>" else string_of_int m.got)
  | Level_fault (l, d) ->
    Printf.sprintf "fault at %s: %s" (level_name l) (Diag.to_string d)
  | Flow_error d -> Printf.sprintf "flow error: %s" (Diag.to_string d)

let outcome_diag = function
  | Pass _ -> None
  | Mismatch m ->
    Some
      (Diag.make ~stage:"verify" ~code:"level-mismatch"
         ~context:
           [ ("golden", level_name m.golden);
             ("suspect", level_name m.suspect);
             ("cycle", string_of_int m.cycle);
             ("signal", m.signal);
             ("expected", string_of_int m.expected);
             ("got", string_of_int m.got) ]
         "evaluation levels disagree")
  | Level_fault (_, d) | Flow_error d -> Some d

type subject = {
  design : Rtl.t;
  networks : Lut_network.t array;
  plan : Mapper.plan;
  cluster : Cluster.t;
  bitstream : Bitstream.t option;
}

let subject_of_report (r : Flow.report) =
  { design = r.Flow.plan.Mapper.design;
    networks = r.Flow.prepared.Mapper.networks;
    plan = r.Flow.plan;
    cluster = r.Flow.cluster;
    bitstream = r.Flow.bitstream }

(* "result.3" -> ("result", 3); same convention as the emulator *)
let split_po_name name =
  match String.rindex_opt name '.' with
  | None -> (name, 0)
  | Some i ->
    (match
       int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))
     with
    | Some bit -> (String.sub name 0 i, bit)
    | None -> (name, 0))

(* --- level 2: direct evaluation of the mapped LUT networks ---

   Plane by plane, [Lut_network.eval] under the committed register/wire
   state; wire targets become visible to later planes immediately,
   register targets (and delay-line copies) commit at the end of the macro
   cycle — mirroring the emulator, but with no folding schedule and no
   flip-flop slots, so only the *networks* are under test. *)
module Net_eval = struct
  type t = {
    design : Rtl.t;
    networks : Lut_network.t array;
    state : (int * int, bool) Hashtbl.t;
    inputs : (string, int) Hashtbl.t;
    direct : (Rtl.signal * Rtl.id) list;
  }

  let create design networks =
    let state = Hashtbl.create 64 in
    List.iter
      (fun (r : Rtl.signal) ->
        let init =
          match r.Rtl.driver with
          | Rtl.Register { init; _ } -> init
          | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> 0
        in
        for b = 0 to r.Rtl.width - 1 do
          Hashtbl.replace state (r.Rtl.id, b) (init land (1 lsl b) <> 0)
        done)
      (Rtl.registers design);
    let direct =
      List.filter_map
        (fun (s : Rtl.signal) ->
          match s.Rtl.driver with
          | Rtl.Register { d; _ } ->
            (match (Rtl.signal design d).Rtl.driver with
            | Rtl.Comb _ -> None
            | Rtl.Register _ | Rtl.Input | Rtl.Const_driver _ -> Some (s, d))
          | Rtl.Input | Rtl.Const_driver _ | Rtl.Comb _ -> None)
        (Rtl.registers design)
    in
    { design; networks; state; inputs = Hashtbl.create 16; direct }

  let state_bit t key =
    Option.value ~default:false (Hashtbl.find_opt t.state key)

  let input_bit t sid b =
    let name = (Rtl.signal t.design sid).Rtl.name in
    let v = Option.value ~default:0 (Hashtbl.find_opt t.inputs name) in
    v land (1 lsl b) <> 0

  let cycle t stim =
    List.iter (fun (n, v) -> Hashtbl.replace t.inputs n v) stim;
    let po_acc : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let record_po name value =
      let base, idx = split_po_name name in
      let cur = Option.value ~default:0 (Hashtbl.find_opt po_acc base) in
      Hashtbl.replace po_acc base
        (if value then cur lor (1 lsl idx) else cur land lnot (1 lsl idx))
    in
    let pending = ref [] in
    Array.iter
      (fun network ->
        let origin = function
          | Lut_network.Register_bit (r, b) | Lut_network.Wire_bit (r, b) ->
            state_bit t (r, b)
          | Lut_network.Pi_bit (s, b) -> input_bit t s b
          | Lut_network.Const_bit b -> b
        in
        let values = Lut_network.eval network origin in
        List.iter
          (fun (target, node) ->
            match target with
            | Lut_network.Po_target name -> record_po name values.(node)
            | Lut_network.Wire_target (w, b) ->
              Hashtbl.replace t.state (w, b) values.(node)
            | Lut_network.Reg_target (r, b) ->
              pending := ((r, b), values.(node)) :: !pending)
          (Lut_network.outputs network))
      t.networks;
    (* outputs driven directly by a register/input/constant belong to no
       plane: sample before the commit *)
    List.iter
      (fun (name, id) ->
        let s = Rtl.signal t.design id in
        match s.Rtl.driver with
        | Rtl.Comb _ -> ()
        | Rtl.Register _ ->
          for b = 0 to s.Rtl.width - 1 do
            record_po (Printf.sprintf "%s.%d" name b) (state_bit t (id, b))
          done
        | Rtl.Input ->
          for b = 0 to s.Rtl.width - 1 do
            record_po (Printf.sprintf "%s.%d" name b) (input_bit t id b)
          done
        | Rtl.Const_driver v ->
          for b = 0 to s.Rtl.width - 1 do
            record_po (Printf.sprintf "%s.%d" name b) (v land (1 lsl b) <> 0)
          done)
      (Rtl.outputs t.design);
    (* delay-line registers shift from old source values at the commit *)
    let copies =
      List.concat_map
        (fun ((s : Rtl.signal), d) ->
          let src = Rtl.signal t.design d in
          List.init s.Rtl.width (fun b ->
              let bit =
                match src.Rtl.driver with
                | Rtl.Register _ -> state_bit t (src.Rtl.id, b)
                | Rtl.Input -> input_bit t src.Rtl.id b
                | Rtl.Const_driver v -> v land (1 lsl b) <> 0
                | Rtl.Comb _ -> assert false
              in
              ((s.Rtl.id, b), bit)))
        t.direct
    in
    List.iter (fun (k, v) -> Hashtbl.replace t.state k v) !pending;
    List.iter (fun (k, v) -> Hashtbl.replace t.state k v) copies;
    List.filter_map
      (fun (name, _) ->
        Option.map (fun v -> (name, v)) (Hashtbl.find_opt po_acc name))
      (Rtl.outputs t.design)
end

(* --- level 4: decode the bitstream back into emulator overrides --- *)

let replay_overrides (plan : Mapper.plan) (cl : Cluster.t) (bs : Bitstream.t) =
  match Bitstream.parse bs.Bitstream.bytes with
  | exception Bitstream.Corrupt msg ->
    Error (Diag.make ~stage:"bitstream-replay" ~code:"corrupt" msg)
  | configs ->
    let stages = plan.Mapper.stages in
    let num_planes = Array.length plan.Mapper.planes in
    if Array.length configs <> stages * num_planes then
      Error
        (Diag.make ~stage:"bitstream-replay" ~code:"config-count"
           ~context:
             [ ("parsed", string_of_int (Array.length configs));
               ("expected", string_of_int (stages * num_planes)) ]
           "bitmap configuration count disagrees with the plan")
    else begin
      (* which LUTs (with their planned cycle) live on each LE slot *)
      let by_slot : (int * int * int * int, (int * int) list ref) Hashtbl.t =
        Hashtbl.create 64
      in
      Array.iter
        (fun (plp : Mapper.plane_plan) ->
          let plane = plp.Mapper.plane_index in
          Lut_network.iter
            (fun l -> function
              | Lut_network.Input _ -> ()
              | Lut_network.Lut _ ->
                (match Hashtbl.find_opt cl.Cluster.lut_slots (plane, l) with
                | None -> ()
                | Some (slot : Cluster.slot) ->
                  let cyc =
                    plp.Mapper.schedule.(plp.Mapper.partition
                                           .Partition.unit_of_lut.(l))
                  in
                  let key =
                    (plane, slot.Cluster.smb, slot.Cluster.mb, slot.Cluster.le)
                  in
                  (match Hashtbl.find_opt by_slot key with
                  | Some r -> r := (l, cyc) :: !r
                  | None -> Hashtbl.replace by_slot key (ref [ (l, cyc) ]))))
            plp.Mapper.network)
        plan.Mapper.planes;
      let func_tbl = Hashtbl.create 64 in
      let cycle_tbl = Hashtbl.create 64 in
      let err = ref None in
      let fail code context msg =
        if !err = None then
          err := Some (Diag.make ~stage:"bitstream-replay" ~code ~context msg)
      in
      Array.iteri
        (fun idx (cfg : Bitstream.config) ->
          let plane = (idx / stages) + 1 in
          let cycle = (idx mod stages) + 1 in
          List.iter
            (fun (le : Bitstream.le_config) ->
              if !err = None then begin
                let where =
                  [ ("plane", string_of_int plane);
                    ("cycle", string_of_int cycle);
                    ("smb", string_of_int le.Bitstream.le_smb);
                    ("mb", string_of_int le.Bitstream.le_mb);
                    ("le", string_of_int le.Bitstream.le_index) ]
                in
                let key =
                  ( plane,
                    le.Bitstream.le_smb,
                    le.Bitstream.le_mb,
                    le.Bitstream.le_index )
                in
                let cands =
                  match Hashtbl.find_opt by_slot key with
                  | Some r -> !r
                  | None -> []
                in
                (* prefer the candidate planned for this cycle; a lone
                   candidate is unambiguous even if retimed *)
                let pick =
                  match List.find_opt (fun (_, c) -> c = cycle) cands with
                  | Some (l, _) -> Some l
                  | None ->
                    (match cands with [ (l, _) ] -> Some l | _ -> None)
                in
                match pick with
                | None ->
                  fail "unknown-le" where
                    "decoded LE matches no clustered LUT"
                | Some l ->
                  let plp = plan.Mapper.planes.(plane - 1) in
                  (match Lut_network.node plp.Mapper.network l with
                  | Lut_network.Input _ ->
                    fail "unknown-le" where
                      "decoded LE resolves to a non-LUT node"
                  | Lut_network.Lut { fanins; _ } ->
                    let arity = Array.length fanins in
                    if le.Bitstream.used_inputs <> arity then
                      fail "fanin-count"
                        (("decoded", string_of_int le.Bitstream.used_inputs)
                        :: ("cluster", string_of_int arity)
                        :: where)
                        "decoded LE input count disagrees with the cluster"
                    else if Hashtbl.mem cycle_tbl (plane, l) then
                      fail "duplicate-le" where
                        "LUT configured twice in the bitmap"
                    else begin
                      Hashtbl.replace func_tbl (plane, l)
                        (Truth_table.of_bits ~arity le.Bitstream.truth_table);
                      Hashtbl.replace cycle_tbl (plane, l) cycle
                    end)
              end)
            cfg.Bitstream.les)
        configs;
      match !err with
      | Some d -> Error d
      | None ->
        Ok
          { Emulator.lut_func =
              (fun ~plane ~lut -> Hashtbl.find_opt func_tbl (plane, lut));
            Emulator.lut_cycle =
              (fun ~plane ~lut ->
                match Hashtbl.find_opt cycle_tbl (plane, lut) with
                | Some c -> Some c
                | None -> Some 0 (* dropped from the bitmap: never runs *)) }
    end

(* --- coverage --- *)

let occupancy (plan : Mapper.plan) =
  let stages = plan.Mapper.stages in
  let planes = Array.length plan.Mapper.planes in
  let used = Hashtbl.create 16 in
  Array.iter
    (fun (plp : Mapper.plane_plan) ->
      Lut_network.iter
        (fun l -> function
          | Lut_network.Input _ -> ()
          | Lut_network.Lut _ ->
            let c =
              plp.Mapper.schedule.(plp.Mapper.partition.Partition.unit_of_lut.(l))
            in
            Hashtbl.replace used (plp.Mapper.plane_index, c) ())
        plp.Mapper.network)
    plan.Mapper.planes;
  if planes * stages = 0 then 0.
  else float_of_int (Hashtbl.length used) /. float_of_int (planes * stages)

(* --- the differential loop --- *)

let c_cases = Telemetry.counter "verify.cases"
let c_levels = Telemetry.counter "verify.levels_checked"
let c_cycles = Telemetry.counter "verify.cycles"
let c_mismatches = Telemetry.counter "verify.mismatches"
let c_faults = Telemetry.counter "verify.faults"

exception Stop of outcome

let run ?(cycles = 50) ?(seed = 1) (s : subject) =
  Telemetry.incr c_cases;
  let rng = Rng.create seed in
  let sim = Rtl.sim_create s.design in
  let net = Net_eval.create s.design s.networks in
  let emu = Emulator.create s.design s.plan s.cluster in
  let remu =
    match s.bitstream with
    | None -> Ok None
    | Some bs ->
      (match replay_overrides s.plan s.cluster bs with
      | Ok ov ->
        Ok (Some (Emulator.create ~overrides:ov s.design s.plan s.cluster))
      | Error d -> Error d)
  in
  match remu with
  | Error d ->
    Telemetry.incr c_faults;
    Level_fault (L_bits, d)
  | Ok remu ->
    let regs = Rtl.registers s.design in
    let reg_bits = List.fold_left (fun a (r : Rtl.signal) -> a + r.Rtl.width) 0 regs in
    let toggled = Hashtbl.create 32 in
    let prev = Hashtbl.create 16 in
    List.iter
      (fun (r : Rtl.signal) ->
        Hashtbl.replace prev r.Rtl.id (Rtl.sim_peek sim r.Rtl.id))
      regs;
    let compare_outs ~golden ~suspect cycle gold outs =
      List.iter
        (fun (name, v) ->
          let got = Option.value ~default:min_int (List.assoc_opt name outs) in
          if got <> v then begin
            Telemetry.incr c_mismatches;
            raise
              (Stop
                 (Mismatch
                    { golden; suspect; cycle; signal = name; expected = v; got }))
          end)
        gold
    in
    (try
       for cycle = 1 to cycles do
         Telemetry.incr c_cycles;
         let stim = Gen_rtl.stimulus rng s.design in
         if cycle = 1 then Telemetry.incr c_levels;
         let outs_rtl = Rtl.sim_cycle sim stim in
         let eval lvl f =
           if cycle = 1 then Telemetry.incr c_levels;
           try f ()
           with Diag.Fail d ->
             Telemetry.incr c_faults;
             raise (Stop (Level_fault (lvl, d)))
         in
         let outs_lut = eval L_lut (fun () -> Net_eval.cycle net stim) in
         compare_outs ~golden:L_rtl ~suspect:L_lut cycle outs_rtl outs_lut;
         let outs_emu = eval L_emu (fun () -> Emulator.macro_cycle emu stim) in
         compare_outs ~golden:L_lut ~suspect:L_emu cycle outs_lut outs_emu;
         (match remu with
         | None -> ()
         | Some remu ->
           let outs_bits =
             eval L_bits (fun () -> Emulator.macro_cycle remu stim)
           in
           compare_outs ~golden:L_emu ~suspect:L_bits cycle outs_emu outs_bits);
         List.iter
           (fun (r : Rtl.signal) ->
             let v = Rtl.sim_peek sim r.Rtl.id in
             let p = Hashtbl.find prev r.Rtl.id in
             let diff = v lxor p in
             if diff <> 0 then
               for b = 0 to r.Rtl.width - 1 do
                 if diff land (1 lsl b) <> 0 then
                   Hashtbl.replace toggled (r.Rtl.id, b) ()
               done;
             Hashtbl.replace prev r.Rtl.id v)
           regs
       done;
       Pass
         { cycles_run = cycles;
           reg_bits;
           toggled_bits = Hashtbl.length toggled;
           occupancy = occupancy s.plan }
     with Stop o -> o)
