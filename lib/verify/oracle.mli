(** The differential oracle: one design, one stimulus stream, four
    evaluation levels in lockstep.

    {ol
    {- {e rtl-sim} — {!Nanomap_rtl.Rtl.sim_cycle}, the golden reference;}
    {- {e lut-network} — direct evaluation of the mapped per-plane LUT
       networks ({!Nanomap_techmap.Lut_network.eval}): catches technology
       mapping (decompose / simplify / FlowMap) miscompiles;}
    {- {e fabric-emulator} — {!Nanomap_emu.Emulator.macro_cycle} on the
       clustered fabric: catches scheduling and flip-flop-allocation
       (lifetime) miscompiles;}
    {- {e bitstream-replay} — the emulator again, but with every LUT's
       truth table and folding cycle taken from the {e decoded}
       configuration bitmap ({!replay_overrides}): catches bitstream
       encode/decode miscompiles.}}

    Adjacent levels are compared cycle by cycle; the first divergence is
    returned as a typed {!mismatch} naming the level pair, the cycle, the
    output signal and both values. A level that raises instead of
    diverging (e.g. the emulator's flip-flop owner check) is reported as a
    {!Level_fault} carrying its diagnostic.

    Telemetry: counters [verify.cases], [verify.levels_checked] (levels
    exercised, 4 per full case), [verify.cycles], [verify.mismatches] and
    [verify.faults]. *)

type level = L_rtl | L_lut | L_emu | L_bits

val level_name : level -> string
(** ["rtl-sim"], ["lut-network"], ["fabric-emulator"],
    ["bitstream-replay"]. *)

type mismatch = {
  golden : level;
  suspect : level;
  cycle : int;  (** 1-based macro cycle of the divergence *)
  signal : string;  (** primary-output name *)
  expected : int;
  got : int;  (** [min_int] when the suspect did not produce the signal *)
}

(** Coverage achieved by a passing case. *)
type stats = {
  cycles_run : int;
  reg_bits : int;  (** total register bits in the design *)
  toggled_bits : int;  (** register bits that changed at least once *)
  occupancy : float;
      (** fraction of (plane, folding-cycle) timeslots executing >= 1 LUT *)
}

type outcome =
  | Pass of stats
  | Mismatch of mismatch
  | Level_fault of level * Nanomap_util.Diag.t
      (** a level failed internally instead of producing outputs *)
  | Flow_error of Nanomap_util.Diag.t
      (** the flow never produced a subject (reported by {!Fuzz}) *)

val describe : outcome -> string

val outcome_diag : outcome -> Nanomap_util.Diag.t option
(** [None] for [Pass]; mismatches become stage ["verify"], code
    ["level-mismatch"] diagnostics with the pair, cycle, signal and both
    values in context. *)

(** Everything the oracle needs about one mapped design. *)
type subject = {
  design : Nanomap_rtl.Rtl.t;
  networks : Nanomap_techmap.Lut_network.t array;
  plan : Nanomap_core.Mapper.plan;
  cluster : Nanomap_cluster.Cluster.t;
  bitstream : Nanomap_bitstream.Bitstream.t option;
      (** [None] (logical-only flow) skips the replay level *)
}

val subject_of_report : Nanomap_flow.Flow.report -> subject

val replay_overrides :
  Nanomap_core.Mapper.plan ->
  Nanomap_cluster.Cluster.t ->
  Nanomap_bitstream.Bitstream.t ->
  (Nanomap_emu.Emulator.overrides, Nanomap_util.Diag.t) result
(** Decode the bitmap and cross-reference each LE configuration with the
    clustering (the bitmap does not encode LUT connectivity): resolve the
    (plane, folding cycle, LE slot) of every decoded entry back to its LUT
    node and return overrides replaying the {e decoded} truth tables and
    cycle assignments. LUTs absent from the bitmap are mapped to cycle 0
    so their consumers hit the emulator's unwritten-slot check. Errors
    (stage ["bitstream-replay"]): ["corrupt"], ["config-count"],
    ["unknown-le"], ["fanin-count"], ["duplicate-le"]. *)

val run : ?cycles:int -> ?seed:int -> subject -> outcome
(** Drive [cycles] (default 50) macro cycles of seeded random stimulus
    through all levels. Deterministic in [seed] (default 1). *)
